package objmig

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// directoryBenchResult is one measured directory population: the whole
// cluster's heap cost per object, the location-entry footprint at the
// origin, and the steady-state chase profile of a cold third node.
type directoryBenchResult struct {
	bytesPerObj   float64
	entriesPerObj float64
	p99Hops       int
}

// runDirectoryBench builds a three-node cluster, populates n0 with
// closures×size objects in attachment closures, migrates every closure
// to n1 and half of them onwards to n2, waits for home updates and
// retirement to settle, and measures the result. The heap delta spans
// the entire population — object records, snapshots in flight, and all
// directory state — so bytes/obj is the realistic cost of holding one
// live object in the system, not just its location entry.
func runDirectoryBench(b *testing.B, closures, size int, disable bool) directoryBenchResult {
	b.Helper()
	total := closures * size
	nodes := testCluster(b, 3, Config{
		Attach:    AttachUnrestricted,
		Directory: DirectoryConfig{DisableClosureRecords: disable},
	})
	n0, n1, n2 := nodes[0], nodes[1], nodes[2]
	ctx := context.Background()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	anchors := make([]Ref, closures)
	members := make([]Ref, 0, total)
	for c := 0; c < closures; c++ {
		anchor := mustCreateB(b, n0)
		anchors[c] = anchor
		members = append(members, anchor)
		for m := 1; m < size; m++ {
			ref := mustCreateB(b, n0)
			members = append(members, ref)
			if err := n0.Attach(ctx, anchor, ref, NoAlliance); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Every closure leaves home, half of them twice: the second leg
	// exercises the foreign-host departure path (coalesced forwarding
	// state, asynchronous home update, stub retirement on the ack).
	for _, anchor := range anchors {
		if err := n0.Migrate(ctx, anchor, "n1"); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < len(anchors)/2; i++ {
		if err := n0.Migrate(ctx, anchors[i], "n2"); err != nil {
			b.Fatal(err)
		}
	}
	// Settle: n1's forwarding state for the second leg retires once n0
	// acknowledges the batched home updates.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := n1.Stats()
		if st.LocForwards == 0 && st.LocClosureRefs == 0 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("n1 forwarding state never retired: %d forwards, %d member refs",
				st.LocForwards, st.LocClosureRefs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, n := range nodes {
		n.CompactDirectory()
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	// Chase from the cold node: n2 hosts half the objects (no chase)
	// and knows nothing about the rest, so each miss resolves origin →
	// current host — the steady-state two-hop ceiling.
	sample := total
	if sample > 2048 {
		sample = 2048
	}
	stride := total / sample
	for i := 0; i < sample; i++ {
		if _, err := Call[int, int](ctx, n2, members[i*stride], "Add", 1); err != nil {
			b.Fatal(err)
		}
	}

	st0 := n0.Stats()
	entries := st0.LocHome + st0.LocForwards + st0.LocCache + st0.LocClosures
	return directoryBenchResult{
		bytesPerObj:   float64(after.HeapAlloc-before.HeapAlloc) / float64(total),
		entriesPerObj: float64(entries) / float64(total),
		p99Hops:       n2.Stats().ChaseP99Hops,
	}
}

func mustCreateB(b *testing.B, n *Node) Ref {
	b.Helper()
	ref, err := n.Create("counter")
	if err != nil {
		b.Fatal(err)
	}
	return ref
}

// BenchmarkDirectoryScale is the CI-sized directory benchmark: 8192
// objects in 64-member closures across three in-memory nodes. The
// bytes/obj and p99-hops metrics are enforced against
// scripts/alloc-budget.txt by scripts/check-allocs.sh; the full-size
// run is BenchmarkDirectoryMillion.
func BenchmarkDirectoryScale(b *testing.B) {
	var res directoryBenchResult
	for i := 0; i < b.N; i++ {
		res = runDirectoryBench(b, 128, 64, false)
	}
	b.ReportMetric(res.bytesPerObj, "bytes/obj")
	b.ReportMetric(res.entriesPerObj*1000, "locent/kobj")
	b.ReportMetric(float64(res.p99Hops), "p99-hops")
}

// BenchmarkDirectoryMillion holds one million objects (15625 closures
// of 64) on a three-node in-memory cluster and reports the per-object
// budget. A second, smaller run with closure records disabled measures
// the per-object location-entry rate the closure records replace; the
// benchmark fails if the reduction falls under the required 4× or if
// the steady-state p99 chase length exceeds two hops. Takes minutes on
// a small machine — skipped under -short (CI runs the scaled-down
// BenchmarkDirectoryScale instead).
func BenchmarkDirectoryMillion(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-object directory benchmark; run without -short")
	}
	var on, off directoryBenchResult
	for i := 0; i < b.N; i++ {
		on = runDirectoryBench(b, 15625, 64, false)
		// The disabled-mode entry rate is per object and independent of
		// scale; measuring it at 1/16 size keeps the A/B affordable.
		off = runDirectoryBench(b, 1024, 64, true)
	}
	if on.p99Hops > 2 {
		b.Errorf("p99 chase hops = %d, want <= 2", on.p99Hops)
	}
	if reduction := off.entriesPerObj / on.entriesPerObj; reduction < 4 {
		b.Errorf("closure records reduce location entries %.1fx, want >= 4x "+
			"(%.4f vs %.4f entries/obj)", reduction, off.entriesPerObj, on.entriesPerObj)
	}
	b.ReportMetric(on.bytesPerObj, "bytes/obj")
	b.ReportMetric(on.entriesPerObj*1000, "locent/kobj")
	b.ReportMetric(off.entriesPerObj/on.entriesPerObj, "entry-reduction")
	b.ReportMetric(float64(on.p99Hops), "p99-hops")
}
