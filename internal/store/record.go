package store

import (
	"context"
	"sync"

	"objmig/internal/core"
	"objmig/internal/wire"
)

// Status is the lifecycle of a hosted object record.
type Status int

const (
	// StatusActive: the object lives here and accepts invocations.
	StatusActive Status = iota + 1
	// StatusPaused: the object is being linearised for migration; new
	// invocations wait.
	StatusPaused
	// StatusGone: the object left; MovedTo names the next hop. The
	// record persists as the forwarding pointer.
	StatusGone
)

// Record is a hosted object: instance, policy state, attachment
// adjacency and the monitor/pause machinery. The record's own mutex
// serialises per-object state; the shard lock of the owning Store only
// guards table membership. Lock order is shard table lock → Record.Mu →
// shard location lock; Record.Mu may be taken with or without a shard
// lock held, never the other way around.
type Record struct {
	ID       core.OID // the object's cluster-unique identity
	TypeName string   // registered type that reinstantiates the object
	// StateBytes approximates the instance's resident size: the
	// encoded snapshot-state length at install time (zero for locally
	// created objects that never migrated). Set once before the record
	// is published into a Store and immutable afterwards, so readers
	// need no lock; it feeds the node's load-gossip byte gauge.
	StateBytes int64
	// Gen is the object's departure generation: how many migrations it
	// has survived. The migration coordinator bumps it on every shipped
	// snapshot, so location reports carry a total order and a delayed
	// report can never roll the directory backwards. Set before the
	// record is published into a Store and immutable while hosted, so
	// readers need no lock.
	Gen uint64

	Mu   sync.Mutex // guards every mutable field below
	cond *sync.Cond // broadcast on every status/busy transition

	Inst    interface{}   // the live user instance
	Pol     core.ObjState // migration-policy state (locks, fixed flag)
	edges   map[core.OID]map[core.AllianceID]bool
	Status  Status      // live, paused or gone
	Token   uint64      // pause token while StatusPaused
	MovedTo core.NodeID // next hop while StatusGone
	busy    bool        // an invocation is executing (objects are monitors)
}

// NewRecord returns a fresh active record hosting inst.
func NewRecord(id core.OID, typeName string, inst interface{}) *Record {
	r := &Record{
		ID:       id,
		TypeName: typeName,
		Inst:     inst,
		Status:   StatusActive,
		edges:    make(map[core.OID]map[core.AllianceID]bool),
	}
	r.cond = sync.NewCond(&r.Mu)
	return r
}

// Acquire waits until the object is free for an invocation and marks it
// busy. It fails with a moved-error when the object leaves while
// waiting, and respects context cancellation.
func (r *Record) Acquire(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		r.Mu.Lock()
		r.cond.Broadcast()
		r.Mu.Unlock()
	})
	defer stop()
	r.Mu.Lock()
	defer r.Mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch {
		case r.Status == StatusGone:
			return &wire.RemoteError{Code: wire.CodeMoved, Msg: "object " + r.ID.String() + " moved", To: r.MovedTo}
		case r.Status == StatusActive && !r.busy:
			r.busy = true
			return nil
		}
		r.cond.Wait()
	}
}

// Release ends an invocation.
func (r *Record) Release() {
	r.Mu.Lock()
	r.busy = false
	r.cond.Broadcast()
	r.Mu.Unlock()
}

// Pause transitions an active, idle object to StatusPaused for
// migration token. It waits for a running invocation to drain but fails
// immediately if the object is already paused or gone (pause never
// waits on pause, so concurrent group migrations cannot deadlock).
func (r *Record) Pause(ctx context.Context, token uint64) error {
	stop := context.AfterFunc(ctx, func() {
		r.Mu.Lock()
		r.cond.Broadcast()
		r.Mu.Unlock()
	})
	defer stop()
	r.Mu.Lock()
	defer r.Mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch r.Status {
		case StatusGone:
			return &wire.RemoteError{Code: wire.CodeMoved, Msg: "object " + r.ID.String() + " moved", To: r.MovedTo}
		case StatusPaused:
			return wire.Errorf(wire.CodeDenied, "object %s is being migrated", r.ID)
		case StatusActive:
			if !r.busy {
				r.Status = StatusPaused
				r.Token = token
				return nil
			}
		}
		r.cond.Wait()
	}
}

// Unpause rolls a pause back (migration aborted or its lease expired),
// reporting whether this call actually resumed the object. Stubs,
// active records and pauses under a different token are left alone.
func (r *Record) Unpause(token uint64) bool {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	if r.Status == StatusPaused && r.Token == token {
		r.Status = StatusActive
		r.Token = 0
		r.cond.Broadcast()
		return true
	}
	return false
}

// Depart finalises a migration: the record becomes a forwarding
// pointer and all waiters are released (they will chase the object).
// The onCommit hook, if non-nil, runs under the record lock just
// before the flip — the node uses it to update its location tables
// while the record still answers, so no reader ever observes
// "record gone" and "location says here" at the same time.
func (r *Record) Depart(token uint64, to core.NodeID, onCommit func()) bool {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	if r.Status != StatusPaused || r.Token != token {
		return false
	}
	if onCommit != nil {
		onCommit()
	}
	r.becomeStubLocked(to)
	return true
}

// becomeStubLocked turns the record into a forwarding pointer towards
// to, dropping the instance, and wakes every waiter. Caller holds Mu.
func (r *Record) becomeStubLocked(to core.NodeID) {
	r.Status = StatusGone
	r.Token = 0
	r.MovedTo = to
	r.Inst = nil
	r.edges = nil
	r.cond.Broadcast()
}

// Snapshot linearises the object. Caller must hold the pause (the
// record must be StatusPaused) — the instance cannot change
// concurrently. encode is the object type's state encoder.
func (r *Record) Snapshot(encode func(inst interface{}) ([]byte, error)) (wire.Snapshot, error) {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	state, err := encode(r.Inst)
	if err != nil {
		return wire.Snapshot{}, err
	}
	edges := make([]wire.EdgeRec, 0, len(r.edges))
	for other, als := range r.edges {
		for al := range als {
			edges = append(edges, wire.EdgeRec{Other: other, Alliance: al})
		}
	}
	sortEdgeRecs(edges)
	return wire.Snapshot{
		ID:    r.ID,
		Type:  r.TypeName,
		State: state,
		Pol:   r.Pol.Clone(),
		Edges: edges,
		Gen:   r.Gen,
	}, nil
}

// sortEdgeRecs orders edges canonically for deterministic wire images.
func sortEdgeRecs(es []wire.EdgeRec) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && edgeLess(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func edgeLess(a, b wire.EdgeRec) bool {
	if a.Other != b.Other {
		return a.Other.Less(b.Other)
	}
	return a.Alliance < b.Alliance
}

// EdgeList returns the record's adjacency in canonical order.
func (r *Record) EdgeList() []wire.EdgeRec {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	out := make([]wire.EdgeRec, 0, len(r.edges))
	for other, als := range r.edges {
		for al := range als {
			out = append(out, wire.EdgeRec{Other: other, Alliance: al})
		}
	}
	sortEdgeRecs(out)
	return out
}

// Degree returns the number of distinct attachment partners.
func (r *Record) Degree() int {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	return len(r.edges)
}

// DegreeLocked is Degree for callers already holding the record lock
// (EdgeOp callbacks).
func (r *Record) DegreeLocked() int { return len(r.edges) }

// PairedWith reports whether the record has any edge to other.
func (r *Record) PairedWith(other core.OID) bool {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	return len(r.edges[other]) > 0
}

// PairedWithLocked is PairedWith for callers already holding the record
// lock (EdgeOp callbacks).
func (r *Record) PairedWithLocked(other core.OID) bool {
	return len(r.edges[other]) > 0
}

// AddEdge records half an attachment.
func (r *Record) AddEdge(other core.OID, al core.AllianceID) {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	r.AddEdgeLocked(other, al)
}

// AddEdgeLocked is AddEdge under an already-held record lock.
func (r *Record) AddEdgeLocked(other core.OID, al core.AllianceID) {
	set, ok := r.edges[other]
	if !ok {
		set = make(map[core.AllianceID]bool)
		r.edges[other] = set
	}
	set[al] = true
}

// DelEdge removes half an attachment, reporting whether it existed.
func (r *Record) DelEdge(other core.OID, al core.AllianceID) bool {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	return r.DelEdgeLocked(other, al)
}

// DelEdgeLocked is DelEdge under an already-held record lock.
func (r *Record) DelEdgeLocked(other core.OID, al core.AllianceID) bool {
	set, ok := r.edges[other]
	if !ok || !set[al] {
		return false
	}
	delete(set, al)
	if len(set) == 0 {
		delete(r.edges, other)
	}
	return true
}

// EdgeOp runs an edge mutation atomically against a live record: it
// waits out a migration pause (an edge added after the snapshot was
// taken would be lost with the transfer), fails with a redirect when
// the object has left, and otherwise runs op under the record lock.
func (r *Record) EdgeOp(ctx context.Context, op func() *wire.RemoteError) error {
	stop := context.AfterFunc(ctx, func() {
		r.Mu.Lock()
		r.cond.Broadcast()
		r.Mu.Unlock()
	})
	defer stop()
	r.Mu.Lock()
	defer r.Mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch r.Status {
		case StatusGone:
			return &wire.RemoteError{Code: wire.CodeMoved, Msg: "object " + r.ID.String() + " moved", To: r.MovedTo}
		case StatusActive:
			if re := op(); re != nil {
				return re
			}
			return nil
		}
		r.cond.Wait()
	}
}

// IsGone reports whether the record is a forwarding stub.
func (r *Record) IsGone() bool {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	return r.Status == StatusGone
}
