package objmig

import (
	"objmig/internal/store"
	"objmig/internal/wire"

	"objmig/internal/core"
)

// The per-object record machinery (monitor locks, pause/depart
// lifecycle, attachment adjacency) lives in internal/store together
// with the lock-striped object table; this file keeps the node-level
// glue: hosted-record resolution and batch installation.

// hostedRecord returns the local record only when the object actually
// lives here (active or paused). Forwarding stubs are excluded: client
// fast paths must fall through to the hint chain instead of spinning on
// their own stale stub.
func (n *Node) hostedRecord(id core.OID) (*store.Record, bool) {
	return n.store.Hosted(id)
}

// decodeSnapshot reinstantiates one linearised object as a fresh local
// record: type lookup, state decode, policy state and attachment edges.
// Used by the one-shot install path and by streamed chunk staging.
func (n *Node) decodeSnapshot(snap *wire.Snapshot) (*store.Record, error) {
	t, ok := n.typeByName(snap.Type)
	if !ok {
		return nil, wire.Errorf(wire.CodeUnknownType, "node %s cannot host type %q", n.id, snap.Type)
	}
	inst, err := t.decodeState(snap.State)
	if err != nil {
		return nil, wire.Errorf(wire.CodeInternal, "reinstall %s: %v", snap.ID, err)
	}
	rec := store.NewRecord(snap.ID, snap.Type, inst)
	rec.Pol = snap.Pol
	rec.Gen = snap.Gen
	rec.StateBytes = int64(len(snap.State))
	for _, e := range snap.Edges {
		rec.AddEdge(e.Other, e.Alliance)
	}
	return rec, nil
}

// installBatch registers arriving objects from their snapshots, as part
// of migration token. The batch is all-or-nothing: either every
// snapshot is installed or none is — the sharded store's InstallBatch
// performs the check-then-commit under the involved shards' locks (see
// store.InstallBatch for the replaceability rule that prevents
// concurrent migrations from duplicating an object).
func (n *Node) installBatch(snaps []wire.Snapshot, token uint64) error {
	recs := make([]*store.Record, len(snaps))
	for i := range snaps {
		rec, err := n.decodeSnapshot(&snaps[i])
		if err != nil {
			return err
		}
		recs[i] = rec
	}
	if err := n.store.InstallBatch(recs, token); err != nil {
		return err
	}
	installed := make([]Ref, len(snaps))
	for i, snap := range snaps {
		installed[i] = Ref{OID: snap.ID}
	}
	n.stats.objectsInstalled.Add(int64(len(snaps)))
	n.emit(Event{Kind: EventInstall, Objects: installed})
	return nil
}
