package objmig

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objmig/internal/core"
)

// overshootWorld stages the concurrent-coordinator race: four
// coordinators each hosting a 3-blob closure (installed there by a
// prior migration, so every member has a real StateBytes), plus one
// byte-capped target. Small chunks force the streamed transfer path,
// keeping each migration's begin-to-commit window wide open for the
// race.
type overshootWorld struct {
	coords  []*Node
	anchors []Ref
	target  *Node
}

const (
	overshootBlobBytes = 8 << 10
	overshootGroupSize = 3
	// One ~24 KiB group fits, two do not: the target byte capacity the
	// admission defends.
	overshootCapBytes = 30 << 10
)

func newOvershootWorld(t *testing.T, disableReservations bool) *overshootWorld {
	t.Helper()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	bt := newBlobType()
	mk := func(id string, capBytes int64) *Node {
		n, err := NewNode(Config{
			ID:            NodeID(id),
			Cluster:       cl,
			CapacityBytes: capBytes,
			Migrate:       MigrateConfig{ChunkBytes: 4 << 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterType(bt); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	w := &overshootWorld{target: mk("target", overshootCapBytes)}
	if err := w.target.EnablePlacement(PlacementConfig{
		Heartbeat: -1, OriginPass: -1,
		DisableReservations: disableReservations,
	}); err != nil {
		t.Fatal(err)
	}
	seed := mk("seed", 0)
	for i := 0; i < 4; i++ {
		c := mk(fmt.Sprintf("coord%d", i), 0)
		anchor, err := seed.Create("blob")
		if err != nil {
			t.Fatal(err)
		}
		group := []Ref{anchor}
		for j := 1; j < overshootGroupSize; j++ {
			m, err := seed.Create("blob")
			if err != nil {
				t.Fatal(err)
			}
			if err := seed.Attach(ctx, anchor, m, NoAlliance); err != nil {
				t.Fatal(err)
			}
			group = append(group, m)
		}
		for _, m := range group {
			if _, err := Call[int, int](ctx, seed, m, "Fill", overshootBlobBytes); err != nil {
				t.Fatal(err)
			}
		}
		// Move the closure onto its coordinator: the install stamps each
		// member's StateBytes, which is what the coordinator's byte
		// estimate in MigrateBegin is summed from.
		if err := seed.Migrate(ctx, anchor, c.ID()); err != nil {
			t.Fatal(err)
		}
		w.coords = append(w.coords, c)
		w.anchors = append(w.anchors, anchor)
	}
	// Inject per-frame latency only now that staging is done: in-memory
	// RPCs complete in microseconds, which lets one whole migration
	// finish begin-to-commit before the next coordinator's begin even
	// lands. A realistic frame delay keeps every session's
	// begin-to-commit window open across all four coordinators.
	cl.SetLatency(300 * time.Microsecond)
	return w
}

// race fires every coordinator's migration to the target concurrently
// and returns the per-coordinator errors.
func (w *overshootWorld) race(ctx context.Context) []error {
	errs := make([]error, len(w.coords))
	var wg sync.WaitGroup
	for i := range w.coords {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.coords[i].Migrate(ctx, w.anchors[i], w.target.ID())
		}(i)
	}
	wg.Wait()
	return errs
}

// TestReservationLedgerPreventsOvershoot is the acceptance battery for
// the reservation ledger and the proactive shedder, meant to run under
// -race:
//
//   - without the ledger (the A/B knob) four concurrent coordinators
//     collectively overshoot the target's byte capacity, every
//     individual admission having been correct against the counts it
//     saw;
//   - with the ledger, peak resident bytes never exceed the capacity,
//     the vetoed coordinators' groups stay usable at their sources;
//   - a node pushed past ShedRatio drains itself below it.
func TestReservationLedgerPreventsOvershoot(t *testing.T) {
	t.Parallel()

	t.Run("overshoot-without-ledger", func(t *testing.T) {
		t.Parallel()
		ctx := ctxShort(t)
		// The seed predicate is check-then-act: an overshoot needs at
		// least two begins to land before the first commit. The streamed
		// window makes that all but certain; retry the staging against
		// scheduler luck rather than flake.
		for attempt := 0; attempt < 8; attempt++ {
			w := newOvershootWorld(t, true)
			w.race(ctx)
			_, bytes := w.target.store.HostedStats()
			if bytes > overshootCapBytes {
				return // the race the ledger exists to close, demonstrated
			}
		}
		t.Fatal("check-then-act admission never overshot across 5 attempts; the A/B baseline has lost its race window")
	})

	t.Run("ledger-caps-peak", func(t *testing.T) {
		t.Parallel()
		ctx := ctxShort(t)
		w := newOvershootWorld(t, false)

		// Peak monitor: resident bytes at the target, sampled throughout
		// the race, must never exceed the capacity.
		var peak atomic.Int64
		stop := make(chan struct{})
		var mon sync.WaitGroup
		mon.Add(1)
		go func() {
			defer mon.Done()
			for {
				_, bytes := w.target.store.HostedStats()
				if bytes > peak.Load() {
					peak.Store(bytes)
				}
				select {
				case <-stop:
					return
				case <-time.After(100 * time.Microsecond):
				}
			}
		}()
		errs := w.race(ctx)
		close(stop)
		mon.Wait()

		var admitted, vetoed int
		for i, err := range errs {
			switch {
			case err == nil:
				admitted++
			case errors.Is(err, ErrDenied) && strings.Contains(err.Error(), "capacity"):
				vetoed++
			default:
				t.Fatalf("coordinator %d: %v, want success or capacity denial", i, err)
			}
		}
		if admitted < 1 || admitted+vetoed != len(errs) {
			t.Fatalf("%d admitted / %d vetoed of %d", admitted, vetoed, len(errs))
		}
		if p := peak.Load(); p > overshootCapBytes {
			t.Fatalf("peak resident bytes %d exceeded the %d capacity", p, int64(overshootCapBytes))
		}
		st := w.target.Stats()
		if st.PlacementReservations < int64(admitted) {
			t.Fatalf("PlacementReservations = %d, want >= %d", st.PlacementReservations, admitted)
		}
		if st.PlacementVetoes < int64(vetoed) {
			t.Fatalf("PlacementVetoes = %d, want >= %d", st.PlacementVetoes, vetoed)
		}
		// Claims must not leak: every admitted group converted to
		// residency, every veto claimed nothing.
		if res := w.target.resv.Reserved(); res.Objects != 0 || res.Bytes != 0 {
			t.Fatalf("reservations leaked after the race: %+v", res)
		}
		// Vetoed coordinators rolled their groups back: every member is
		// still hosted and usable at its source (a wedged pause would
		// time the call out).
		for i, err := range errs {
			if err == nil {
				continue
			}
			if at, lerr := w.coords[i].Locate(ctx, w.anchors[i]); lerr != nil || at != w.coords[i].ID() {
				t.Fatalf("vetoed group %d: anchor at %v (%v), want its coordinator", i, at, lerr)
			}
			if _, cerr := Call[int, int](ctx, w.coords[i], w.anchors[i], "Fill", overshootBlobBytes); cerr != nil {
				t.Fatalf("vetoed group %d unusable after abort: %v", i, cerr)
			}
		}
	})

	t.Run("shed-drains-overload", func(t *testing.T) {
		t.Parallel()
		var shedEvents atomic.Int64
		obs := func(e Event) {
			if e.Kind == EventPlacement && e.Outcome == "shed" {
				shedEvents.Add(1)
			}
		}
		nodes := placementTestCluster(t, 3, []int64{10, 10, 10}, obs)
		n0 := nodes[0]
		ctx := ctxShort(t)
		// Nine objects against a ShedRatio of 0.6: n0 starts at 0.9
		// utilisation and must drive itself down to 6 objects.
		refs := make([]Ref, 0, 9)
		for i := 0; i < 9; i++ {
			refs = append(refs, mustCreate(t, n0))
		}
		for _, n := range nodes {
			if err := n.EnablePlacement(PlacementConfig{
				Heartbeat:  10 * time.Millisecond,
				OriginPass: -1,
				ShedRatio:  0.6,
				ShedPass:   15 * time.Millisecond,
				Cooldown:   100 * time.Millisecond,
			}); err != nil {
				t.Fatal(err)
			}
		}
		// Peer discovery is traffic-driven: gossip heartbeats go to
		// configured peers, viewed peers, and observed callers (the
		// affinity tracker runs only while placement is enabled). One
		// call from each peer seeds n0's caller set; the heartbeat
		// responses then converge the views.
		for _, caller := range nodes[1:] {
			if _, err := Call[int, int](ctx, caller, refs[0], "Add", 1); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			if hosted, _ := n0.store.HostedStats(); hosted <= 6 {
				break
			}
			if time.Now().After(deadline) {
				hosted, _ := n0.store.HostedStats()
				t.Fatalf("n0 still hosts %d objects (want <= 6): sheds=%d",
					hosted, n0.Stats().PlacementSheds)
			}
			time.Sleep(5 * time.Millisecond)
		}
		st := n0.Stats()
		if st.PlacementSheds < 3 {
			t.Fatalf("PlacementSheds = %d, want >= 3", st.PlacementSheds)
		}
		if shedEvents.Load() < 3 {
			t.Fatalf("shed events = %d, want >= 3", shedEvents.Load())
		}
		// Zero oscillation: once below the ratio nothing moves again —
		// ShedTarget refuses any peer its shed would push to the ratio,
		// so the receivers never become shedders themselves.
		settled := st.PlacementSheds
		time.Sleep(500 * time.Millisecond)
		var total int64
		for _, n := range nodes {
			total += n.Stats().PlacementSheds
		}
		if total != settled {
			t.Fatalf("sheds kept happening after the drain: %d total, %d at the settle point", total, settled)
		}
		if hosted, _ := n0.store.HostedStats(); hosted > 6 {
			t.Fatalf("n0 regained objects after draining: %d hosted", hosted)
		}
	})
}

// TestExplicitAdmissionTOCTOURegression pins the check-then-act bug
// for explicit Move/Migrate grants, deterministically: two admissions
// race one object of headroom. The seed predicate (reservations
// disabled) admits both — the double admission that used to overshoot
// capacity. The ledger refuses the second.
func TestExplicitAdmissionTOCTOURegression(t *testing.T) {
	t.Parallel()
	nodes := placementTestCluster(t, 2, []int64{0, 1}, nil)
	src, tgt := nodes[0], nodes[1]
	a, b := mustCreate(t, src), mustCreate(t, src)

	// A/B baseline: both admissions pass the snapshot predicate — each
	// alone is within capacity, together they are not.
	if err := tgt.EnablePlacement(PlacementConfig{
		Heartbeat: -1, OriginPass: -1, DisableReservations: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.admitAndReserve([]core.OID{a.OID}, 0, src.ID(), 1); err != nil {
		t.Fatalf("baseline first admission: %v", err)
	}
	if _, err := tgt.admitAndReserve([]core.OID{b.OID}, 0, src.ID(), 2); err != nil {
		t.Fatalf("baseline second admission refused — the seed predicate no longer double-admits, update this regression: %v", err)
	}
	tgt.DisablePlacement()

	// The ledger: the first admission claims the single slot, the
	// second is refused at once.
	if err := tgt.EnablePlacement(PlacementConfig{Heartbeat: -1, OriginPass: -1}); err != nil {
		t.Fatal(err)
	}
	reserved, err := tgt.admitAndReserve([]core.OID{a.OID}, 0, src.ID(), 3)
	if err != nil || !reserved {
		t.Fatalf("ledger first admission: reserved=%v err=%v", reserved, err)
	}
	if _, err := tgt.admitAndReserve([]core.OID{b.OID}, 0, src.ID(), 4); err == nil ||
		!strings.Contains(err.Error(), "capacity") {
		t.Fatalf("ledger second admission: %v, want capacity refusal", err)
	}
	if got := tgt.resv.Reserved(); got.Objects != 1 {
		t.Fatalf("reserved = %+v, want the single admitted object", got)
	}
	tgt.releaseReservation(src.ID(), 3)
	if got := tgt.resv.Reserved(); got.Objects != 0 {
		t.Fatalf("reserved after release = %+v, want zero", got)
	}
}
