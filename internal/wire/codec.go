package wire

// The codec behind Marshal/MarshalAppend/Unmarshal. Two layers:
//
//   - A hand-rolled binary fast path for the high-frequency bodies —
//     invoke, locate and home-update traffic, the snapshots that make
//     up every migration batch, and the move/end/migrate control
//     bodies that heat up once the autopilot issues migrations
//     continuously. These encode to [tag][varint-framed fields] with
//     zero reflection and no per-message encoder state.
//   - A gob fallback for everything else (control-plane bodies and
//     remote errors), prefixed with tagGob. Gob's encoder/decoder
//     objects cannot be reused across independent messages (each
//     stream re-sends type descriptors), so the fallback encodes
//     through a throwaway encoder; the decode side pools its
//     bytes.Reader.
//
// Both layers are append-style: encoders extend the destination slice
// in place, so the rpc layer can reserve a frame header and have the
// body land directly behind it in the same (pooled) buffer — a message
// is encoded exactly once, into its final frame. See MarshalAppend in
// wire.go for the buffer-ownership rules.
//
// A gob stream's first byte is a positive segment length, so tagGob = 0
// can never collide with a legacy un-prefixed message. Both layers sit
// behind the package's Marshal/Unmarshal API: internal/rpc and the
// transports pick the fast path up transparently.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"objmig/internal/core"
	"objmig/internal/framebuf"
)

const (
	tagGob byte = iota
	tagInvokeReq
	tagInvokeResp
	tagLocateReq
	tagLocateResp
	tagHomeUpdate
	tagHomeUpdateResp
	tagSnapshot
	tagPauseResp
	tagInstallReq
	tagMoveReq
	tagMoveResp
	tagEndReq
	tagEndResp
	tagMigrateReq
	tagMigrateResp
	tagMigrateBeginReq
	tagMigrateBeginResp
	tagInstallChunkReq
	tagInstallChunkResp
	tagInstallCommitReq
	tagInstallCommitResp
	tagLoadGossipReq
	tagLoadGossipResp
)

// --- Gob fallback ---

// sliceWriter adapts an append target to io.Writer so gob can encode
// directly into the tail of a frame buffer.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

var decReaderPool = sync.Pool{New: func() interface{} { return new(bytes.Reader) }}

func marshalGobAppend(dst []byte, v interface{}) ([]byte, error) {
	w := sliceWriter{b: append(dst, tagGob)}
	if err := gob.NewEncoder(&w).Encode(v); err != nil {
		// Leave dst exactly as handed in: a failed encode must not
		// publish half a body into a frame the caller will reuse.
		return dst, fmt.Errorf("wire: marshal %T: %w", v, err)
	}
	return w.b, nil
}

func unmarshalGob(data []byte, v interface{}) error {
	r := decReaderPool.Get().(*bytes.Reader)
	r.Reset(data)
	err := gob.NewDecoder(r).Decode(v)
	r.Reset(nil) // don't pin the frame while the reader sits in the pool
	decReaderPool.Put(r)
	if err != nil {
		return fmt.Errorf("wire: unmarshal %T: %w", v, err)
	}
	return nil
}

// --- Fast-path encoding ---

// grow ensures dst has room for n more bytes, reallocating at most
// once (append's geometric growth would copy the prefix repeatedly
// while a large body trickles in). The replacement buffer comes from
// the frame pool, so a bulk body outgrowing the small frame the rpc
// layer starts from lands in a recyclable buffer — whoever Puts the
// final frame returns the big allocation to the pool. The outgrown
// buffer is left to the garbage collector: dst stays the caller's
// under the append contract, so grow must never recycle it.
func grow(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst
	}
	out := framebuf.Get(len(dst) + n)[:len(dst)]
	copy(out, dst)
	return out
}

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendByteSlice(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendOID(b []byte, id core.OID) []byte {
	b = appendStr(b, string(id.Origin))
	return appendUvarint(b, id.Seq)
}

// appendNodeLoad encodes one load sample (~8 varints plus the node
// name; loadSize is its grow hint).
func appendNodeLoad(b []byte, l *NodeLoad) []byte {
	b = appendStr(b, string(l.Node))
	b = appendVarint(b, l.Objects)
	b = appendVarint(b, l.Bytes)
	b = appendVarint(b, l.RateMilli)
	b = appendVarint(b, l.Capacity)
	b = appendVarint(b, l.CapBytes)
	b = appendUvarint(b, l.Seq)
	return appendUvarint(b, uint64(l.Health))
}

// loadSize estimates the encoded size of a load sample.
func loadSize(l *NodeLoad) int {
	if l == nil {
		return 1
	}
	return 59 + len(l.Node)
}

func appendOIDs(b []byte, ids []core.OID) []byte {
	b = appendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = appendOID(b, id)
	}
	return b
}

func appendSnapshotBody(b []byte, s *Snapshot) []byte {
	b = appendOID(b, s.ID)
	b = appendStr(b, s.Type)
	b = appendByteSlice(b, s.State)
	b = appendBool(b, s.Pol.Fixed)
	b = appendBool(b, s.Pol.Lock.Held)
	b = appendStr(b, string(s.Pol.Lock.Owner))
	b = appendUvarint(b, uint64(s.Pol.Lock.Block))
	// OpenMoves in sorted key order: wire images stay deterministic.
	b = appendUvarint(b, uint64(len(s.Pol.OpenMoves)))
	if len(s.Pol.OpenMoves) > 0 {
		keys := make([]core.NodeID, 0, len(s.Pol.OpenMoves))
		for k := range s.Pol.OpenMoves {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			b = appendStr(b, string(k))
			b = appendVarint(b, int64(s.Pol.OpenMoves[k]))
		}
	}
	b = appendUvarint(b, uint64(len(s.Edges)))
	for _, e := range s.Edges {
		b = appendOID(b, e.Other)
		b = appendUvarint(b, uint64(e.Alliance))
	}
	return appendUvarint(b, s.Gen)
}

// snapshotsSize estimates the encoded size of a snapshot batch (a grow
// hint, not a bound).
func snapshotsSize(snaps []Snapshot) int {
	n := 0
	for i := range snaps {
		n += SnapshotSize(&snaps[i])
	}
	return n
}

// oidsSize estimates the encoded size of an OID list, origin strings
// included — a flat per-entry constant would undershoot for realistic
// node-ID lengths and force a second, non-pooled reallocation
// mid-encode.
func oidsSize(ids []core.OID) int {
	n := 10
	for i := range ids {
		n += 12 + len(ids[i].Origin)
	}
	return n
}

// marshalFastAppend appends the encoding of a known hot-path body to
// dst; ok=false means the body has no fast path and the caller falls
// back to gob. Both pointer and value forms are accepted, mirroring
// gob. Bodies that can carry bulk payloads pre-grow dst once, so even
// a megabyte-sized snapshot chunk lands in its frame with at most one
// reallocation.
func marshalFastAppend(dst []byte, v interface{}) (data []byte, ok bool) {
	switch m := v.(type) {
	case *InvokeReq:
		b := grow(dst, 32+len(m.Obj.Origin)+len(m.Method)+len(m.Arg)+len(m.From))
		b = append(b, tagInvokeReq)
		b = appendOID(b, m.Obj)
		b = appendStr(b, m.Method)
		b = appendByteSlice(b, m.Arg)
		return appendStr(b, string(m.From)), true
	case InvokeReq:
		return marshalFastAppend(dst, &m)
	case *InvokeResp:
		b := grow(dst, 16+len(m.Result)+len(m.At))
		b = append(b, tagInvokeResp)
		b = appendByteSlice(b, m.Result)
		return appendStr(b, string(m.At)), true
	case InvokeResp:
		return marshalFastAppend(dst, &m)
	case *LocateReq:
		b := append(dst, tagLocateReq)
		return appendOID(b, m.Obj), true
	case LocateReq:
		return marshalFastAppend(dst, &m)
	case *LocateResp:
		b := append(dst, tagLocateResp)
		return appendStr(b, string(m.At)), true
	case LocateResp:
		return marshalFastAppend(dst, &m)
	case *HomeUpdate:
		hint := 32 + oidsSize(m.Objs) + len(m.At) + loadSize(m.Load) + 10*len(m.Gens)
		for _, o := range m.Aff {
			hint += 24 + len(o.Obj.Origin) + len(o.From)
		}
		for i := range m.Closures {
			cl := &m.Closures[i]
			hint += 24 + len(cl.Anchor.Origin) + oidsSize(cl.Members)
		}
		b := grow(dst, hint)
		b = append(b, tagHomeUpdate)
		b = appendOIDs(b, m.Objs)
		b = appendStr(b, string(m.At))
		b = appendUvarint(b, uint64(len(m.Aff)))
		for _, o := range m.Aff {
			b = appendOID(b, o.Obj)
			b = appendStr(b, string(o.From))
			b = appendVarint(b, o.Count)
		}
		b = appendBool(b, m.Load != nil)
		if m.Load != nil {
			b = appendNodeLoad(b, m.Load)
		}
		b = appendUvarint(b, uint64(len(m.Gens)))
		for _, g := range m.Gens {
			b = appendUvarint(b, g)
		}
		b = appendUvarint(b, uint64(len(m.Closures)))
		for i := range m.Closures {
			cl := &m.Closures[i]
			b = appendOID(b, cl.Anchor)
			b = appendUvarint(b, cl.Gen)
			b = appendOIDs(b, cl.Members)
		}
		return appendUvarint(b, m.Trace), true
	case HomeUpdate:
		return marshalFastAppend(dst, &m)
	case *HomeUpdateResp:
		b := grow(dst, 2+loadSize(m.Load))
		b = append(b, tagHomeUpdateResp)
		b = appendBool(b, m.Load != nil)
		if m.Load != nil {
			b = appendNodeLoad(b, m.Load)
		}
		return b, true
	case HomeUpdateResp:
		return marshalFastAppend(dst, &m)
	case *Snapshot:
		b := grow(dst, 1+SnapshotSize(m))
		b = append(b, tagSnapshot)
		return appendSnapshotBody(b, m), true
	case Snapshot:
		return marshalFastAppend(dst, &m)
	case *PauseResp:
		b := grow(dst, 16+snapshotsSize(m.Snapshots)+oidsSize(m.Pending))
		b = append(b, tagPauseResp)
		b = appendUvarint(b, uint64(len(m.Snapshots)))
		for i := range m.Snapshots {
			b = appendSnapshotBody(b, &m.Snapshots[i])
		}
		return appendOIDs(b, m.Pending), true
	case PauseResp:
		return marshalFastAppend(dst, &m)
	case *InstallReq:
		b := grow(dst, 34+len(m.From)+snapshotsSize(m.Snapshots))
		b = append(b, tagInstallReq)
		b = appendUvarint(b, uint64(len(m.Snapshots)))
		for i := range m.Snapshots {
			b = appendSnapshotBody(b, &m.Snapshots[i])
		}
		b = appendUvarint(b, m.Token)
		b = appendStr(b, string(m.From))
		return appendUvarint(b, m.Trace), true
	case InstallReq:
		return marshalFastAppend(dst, &m)
	case *MoveReq:
		b := append(dst, tagMoveReq)
		b = appendOID(b, m.Obj)
		b = appendStr(b, string(m.From))
		b = appendUvarint(b, uint64(m.Block))
		return appendUvarint(b, uint64(m.Alliance)), true
	case MoveReq:
		return marshalFastAppend(dst, &m)
	case *MoveResp:
		b := append(dst, tagMoveResp)
		b = appendVarint(b, int64(m.Outcome))
		b = appendVarint(b, int64(m.Reason))
		b = appendStr(b, string(m.At))
		return appendOIDs(b, m.Moved), true
	case MoveResp:
		return marshalFastAppend(dst, &m)
	case *EndReq:
		b := append(dst, tagEndReq)
		b = appendOID(b, m.Obj)
		b = appendStr(b, string(m.From))
		b = appendUvarint(b, uint64(m.Block))
		b = appendUvarint(b, uint64(m.Alliance))
		return appendOIDs(b, m.Members), true
	case EndReq:
		return marshalFastAppend(dst, &m)
	case *EndResp:
		b := append(dst, tagEndResp)
		b = appendBool(b, m.Unlocked)
		b = appendBool(b, m.Migrated)
		return appendStr(b, string(m.At)), true
	case EndResp:
		return marshalFastAppend(dst, &m)
	case *MigrateReq:
		b := append(dst, tagMigrateReq)
		b = appendOID(b, m.Obj)
		b = appendStr(b, string(m.Target))
		b = appendUvarint(b, uint64(m.Alliance))
		return appendBool(b, m.Fix), true
	case MigrateReq:
		return marshalFastAppend(dst, &m)
	case *MigrateResp:
		b := append(dst, tagMigrateResp)
		b = appendStr(b, string(m.At))
		return appendOIDs(b, m.Moved), true
	case MigrateResp:
		return marshalFastAppend(dst, &m)
	case *MigrateBeginReq:
		b := grow(dst, 44+len(m.From)+oidsSize(m.Objs))
		b = append(b, tagMigrateBeginReq)
		b = appendUvarint(b, m.Token)
		b = appendStr(b, string(m.From))
		b = appendOIDs(b, m.Objs)
		b = appendVarint(b, m.Bytes)
		return appendUvarint(b, m.Trace), true
	case MigrateBeginReq:
		return marshalFastAppend(dst, &m)
	case *MigrateBeginResp:
		b := grow(dst, 12)
		b = append(b, tagMigrateBeginResp)
		b = appendBool(b, m.Reserved)
		return appendVarint(b, m.ReservedBytes), true
	case MigrateBeginResp:
		return marshalFastAppend(dst, &m)
	case *InstallChunkReq:
		b := grow(dst, 42+len(m.From)+snapshotsSize(m.Snapshots))
		b = append(b, tagInstallChunkReq)
		b = appendUvarint(b, m.Token)
		b = appendStr(b, string(m.From))
		b = appendUvarint(b, m.Seq)
		b = appendUvarint(b, uint64(len(m.Snapshots)))
		for i := range m.Snapshots {
			b = appendSnapshotBody(b, &m.Snapshots[i])
		}
		return appendUvarint(b, m.Trace), true
	case InstallChunkReq:
		return marshalFastAppend(dst, &m)
	case *InstallChunkResp:
		b := append(dst, tagInstallChunkResp)
		return appendVarint(b, int64(m.Staged)), true
	case InstallChunkResp:
		return marshalFastAppend(dst, &m)
	case *InstallCommitReq:
		b := append(dst, tagInstallCommitReq)
		b = appendUvarint(b, m.Token)
		b = appendStr(b, string(m.From))
		return appendUvarint(b, m.Trace), true
	case InstallCommitReq:
		return marshalFastAppend(dst, &m)
	case *InstallCommitResp:
		b := append(dst, tagInstallCommitResp)
		return appendVarint(b, int64(m.Installed)), true
	case InstallCommitResp:
		return marshalFastAppend(dst, &m)
	case *LoadGossipReq:
		b := grow(dst, 1+loadSize(&m.Load))
		b = append(b, tagLoadGossipReq)
		return appendNodeLoad(b, &m.Load), true
	case LoadGossipReq:
		return marshalFastAppend(dst, &m)
	case *LoadGossipResp:
		b := grow(dst, 1+loadSize(&m.Load))
		b = append(b, tagLoadGossipResp)
		return appendNodeLoad(b, &m.Load), true
	case LoadGossipResp:
		return marshalFastAppend(dst, &m)
	}
	return dst, false
}

// --- Fast-path decoding ---

// reader is a cursor over a fast-path body. The first field error
// sticks; callers check err once at the end.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated fast-path body at offset %d", r.pos)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) bool() bool { return r.uvarint() != 0 }

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.pos) {
		r.fail()
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// byteSlice copies the field out (wire bodies may alias reused
// transport frames) and maps the empty slice to nil, matching gob.
func (r *reader) byteSlice() []byte {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return out
}

func (r *reader) oid() core.OID {
	origin := r.str()
	seq := r.uvarint()
	return core.OID{Origin: core.NodeID(origin), Seq: seq}
}

func (r *reader) oids() []core.OID {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) { // each OID takes ≥ 2 bytes; cheap sanity bound
		r.fail()
		return nil
	}
	out := make([]core.OID, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, r.oid())
	}
	return out
}

func (r *reader) snapshotBody(s *Snapshot) {
	s.ID = r.oid()
	s.Type = r.str()
	s.State = r.byteSlice()
	s.Pol.Fixed = r.bool()
	s.Pol.Lock.Held = r.bool()
	s.Pol.Lock.Owner = core.NodeID(r.str())
	s.Pol.Lock.Block = core.BlockID(r.uvarint())
	if n := r.uvarint(); n > 0 && r.err == nil {
		if n > uint64(len(r.data)-r.pos) { // each entry takes ≥ 2 bytes
			r.fail()
			return
		}
		s.Pol.OpenMoves = make(map[core.NodeID]int, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			k := core.NodeID(r.str())
			s.Pol.OpenMoves[k] = int(r.varint())
		}
	}
	if n := r.uvarint(); n > 0 && r.err == nil {
		if n > uint64(len(r.data)-r.pos) {
			r.fail()
			return
		}
		s.Edges = make([]EdgeRec, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			var e EdgeRec
			e.Other = r.oid()
			e.Alliance = core.AllianceID(r.uvarint())
			s.Edges = append(s.Edges, e)
		}
	}
	s.Gen = r.uvarint()
}

func (r *reader) uvarints() []uint64 {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) { // each value takes ≥ 1 byte
		r.fail()
		return nil
	}
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, r.uvarint())
	}
	return out
}

func (r *reader) closureLocs() []ClosureLoc {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) { // each entry takes ≥ 4 bytes
		r.fail()
		return nil
	}
	out := make([]ClosureLoc, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		var cl ClosureLoc
		cl.Anchor = r.oid()
		cl.Gen = r.uvarint()
		cl.Members = r.oids()
		out = append(out, cl)
	}
	return out
}

func (r *reader) nodeLoad(l *NodeLoad) {
	l.Node = core.NodeID(r.str())
	l.Objects = r.varint()
	l.Bytes = r.varint()
	l.RateMilli = r.varint()
	l.Capacity = r.varint()
	l.CapBytes = r.varint()
	l.Seq = r.uvarint()
	l.Health = uint8(r.uvarint())
}

// optNodeLoad decodes a presence-flagged load sample (nil when absent).
func (r *reader) optNodeLoad() *NodeLoad {
	if !r.bool() || r.err != nil {
		return nil
	}
	l := new(NodeLoad)
	r.nodeLoad(l)
	return l
}

func (r *reader) affinityObs() []AffinityObs {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) { // each entry takes ≥ 4 bytes
		r.fail()
		return nil
	}
	out := make([]AffinityObs, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		var o AffinityObs
		o.Obj = r.oid()
		o.From = core.NodeID(r.str())
		o.Count = r.varint()
		out = append(out, o)
	}
	return out
}

func (r *reader) snapshots() []Snapshot {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) {
		r.fail()
		return nil
	}
	out := make([]Snapshot, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		r.snapshotBody(&out[i])
	}
	return out
}

// unmarshalFast decodes a fast-path body whose tag has been stripped.
func unmarshalFast(tag byte, data []byte, v interface{}) error {
	r := &reader{data: data}
	switch out := v.(type) {
	case *InvokeReq:
		if tag != tagInvokeReq {
			return tagMismatch(tag, v)
		}
		out.Obj = r.oid()
		out.Method = r.str()
		out.Arg = r.byteSlice()
		out.From = core.NodeID(r.str())
	case *InvokeResp:
		if tag != tagInvokeResp {
			return tagMismatch(tag, v)
		}
		out.Result = r.byteSlice()
		out.At = core.NodeID(r.str())
	case *LocateReq:
		if tag != tagLocateReq {
			return tagMismatch(tag, v)
		}
		out.Obj = r.oid()
	case *LocateResp:
		if tag != tagLocateResp {
			return tagMismatch(tag, v)
		}
		out.At = core.NodeID(r.str())
	case *HomeUpdate:
		if tag != tagHomeUpdate {
			return tagMismatch(tag, v)
		}
		out.Objs = r.oids()
		out.At = core.NodeID(r.str())
		out.Aff = r.affinityObs()
		out.Load = r.optNodeLoad()
		out.Gens = r.uvarints()
		out.Closures = r.closureLocs()
		out.Trace = r.uvarint()
	case *HomeUpdateResp:
		if tag != tagHomeUpdateResp {
			return tagMismatch(tag, v)
		}
		out.Load = r.optNodeLoad()
	case *Snapshot:
		if tag != tagSnapshot {
			return tagMismatch(tag, v)
		}
		r.snapshotBody(out)
	case *PauseResp:
		if tag != tagPauseResp {
			return tagMismatch(tag, v)
		}
		out.Snapshots = r.snapshots()
		out.Pending = r.oids()
	case *InstallReq:
		if tag != tagInstallReq {
			return tagMismatch(tag, v)
		}
		out.Snapshots = r.snapshots()
		out.Token = r.uvarint()
		out.From = core.NodeID(r.str())
		out.Trace = r.uvarint()
	case *MoveReq:
		if tag != tagMoveReq {
			return tagMismatch(tag, v)
		}
		out.Obj = r.oid()
		out.From = core.NodeID(r.str())
		out.Block = core.BlockID(r.uvarint())
		out.Alliance = core.AllianceID(r.uvarint())
	case *MoveResp:
		if tag != tagMoveResp {
			return tagMismatch(tag, v)
		}
		out.Outcome = MoveOutcome(r.varint())
		out.Reason = core.DenyReason(r.varint())
		out.At = core.NodeID(r.str())
		out.Moved = r.oids()
	case *EndReq:
		if tag != tagEndReq {
			return tagMismatch(tag, v)
		}
		out.Obj = r.oid()
		out.From = core.NodeID(r.str())
		out.Block = core.BlockID(r.uvarint())
		out.Alliance = core.AllianceID(r.uvarint())
		out.Members = r.oids()
	case *EndResp:
		if tag != tagEndResp {
			return tagMismatch(tag, v)
		}
		out.Unlocked = r.bool()
		out.Migrated = r.bool()
		out.At = core.NodeID(r.str())
	case *MigrateReq:
		if tag != tagMigrateReq {
			return tagMismatch(tag, v)
		}
		out.Obj = r.oid()
		out.Target = core.NodeID(r.str())
		out.Alliance = core.AllianceID(r.uvarint())
		out.Fix = r.bool()
	case *MigrateResp:
		if tag != tagMigrateResp {
			return tagMismatch(tag, v)
		}
		out.At = core.NodeID(r.str())
		out.Moved = r.oids()
	case *MigrateBeginReq:
		if tag != tagMigrateBeginReq {
			return tagMismatch(tag, v)
		}
		out.Token = r.uvarint()
		out.From = core.NodeID(r.str())
		out.Objs = r.oids()
		out.Bytes = r.varint()
		out.Trace = r.uvarint()
	case *MigrateBeginResp:
		if tag != tagMigrateBeginResp {
			return tagMismatch(tag, v)
		}
		out.Reserved = r.bool()
		out.ReservedBytes = r.varint()
	case *InstallChunkReq:
		if tag != tagInstallChunkReq {
			return tagMismatch(tag, v)
		}
		out.Token = r.uvarint()
		out.From = core.NodeID(r.str())
		out.Seq = r.uvarint()
		out.Snapshots = r.snapshots()
		out.Trace = r.uvarint()
	case *InstallChunkResp:
		if tag != tagInstallChunkResp {
			return tagMismatch(tag, v)
		}
		out.Staged = int(r.varint())
	case *InstallCommitReq:
		if tag != tagInstallCommitReq {
			return tagMismatch(tag, v)
		}
		out.Token = r.uvarint()
		out.From = core.NodeID(r.str())
		out.Trace = r.uvarint()
	case *InstallCommitResp:
		if tag != tagInstallCommitResp {
			return tagMismatch(tag, v)
		}
		out.Installed = int(r.varint())
	case *LoadGossipReq:
		if tag != tagLoadGossipReq {
			return tagMismatch(tag, v)
		}
		r.nodeLoad(&out.Load)
	case *LoadGossipResp:
		if tag != tagLoadGossipResp {
			return tagMismatch(tag, v)
		}
		r.nodeLoad(&out.Load)
	default:
		return fmt.Errorf("wire: unmarshal %T: unrecognised body (tag %d)", v, tag)
	}
	if r.err != nil {
		return fmt.Errorf("wire: unmarshal %T: %w", v, r.err)
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("wire: unmarshal %T: %d trailing bytes", v, len(r.data)-r.pos)
	}
	return nil
}

func tagMismatch(tag byte, v interface{}) error {
	return fmt.Errorf("wire: unmarshal %T: body carries tag %d", v, tag)
}
