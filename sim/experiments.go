package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"

	"objmig/internal/core"
)

// Series is one curve of an experiment: a label plus the policy
// configuration it represents.
type Series struct {
	Label  string
	Policy core.PolicyKind
	Attach core.AttachMode // zero value: unrestricted
	// NoGroupLock enables the group-lock ablation for this series
	// (see Config.DisableGroupLock).
	NoGroupLock bool
	// SmallNodeCap caps node 0's resident server objects for this
	// series (see Config.SmallNodeCapacity); 0 keeps it uncapped.
	SmallNodeCap int
	// ShedRatio arms proactive shedding on the capped node for this
	// series (see Config.ShedRatio); 0 leaves it off.
	ShedRatio float64
	// DrainAt schedules a drain job against node 0 at this simulated
	// time for this series (see Config.DrainAt); 0 leaves it off.
	DrainAt float64
	// SickAt / SickFor make node 0 critical for the window
	// [SickAt, SickAt+SickFor) in this series (see Config.SickAt);
	// SickFor 0 leaves the health model off.
	SickAt  float64
	SickFor float64
}

// Metric selects which result column an experiment plots.
type Metric int

const (
	// MetricCommTime is mean communication time per call, the
	// headline metric of Figs. 8, 12, 14 and 16.
	MetricCommTime Metric = iota + 1
	// MetricCallDuration is the pure invocation-duration component
	// (Fig. 10).
	MetricCallDuration
	// MetricMigrationPerCall is the amortised migration component
	// (Fig. 11).
	MetricMigrationPerCall
)

func (m Metric) String() string {
	switch m {
	case MetricCommTime:
		return "mean communication-time per call"
	case MetricCallDuration:
		return "mean duration of one call"
	case MetricMigrationPerCall:
		return "mean migration-time per call"
	default:
		return "unknown"
	}
}

// pick extracts the metric from a result.
func (m Metric) pick(r Result) float64 {
	switch m {
	case MetricCallDuration:
		return r.CallDuration
	case MetricMigrationPerCall:
		return r.MigrationPerCall
	default:
		return r.CommTimePerCall
	}
}

// Experiment describes one paper figure: a base configuration, an x-axis
// sweep and a set of series.
type Experiment struct {
	ID     string // "fig8", "fig12", ...
	Title  string
	XLabel string
	Metric Metric
	Xs     []float64
	Series []Series
	Base   Config
	// Apply sets the swept parameter on a cell config.
	Apply func(cfg *Config, x float64)
}

// Experiments returns all experiments of the paper's evaluation, keyed
// by ID, in presentation order.
func Experiments() []Experiment {
	return []Experiment{Fig8(), Fig10(), Fig11(), Fig12(), Fig14(), Fig16()}
}

// Extensions returns the experiments that go beyond the paper's
// figures: the exclusive-attachment variant it describes but does not
// plot (Section 3.4), the group-lock ablation that quantifies our
// reading of the placement/attachment interaction, the
// heterogeneous-capacity experiment behind the placement engine's
// overload veto, the shed and drain experiments behind the runtime's
// proactive shedder and drain jobs, and the sick-node experiment
// behind the health engine's critical-admission veto.
func Extensions() []Experiment {
	return []Experiment{Fig16Exclusive(), AblationGroupLock(), PlacementCapacity(), Shed(), Drain(), Sick()}
}

// ExperimentByID looks an experiment up by its ID (e.g. "fig8"),
// searching the paper's experiments and the extensions.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range Extensions() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fig8Base is the parameter table of Fig. 9: D=3, C=3, S1=3, S2=0, M=6,
// N~exp(8), t_i~exp(1), t_m variable.
func fig8Base() Config {
	return Config{
		Nodes: 3, Clients: 3, Servers1: 3, Servers2: 0,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1,
	}
}

// threePolicies are the series of Figs. 8, 10, 11 and 12.
func threePolicies() []Series {
	return []Series{
		{Label: "without Migration", Policy: core.PolicySedentary},
		{Label: "Migration", Policy: core.PolicyConventional},
		{Label: "Transient Placement", Policy: core.PolicyPlacement},
	}
}

// usageXs is the t_m sweep of Figs. 8, 10 and 11 ("mean distance
// between two usages", 0..100 in the paper; 0 is approximated by 0.5).
func usageXs() []float64 {
	return []float64{0.5, 1, 2, 5, 10, 15, 20, 30, 40, 50, 60, 80, 100}
}

func applyInterBlock(cfg *Config, x float64) { cfg.MeanInterBlock = x }
func applyClients(cfg *Config, x float64)    { cfg.Clients = int(x) }

// Fig8 is the usage-frequency experiment: mean communication time per
// call against the mean distance t_m between two usages.
func Fig8() Experiment {
	return Experiment{
		ID:     "fig8",
		Title:  "Fig. 8: Increasing the Usage Frequency",
		XLabel: "mean distance between two usages (t_m)",
		Metric: MetricCommTime,
		Xs:     usageXs(),
		Series: threePolicies(),
		Base:   fig8Base(),
		Apply:  applyInterBlock,
	}
}

// Fig10 is the invocation-duration component of the Fig. 8 runs.
func Fig10() Experiment {
	e := Fig8()
	e.ID = "fig10"
	e.Title = "Fig. 10: Duration of Invocations"
	e.Metric = MetricCallDuration
	return e
}

// Fig11 is the migration-load component of the Fig. 8 runs.
func Fig11() Experiment {
	e := Fig8()
	e.ID = "fig11"
	e.Title = "Fig. 11: Migration-Load"
	e.Metric = MetricMigrationPerCall
	return e
}

// Fig12 is the hot-spot experiment: an increasing number of clients
// against a fixed set of servers on a large network (D=27), parameters
// of Fig. 13.
func Fig12() Experiment {
	return Experiment{
		ID:     "fig12",
		Title:  "Fig. 12: Increasing the Number of Clients",
		XLabel: "number of clients",
		Metric: MetricCommTime,
		Xs:     []float64{1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25},
		Series: threePolicies(),
		Base: Config{
			Nodes: 27, Servers1: 3, Servers2: 0,
			MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1,
			MeanInterBlock: 30,
		},
		Apply: applyClients,
	}
}

// Fig14 compares the conservative place-policy against the two dynamic
// strategies of Section 3.3 on a small network (D=3), parameters of
// Fig. 15.
func Fig14() Experiment {
	return Experiment{
		ID:     "fig14",
		Title:  "Fig. 14: Exploiting Dynamic Information",
		XLabel: "number of clients",
		Metric: MetricCommTime,
		Xs:     []float64{1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25},
		Series: []Series{
			{Label: "Conservative Place-Policy", Policy: core.PolicyPlacement},
			{Label: "Comparing the Nodes", Policy: core.PolicyCompareNodes},
			{Label: "Comparing and Reinstantiation", Policy: core.PolicyCompareReinstantiate},
		},
		Base: Config{
			Nodes: 3, Servers1: 3, Servers2: 0,
			MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1,
			MeanInterBlock: 30,
		},
		Apply: applyClients,
	}
}

// Fig16 is the attachment experiment: two server layers with
// overlapping working sets (D=24, S1=6, S2=6), parameters of Fig. 17.
func Fig16() Experiment {
	return Experiment{
		ID:     "fig16",
		Title:  "Fig. 16: Keeping Objects Together",
		XLabel: "number of clients",
		Metric: MetricCommTime,
		Xs:     []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		Series: []Series{
			{Label: "without Migration", Policy: core.PolicySedentary},
			{Label: "Migration + unrestricted Attachment",
				Policy: core.PolicyConventional, Attach: core.AttachUnrestricted},
			{Label: "Migration + A-transitive Attachment",
				Policy: core.PolicyConventional, Attach: core.AttachATransitive},
			{Label: "Transient Placement + unrestricted Attachment",
				Policy: core.PolicyPlacement, Attach: core.AttachUnrestricted},
			{Label: "Transient Placement + A-transitive Attachment",
				Policy: core.PolicyPlacement, Attach: core.AttachATransitive},
		},
		Base: Config{
			Nodes: 24, Servers1: 6, Servers2: 6,
			MigrationTime: 6, MeanCalls: 6, MeanInterCall: 1,
			MeanInterBlock: 30,
		},
		Apply: applyClients,
	}
}

// Fig16Exclusive is an extension: the Fig. 16 topology under the
// exclusive-attachment rule of Section 3.4 (each object admits at most
// one attachment partner, extra attach-requests are ignored). The
// working sets collapse to pairs, so the moved closures are small like
// A-transitive ones, at the price of not keeping full working sets
// together. The paper describes this variant but does not plot it.
func Fig16Exclusive() Experiment {
	e := Fig16()
	e.ID = "fig16x"
	e.Title = "Extension: Fig. 16 topology with exclusive attachment"
	e.Series = []Series{
		{Label: "without Migration", Policy: core.PolicySedentary},
		{Label: "Migration + exclusive Attachment",
			Policy: core.PolicyConventional, Attach: core.AttachExclusive},
		{Label: "Transient Placement + exclusive Attachment",
			Policy: core.PolicyPlacement, Attach: core.AttachExclusive},
		{Label: "Transient Placement + A-transitive Attachment",
			Policy: core.PolicyPlacement, Attach: core.AttachATransitive},
	}
	return e
}

// AblationGroupLock is an extension: it quantifies the value of
// extending the placement lock to the whole moved working set (our
// reading of Section 4.4) by re-running the placement/A-transitive
// series of Fig. 16 with the group lock disabled (only the requested
// object locks; attached members can be stolen mid-block).
func AblationGroupLock() Experiment {
	e := Fig16()
	e.ID = "ablation-grouplock"
	e.Title = "Ablation: placement group lock on the Fig. 16 topology"
	e.Series = []Series{
		{Label: "Placement + A-transitive (group lock)",
			Policy: core.PolicyPlacement, Attach: core.AttachATransitive},
		{Label: "Placement + A-transitive (root lock only)",
			Policy: core.PolicyPlacement, Attach: core.AttachATransitive, NoGroupLock: true},
		{Label: "Placement + unrestricted (group lock)",
			Policy: core.PolicyPlacement, Attach: core.AttachUnrestricted},
		{Label: "Placement + unrestricted (root lock only)",
			Policy: core.PolicyPlacement, Attach: core.AttachUnrestricted, NoGroupLock: true},
	}
	return e
}

// PlacementCapacity is an extension: a heterogeneous cluster with one
// small node (node 0, capped resident servers) under skewed traffic —
// 70% of the clients are pinned to it, so every migrating policy
// tries to converge the servers there. The veto series refuses
// transfers that would overflow the small node (the simulator's twin
// of the live runtime's placement admission veto); the uncapped
// series shows the pile-up it prevents. PeakSmallNode and
// PlacementVetoes in the cell results carry the occupancy story that
// the communication-time metric alone does not, and the gossip model
// (GossipHeartbeat) reports how stale the small node's advertised load
// was at each veto — the window only the authoritative veto covers.
func PlacementCapacity() Experiment {
	return Experiment{
		ID:     "placement-cap",
		Title:  "Extension: one small node under skewed traffic (overload veto)",
		XLabel: "number of clients",
		Metric: MetricCommTime,
		Xs:     []float64{2, 4, 6, 8, 10, 12},
		Series: []Series{
			{Label: "without Migration", Policy: core.PolicySedentary},
			{Label: "Placement, small node uncapped", Policy: core.PolicyPlacement},
			{Label: "Placement + overload veto (cap 2)",
				Policy: core.PolicyPlacement, SmallNodeCap: 2},
			{Label: "Comparing the Nodes + overload veto (cap 2)",
				Policy: core.PolicyCompareNodes, SmallNodeCap: 2},
		},
		Base: Config{
			Nodes: 4, Servers1: 6, Servers2: 0,
			MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1,
			MeanInterBlock: 10, HotClientShare: 0.7,
			GossipHeartbeat: 5,
		},
		Apply: applyClients,
	}
}

// Shed is an extension: node 0 starts overloaded (SmallNodeSeed piles
// every server on it) and the proactive shedder drains it to
// ShedRatio×capacity. The sedentary baseline without a shedder shows
// the pile staying put forever; the shedder series drain it with zero
// oscillation (the receiver-side threshold guard keeps the receivers
// from ever having to shed back); the placement series shows the
// shedder coexisting with client-driven migration. Occupancy lives in
// the cell results: Sheds, ShedDrainTime, ShedOscillations,
// FinalSmallNode.
func Shed() Experiment {
	return Experiment{
		ID:     "shed",
		Title:  "Extension: proactive shedding drains an overloaded small node",
		XLabel: "mean distance between two usages",
		Metric: MetricCommTime,
		Xs:     []float64{5, 10, 20, 40},
		Series: []Series{
			{Label: "overloaded, no shedding", Policy: core.PolicySedentary,
				SmallNodeCap: 12},
			{Label: "overloaded + shedder (ratio 0.5)", Policy: core.PolicySedentary,
				SmallNodeCap: 12, ShedRatio: 0.5},
			{Label: "Placement + shedder (ratio 0.5)", Policy: core.PolicyPlacement,
				SmallNodeCap: 12, ShedRatio: 0.5},
		},
		Base: Config{
			Nodes: 4, Clients: 8, Servers1: 10, Servers2: 0,
			MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1,
			SmallNodeSeed: 10,
		},
		Apply: applyInterBlock,
	}
}

// Drain is an extension modelling the jobs layer's drain: node 0
// starts loaded (SmallNodeSeed) and at DrainAt a background drainer
// migrates everything off it while the node refuses inbound transfers
// (the draining-admission refusal). The no-drain sedentary baseline
// shows the load staying put forever; the sedentary drain series must
// end the run empty; the placement drain series shows the drain
// holding against skewed traffic that keeps trying to converge
// servers back onto the drained node — DrainVetoes counts the
// transfers the refusal turned away. Occupancy lives in the cell
// results: DrainMoves, DrainObjectsMoved, DrainDoneTime, DrainVetoes,
// FinalSmallNode.
func Drain() Experiment {
	return Experiment{
		ID:     "drain",
		Title:  "Extension: a drain job empties node 0 under live traffic",
		XLabel: "mean distance between two usages",
		Metric: MetricCommTime,
		Xs:     []float64{5, 10, 20, 40},
		Series: []Series{
			{Label: "loaded, no drain", Policy: core.PolicySedentary},
			{Label: "loaded + drain (t=60)", Policy: core.PolicySedentary, DrainAt: 60},
			{Label: "Placement + drain (t=60)", Policy: core.PolicyPlacement, DrainAt: 60},
		},
		Base: Config{
			Nodes: 4, Clients: 8, Servers1: 10, Servers2: 0,
			MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1,
			HotClientShare: 0.5, SmallNodeSeed: 6,
		},
		Apply: applyInterBlock,
	}
}

// Sick is an extension modelling the health engine's critical-admission
// veto: skewed traffic keeps trying to converge servers onto node 0,
// but for the window [SickAt, SickAt+SickFor) the node reads critical
// and refuses every inbound transfer — placement has to keep serving
// around it, and readmission resumes when the node recovers. The
// healthy baseline shows the undisturbed convergence; the sick series
// shows the veto holding (HealthVetoes) and the cost of placing around
// a refusing node. Occupancy lives in the cell results: HealthVetoes,
// PeakSmallNode, FinalSmallNode.
func Sick() Experiment {
	return Experiment{
		ID:     "sick",
		Title:  "Extension: a critical node refuses admission until it recovers",
		XLabel: "mean distance between two usages",
		Metric: MetricCommTime,
		Xs:     []float64{5, 10, 20, 40},
		Series: []Series{
			{Label: "Placement, healthy", Policy: core.PolicyPlacement},
			{Label: "Placement + sick node (t=60..460)", Policy: core.PolicyPlacement,
				SickAt: 60, SickFor: 400},
		},
		Base: Config{
			Nodes: 4, Clients: 8, Servers1: 10, Servers2: 0,
			MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1,
			HotClientShare: 0.5,
		},
		Apply: applyInterBlock,
	}
}

// RunOpts controls an experiment run.
type RunOpts struct {
	// Seed is the master seed; every cell derives its own seed from
	// it, the experiment ID, the series label and the x value.
	Seed int64
	// Quick trades precision for speed (short runs with a loose CI),
	// for tests and benchmarks.
	Quick bool
	// Parallelism bounds concurrent cells; 0 means a sensible
	// default.
	Parallelism int
	// CIRel overrides the stopping rule (0 keeps the mode default:
	// 0.01 full, 0.05 quick).
	CIRel float64
	// MaxCalls overrides the per-cell call cap (0 keeps the mode
	// default).
	MaxCalls int
}

// Table is a completed experiment: the y value of every series at every
// x, plus the detailed per-cell results.
type Table struct {
	Experiment Experiment
	// Y[i][j] is the metric of series j at Xs[i].
	Y [][]float64
	// Cells[i][j] is the full result of series j at Xs[i].
	Cells [][]Result
}

// RunExperiment simulates every cell of the experiment.
func RunExperiment(e Experiment, opts RunOpts) (Table, error) {
	warm, batch, maxCalls, ci := DefaultWarmupCalls, DefaultBatchSize, DefaultMaxCalls, 0.01
	if opts.Quick {
		warm, batch, maxCalls, ci = 300, 200, 12000, 0.05
	}
	if opts.CIRel > 0 {
		ci = opts.CIRel
	}
	if opts.MaxCalls > 0 {
		maxCalls = opts.MaxCalls
	}
	par := opts.Parallelism
	if par <= 0 {
		par = 8
	}

	t := Table{
		Experiment: e,
		Y:          make([][]float64, len(e.Xs)),
		Cells:      make([][]Result, len(e.Xs)),
	}
	for i := range e.Xs {
		t.Y[i] = make([]float64, len(e.Series))
		t.Cells[i] = make([]Result, len(e.Series))
	}

	type cell struct{ i, j int }
	work := make(chan cell)
	errs := make(chan error, 1)
	var wg sync.WaitGroup
	for wkr := 0; wkr < par; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				x := e.Xs[c.i]
				s := e.Series[c.j]
				cfg := e.Base
				e.Apply(&cfg, x)
				cfg.Policy = s.Policy
				cfg.Attach = s.Attach
				cfg.DisableGroupLock = s.NoGroupLock
				cfg.SmallNodeCapacity = s.SmallNodeCap
				cfg.ShedRatio = s.ShedRatio
				cfg.DrainAt = s.DrainAt
				cfg.SickAt = s.SickAt
				cfg.SickFor = s.SickFor
				cfg.Seed = cellSeed(opts.Seed, e.ID, s.Label, x)
				cfg.WarmupCalls = warm
				cfg.BatchSize = batch
				cfg.MaxCalls = maxCalls
				cfg.CIRel = ci
				r, err := Run(cfg)
				if err != nil {
					select {
					case errs <- fmt.Errorf("cell %s/%s x=%v: %w", e.ID, s.Label, x, err):
					default:
					}
					continue
				}
				t.Cells[c.i][c.j] = r
				t.Y[c.i][c.j] = e.Metric.pick(r)
			}
		}()
	}
	for i := range e.Xs {
		for j := range e.Series {
			work <- cell{i, j}
		}
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errs:
		return Table{}, err
	default:
	}
	return t, nil
}

// cellSeed derives a per-cell seed from the master seed and the cell's
// identity, so results are reproducible and cells are decorrelated.
func cellSeed(seed int64, id, label string, x float64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%g", id, label, x)
	return seed ^ int64(h.Sum64())
}

// Format renders the table as aligned text, one row per x value.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Experiment.Title)
	fmt.Fprintf(&b, "y: %s\n", t.Experiment.Metric)
	header := make([]string, 0, len(t.Experiment.Series)+1)
	header = append(header, t.Experiment.XLabel)
	for _, s := range t.Experiment.Series {
		header = append(header, s.Label)
	}
	widths := make([]int, len(header))
	rows := make([][]string, 0, len(t.Experiment.Xs)+1)
	rows = append(rows, header)
	for i, x := range t.Experiment.Xs {
		row := make([]string, 0, len(header))
		row = append(row, trimFloat(x))
		for j := range t.Experiment.Series {
			row = append(row, fmt.Sprintf("%.4f", t.Y[i][j]))
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for c, cellStr := range row {
			if len(cellStr) > widths[c] {
				widths[c] = len(cellStr)
			}
		}
	}
	for _, row := range rows {
		for c, cellStr := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cellStr)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range t.Experiment.Series {
		fmt.Fprintf(&b, ",%q", s.Label)
	}
	b.WriteByte('\n')
	for i, x := range t.Experiment.Xs {
		b.WriteString(trimFloat(x))
		for j := range t.Experiment.Series {
			fmt.Fprintf(&b, ",%.6f", t.Y[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// SeriesIndex returns the column index of the series with the given
// label, or -1.
func (t Table) SeriesIndex(label string) int {
	for j, s := range t.Experiment.Series {
		if s.Label == label {
			return j
		}
	}
	return -1
}

// Column returns the y values of one series across the sweep.
func (t Table) Column(label string) []float64 {
	j := t.SeriesIndex(label)
	if j < 0 {
		return nil
	}
	out := make([]float64, len(t.Y))
	for i := range t.Y {
		out[i] = t.Y[i][j]
	}
	return out
}

// Crossover returns the interpolated x at which series a first rises
// above series b, or NaN if it never does. It is used to locate the
// break-even points the paper reports for Fig. 12.
func (t Table) Crossover(a, b string) float64 {
	ya, yb := t.Column(a), t.Column(b)
	if ya == nil || yb == nil {
		return math.NaN()
	}
	xs := t.Experiment.Xs
	for i := range xs {
		if ya[i] <= yb[i] {
			continue
		}
		if i == 0 {
			return xs[0]
		}
		// Linear interpolation between the bracketing points.
		d0 := ya[i-1] - yb[i-1] // <= 0
		d1 := ya[i] - yb[i]     // > 0
		return xs[i-1] + (xs[i]-xs[i-1])*(-d0)/(d1-d0)
	}
	return math.NaN()
}

// ParameterTable renders the paper's Table 1 style parameter listing
// for an experiment.
func (e Experiment) ParameterTable() string {
	c := e.Base
	var b strings.Builder
	fmt.Fprintf(&b, "Parameters for %s\n", e.Title)
	rows := [][2]string{
		{"D  (number of nodes)", fmt.Sprintf("%d", c.Nodes)},
		{"C  (number of clients)", orVariable(c.Clients)},
		{"S1 (1st layer servers)", fmt.Sprintf("%d", c.Servers1)},
		{"S2 (2nd layer servers)", fmt.Sprintf("%d", c.Servers2)},
		{"M  (migration duration)", trimFloat(c.MigrationTime)},
		{"N  (calls per move-block)", "exp. mean(" + trimFloat(c.MeanCalls) + ")"},
		{"t_i (time between calls)", "exp. mean(" + trimFloat(c.MeanInterCall) + ")"},
		{"t_m (time between blocks)", orVariableF(c.MeanInterBlock)},
		{"remote call duration", "exp. mean(1)"},
	}
	w := 0
	for _, r := range rows {
		if len(r[0]) > w {
			w = len(r[0])
		}
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-*s  %s\n", w, r[0], r[1])
	}
	return b.String()
}

func orVariable(v int) string {
	if v == 0 {
		return "variable"
	}
	return fmt.Sprintf("%d", v)
}

func orVariableF(v float64) string {
	if v == 0 {
		return "variable"
	}
	return "exp. mean(" + trimFloat(v) + ")"
}

// SortedIDs returns all experiment IDs — the paper's figures and the
// extensions — in lexical order (utility for CLIs).
func SortedIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	for _, e := range Extensions() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
