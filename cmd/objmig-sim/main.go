// Command objmig-sim regenerates the paper's evaluation: one experiment
// per figure of "Object Migration in Non-Monolithic Distributed
// Applications" (Ciupke, Kottmann, Walter; ICDCS 1996).
//
// Usage:
//
//	objmig-sim -experiment all            # every figure, full quality
//	objmig-sim -experiment fig12 -quick   # one figure, fast preview
//	objmig-sim -experiment table1         # parameter tables only
//	objmig-sim -experiment fig16 -csv     # CSV series for plotting
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"objmig/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("objmig-sim", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all",
			"experiment to run: fig8, fig10, fig11, fig12, fig14, fig16, table1, "+
				"all (the paper's figures), fig16x, ablation-grouplock, or extensions")
		seed     = fs.Int64("seed", 1996, "master seed (cells derive their own)")
		quick    = fs.Bool("quick", false, "fast preview runs (loose confidence intervals)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = fs.Int("parallel", 8, "concurrent simulation cells")
		maxCalls = fs.Int("maxcalls", 0, "override the per-cell call cap (0: default)")
		ciRel    = fs.Float64("ci", 0, "override the CI stopping rule (0: default; paper uses 0.01)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ids := []string{*experiment}
	switch *experiment {
	case "all":
		ids = []string{"fig8", "fig10", "fig11", "fig12", "fig14", "fig16"}
	case "extensions":
		ids = nil
		for _, e := range sim.Extensions() {
			ids = append(ids, e.ID)
		}
	}
	if *experiment == "table1" {
		for _, e := range sim.Experiments() {
			fmt.Fprintln(out, e.ParameterTable())
		}
		return 0
	}

	opts := sim.RunOpts{
		Seed:        *seed,
		Quick:       *quick,
		Parallelism: *parallel,
		MaxCalls:    *maxCalls,
		CIRel:       *ciRel,
	}
	for _, id := range ids {
		e, ok := sim.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "objmig-sim: unknown experiment %q (have %s)\n",
				id, strings.Join(sim.SortedIDs(), ", "))
			return 2
		}
		start := time.Now()
		tbl, err := sim.RunExperiment(e, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "objmig-sim: %s: %v\n", id, err)
			return 1
		}
		if *csv {
			fmt.Fprintf(out, "# %s\n%s\n", e.Title, tbl.CSV())
		} else {
			fmt.Fprintln(out, tbl.Format())
			fmt.Fprintln(out, e.ParameterTable())
			printFindings(out, tbl)
			fmt.Fprintf(out, "(%d cells in %v)\n\n", len(e.Xs)*len(e.Series), time.Since(start).Round(time.Millisecond))
		}
	}
	return 0
}

// printFindings reports the headline observations the paper draws from
// each figure, computed from the regenerated data.
func printFindings(out io.Writer, t sim.Table) {
	switch t.Experiment.ID {
	case "fig12":
		mig := t.Crossover("Migration", "without Migration")
		plc := t.Crossover("Transient Placement", "without Migration")
		fmt.Fprintf(out, "break-even migration vs sedentary:  %s clients (paper: ~6)\n", fmtX(mig))
		fmt.Fprintf(out, "break-even placement vs sedentary:  %s clients (paper: ~20)\n", fmtX(plc))
	case "fig14":
		base := t.Column("Conservative Place-Policy")
		for _, label := range []string{"Comparing the Nodes", "Comparing and Reinstantiation"} {
			col := t.Column(label)
			var worst float64
			for i := range col {
				if base[i] == 0 {
					continue
				}
				d := math.Abs(col[i]-base[i]) / base[i]
				if d > worst {
					worst = d
				}
			}
			fmt.Fprintf(out, "%-31s within %.1f%% of conservative placement (paper: marginal)\n", label, worst*100)
		}
	case "placement-cap":
		// Occupancy and staleness story of the overload veto: per
		// capped series, how often it fired, the peak it allowed, and
		// how stale the small node's advertised load was at veto time.
		for j, s := range t.Experiment.Series {
			if s.SmallNodeCap == 0 {
				continue
			}
			var vetoes, peak int64
			var ageMean, ageMax float64
			var cells int
			for i := range t.Cells {
				r := t.Cells[i][j]
				vetoes += r.PlacementVetoes
				if r.PeakSmallNode > peak {
					peak = r.PeakSmallNode
				}
				ageMean += r.GossipAgeMeanAtVeto
				if r.GossipAgeMaxAtVeto > ageMax {
					ageMax = r.GossipAgeMaxAtVeto
				}
				cells++
			}
			if cells > 0 {
				ageMean /= float64(cells)
			}
			fmt.Fprintf(out, "%-42s %d vetoes, peak occupancy %d/%d, gossip age at veto mean %.2f / max %.2f (heartbeat %g)\n",
				s.Label+":", vetoes, peak, s.SmallNodeCap, ageMean, ageMax,
				t.Experiment.Base.GossipHeartbeat)
		}
	case "drain":
		// Occupancy story of the drain job: per drain series, what the
		// drainer moved, its slowest completion, how much inbound
		// traffic the draining refusal turned away, and whether
		// anything was left behind.
		for j, s := range t.Experiment.Series {
			if s.DrainAt == 0 {
				continue
			}
			var moves, objs, vetoes, leftover int64
			var worst float64
			for i := range t.Cells {
				r := t.Cells[i][j]
				moves += r.DrainMoves
				objs += r.DrainObjectsMoved
				vetoes += r.DrainVetoes
				leftover += r.FinalSmallNode
				if d := r.DrainDoneTime - s.DrainAt; d > worst {
					worst = d
				}
			}
			fmt.Fprintf(out, "%-28s %d drain moves (%d objects), slowest drain %.1f time units, %d inbound refusals, %d objects left behind\n",
				s.Label+":", moves, objs, worst, vetoes, leftover)
		}
	case "sick":
		// Admission story of the health veto: per sick series, how
		// much inbound traffic the critical window turned away and the
		// peak occupancy the node reached across the run (readmission
		// after recovery shows up as a peak above the seeded count).
		for j, s := range t.Experiment.Series {
			if s.SickFor == 0 {
				continue
			}
			var vetoes, peak int64
			for i := range t.Cells {
				r := t.Cells[i][j]
				vetoes += r.HealthVetoes
				if r.PeakSmallNode > peak {
					peak = r.PeakSmallNode
				}
			}
			fmt.Fprintf(out, "%-36s %d inbound refusals during [%g, %g), peak occupancy %d\n",
				s.Label+":", vetoes, s.SickAt, s.SickAt+s.SickFor, peak)
		}
	case "fig16":
		last := len(t.Experiment.Xs) - 1
		get := func(label string) float64 { return t.Column(label)[last] }
		fmt.Fprintf(out, "at C=%.0f: migration+unrestricted %.2f >> migration+A-transitive %.2f > placement+unrestricted %.2f > placement+A-transitive %.2f (sedentary %.2f)\n",
			t.Experiment.Xs[last],
			get("Migration + unrestricted Attachment"),
			get("Migration + A-transitive Attachment"),
			get("Transient Placement + unrestricted Attachment"),
			get("Transient Placement + A-transitive Attachment"),
			get("without Migration"))
	}
}

func fmtX(x float64) string {
	if math.IsNaN(x) {
		return "none"
	}
	return fmt.Sprintf("%.1f", x)
}
