package objmig

import (
	"context"
	"sync"
	"time"

	"objmig/internal/core"
	"objmig/internal/wire"
)

// Home-update batching. notifyOrigins used to send one HomeUpdate RPC
// per origin per migration; under autopilot bursts (and any migration
// storm) that is a per-object RPC rate the origins pay for. The
// batcher coalesces updates across migrations into time/size-bounded
// batches per (origin, new-home) pair: an update waits at most
// homeBatchMaxDelay and a batch carries at most homeBatchMaxObjs
// objects before it is flushed. Home updates are advisory — lookups
// fall back to forwarding chains — so the added latency costs
// correctness nothing.

const (
	// homeBatchMaxObjs flushes a batch early once it carries this many
	// objects (closure entries count their members).
	homeBatchMaxObjs = 128
	// homeBatchMaxDelay bounds how long an update may wait for
	// companions.
	homeBatchMaxDelay = 2 * time.Millisecond
	// homeBatchRetries re-sends a failed batch this many times before
	// giving up — a dropped update now also delays stub retirement at
	// this host, so it is worth a little persistence. Forward TTL
	// compaction remains the backstop.
	homeBatchRetries = 2
	// homeBatchRetryDelay spaces the re-sends.
	homeBatchRetryDelay = 100 * time.Millisecond
)

// homeKey identifies a coalescing bucket: updates share a wire message
// only when they go to the same origin and report the same new home.
type homeKey struct {
	origin core.NodeID
	at     core.NodeID
}

// homePending is one accumulating batch. gens aligns with objs;
// closures carries closure-level entries that stand in for their
// members' per-object entries.
type homePending struct {
	objs     []core.OID
	gens     []uint64
	closures []wire.ClosureLoc
	aff      []wire.AffinityObs
	count    int    // objs plus closure members, for the flush threshold
	trace    uint64 // the single migration trace behind the batch; 0 once mixed
	since    time.Time
}

// homeBatcher owns the pending batches and the flush loop.
type homeBatcher struct {
	n        *Node
	maxObjs  int
	maxDelay time.Duration

	mu      sync.Mutex
	pend    map[homeKey]*homePending
	stopped bool

	kick chan struct{} // pend went empty → non-empty: arm the timer
	stop chan struct{}
	done chan struct{}
}

func newHomeBatcher(n *Node) *homeBatcher {
	b := &homeBatcher{
		n:        n,
		maxObjs:  homeBatchMaxObjs,
		maxDelay: homeBatchMaxDelay,
		pend:     make(map[homeKey]*homePending),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.run()
	return b
}

// enqueue adds one origin's update to its batch, flushing immediately
// when the batch fills. gens aligns with objs (nil for gossip-only
// batches); closures carries closure-level entries; trace is the
// migration trace behind the update — a batch that coalesces updates
// from different migrations sends trace 0, since one HomeUpdate can
// only carry one. After close it degrades to a direct (unbatched)
// send so late migrations still advise their origins.
func (b *homeBatcher) enqueue(origin, at core.NodeID, objs []core.OID, gens []uint64,
	closures []wire.ClosureLoc, aff []wire.AffinityObs, trace uint64) {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		b.send(homeKey{origin: origin, at: at},
			&homePending{objs: objs, gens: gens, closures: closures, aff: aff,
				trace: trace, since: time.Now()})
		return
	}
	key := homeKey{origin: origin, at: at}
	wake := len(b.pend) == 0
	p := b.pend[key]
	if p == nil {
		p = &homePending{trace: trace, since: time.Now()}
		b.pend[key] = p
	} else if p.trace != trace {
		p.trace = 0
	}
	if len(objs) > 0 {
		// Keep gens aligned even when a gossip-only batch preceded a
		// generation-carrying one in the same bucket.
		if len(p.gens) < len(p.objs) {
			p.gens = append(p.gens, make([]uint64, len(p.objs)-len(p.gens))...)
		}
		p.objs = append(p.objs, objs...)
		if len(gens) == len(objs) {
			p.gens = append(p.gens, gens...)
		} else {
			p.gens = append(p.gens, make([]uint64, len(objs))...)
		}
		p.count += len(objs)
	}
	for _, cl := range closures {
		p.closures = append(p.closures, cl)
		p.count += len(cl.Members)
	}
	p.aff = append(p.aff, aff...)
	var full *homePending
	if p.count >= b.maxObjs {
		delete(b.pend, key)
		full = p
	}
	b.mu.Unlock()
	if full != nil {
		b.send(key, full)
	}
	if wake && full == nil {
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
}

// run is the flush loop: a timer armed only while batches are pending,
// so idle nodes cost nothing.
func (b *homeBatcher) run() {
	defer close(b.done)
	timer := time.NewTimer(time.Hour)
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	stopTimer()
	armed := false
	for {
		select {
		case <-b.stop:
			stopTimer()
			b.flushAll()
			return
		case <-b.kick:
			if !armed {
				stopTimer()
				timer.Reset(b.maxDelay)
				armed = true
			}
		case <-timer.C:
			armed = false
			if next := b.flushDue(time.Now()); next > 0 {
				timer.Reset(next)
				armed = true
			}
		}
	}
}

// flushDue sends every batch older than maxDelay and returns the wait
// until the next batch is due (0 when none is pending).
func (b *homeBatcher) flushDue(now time.Time) time.Duration {
	b.mu.Lock()
	var due []homeKey
	var batches []*homePending
	next := time.Duration(0)
	for key, p := range b.pend {
		wait := b.maxDelay - now.Sub(p.since)
		if wait <= 0 {
			due = append(due, key)
			batches = append(batches, p)
			continue
		}
		if next == 0 || wait < next {
			next = wait
		}
	}
	for _, key := range due {
		delete(b.pend, key)
	}
	b.mu.Unlock()
	for i, key := range due {
		b.send(key, batches[i])
	}
	return next
}

// flushAll drains everything (shutdown path). The sends run
// concurrently but flushAll waits them out — close() must not return
// until the final advisories have actually left, because the node's
// RPC pool is torn down right after it.
func (b *homeBatcher) flushAll() {
	b.mu.Lock()
	pend := b.pend
	b.pend = make(map[homeKey]*homePending)
	b.stopped = true
	b.mu.Unlock()
	var wg sync.WaitGroup
	for key, p := range pend {
		wg.Add(1)
		go func(key homeKey, p *homePending) {
			defer wg.Done()
			b.sendNow(key, p, time.Second)
		}(key, p)
	}
	wg.Wait()
}

// send fires one batched HomeUpdate RPC in the background.
func (b *homeBatcher) send(key homeKey, p *homePending) {
	b.n.spawn(func() { b.sendNow(key, p, 5*time.Second) })
}

// sendNow performs the RPC synchronously (best effort, with a couple
// of spaced retries — see homeBatchRetries). With placement enabled
// the batch carries the sender's load sample out and folds the
// origin's sample from the response in — home-update traffic doubles
// as load gossip. A delivered batch is also this host's proof that the
// origin's home index is authoritative for the reported objects, so
// their forwarding pointers and stubs retire on the spot.
func (b *homeBatcher) sendNow(key homeKey, p *homePending, timeout time.Duration) {
	n := b.n
	n.stats.homeUpdateBatches.Add(1)
	req := &wire.HomeUpdate{Objs: p.objs, Gens: p.gens, At: key.at,
		Closures: p.closures, Aff: p.aff, Load: n.cachedLoadSample(), Trace: p.trace}
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		var resp wire.HomeUpdateResp
		err := n.call(ctx, key.origin, wire.KHomeUpdate, req, &resp)
		cancel()
		if err == nil {
			n.tel.homeFlushLat.ObserveSince(p.since)
			n.observeLoad(resp.Load)
			b.confirm(key.at, p)
			return
		}
		if attempt >= homeBatchRetries || n.closed.Load() {
			return
		}
		time.Sleep(homeBatchRetryDelay)
	}
}

// confirm retires this host's forwarding state for a batch the origin
// acknowledged. Objects this node never hosted (a multi-host group's
// other members) have nothing local to retire; ConfirmDeparted is a
// no-op for them.
func (b *homeBatcher) confirm(at core.NodeID, p *homePending) {
	ids := p.objs
	if len(p.closures) > 0 {
		total := len(p.objs)
		for _, cl := range p.closures {
			total += len(cl.Members)
		}
		ids = make([]core.OID, 0, total)
		ids = append(ids, p.objs...)
		for _, cl := range p.closures {
			ids = append(ids, cl.Members...)
		}
	}
	if len(ids) > 0 {
		b.n.store.ConfirmDeparted(ids, at)
	}
}

// close flushes pending batches and stops the loop. Safe to call once,
// before the node's RPC pool closes, so the final sends can still go
// out.
func (b *homeBatcher) close() {
	close(b.stop)
	<-b.done
}
