// Package rpc multiplexes request/response exchanges over a
// transport.Conn: every in-flight call has an ID, responses are matched
// to pending calls, and inbound requests are dispatched to a handler in
// their own goroutine (invocations may block on object locks and
// migrations, so the read loop must never be held up).
//
// Frame layout:
//
//	[1B direction][8B big-endian call ID][payload]
//
// direction 0 carries a request ([1B kind][body]); direction 1 a
// successful response ([body]); direction 2 a failed response
// (an encoded wire.RemoteError).
//
// Frames are pooled (internal/framebuf), and messages are encoded
// exactly once: Call and serve reserve the frame header up front in a
// pooled buffer and hand the codec the tail (wire.MarshalAppend), so
// the marshalled body is never copied into a second allocation. Sent
// frames return to the pool as soon as the transport has taken them
// (Conn.Send does not retain its argument); received frames return to
// the pool after dispatch — which is safe because wire.Unmarshal fully
// copies every field it decodes. See docs/wire-format.md for the
// byte-level layout and the complete ownership rules.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"objmig/internal/framebuf"
	"objmig/internal/transport"
	"objmig/internal/wire"
)

const (
	dirRequest = 0
	dirOK      = 1
	dirErr     = 2

	// hdrLen is the frame header (direction + call ID); requests carry
	// one extra kind byte, making reqHdrLen the offset of a request
	// body within its frame.
	hdrLen    = 9
	reqHdrLen = hdrLen + 1
)

// ErrPeerClosed is returned by calls whose peer shut down before a
// response arrived. The request may or may not have been processed
// remotely — callers that care about exactly-once effects must treat
// it as ambiguous.
var ErrPeerClosed = errors.New("rpc: peer closed")

// ErrDialFailed marks calls that failed before a connection existed:
// the request was definitely never delivered.
var ErrDialFailed = errors.New("rpc: dial failed")

// ErrSendFailed marks calls whose frame could not be handed to the
// connection: the request was definitely never delivered.
var ErrSendFailed = errors.New("rpc: send failed")

// Handler processes one inbound request and appends its encoded
// response body to dst (normally via wire.MarshalAppend), returning
// the extended slice. dst arrives with the frame header already
// reserved; the handler must only append. body is only valid until the
// handler returns — the frame it points into is recycled afterwards —
// so the handler must fully decode it (wire.Unmarshal copies) and must
// not retain it.
//
// Returning a *wire.RemoteError preserves the error code across the
// wire; any other error is wrapped as CodeInternal. On error the
// response bytes appended so far are discarded.
type Handler func(ctx context.Context, kind wire.Kind, body, dst []byte) ([]byte, error)

// Peer manages one connection: concurrent outbound calls and inbound
// request dispatch.
type Peer struct {
	conn    transport.Conn
	handler Handler

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	pending map[uint64]chan callResult
	nextID  uint64
	closed  bool

	wg sync.WaitGroup
}

// callResult carries one response frame (or a local failure) from the
// read loop to the blocked caller, which decodes it and recycles the
// frame.
type callResult struct {
	frame []byte // whole pooled frame; recycled by finish
	body  []byte // payload within frame
	isErr bool   // dirErr: body is an encoded wire.RemoteError
	err   error  // local failure (peer shut down); no frame attached
}

// finish decodes the response into resp (skipped when resp is nil) and
// recycles the frame.
func (r callResult) finish(resp interface{}) error {
	if r.err != nil {
		return r.err
	}
	var err error
	if r.isErr {
		err = decodeError(r.body)
	} else if resp != nil {
		err = wire.Unmarshal(r.body, resp)
	}
	framebuf.Put(r.frame)
	return err
}

// NewPeer wraps a connection. handler may be nil for client-only peers
// (inbound requests are then rejected). The peer owns the connection
// and closes it on Close.
func NewPeer(conn transport.Conn, handler Handler) *Peer {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Peer{
		conn:    conn,
		handler: handler,
		ctx:     ctx,
		cancel:  cancel,
		pending: make(map[uint64]chan callResult),
	}
	p.wg.Add(1)
	go p.readLoop()
	return p
}

// Call encodes req into a pooled frame, sends it, and blocks for the
// response (decoded into resp, which may be nil to discard it), the
// context's cancellation, or peer shutdown. The request is marshalled
// exactly once, directly behind the reserved frame header; the frame
// returns to the pool as soon as the transport has taken it.
func (p *Peer) Call(ctx context.Context, kind wire.Kind, req, resp interface{}) error {
	ch := make(chan callResult, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPeerClosed
	}
	p.nextID++
	id := p.nextID
	p.pending[id] = ch
	p.mu.Unlock()

	frame := framebuf.Get(reqHdrLen + 64)
	frame, err := wire.MarshalAppend(frame[:reqHdrLen], req)
	if err != nil {
		framebuf.Put(frame)
		p.forget(id)
		return err
	}
	// The header is filled in after the body: MarshalAppend may have
	// grown the frame into a new backing array.
	frame[0] = dirRequest
	binary.BigEndian.PutUint64(frame[1:hdrLen], id)
	frame[hdrLen] = byte(kind)
	err = p.conn.Send(frame)
	framebuf.Put(frame)
	if err != nil {
		p.forget(id)
		return fmt.Errorf("%w: %v", ErrSendFailed, err)
	}

	select {
	case r := <-ch:
		return r.finish(resp)
	case <-ctx.Done():
		p.forget(id)
		return ctx.Err()
	}
}

// forget drops a pending call registration.
func (p *Peer) forget(id uint64) {
	p.mu.Lock()
	delete(p.pending, id)
	p.mu.Unlock()
}

// readLoop receives frames until the connection dies, dispatching
// requests and completing pending calls. Every received frame is
// recycled exactly once: by the serve goroutine after its handler
// returns, by the blocked caller after it decodes the response, or
// right here when nobody wants it.
func (p *Peer) readLoop() {
	defer p.wg.Done()
	for {
		frame, err := p.conn.Recv()
		if err != nil {
			p.failAll(err)
			return
		}
		if len(frame) < hdrLen {
			framebuf.Put(frame)
			p.failAll(fmt.Errorf("rpc: short frame (%d bytes)", len(frame)))
			return
		}
		dir := frame[0]
		id := binary.BigEndian.Uint64(frame[1:hdrLen])
		payload := frame[hdrLen:]
		switch dir {
		case dirRequest:
			if len(payload) < 1 {
				framebuf.Put(frame)
				continue
			}
			kind := wire.Kind(payload[0])
			body := payload[1:]
			p.wg.Add(1)
			go func(frame []byte) {
				defer p.wg.Done()
				p.serve(id, kind, body)
				framebuf.Put(frame) // body (an alias) is dead once serve returns
			}(frame)
		case dirOK, dirErr:
			p.mu.Lock()
			ch, ok := p.pending[id]
			delete(p.pending, id)
			p.mu.Unlock()
			if !ok {
				framebuf.Put(frame) // caller gave up (context cancelled)
				continue
			}
			ch <- callResult{frame: frame, body: payload, isErr: dir == dirErr}
		default:
			framebuf.Put(frame)
		}
	}
}

// serve runs the handler for one request, encoding the response
// straight into a pooled frame behind its reserved header.
func (p *Peer) serve(id uint64, kind wire.Kind, body []byte) {
	frame := framebuf.Get(hdrLen + 64)
	frame = frame[:hdrLen]
	var err error
	if p.handler == nil {
		err = wire.Errorf(wire.CodeBadRequest, "peer does not serve requests")
	} else if !kind.Valid() {
		err = wire.Errorf(wire.CodeBadRequest, "unknown request kind %d", kind)
	} else {
		var out []byte
		if out, err = p.handler(p.ctx, kind, body, frame); err == nil && out != nil {
			frame = out
		}
	}
	if err != nil {
		var re *wire.RemoteError
		if !errors.As(err, &re) {
			re = wire.Errorf(wire.CodeInternal, "%v", err)
		}
		// Rewind past anything a failing handler appended and encode
		// the error instead.
		var mErr error
		if frame, mErr = wire.MarshalAppend(frame[:hdrLen], re); mErr != nil {
			frame, _ = wire.MarshalAppend(frame[:hdrLen], wire.Errorf(wire.CodeInternal, "unencodable error"))
		}
		frame[0] = dirErr
	} else {
		frame[0] = dirOK
	}
	binary.BigEndian.PutUint64(frame[1:hdrLen], id)
	// A send failure means the connection is dying; the read loop
	// will fail all pending calls, nothing more to do here.
	_ = p.conn.Send(frame)
	framebuf.Put(frame)
}

// decodeError reconstructs the remote error from a dirErr payload.
func decodeError(payload []byte) error {
	var re wire.RemoteError
	if err := wire.Unmarshal(payload, &re); err != nil {
		return fmt.Errorf("rpc: undecodable remote error: %w", err)
	}
	return &re
}

// failAll terminates every pending call with err and marks the peer
// closed.
func (p *Peer) failAll(err error) {
	p.cancel()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for id, ch := range p.pending {
		ch <- callResult{err: fmt.Errorf("%w: %v", ErrPeerClosed, err)}
		delete(p.pending, id)
	}
}

// Closed reports whether the peer has shut down.
func (p *Peer) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Close tears the peer down and waits for its goroutines (read loop and
// in-flight handlers) to finish.
func (p *Peer) Close() error {
	p.cancel()
	err := p.conn.Close()
	p.wg.Wait()
	p.failAll(ErrPeerClosed)
	return err
}

// Server accepts inbound connections and serves them with a handler.
type Server struct {
	l       transport.Listener
	handler Handler

	mu    sync.Mutex
	peers map[*Peer]struct{}
	done  bool

	wg sync.WaitGroup
}

// Serve starts accepting connections on l.
func Serve(l transport.Listener, handler Handler) *Server {
	s := &Server{l: l, handler: handler, peers: make(map[*Peer]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.l.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		p := NewPeer(conn, s.handler)
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			_ = p.Close()
			return
		}
		s.peers[p] = struct{}{}
		s.mu.Unlock()
	}
}

// Close stops accepting and closes every live peer.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return nil
	}
	s.done = true
	peers := make([]*Peer, 0, len(s.peers))
	for p := range s.peers {
		peers = append(peers, p)
	}
	s.peers = nil
	s.mu.Unlock()
	err := s.l.Close()
	for _, p := range peers {
		_ = p.Close()
	}
	s.wg.Wait()
	return err
}

// Pool maintains client connections keyed by address, dialling lazily
// and re-dialling after failures.
type Pool struct {
	tr transport.Transport

	mu    sync.Mutex
	conns map[string]*Peer
	done  bool
}

// NewPool returns an empty pool over the transport.
func NewPool(tr transport.Transport) *Pool {
	return &Pool{tr: tr, conns: make(map[string]*Peer)}
}

// Call sends one request to addr, dialling if needed, and decodes the
// response into resp (nil discards it). Dead peers are evicted and
// re-dialled on the next call.
func (p *Pool) Call(ctx context.Context, addr string, kind wire.Kind, req, resp interface{}) error {
	peer, err := p.get(addr)
	if err != nil {
		return err
	}
	err = peer.Call(ctx, kind, req, resp)
	if errors.Is(err, ErrPeerClosed) {
		p.evict(addr, peer)
	}
	return err
}

func (p *Pool) get(addr string) (*Peer, error) {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return nil, ErrPeerClosed
	}
	if peer, ok := p.conns[addr]; ok && !peer.Closed() {
		p.mu.Unlock()
		return peer, nil
	}
	p.mu.Unlock()

	conn, err := p.tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrDialFailed, addr, err)
	}
	peer := NewPeer(conn, nil)

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		go func() { _ = peer.Close() }()
		return nil, ErrPeerClosed
	}
	if existing, ok := p.conns[addr]; ok && !existing.Closed() {
		// Lost a dial race; keep the existing peer.
		go func() { _ = peer.Close() }()
		return existing, nil
	}
	p.conns[addr] = peer
	return peer, nil
}

func (p *Pool) evict(addr string, peer *Peer) {
	p.mu.Lock()
	if p.conns[addr] == peer {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
}

// Close closes every pooled connection.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.done = true
	conns := p.conns
	p.conns = map[string]*Peer{}
	p.mu.Unlock()
	for _, peer := range conns {
		_ = peer.Close()
	}
	return nil
}
