package placement

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"objmig/internal/core"
)

func node(i int) core.NodeID { return core.NodeID(fmt.Sprintf("n%02d", i)) }

// TestViewFreshness: entries fade — a sample older than the TTL is
// absent, and Observe keeps only the newest Seq per node.
func TestViewFreshness(t *testing.T) {
	t.Parallel()
	v := NewView(50 * time.Millisecond)
	v.Observe(Sample{Node: "a", Objects: 3, Seq: 2})
	v.Observe(Sample{Node: "a", Objects: 99, Seq: 1}) // straggler: must lose
	if s, _, ok := v.Get("a"); !ok || s.Objects != 3 {
		t.Fatalf("view kept the stale sample: %+v ok=%v", s, ok)
	}
	v.Observe(Sample{Node: "a", Objects: 7, Seq: 3})
	if s, _, ok := v.Get("a"); !ok || s.Objects != 7 {
		t.Fatalf("newer sample lost: %+v ok=%v", s, ok)
	}
	time.Sleep(80 * time.Millisecond)
	if _, _, ok := v.Get("a"); ok {
		t.Fatal("sample survived past the TTL")
	}
	if n := v.Nodes(); len(n) != 0 {
		t.Fatalf("Nodes reports stale entries: %v", n)
	}
}

// TestScorePureAffinity: with no load knowledge the engine reduces to
// the autopilot's per-object election semantics on the aggregate —
// strict domination scaled by hysteresis.
func TestScorePureAffinity(t *testing.T) {
	t.Parallel()
	v := NewView(0)
	cases := []struct {
		name  string
		g     Group
		want  core.NodeID
		moved bool
	}{
		{"dominant caller wins", Group{Self: "s", Members: 1,
			PerNode: map[core.NodeID]int64{"a": 10}}, "a", true},
		{"local rival under hysteresis", Group{Self: "s", Members: 1, Local: 6,
			PerNode: map[core.NodeID]int64{"a": 10}}, "", false},
		{"local rival beaten", Group{Self: "s", Members: 1, Local: 6,
			PerNode: map[core.NodeID]int64{"a": 13}}, "a", true},
		{"runner-up under hysteresis", Group{Self: "s", Members: 1,
			PerNode: map[core.NodeID]int64{"a": 10, "b": 9}}, "", false},
		{"equal callers stay", Group{Self: "s", Members: 1,
			PerNode: map[core.NodeID]int64{"a": 10, "b": 10}}, "", false},
		{"no remote pressure", Group{Self: "s", Members: 1, Local: 50}, "", false},
	}
	for _, tc := range cases {
		dec, ok := Score(tc.g, v, Options{})
		if ok != tc.moved || (ok && dec.Target != tc.want) {
			t.Errorf("%s: Score = %+v, %v; want target %q moved=%v", tc.name, dec, ok, tc.want, tc.moved)
		}
	}
}

// TestScoreGroupAggregation: one hot member must not drag a closure
// whose aggregate affinity points elsewhere — the group's combined
// pressure decides.
func TestScoreGroupAggregation(t *testing.T) {
	t.Parallel()
	v := NewView(0)
	// Member 1 is individually hottest towards "a" (10 vs 4), but the
	// closure's aggregate points to "b" (4+4+4=12 vs 10).
	g := Group{Self: "s", Members: 3,
		PerNode: map[core.NodeID]int64{"a": 10, "b": 24}}
	dec, ok := Score(g, v, Options{})
	if !ok || dec.Target != "b" {
		t.Fatalf("aggregate election: %+v, %v; want b", dec, ok)
	}
}

// TestScoreOverloadVeto: a candidate at capacity is excluded however
// dominant its affinity, and the election falls to the next best
// non-vetoed candidate when that one clears the hysteresis bar.
func TestScoreOverloadVeto(t *testing.T) {
	t.Parallel()
	v := NewView(time.Minute)
	v.Observe(Sample{Node: "hot", Objects: 10, Capacity: 10, Seq: 1}) // full
	v.Observe(Sample{Node: "alt", Objects: 0, Capacity: 100, Seq: 1})

	g := Group{Self: "s", Members: 2,
		PerNode: map[core.NodeID]int64{"hot": 1000, "alt": 90}}
	dec, ok := Score(g, v, Options{})
	if !ok || dec.Target != "alt" {
		t.Fatalf("veto election: %+v, %v; want alt", dec, ok)
	}
	if len(dec.Vetoed) != 1 || dec.Vetoed[0] != "hot" {
		t.Fatalf("vetoed list: %v, want [hot]", dec.Vetoed)
	}

	// With no viable alternative the group stays.
	g2 := Group{Self: "s", Members: 2, PerNode: map[core.NodeID]int64{"hot": 1000}}
	if dec, ok := Score(g2, v, Options{}); ok {
		t.Fatalf("overloaded sole candidate elected: %+v", dec)
	}
}

// TestScoreHeadroomDiscount: between two candidates with equal
// affinity, the one with more headroom wins; the discount alone never
// flips a decisive affinity gap into a move below hysteresis.
func TestScoreHeadroomDiscount(t *testing.T) {
	t.Parallel()
	v := NewView(time.Minute)
	v.Observe(Sample{Node: "busy", Objects: 9, Capacity: 12, Seq: 1})
	v.Observe(Sample{Node: "idle", Objects: 0, Capacity: 12, Seq: 1})
	g := Group{Self: "s", Members: 1,
		PerNode: map[core.NodeID]int64{"busy": 100, "idle": 60}}
	dec, ok := Score(g, v, Options{Hysteresis: 1})
	if !ok || dec.Target != "idle" {
		t.Fatalf("headroom discount: %+v, %v; want idle", dec, ok)
	}
}

// TestScoreOverloadedSelfStays: an overloaded *host* is never vetoed
// into moving — its local score is discounted, not zeroed, and its
// own utilisation does not double-count the group it already hosts.
// A closure its own traffic dominates must stay put even when the
// node is past capacity.
func TestScoreOverloadedSelfStays(t *testing.T) {
	t.Parallel()
	v := NewView(time.Minute)
	// Self is over capacity (12 hosted incl. the group, cap 10); a
	// lone remote caller has a sliver of the pressure.
	v.Observe(Sample{Node: "s", Objects: 12, Capacity: 10, Seq: 1})
	g := Group{Self: "s", Members: 2, Local: 1000,
		PerNode: map[core.NodeID]int64{"a": 5}}
	if dec, ok := Score(g, v, Options{}); ok {
		t.Fatalf("dominant local pressure evicted by self-overload: %+v", dec)
	}
	// Sanity: self at exactly capacity is util 1.0 with incoming 0 —
	// the discount halves the local score (weight 1/(1+1·1·fresh))
	// but a decisive local majority still holds.
	v.Observe(Sample{Node: "s", Objects: 10, Capacity: 10, Seq: 2})
	if dec, ok := Score(g, v, Options{}); ok {
		t.Fatalf("at-capacity host evicted its own hot closure: %+v", dec)
	}
}

// TestScoreRequireMajority: the reinstantiation rule on aggregates.
func TestScoreRequireMajority(t *testing.T) {
	t.Parallel()
	v := NewView(0)
	g := Group{Self: "s", Members: 1,
		PerNode: map[core.NodeID]int64{"a": 12, "b": 5, "c": 5, "d": 3}}
	if _, ok := Score(g, v, Options{RequireMajority: true}); ok {
		t.Fatal("elected without a clear majority")
	}
	g.PerNode["a"] = 14
	if dec, ok := Score(g, v, Options{RequireMajority: true}); !ok || dec.Target != "a" {
		t.Fatalf("majority election failed: %+v, %v", dec, ok)
	}
}

// TestScoreProperties is the property test: across randomized groups
// and views, (1) a closure is never split — the engine returns one
// target for the whole group, so every member of the closure maps to
// the same node; (2) the winner is never a vetoed (overloaded)
// candidate; (3) decisions are deterministic for identical inputs.
func TestScoreProperties(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		v := NewView(time.Minute)
		nNodes := 2 + rng.Intn(6)
		for i := 0; i < nNodes; i++ {
			if rng.Intn(3) == 0 {
				continue // some nodes stay unknown to the view
			}
			v.Observe(Sample{
				Node:     node(i),
				Objects:  int64(rng.Intn(20)),
				Capacity: int64(rng.Intn(3) * 8), // 0 (uncapped), 8 or 16
				Seq:      1,
			})
		}
		members := 1 + rng.Intn(5)
		// Build per-member affinities, then aggregate them — the group
		// is scored as a unit regardless of how skewed individual
		// members are.
		agg := make(map[core.NodeID]int64)
		for m := 0; m < members; m++ {
			for i := 0; i < nNodes; i++ {
				if c := rng.Intn(30); c > 0 {
					agg[node(i)] += int64(c)
				}
			}
		}
		g := Group{Self: node(0), Members: members, Local: agg[node(0)], PerNode: agg}
		delete(g.PerNode, node(0))

		opt := Options{Hysteresis: 1 + rng.Float64()*2}
		dec, ok := Score(g, v, opt)
		dec2, ok2 := Score(g, v, opt)
		if ok != ok2 || dec.Target != dec2.Target || !reflect.DeepEqual(dec.Vetoed, dec2.Vetoed) {
			t.Fatalf("trial %d: nondeterministic decision: %+v/%v vs %+v/%v", trial, dec, ok, dec2, ok2)
		}
		if !ok {
			continue
		}
		// One target for the whole closure: the assignment every member
		// receives is the same node by construction of the API — assert
		// the decision names exactly one target and it is a real
		// candidate.
		if dec.Target == "" || dec.Target == g.Self {
			t.Fatalf("trial %d: elected %q", trial, dec.Target)
		}
		if g.PerNode[dec.Target] <= 0 {
			t.Fatalf("trial %d: winner %s has no affinity", trial, dec.Target)
		}
		// The winner is never overloaded.
		if s, _, known := v.Get(dec.Target); known && Overloaded(s, g.Members, g.Bytes, opt.OverloadRatio) {
			t.Fatalf("trial %d: winner %s is overloaded: %+v", trial, dec.Target, s)
		}
		for _, vetoed := range dec.Vetoed {
			if vetoed == dec.Target {
				t.Fatalf("trial %d: winner %s also vetoed", trial, dec.Target)
			}
		}
	}
}

// TestOverloadedPredicate pins the admission predicate the migration
// target shares with the scoring core.
func TestOverloadedPredicate(t *testing.T) {
	t.Parallel()
	full := Sample{Objects: 10, Capacity: 10}
	if Overloaded(full, 0, 0, 1) {
		t.Fatal("at exactly capacity is not overloaded")
	}
	if !Overloaded(full, 1, 0, 1) {
		t.Fatal("one past capacity must veto")
	}
	if Overloaded(Sample{Objects: 1000}, 50, 1<<30, 1) {
		t.Fatal("uncapped node vetoed")
	}
	if Overloaded(Sample{Objects: 12, Capacity: 10}, 0, 0, 1.5) {
		t.Fatal("ratio headroom ignored")
	}
	// The byte dimension vetoes independently of the object count.
	byteFull := Sample{Objects: 1, Capacity: 100, Bytes: 900, CapBytes: 1000}
	if Overloaded(byteFull, 1, 100, 1) {
		t.Fatal("at exactly byte capacity is not overloaded")
	}
	if !Overloaded(byteFull, 1, 101, 1) {
		t.Fatal("one byte past capacity must veto")
	}
	if got := Utilisation(byteFull, 0, 100); got != 1.0 {
		t.Fatalf("byte utilisation = %v, want 1.0", got)
	}
	// The worse dimension wins.
	both := Sample{Objects: 9, Capacity: 10, Bytes: 100, CapBytes: 1000}
	if got := Utilisation(both, 0, 0); got != 0.9 {
		t.Fatalf("max-dimension utilisation = %v, want 0.9", got)
	}
}

// TestScoreHealthGate: a critical candidate is vetoed however dominant
// its affinity; a degraded one keeps competing but with its score
// multiplied by DegradedPenalty, so a healthy rival with a fraction of
// the affinity can still win.
func TestScoreHealthGate(t *testing.T) {
	t.Parallel()
	v := NewView(time.Minute)
	v.Observe(Sample{Node: "sick", Capacity: 100, Seq: 1, Health: HealthCritical})
	v.Observe(Sample{Node: "alt", Capacity: 100, Seq: 1})

	g := Group{Self: "s", Members: 1,
		PerNode: map[core.NodeID]int64{"sick": 1000, "alt": 90}}
	dec, ok := Score(g, v, Options{})
	if !ok || dec.Target != "alt" {
		t.Fatalf("critical veto election: %+v, %v; want alt", dec, ok)
	}
	if len(dec.Vetoed) != 1 || dec.Vetoed[0] != "sick" {
		t.Fatalf("vetoed list: %v, want [sick]", dec.Vetoed)
	}

	// Degraded: penalty 0.25 shrinks 1000 affinity to ~250 effective —
	// a healthy 600 beats it despite the raw affinity gap.
	v2 := NewView(time.Minute)
	v2.Observe(Sample{Node: "limp", Capacity: 100, Seq: 1, Health: HealthDegraded})
	v2.Observe(Sample{Node: "fit", Capacity: 100, Seq: 1})
	g2 := Group{Self: "s", Members: 1,
		PerNode: map[core.NodeID]int64{"limp": 1000, "fit": 600}}
	dec2, ok2 := Score(g2, v2, Options{Hysteresis: 1})
	if !ok2 || dec2.Target != "fit" {
		t.Fatalf("degraded penalty election: %+v, %v; want fit", dec2, ok2)
	}

	// Without the health signal the raw affinity would have won.
	v3 := NewView(time.Minute)
	v3.Observe(Sample{Node: "limp", Capacity: 100, Seq: 1})
	v3.Observe(Sample{Node: "fit", Capacity: 100, Seq: 1})
	dec3, ok3 := Score(g2, v3, Options{Hysteresis: 1})
	if !ok3 || dec3.Target != "limp" {
		t.Fatalf("healthy control election: %+v, %v; want limp", dec3, ok3)
	}
}
