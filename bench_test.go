package objmig

// This file is the benchmark harness required by the reproduction: one
// benchmark per paper figure (each run regenerates the figure's series
// with the simulation harness and reports its headline numbers as
// benchmark metrics), plus micro-benchmarks of the live runtime's hot
// paths.
//
//	go test -bench=Fig -benchmem        # regenerate all figures
//	go test -bench=Runtime -benchmem    # runtime micro-benchmarks
//
// The full-quality tables (paper-grade confidence intervals) come from
// cmd/objmig-sim; benchmarks use the quick profile so a -bench=. run
// stays in the minutes range.

import (
	"context"
	"fmt"
	"testing"

	"objmig/sim"
)

// benchOpts is the quick profile used by the figure benchmarks.
func benchOpts(seed int64) sim.RunOpts {
	return sim.RunOpts{Seed: seed, Quick: true, MaxCalls: 8000, Parallelism: 8}
}

// runFigure regenerates one figure per benchmark iteration and returns
// the last table for metric extraction.
func runFigure(b *testing.B, id string) sim.Table {
	b.Helper()
	e, ok := sim.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var tbl sim.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = sim.RunExperiment(e, benchOpts(int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// lastY reports the final-x value of a series as a benchmark metric.
func lastY(b *testing.B, tbl sim.Table, label, metric string) {
	b.Helper()
	col := tbl.Column(label)
	if col == nil {
		b.Fatalf("series %q missing", label)
	}
	b.ReportMetric(col[len(col)-1], metric)
}

// BenchmarkFig8 regenerates Fig. 8 (mean communication time per call
// against the usage distance t_m) and reports the three policies'
// values at the highest usage frequency.
func BenchmarkFig8(b *testing.B) {
	tbl := runFigure(b, "fig8")
	first := tbl.Y[0]
	for j, s := range tbl.Experiment.Series {
		b.ReportMetric(first[j], fmt.Sprintf("%s@tm=min", shortLabel(s.Label)))
	}
}

// BenchmarkFig10 regenerates Fig. 10 (the invocation-duration
// component of the Fig. 8 runs).
func BenchmarkFig10(b *testing.B) {
	tbl := runFigure(b, "fig10")
	lastY(b, tbl, "Migration", "migration-dur@tm=100")
	lastY(b, tbl, "Transient Placement", "placement-dur@tm=100")
}

// BenchmarkFig11 regenerates Fig. 11 (the migration-load component).
func BenchmarkFig11(b *testing.B) {
	tbl := runFigure(b, "fig11")
	lastY(b, tbl, "Migration", "migration-load@tm=100")
	lastY(b, tbl, "Transient Placement", "placement-load@tm=100")
}

// BenchmarkFig12 regenerates Fig. 12 (hot-spot objects under an
// increasing number of clients) and reports the two break-even points
// the paper calls out (~6 and ~20 clients).
func BenchmarkFig12(b *testing.B) {
	tbl := runFigure(b, "fig12")
	b.ReportMetric(tbl.Crossover("Migration", "without Migration"), "breakeven-migration")
	b.ReportMetric(tbl.Crossover("Transient Placement", "without Migration"), "breakeven-placement")
}

// BenchmarkFig14 regenerates Fig. 14 (dynamic placement strategies)
// and reports each strategy's value at C=25 — the paper's conclusion
// is that they differ from conservative placement only marginally.
func BenchmarkFig14(b *testing.B) {
	tbl := runFigure(b, "fig14")
	lastY(b, tbl, "Conservative Place-Policy", "placement@C=25")
	lastY(b, tbl, "Comparing the Nodes", "compare@C=25")
	lastY(b, tbl, "Comparing and Reinstantiation", "reinstantiate@C=25")
}

// BenchmarkFig16 regenerates Fig. 16 (attachment regimes with
// overlapping working sets) and reports the five series at C=12, whose
// ordering is the paper's central Table/Figure-16 claim.
func BenchmarkFig16(b *testing.B) {
	tbl := runFigure(b, "fig16")
	for _, s := range tbl.Experiment.Series {
		lastY(b, tbl, s.Label, shortLabel(s.Label)+"@C=12")
	}
}

// BenchmarkFig16Exclusive regenerates the exclusive-attachment
// extension (the Section 3.4 variant the paper describes but does not
// plot).
func BenchmarkFig16Exclusive(b *testing.B) {
	tbl := runFigure(b, "fig16x")
	lastY(b, tbl, "Migration + exclusive Attachment", "mig+exclusive@C=12")
	lastY(b, tbl, "Transient Placement + exclusive Attachment", "plc+exclusive@C=12")
}

// BenchmarkAblationGroupLock regenerates the group-lock ablation: the
// gap between the two A-transitive series is what extending the
// placement lock to the whole working set is worth.
func BenchmarkAblationGroupLock(b *testing.B) {
	tbl := runFigure(b, "ablation-grouplock")
	lastY(b, tbl, "Placement + A-transitive (group lock)", "with-grouplock@C=12")
	lastY(b, tbl, "Placement + A-transitive (root lock only)", "rootlock-only@C=12")
}

// shortLabel compresses the paper's series labels into metric names.
func shortLabel(label string) string {
	switch label {
	case "without Migration":
		return "sedentary"
	case "Migration":
		return "migration"
	case "Transient Placement":
		return "placement"
	case "Migration + unrestricted Attachment":
		return "mig+unrestricted"
	case "Migration + A-transitive Attachment":
		return "mig+a-trans"
	case "Transient Placement + unrestricted Attachment":
		return "plc+unrestricted"
	case "Transient Placement + A-transitive Attachment":
		return "plc+a-trans"
	default:
		return label
	}
}

// --- Live-runtime micro-benchmarks ---

// benchNodes builds a local two-node cluster with the bench type.
func benchNodes(b *testing.B, policy PolicyKind) (*Node, *Node, Ref) {
	b.Helper()
	cl := NewLocalCluster()
	t := newBenchType()
	mk := func(id NodeID) *Node {
		n, err := NewNode(Config{ID: id, Cluster: cl, Policy: policy})
		if err != nil {
			b.Fatal(err)
		}
		if err := n.RegisterType(t); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = n.Close() })
		return n
	}
	a, c := mk("a"), mk("b")
	ref, err := a.Create("bench")
	if err != nil {
		b.Fatal(err)
	}
	return a, c, ref
}

type benchState struct {
	Value int
}

func newBenchType() *Type[benchState] {
	t := NewType[benchState]("bench")
	HandleFunc(t, "Add", func(c *Ctx, s *benchState, d int) (int, error) {
		s.Value += d
		return s.Value, nil
	})
	return t
}

// BenchmarkRuntimeLocalInvoke measures an invocation of a locally
// hosted object (trap + dispatch + gob round trip, no network).
func BenchmarkRuntimeLocalInvoke(b *testing.B) {
	a, _, ref := benchNodes(b, PolicyPlacement)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Call[int, int](ctx, a, ref, "Add", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeRemoteInvoke measures an invocation that crosses the
// in-memory transport (linearise, forward, execute, reply).
func BenchmarkRuntimeRemoteInvoke(b *testing.B) {
	_, remote, ref := benchNodes(b, PolicyPlacement)
	ctx := context.Background()
	// Warm the location cache.
	if _, err := Call[int, int](ctx, remote, ref, "Add", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Call[int, int](ctx, remote, ref, "Add", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeMigration measures a full single-object migration
// round trip between two nodes (pause, snapshot, install, commit —
// twice, so the benchmark is steady-state).
func BenchmarkRuntimeMigration(b *testing.B) {
	a, _, ref := benchNodes(b, PolicyConventional)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Migrate(ctx, ref, "b"); err != nil {
			b.Fatal(err)
		}
		if err := a.Migrate(ctx, ref, "a"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeMoveBlock measures an uncontended placement
// move-block: move-request, one call, end-request, and the migration
// back and forth it implies.
func BenchmarkRuntimeMoveBlock(b *testing.B) {
	a, remote, ref := benchNodes(b, PolicyPlacement)
	_ = a
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := remote.Move(ctx, ref, func(ctx context.Context, blk *Block) error {
			_, err := Call[int, int](ctx, remote, ref, "Add", 1)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeWorkingSet measures the distributed closure walk over
// an attached working set of five objects.
func BenchmarkRuntimeWorkingSet(b *testing.B) {
	a, _, root := benchNodes(b, PolicyPlacement)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		m, err := a.Create("bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Attach(ctx, root, m, NoAlliance); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws, err := a.WorkingSet(ctx, root, NoAlliance)
		if err != nil {
			b.Fatal(err)
		}
		if len(ws) != 5 {
			b.Fatalf("working set = %d", len(ws))
		}
	}
}
