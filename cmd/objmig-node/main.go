// Command objmig-node runs a standalone object-hosting node on TCP. It
// registers a small key-value object type ("kv") so multi-process
// clusters can be exercised by hand:
//
//	objmig-node -id a -listen 127.0.0.1:7001 -create 2
//	objmig-node -id b -listen 127.0.0.1:7002 -peer a=127.0.0.1:7001
//
// The node prints the references of any objects it creates; other
// nodes can invoke them with those references (see cmd/objmig-demo for
// a scripted version of this setup).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"objmig"
)

// kvState is the demo object: a string map plus an access counter.
type kvState struct {
	Data map[string]string
	Hits int
}

// kvPair is the Put argument.
type kvPair struct {
	Key, Val string
}

// newKVType builds the demo object type registered by every node.
func newKVType() *objmig.Type[kvState] {
	t := objmig.NewType[kvState]("kv")
	objmig.HandleFunc(t, "Put", func(c *objmig.Ctx, s *kvState, p kvPair) (struct{}, error) {
		if s.Data == nil {
			s.Data = make(map[string]string)
		}
		s.Data[p.Key] = p.Val
		s.Hits++
		return struct{}{}, nil
	})
	objmig.HandleFunc(t, "Get", func(c *objmig.Ctx, s *kvState, key string) (string, error) {
		s.Hits++
		return s.Data[key], nil
	})
	objmig.HandleFunc(t, "Hits", func(c *objmig.Ctx, s *kvState, _ struct{}) (int, error) {
		return s.Hits, nil
	})
	objmig.HandleFunc(t, "Where", func(c *objmig.Ctx, s *kvState, _ struct{}) (objmig.NodeID, error) {
		return c.Node().ID(), nil
	})
	return t
}

// peerList collects repeated -peer id=addr flags.
type peerList map[objmig.NodeID]string

func (p peerList) String() string { return fmt.Sprintf("%v", map[objmig.NodeID]string(p)) }

func (p peerList) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok || id == "" || addr == "" {
		return fmt.Errorf("want id=addr, got %q", v)
	}
	p[objmig.NodeID(id)] = addr
	return nil
}

func parsePolicy(s string) (objmig.PolicyKind, error) {
	switch s {
	case "sedentary":
		return objmig.PolicySedentary, nil
	case "conventional":
		return objmig.PolicyConventional, nil
	case "placement":
		return objmig.PolicyPlacement, nil
	case "compare-nodes":
		return objmig.PolicyCompareNodes, nil
	case "compare-reinstantiate":
		return objmig.PolicyCompareReinstantiate, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseAttach(s string) (objmig.AttachMode, error) {
	switch s {
	case "unrestricted":
		return objmig.AttachUnrestricted, nil
	case "a-transitive":
		return objmig.AttachATransitive, nil
	case "exclusive":
		return objmig.AttachExclusive, nil
	default:
		return 0, fmt.Errorf("unknown attach mode %q", s)
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	peers := peerList{}
	var (
		id     = flag.String("id", "node", "node identity (unique per cluster)")
		listen = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		policy = flag.String("policy", "placement",
			"move policy: sedentary, conventional, placement, compare-nodes, compare-reinstantiate")
		attach = flag.String("attach", "a-transitive",
			"attachment mode: unrestricted, a-transitive, exclusive")
		create = flag.Int("create", 0, "create this many kv objects at startup")
	)
	flag.Var(peers, "peer", "peer address as id=addr (repeatable)")
	flag.Parse()

	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "objmig-node:", err)
		return 2
	}
	att, err := parseAttach(*attach)
	if err != nil {
		fmt.Fprintln(os.Stderr, "objmig-node:", err)
		return 2
	}
	node, err := objmig.NewNode(objmig.Config{
		ID:         objmig.NodeID(*id),
		Cluster:    objmig.NewTCPCluster(),
		ListenAddr: *listen,
		Policy:     pol,
		Attach:     att,
		Peers:      peers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "objmig-node:", err)
		return 1
	}
	defer func() { _ = node.Close() }()
	if err := node.RegisterType(newKVType()); err != nil {
		fmt.Fprintln(os.Stderr, "objmig-node:", err)
		return 1
	}

	fmt.Printf("node %s listening on %s (policy %v, attach %v)\n",
		node.ID(), node.Addr(), node.Policy(), node.AttachPolicy())
	for i := 0; i < *create; i++ {
		ref, err := node.Create("kv")
		if err != nil {
			fmt.Fprintln(os.Stderr, "objmig-node:", err)
			return 1
		}
		fmt.Printf("created kv object %s\n", ref)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	st := node.Stats()
	fmt.Printf("shutting down: served %d invocations, granted %d moves, hosted %d objects\n",
		st.InvocationsServed, st.MovesGranted, st.ObjectsHosted)
	return 0
}
