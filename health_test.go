package objmig

// End-to-end coverage of the cluster health engine: the sick-node
// lifecycle (healthy → degraded → critical → healthy, with hysteresis
// and the placement feedback loop), the observability surfaces it adds
// (/debug/cluster, /debug/flightrec, the objmig_node_health gauge and
// the cumulative histogram buckets on /metrics), and the scrape
// endpoints' behaviour under concurrent migration load. All of it runs
// under -race in CI.

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// quietHealthConfig returns a fast-ticking config with every signal
// but InvokeLocalP99 disabled, so tests drive the state machine
// deterministically through a single injected histogram.
func quietHealthConfig() HealthConfig {
	off := HealthBound{Warn: -1}
	return HealthConfig{
		Tick:              10 * time.Millisecond,
		Window:            120 * time.Millisecond,
		RaiseAfter:        2,
		ClearAfter:        3,
		InvokeLocalP99:    HealthBound{Warn: 2_000, Crit: 200_000},
		InvokeRemoteP99:   off,
		ChaseP99:          off,
		MigrationPhaseP99: off,
		StreamAborts:      off,
		PauseExpiries:     off,
		ChasesOverBudget:  off,
		EventsDropped:     off,
	}
}

func waitHealth(t *testing.T, n *Node, want HealthState) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if n.Health() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %s health = %v after 15s, want %v", n.ID(), n.Health(), want)
}

// TestHealthEngineEndToEnd is the acceptance test: a node made sick
// walks healthy → degraded → critical with hysteresis (each state
// entered exactly once — no flapping), the state rides the gossip to
// its peer, a critical node admits zero inbound migrations, the flight
// recorder freezes an automatic dump carrying the triggering window's
// numbers, and once the sickness stops the node returns to healthy and
// re-admits.
func TestHealthEngineEndToEnd(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)

	var evMu sync.Mutex
	var transitions []string
	obs := func(e Event) {
		if e.Kind == EventHealth && e.Node == "n0" {
			evMu.Lock()
			transitions = append(transitions, fmt.Sprintf("%d>%s", e.Hops, e.Outcome))
			evMu.Unlock()
		}
	}
	nodes := testCluster(t, 2, Config{Observer: obs})
	sick, peer := nodes[0], nodes[1]
	fullMesh(nodes...)
	for _, n := range nodes {
		if err := n.EnablePlacement(PlacementConfig{Heartbeat: 20 * time.Millisecond, OriginPass: -1}); err != nil {
			t.Fatal(err)
		}
		if err := n.EnableHealth(quietHealthConfig()); err != nil {
			t.Fatal(err)
		}
	}
	waitForView(t, peer, 1)
	waitForView(t, sick, 1)

	// The sickness injector: a background ticker feeding the local
	// invoke histogram whatever latency the test dials in. 0 pauses
	// the injection.
	var magnitude atomic.Int64
	stopInj := make(chan struct{})
	defer close(stopInj)
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopInj:
				return
			case <-tick.C:
				if m := magnitude.Load(); m > 0 {
					sick.tel.invokeLocal.Observe(m)
				}
			}
		}
	}()

	// Phase 1: idle nodes evaluate healthy.
	deadline := time.Now().Add(10 * time.Second)
	for sick.Stats().HealthTicks < 3 {
		if time.Now().After(deadline) {
			t.Fatal("health daemon never ticked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := sick.Health(); got != HealthHealthy {
		t.Fatalf("idle health = %v, want healthy", got)
	}

	// Phase 2: warning-level latency (10ms against a 2ms warn bound,
	// far under the 200ms crit bound) degrades the node — and only
	// degrades it.
	magnitude.Store(10_000)
	waitHealth(t, sick, HealthDegraded)
	if st := sick.Stats(); st.HealthCritical != 0 {
		t.Fatalf("warning-level sickness reached critical %d times", st.HealthCritical)
	}

	// Phase 3: second-long latencies escalate to critical.
	magnitude.Store(1_000_000)
	waitHealth(t, sick, HealthCritical)

	// The state rides the existing load gossip: the peer's view must
	// converge on the sick node being critical with no extra RPC.
	deadline = time.Now().Add(10 * time.Second)
	for {
		var got HealthState
		for _, l := range peer.LoadView() {
			if l.Node == sick.ID() {
				got = l.Health
			}
		}
		if got == HealthCritical {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer view never saw %s critical (got %v)", sick.ID(), got)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Zero inbound admissions while critical: the target-side veto
	// refuses the migration even though the node has capacity to
	// spare.
	ref := mustCreate(t, peer)
	if err := peer.Migrate(ctx, ref, sick.ID()); err == nil {
		t.Fatal("migration into a critical node succeeded")
	}
	if at := whereIs(t, ctx, peer, ref); at != peer.ID() {
		t.Fatalf("refused object ended up on %s", at)
	}
	if st := sick.Stats(); st.HealthVetoes < 1 {
		t.Fatalf("HealthVetoes = %d after refused migration", st.HealthVetoes)
	}

	// The transition auto-froze a flight-recorder dump carrying the
	// verdict that fired it.
	raw := sick.LastFlightDump()
	if raw == nil {
		t.Fatal("no automatic flight-recorder dump after transitions")
	}
	var dump struct {
		Node    string           `json:"node"`
		Reason  string           `json:"reason"`
		State   string           `json:"state"`
		Worst   string           `json:"worst"`
		Values  map[string]int64 `json:"values"`
		Entries []struct {
			Kind  string `json:"kind"`
			Label string `json:"label"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("automatic dump is not JSON: %v", err)
	}
	if dump.Node != "n0" || dump.Reason != "transition" || dump.State != "critical" {
		t.Fatalf("dump header = %s/%s/%s, want n0/transition/critical", dump.Node, dump.Reason, dump.State)
	}
	if dump.Worst != "invoke_local_p99_us" {
		t.Fatalf("dump worst signal = %q", dump.Worst)
	}
	if v := dump.Values["invoke_local_p99_us"]; v < 200_000 {
		t.Fatalf("dump's offending window p99 = %d, want >= crit 200000", v)
	}
	if len(dump.Entries) == 0 {
		t.Fatal("dump carries no ring entries")
	}
	sawHealthEntry := false
	for _, e := range dump.Entries {
		if e.Kind == "health" {
			sawHealthEntry = true
		}
	}
	if !sawHealthEntry {
		t.Fatal("dump carries no health-tick entries")
	}

	// Phase 4: the sickness stops; the window drains and the node
	// clears back to healthy...
	magnitude.Store(0)
	waitHealth(t, sick, HealthHealthy)

	// ...and re-admits. (Poll: the peer's gossiped view needs a beat
	// to see the recovery too, but the authoritative target-side gate
	// is already open.)
	if err := peer.Migrate(ctx, ref, sick.ID()); err != nil {
		t.Fatalf("migration into recovered node: %v", err)
	}
	if at := whereIs(t, ctx, peer, ref); at != sick.ID() {
		t.Fatalf("object on %s after migration to recovered node", at)
	}

	// Hysteresis means each state was entered exactly once: degraded
	// on the way up, critical, then healthy on recovery — no flapping.
	evMu.Lock()
	got := append([]string(nil), transitions...)
	evMu.Unlock()
	want := []string{"0>degraded", "1>critical", "2>healthy"}
	if len(got) != len(want) {
		t.Fatalf("health transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("health transitions = %v, want %v", got, want)
		}
	}
}

// TestHealthScrapeSurfaces covers the engine's read side: the
// objmig_node_health gauge and the cumulative _bucket histogram series
// on /metrics, the /debug/cluster aggregation, and both verbs of
// /debug/flightrec.
func TestHealthScrapeSurfaces(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{})
	a, b := nodes[0], nodes[1]
	fullMesh(nodes...)
	for _, n := range nodes {
		if err := n.EnablePlacement(PlacementConfig{Heartbeat: 20 * time.Millisecond, OriginPass: -1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.EnableHealth(quietHealthConfig()); err != nil {
		t.Fatal(err)
	}
	if err := a.EnableHealth(quietHealthConfig()); err == nil {
		t.Fatal("double EnableHealth succeeded")
	}

	// Some real histogram traffic so the bucket series are non-empty.
	ref := mustCreate(t, a)
	for i := 0; i < 32; i++ {
		if _, err := Call[int, int](ctx, a, ref, "Add", 1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.Stats().HealthTicks < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no health tick")
		}
		time.Sleep(5 * time.Millisecond)
	}

	h := a.MetricsHandler()
	scrape := func(method, path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
		return rec.Code, rec.Body.String()
	}

	_, metrics := scrape("GET", "/metrics")
	for _, want := range []string{
		`objmig_node_health{node="n0"} 0`,
		`objmig_health_state{node="n0"} 0`,
		`# TYPE objmig_invoke_local_us_bucket histogram`,
		`objmig_invoke_local_us_bucket{node="n0",le="+Inf"} `,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The cumulative bucket series must end at the histogram's count.
	var count, inf int64
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, `objmig_invoke_local_us_count{node="n0"}`) {
			count, _ = strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		}
		if strings.HasPrefix(line, `objmig_invoke_local_us_bucket{node="n0",le="+Inf"}`) {
			inf, _ = strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		}
	}
	if count == 0 || inf != count {
		t.Errorf("bucket +Inf = %d, histogram count = %d; want equal and non-zero", inf, count)
	}

	// /debug/cluster shows this node's own healthy row immediately and
	// the peer's row once the gossip delivers a sample.
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, cluster := scrape("GET", "/debug/cluster")
		if strings.Contains(cluster, "healthy") && strings.Contains(cluster, "(self)") &&
			strings.Contains(cluster, "n1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/debug/cluster never showed both rows:\n%s", cluster)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// POST /debug/flightrec freezes a manual dump; GET has no
	// automatic dump to serve while the node stays healthy.
	code, body := scrape("POST", "/debug/flightrec")
	if code != 200 {
		t.Fatalf("POST /debug/flightrec = %d: %s", code, body)
	}
	var dump struct {
		Reason  string            `json:"reason"`
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("manual dump is not JSON: %v", err)
	}
	if dump.Reason != "manual" || len(dump.Entries) == 0 {
		t.Fatalf("manual dump reason=%q entries=%d, want manual and non-empty", dump.Reason, len(dump.Entries))
	}
	if code, _ := scrape("GET", "/debug/flightrec"); code != 404 {
		t.Fatalf("GET /debug/flightrec with no auto dump = %d, want 404", code)
	}

	// The health-less peer still scrapes (gauge reads 0, no recorder);
	// its flight recorder endpoint reports the conflict.
	hb := b.MetricsHandler()
	rec := httptest.NewRecorder()
	hb.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/flightrec", nil))
	if rec.Code != 409 {
		t.Fatalf("POST /debug/flightrec without health = %d, want 409", rec.Code)
	}
}

// TestMetricsScrapeUnderMigrationLoad hammers every read endpoint
// while a streamed multi-host migration and a drain job run
// concurrently: no panics, no race reports (CI runs this under
// -race), and the scraped invocation counter never goes backwards.
func TestMetricsScrapeUnderMigrationLoad(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)

	cl := NewLocalCluster()
	mk := func(id NodeID) *Node {
		n, err := NewNode(Config{
			ID: id, Cluster: cl, Capacity: 64,
			// ChunkBytes 1 forces real multi-chunk streaming sessions.
			Migrate: MigrateConfig{ChunkBytes: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		if err := n.RegisterType(newCounterType()); err != nil {
			t.Fatal(err)
		}
		if err := n.EnablePlacement(PlacementConfig{Heartbeat: 20 * time.Millisecond, OriginPass: -1}); err != nil {
			t.Fatal(err)
		}
		if err := n.EnableHealth(HealthConfig{Tick: 10 * time.Millisecond, Window: 200 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	fullMesh(a, b, c)

	const objects = 12
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = mustCreate(t, a)
	}
	waitForView(t, a, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Migration churn: objects stream around the ring for the whole
	// run, with invocations interleaved.
	wg.Add(1)
	go func() {
		defer wg.Done()
		targets := []*Node{b, c, a}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ref := refs[i%objects]
			_ = a.Migrate(ctx, ref, targets[i%len(targets)].ID())
			_, _ = Call[int, int](ctx, a, ref, "Add", 1)
		}
	}()

	// Scrapers: three goroutines cycling the endpoints, checking the
	// invocation counter only ever grows.
	handlers := []struct {
		h    *Node
		path string
	}{
		{a, "/metrics"}, {a, "/debug/vars"}, {a, "/debug/migrations"},
		{a, "/debug/cluster"}, {b, "/metrics"}, {c, "/debug/vars"},
	}
	scrapeErr := make(chan error, 3)
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var lastServed int64
			h := a.MetricsHandler()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ep := handlers[(s+i)%len(handlers)]
				rec := httptest.NewRecorder()
				ep.h.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", ep.path, nil))
				if rec.Code != 200 {
					scrapeErr <- fmt.Errorf("%s %s: status %d", ep.h.ID(), ep.path, rec.Code)
					return
				}
				// Monotonicity, checked on node a's /metrics.
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				for _, line := range strings.Split(rec.Body.String(), "\n") {
					if !strings.HasPrefix(line, `objmig_invocations_served{node="a"}`) {
						continue
					}
					v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
					if err != nil {
						scrapeErr <- fmt.Errorf("parse %q: %w", line, err)
						return
					}
					if v < lastServed {
						scrapeErr <- fmt.Errorf("invocations_served went backwards: %d -> %d", lastServed, v)
						return
					}
					lastServed = v
				}
			}
		}(s)
	}

	// Give the churn a moment to overlap with scraping, then drain a
	// node while both continue.
	time.Sleep(300 * time.Millisecond)
	j, err := a.NewDrainJob(JobConfig{WaveSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Execute(ctx); err != nil {
		t.Fatalf("drain under scrape load: %v (status %+v)", err, j.Status())
	}
	close(stop)
	wg.Wait()
	close(scrapeErr)
	for err := range scrapeErr {
		t.Error(err)
	}
	if a.Stats().InvocationsServed == 0 {
		t.Fatal("no invocations recorded; the load generator never ran")
	}
}
