package des

import "testing"

// BenchmarkEventThroughput measures the kernel's raw event rate: the
// handoff cost dominates simulation time, so this number bounds every
// experiment's speed.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run(-1)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkCondBroadcast measures waking a cohort of waiters.
func BenchmarkCondBroadcast(b *testing.B) {
	const waiters = 16
	k := NewKernel()
	c := k.NewCond()
	for i := 0; i < waiters; i++ {
		k.Spawn("waiter", func(p *Proc) {
			for j := 0; j < b.N; j++ {
				p.Wait(c)
			}
		})
	}
	k.Spawn("beater", func(p *Proc) {
		for j := 0; j < b.N; j++ {
			p.Sleep(1)
			c.Broadcast()
		}
		// Release anyone still parked on the final round.
		p.Sleep(1)
		c.Broadcast()
	})
	b.ResetTimer()
	k.Run(-1)
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkSpawn measures process creation and teardown.
func BenchmarkSpawn(b *testing.B) {
	k := NewKernel()
	k.Spawn("spawner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Kernel().Spawn("child", func(c *Proc) {})
			p.Sleep(0)
		}
	})
	b.ResetTimer()
	k.Run(-1)
	b.StopTimer()
	k.Shutdown()
}
