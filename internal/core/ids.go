// Package core implements the paper's primary contribution: the
// migration-control policies for non-monolithic distributed
// applications.
//
// Everything in this package is a pure, deterministic state machine with
// no I/O and no clock: the same code is driven by the discrete-event
// simulator (package sim) and by the live distributed-object runtime
// (package objmig), so the policies that are evaluated are exactly the
// policies that ship.
//
// The package models the linguistic primitives of Section 2 of the paper
// (migrate / move / end / fix / attach) and the two proposed remedies of
// Section 3: transient placement (the "place-policy") and restriction of
// attachment transitiveness via alliances (A-transitive attachment),
// plus the two "intelligent" dynamic extensions of Section 3.3
// (comparing-the-nodes and comparing-and-reinstantiation) and the
// exclusive-attachment variant of Section 3.4.
package core

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (a location) in the distributed system.
type NodeID string

// OID is a globally unique object identifier: the node that created the
// object plus a per-creator sequence number.
type OID struct {
	Origin NodeID
	Seq    uint64
}

// String renders the OID as origin/seq.
func (o OID) String() string { return fmt.Sprintf("%s/%d", o.Origin, o.Seq) }

// Less provides the canonical ordering of OIDs (by origin, then
// sequence), used wherever deterministic iteration is required.
func (o OID) Less(p OID) bool {
	if o.Origin != p.Origin {
		return o.Origin < p.Origin
	}
	return o.Seq < p.Seq
}

// SortOIDs sorts ids into canonical order, in place.
func SortOIDs(ids []OID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
}

// HashOID hashes an OID (FNV-1a over the origin bytes and the
// sequence) — the shared basis for lock-stripe selection wherever
// per-object state is sharded (the object store, the affinity
// tracker). Callers mask the result down to their stripe count.
func HashOID(id OID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id.Origin); i++ {
		h ^= uint64(id.Origin[i])
		h *= prime64
	}
	seq := id.Seq
	for i := 0; i < 8; i++ {
		h ^= seq & 0xff
		h *= prime64
		seq >>= 8
	}
	return h
}

// AllianceID identifies an alliance, the dynamic cooperation context of
// Section 3.4. NoAlliance labels attachments issued outside any alliance
// and moves issued without a cooperation context.
type AllianceID uint64

// NoAlliance is the zero alliance: the global (context-free) label.
const NoAlliance AllianceID = 0

// BlockID identifies one move-block (the span between a move-request and
// its end-request). Lock ownership is per block, not per node: two
// blocks running on the same node are still distinct contenders.
type BlockID uint64
