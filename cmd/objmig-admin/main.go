// Command objmig-admin drives a node's migration jobs over its
// metrics endpoint (-metrics-addr on objmig-node). It is a thin HTTP
// front end to /debug/jobs:
//
//	objmig-admin -addr 127.0.0.1:7101 drain            # start draining that node
//	objmig-admin -addr 127.0.0.1:7101 rebalance -wait  # rebalance, block until terminal
//	objmig-admin -addr 127.0.0.1:7101 status           # list the node's jobs
//	objmig-admin -addr 127.0.0.1:7101 cancel -id 3     # cancel job 3
//	objmig-admin -addr 127.0.0.1:7101 top              # cluster health/utilisation view
//	objmig-admin -addr 127.0.0.1:7101 dump             # freeze and print the flight recorder
//
// top and dump wrap /debug/cluster and /debug/flightrec; they need the
// health engine (objmig-node -health) for meaningful output.
//
// Exit status is 0 when the verb succeeded (for -wait: the job ended
// done or cancelled), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7101", "node metrics address (objmig-node -metrics-addr)")
	id := flag.Uint64("id", 0, "job id (cancel)")
	wait := flag.Bool("wait", false, "after drain/rebalance, poll status until the job is terminal")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline for -wait polling")
	flag.Parse()

	// Accept flags on either side of the verb ("drain -wait" reads
	// better than "-wait drain"): take the first positional as the
	// verb, then re-parse whatever followed it.
	if flag.NArg() < 1 {
		usage()
	}
	verb := flag.Arg(0)
	if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
		os.Exit(2)
	}
	if flag.NArg() != 0 {
		usage()
	}
	base := "http://" + *addr + "/debug/jobs"

	var err error
	switch verb {
	case "status":
		err = status(base)
	case "drain", "rebalance":
		err = start(base, verb, *wait, *timeout)
	case "cancel":
		err = post(base, url.Values{"action": {"cancel"}, "id": {fmt.Sprint(*id)}})
	case "top":
		err = status("http://" + *addr + "/debug/cluster")
	case "dump":
		err = post("http://"+*addr+"/debug/flightrec", nil)
	default:
		err = fmt.Errorf("unknown verb %q (want drain, rebalance, status, cancel, top or dump)", verb)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "objmig-admin:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: objmig-admin [-addr host:port] drain|rebalance|status|cancel|top|dump [-id N] [-wait] [-timeout D]")
	os.Exit(2)
}

// status prints the node's job table verbatim.
func status(base string) error {
	body, err := get(base)
	if err != nil {
		return err
	}
	fmt.Print(body)
	return nil
}

// start launches a drain or rebalance and, with -wait, polls the job
// table until the started job reaches a terminal state.
func start(base, verb string, wait bool, timeout time.Duration) error {
	body, err := postBody(base, url.Values{"action": {verb}})
	if err != nil {
		return err
	}
	fmt.Print(body)
	if !wait {
		return nil
	}
	// The start line reads "job N started ...".
	var id uint64
	if _, err := fmt.Sscanf(body, "job %d started", &id); err != nil {
		return fmt.Errorf("cannot parse started job id from %q: %w", strings.TrimSpace(body), err)
	}
	needle := fmt.Sprintf("job %d ", id)
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		table, err := get(base)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(table, "\n") {
			if !strings.HasPrefix(line, needle) {
				continue
			}
			switch {
			case strings.Contains(line, "state=done"), strings.Contains(line, "state=cancelled"):
				fmt.Println(line)
				return nil
			case strings.Contains(line, "state=failed"):
				fmt.Println(line)
				return fmt.Errorf("job %d failed", id)
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("job %d not terminal after %s", id, timeout)
}

func get(u string) (string, error) {
	resp, err := http.Get(u)
	if err != nil {
		return "", err
	}
	return slurp(resp)
}

func post(u string, form url.Values) error {
	body, err := postBody(u, form)
	if err != nil {
		return err
	}
	fmt.Print(body)
	return nil
}

func postBody(u string, form url.Values) (string, error) {
	resp, err := http.PostForm(u, form)
	if err != nil {
		return "", err
	}
	return slurp(resp)
}

// slurp reads a response, turning non-2xx statuses into errors.
func slurp(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	return string(b), nil
}
