#!/usr/bin/env bash
# check-allocs.sh — perf-regression guard for the wire codec, the
# location directory and the telemetry hot path.
#
# Runs BenchmarkRuntimeCodec (allocs/op), BenchmarkDirectoryScale
# (bytes/obj, p99-hops), BenchmarkTelemetryRecord (allocs/op),
# BenchmarkShedPlan (allocs/op), BenchmarkJobPlan (allocs/op) and
# BenchmarkHealthTick (allocs/op) and fails if any reported value
# exceeds its ceiling in scripts/alloc-budget.txt. The fast-path codec budgets are exact
# (their allocation counts are deterministic — the append variants
# allocate only decode output) and the telemetry budgets are zero
# (recording a counter, gauge, histogram sample or migration span must
# never allocate); the gob baselines and the directory's
# bytes-per-object get headroom for drift. Lowering a number after an
# optimisation is encouraged; raising one is a reviewed decision.
#
# Budget rows are "name budget [unit]"; the unit defaults to
# allocs/op. The value compared is the one immediately preceding the
# matching unit column in the benchmark output.
#
# Run from the repository root: ./scripts/check-allocs.sh
set -u
cd "$(dirname "$0")/.."

budget_file=scripts/alloc-budget.txt
out=$(go test -run '^$' -bench 'BenchmarkRuntimeCodec' -benchmem -benchtime 200x . 2>&1)
status=$?
echo "$out"
if [ "$status" -ne 0 ]; then
  echo "alloc check FAILED (benchmark did not run)"
  exit 1
fi

dirout=$(go test -run '^$' -bench 'BenchmarkDirectoryScale' -benchtime 1x . 2>&1)
dirstatus=$?
echo "$dirout"
if [ "$dirstatus" -ne 0 ]; then
  echo "alloc check FAILED (directory benchmark did not run)"
  exit 1
fi

telout=$(go test -run '^$' -bench 'BenchmarkTelemetryRecord' -benchmem -benchtime 200x ./internal/telemetry 2>&1)
telstatus=$?
echo "$telout"
if [ "$telstatus" -ne 0 ]; then
  echo "alloc check FAILED (telemetry benchmark did not run)"
  exit 1
fi

shedout=$(go test -run '^$' -bench 'BenchmarkShedPlan' -benchmem -benchtime 20x . 2>&1)
shedstatus=$?
echo "$shedout"
if [ "$shedstatus" -ne 0 ]; then
  echo "alloc check FAILED (shed-plan benchmark did not run)"
  exit 1
fi
jobout=$(go test -run '^$' -bench 'BenchmarkJobPlan' -benchmem -benchtime 20x ./internal/jobs 2>&1)
jobstatus=$?
echo "$jobout"
if [ "$jobstatus" -ne 0 ]; then
  echo "alloc check FAILED (job-plan benchmark did not run)"
  exit 1
fi
healthout=$(go test -run '^$' -bench 'BenchmarkHealthTick' -benchmem -benchtime 200x ./internal/health 2>&1)
healthstatus=$?
echo "$healthout"
if [ "$healthstatus" -ne 0 ]; then
  echo "alloc check FAILED (health-tick benchmark did not run)"
  exit 1
fi
out="$out
$dirout
$telout
$shedout
$jobout
$healthout"

fail=0
while read -r name budget unit; do
  case "$name" in '' | '#'*) continue ;; esac
  [ -z "$unit" ] && unit=allocs/op
  # Benchmark lines append a -GOMAXPROCS suffix to the name; the value
  # is the column immediately preceding the unit column.
  actual=$(echo "$out" | awk -v n="$name" -v u="$unit" '
    $1 ~ "^"n"(-[0-9]+)?$" { for (i = 1; i <= NF; i++) if ($i == u) print $(i-1) }')
  if [ -z "$actual" ]; then
    echo "ALLOC GUARD: benchmark $name ($unit) missing from output"
    fail=1
    continue
  fi
  over=$(awk -v a="$actual" -v b="$budget" 'BEGIN { print (a > b) ? 1 : 0 }')
  if [ "$over" -eq 1 ]; then
    echo "PERF REGRESSION: $name reports $actual $unit, budget is $budget"
    fail=1
  fi
done <"$budget_file"

if [ "$fail" -ne 0 ]; then
  echo "alloc check FAILED"
  exit 1
fi
echo "alloc check OK"
