package registry

import (
	"strings"
	"testing"

	"objmig/internal/core"
)

func TestDebug(t *testing.T) {
	t.Parallel()
	r := New("n1")
	id := core.OID{Origin: "n1", Seq: 4}
	r.Created(id)
	r.Departed(id, "n2")
	out := r.Debug(id)
	for _, want := range []string{"self=n1", `home="n2"(true)`, `fwd="n2"(true)`, `cache=""(false)`} {
		if !strings.Contains(out, want) {
			t.Fatalf("Debug = %q missing %q", out, want)
		}
	}
}
