package objmig

import (
	"sync/atomic"
	"testing"
	"time"

	"objmig/internal/telemetry"
)

// mergedSpans unions the migration spans every node recorded — the
// cross-node raw material a timeline reconstruction works from.
func mergedSpans(nodes []*Node) []telemetry.Span {
	var all []telemetry.Span
	for _, n := range nodes {
		all = append(all, n.TraceSpans()...)
	}
	return all
}

// phasesOf indexes the spans of one trace by phase.
func phasesOf(spans []telemetry.Span, trace uint64) map[telemetry.Phase][]telemetry.Span {
	out := make(map[telemetry.Phase][]telemetry.Span)
	for _, sp := range spans {
		if sp.Trace == trace {
			out[sp.Phase] = append(out[sp.Phase], sp)
		}
	}
	return out
}

// TestMigrationTraceCorrelation: a streamed multi-host group migration
// is annotated with a single TraceID on every node it touches, and
// merging the participants' span rings reconstructs the complete
// timeline — every phase present, timestamps in causal order, byte
// totals agreeing with the stream counters.
func TestMigrationTraceCorrelation(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	// ChunkBytes 1 forces the streamed path: per-snapshot pause
	// sub-batches, InstallChunk frames, a staging session.
	nodes := testCluster(t, 3, Config{Migrate: MigrateConfig{ChunkBytes: 1}})
	root := mustCreate(t, nodes[0])
	members := []Ref{root}
	for i := 0; i < 4; i++ {
		members = append(members, mustCreate(t, nodes[0]))
	}
	remote := mustCreate(t, nodes[1]) // second host: spans cross nodes
	members = append(members, remote)
	for _, m := range members[1:] {
		if err := nodes[0].Attach(ctx, root, m, NoAlliance); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range members {
		if _, err := Call[int, int](ctx, nodes[0], m, "Add", 10+i); err != nil {
			t.Fatal(err)
		}
	}

	if err := nodes[0].Migrate(ctx, root, "n2"); err != nil {
		t.Fatal(err)
	}

	// Exactly one migration ran, so exactly one trace must appear —
	// on every participating node.
	traces := make(map[uint64]bool)
	for _, sp := range mergedSpans(nodes) {
		if sp.Trace == 0 {
			t.Fatalf("untraced span in the ring: %+v", sp)
		}
		traces[sp.Trace] = true
	}
	if len(traces) != 1 {
		t.Fatalf("one migration produced %d distinct traces", len(traces))
	}
	var trace uint64
	for tr := range traces {
		trace = tr
	}

	// The directory-update spans trail the commit (home updates are
	// batched asynchronously); poll until the timeline is complete.
	want := []telemetry.Phase{
		telemetry.PhasePause, telemetry.PhaseSnapshot, telemetry.PhaseStream,
		telemetry.PhaseStage, telemetry.PhaseInstall, telemetry.PhaseCommit,
		telemetry.PhaseDirUpdate,
	}
	eventually(t, 5*time.Second, func() bool {
		ph := phasesOf(mergedSpans(nodes), trace)
		for _, p := range want {
			if len(ph[p]) == 0 {
				return false
			}
		}
		return true
	}, "merged timeline never gained all phases")

	ph := phasesOf(mergedSpans(nodes), trace)
	minStart := func(p telemetry.Phase) int64 {
		m := ph[p][0].Start
		for _, sp := range ph[p] {
			if sp.Start < m {
				m = sp.Start
			}
		}
		return m
	}
	for p, spans := range ph {
		for _, sp := range spans {
			if sp.Start <= 0 || sp.End < sp.Start {
				t.Fatalf("phase %s span with impossible timestamps: %+v", p, sp)
			}
		}
	}
	// Causal order across nodes: pausing starts before the target
	// stages the first chunk, staging before the install, the install
	// before the coordinator's commit round.
	order := []telemetry.Phase{
		telemetry.PhasePause, telemetry.PhaseStage,
		telemetry.PhaseInstall, telemetry.PhaseCommit,
	}
	for i := 1; i < len(order); i++ {
		if minStart(order[i-1]) > minStart(order[i]) {
			t.Fatalf("phase %s started after %s", order[i-1], order[i])
		}
	}

	// Byte accounting: the coordinator's stream spans must add up to
	// its StreamBytesOut, the target's stage spans to its
	// StreamBytesIn, and the two sides must agree.
	sum := func(p telemetry.Phase) int64 {
		var total int64
		for _, sp := range ph[p] {
			total += sp.Bytes
		}
		return total
	}
	streamed, staged := sum(telemetry.PhaseStream), sum(telemetry.PhaseStage)
	if out := nodes[0].Stats().StreamBytesOut; streamed != out {
		t.Fatalf("stream spans carry %d bytes, coordinator counted %d", streamed, out)
	}
	if in := nodes[2].Stats().StreamBytesIn; staged != in {
		t.Fatalf("stage spans carry %d bytes, target counted %d", staged, in)
	}
	if streamed != staged {
		t.Fatalf("coordinator streamed %d bytes, target staged %d", streamed, staged)
	}
	if installed := sum(telemetry.PhaseInstall); installed != staged {
		t.Fatalf("install span carries %d bytes, staged %d", installed, staged)
	}

	// The same timeline is what each node's Timelines() reports for
	// its local slice of the work.
	for i, n := range nodes {
		tls := n.Timelines()
		if len(tls) != 1 || tls[0].Trace != trace {
			t.Fatalf("node %d timelines: %d entries (want the one trace)", i, len(tls))
		}
	}
}

// TestObserverBufferBackpressure: with a bounded async sink, a stalled
// observer never blocks the hot path — surplus events are shed and
// counted, Close still drains cleanly, and the first shed surfaces as
// one synchronous, rate-limited EventObserverOverflow so operators
// learn about the loss without polling Stats. (The overflow event is
// the only synchronous delivery; observers must handle it quickly.)
func TestObserverBufferBackpressure(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	release := make(chan struct{})
	var delivered, overflows, overflowBytes atomic.Int64
	slow := func(e Event) {
		if e.Kind == EventObserverOverflow {
			overflows.Add(1)
			overflowBytes.Store(e.Bytes)
			return
		}
		<-release
		delivered.Add(1)
	}
	nodes := testCluster(t, 1, Config{Observer: slow, ObserverBuffer: 2})
	n := nodes[0]
	ref := mustCreate(t, n)

	// Each Add emits one event; with the observer stalled, at most
	// ObserverBuffer+1 can be in flight, the rest must be shed without
	// ever blocking an invocation.
	for i := 0; i < 50; i++ {
		if _, err := Call[int, int](ctx, n, ref, "Add", 1); err != nil {
			t.Fatal(err)
		}
	}
	dropped := n.Stats().EventsDropped
	if dropped == 0 {
		t.Fatal("stalled observer shed no events")
	}
	// Exactly one overflow notification for the whole burst (the rate
	// limit is a minute), carrying a positive cumulative drop count.
	if got := overflows.Load(); got != 1 {
		t.Fatalf("overflow notifications = %d, want exactly 1", got)
	}
	if overflowBytes.Load() < 1 {
		t.Fatalf("overflow event carried drop count %d, want >= 1", overflowBytes.Load())
	}

	// Unstall and close: the queue drains in order, nothing deadlocks.
	close(release)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if delivered.Load() == 0 {
		t.Fatal("queued events never reached the observer")
	}
	if got := n.Stats().EventsDropped; got < dropped {
		t.Fatalf("drop counter went backwards: %d then %d", dropped, got)
	}
}

// TestEventKindStringsComplete walks every declared kind and fails when
// one was added without a name — the drift guard for EventKind.String.
func TestEventKindStringsComplete(t *testing.T) {
	t.Parallel()
	seen := make(map[string]EventKind)
	for k := EventKind(1); k < eventKindEnd; k++ {
		name := k.String()
		if name == "unknown" {
			t.Errorf("EventKind %d has no String() name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("EventKind %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	if eventKindEnd.String() != "unknown" || EventKind(0).String() != "unknown" {
		t.Error("out-of-range kinds must read as unknown")
	}
}
