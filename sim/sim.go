// Package sim implements the paper's simulation model (Section 4.1) and
// the experiments behind every figure of its evaluation.
//
// The model: D fully connected nodes run C sedentary client objects and
// S1 (+ optionally S2) mobile server objects. Clients repeatedly open
// move-blocks against a uniformly chosen first-layer server: a
// move-request, N invocations separated by think times t_i, and an
// end-request. Every invocation message has an exponentially
// distributed duration with mean 1 (the time unit); a remote invocation
// is a request plus a reply message, a local invocation costs nothing.
// Migrating an object (or an attached working set, as one batch) takes
// the fixed duration M, during which calls to the migrating objects
// block. Which move-requests actually migrate objects is decided by the
// policies of internal/core — the same state machines the live runtime
// executes.
//
// The reported metric is the paper's: mean communication time per
// (top-level) call, i.e. the invocation duration plus the block's
// migration cost spread evenly over the block's invocations. Figures 10
// and 11 report the two components separately.
package sim

import (
	"errors"
	"fmt"

	"objmig/internal/core"
	"objmig/internal/stats"
)

// Re-exported policy and attachment identifiers, so users of the
// public simulation API can name them without reaching into internal
// packages.
const (
	PolicySedentary            = core.PolicySedentary
	PolicyConventional         = core.PolicyConventional
	PolicyPlacement            = core.PolicyPlacement
	PolicyCompareNodes         = core.PolicyCompareNodes
	PolicyCompareReinstantiate = core.PolicyCompareReinstantiate

	AttachUnrestricted = core.AttachUnrestricted
	AttachATransitive  = core.AttachATransitive
	AttachExclusive    = core.AttachExclusive
)

// Config describes one simulation cell: a parameter set of Table 1 plus
// a policy selection and the stopping rule.
type Config struct {
	// Nodes is D, the number of fully connected nodes.
	Nodes int
	// Clients is C. Clients are sedentary and pinned round-robin to
	// nodes (client i lives on node i mod D).
	Clients int
	// Servers1 is S1, the number of first-layer servers (the objects
	// clients open move-blocks against).
	Servers1 int
	// Servers2 is S2, the number of second-layer servers. When
	// non-zero, first-layer server i owns the working set
	// {S2[i mod S2], S2[(i+1) mod S2]} (wrap-around overlap — the
	// paper's partially overlapping worst case) and every top-level
	// call triggers one nested call to a uniformly chosen member.
	Servers2 int
	// MigrationTime is M, the fixed duration of one migration batch.
	MigrationTime float64
	// MeanCalls is the mean of the exponentially distributed number
	// of calls N in a move-block.
	MeanCalls float64
	// MeanInterCall is the mean think time t_i between two calls of a
	// block.
	MeanInterCall float64
	// MeanInterBlock is the mean pause t_m between two move-blocks of
	// the same client.
	MeanInterBlock float64
	// Policy selects the move-policy under test.
	Policy core.PolicyKind
	// Attach selects the attachment regime. It only matters when
	// Servers2 > 0; the zero value defaults to unrestricted.
	Attach core.AttachMode
	// DisableGroupLock is an ablation switch: when set, a granted
	// placement move locks only the requested object instead of the
	// whole moved working set, so other blocks can steal attached
	// members mid-block. The paper's semantics (Section 4.4) keep the
	// set together; this switch quantifies what that rule is worth.
	DisableGroupLock bool
	// HotClientShare skews the traffic: this fraction of the clients
	// is pinned to node 0 instead of spreading round-robin, so node 0
	// becomes the cluster's convergence point. 0 keeps the paper's
	// symmetric pinning.
	HotClientShare float64
	// SmallNodeCapacity models a heterogeneous cluster: node 0 can
	// hold at most this many resident server objects. A migration
	// batch that would push it past the capacity is vetoed (denied) —
	// the simulator's twin of the live runtime's placement overload
	// veto. 0 means uncapped.
	SmallNodeCapacity int
	// SmallNodeSeed pre-loads node 0 with this many of the server
	// objects at time zero (the rest spread round-robin over the other
	// nodes), modelling a node that starts out overloaded. 0 keeps the
	// symmetric round-robin start. Must not exceed the server count,
	// nor SmallNodeCapacity when that is set.
	SmallNodeSeed int
	// ShedRatio arms proactive shedding on the capped small node: once
	// node 0's resident count exceeds ShedRatio×SmallNodeCapacity, a
	// background shedder migrates node 0's coldest free working sets
	// (least recently invoked first) to the emptiest other node until
	// the count is back at or below the threshold. The shedder refuses
	// any receiver the transfer would push past the same threshold —
	// the oscillation guard the live runtime's ShedTarget applies, so
	// receivers never become shedders themselves. Requires
	// SmallNodeCapacity > 0; must be in [0, 1), 0 disables.
	ShedRatio float64
	// DrainAt schedules a drain job against node 0: at this simulated
	// time a background drainer starts migrating every server object
	// resident on node 0 (whole working sets, coldest first) to the
	// emptiest peers until the node is empty. From the drain start the
	// node also refuses all inbound transfers — the simulator's twin of
	// the live jobs layer's draining-admission refusal — so traffic
	// cannot refill it behind the drainer's back; a drained node stays
	// out of service for the rest of the run. Requires Nodes >= 2;
	// 0 disables.
	DrainAt float64
	// SickAt / SickFor model a sick node: during the simulated-time
	// window [SickAt, SickAt+SickFor) node 0's health engine reports
	// it critical, and every inbound transfer is refused — the
	// simulator's twin of the live runtime's critical-admission veto.
	// Unlike a drain the node keeps its residents and keeps serving;
	// only admission is gated, and it reopens when the window ends.
	// SickFor 0 disables; when armed, requires Nodes >= 2.
	SickAt  float64
	SickFor float64
	// GossipHeartbeat models the live runtime's load-gossip cadence:
	// every node re-broadcasts its load sample once per this many time
	// units (staggered across nodes). The veto itself stays
	// authoritative — exactly like the runtime's target-side admission
	// check — but each fired veto records how stale the target's last
	// broadcast was at decision time, quantifying how far off a
	// gossip-only decision would have been. 0 disables the model (no
	// staleness is reported).
	GossipHeartbeat float64
	// Seed makes the run reproducible.
	Seed int64

	// WarmupCalls top-level calls are simulated but not measured, to
	// delete the initial transient.
	WarmupCalls int
	// BatchSize is the batch-means batch size (in calls).
	BatchSize int
	// MinBatches is the minimum number of complete batches before the
	// CI stopping rule may fire.
	MinBatches int
	// CIRel is the paper's stopping rule: stop when the relative
	// confidence-interval half-width at p = 0.99 drops to this value
	// (the paper uses 0.01). Zero disables the rule; the run then
	// always lasts MaxCalls.
	CIRel float64
	// MaxCalls caps the measured calls regardless of convergence.
	MaxCalls int
}

// Defaults used when the corresponding Config field is zero.
const (
	DefaultWarmupCalls = 2000
	DefaultBatchSize   = 500
	DefaultMinBatches  = 20
	DefaultMaxCalls    = 200000
)

// withDefaults returns a copy of c with zero stopping-rule fields
// replaced by the defaults.
func (c Config) withDefaults() Config {
	if c.WarmupCalls == 0 {
		c.WarmupCalls = DefaultWarmupCalls
	}
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.MinBatches == 0 {
		c.MinBatches = DefaultMinBatches
	}
	if c.MaxCalls == 0 {
		c.MaxCalls = DefaultMaxCalls
	}
	if c.Attach == 0 {
		c.Attach = core.AttachUnrestricted
	}
	return c
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return errors.New("sim: Nodes must be >= 1")
	case c.Clients < 1:
		return errors.New("sim: Clients must be >= 1")
	case c.Servers1 < 1:
		return errors.New("sim: Servers1 must be >= 1")
	case c.Servers2 < 0:
		return errors.New("sim: Servers2 must be >= 0")
	case c.Servers2 == 1:
		return errors.New("sim: Servers2 must be 0 or >= 2 (working sets of two)")
	case c.MigrationTime < 0:
		return errors.New("sim: MigrationTime must be >= 0")
	case c.MeanCalls <= 0:
		return errors.New("sim: MeanCalls must be > 0")
	case c.MeanInterCall < 0 || c.MeanInterBlock < 0:
		return errors.New("sim: think times must be >= 0")
	case !c.Policy.Valid():
		return fmt.Errorf("sim: invalid policy %d", c.Policy)
	case c.Attach != 0 && !c.Attach.Valid():
		return fmt.Errorf("sim: invalid attach mode %d", c.Attach)
	case c.CIRel < 0:
		return errors.New("sim: CIRel must be >= 0")
	case c.HotClientShare < 0 || c.HotClientShare > 1:
		return errors.New("sim: HotClientShare must be in [0, 1]")
	case c.SmallNodeCapacity < 0:
		return errors.New("sim: SmallNodeCapacity must be >= 0")
	case c.GossipHeartbeat < 0:
		return errors.New("sim: GossipHeartbeat must be >= 0")
	case c.ShedRatio < 0 || c.ShedRatio >= 1:
		return errors.New("sim: ShedRatio must be in [0, 1)")
	case c.ShedRatio > 0 && c.SmallNodeCapacity <= 0:
		return errors.New("sim: ShedRatio needs SmallNodeCapacity > 0 (the ratio is relative to the cap)")
	case c.SmallNodeSeed < 0:
		return errors.New("sim: SmallNodeSeed must be >= 0")
	case c.SmallNodeSeed > c.Servers1+c.Servers2:
		return errors.New("sim: SmallNodeSeed exceeds the server count")
	case c.SmallNodeCapacity > 0 && c.SmallNodeSeed > c.SmallNodeCapacity:
		return errors.New("sim: SmallNodeSeed exceeds SmallNodeCapacity")
	case c.DrainAt < 0:
		return errors.New("sim: DrainAt must be >= 0")
	case c.DrainAt > 0 && c.Nodes < 2:
		return errors.New("sim: DrainAt needs Nodes >= 2 (somewhere to drain to)")
	case c.SickAt < 0:
		return errors.New("sim: SickAt must be >= 0")
	case c.SickFor < 0:
		return errors.New("sim: SickFor must be >= 0")
	case c.SickFor > 0 && c.Nodes < 2:
		return errors.New("sim: SickFor needs Nodes >= 2 (somewhere else to place)")
	default:
		return nil
	}
}

// Result is the outcome of one simulation cell.
type Result struct {
	// CommTimePerCall is the paper's headline metric (Figs. 8, 12,
	// 14, 16): mean invocation duration plus amortised migration
	// cost.
	CommTimePerCall float64
	// CallDuration is the pure invocation-duration component
	// (Fig. 10).
	CallDuration float64
	// MigrationPerCall is the amortised migration component
	// (Fig. 11).
	MigrationPerCall float64

	// Calls is the number of measured (post-warm-up) top-level calls.
	Calls int64
	// Blocks is the number of measured move-blocks.
	Blocks int64
	// Migrations counts transfer batches; ObjectsMoved counts the
	// objects they carried (> Migrations when attachments drag
	// working sets along).
	Migrations   int64
	ObjectsMoved int64
	// MovesGranted / MovesStayed / MovesDenied classify move-request
	// outcomes.
	MovesGranted int64
	MovesStayed  int64
	MovesDenied  int64
	// PlacementVetoes counts transfers refused by the small node's
	// capacity (a subset of MovesDenied for move-triggered transfers);
	// PeakSmallNode is the highest resident server count node 0
	// reached. With the veto active it never exceeds
	// SmallNodeCapacity.
	PlacementVetoes int64
	PeakSmallNode   int64
	// Sheds counts the proactive shed transfers node 0 issued, and
	// ShedObjectsMoved the objects they carried (both subsets of
	// Migrations / ObjectsMoved). ShedOscillations counts sheds of a
	// working set that had already been shed once before — the
	// ping-pong the receiver-side threshold guard exists to prevent.
	// ShedDrainTime is the simulated time at which node 0 first
	// dropped to the shed threshold after starting above it (0 when it
	// never started above). FinalSmallNode is node 0's resident server
	// count when the run ended.
	Sheds            int64
	ShedObjectsMoved int64
	ShedOscillations int64
	ShedDrainTime    float64
	FinalSmallNode   int64
	// DrainMoves counts the transfer batches the drain job (DrainAt)
	// issued against node 0, and DrainObjectsMoved the objects they
	// carried (both subsets of Migrations / ObjectsMoved).
	// DrainDoneTime is the simulated time at which node 0 first reached
	// zero resident servers after the drain started (0 when the drain
	// never ran or never finished). DrainVetoes counts the inbound
	// transfers refused because node 0 was draining.
	DrainMoves        int64
	DrainObjectsMoved int64
	DrainDoneTime     float64
	DrainVetoes       int64
	// HealthVetoes counts the inbound transfers refused because node 0
	// was inside its sick window (SickAt/SickFor).
	HealthVetoes int64
	// GossipAgeMeanAtVeto / GossipAgeMaxAtVeto report, over the fired
	// vetoes, the mean and worst age (in simulated time units) of the
	// small node's last load broadcast at decision time — the staleness
	// a gossip-only placement decision would have acted on. Both are 0
	// when GossipHeartbeat is 0 or no veto fired; with the model active
	// the max is bounded by GossipHeartbeat.
	GossipAgeMeanAtVeto float64
	GossipAgeMaxAtVeto  float64

	// RelHalfWidth is the achieved relative CI half-width of
	// CommTimePerCall at p = 0.99.
	RelHalfWidth float64
	// Converged reports whether the CI stopping rule fired (false
	// when the run hit MaxCalls first or the rule was disabled).
	Converged bool
	// SimTime is the simulated time at the end of measurement.
	SimTime float64
}

// Run simulates one cell to completion and returns its result. Cells
// are independent; callers may run many cells concurrently, each Run
// uses only its own state.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	w := newWorld(cfg)
	return w.run(), nil
}

// z99 re-exports the confidence multiplier used by the stopping rule so
// result consumers can reconstruct absolute intervals.
const z99 = stats.Z99
