package sim

import (
	"fmt"

	"objmig/internal/core"
	"objmig/internal/des"
	"objmig/internal/stats"
	"objmig/internal/xrand"
)

// object is a mobile server object in the simulated world.
type object struct {
	id        core.OID
	node      int // current node, or -1 while in transit
	inTransit bool
	transit   int // transit target while inTransit
	st        core.ObjState
	cond      *des.Cond // broadcast whenever the object becomes resident
	lastUsed  float64   // sim time of the last invocation (shed coldness)
	shedded   bool      // was shed from node 0 before (oscillation marker)
	// First-layer servers only:
	ws       []int           // indices into world.s2 (the working set)
	alliance core.AllianceID // the server's cooperation context
}

// world is the state of one simulation cell.
type world struct {
	cfg    Config
	k      *des.Kernel
	policy core.MovePolicy
	attach *core.AttachGraph

	nodeNames []core.NodeID
	s1        []*object
	s2        []*object
	byOID     map[core.OID]*object
	// resident counts the server objects associated with each node
	// (transit targets reserve their slot at departure, so concurrent
	// transfers cannot overshoot a capacity). Feeds the small-node
	// overload veto and the PeakSmallNode gauge.
	resident []int
	// gossipAt[i] is the sim time node i last broadcast its load
	// sample (see Config.GossipHeartbeat); vetoAge* accumulate the
	// broadcast age observed at each fired veto.
	gossipAt   []float64
	vetoAgeSum float64
	vetoAgeMax float64
	vetoAgeN   int64
	// shedStartAbove records that node 0 began the run above the shed
	// threshold, arming the ShedDrainTime measurement.
	shedStartAbove bool
	// draining is set once the DrainAt drain job starts: node 0 refuses
	// every inbound transfer from then on (see vetoTransfer).
	draining bool

	comm    *stats.Estimator
	callDur *stats.Estimator
	migPer  *stats.Estimator

	warmupLeft int
	done       bool
	blockSeq   uint64

	res Result
}

func newWorld(cfg Config) *world {
	w := &world{
		cfg:        cfg,
		k:          des.NewKernel(),
		policy:     core.PolicyFor(cfg.Policy),
		attach:     core.NewAttachGraph(cfg.Attach),
		comm:       stats.NewEstimator(cfg.BatchSize),
		callDur:    stats.NewEstimator(cfg.BatchSize),
		migPer:     stats.NewEstimator(cfg.BatchSize),
		warmupLeft: cfg.WarmupCalls,
		byOID:      make(map[core.OID]*object),
	}
	w.nodeNames = make([]core.NodeID, cfg.Nodes)
	for i := range w.nodeNames {
		w.nodeNames[i] = core.NodeID(fmt.Sprintf("n%03d", i))
	}
	master := xrand.New(cfg.Seed)
	// Servers start round-robin from node D-1 downward while clients
	// are pinned round-robin from node 0 upward. For the paper's
	// symmetric configurations (D = C = S1, Figs. 8/14) this gives
	// every client-server pair exactly the 1/C local-callee chance the
	// paper states (the 4/3 sedentary mean); for the hot-spot
	// configurations (D >> C, Figs. 12/16) it keeps servers off the
	// client nodes, making the sedentary baseline flat.
	placed := 0
	mkObj := func(kind string, i int) *object {
		var node int
		switch {
		case placed < cfg.SmallNodeSeed:
			// Overload seeding: the first SmallNodeSeed servers start
			// on node 0 — the pile the shedder exists to drain.
			node = 0
		case cfg.SmallNodeSeed > 0 && cfg.Nodes > 1:
			node = 1 + (placed-cfg.SmallNodeSeed)%(cfg.Nodes-1)
		default:
			node = (cfg.Nodes - 1 - placed) % cfg.Nodes
			if node < 0 {
				node += cfg.Nodes
			}
		}
		placed++
		o := &object{
			id:   core.OID{Origin: core.NodeID(kind), Seq: uint64(i)},
			node: node,
			cond: w.k.NewCond(),
		}
		w.byOID[o.id] = o
		return o
	}
	w.s1 = make([]*object, cfg.Servers1)
	for i := range w.s1 {
		w.s1[i] = mkObj("s1", i)
		w.s1[i].alliance = core.AllianceID(i + 1)
	}
	w.s2 = make([]*object, cfg.Servers2)
	for i := range w.s2 {
		w.s2[i] = mkObj("s2", i)
	}
	// Working sets with wrap-around overlap; each set forms an
	// attachment clique labelled with the first-layer server's
	// alliance ("all server objects in one working set are attached
	// together").
	if cfg.Servers2 > 0 {
		for i, s := range w.s1 {
			a := i % cfg.Servers2
			b := (i + 1) % cfg.Servers2
			s.ws = []int{a, b}
			al := s.alliance
			w.attach.Attach(s.id, w.s2[a].id, al)
			w.attach.Attach(s.id, w.s2[b].id, al)
			w.attach.Attach(w.s2[a].id, w.s2[b].id, al)
		}
	}
	w.resident = make([]int, cfg.Nodes)
	for _, o := range w.s1 {
		w.resident[o.node]++
	}
	for _, o := range w.s2 {
		w.resident[o.node]++
	}
	w.res.PeakSmallNode = int64(w.resident[0])
	// The first HotClientShare of the clients is pinned to node 0
	// (the skewed-traffic knob); the rest spread round-robin over the
	// remaining nodes, keeping the paper's symmetric pinning when the
	// share is 0.
	hot := int(cfg.HotClientShare * float64(cfg.Clients))
	for i := 0; i < cfg.Clients; i++ {
		node := i % cfg.Nodes
		if i < hot {
			node = 0
		} else if hot > 0 && cfg.Nodes > 1 {
			node = 1 + (i-hot)%(cfg.Nodes-1)
		}
		rng := master.Fork(fmt.Sprintf("client-%d", i))
		name := fmt.Sprintf("client-%d", i)
		w.k.Spawn(name, func(p *des.Proc) { w.clientLoop(p, rng, node) })
	}
	// Load-gossip heartbeats: every node re-broadcasts its load sample
	// once per GossipHeartbeat, staggered so broadcasts do not align
	// (node i offsets its cycle by i/D of a period). Everybody knows
	// the initial placement, so the stamps start at time 0.
	// Proactive shedding: node 0 drains itself below
	// ShedRatio×SmallNodeCapacity (see shedLoop).
	if cfg.ShedRatio > 0 && cfg.SmallNodeCapacity > 0 {
		w.shedStartAbove = w.resident[0] > w.shedThreshold()
		w.k.Spawn("shedder", func(p *des.Proc) { w.shedLoop(p) })
	}
	// Drain job: at DrainAt, empty node 0 entirely (see drainLoop).
	if cfg.DrainAt > 0 {
		w.k.Spawn("drainer", func(p *des.Proc) { w.drainLoop(p) })
	}
	if hb := cfg.GossipHeartbeat; hb > 0 {
		w.gossipAt = make([]float64, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			node := i
			name := fmt.Sprintf("gossip-%d", i)
			w.k.Spawn(name, func(p *des.Proc) {
				p.Sleep(hb * float64(node) / float64(cfg.Nodes))
				for !w.done {
					p.Sleep(hb)
					w.gossipAt[node] = p.Now()
				}
			})
		}
	}
	return w
}

func (w *world) run() Result {
	w.k.Run(-1)
	w.k.Shutdown()
	w.res.CommTimePerCall = w.comm.Mean()
	w.res.CallDuration = w.callDur.Mean()
	w.res.MigrationPerCall = w.migPer.Mean()
	w.res.Calls = w.comm.N()
	w.res.RelHalfWidth = w.comm.RelHalfWidth(z99)
	w.res.SimTime = w.k.Now()
	w.res.FinalSmallNode = int64(w.resident[0])
	if w.vetoAgeN > 0 {
		w.res.GossipAgeMeanAtVeto = w.vetoAgeSum / float64(w.vetoAgeN)
		w.res.GossipAgeMaxAtVeto = w.vetoAgeMax
	}
	return w.res
}

// nodeName maps a node index to its policy-level identifier.
func (w *world) nodeName(i int) core.NodeID { return w.nodeNames[i] }

// effNode is the node an object is logically associated with: its
// residence, or its transit target while migrating.
func (w *world) effNode(o *object) int {
	if o.inTransit {
		return o.transit
	}
	return o.node
}

// waitResident blocks until o is not in transit.
func (w *world) waitResident(p *des.Proc, o *object) {
	for o.inTransit {
		p.Wait(o.cond)
	}
}

// waitAllResident blocks until every member is simultaneously resident.
func (w *world) waitAllResident(p *des.Proc, members []*object) {
	for {
		all := true
		for _, m := range members {
			if m.inTransit {
				p.Wait(m.cond)
				all = false
				break
			}
		}
		if all {
			return
		}
	}
}

// transfer moves objs to target as one batch of duration MigrationTime,
// blocking the calling process for the transit.
func (w *world) transfer(p *des.Proc, objs []*object, target int) {
	w.beginTransit(objs, target)
	p.Sleep(w.cfg.MigrationTime)
	w.finishTransit(objs, target)
}

func (w *world) beginTransit(objs []*object, target int) {
	for _, o := range objs {
		w.resident[o.node]--
		w.resident[target]++
		o.inTransit = true
		o.transit = target
		o.node = -1
	}
	if r := int64(w.resident[0]); r > w.res.PeakSmallNode {
		w.res.PeakSmallNode = r
	}
	if w.shedStartAbove && w.res.ShedDrainTime == 0 && w.resident[0] <= w.shedThreshold() {
		w.res.ShedDrainTime = w.k.Now()
	}
	w.res.Migrations++
	w.res.ObjectsMoved += int64(len(objs))
}

// shedThreshold is the resident count above which node 0 sheds (and
// at-or-below which shed receivers must stay).
func (w *world) shedThreshold() int {
	return int(w.cfg.ShedRatio * float64(w.cfg.SmallNodeCapacity))
}

// shedLoop is node 0's proactive shedder: once per time unit it
// compares the resident count against the shed threshold and, while
// above it, migrates the coldest free working set to the emptiest
// eligible peer. Each shed blocks the shedder for the transfer — the
// same one-migration-at-a-time pacing the live runtime's pass budget
// imposes.
func (w *world) shedLoop(p *des.Proc) {
	for !w.done {
		p.Sleep(1)
		for !w.done && w.resident[0] > w.shedThreshold() {
			if !w.shedOne(p) {
				break // nothing free to shed, or nowhere to put it
			}
		}
	}
}

// shedOne performs one shed: the coldest first-layer root resident on
// node 0 whose working set is entirely free moves, closure and all, to
// the emptiest peer that the transfer would not push past the shed
// threshold (the anti-oscillation guard: a receiver never ends up
// having to shed what it just received). Reports whether a shed
// happened.
func (w *world) shedOne(p *des.Proc) bool {
	var root *object
	for _, o := range w.s1 {
		if o.inTransit || o.node != 0 || o.st.Lock.Held {
			continue
		}
		free := true
		for _, m := range w.closureObjects(o, o.alliance) {
			if m.inTransit || m.st.Lock.Held {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		if root == nil || o.lastUsed < root.lastUsed {
			root = o
		}
	}
	if root == nil {
		return false
	}
	members := w.closureObjects(root, root.alliance)
	threshold := w.shedThreshold()
	best := -1
	for j := 1; j < w.cfg.Nodes; j++ {
		incoming := 0
		for _, m := range members {
			if m.node != j {
				incoming++
			}
		}
		if w.resident[j]+incoming > threshold {
			continue
		}
		if best < 0 || w.resident[j] < w.resident[best] {
			best = j
		}
	}
	if best < 0 {
		return false
	}
	moving := members[:0:0]
	for _, m := range members {
		if m.node != best {
			moving = append(moving, m)
		}
	}
	if len(moving) == 0 {
		return false
	}
	if root.shedded {
		w.res.ShedOscillations++
	}
	root.shedded = true
	w.res.Sheds++
	w.res.ShedObjectsMoved += int64(len(moving))
	w.transfer(p, moving, best)
	return true
}

// drainLoop is the drain job of Config.DrainAt: after the trigger
// time it marks node 0 draining (vetoTransfer refuses all inbound
// transfers from then on) and migrates every server object off it,
// whole working sets coldest-first like the shedder, retrying once
// per time unit while residents are locked inside blocks or in
// transit. When the node first reaches zero residents the time is
// recorded as DrainDoneTime and the drainer retires; the draining
// refusal stays in force, so the node ends the run empty.
func (w *world) drainLoop(p *des.Proc) {
	p.Sleep(w.cfg.DrainAt)
	if w.done {
		return
	}
	w.draining = true
	for !w.done && w.resident[0] > 0 {
		if !w.drainOne(p) {
			p.Sleep(1) // blocked on locks or transits; retry
		}
	}
	if !w.done {
		w.res.DrainDoneTime = p.Now()
	}
}

// drainOne migrates one batch off node 0: the coldest free first-layer
// working set rooted there (the live drain planner's coldest-first
// ranking), or failing that a free second-layer stray, to the emptiest
// peer. Reports whether a transfer happened.
func (w *world) drainOne(p *des.Proc) bool {
	var root *object
	for _, o := range w.s1 {
		if o.inTransit || o.node != 0 || o.st.Lock.Held {
			continue
		}
		free := true
		for _, m := range w.closureObjects(o, o.alliance) {
			if m.inTransit || m.st.Lock.Held {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		if root == nil || o.lastUsed < root.lastUsed {
			root = o
		}
	}
	var members []*object
	if root != nil {
		members = w.closureObjects(root, root.alliance)
	} else {
		// No free working set is rooted here; a second-layer object
		// whose root lives elsewhere can leave alone. Roots with busy
		// sets wait for a later pass.
		for _, o := range w.s2 {
			if !o.inTransit && o.node == 0 && !o.st.Lock.Held {
				members = []*object{o}
				break
			}
		}
		if members == nil {
			return false
		}
	}
	best := -1
	for j := 1; j < w.cfg.Nodes; j++ {
		if best < 0 || w.resident[j] < w.resident[best] {
			best = j
		}
	}
	moving := members[:0:0]
	for _, m := range members {
		if m.node != best {
			moving = append(moving, m)
		}
	}
	if len(moving) == 0 {
		return false
	}
	w.res.DrainMoves++
	w.res.DrainObjectsMoved += int64(len(moving))
	w.transfer(p, moving, best)
	return true
}

// sickNow reports whether node 0 is inside its configured sick window
// — the interval during which its modelled health engine reads
// critical and refuses all inbound admission.
func (w *world) sickNow() bool {
	if w.cfg.SickFor <= 0 {
		return false
	}
	now := w.k.Now()
	return now >= w.cfg.SickAt && now < w.cfg.SickAt+w.cfg.SickFor
}

// vetoTransfer is the simulator's admission veto: it reports whether
// node 0 refuses the given members — because the node is draining
// (every inbound transfer is refused outright, the twin of the live
// runtime's draining-admission refusal), because it is inside its sick
// window (the twin of the health engine's critical-admission veto), or
// because the transfer would push the capped small node past its
// capacity, counting only members that would actually arrive.
func (w *world) vetoTransfer(members []*object, target int) bool {
	if target != 0 {
		return false
	}
	incoming := 0
	for _, m := range members {
		if m.node != target {
			incoming++
		}
	}
	if incoming == 0 {
		return false
	}
	if w.draining {
		w.res.DrainVetoes++
		return true
	}
	if w.sickNow() {
		w.res.HealthVetoes++
		return true
	}
	if w.cfg.SmallNodeCapacity <= 0 {
		return false
	}
	if w.resident[0]+incoming > w.cfg.SmallNodeCapacity {
		w.res.PlacementVetoes++
		// Record how stale the small node's advertised load was at
		// this decision — the gap a gossip-scored placement would have
		// acted across (the authoritative veto is what closes it).
		if w.gossipAt != nil {
			age := w.k.Now() - w.gossipAt[target]
			w.vetoAgeSum += age
			w.vetoAgeN++
			if age > w.vetoAgeMax {
				w.vetoAgeMax = age
			}
		}
		return true
	}
	return false
}

func (w *world) finishTransit(objs []*object, target int) {
	for _, o := range objs {
		o.inTransit = false
		o.node = target
		o.cond.Broadcast()
	}
}

// closureObjects resolves the attachment closure of root for a move
// issued in the given alliance.
func (w *world) closureObjects(root *object, al core.AllianceID) []*object {
	ids := w.attach.Closure(root.id, al)
	out := make([]*object, 0, len(ids))
	for _, id := range ids {
		out = append(out, w.byOID[id])
	}
	return out
}

// clientLoop is one client's life: sleep t_m, run a move-block, repeat
// until the cell is done.
func (w *world) clientLoop(p *des.Proc, rng *xrand.Stream, node int) {
	for !w.done {
		p.Sleep(rng.Exp(w.cfg.MeanInterBlock))
		if w.done {
			return
		}
		w.moveBlock(p, rng, node)
	}
}

// moveBlock runs one move-block: move-request, N calls, end-request,
// then records the block's samples.
func (w *world) moveBlock(p *des.Proc, rng *xrand.Stream, node int) {
	w.blockSeq++
	block := core.BlockID(w.blockSeq)
	root := w.s1[rng.Intn(len(w.s1))]
	alliance := root.alliance

	migCost := 0.0
	// The move-request is one message to the object's current host
	// (free when the object is local). The sedentary baseline models
	// a system without migration support: no move-requests exist.
	if w.cfg.Policy != core.PolicySedentary {
		if w.effNode(root) != node {
			d := rng.Exp(1)
			p.Sleep(d)
			migCost += d
		}
	}
	moving := w.decideMove(p, root, node, block, alliance)
	if len(moving) > 0 {
		w.transfer(p, moving, node)
		migCost += w.cfg.MigrationTime
	}

	n := rng.ExpCount(w.cfg.MeanCalls)
	durs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		p.Sleep(rng.Exp(w.cfg.MeanInterCall))
		durs = append(durs, w.invoke(p, rng, node, root))
	}

	// The end-request applies to the whole working set: under
	// placement it releases every member lock this block holds; under
	// the dynamic policies it balances the root's counters (the
	// closure is a singleton there). The root's decision carries the
	// reinstantiation verdict.
	end := core.EndRequest{From: w.nodeName(node), Block: block}
	var e core.EndDecision
	for _, m := range w.closureObjects(root, alliance) {
		d := w.policy.OnEnd(&m.st, w.nodeName(w.effNode(m)), end)
		if m == root {
			e = d
		}
	}
	if e.Migrate {
		// Reinstantiation: the object leaves on the end-request. The
		// transfer proceeds asynchronously (no client waits for it),
		// but its cost is attributed to the block that triggered it.
		// If any group member is already in transit the migration is
		// skipped: the object is being handled by somebody else.
		target := w.nodeIndex(e.MigrateTo)
		group := w.closureObjects(root, alliance)
		free := true
		for _, m := range group {
			if m.inTransit {
				free = false
				break
			}
		}
		if free && !w.vetoTransfer(group, target) {
			w.beginTransit(group, target)
			w.k.Spawn("reinstantiate", func(tp *des.Proc) {
				tp.Sleep(w.cfg.MigrationTime)
				w.finishTransit(group, target)
			})
			migCost += w.cfg.MigrationTime
		}
	}

	w.record(durs, migCost)
}

// decideMove interprets the move-request at the object's current host
// and returns the batch to transfer (empty if no transfer happens).
func (w *world) decideMove(p *des.Proc, root *object, node int, block core.BlockID, alliance core.AllianceID) []*object {
	req := core.MoveRequest{From: w.nodeName(node), Block: block}
	switch w.cfg.Policy {
	case core.PolicySedentary:
		dec := w.policy.OnMove(&root.st, w.nodeName(w.effNode(root)), req)
		if dec.Action == core.ActionDeny {
			w.res.MovesDenied++
		} else {
			w.res.MovesStayed++
		}
		return nil

	case core.PolicyPlacement:
		// A held lock denies immediately, even while the object is in
		// transit (paper Fig. 4: the conflicting move returns the
		// locked indication without waiting).
		if root.st.Lock.Held && (root.st.Lock.Owner != req.From || root.st.Lock.Block != req.Block) {
			w.res.MovesDenied++
			return nil
		}
		// An unlocked object being dragged along inside another
		// working set is "busy": the decision waits for residency.
		w.waitResident(p, root)
		dec := w.policy.OnMove(&root.st, w.nodeName(root.node), req)
		if dec.Action == core.ActionDeny {
			w.res.MovesDenied++
			return nil
		}
		members := w.closureObjects(root, alliance)
		// All-or-nothing: the batch moves only if every member is
		// free (not in transit, not locked by another block).
		for _, m := range members {
			lockedByOther := m.st.Lock.Held &&
				(m.st.Lock.Owner != req.From || m.st.Lock.Block != req.Block)
			if m.inTransit || lockedByOther {
				w.policy.Abort(&root.st, req)
				w.res.MovesDenied++
				return nil
			}
		}
		// Overload veto: a working set that would not fit on the capped
		// small node is refused like any other denial — the block's
		// calls proceed remotely.
		if w.vetoTransfer(members, node) {
			w.policy.Abort(&root.st, req)
			w.res.MovesDenied++
			return nil
		}
		// The placed working set is locked as a whole: attached
		// objects are kept together for the duration of the block
		// (unless the group-lock ablation is active).
		if !w.cfg.DisableGroupLock {
			states := make([]*core.ObjState, len(members))
			for i, m := range members {
				states[i] = &m.st
			}
			core.PlaceGroup(states, req.From, req.Block)
		}
		return w.finishGrant(dec, members, node)

	default: // conventional and the two dynamic policies
		w.waitResident(p, root)
		dec := w.policy.OnMove(&root.st, w.nodeName(root.node), req)
		if dec.Action == core.ActionDeny {
			w.res.MovesDenied++
			return nil
		}
		members := w.closureObjects(root, alliance)
		// Conventional migration chases the working set until it can
		// take all of it — even out of other blocks' hands.
		w.waitAllResident(p, members)
		if w.vetoTransfer(members, node) {
			w.res.MovesDenied++
			return nil
		}
		return w.finishGrant(dec, members, node)
	}
}

// finishGrant books the grant and returns the members that actually
// need transferring (those not already at the target).
func (w *world) finishGrant(dec core.MoveDecision, members []*object, node int) []*object {
	if dec.Action == core.ActionStay {
		w.res.MovesStayed++
	} else {
		w.res.MovesGranted++
	}
	moving := members[:0:0]
	for _, m := range members {
		if m.node != node {
			moving = append(moving, m)
		}
	}
	return moving
}

// invoke performs one top-level call from a client to a first-layer
// server, including the nested second-layer call when working sets are
// configured, and returns its duration.
func (w *world) invoke(p *des.Proc, rng *xrand.Stream, clientNode int, obj *object) float64 {
	start := p.Now()
	w.waitResident(p, obj)
	obj.lastUsed = p.Now() // shed coldness: least recently invoked goes first
	objNode := obj.node
	remote := objNode != clientNode
	if remote {
		p.Sleep(rng.Exp(1)) // request message
	}
	if len(obj.ws) > 0 {
		s2 := w.s2[obj.ws[rng.Intn(len(obj.ws))]]
		w.waitResident(p, s2)
		if s2.node != objNode {
			p.Sleep(rng.Exp(1)) // nested request
			p.Sleep(rng.Exp(1)) // nested reply
		}
	}
	if remote {
		p.Sleep(rng.Exp(1)) // reply message
	}
	return p.Now() - start
}

// record folds one block's samples into the estimators and checks the
// stopping rule.
func (w *world) record(durs []float64, migCost float64) {
	if len(durs) == 0 {
		return
	}
	per := migCost / float64(len(durs))
	measured := false
	for _, d := range durs {
		if w.warmupLeft > 0 {
			w.warmupLeft--
			continue
		}
		w.comm.Add(d + per)
		w.callDur.Add(d)
		w.migPer.Add(per)
		measured = true
	}
	if measured {
		w.res.Blocks++
	}
	if w.done {
		return
	}
	if w.comm.N() >= int64(w.cfg.MaxCalls) {
		w.done = true
		return
	}
	if w.cfg.CIRel > 0 &&
		w.comm.Converged(z99, w.cfg.CIRel, int64(w.cfg.MinBatches)) {
		w.res.Converged = true
		w.done = true
	}
}

// nodeIndex inverts nodeName. Policies only ever name nodes that
// issued requests, so the lookup cannot fail for well-formed runs.
func (w *world) nodeIndex(n core.NodeID) int {
	for i, name := range w.nodeNames {
		if name == n {
			return i
		}
	}
	panic(fmt.Sprintf("sim: unknown node %q", n))
}
