package sim

import (
	"testing"

	"objmig/internal/core"
)

// stoppedWorld builds a world for white-box inspection and guarantees
// its kernel is shut down (the spawned clients never run).
func stoppedWorld(t *testing.T, cfg Config) *world {
	t.Helper()
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	w := newWorld(cfg)
	t.Cleanup(w.k.Shutdown)
	return w
}

func TestServerPlacementDeterministic(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Nodes: 5, Clients: 2, Servers1: 2, Servers2: 2,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1, MeanInterBlock: 10,
		Policy: core.PolicySedentary, Seed: 1,
	}
	w := stoppedWorld(t, cfg)
	// Servers go round-robin from node D-1 downward: S1 at 4,3 and
	// S2 at 2,1 — independent of the seed.
	if w.s1[0].node != 4 || w.s1[1].node != 3 {
		t.Fatalf("s1 nodes = %d, %d", w.s1[0].node, w.s1[1].node)
	}
	if w.s2[0].node != 2 || w.s2[1].node != 1 {
		t.Fatalf("s2 nodes = %d, %d", w.s2[0].node, w.s2[1].node)
	}
	w2 := stoppedWorld(t, cfg)
	for i := range w.s1 {
		if w.s1[i].node != w2.s1[i].node {
			t.Fatal("placement depends on the seed")
		}
	}
}

func TestTransferBookkeeping(t *testing.T) {
	t.Parallel()
	w := stoppedWorld(t, Config{
		Nodes: 3, Clients: 1, Servers1: 2,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1, MeanInterBlock: 10,
		Policy: core.PolicyPlacement, Seed: 1,
	})
	o := w.s1[0]
	w.beginTransit([]*object{o}, 1)
	if !o.inTransit || o.node != -1 || o.transit != 1 {
		t.Fatalf("transit state: %+v", o)
	}
	if w.effNode(o) != 1 {
		t.Fatalf("effNode during transit = %d, want target 1", w.effNode(o))
	}
	w.finishTransit([]*object{o}, 1)
	if o.inTransit || o.node != 1 {
		t.Fatalf("post-transit state: %+v", o)
	}
	if w.effNode(o) != 1 {
		t.Fatalf("effNode after transit = %d", w.effNode(o))
	}
	if w.res.Migrations != 1 || w.res.ObjectsMoved != 1 {
		t.Fatalf("accounting: %+v", w.res)
	}
}

func TestClosureObjectsRespectsAlliance(t *testing.T) {
	t.Parallel()
	base := Config{
		Nodes: 24, Clients: 1, Servers1: 6, Servers2: 6,
		MigrationTime: 6, MeanCalls: 6, MeanInterCall: 1, MeanInterBlock: 30,
		Policy: core.PolicyPlacement, Seed: 1,
	}
	base.Attach = core.AttachATransitive
	w := stoppedWorld(t, base)
	root := w.s1[0]
	got := w.closureObjects(root, root.alliance)
	if len(got) != 3 {
		t.Fatalf("A-transitive closure = %d members, want 3 (root + 2 working-set members)", len(got))
	}
	// Under unrestricted transitivity the ring overlap chains every
	// server into one component.
	base.Attach = core.AttachUnrestricted
	w = stoppedWorld(t, base)
	root = w.s1[0]
	got = w.closureObjects(root, root.alliance)
	if len(got) != 12 {
		t.Fatalf("unrestricted closure = %d members, want all 12", len(got))
	}
}

func TestWorkingSetsOverlap(t *testing.T) {
	t.Parallel()
	w := stoppedWorld(t, Config{
		Nodes: 24, Clients: 1, Servers1: 6, Servers2: 6,
		MigrationTime: 6, MeanCalls: 6, MeanInterCall: 1, MeanInterBlock: 30,
		Policy: core.PolicySedentary, Seed: 1,
	})
	// WS_i = {S2_i, S2_(i+1 mod 6)}: adjacent working sets share one
	// member (the paper's "partially overlapping" worst case).
	for i, s := range w.s1 {
		next := w.s1[(i+1)%len(w.s1)]
		shared := 0
		for _, a := range s.ws {
			for _, b := range next.ws {
				if a == b {
					shared++
				}
			}
		}
		if shared != 1 {
			t.Fatalf("working sets %d and %d share %d members, want 1", i, i+1, shared)
		}
	}
}

func TestNodeIndexPanicsOnUnknown(t *testing.T) {
	t.Parallel()
	w := stoppedWorld(t, Config{
		Nodes: 2, Clients: 1, Servers1: 1,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1, MeanInterBlock: 10,
		Policy: core.PolicySedentary, Seed: 1,
	})
	defer func() {
		if recover() == nil {
			t.Fatal("nodeIndex accepted an unknown node")
		}
	}()
	w.nodeIndex("not-a-node")
}

// TestGroupLockedDenyIsFast: a move against a group-locked member is
// denied without waiting for residency (paper Fig. 4: the conflicting
// move returns the indication immediately).
func TestGroupLockedDenyIsFast(t *testing.T) {
	t.Parallel()
	// End-to-end check through a short run: under heavy contention
	// with long migrations, denied moves must still let blocks
	// proceed (the run completing at all proves no deadlock; the deny
	// counters prove the fast path fires).
	r := mustRunT(t, Config{
		Nodes: 4, Clients: 8, Servers1: 2, Servers2: 2,
		MigrationTime: 12, MeanCalls: 4, MeanInterCall: 1, MeanInterBlock: 2,
		Policy: core.PolicyPlacement, Attach: core.AttachATransitive,
		Seed: 3, WarmupCalls: 200, BatchSize: 100, MaxCalls: 8000, CIRel: 0.05,
	})
	if r.MovesDenied == 0 {
		t.Fatalf("no denied moves under heavy contention: %+v", r)
	}
	if r.Calls < 8000 {
		t.Fatalf("run stalled at %d calls", r.Calls)
	}
}
