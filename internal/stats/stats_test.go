package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordMatchesNaive(t *testing.T) {
	t.Parallel()
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != int64(len(xs)) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Unbiased variance of the classic example set is 32/7.
	if !almostEqual(w.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	t.Parallel()
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("zero-value Welford must report zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatalf("single sample: mean=%v var=%v", w.Mean(), w.Var())
	}
}

func TestWelfordMergeEquivalence(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		m := 1 + r.Intn(100)
		var a, b, all Welford
		for i := 0; i < n; i++ {
			x := r.NormFloat64()*3 + 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < m; i++ {
			x := r.NormFloat64()*3 + 10
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Var(), all.Var(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	t.Parallel()
	var a, b Welford
	a.Add(1)
	a.Add(2)
	before := a
	a.Merge(b)
	if a != before {
		t.Fatal("merging an empty accumulator changed state")
	}
	b.Merge(a)
	if b.N() != 2 || !almostEqual(b.Mean(), 1.5, 1e-12) {
		t.Fatalf("merge into empty: N=%d mean=%v", b.N(), b.Mean())
	}
}

func TestEstimatorBatching(t *testing.T) {
	t.Parallel()
	e := NewEstimator(10)
	for i := 0; i < 95; i++ {
		e.Add(1)
	}
	if e.Batches() != 9 {
		t.Fatalf("Batches = %d, want 9", e.Batches())
	}
	if e.N() != 95 {
		t.Fatalf("N = %d, want 95", e.N())
	}
	if !almostEqual(e.Mean(), 1, 1e-12) {
		t.Fatalf("Mean = %v, want 1", e.Mean())
	}
}

func TestEstimatorConvergesOnConstantStream(t *testing.T) {
	t.Parallel()
	e := NewEstimator(5)
	for i := 0; i < 50; i++ {
		e.Add(3)
	}
	if !e.Converged(Z99, 0.01, 10) {
		t.Fatalf("constant stream did not converge: rhw=%v", e.RelHalfWidth(Z99))
	}
}

func TestEstimatorNotConvergedEarly(t *testing.T) {
	t.Parallel()
	e := NewEstimator(5)
	e.Add(3)
	if e.Converged(Z99, 0.01, 2) {
		t.Fatal("converged with <2 batches")
	}
	if !math.IsInf(e.RelHalfWidth(Z99), 1) {
		t.Fatal("RelHalfWidth must be +Inf with <2 batches")
	}
}

func TestEstimatorRelHalfWidthShrinks(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(11))
	e := NewEstimator(100)
	add := func(n int) {
		for i := 0; i < n; i++ {
			e.Add(r.ExpFloat64() * 2)
		}
	}
	add(2000)
	early := e.RelHalfWidth(Z99)
	add(200000)
	late := e.RelHalfWidth(Z99)
	if !(late < early) {
		t.Fatalf("half-width did not shrink: early=%v late=%v", early, late)
	}
	if !e.Converged(Z99, 0.05, 10) {
		t.Fatalf("estimator should be within 5%% after 202k samples, rhw=%v", late)
	}
}

func TestEstimatorReset(t *testing.T) {
	t.Parallel()
	e := NewEstimator(2)
	for i := 0; i < 10; i++ {
		e.Add(float64(i))
	}
	e.Reset()
	if e.N() != 0 || e.Batches() != 0 || e.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
	e.Add(7)
	if !almostEqual(e.Mean(), 7, 1e-12) {
		t.Fatalf("post-reset mean = %v", e.Mean())
	}
}

func TestEstimatorBatchSizeClamp(t *testing.T) {
	t.Parallel()
	e := NewEstimator(0)
	e.Add(1)
	if e.Batches() != 1 {
		t.Fatalf("batch size 0 must clamp to 1; batches=%d", e.Batches())
	}
}

func TestZ99Value(t *testing.T) {
	t.Parallel()
	// erf(z/sqrt(2)) must be 0.99 for the two-sided 99% quantile.
	if !almostEqual(math.Erf(Z99/math.Sqrt2), 0.99, 1e-12) {
		t.Fatalf("Z99 inconsistent: erf = %v", math.Erf(Z99/math.Sqrt2))
	}
}

func TestEWMA(t *testing.T) {
	t.Parallel()
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("unseeded EWMA must report 0")
	}
	if got := e.Observe(10); got != 10 {
		t.Fatalf("first observation must seed: %v", got)
	}
	if got := e.Observe(0); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("alpha 0.5 step: %v, want 5", got)
	}
	if got := e.Observe(5); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("steady input must hold: %v", got)
	}
	// A lull decays geometrically, never zeroing in one step.
	e2 := NewEWMA(0.3)
	e2.Observe(100)
	if got := e2.Observe(0); got <= 0 || got >= 100 {
		t.Fatalf("decay out of range: %v", got)
	}
	// Out-of-range alphas select the default.
	if d := NewEWMA(-1); d.alpha != DefaultEWMAAlpha {
		t.Fatalf("alpha clamp: %v", d.alpha)
	}
	if d := NewEWMA(2); d.alpha != DefaultEWMAAlpha {
		t.Fatalf("alpha clamp: %v", d.alpha)
	}
}
