package sim

import (
	"math"
	"reflect"
	"testing"

	"objmig/internal/core"
)

// quickCfg returns a fast-running configuration for tests.
func quickCfg(policy core.PolicyKind) Config {
	return Config{
		Nodes: 3, Clients: 3, Servers1: 3,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1, MeanInterBlock: 10,
		Policy: policy, Seed: 7,
		WarmupCalls: 300, BatchSize: 200, MaxCalls: 15000, CIRel: 0.02,
	}
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestValidate(t *testing.T) {
	t.Parallel()
	bad := []Config{
		{},
		{Nodes: 1},
		{Nodes: 1, Clients: 1},
		{Nodes: 1, Clients: 1, Servers1: 1, MeanCalls: 8, Policy: 99},
		{Nodes: 1, Clients: 1, Servers1: 1, MeanCalls: 0, Policy: core.PolicySedentary},
		{Nodes: 1, Clients: 1, Servers1: 1, Servers2: 1, MeanCalls: 8, Policy: core.PolicySedentary},
		{Nodes: 1, Clients: 1, Servers1: 1, MeanCalls: 8, MigrationTime: -1, Policy: core.PolicySedentary},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	ok := quickCfg(core.PolicySedentary)
	if err := ok.withDefaults().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestSedentaryAnalyticMean pins the simulator to the paper's analytic
// check: with D = C = S1 = 3 a sedentary system has a mean
// communication time per call of 4/3 (two messages, remote with
// probability 2/3).
func TestSedentaryAnalyticMean(t *testing.T) {
	t.Parallel()
	r := mustRun(t, quickCfg(core.PolicySedentary))
	want := 4.0 / 3.0
	if math.Abs(r.CommTimePerCall-want) > 0.03 {
		t.Fatalf("sedentary D3/C3 mean = %v, want %v +- 0.03", r.CommTimePerCall, want)
	}
	if r.Migrations != 0 || r.ObjectsMoved != 0 || r.MovesGranted != 0 {
		t.Fatalf("sedentary system migrated: %+v", r)
	}
	if r.MigrationPerCall != 0 {
		t.Fatalf("sedentary migration load = %v", r.MigrationPerCall)
	}
}

// TestSedentaryHotSpotMean checks the large-network baseline: with
// servers kept off the client nodes every call is remote, so the mean
// is 2 message durations.
func TestSedentaryHotSpotMean(t *testing.T) {
	t.Parallel()
	cfg := quickCfg(core.PolicySedentary)
	cfg.Nodes, cfg.Clients, cfg.MeanInterBlock = 27, 9, 30
	r := mustRun(t, cfg)
	if math.Abs(r.CommTimePerCall-2.0) > 0.04 {
		t.Fatalf("hot-spot sedentary mean = %v, want 2.0 +- 0.04", r.CommTimePerCall)
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	cfg := quickCfg(core.PolicyPlacement)
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 8
	c := mustRun(t, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

// TestMetricDecomposition: the headline metric is exactly the sum of
// its two components, per the paper's definition.
func TestMetricDecomposition(t *testing.T) {
	t.Parallel()
	for _, p := range []core.PolicyKind{core.PolicyConventional, core.PolicyPlacement} {
		r := mustRun(t, quickCfg(p))
		sum := r.CallDuration + r.MigrationPerCall
		if math.Abs(r.CommTimePerCall-sum) > 1e-9 {
			t.Fatalf("%v: comm %v != dur %v + mig %v", p, r.CommTimePerCall, r.CallDuration, r.MigrationPerCall)
		}
	}
}

// TestMigrationWinsAtLowConcurrency reproduces the right edge of
// Fig. 8: with rare move-blocks both migration policies clearly beat
// the sedentary baseline.
func TestMigrationWinsAtLowConcurrency(t *testing.T) {
	t.Parallel()
	base := quickCfg(core.PolicySedentary)
	base.MeanInterBlock = 100
	sed := mustRun(t, base)
	base.Policy = core.PolicyConventional
	conv := mustRun(t, base)
	base.Policy = core.PolicyPlacement
	plc := mustRun(t, base)
	if !(conv.CommTimePerCall < 0.8*sed.CommTimePerCall) {
		t.Fatalf("conventional %v not clearly below sedentary %v", conv.CommTimePerCall, sed.CommTimePerCall)
	}
	if !(plc.CommTimePerCall < 0.8*sed.CommTimePerCall) {
		t.Fatalf("placement %v not clearly below sedentary %v", plc.CommTimePerCall, sed.CommTimePerCall)
	}
}

// TestPlacementBeatsConventionalUnderContention reproduces the heart of
// the paper (Figs. 8 and 12): with many concurrent clients conventional
// migration thrashes while transient placement stays well below it.
func TestPlacementBeatsConventionalUnderContention(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Nodes: 27, Clients: 20, Servers1: 3,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1, MeanInterBlock: 30,
		Seed: 7, WarmupCalls: 500, BatchSize: 200, MaxCalls: 25000, CIRel: 0.02,
	}
	cfg.Policy = core.PolicyConventional
	conv := mustRun(t, cfg)
	cfg.Policy = core.PolicyPlacement
	plc := mustRun(t, cfg)
	cfg.Policy = core.PolicySedentary
	sed := mustRun(t, cfg)
	if !(plc.CommTimePerCall < 0.7*conv.CommTimePerCall) {
		t.Fatalf("placement %v vs conventional %v: no clear win", plc.CommTimePerCall, conv.CommTimePerCall)
	}
	// At 20 clients conventional migration is far beyond its
	// break-even (~6 clients in the paper) while placement is still
	// around its own (~20).
	if !(conv.CommTimePerCall > 1.5*sed.CommTimePerCall) {
		t.Fatalf("conventional %v not clearly above sedentary %v at C=20", conv.CommTimePerCall, sed.CommTimePerCall)
	}
	if !(plc.CommTimePerCall < 1.15*sed.CommTimePerCall) {
		t.Fatalf("placement %v far above sedentary %v at C=20", plc.CommTimePerCall, sed.CommTimePerCall)
	}
	if plc.MovesDenied == 0 {
		t.Fatal("placement under contention denied no moves")
	}
}

// TestDynamicPoliciesMarginal reproduces the conclusion of Section 4.3:
// the dynamic strategies stay within a small band around conservative
// placement.
func TestDynamicPoliciesMarginal(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Nodes: 3, Clients: 9, Servers1: 3,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1, MeanInterBlock: 30,
		Seed: 7, WarmupCalls: 500, BatchSize: 200, MaxCalls: 25000, CIRel: 0.02,
	}
	cfg.Policy = core.PolicyPlacement
	plc := mustRun(t, cfg)
	cfg.Policy = core.PolicyCompareNodes
	cmp := mustRun(t, cfg)
	cfg.Policy = core.PolicyCompareReinstantiate
	rei := mustRun(t, cfg)
	for name, r := range map[string]Result{"compare-nodes": cmp, "reinstantiate": rei} {
		ratio := r.CommTimePerCall / plc.CommTimePerCall
		if ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("%s/%v: ratio %v outside the marginal band", name, r.CommTimePerCall, ratio)
		}
	}
}

// TestFig16Ordering reproduces the qualitative ordering of Fig. 16 at
// high concurrency.
func TestFig16Ordering(t *testing.T) {
	t.Parallel()
	base := Config{
		Nodes: 24, Clients: 10, Servers1: 6, Servers2: 6,
		MigrationTime: 6, MeanCalls: 6, MeanInterCall: 1, MeanInterBlock: 30,
		Seed: 7, WarmupCalls: 500, BatchSize: 200, MaxCalls: 25000, CIRel: 0.02,
	}
	run := func(p core.PolicyKind, a core.AttachMode) Result {
		cfg := base
		cfg.Policy, cfg.Attach = p, a
		return mustRun(t, cfg)
	}
	sed := run(core.PolicySedentary, core.AttachUnrestricted)
	convU := run(core.PolicyConventional, core.AttachUnrestricted)
	convA := run(core.PolicyConventional, core.AttachATransitive)
	plcU := run(core.PolicyPlacement, core.AttachUnrestricted)
	plcA := run(core.PolicyPlacement, core.AttachATransitive)

	// Unrestricted conventional migration is devastating: clearly the
	// worst, far above the sedentary baseline.
	if !(convU.CommTimePerCall > 1.5*sed.CommTimePerCall) {
		t.Fatalf("conv+unrestricted %v not devastating vs sedentary %v", convU.CommTimePerCall, sed.CommTimePerCall)
	}
	if !(convU.CommTimePerCall > convA.CommTimePerCall) {
		t.Fatalf("A-transitivity did not help conventional migration: %v vs %v", convA.CommTimePerCall, convU.CommTimePerCall)
	}
	if !(convA.CommTimePerCall > plcU.CommTimePerCall) {
		t.Fatalf("placement+unrestricted %v not below migration+A-transitive %v", plcU.CommTimePerCall, convA.CommTimePerCall)
	}
	if !(plcA.CommTimePerCall < plcU.CommTimePerCall) {
		t.Fatalf("placement+A-transitive %v not best (placement+unrestricted %v)", plcA.CommTimePerCall, plcU.CommTimePerCall)
	}
	// Unrestricted attachment drags whole merged components around.
	if convU.ObjectsMoved <= convA.ObjectsMoved {
		t.Fatalf("unrestricted moved %d objects, a-transitive %d: expected more under unrestricted",
			convU.ObjectsMoved, convA.ObjectsMoved)
	}
}

// TestStoppingRules checks both termination paths.
func TestStoppingRules(t *testing.T) {
	t.Parallel()
	cfg := quickCfg(core.PolicySedentary)
	cfg.CIRel = 0.2 // very loose: the CI rule must fire early
	r := mustRun(t, cfg)
	if !r.Converged {
		t.Fatalf("loose CI did not converge: %+v", r)
	}
	if r.Calls >= int64(cfg.MaxCalls) {
		t.Fatalf("CI rule did not stop early: %d calls", r.Calls)
	}

	cfg = quickCfg(core.PolicySedentary)
	cfg.CIRel = 0 // disabled: run to MaxCalls
	cfg.MaxCalls = 5000
	r = mustRun(t, cfg)
	if r.Converged {
		t.Fatal("disabled CI rule reported convergence")
	}
	if r.Calls < 5000 {
		t.Fatalf("run stopped at %d calls, want >= 5000", r.Calls)
	}
}

// TestPlacementGroupLockKeepsWorkingSetTogether: under placement with
// working sets, a block's whole working set is protected, so the number
// of batch migrations can never exceed the number of granted moves plus
// stays.
func TestPlacementGroupLockKeepsWorkingSetTogether(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Nodes: 24, Clients: 8, Servers1: 6, Servers2: 6,
		MigrationTime: 6, MeanCalls: 6, MeanInterCall: 1, MeanInterBlock: 30,
		Policy: core.PolicyPlacement, Attach: core.AttachATransitive,
		Seed: 7, WarmupCalls: 300, BatchSize: 200, MaxCalls: 15000, CIRel: 0.02,
	}
	r := mustRun(t, cfg)
	if r.Migrations == 0 {
		t.Fatal("no migrations at all")
	}
	if r.Migrations > r.MovesGranted+r.MovesStayed {
		t.Fatalf("migrations %d exceed granted+stayed %d", r.Migrations, r.MovesGranted+r.MovesStayed)
	}
	// Working sets have three members, so batches move at most three
	// objects on average, and at least one.
	avg := float64(r.ObjectsMoved) / float64(r.Migrations)
	if avg < 1 || avg > 3 {
		t.Fatalf("average batch size %v outside [1,3]", avg)
	}
}

// TestConventionalMovesEveryBlock: conventional migration grants every
// single move-request (no deny path except fixing).
func TestConventionalMovesEveryBlock(t *testing.T) {
	t.Parallel()
	r := mustRun(t, quickCfg(core.PolicyConventional))
	if r.MovesDenied != 0 {
		t.Fatalf("conventional denied %d moves", r.MovesDenied)
	}
	if r.MovesGranted == 0 {
		t.Fatal("conventional granted no moves")
	}
}

func TestResultAccounting(t *testing.T) {
	t.Parallel()
	r := mustRun(t, quickCfg(core.PolicyPlacement))
	if r.Calls <= 0 || r.Blocks <= 0 {
		t.Fatalf("missing accounting: %+v", r)
	}
	if r.SimTime <= 0 {
		t.Fatalf("sim time %v", r.SimTime)
	}
	if r.ObjectsMoved < r.Migrations {
		t.Fatalf("objects moved %d < migrations %d", r.ObjectsMoved, r.Migrations)
	}
}
