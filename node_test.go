package objmig

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// counterState is the test object: a gob-encodable struct, possibly
// holding Refs to other objects.
type counterState struct {
	Value int
	Tag   string
	Peer  Ref
}

// newCounterType builds the test type. Each test builds its own to
// keep tests independent.
func newCounterType() *Type[counterState] {
	t := NewType[counterState]("counter")
	HandleFunc(t, "Add", func(c *Ctx, s *counterState, delta int) (int, error) {
		s.Value += delta
		return s.Value, nil
	})
	HandleFunc(t, "Get", func(c *Ctx, s *counterState, _ struct{}) (int, error) {
		return s.Value, nil
	})
	HandleFunc(t, "Where", func(c *Ctx, s *counterState, _ struct{}) (NodeID, error) {
		return c.Node().ID(), nil
	})
	HandleFunc(t, "SetTag", func(c *Ctx, s *counterState, tag string) (struct{}, error) {
		s.Tag = tag
		return struct{}{}, nil
	})
	HandleFunc(t, "GetTag", func(c *Ctx, s *counterState, _ struct{}) (string, error) {
		return s.Tag, nil
	})
	HandleFunc(t, "SetPeer", func(c *Ctx, s *counterState, peer Ref) (struct{}, error) {
		s.Peer = peer
		return struct{}{}, nil
	})
	HandleFunc(t, "AskPeer", func(c *Ctx, s *counterState, _ struct{}) (int, error) {
		// Nested invocation from inside a method.
		return NestedCall[struct{}, int](c, s.Peer, "Get", struct{}{})
	})
	HandleFunc(t, "Fail", func(c *Ctx, s *counterState, _ struct{}) (struct{}, error) {
		return struct{}{}, errors.New("deliberate failure")
	})
	HandleFunc(t, "Panic", func(c *Ctx, s *counterState, _ struct{}) (struct{}, error) {
		panic("deliberate panic")
	})
	HandleFunc(t, "Slow", func(c *Ctx, s *counterState, d time.Duration) (struct{}, error) {
		select {
		case <-time.After(d):
		case <-c.Context().Done():
		}
		return struct{}{}, nil
	})
	return t
}

// testCluster spins count nodes on a fresh local cluster with the
// counter type registered, and tears them down with the test (or
// benchmark — anything that can clean up after itself).
func testCluster(t testing.TB, count int, cfg Config) []*Node {
	t.Helper()
	cl := NewLocalCluster()
	nodes := make([]*Node, count)
	for i := range nodes {
		c := cfg
		c.ID = NodeID(fmt.Sprintf("n%d", i))
		c.Cluster = cl
		n, err := NewNode(c)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if err := n.RegisterType(newCounterType()); err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	})
	return nodes
}

func ctxShort(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func mustCreate(t *testing.T, n *Node) Ref {
	t.Helper()
	ref, err := n.Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func whereIs(t *testing.T, ctx context.Context, n *Node, ref Ref) NodeID {
	t.Helper()
	at, err := Call[struct{}, NodeID](ctx, n, ref, "Where", struct{}{})
	if err != nil {
		t.Fatalf("Where: %v", err)
	}
	return at
}

func TestLocalCreateAndInvoke(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 1, Config{})
	ref := mustCreate(t, nodes[0])

	v, err := Call[int, int](ctx, nodes[0], ref, "Add", 5)
	if err != nil || v != 5 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	v, err = Call[int, int](ctx, nodes[0], ref, "Add", 2)
	if err != nil || v != 7 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	if at := whereIs(t, ctx, nodes[0], ref); at != "n0" {
		t.Fatalf("Where = %v", at)
	}
}

func TestRemoteInvoke(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{})
	ref := mustCreate(t, nodes[0])

	// n2 has never heard of the object; it must resolve it through
	// the origin embedded in the Ref.
	v, err := Call[int, int](ctx, nodes[2], ref, "Add", 3)
	if err != nil || v != 3 {
		t.Fatalf("remote Add = %d, %v", v, err)
	}
	// And the state is shared: n1 sees n2's update.
	v, err = Call[struct{}, int](ctx, nodes[1], ref, "Get", struct{}{})
	if err != nil || v != 3 {
		t.Fatalf("remote Get = %d, %v", v, err)
	}
}

func TestInvokeErrors(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{})
	ref := mustCreate(t, nodes[0])

	if _, err := Call[struct{}, struct{}](ctx, nodes[1], ref, "Nope", struct{}{}); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
	if _, err := Call[struct{}, struct{}](ctx, nodes[1], ref, "Fail", struct{}{}); err == nil {
		t.Fatal("Fail returned no error")
	}
	if _, err := Call[struct{}, struct{}](ctx, nodes[1], ref, "Panic", struct{}{}); err == nil {
		t.Fatal("panicking method returned no error")
	}
	// The object survives a panicking method.
	if v, err := Call[int, int](ctx, nodes[1], ref, "Add", 1); err != nil || v != 1 {
		t.Fatalf("Add after panic = %d, %v", v, err)
	}
	// Zero and unknown references.
	if _, err := Call[int, int](ctx, nodes[0], Ref{}, "Add", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("zero ref: %v", err)
	}
	ghost := Ref{OID: ref.OID}
	ghost.OID.Seq = 9999
	if _, err := Call[int, int](ctx, nodes[1], ghost, "Add", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost ref: %v", err)
	}
}

func TestMigrateAndForwarding(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{})
	ref := mustCreate(t, nodes[0])
	if _, err := Call[int, int](ctx, nodes[0], ref, "Add", 10); err != nil {
		t.Fatal(err)
	}

	if err := nodes[0].Migrate(ctx, ref, "n1"); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if at := whereIs(t, ctx, nodes[0], ref); at != "n1" {
		t.Fatalf("after migrate, Where = %v", at)
	}
	// State travelled.
	if v, err := Call[struct{}, int](ctx, nodes[2], ref, "Get", struct{}{}); err != nil || v != 10 {
		t.Fatalf("Get after migrate = %d, %v", v, err)
	}
	// Chain: n1 -> n2 -> n0; stale hints must chase through
	// forwarding pointers and the home index.
	if err := nodes[2].Migrate(ctx, ref, "n2"); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Migrate(ctx, ref, "n0"); err != nil {
		t.Fatal(err)
	}
	if at := whereIs(t, ctx, nodes[1], ref); at != "n0" {
		t.Fatalf("after chain, Where = %v", at)
	}
	if v, err := Call[int, int](ctx, nodes[2], ref, "Add", 1); err != nil || v != 11 {
		t.Fatalf("Add after chain = %d, %v", v, err)
	}
	// Locate agrees from every node.
	for _, n := range nodes {
		at, err := n.Locate(ctx, ref)
		if err != nil || at != "n0" {
			t.Fatalf("%s.Locate = %v, %v", n.ID(), at, err)
		}
	}
}

func TestMigrateToObject(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{})
	a := mustCreate(t, nodes[0])
	b, err := nodes[1].Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[2].MigrateToObject(ctx, a, b); err != nil {
		t.Fatalf("collocate: %v", err)
	}
	if at := whereIs(t, ctx, nodes[0], a); at != "n1" {
		t.Fatalf("a at %v, want n1", at)
	}
}

func TestConcurrentInvokesDuringMigration(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{})
	ref := mustCreate(t, nodes[0])

	const callers = 6
	const callsEach = 30
	var wg sync.WaitGroup
	errs := make(chan error, callers*callsEach)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := nodes[i%len(nodes)]
			for j := 0; j < callsEach; j++ {
				if _, err := Call[int, int](ctx, n, ref, "Add", 1); err != nil {
					errs <- fmt.Errorf("caller %d call %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	// Interleave migrations with the calls.
	for k := 0; k < 6; k++ {
		target := nodes[(k+1)%len(nodes)].ID()
		if err := nodes[0].Migrate(ctx, ref, target); err != nil && !errors.Is(err, ErrDenied) {
			t.Fatalf("migrate %d: %v", k, err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// No call may be lost: the monitor semantics serialise them all.
	v, err := Call[struct{}, int](ctx, nodes[1], ref, "Get", struct{}{})
	if err != nil || v != callers*callsEach {
		t.Fatalf("total = %d, %v; want %d", v, err, callers*callsEach)
	}
}

func TestNestedInvocation(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{})
	a := mustCreate(t, nodes[0])
	b, err := nodes[1].Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Call[int, int](ctx, nodes[1], b, "Add", 42); err != nil {
		t.Fatal(err)
	}
	if _, err := Call[Ref, struct{}](ctx, nodes[0], a, "SetPeer", b); err != nil {
		t.Fatal(err)
	}
	// a's method calls b across nodes.
	v, err := Call[struct{}, int](ctx, nodes[0], a, "AskPeer", struct{}{})
	if err != nil || v != 42 {
		t.Fatalf("AskPeer = %d, %v", v, err)
	}
	// Refs inside object state survive migration.
	if err := nodes[0].Migrate(ctx, a, "n1"); err != nil {
		t.Fatal(err)
	}
	v, err = Call[struct{}, int](ctx, nodes[0], a, "AskPeer", struct{}{})
	if err != nil || v != 42 {
		t.Fatalf("AskPeer after migrate = %d, %v", v, err)
	}
}

func TestFixUnfixRefix(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{})
	ref := mustCreate(t, nodes[0])

	if err := nodes[0].Fix(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if fixed, err := nodes[2].IsFixed(ctx, ref); err != nil || !fixed {
		t.Fatalf("IsFixed = %v, %v", fixed, err)
	}
	if err := nodes[0].Migrate(ctx, ref, "n1"); !errors.Is(err, ErrFixed) {
		t.Fatalf("migrate of fixed object: %v", err)
	}
	// Refix moves it anyway and keeps it fixed at the new place.
	if err := nodes[0].Refix(ctx, ref, "n2"); err != nil {
		t.Fatalf("refix: %v", err)
	}
	if at := whereIs(t, ctx, nodes[0], ref); at != "n2" {
		t.Fatalf("after refix at %v", at)
	}
	if fixed, err := nodes[0].IsFixed(ctx, ref); err != nil || !fixed {
		t.Fatalf("IsFixed after refix = %v, %v", fixed, err)
	}
	if err := nodes[0].Unfix(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Migrate(ctx, ref, "n0"); err != nil {
		t.Fatalf("migrate after unfix: %v", err)
	}
}

func TestTypeNotRegisteredAtTarget(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	a, err := NewNode(Config{ID: "a", Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(Config{ID: "b", Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.RegisterType(newCounterType()); err != nil {
		t.Fatal(err)
	}
	// b has no counter type: migration must fail cleanly and the
	// object must stay usable at a.
	ref, err := a.Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Migrate(ctx, ref, "b"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("migrate to typeless node: %v", err)
	}
	if v, err := Call[int, int](ctx, a, ref, "Add", 1); err != nil || v != 1 {
		t.Fatalf("object unusable after failed migration: %d, %v", v, err)
	}
}

func TestNodeValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewNode(Config{ID: "x"}); err == nil {
		t.Fatal("missing cluster accepted")
	}
	cl := NewLocalCluster()
	if _, err := NewNode(Config{ID: "x", Cluster: cl, Policy: PolicyKind(99)}); err == nil {
		t.Fatal("bad policy accepted")
	}
	n, err := NewNode(Config{ID: "x", Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	if n.Policy() != PolicyPlacement || n.AttachPolicy() != AttachATransitive {
		t.Fatalf("defaults = %v, %v", n.Policy(), n.AttachPolicy())
	}
	if err := n.RegisterType(newCounterType()); err != nil {
		t.Fatal(err)
	}
	if err := n.RegisterType(newCounterType()); err == nil {
		t.Fatal("duplicate type registration accepted")
	}
	if _, err := n.Create("ghost-type"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("create unknown type: %v", err)
	}
	_ = n.Close()
	if _, err := n.Create("counter"); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewTCPCluster()
	mk := func(id NodeID) *Node {
		n, err := NewNode(Config{ID: id, Cluster: cl})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterType(newCounterType()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	// Wire the address book both ways.
	for _, x := range []*Node{a, b, c} {
		for _, y := range []*Node{a, b, c} {
			if x != y {
				x.AddPeer(y.ID(), y.Addr())
			}
		}
	}
	ref, err := a.Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := Call[int, int](ctx, c, ref, "Add", 7); err != nil || v != 7 {
		t.Fatalf("tcp Add = %d, %v", v, err)
	}
	if err := b.Migrate(ctx, ref, "c"); err != nil {
		t.Fatalf("tcp migrate: %v", err)
	}
	if at := whereIs(t, ctx, a, ref); at != "c" {
		t.Fatalf("tcp Where = %v", at)
	}
	if v, err := Call[struct{}, int](ctx, b, ref, "Get", struct{}{}); err != nil || v != 7 {
		t.Fatalf("tcp Get = %d, %v", v, err)
	}
}

func TestAlliancesAreUnique(t *testing.T) {
	t.Parallel()
	nodes := testCluster(t, 2, Config{})
	seen := map[AllianceID]bool{}
	for i := 0; i < 10; i++ {
		for _, n := range nodes {
			al := n.NewAlliance()
			if al == NoAlliance || seen[al] {
				t.Fatalf("alliance collision: %v", al)
			}
			seen[al] = true
		}
	}
}

func TestContextCancellationDuringInvoke(t *testing.T) {
	t.Parallel()
	nodes := testCluster(t, 2, Config{})
	ref := mustCreate(t, nodes[0])
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := Call[time.Duration, struct{}](ctx, nodes[1], ref, "Slow", 5*time.Second)
	if err == nil {
		t.Fatal("slow call ignored the deadline")
	}
}
