package objmig

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objmig/internal/core"
	"objmig/internal/rpc"
	"objmig/internal/wire"
)

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", d, msg)
}

// TestStreamedGroupMigration: a multi-host group whose snapshots do not
// fit one chunk migrates as a stream of several InstallChunk frames and
// still moves as a unit — every member arrives, every value survives,
// and no staging session is left behind on any node.
func TestStreamedGroupMigration(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	// ChunkBytes of 1 forces one snapshot per pause sub-batch and per
	// chunk: the smallest possible stream granularity.
	nodes := testCluster(t, 3, Config{Migrate: MigrateConfig{ChunkBytes: 1}})
	root := mustCreate(t, nodes[0])
	members := []Ref{root}
	for i := 0; i < 4; i++ {
		m := mustCreate(t, nodes[0])
		members = append(members, m)
	}
	// One member lives on another host, so the stream spans hosts.
	remote := mustCreate(t, nodes[1])
	members = append(members, remote)
	for _, m := range members[1:] {
		if err := nodes[0].Attach(ctx, root, m, NoAlliance); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range members {
		if _, err := Call[int, int](ctx, nodes[0], m, "Add", 10+i); err != nil {
			t.Fatal(err)
		}
	}

	if err := nodes[0].Migrate(ctx, root, "n2"); err != nil {
		t.Fatal(err)
	}

	for i, m := range members {
		if at := whereIs(t, ctx, nodes[0], m); at != "n2" {
			t.Fatalf("member %d at %v, want n2", i, at)
		}
		v, err := Call[struct{}, int](ctx, nodes[0], m, "Get", struct{}{})
		if err != nil || v != 10+i {
			t.Fatalf("member %d value %d (%v), want %d", i, v, err, 10+i)
		}
	}
	st := nodes[0].Stats()
	if st.StreamChunksOut < int64(len(members)-1) {
		t.Fatalf("coordinator streamed %d chunks for a %d-member group at 1-byte chunking", st.StreamChunksOut, len(members))
	}
	if st.StreamBytesOut == 0 {
		t.Fatal("no streamed bytes counted")
	}
	tgt := nodes[2].Stats()
	if tgt.StreamSessionsOpened != 1 {
		t.Fatalf("target opened %d sessions, want 1", tgt.StreamSessionsOpened)
	}
	if tgt.StreamChunksIn != st.StreamChunksOut {
		t.Fatalf("target staged %d chunks, coordinator sent %d", tgt.StreamChunksIn, st.StreamChunksOut)
	}
	for i, n := range nodes {
		if c := n.sessionCount(); c != 0 {
			t.Fatalf("node %d holds %d staging sessions after a committed migration", i, c)
		}
	}
}

// TestMigrateVetoResumesAllHosts: when the admission check vetoes a
// group migration after some hosts have already paused and answered,
// every paused object on every host must be resumed — a veto must never
// strand a remote member in the paused state.
func TestMigrateVetoResumesAllHosts(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{})
	root := mustCreate(t, nodes[0])
	near := mustCreate(t, nodes[0])
	far := mustCreate(t, nodes[1]) // second host: the veto crosses nodes
	for _, m := range []Ref{near, far} {
		if err := nodes[0].Attach(ctx, root, m, NoAlliance); err != nil {
			t.Fatal(err)
		}
	}
	// Fixing the remote member makes the per-snapshot admission check
	// veto the whole group.
	if err := nodes[1].Fix(ctx, far); err != nil {
		t.Fatal(err)
	}

	err := nodes[0].Migrate(ctx, root, "n2")
	if !errors.Is(err, ErrFixed) {
		t.Fatalf("migration with a fixed member: %v, want ErrFixed", err)
	}

	// Every member must answer promptly — a stranded pause would block
	// the invocation until the test context dies.
	checkCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	for i, m := range []Ref{root, near, far} {
		if _, err := Call[int, int](checkCtx, nodes[0], m, "Add", 1); err != nil {
			t.Fatalf("member %d unusable after vetoed migration: %v", i, err)
		}
	}
	// And nothing moved or was left staged.
	for i, m := range []Ref{root, near} {
		if at := whereIs(t, ctx, nodes[0], m); at != "n0" {
			t.Fatalf("member %d at %v after vetoed migration, want n0", i, at)
		}
	}
	if at := whereIs(t, ctx, nodes[0], far); at != "n1" {
		t.Fatalf("fixed member at %v, want n1", at)
	}
	for i, n := range nodes {
		if c := n.sessionCount(); c != 0 {
			t.Fatalf("node %d holds %d staging sessions after vetoed migration", i, c)
		}
	}
}

// TestMigrateTargetMissingTypeAborts: a target that cannot host the
// group's type fails the stream at chunk-staging time, and the sources
// resume as if nothing happened.
func TestMigrateTargetMissingTypeAborts(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	src, err := NewNode(Config{ID: "src", Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.RegisterType(newCounterType()); err != nil {
		t.Fatal(err)
	}
	bare, err := NewNode(Config{ID: "bare", Cluster: cl}) // no types registered
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = src.Close(); _ = bare.Close() })

	ref, err := src.Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Call[int, int](ctx, src, ref, "Add", 3); err != nil {
		t.Fatal(err)
	}
	if err := src.Migrate(ctx, ref, "bare"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("migration to type-less node: %v, want ErrUnknownType", err)
	}
	if v, err := Call[struct{}, int](ctx, src, ref, "Get", struct{}{}); err != nil || v != 3 {
		t.Fatalf("object unusable after aborted stream: %d, %v", v, err)
	}
	if c := bare.sessionCount(); c != 0 {
		t.Fatalf("failed stream left %d sessions at the target", c)
	}
}

// TestPauseMaxBytesBoundsResponse: handlePause honours the byte budget,
// returning the overflow as Pending and always making progress.
func TestPauseMaxBytesBoundsResponse(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 1, Config{})
	n := nodes[0]
	objs := make([]core.OID, 10)
	for i := range objs {
		objs[i] = mustCreate(t, n).OID
	}
	resp, err := n.handlePause(ctx, &wire.PauseReq{Objs: objs, Token: 42, MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Snapshots) != 1 {
		t.Fatalf("1-byte budget returned %d snapshots, want 1", len(resp.Snapshots))
	}
	if len(resp.Pending) != 9 {
		t.Fatalf("pending %d, want 9", len(resp.Pending))
	}
	// Unbounded request drains the pending tail.
	resp2, err := n.handlePause(ctx, &wire.PauseReq{Objs: resp.Pending, Token: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Snapshots) != 9 || len(resp2.Pending) != 0 {
		t.Fatalf("unbounded follow-up: %d snapshots, %d pending", len(resp2.Snapshots), len(resp2.Pending))
	}
	n.abortLocal(&wire.AbortReq{Objs: objs, Token: 42})
	for _, oid := range objs {
		if _, err := Call[int, int](ctx, n, Ref{OID: oid}, "Add", 1); err != nil {
			t.Fatalf("object %s not resumed: %v", oid, err)
		}
	}
}

// TestStreamSessionExpiryAndPauseLease: a coordinator that dies
// mid-stream must leave the target clean (the staging session expires,
// nothing is installed) and the sources resumed (the pause lease
// fires). The test plays the coordinator by hand and simply stops
// after the first chunk.
func TestStreamSessionExpiryAndPauseLease(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{
		Migrate: MigrateConfig{SessionTTL: 100 * time.Millisecond, PauseLease: 150 * time.Millisecond},
	})
	src, tgt := nodes[0], nodes[1]
	o1, o2 := mustCreate(t, src), mustCreate(t, src)
	if _, err := Call[int, int](ctx, src, o1, "Add", 7); err != nil {
		t.Fatal(err)
	}

	// The ghost coordinator: begin, pause with a lease, one chunk, die.
	const token = 777
	if _, err := tgt.handleMigrateBegin(&wire.MigrateBeginReq{
		Token: token, From: "ghost", Objs: []core.OID{o1.OID, o2.OID},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := src.handlePause(ctx, &wire.PauseReq{
		Objs: []core.OID{o1.OID, o2.OID}, Token: token, Lease: 150 * time.Millisecond,
		From: "ghost", Target: "n1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Snapshots) != 2 {
		t.Fatalf("paused %d objects, want 2", len(resp.Snapshots))
	}
	if _, err := tgt.handleInstallChunk(&wire.InstallChunkReq{
		Token: token, From: "ghost", Seq: 1, Snapshots: resp.Snapshots[:1],
	}); err != nil {
		t.Fatal(err)
	}
	// …the coordinator is dead. Nobody commits, nobody aborts.

	eventually(t, 5*time.Second, func() bool { return tgt.sessionCount() == 0 },
		"target staging session never expired")
	if st := tgt.Stats(); st.StreamSessionsExpired != 1 {
		t.Fatalf("StreamSessionsExpired = %d, want 1", st.StreamSessionsExpired)
	}
	if hosted := tgt.Stats().ObjectsHosted; hosted != 0 {
		t.Fatalf("target hosts %d objects from an expired session, want 0", hosted)
	}
	eventually(t, 5*time.Second, func() bool {
		cctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
		defer cancel()
		_, e1 := Call[struct{}, int](cctx, src, o1, "Get", struct{}{})
		_, e2 := Call[struct{}, int](cctx, src, o2, "Get", struct{}{})
		return e1 == nil && e2 == nil
	}, "paused sources never resumed after the lease")
	if v, err := Call[struct{}, int](ctx, src, o1, "Get", struct{}{}); err != nil || v != 7 {
		t.Fatalf("value after lease resume: %d, %v, want 7", v, err)
	}
	if st := src.Stats(); st.PauseLeasesExpired != 1 {
		t.Fatalf("PauseLeasesExpired = %d, want 1", st.PauseLeasesExpired)
	}
}

// TestPauseLeaseResolvesCommittedMigration: the dangerous half of
// coordinator death — it dies *after* the target committed the install
// but before the sources received their commit. Blindly resuming would
// leave the object live in two places; the lease must instead discover
// the commit by asking the target and finish the departure locally.
func TestPauseLeaseResolvesCommittedMigration(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{
		Migrate: MigrateConfig{SessionTTL: 10 * time.Second, PauseLease: 150 * time.Millisecond},
	})
	src, tgt := nodes[0], nodes[1]
	o1, o2 := mustCreate(t, src), mustCreate(t, src)
	if _, err := Call[int, int](ctx, src, o1, "Add", 7); err != nil {
		t.Fatal(err)
	}

	// Ghost coordinator: full stream + target commit, then death
	// before the sources' CommitReq.
	const token = 888
	if _, err := tgt.handleMigrateBegin(&wire.MigrateBeginReq{
		Token: token, From: "ghost", Objs: []core.OID{o1.OID, o2.OID},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := src.handlePause(ctx, &wire.PauseReq{
		Objs: []core.OID{o1.OID, o2.OID}, Token: token, Lease: 150 * time.Millisecond,
		From: "ghost", Target: "n1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.handleInstallChunk(&wire.InstallChunkReq{
		Token: token, From: "ghost", Seq: 1, Snapshots: resp.Snapshots,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.handleInstallCommit(&wire.InstallCommitReq{Token: token, From: "ghost"}); err != nil {
		t.Fatal(err)
	}
	// …the coordinator dies here: src never hears the commit.

	// The lease fires, asks n1, learns the install committed, and
	// departs the local records — one live copy, at the target.
	// The departure may already have retired the forwarding stub: the
	// source is the objects' origin, so its home index is authoritative
	// the moment the commit lands and the stub need not linger.
	eventually(t, 5*time.Second, func() bool {
		rec, ok := src.record(o1.OID)
		return !ok || rec.IsGone()
	}, "source records never departed after a committed-but-unacked migration")
	if v, err := Call[struct{}, int](ctx, src, o1, "Get", struct{}{}); err != nil || v != 7 {
		t.Fatalf("value after lease-resolved commit: %d, %v, want 7", v, err)
	}
	for _, o := range []Ref{o1, o2} {
		if at := whereIs(t, ctx, src, o); at != "n1" {
			t.Fatalf("object %s at %v after lease-resolved commit, want n1", o.OID, at)
		}
	}
	if hosted := src.Stats().ObjectsHosted; hosted != 0 {
		t.Fatalf("source still hosts %d objects (duplicate live copies)", hosted)
	}
	if st := src.Stats(); st.PauseLeasesExpired != 1 {
		t.Fatalf("PauseLeasesExpired = %d, want 1", st.PauseLeasesExpired)
	}
}

// TestPauseLeaseKeyedPerCoordinator: two coordinators minting the same
// token must not share (or cancel) each other's leases at a common
// source host.
func TestPauseLeaseKeyedPerCoordinator(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{})
	src := nodes[0]
	oA, oB := mustCreate(t, src), mustCreate(t, src)

	const token = 5 // same token from two different "coordinators"
	if _, err := src.handlePause(ctx, &wire.PauseReq{
		Objs: []core.OID{oA.OID}, Token: token, Lease: 10 * time.Second, From: "coordA", Target: "n1",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.handlePause(ctx, &wire.PauseReq{
		Objs: []core.OID{oB.OID}, Token: token, Lease: 150 * time.Millisecond, From: "coordB", Target: "n1",
	}); err != nil {
		t.Fatal(err)
	}
	// coordA commits nothing and aborts: only oA may resume, and only
	// coordA's lease is disarmed.
	src.abortLocal(&wire.AbortReq{Objs: []core.OID{oA.OID}, Token: token, From: "coordA"})
	if _, err := Call[int, int](ctx, src, oA, "Add", 1); err != nil {
		t.Fatalf("coordA's object not resumed by coordA's abort: %v", err)
	}
	// coordB's lease must still be armed and fire on its own schedule.
	eventually(t, 5*time.Second, func() bool {
		cctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
		defer cancel()
		_, err := Call[int, int](cctx, src, oB, "Add", 1)
		return err == nil
	}, "coordB's lease was clobbered by coordA's abort")
}

// TestCoordinatorCloseMidStreamLeavesClusterClean: the integrated
// version of the chaos scenario — the coordinator node is closed while
// a streamed migration is in flight on a slow network. Whatever the
// race's outcome (aborted, leased back, or completed), the cluster must
// settle clean: the surviving source's member answers again and no node
// is left holding a staging session.
func TestCoordinatorCloseMidStreamLeavesClusterClean(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	mcfg := MigrateConfig{
		ChunkBytes: 1, // chunk per object: many frames, long stream
		SessionTTL: 200 * time.Millisecond,
		PauseLease: 400 * time.Millisecond,
	}
	var beginMu sync.Mutex
	began := false
	mk := func(id NodeID, obs Observer) *Node {
		n, err := NewNode(Config{ID: id, Cluster: cl, Migrate: mcfg, Observer: obs})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterType(newCounterType()); err != nil {
			t.Fatal(err)
		}
		return n
	}
	tgt := mk("tgt", func(e Event) {
		if e.Kind == EventMigrateStream && e.Outcome == "begin" {
			beginMu.Lock()
			began = true
			beginMu.Unlock()
		}
	})
	coord := mk("coord", nil)
	src := mk("src", nil)
	t.Cleanup(func() { _ = coord.Close(); _ = src.Close(); _ = tgt.Close() })

	root, err := coord.Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	group := []Ref{root}
	for i := 0; i < 16; i++ {
		m, err := coord.Create("counter")
		if err != nil {
			t.Fatal(err)
		}
		group = append(group, m)
	}
	survivor, err := src.Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	group = append(group, survivor)
	for _, m := range group[1:] {
		if err := coord.Attach(ctx, root, m, NoAlliance); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Call[int, int](ctx, src, survivor, "Add", 5); err != nil {
		t.Fatal(err)
	}

	cl.SetLatency(2 * time.Millisecond)
	migDone := make(chan error, 1)
	go func() {
		mctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		migDone <- coord.Migrate(mctx, root, "tgt")
	}()
	eventually(t, 5*time.Second, func() bool {
		beginMu.Lock()
		defer beginMu.Unlock()
		return began
	}, "migration never opened a session at the target")
	time.Sleep(10 * time.Millisecond) // let a few chunks through
	_ = coord.Close()                 // the coordinator dies mid-stream
	<-migDone
	cl.SetLatency(0)

	// The surviving source's member must answer again — resumed by
	// abort or lease, or installed at the target; any of those, but
	// never stuck paused.
	eventually(t, 5*time.Second, func() bool {
		cctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
		defer cancel()
		v, err := Call[struct{}, int](cctx, src, survivor, "Get", struct{}{})
		return err == nil && v == 5
	}, "surviving source's member stuck after coordinator death")
	// And no staging session outlives the crash anywhere.
	eventually(t, 5*time.Second, func() bool {
		return tgt.sessionCount() == 0 && src.sessionCount() == 0
	}, "staging session survived the coordinator's death")
}

// TestStreamedMigrationConcurrentWithInvocations: streaming pause
// sub-batches interleave with live traffic; updates must neither be
// lost nor duplicated across the transfer.
func TestStreamedMigrationConcurrentWithInvocations(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Migrate: MigrateConfig{ChunkBytes: 1}})
	root := mustCreate(t, nodes[0])
	members := []Ref{root}
	for i := 0; i < 7; i++ {
		m := mustCreate(t, nodes[0])
		members = append(members, m)
		if err := nodes[0].Attach(ctx, root, m, NoAlliance); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var adds atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m := (w + i) % len(members)
				if _, err := Call[int, int](ctx, nodes[1], members[m], "Add", 1); err == nil {
					adds.Add(1)
				}
			}
		}(w)
	}
	// One migration in the middle of the traffic.
	time.Sleep(5 * time.Millisecond)
	if err := nodes[0].Migrate(ctx, root, "n2"); err != nil && !errors.Is(err, ErrDenied) {
		t.Fatalf("migration under load: %v", err)
	}
	wg.Wait()
	// Sum of all member values must equal the successful adds: nothing
	// lost to the pause window, nothing duplicated by the install.
	total := int64(0)
	for _, m := range members {
		v, err := Call[struct{}, int](ctx, nodes[0], m, "Get", struct{}{})
		if err != nil {
			t.Fatal(err)
		}
		total += int64(v)
	}
	if total != adds.Load() {
		t.Fatalf("sum of values %d != successful adds %d (lost or duplicated updates)", total, adds.Load())
	}
}

// TestStreamAbortDiscardsSession: an explicit abort with the
// coordinator's identity removes the staged session.
func TestStreamAbortDiscardsSession(t *testing.T) {
	t.Parallel()
	nodes := testCluster(t, 1, Config{})
	n := nodes[0]
	oid := mustCreate(t, n).OID
	if _, err := n.handleMigrateBegin(&wire.MigrateBeginReq{Token: 9, From: "ghost", Objs: []core.OID{oid}}); err != nil {
		t.Fatal(err)
	}
	if n.sessionCount() != 1 {
		t.Fatal("session not opened")
	}
	n.abortLocal(&wire.AbortReq{Token: 9, From: "ghost"})
	if n.sessionCount() != 0 {
		t.Fatal("abort left the session staged")
	}
	// A commit for the aborted session must fail, not install.
	if _, err := n.handleInstallCommit(&wire.InstallCommitReq{Token: 9, From: "ghost"}); err == nil {
		t.Fatal("commit of an aborted session succeeded")
	}
	// The abort fence blocks frames that were still in flight: a late
	// one-shot install and a late session re-open must both be refused,
	// or the resumed source and the install would duplicate the object.
	late := wire.Snapshot{ID: core.OID{Origin: "ghost", Seq: 1}, Type: "counter"}
	if _, err := n.handleInstall(&wire.InstallReq{Snapshots: []wire.Snapshot{late}, Token: 9, From: "ghost"}); err == nil {
		t.Fatal("late install landed after the abort fence")
	}
	if _, err := n.handleMigrateBegin(&wire.MigrateBeginReq{Token: 9, From: "ghost", Objs: []core.OID{oid}}); err == nil {
		t.Fatal("session re-opened through the abort fence")
	}
}

// TestDefiniteFailureClassification: only provably-undelivered or
// provably-refused requests count as definite; everything ambiguous
// must defer to the lease machinery.
func TestDefiniteFailureClassification(t *testing.T) {
	t.Parallel()
	definite := []error{
		wire.Errorf(wire.CodeDenied, "no"),
		fmt.Errorf("wrapped: %w", &wire.RemoteError{Code: wire.CodeNotFound, Msg: "x"}),
		fmt.Errorf("%w: n9: no listener", rpc.ErrDialFailed),
		fmt.Errorf("%w: conn gone", rpc.ErrSendFailed),
	}
	for _, err := range definite {
		if !definiteFailure(err) {
			t.Errorf("%v classified ambiguous, want definite", err)
		}
	}
	ambiguous := []error{
		context.DeadlineExceeded,
		context.Canceled,
		rpc.ErrPeerClosed,
		fmt.Errorf("%w: read reset", rpc.ErrPeerClosed),
		errors.New("some transport mishap"),
	}
	for _, err := range ambiguous {
		if definiteFailure(err) {
			t.Errorf("%v classified definite, want ambiguous", err)
		}
	}
}

// TestMigrateConfigDefaults: the zero config selects the documented
// defaults.
func TestMigrateConfigDefaults(t *testing.T) {
	t.Parallel()
	c := MigrateConfig{}.withDefaults()
	if c.ChunkBytes != DefaultChunkBytes {
		t.Fatalf("ChunkBytes default %d, want %d", c.ChunkBytes, DefaultChunkBytes)
	}
	if c.SessionTTL != 30*time.Second || c.PauseLease != 30*time.Second {
		t.Fatalf("TTL/lease defaults %v/%v, want 30s/30s", c.SessionTTL, c.PauseLease)
	}
	// Negative values survive (explicit "disabled").
	d := MigrateConfig{ChunkBytes: -1, SessionTTL: -1, PauseLease: -1}.withDefaults()
	if d.ChunkBytes != -1 || d.SessionTTL != -1 || d.PauseLease != -1 {
		t.Fatalf("negative settings overridden: %+v", d)
	}
	_ = fmt.Sprintf("%v", c)
}
