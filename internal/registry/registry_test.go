package registry

import (
	"sync"
	"testing"

	"objmig/internal/core"
)

func oid(origin string, seq uint64) core.OID {
	return core.OID{Origin: core.NodeID(origin), Seq: seq}
}

func TestCreatedAndHint(t *testing.T) {
	t.Parallel()
	r := New("n1")
	id := oid("n1", 1)
	r.Created(id)
	if at, ok := r.Home(id); !ok || at != "n1" {
		t.Fatalf("home = %v, %v", at, ok)
	}
	if got := r.Hint(id); got != "n1" {
		t.Fatalf("hint = %v, want n1", got)
	}
}

func TestDepartureInstallsForwardAndUpdatesHome(t *testing.T) {
	t.Parallel()
	r := New("n1")
	id := oid("n1", 1)
	r.Created(id)
	r.Departed(id, "n2")
	if to, ok := r.Forward(id); !ok || to != "n2" {
		t.Fatalf("forward = %v, %v", to, ok)
	}
	if at, _ := r.Home(id); at != "n2" {
		t.Fatalf("home after departure = %v", at)
	}
	if got := r.Hint(id); got != "n2" {
		t.Fatalf("hint = %v", got)
	}
}

func TestArrivalClearsForward(t *testing.T) {
	t.Parallel()
	r := New("n1")
	id := oid("n1", 1)
	r.Created(id)
	r.Departed(id, "n2")
	r.Arrived(id) // came back
	if _, ok := r.Forward(id); ok {
		t.Fatal("forward survived arrival")
	}
	if at, _ := r.Home(id); at != "n1" {
		t.Fatalf("home = %v, want n1", at)
	}
}

func TestForeignObjectLifecycle(t *testing.T) {
	t.Parallel()
	r := New("n2")
	id := oid("n1", 7)
	// Unknown foreign object: hint falls back to its origin.
	if got := r.Hint(id); got != "n1" {
		t.Fatalf("hint = %v, want origin n1", got)
	}
	r.Learn(id, "n5")
	if got := r.Hint(id); got != "n5" {
		t.Fatalf("hint = %v, want cached n5", got)
	}
	r.Invalidate(id)
	if got := r.Hint(id); got != "n1" {
		t.Fatalf("hint after invalidate = %v, want n1", got)
	}
	// Hosting the foreign object, then sending it on.
	r.Arrived(id)
	r.Departed(id, "n9")
	if got := r.Hint(id); got != "n9" {
		t.Fatalf("hint = %v, want forward n9", got)
	}
	if at, ok := r.Home(id); ok {
		t.Fatalf("foreign object entered home index: %v", at)
	}
}

func TestLearnIgnoresSelfAndEmpty(t *testing.T) {
	t.Parallel()
	r := New("n2")
	id := oid("n1", 7)
	r.Learn(id, "")
	r.Learn(id, "n2")
	if got := r.Hint(id); got != "n1" {
		t.Fatalf("hint = %v, want origin", got)
	}
}

func TestHomeUpdate(t *testing.T) {
	t.Parallel()
	r := New("n1")
	mine := oid("n1", 1)
	foreign := oid("nX", 2)
	r.Created(mine)
	r.HomeUpdate([]core.OID{mine, foreign}, "n4")
	if at, _ := r.Home(mine); at != "n4" {
		t.Fatalf("home = %v, want n4", at)
	}
	if _, ok := r.Home(foreign); ok {
		t.Fatal("foreign object accepted into home index")
	}
	if got := r.Hint(mine); got != "n4" {
		t.Fatalf("hint = %v, want n4", got)
	}
}

func TestForwardBeatsCache(t *testing.T) {
	t.Parallel()
	r := New("n2")
	id := oid("n1", 3)
	r.Learn(id, "n5")
	r.Arrived(id)
	r.Departed(id, "n6")
	if got := r.Hint(id); got != "n6" {
		t.Fatalf("hint = %v, want forward n6 over stale cache", got)
	}
}

func TestStats(t *testing.T) {
	t.Parallel()
	r := New("n1")
	r.Created(oid("n1", 1))
	r.Learn(oid("n9", 1), "n3")
	r.Arrived(oid("n9", 2))
	r.Departed(oid("n9", 2), "n4")
	h, f, c := r.Stats()
	if h != 1 || f != 1 || c != 1 {
		t.Fatalf("stats = %d, %d, %d", h, f, c)
	}
}

func TestConcurrentAccess(t *testing.T) {
	t.Parallel()
	r := New("n1")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := oid("n1", uint64(i%10))
				switch g % 4 {
				case 0:
					r.Created(id)
				case 1:
					r.Departed(id, "n2")
				case 2:
					r.Hint(id)
				case 3:
					r.Arrived(id)
				}
			}
		}(g)
	}
	wg.Wait()
}
