// Package telemetry is the runtime's zero-allocation metrics core:
// lock-striped counters, gauges and fixed-bucket latency histograms,
// plus the bounded trace log migration tracing records spans into.
//
// Everything on a recording path — Counter.Add, Gauge.Set,
// Histogram.Observe, TraceLog.Record — is allocation-free and safe for
// unbounded concurrency; CI enforces the zero-alloc line with
// BenchmarkTelemetryRecord. Reading (Value, Snapshot, Spans) allocates
// and takes whatever locks it needs; readers are scrapes and tests,
// not hot paths.
//
// Counters and histograms stripe their cells so concurrent writers on
// different goroutines rarely share a cache line. The stripe is picked
// by hashing the goroutine's stack address — stateless, free, and
// stable for the duration of a call, which is all the distribution
// needs. Histogram buckets are exponential (bucket b holds values v
// with bits.Len64(v) == b, i.e. [2^(b-1), 2^b)), the same shape as the
// directory's chase-hop histogram; quantiles report the bucket's upper
// bound, an overestimate of at most 2×.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// numStripes is the write-side fan-out of counters and histograms.
// Must be a power of two.
const numStripes = 8

// stripeIdx picks this goroutine's stripe from its stack address.
// Goroutine stacks are at least page-aligned and page-sized, so the
// low 12 bits carry no information; the bits above them distinguish
// goroutines well enough to spread contention.
func stripeIdx() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe)) >> 12 & (numStripes - 1))
}

// pad is the tail padding that keeps one stripe's cell from sharing a
// cache line with its neighbour.
type pad [56]byte

// Counter is a monotonically increasing striped counter.
type Counter struct {
	stripes [numStripes]struct {
		n atomic.Int64
		_ pad
	}
}

// Add increments the counter. Allocation-free.
func (c *Counter) Add(d int64) { c.stripes[stripeIdx()].n.Add(d) }

// Inc adds one. Allocation-free.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].n.Load()
	}
	return t
}

// Gauge is a last-write-wins instantaneous value. A single atomic is
// enough: gauges are set by one maintainer (a heartbeat, a sampler)
// and read by scrapes.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value. Allocation-free.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current value. Allocation-free.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the last stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of exponential histogram buckets. Bucket 0
// holds zero, bucket b (1 ≤ b < HistBuckets−1) holds values in
// [2^(b-1), 2^b), and the top bucket saturates — with microsecond
// observations that is everything above ~67 seconds.
const HistBuckets = 28

// bucketOf maps a value to its bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpper returns the largest value bucket b can hold (the value
// quantiles report).
func BucketUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return (int64(1) << b) - 1
}

// Histogram is a striped fixed-bucket latency histogram. Observations
// are dimensionless int64s; the runtime records microseconds.
type Histogram struct {
	stripes [numStripes]histStripe
}

type histStripe struct {
	count [HistBuckets]atomic.Int64
	sum   atomic.Int64
	_     pad
}

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v int64) {
	s := &h.stripes[stripeIdx()]
	s.count[bucketOf(v)].Add(1)
	if v > 0 {
		s.sum.Add(v)
	}
}

// ObserveSince records the elapsed time since t0 in microseconds.
// Allocation-free.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Microseconds())
}

// HistSnapshot is a consistent-enough copy of a histogram: each
// stripe is read atomically, so totals can lag individual buckets by
// in-flight observations but never go negative.
type HistSnapshot struct {
	Counts [HistBuckets]int64
	Sum    int64
	Total  int64
}

// Snapshot folds the stripes into one summable view.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.count {
			c := st.count[b].Load()
			s.Counts[b] += c
			s.Total += c
		}
		s.Sum += st.sum.Load()
	}
	return s
}

// Quantile returns the value at or below which a q fraction of the
// observations fall, reported as the containing bucket's upper bound.
// q is clamped to [0, 1]; an empty histogram reports 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	want := int64(q * float64(s.Total))
	if want < 1 {
		want = 1
	}
	var cum int64
	for b, c := range s.Counts {
		cum += c
		if cum >= want {
			return BucketUpper(b)
		}
	}
	return BucketUpper(HistBuckets - 1)
}

// Delta returns the observations recorded between prev and s, where
// prev is an earlier snapshot of the same histogram. Each component is
// clamped at zero so a torn read (stripes loaded while writers run)
// can lag but never go negative. Pure value arithmetic: zero
// allocations, usable on a health-evaluation hot path.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for b := range s.Counts {
		if c := s.Counts[b] - prev.Counts[b]; c > 0 {
			d.Counts[b] = c
			d.Total += c
		}
	}
	if v := s.Sum - prev.Sum; v > 0 {
		d.Sum = v
	}
	return d
}

// Mean returns the arithmetic mean of the observations (exact, unlike
// the quantiles — the sum is tracked outside the buckets).
func (s HistSnapshot) Mean() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Total)
}

// Registry is a lock-striped name → metric directory. Get-or-create
// takes a short shard lock; the returned handles are stable, so hot
// paths resolve their metrics once and record through pure atomics.
type Registry struct {
	shards [numStripes]regShard
}

type regShard struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		s := &r.shards[i]
		s.counters = make(map[string]*Counter)
		s.gauges = make(map[string]*Gauge)
		s.hists = make(map[string]*Histogram)
	}
	return r
}

// shardFor hashes the metric name (FNV-1a) onto a shard.
func (r *Registry) shardFor(name string) *regShard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &r.shards[h&(numStripes-1)]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	s := r.shardFor(name)
	s.mu.RLock()
	c := s.counters[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.counters[name]; c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	s := r.shardFor(name)
	s.mu.RLock()
	g := s.gauges[name]
	s.mu.RUnlock()
	if g != nil {
		return g
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g = s.gauges[name]; g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	s := r.shardFor(name)
	s.mu.RLock()
	h := s.hists[name]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = s.hists[name]; h == nil {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// Point is one named value in a registry snapshot.
type Point struct {
	Name  string
	Value int64
}

// HistPoint is one named histogram in a registry snapshot.
type HistPoint struct {
	Name string
	Snap HistSnapshot
}

// Snapshot exports every metric, each kind sorted by name.
func (r *Registry) Snapshot() (counters, gauges []Point, hists []HistPoint) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for name, c := range s.counters {
			counters = append(counters, Point{name, c.Value()})
		}
		for name, g := range s.gauges {
			gauges = append(gauges, Point{name, g.Value()})
		}
		for name, h := range s.hists {
			hists = append(hists, HistPoint{name, h.Snapshot()})
		}
		s.mu.RUnlock()
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	return counters, gauges, hists
}
