package objmig

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDirectoryChurnBoundedChases ring-migrates an attachment closure
// around a three-node cluster while invokers on every node chase the
// members concurrently. It pins the directory's liveness guarantees
// under churn: every chase terminates (no stale-forward loops), the
// per-chase hop count stays bounded, and retirement plus forward
// compaction never strand a reachable object — after the storm every
// member still resolves from every node and the forwarding state left
// behind is proportional to the group, not to the number of hops it
// took.
func TestDirectoryChurnBoundedChases(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	var chaseEvents sync.Map // NodeID -> *atomic.Int64
	nodes := testCluster(t, 3, Config{Attach: AttachUnrestricted,
		Observer: func(e Event) {
			if e.Kind != EventChase {
				return
			}
			c, _ := chaseEvents.LoadOrStore(e.Node, new(atomic.Int64))
			c.(*atomic.Int64).Add(1)
		}})
	n0 := nodes[0]

	const members = 8
	refs := make([]Ref, members)
	for i := range refs {
		refs[i] = mustCreate(t, n0)
	}
	anchor := refs[0]
	for _, r := range refs[1:] {
		if err := n0.Attach(ctx, anchor, r, NoAlliance); err != nil {
			t.Fatal(err)
		}
	}

	// Ring-migrate the closure as fast as transfers complete.
	var stop atomic.Bool
	migDone := make(chan struct{})
	go func() {
		defer close(migDone)
		ring := []NodeID{"n1", "n2", "n0"}
		for i := 0; !stop.Load(); i++ {
			if err := n0.Migrate(ctx, anchor, ring[i%len(ring)]); err != nil {
				t.Errorf("ring migrate %d: %v", i, err)
				return
			}
		}
	}()

	// Invoker storm: two goroutines per node, each walking the members.
	var wg sync.WaitGroup
	var calls atomic.Int64
	deadline := time.Now().Add(500 * time.Millisecond)
	for _, inv := range nodes {
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func(n *Node, seed int) {
				defer wg.Done()
				for i := seed; time.Now().Before(deadline); i++ {
					if _, err := Call[int, int](ctx, n, refs[i%members], "Add", 1); err != nil {
						t.Errorf("invoke %s from %s: %v", refs[i%members], n.ID(), err)
						return
					}
					calls.Add(1)
				}
			}(inv, k*3)
		}
	}
	wg.Wait()
	stop.Store(true)
	<-migDone
	if calls.Load() == 0 {
		t.Fatal("no invocations completed under churn")
	}

	// Retirement must never strand a reachable object: every member
	// still resolves from every node once the dust settles.
	for _, n := range nodes {
		for _, r := range refs {
			if _, err := n.Locate(ctx, r); err != nil {
				t.Fatalf("member %s unreachable from %s after churn: %v", r.OID, n.ID(), err)
			}
		}
	}

	// The chase instrumentation observed the storm, and every chase the
	// budget flagged also surfaced as an EventChase — the counter and
	// the event stream must agree.
	var chased int64
	for _, n := range nodes {
		st := n.Stats()
		chased += st.HintHits + st.HintMisses
		var events int64
		if c, ok := chaseEvents.Load(n.ID()); ok {
			events = c.(*atomic.Int64).Load()
		}
		if events != st.ChasesOverBudget {
			t.Errorf("%s: %d EventChase emissions vs ChasesOverBudget=%d",
				n.ID(), events, st.ChasesOverBudget)
		}
	}
	if chased == 0 {
		t.Error("no remote chases recorded under churn")
	}

	// Forwarding state is proportional to the group, not the churn:
	// thousands of hops must not leave thousands of entries behind.
	for _, n := range nodes {
		n.CompactDirectory()
		st := n.Stats()
		if bound := members * 4; st.LocForwards+st.LocClosures > bound {
			t.Errorf("%s: %d forwards + %d closure records outlive the churn (bound %d)",
				n.ID(), st.LocForwards, st.LocClosures, bound)
		}
	}
}
