package objmig

// This file is the benchmark harness required by the reproduction: one
// benchmark per paper figure (each run regenerates the figure's series
// with the simulation harness and reports its headline numbers as
// benchmark metrics), plus micro-benchmarks of the live runtime's hot
// paths.
//
//	go test -bench=Fig -benchmem        # regenerate all figures
//	go test -bench=Runtime -benchmem    # runtime micro-benchmarks
//
// The full-quality tables (paper-grade confidence intervals) come from
// cmd/objmig-sim; benchmarks use the quick profile so a -bench=. run
// stays in the minutes range.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"
	"testing"

	"objmig/internal/core"
	"objmig/internal/store"
	"objmig/internal/wire"
	"objmig/sim"
)

// benchOpts is the quick profile used by the figure benchmarks.
func benchOpts(seed int64) sim.RunOpts {
	return sim.RunOpts{Seed: seed, Quick: true, MaxCalls: 8000, Parallelism: 8}
}

// runFigure regenerates one figure per benchmark iteration and returns
// the last table for metric extraction.
func runFigure(b *testing.B, id string) sim.Table {
	b.Helper()
	e, ok := sim.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var tbl sim.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = sim.RunExperiment(e, benchOpts(int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// lastY reports the final-x value of a series as a benchmark metric.
func lastY(b *testing.B, tbl sim.Table, label, metric string) {
	b.Helper()
	col := tbl.Column(label)
	if col == nil {
		b.Fatalf("series %q missing", label)
	}
	b.ReportMetric(col[len(col)-1], metric)
}

// BenchmarkFig8 regenerates Fig. 8 (mean communication time per call
// against the usage distance t_m) and reports the three policies'
// values at the highest usage frequency.
func BenchmarkFig8(b *testing.B) {
	tbl := runFigure(b, "fig8")
	first := tbl.Y[0]
	for j, s := range tbl.Experiment.Series {
		b.ReportMetric(first[j], fmt.Sprintf("%s@tm=min", shortLabel(s.Label)))
	}
}

// BenchmarkFig10 regenerates Fig. 10 (the invocation-duration
// component of the Fig. 8 runs).
func BenchmarkFig10(b *testing.B) {
	tbl := runFigure(b, "fig10")
	lastY(b, tbl, "Migration", "migration-dur@tm=100")
	lastY(b, tbl, "Transient Placement", "placement-dur@tm=100")
}

// BenchmarkFig11 regenerates Fig. 11 (the migration-load component).
func BenchmarkFig11(b *testing.B) {
	tbl := runFigure(b, "fig11")
	lastY(b, tbl, "Migration", "migration-load@tm=100")
	lastY(b, tbl, "Transient Placement", "placement-load@tm=100")
}

// BenchmarkFig12 regenerates Fig. 12 (hot-spot objects under an
// increasing number of clients) and reports the two break-even points
// the paper calls out (~6 and ~20 clients).
func BenchmarkFig12(b *testing.B) {
	tbl := runFigure(b, "fig12")
	b.ReportMetric(tbl.Crossover("Migration", "without Migration"), "breakeven-migration")
	b.ReportMetric(tbl.Crossover("Transient Placement", "without Migration"), "breakeven-placement")
}

// BenchmarkFig14 regenerates Fig. 14 (dynamic placement strategies)
// and reports each strategy's value at C=25 — the paper's conclusion
// is that they differ from conservative placement only marginally.
func BenchmarkFig14(b *testing.B) {
	tbl := runFigure(b, "fig14")
	lastY(b, tbl, "Conservative Place-Policy", "placement@C=25")
	lastY(b, tbl, "Comparing the Nodes", "compare@C=25")
	lastY(b, tbl, "Comparing and Reinstantiation", "reinstantiate@C=25")
}

// BenchmarkFig16 regenerates Fig. 16 (attachment regimes with
// overlapping working sets) and reports the five series at C=12, whose
// ordering is the paper's central Table/Figure-16 claim.
func BenchmarkFig16(b *testing.B) {
	tbl := runFigure(b, "fig16")
	for _, s := range tbl.Experiment.Series {
		lastY(b, tbl, s.Label, shortLabel(s.Label)+"@C=12")
	}
}

// BenchmarkFig16Exclusive regenerates the exclusive-attachment
// extension (the Section 3.4 variant the paper describes but does not
// plot).
func BenchmarkFig16Exclusive(b *testing.B) {
	tbl := runFigure(b, "fig16x")
	lastY(b, tbl, "Migration + exclusive Attachment", "mig+exclusive@C=12")
	lastY(b, tbl, "Transient Placement + exclusive Attachment", "plc+exclusive@C=12")
}

// BenchmarkAblationGroupLock regenerates the group-lock ablation: the
// gap between the two A-transitive series is what extending the
// placement lock to the whole working set is worth.
func BenchmarkAblationGroupLock(b *testing.B) {
	tbl := runFigure(b, "ablation-grouplock")
	lastY(b, tbl, "Placement + A-transitive (group lock)", "with-grouplock@C=12")
	lastY(b, tbl, "Placement + A-transitive (root lock only)", "rootlock-only@C=12")
}

// shortLabel compresses the paper's series labels into metric names.
func shortLabel(label string) string {
	switch label {
	case "without Migration":
		return "sedentary"
	case "Migration":
		return "migration"
	case "Transient Placement":
		return "placement"
	case "Migration + unrestricted Attachment":
		return "mig+unrestricted"
	case "Migration + A-transitive Attachment":
		return "mig+a-trans"
	case "Transient Placement + unrestricted Attachment":
		return "plc+unrestricted"
	case "Transient Placement + A-transitive Attachment":
		return "plc+a-trans"
	default:
		return label
	}
}

// --- Live-runtime micro-benchmarks ---

// benchNodes builds a local two-node cluster with the bench type.
func benchNodes(b *testing.B, policy PolicyKind) (*Node, *Node, Ref) {
	b.Helper()
	cl := NewLocalCluster()
	t := newBenchType()
	mk := func(id NodeID) *Node {
		n, err := NewNode(Config{ID: id, Cluster: cl, Policy: policy})
		if err != nil {
			b.Fatal(err)
		}
		if err := n.RegisterType(t); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = n.Close() })
		return n
	}
	a, c := mk("a"), mk("b")
	ref, err := a.Create("bench")
	if err != nil {
		b.Fatal(err)
	}
	return a, c, ref
}

type benchState struct {
	Value int
}

func newBenchType() *Type[benchState] {
	t := NewType[benchState]("bench")
	HandleFunc(t, "Add", func(c *Ctx, s *benchState, d int) (int, error) {
		s.Value += d
		return s.Value, nil
	})
	return t
}

// BenchmarkRuntimeLocalInvoke measures an invocation of a locally
// hosted object (trap + dispatch + gob round trip, no network).
func BenchmarkRuntimeLocalInvoke(b *testing.B) {
	a, _, ref := benchNodes(b, PolicyPlacement)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Call[int, int](ctx, a, ref, "Add", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeRemoteInvoke measures an invocation that crosses the
// in-memory transport (linearise, forward, execute, reply).
func BenchmarkRuntimeRemoteInvoke(b *testing.B) {
	_, remote, ref := benchNodes(b, PolicyPlacement)
	ctx := context.Background()
	// Warm the location cache.
	if _, err := Call[int, int](ctx, remote, ref, "Add", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Call[int, int](ctx, remote, ref, "Add", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeMigration measures a full single-object migration
// round trip between two nodes (pause, snapshot, install, commit —
// twice, so the benchmark is steady-state).
func BenchmarkRuntimeMigration(b *testing.B) {
	a, _, ref := benchNodes(b, PolicyConventional)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Migrate(ctx, ref, "b"); err != nil {
			b.Fatal(err)
		}
		if err := a.Migrate(ctx, ref, "a"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeMoveBlock measures an uncontended placement
// move-block: move-request, one call, end-request, and the migration
// back and forth it implies.
func BenchmarkRuntimeMoveBlock(b *testing.B) {
	a, remote, ref := benchNodes(b, PolicyPlacement)
	_ = a
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := remote.Move(ctx, ref, func(ctx context.Context, blk *Block) error {
			_, err := Call[int, int](ctx, remote, ref, "Add", 1)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// gobMarshal is the pre-refactor wire.Marshal — a fresh bytes.Buffer
// and gob encoder per message — kept here as the codec baseline.
func gobMarshal(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobUnmarshal(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// codecBodies are the two hot wire bodies the codec satellite tracks:
// the invocation request every call carries, and the snapshot every
// migration batch is made of.
func codecBodies() (*wire.InvokeReq, *wire.Snapshot) {
	req := &wire.InvokeReq{
		Obj:    core.OID{Origin: "node-0", Seq: 12345},
		Method: "Add",
		Arg:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	snap := &wire.Snapshot{
		ID:    core.OID{Origin: "node-0", Seq: 12345},
		Type:  "bench",
		State: bytes.Repeat([]byte{0xAB}, 64),
		Edges: []wire.EdgeRec{
			{Other: core.OID{Origin: "node-1", Seq: 7}, Alliance: 1},
			{Other: core.OID{Origin: "node-2", Seq: 9}, Alliance: 2},
		},
	}
	snap.Pol.Fixed = true
	snap.Pol.Lock = core.LockState{Held: true, Owner: "node-3", Block: 4}
	snap.Pol.OpenMoves = map[core.NodeID]int{"node-1": 2, "node-2": 1}
	return req, snap
}

// BenchmarkRuntimeCodec compares the per-message gob baseline against
// the fast-path codec behind wire.Marshal, on encode+decode round
// trips of the two hot bodies. The append sub-benchmarks measure the
// zero-copy path the rpc layer actually runs — wire.MarshalAppend into
// a reused frame buffer — whose remaining allocs/op are pure decode
// output (the strings, byte slices and maps handed to the caller).
// CI guards every sub-benchmark's allocs/op against
// scripts/alloc-budget.txt (see scripts/check-allocs.sh).
func BenchmarkRuntimeCodec(b *testing.B) {
	req, snap := codecBodies()
	run := func(name string, marshal func(interface{}) ([]byte, error),
		unmarshal func([]byte, interface{}) error, in interface{}, out func() interface{}) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := marshal(in)
				if err != nil {
					b.Fatal(err)
				}
				if err := unmarshal(data, out()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	runAppend := func(name string, in interface{}, out func() interface{}) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var buf []byte
			for i := 0; i < b.N; i++ {
				var err error
				if buf, err = wire.MarshalAppend(buf[:0], in); err != nil {
					b.Fatal(err)
				}
				if err := wire.Unmarshal(buf, out()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("Invoke/gob", gobMarshal, gobUnmarshal, req, func() interface{} { return new(wire.InvokeReq) })
	run("Invoke/pooled", wire.Marshal, wire.Unmarshal, req, func() interface{} { return new(wire.InvokeReq) })
	runAppend("Invoke/append", req, func() interface{} { return new(wire.InvokeReq) })
	run("Snapshot/gob", gobMarshal, gobUnmarshal, snap, func() interface{} { return new(wire.Snapshot) })
	run("Snapshot/pooled", wire.Marshal, wire.Unmarshal, snap, func() interface{} { return new(wire.Snapshot) })
	runAppend("Snapshot/append", snap, func() interface{} { return new(wire.Snapshot) })
	// The load-gossip heartbeat body: ships every Heartbeat per peer,
	// so its append path must stay as lean as the invoke one.
	load := &wire.LoadGossipReq{Load: wire.NodeLoad{
		Node: "node-0", Objects: 4096, Bytes: 1 << 28, RateMilli: 125_000, Capacity: 8192, Seq: 99,
	}}
	run("Load/gob", gobMarshal, gobUnmarshal, load, func() interface{} { return new(wire.LoadGossipReq) })
	run("Load/pooled", wire.Marshal, wire.Unmarshal, load, func() interface{} { return new(wire.LoadGossipReq) })
	runAppend("Load/append", load, func() interface{} { return new(wire.LoadGossipReq) })
	// HomeUpdate with a piggybacked sample: the decode allocates the
	// optional NodeLoad plus its node string on top of the OID list.
	hu := &wire.HomeUpdate{
		Objs: []core.OID{{Origin: "node-0", Seq: 1}, {Origin: "node-0", Seq: 2}},
		At:   "node-1",
		Load: &load.Load,
	}
	runAppend("HomeUpdateLoad/append", hu, func() interface{} { return new(wire.HomeUpdate) })
	// The annotated migration control frames: MigrateBegin opens the
	// staging session, InstallChunk carries each streamed sub-batch.
	// Both tow the migration TraceID as a trailing uvarint, and
	// MigrateBegin additionally carries the byte estimate the target's
	// reservation ledger claims at admission; the append paths must
	// stay as lean as before either annotation.
	begin := &wire.MigrateBeginReq{
		Token: 42, From: "node-0", Trace: 0xABCD1234DEADBEEF, Bytes: 3 << 20,
		Objs: []core.OID{{Origin: "node-0", Seq: 1}, {Origin: "node-0", Seq: 2}},
	}
	runAppend("MigrateBegin/append", begin, func() interface{} { return new(wire.MigrateBeginReq) })
	chunk := &wire.InstallChunkReq{
		Token: 42, From: "node-0", Seq: 3, Trace: 0xABCD1234DEADBEEF,
		Snapshots: []wire.Snapshot{*snap},
	}
	runAppend("Chunk/append", chunk, func() interface{} { return new(wire.InstallChunkReq) })
}

// BenchmarkShedPlan measures the shedder's planning pass alone: the
// pure ranking of every hosted object by coldness × resident bytes
// that shedPass reruns before each shed. No pauses, no RPCs — the cost
// is one store walk plus one sort, and CI guards its allocs/op against
// scripts/alloc-budget.txt.
func BenchmarkShedPlan(b *testing.B) {
	const objects = 2048
	cl := NewLocalCluster()
	n, err := NewNode(Config{ID: "bench", Cluster: cl, Capacity: objects * 2})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	if err := n.RegisterType(newCounterType()); err != nil {
		b.Fatal(err)
	}
	if err := n.EnablePlacement(PlacementConfig{Heartbeat: -1, OriginPass: -1}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < objects; i++ {
		ref, err := n.Create("counter")
		if err != nil {
			b.Fatal(err)
		}
		// Vary sizes and pressure so the sort works on a realistic
		// spread rather than a constant key.
		rec, _ := n.store.Lookup(ref.OID)
		rec.StateBytes = int64(1+i%97) << 10
		if i%3 == 0 {
			n.aff.Record(ref.OID, "peer-1")
		}
	}
	d := n.placementDaemonRef()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan := d.shedPlan(); len(plan) != objects {
			b.Fatalf("plan covered %d of %d objects", len(plan), objects)
		}
	}
}

// BenchmarkRuntimeStoreParallel measures the sharded store under
// parallel hot-path load: each goroutine spins over lookups, location
// hints and invocation acquire/release on its own slice of a shared
// object population. Before the sharding this serialised on one node
// mutex.
func BenchmarkRuntimeStoreParallel(b *testing.B) {
	const oids = 4096
	s := store.New("n0")
	ids := make([]core.OID, oids)
	for i := range ids {
		ids[i] = core.OID{Origin: "n0", Seq: uint64(i + 1)}
		if err := s.Add(store.NewRecord(ids[i], "bench", &benchState{})); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := ids[i%oids]
			i++
			rec, _ := s.Lookup(id)
			if rec == nil {
				b.Fatal("object lost")
			}
			if err := rec.Acquire(ctx); err != nil {
				b.Fatal(err)
			}
			rec.Release()
		}
	})
}

// blobState is the large-object specimen for the streaming-migration
// benchmark: a payload worth chunking.
type blobState struct {
	Blob []byte
}

func newBlobType() *Type[blobState] {
	t := NewType[blobState]("blob")
	HandleFunc(t, "Fill", func(c *Ctx, s *blobState, size int) (int, error) {
		s.Blob = bytes.Repeat([]byte{0x5A}, size)
		return len(s.Blob), nil
	})
	return t
}

// BenchmarkMigrateLargeGroup migrates a 64-object × 1 MiB working set
// back and forth between two nodes and compares the streamed transfer
// (default 256 KiB chunks) against a monolithic configuration that
// ships the whole group in one frame. The reported max-chunk-B metric
// is the coordinator's largest single InstallChunk frame — with
// chunking it stays near max(ChunkBytes, one object) regardless of the
// group, while the monolithic configuration buffers the entire group
// (~64 MiB); B/op shows the corresponding allocation drop.
func BenchmarkMigrateLargeGroup(b *testing.B) {
	const (
		groupSize  = 64
		objectSize = 1 << 20
	)
	run := func(b *testing.B, chunkBytes int) {
		cl := NewLocalCluster()
		bt := newBlobType()
		mk := func(id NodeID) *Node {
			n, err := NewNode(Config{ID: id, Cluster: cl, Migrate: MigrateConfig{ChunkBytes: chunkBytes}})
			if err != nil {
				b.Fatal(err)
			}
			if err := n.RegisterType(bt); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = n.Close() })
			return n
		}
		a, c := mk("a"), mk("b")
		ctx := context.Background()
		root, err := a.Create("blob")
		if err != nil {
			b.Fatal(err)
		}
		group := []Ref{root}
		for i := 1; i < groupSize; i++ {
			m, err := a.Create("blob")
			if err != nil {
				b.Fatal(err)
			}
			group = append(group, m)
			if err := a.Attach(ctx, root, m, NoAlliance); err != nil {
				b.Fatal(err)
			}
		}
		for _, m := range group {
			if _, err := Call[int, int](ctx, a, m, "Fill", objectSize); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Migrate(ctx, root, "b"); err != nil {
				b.Fatal(err)
			}
			if err := a.Migrate(ctx, root, "a"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		maxChunk := a.Stats().StreamMaxChunkBytes
		if s := c.Stats().StreamMaxChunkBytes; s > maxChunk {
			maxChunk = s
		}
		b.ReportMetric(float64(maxChunk), "max-chunk-B")
		if hosted := a.Stats().ObjectsHosted; hosted != groupSize {
			b.Fatalf("group fragmented: %d of %d objects back home", hosted, groupSize)
		}
	}
	b.Run("streamed-256KiB", func(b *testing.B) { run(b, DefaultChunkBytes) })
	b.Run("monolithic", func(b *testing.B) { run(b, math.MaxInt) })
}

// BenchmarkRuntimeWorkingSet measures the distributed closure walk over
// an attached working set of five objects.
func BenchmarkRuntimeWorkingSet(b *testing.B) {
	a, _, root := benchNodes(b, PolicyPlacement)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		m, err := a.Create("bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Attach(ctx, root, m, NoAlliance); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws, err := a.WorkingSet(ctx, root, NoAlliance)
		if err != nil {
			b.Fatal(err)
		}
		if len(ws) != 5 {
			b.Fatalf("working set = %d", len(ws))
		}
	}
}
