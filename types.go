// Package objmig is a distributed-object runtime with migration control
// for non-monolithic applications, reproducing "Object Migration in
// Non-Monolithic Distributed Applications" (Ciupke, Kottmann, Walter;
// ICDCS 1996).
//
// Nodes host objects whose state is a gob-encodable Go struct. Remote
// invocations are trapped, linearised and forwarded to the object's
// current location. Objects migrate under a configurable policy: the
// conventional Emerald-style move, the paper's transient placement, or
// the dynamic comparing strategies. Attachments keep working sets
// together, and alliances restrict their transitiveness so one
// component's migrations cannot silently drag another component's
// objects around.
package objmig

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"

	"objmig/internal/core"
)

// NodeID identifies a node. It aliases the policy-level identifier so
// no conversions are needed anywhere in the stack.
type NodeID = core.NodeID

// AllianceID identifies an alliance (a cooperation context).
type AllianceID = core.AllianceID

// NoAlliance labels moves and attachments issued outside any alliance.
const NoAlliance = core.NoAlliance

// PolicyKind selects the node's move-policy.
type PolicyKind = core.PolicyKind

// Move-policy kinds (see internal/core for semantics).
const (
	PolicySedentary            = core.PolicySedentary
	PolicyConventional         = core.PolicyConventional
	PolicyPlacement            = core.PolicyPlacement
	PolicyCompareNodes         = core.PolicyCompareNodes
	PolicyCompareReinstantiate = core.PolicyCompareReinstantiate
)

// AttachMode selects how transitive attachments are.
type AttachMode = core.AttachMode

// Attachment modes (see internal/core for semantics).
const (
	AttachUnrestricted = core.AttachUnrestricted
	AttachATransitive  = core.AttachATransitive
	AttachExclusive    = core.AttachExclusive
)

// Ref is a global reference to a distributed object. Refs are
// comparable, gob-encodable (they may be stored inside object state)
// and stable across migrations.
type Ref struct {
	OID core.OID // the object's cluster-unique identity (origin, seq)
}

// String renders the reference as origin/seq.
func (r Ref) String() string { return r.OID.String() }

// IsZero reports whether the Ref is the zero reference.
func (r Ref) IsZero() bool { return r.OID == core.OID{} }

// ParseRef parses the origin/seq form produced by Ref.String.
func ParseRef(s string) (Ref, error) {
	i := strings.LastIndexByte(s, '/')
	if i <= 0 || i == len(s)-1 {
		return Ref{}, fmt.Errorf("objmig: malformed ref %q (want origin/seq)", s)
	}
	seq, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil {
		return Ref{}, fmt.Errorf("objmig: malformed ref %q: %w", s, err)
	}
	return Ref{OID: core.OID{Origin: NodeID(s[:i]), Seq: seq}}, nil
}

// Ctx is the environment passed to object methods: the request context
// plus the hosting node, so methods can make nested invocations and
// issue migration primitives.
type Ctx struct {
	ctx  context.Context
	node *Node
	self Ref
}

// Context returns the request context.
func (c *Ctx) Context() context.Context { return c.ctx }

// Node returns the node currently hosting the object.
func (c *Ctx) Node() *Node { return c.node }

// Self returns the reference of the object being invoked.
func (c *Ctx) Self() Ref { return c.self }

// methodFunc is the erased form of a registered method.
type methodFunc func(c *Ctx, inst interface{}, arg []byte) ([]byte, error)

// objectType is the erased view of Type[S] the node works with.
type objectType interface {
	Name() string
	newInstance() interface{}
	method(name string) (methodFunc, bool)
	methodNames() []string
	encodeState(inst interface{}) ([]byte, error)
	decodeState(data []byte) (interface{}, error)
}

// Type describes a registrable object type whose state is S. S must be
// a gob-encodable struct (exported fields carry the state).
type Type[S any] struct {
	name    string
	methods map[string]methodFunc
}

var _ objectType = (*Type[struct{}])(nil)

// NewType declares an object type under the given name. Register it
// with Node.RegisterType on every node that may host instances.
func NewType[S any](name string) *Type[S] {
	return &Type[S]{name: name, methods: make(map[string]methodFunc)}
}

// Name returns the registered type name.
func (t *Type[S]) Name() string { return t.name }

func (t *Type[S]) newInstance() interface{} { return new(S) }

func (t *Type[S]) method(name string) (methodFunc, bool) {
	m, ok := t.methods[name]
	return m, ok
}

func (t *Type[S]) methodNames() []string {
	out := make([]string, 0, len(t.methods))
	for n := range t.methods {
		out = append(out, n)
	}
	return out
}

func (t *Type[S]) encodeState(inst interface{}) ([]byte, error) {
	s, ok := inst.(*S)
	if !ok {
		return nil, fmt.Errorf("objmig: type %s: instance is %T", t.name, inst)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("objmig: linearise %s: %w", t.name, err)
	}
	return buf.Bytes(), nil
}

func (t *Type[S]) decodeState(data []byte) (interface{}, error) {
	s := new(S)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(s); err != nil {
		return nil, fmt.Errorf("objmig: reinstall %s: %w", t.name, err)
	}
	return s, nil
}

// HandleFunc registers a method on the type. The argument and result
// are gob-encoded across the wire; methods execute one at a time per
// object (objects are monitors).
func HandleFunc[S, A, R any](t *Type[S], name string, fn func(c *Ctx, s *S, arg A) (R, error)) {
	if _, dup := t.methods[name]; dup {
		panic(fmt.Sprintf("objmig: method %s.%s registered twice", t.name, name))
	}
	t.methods[name] = func(c *Ctx, inst interface{}, argBytes []byte) ([]byte, error) {
		s, ok := inst.(*S)
		if !ok {
			return nil, fmt.Errorf("objmig: %s.%s: instance is %T", t.name, name, inst)
		}
		var arg A
		if err := gob.NewDecoder(bytes.NewReader(argBytes)).Decode(&arg); err != nil {
			return nil, fmt.Errorf("objmig: %s.%s: decode argument: %w", t.name, name, err)
		}
		res, err := fn(c, s, arg)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&res); err != nil {
			return nil, fmt.Errorf("objmig: %s.%s: encode result: %w", t.name, name, err)
		}
		return buf.Bytes(), nil
	}
}

// Call invokes a method on a (possibly remote) object and decodes its
// result. It is the typed client-side counterpart of HandleFunc.
func Call[A, R any](ctx context.Context, n *Node, ref Ref, method string, arg A) (R, error) {
	var zero R
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&arg); err != nil {
		return zero, fmt.Errorf("objmig: encode argument: %w", err)
	}
	resBytes, err := n.InvokeRaw(ctx, ref, method, buf.Bytes())
	if err != nil {
		return zero, err
	}
	var res R
	if err := gob.NewDecoder(bytes.NewReader(resBytes)).Decode(&res); err != nil {
		return zero, fmt.Errorf("objmig: decode result: %w", err)
	}
	return res, nil
}

// NestedCall is Call for use inside object methods: it derives the
// request context from the method's Ctx.
func NestedCall[A, R any](c *Ctx, ref Ref, method string, arg A) (R, error) {
	return Call[A, R](c.ctx, c.node, ref, method, arg)
}
