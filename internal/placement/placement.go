// Package placement is the cluster placement engine: a decaying view
// of per-node load/capacity samples (fed by the load-gossip protocol)
// plus a pure scoring core that elects the best node for an attachment
// closure as a unit.
//
// The engine closes the gap the affinity tracker leaves open: affinity
// says *who wants* an object, but nothing about whether the wanting
// node can take it. Placement decisions therefore combine three
// signals, all three of which the live runtime shares across its
// migration decision points (the autopilot's election, the origin
// pre-placement pass, and target-side migration admission):
//
//   - Aggregate affinity: the closure's pressure is summed per
//     candidate node, so one hot member cannot drag a group whose
//     combined affinity points elsewhere.
//   - Load headroom: a candidate's score is discounted by its
//     projected utilisation — objects hosted plus the incoming group,
//     over its configured capacity — faded by the sample's age.
//   - Overload veto: a candidate whose projected utilisation exceeds
//     the overload ratio is excluded outright, however hot its
//     affinity. The same predicate runs target-side in migration
//     admission (with the target's authoritative local counts), so a
//     coordinator with a stale view is back-pressured rather than
//     trusted.
//
// See docs/placement.md for the scoring formula and its rationale.
package placement

import (
	"math"
	"sort"
	"sync"
	"time"

	"objmig/internal/core"
)

// Sample is one node's load/capacity observation — the engine's twin
// of wire.NodeLoad, kept dependency-free of the wire layer.
type Sample struct {
	Node      core.NodeID // the sampled node
	Objects   int64       // live hosted objects
	Bytes     int64       // approximate resident state bytes
	RateMilli int64       // smoothed invocations/second ×1000
	Capacity  int64       // configured object capacity; 0 = uncapped
	CapBytes  int64       // configured byte capacity; 0 = uncapped
	Seq       uint64      // sender-monotonic sample ordering
	Health    uint8       // gossiped health state (0 healthy, 1 degraded, 2 critical)
}

// Health states as carried in Sample.Health (mirrors health.State
// without importing it — the placement core stays dependency-light).
const (
	HealthHealthy  uint8 = 0
	HealthDegraded uint8 = 1
	HealthCritical uint8 = 2
)

// View is a node's decaying picture of its peers' load. Samples
// arrive from the load-gossip heartbeat and the HomeUpdate piggyback;
// each is stamped on arrival and fades with age — the headroom
// discount weakens linearly over the TTL and a sample older than the
// TTL is treated as absent (and pruned). Safe for concurrent use.
type View struct {
	ttl time.Duration

	mu    sync.Mutex
	peers map[core.NodeID]viewEntry
}

type viewEntry struct {
	s  Sample
	at time.Time
}

// DefaultTTL is the default freshness window of a view entry.
const DefaultTTL = 5 * time.Second

// NewView returns an empty view whose entries expire after ttl
// (DefaultTTL when ttl <= 0).
func NewView(ttl time.Duration) *View {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &View{ttl: ttl, peers: make(map[core.NodeID]viewEntry)}
}

// TTL returns the view's freshness window.
func (v *View) TTL() time.Duration { return v.ttl }

// Observe folds one sample in. Per node only the highest Seq wins, so
// reordered gossip (a heartbeat overtaking a piggybacked sample) never
// rolls the view backwards; an equal-Seq re-observation refreshes the
// stamp.
func (v *View) Observe(s Sample) {
	if s.Node == "" {
		return
	}
	v.mu.Lock()
	if cur, ok := v.peers[s.Node]; !ok || s.Seq >= cur.s.Seq {
		v.peers[s.Node] = viewEntry{s: s, at: time.Now()}
	}
	v.mu.Unlock()
}

// Get returns the node's sample and its age, if a fresh one is known.
// Stale entries (older than the TTL) are pruned and reported absent.
func (v *View) Get(node core.NodeID) (Sample, time.Duration, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e, ok := v.peers[node]
	if !ok {
		return Sample{}, 0, false
	}
	age := time.Since(e.at)
	if age > v.ttl {
		delete(v.peers, node)
		return Sample{}, 0, false
	}
	return e.s, age, true
}

// Nodes lists the nodes with fresh samples, sorted for determinism.
func (v *View) Nodes() []core.NodeID {
	v.mu.Lock()
	out := make([]core.NodeID, 0, len(v.peers))
	now := time.Now()
	for node, e := range v.peers {
		if now.Sub(e.at) > v.ttl {
			delete(v.peers, node)
			continue
		}
		out = append(out, node)
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PeerAge is one peer's sample staleness in an Ages report.
type PeerAge struct {
	Node core.NodeID
	Age  time.Duration
}

// Ages reports how stale each fresh peer sample is, sorted by node,
// plus the worst age — the gossip-staleness signal the telemetry
// surface exports. self is excluded (its sample is refreshed locally
// every heartbeat and would drag the maximum towards zero). Entries
// past the TTL are pruned, exactly as Get would.
func (v *View) Ages(self core.NodeID) ([]PeerAge, time.Duration) {
	v.mu.Lock()
	now := time.Now()
	out := make([]PeerAge, 0, len(v.peers))
	var max time.Duration
	for node, e := range v.peers {
		age := now.Sub(e.at)
		if age > v.ttl {
			delete(v.peers, node)
			continue
		}
		if node == self {
			continue
		}
		out = append(out, PeerAge{Node: node, Age: age})
		if age > max {
			max = age
		}
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out, max
}

// Snapshot returns every fresh sample, sorted by node (operators,
// tests).
func (v *View) Snapshot() []Sample {
	out := make([]Sample, 0)
	for _, node := range v.Nodes() {
		if s, _, ok := v.Get(node); ok {
			out = append(out, s)
		}
	}
	return out
}

// Group is the aggregate affinity of one attachment closure, the
// scoring input. The closure is scored — and moves — as a unit: a
// Decision names exactly one target for every member.
type Group struct {
	Self    core.NodeID           // the node currently hosting the closure
	Members int                   // closure size in objects
	Bytes   int64                 // approximate resident bytes of the closure
	Local   int64                 // pressure served for callers on Self
	PerNode map[core.NodeID]int64 // aggregate remote pressure per caller node
}

// Total returns the group's total observed pressure.
func (g Group) Total() int64 {
	t := g.Local
	for _, c := range g.PerNode {
		t += c
	}
	return t
}

// Options tunes a Score call. The zero value selects the defaults.
type Options struct {
	// Hysteresis is how many times the winner's discounted score must
	// exceed the strongest rival (the discounted local score or the
	// runner-up candidate) before moving is worth its cost. Values
	// below 1 are raised to 1; zero selects the default 2.
	Hysteresis float64
	// OverloadRatio is the veto threshold: a candidate whose projected
	// utilisation (hosted objects plus the incoming group, over its
	// capacity) exceeds this is excluded. Zero selects the default 1.
	OverloadRatio float64
	// LoadDiscount scales how strongly utilisation discounts a
	// candidate's affinity score. Zero selects the default 1; negative
	// disables the discount (pure affinity with veto only).
	LoadDiscount float64
	// RequireMajority additionally demands the winner hold a strict
	// majority of the group's total pressure — the paper's
	// compare-and-reinstantiate rule lifted to group scoring.
	RequireMajority bool
	// DegradedPenalty multiplies a degraded candidate's discounted
	// score (critical candidates are vetoed outright, not penalised).
	// Zero selects the default 0.25; values are clamped to [0, 1].
	DegradedPenalty float64
}

func (o Options) withDefaults() Options {
	if o.Hysteresis == 0 {
		o.Hysteresis = 2
	} else if o.Hysteresis < 1 {
		o.Hysteresis = 1
	}
	if o.OverloadRatio == 0 {
		o.OverloadRatio = 1
	}
	if o.LoadDiscount == 0 {
		o.LoadDiscount = 1
	} else if o.LoadDiscount < 0 {
		o.LoadDiscount = 0
	}
	if o.DegradedPenalty == 0 {
		o.DegradedPenalty = 0.25
	} else if o.DegradedPenalty < 0 {
		o.DegradedPenalty = 0
	} else if o.DegradedPenalty > 1 {
		o.DegradedPenalty = 1
	}
	return o
}

// Decision is the engine's verdict for one group.
type Decision struct {
	Target   core.NodeID   // elected node (ok=true only)
	Score    float64       // the winner's discounted score
	RunnerUp float64       // the strongest rival's discounted score
	Vetoed   []core.NodeID // candidates excluded by the overload veto
}

// Utilisation returns a node's projected utilisation if the incoming
// group (objects, bytes) landed on it: the *worse* of the object-count
// dimension ((objects+incoming)/capacity) and the byte dimension
// ((bytes+incomingBytes)/capBytes). A dimension whose capacity is
// unset (<= 0) contributes 0, so a node capped only by object count
// behaves exactly as before byte weighting, and vice versa. Fully
// uncapped nodes report 0.
func Utilisation(s Sample, incoming int, incomingBytes int64) float64 {
	var u float64
	if s.Capacity > 0 {
		u = float64(s.Objects+int64(incoming)) / float64(s.Capacity)
	}
	if s.CapBytes > 0 {
		if bu := float64(s.Bytes+incomingBytes) / float64(s.CapBytes); bu > u {
			u = bu
		}
	}
	return u
}

// Overloaded reports the veto predicate: projected utilisation
// strictly above ratio, in either the object-count or the byte
// dimension. This is the exact check migration admission runs
// target-side with its authoritative local counts (ratio <= 0 selects
// the default 1).
func Overloaded(s Sample, incoming int, incomingBytes int64, ratio float64) bool {
	if ratio <= 0 {
		ratio = 1
	}
	return Utilisation(s, incoming, incomingBytes) > ratio
}

// Score elects the best node for the group, or reports (ok=false)
// that it should stay put. The formula, per candidate node c:
//
//	util(c)  = max( (objects(c) + |group|) / capacity(c),
//	                (bytes(c) + groupBytes) / capBytes(c) )
//	           (an uncapped dimension contributes 0)
//	fresh(c) = 1 − age(c)/TTL                          (clamped to [0,1])
//	weight(c) = 1 / (1 + LoadDiscount · util(c) · fresh(c))
//	score(c)  = affinity(c) · weight(c)
//
// Candidates with util(c) > OverloadRatio are vetoed outright
// (regardless of freshness — a fresh-enough sample is the veto's
// evidence; absent samples cannot veto). Health gates the same way:
// a critical candidate is vetoed, a degraded one keeps competing but
// with its score multiplied by DegradedPenalty. The group's current host is
// scored the same way on its Local pressure, but with incoming 0 —
// its hosted count already contains the group — and it is never
// vetoed into moving: an overloaded host's local score is merely
// discounted, so a closure its own traffic dominates stays put. The
// winner must strictly beat, and exceed by the hysteresis factor,
// the strongest rival — the discounted local score or the runner-up
// candidate — mirroring the autopilot's per-object election. Ties
// break towards the lexically smaller node so identical inputs
// always elect identically.
func Score(g Group, v *View, opt Options) (Decision, bool) {
	opt = opt.withDefaults()
	var dec Decision

	// discount returns the headroom weight of a node whose sample is
	// known; incoming is the group's (size, bytes) for candidates and
	// (0, 0) for the current host (which already counts the group among
	// its objects and resident bytes).
	discount := func(s Sample, age time.Duration, incoming int, incomingBytes int64) float64 {
		fresh := 1 - float64(age)/float64(v.TTL())
		if fresh < 0 {
			fresh = 0
		}
		return 1 / (1 + opt.LoadDiscount*Utilisation(s, incoming, incomingBytes)*fresh)
	}

	// Deterministic candidate order.
	cands := make([]core.NodeID, 0, len(g.PerNode))
	for node := range g.PerNode {
		if node != g.Self {
			cands = append(cands, node)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	var best, second float64
	var bestNode core.NodeID
	for _, node := range cands {
		aff := g.PerNode[node]
		if aff <= 0 {
			continue
		}
		w := 1.0 // unknown load: pure affinity, no veto evidence
		if s, age, ok := v.Get(node); ok {
			if s.Health >= HealthCritical {
				// A critical node is sick, not merely full: never elect
				// it, whatever its headroom.
				dec.Vetoed = append(dec.Vetoed, node)
				continue
			}
			if Overloaded(s, g.Members, g.Bytes, opt.OverloadRatio) {
				dec.Vetoed = append(dec.Vetoed, node)
				continue
			}
			w = discount(s, age, g.Members, g.Bytes)
			if s.Health == HealthDegraded {
				w *= opt.DegradedPenalty
			}
		}
		score := float64(aff) * w
		if score > best {
			second = best
			best, bestNode = score, node
		} else if score > second {
			second = score
		}
	}
	if bestNode == "" {
		return dec, false
	}

	localW := 1.0
	if s, age, ok := v.Get(g.Self); ok {
		localW = discount(s, age, 0, 0)
	}
	localScore := float64(g.Local) * localW
	rival := math.Max(localScore, second)

	dec.Target, dec.Score, dec.RunnerUp = bestNode, best, rival
	// Strict domination plus hysteresis, exactly like the autopilot's
	// per-object election (leader must beat every rival, scaled).
	if best <= rival || best < opt.Hysteresis*rival {
		return dec, false
	}
	if opt.RequireMajority {
		// Clear majority over the *raw* pressure — the discount decides
		// where to go, the majority rule decides whether going is
		// justified at all.
		if 2*g.PerNode[bestNode] <= g.Total() {
			return dec, false
		}
	}
	return dec, true
}
