package objmig

import (
	"context"
	"sync"

	"objmig/internal/core"
	"objmig/internal/wire"
)

// recStatus is the lifecycle of a hosted object record.
type recStatus int

const (
	// recActive: the object lives here and accepts invocations.
	recActive recStatus = iota + 1
	// recPaused: the object is being linearised for migration; new
	// invocations wait.
	recPaused
	// recGone: the object left; movedTo names the next hop. The
	// record persists as the forwarding pointer.
	recGone
)

// objRecord is a hosted object: instance, policy state, attachment
// adjacency and the monitor/pause machinery.
type objRecord struct {
	id       core.OID
	typeName string

	mu   sync.Mutex
	cond *sync.Cond // broadcast on every status/busy transition

	inst    interface{}
	pol     core.ObjState
	edges   map[core.OID]map[core.AllianceID]bool
	status  recStatus
	token   uint64 // pause token while recPaused
	movedTo NodeID // next hop while recGone
	busy    bool   // an invocation is executing (objects are monitors)
}

func newObjRecord(id core.OID, typeName string, inst interface{}) *objRecord {
	r := &objRecord{
		id:       id,
		typeName: typeName,
		inst:     inst,
		status:   recActive,
		edges:    make(map[core.OID]map[core.AllianceID]bool),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// acquire waits until the object is free for an invocation and marks it
// busy. It fails with a moved-error when the object leaves while
// waiting, and respects context cancellation.
func (r *objRecord) acquire(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch {
		case r.status == recGone:
			return &wire.RemoteError{Code: wire.CodeMoved, Msg: "object " + r.id.String() + " moved", To: r.movedTo}
		case r.status == recActive && !r.busy:
			r.busy = true
			return nil
		}
		r.cond.Wait()
	}
}

// release ends an invocation.
func (r *objRecord) release() {
	r.mu.Lock()
	r.busy = false
	r.cond.Broadcast()
	r.mu.Unlock()
}

// pause transitions an active, idle object to recPaused for migration
// token. It waits for a running invocation to drain but fails
// immediately if the object is already paused or gone (pause never
// waits on pause, so concurrent group migrations cannot deadlock).
func (r *objRecord) pause(ctx context.Context, token uint64) error {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch r.status {
		case recGone:
			return &wire.RemoteError{Code: wire.CodeMoved, Msg: "object " + r.id.String() + " moved", To: r.movedTo}
		case recPaused:
			return wire.Errorf(wire.CodeDenied, "object %s is being migrated", r.id)
		case recActive:
			if !r.busy {
				r.status = recPaused
				r.token = token
				return nil
			}
		}
		r.cond.Wait()
	}
}

// unpause rolls a pause back (migration aborted).
func (r *objRecord) unpause(token uint64) {
	r.mu.Lock()
	if r.status == recPaused && r.token == token {
		r.status = recActive
		r.token = 0
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// depart finalises a migration: the record becomes a forwarding
// pointer and all waiters are released (they will chase the object).
// The onCommit hook, if non-nil, runs under the record lock just
// before the flip — the node uses it to update its location registry
// while the record still answers, so no reader ever observes
// "record gone" and "registry says here" at the same time.
func (r *objRecord) depart(token uint64, to NodeID, onCommit func()) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.status != recPaused || r.token != token {
		return false
	}
	if onCommit != nil {
		onCommit()
	}
	r.status = recGone
	r.token = 0
	r.movedTo = to
	r.inst = nil
	r.edges = nil
	r.cond.Broadcast()
	return true
}

// snapshotLocked linearises the object. Caller must hold the pause (the
// record must be recPaused) — the instance cannot change concurrently.
func (r *objRecord) snapshot(t objectType) (wire.Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	state, err := t.encodeState(r.inst)
	if err != nil {
		return wire.Snapshot{}, err
	}
	edges := make([]wire.EdgeRec, 0, len(r.edges))
	for other, als := range r.edges {
		for al := range als {
			edges = append(edges, wire.EdgeRec{Other: other, Alliance: al})
		}
	}
	sortEdgeRecs(edges)
	return wire.Snapshot{
		ID:    r.id,
		Type:  r.typeName,
		State: state,
		Pol:   r.pol.Clone(),
		Edges: edges,
	}, nil
}

// sortEdgeRecs orders edges canonically for deterministic wire images.
func sortEdgeRecs(es []wire.EdgeRec) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && edgeLess(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func edgeLess(a, b wire.EdgeRec) bool {
	if a.Other != b.Other {
		return a.Other.Less(b.Other)
	}
	return a.Alliance < b.Alliance
}

// edgeList returns the record's adjacency in canonical order.
func (r *objRecord) edgeList() []wire.EdgeRec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]wire.EdgeRec, 0, len(r.edges))
	for other, als := range r.edges {
		for al := range als {
			out = append(out, wire.EdgeRec{Other: other, Alliance: al})
		}
	}
	sortEdgeRecs(out)
	return out
}

// degree returns the number of distinct attachment partners.
func (r *objRecord) degree() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.edges)
}

// pairedWith reports whether the record has any edge to other.
func (r *objRecord) pairedWith(other core.OID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.edges[other]) > 0
}

// addEdge records half an attachment.
func (r *objRecord) addEdge(other core.OID, al core.AllianceID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addEdgeLocked(other, al)
}

func (r *objRecord) addEdgeLocked(other core.OID, al core.AllianceID) {
	set, ok := r.edges[other]
	if !ok {
		set = make(map[core.AllianceID]bool)
		r.edges[other] = set
	}
	set[al] = true
}

// delEdge removes half an attachment, reporting whether it existed.
func (r *objRecord) delEdge(other core.OID, al core.AllianceID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.delEdgeLocked(other, al)
}

func (r *objRecord) delEdgeLocked(other core.OID, al core.AllianceID) bool {
	set, ok := r.edges[other]
	if !ok || !set[al] {
		return false
	}
	delete(set, al)
	if len(set) == 0 {
		delete(r.edges, other)
	}
	return true
}

// edgeOp runs an edge mutation atomically against a live record: it
// waits out a migration pause (an edge added after the snapshot was
// taken would be lost with the transfer), fails with a redirect when
// the object has left, and otherwise runs op under the record lock.
func (r *objRecord) edgeOp(ctx context.Context, op func() *wire.RemoteError) error {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch r.status {
		case recGone:
			return &wire.RemoteError{Code: wire.CodeMoved, Msg: "object " + r.id.String() + " moved", To: r.movedTo}
		case recActive:
			if re := op(); re != nil {
				return re
			}
			return nil
		}
		r.cond.Wait()
	}
}

// hostedRecord returns the local record only when the object actually
// lives here (active or paused). Forwarding stubs are excluded: client
// fast paths must fall through to the hint chain instead of spinning on
// their own stale stub.
func (n *Node) hostedRecord(id core.OID) (*objRecord, bool) {
	rec, ok := n.record(id)
	if !ok || rec.isGone() {
		return nil, false
	}
	return rec, true
}

// installBatch registers arriving objects from their snapshots, as part
// of migration token. The batch is all-or-nothing: either every
// snapshot is installed or none is.
//
// An existing record may only be replaced if it is a forwarding stub
// (the object is coming back) or was paused by this very migration (a
// same-node reinstall). Replacing a record paused by a *different*
// migration would orphan that migration's pause and duplicate the
// object — the check-then-commit under the node lock, holding every
// replaced record's lock across the swap, closes that race.
func (n *Node) installBatch(snaps []wire.Snapshot, token uint64) error {
	recs := make([]*objRecord, len(snaps))
	for i, snap := range snaps {
		t, ok := n.typeByName(snap.Type)
		if !ok {
			return wire.Errorf(wire.CodeUnknownType, "node %s cannot host type %q", n.id, snap.Type)
		}
		inst, err := t.decodeState(snap.State)
		if err != nil {
			return wire.Errorf(wire.CodeInternal, "reinstall %s: %v", snap.ID, err)
		}
		rec := newObjRecord(snap.ID, snap.Type, inst)
		rec.pol = snap.Pol
		for _, e := range snap.Edges {
			rec.addEdge(e.Other, e.Alliance)
		}
		recs[i] = rec
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	// Check phase: verify every replaced record is replaceable, and
	// hold its lock so its status cannot change before the commit.
	olds := make([]*objRecord, len(snaps))
	var locked []*objRecord
	unlockAll := func() {
		for _, o := range locked {
			o.mu.Unlock()
		}
	}
	for i, snap := range snaps {
		old, exists := n.objs[snap.ID]
		if !exists {
			continue
		}
		old.mu.Lock()
		locked = append(locked, old)
		replaceable := old.status == recGone ||
			(old.status == recPaused && old.token == token)
		if !replaceable {
			unlockAll()
			return wire.Errorf(wire.CodeDenied,
				"object %s is live at %s (concurrent migration)", snap.ID, n.id)
		}
		olds[i] = old
	}
	// Commit phase: swap the records in and turn the replaced ones
	// into wake-up markers pointing here.
	for i, snap := range snaps {
		n.objs[snap.ID] = recs[i]
		if old := olds[i]; old != nil {
			old.status = recGone
			old.token = 0
			old.movedTo = n.id
			old.inst = nil
			old.edges = nil
			old.cond.Broadcast()
		}
	}
	unlockAll()
	installed := make([]Ref, len(snaps))
	for i, snap := range snaps {
		n.reg.Arrived(snap.ID)
		installed[i] = Ref{OID: snap.ID}
	}
	n.stats.objectsInstalled.Add(int64(len(snaps)))
	n.emit(Event{Kind: EventInstall, Objects: installed})
	return nil
}
