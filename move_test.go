package objmig

import (
	"context"
	"errors"
	"testing"

	"objmig/internal/core"
	"objmig/internal/wire"
)

func TestPlacementMoveBlockWinsAndLocks(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Policy: PolicyPlacement})
	ref := mustCreate(t, nodes[0])

	err := nodes[1].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if !b.Granted {
			t.Error("first move not granted")
		}
		if b.At != "n1" {
			t.Errorf("object at %v, want n1", b.At)
		}
		if at := whereIs(t, ctx, nodes[1], ref); at != "n1" {
			t.Errorf("Where = %v, want n1", at)
		}
		// A conflicting move-block from n2 is denied, but its calls
		// work fine (forwarded to n1).
		return nodes[2].Move(ctx, ref, func(ctx context.Context, b2 *Block) error {
			if b2.Granted {
				t.Error("conflicting move was granted over a placement lock")
			}
			v, err := Call[int, int](ctx, nodes[2], ref, "Add", 5)
			if err != nil || v != 5 {
				t.Errorf("loser call = %d, %v", v, err)
			}
			// The object stayed with the winner.
			if at := whereIs(t, ctx, nodes[2], ref); at != "n1" {
				t.Errorf("object stolen to %v", at)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the winner's end-request the lock is gone: n2 can win.
	err = nodes[2].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if !b.Granted {
			t.Error("move after unlock not granted")
		}
		if at := whereIs(t, ctx, nodes[2], ref); at != "n2" {
			t.Errorf("Where = %v, want n2", at)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlacementLockBlocksMigrate(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicyPlacement})
	ref := mustCreate(t, nodes[0])

	err := nodes[1].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if err := nodes[0].Migrate(ctx, ref, "n0"); !errors.Is(err, ErrDenied) {
			t.Errorf("migrate against lock: %v, want ErrDenied", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unlocked now.
	if err := nodes[0].Migrate(ctx, ref, "n0"); err != nil {
		t.Fatalf("migrate after end: %v", err)
	}
}

func TestConventionalMoveThrashes(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Policy: PolicyConventional})
	ref := mustCreate(t, nodes[0])

	err := nodes[1].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if !b.Granted {
			t.Error("first move not granted")
		}
		// Under conventional migration the second mover steals the
		// object mid-block: the thrash of Section 2.4.
		return nodes[2].Move(ctx, ref, func(ctx context.Context, b2 *Block) error {
			if !b2.Granted {
				t.Error("conventional second move was denied")
			}
			if at := whereIs(t, ctx, nodes[2], ref); at != "n2" {
				t.Errorf("object at %v, want stolen to n2", at)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSedentaryMoveDenied(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicySedentary})
	ref := mustCreate(t, nodes[0])

	err := nodes[1].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if b.Granted {
			t.Error("sedentary system granted a move")
		}
		// Calls still work remotely.
		v, err := Call[int, int](ctx, nodes[1], ref, "Add", 1)
		if err != nil || v != 1 {
			t.Errorf("call = %d, %v", v, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A move from the hosting node itself succeeds trivially.
	err = nodes[0].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if !b.Granted || b.At != "n0" {
			t.Errorf("local move: granted=%v at=%v", b.Granted, b.At)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVisitReturnsObject(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicyPlacement})
	ref := mustCreate(t, nodes[0])

	err := nodes[1].Visit(ctx, ref, func(ctx context.Context, b *Block) error {
		if !b.Granted {
			t.Error("visit move not granted")
		}
		if at := whereIs(t, ctx, nodes[1], ref); at != "n1" {
			t.Errorf("during visit, Where = %v", at)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if at := whereIs(t, ctx, nodes[0], ref); at != "n0" {
		t.Fatalf("after visit, Where = %v, want n0 (migrated back)", at)
	}
}

func TestMoveOnFixedObjectDenied(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicyPlacement})
	ref := mustCreate(t, nodes[0])
	if err := nodes[0].Fix(ctx, ref); err != nil {
		t.Fatal(err)
	}
	err := nodes[1].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if b.Granted {
			t.Error("move on fixed object granted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if at := whereIs(t, ctx, nodes[1], ref); at != "n0" {
		t.Fatalf("fixed object moved to %v", at)
	}
}

func TestMoveBodyErrorPropagates(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicyPlacement})
	ref := mustCreate(t, nodes[0])
	boom := errors.New("boom")
	err := nodes[1].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// And the lock was still released by the end-request.
	if err := nodes[0].Migrate(ctx, ref, "n0"); err != nil {
		t.Fatalf("object still locked after failing block: %v", err)
	}
}

func TestCompareNodesStealsOnMajority(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Policy: PolicyCompareNodes})
	ref := mustCreate(t, nodes[0])

	// First move wins 1:0 and the object goes to n1.
	err := nodes[1].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if !b.Granted {
			t.Error("first move not granted")
		}
		// n2's first move ties 1:1 and is denied.
		return nodes[2].Move(ctx, ref, func(ctx context.Context, b2 *Block) error {
			if b2.Granted {
				t.Error("tying move was granted")
			}
			// n2's second concurrent block makes it 2:1: granted,
			// the object is pulled away mid-block (no locks here).
			return nodes[2].Move(ctx, ref, func(ctx context.Context, b3 *Block) error {
				if !b3.Granted {
					t.Error("majority move was denied")
				}
				if at := whereIs(t, ctx, nodes[2], ref); at != "n2" {
					t.Errorf("Where = %v, want n2", at)
				}
				return nil
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompareReinstantiateHandsObjectToMajority(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Policy: PolicyCompareReinstantiate})
	ref := mustCreate(t, nodes[0])

	// n1 wins the object. While n1's block runs, n2 opens a block
	// (denied, 1:1 tie) and keeps it open across n1's end. With n1
	// ended, n2 holds the clear majority of open move-requests (1:0),
	// so the end-request reinstantiates the object at n2.
	done := make(chan error, 1)
	started := make(chan struct{})
	err := nodes[1].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if !b.Granted {
			t.Error("first move not granted")
		}
		go func() {
			done <- nodes[2].Move(ctx, ref, func(ctx context.Context, b2 *Block) error {
				close(started)
				// Wait until the object lands on n2 (reinstantiation
				// is asynchronous).
				for {
					select {
					case <-ctx.Done():
						return ctx.Err()
					default:
					}
					if at := whereIs(t, ctx, nodes[2], ref); at == "n2" {
						return nil
					}
				}
			})
		}()
		<-started
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if at := whereIs(t, ctx, nodes[0], ref); at != "n2" {
		t.Fatalf("Where = %v, want n2 after reinstantiation", at)
	}
}

func TestMoveStayWhenAlreadyLocal(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicyPlacement})
	ref := mustCreate(t, nodes[0])
	err := nodes[0].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if !b.Granted || b.At != "n0" {
			t.Errorf("local move: granted=%v at=%v", b.Granted, b.At)
		}
		// Still locked against others.
		return nodes[1].Move(ctx, ref, func(ctx context.Context, b2 *Block) error {
			if b2.Granted {
				t.Error("lock from a stay-move was not honoured")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMoveDecisionReasonSurfaced(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicyPlacement})
	ref := mustCreate(t, nodes[0])
	err := nodes[0].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		out, err := nodes[1].moveRequest(ctx, &wire.MoveReq{
			Obj: ref.OID, From: "n1", Block: 999,
		})
		if err != nil {
			return err
		}
		if out.resp.Reason != core.ReasonLocked {
			t.Errorf("reason = %v, want locked", out.resp.Reason)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
