package core

// This file implements the attachment machinery of Sections 2.2 and 3.4:
// symmetric, alliance-labelled attachment edges, the three transitivity
// regimes (unrestricted, A-transitive, exclusive) and the closure
// computation that determines the working set actually moved by a
// migration.

// AttachMode selects how transitive attachments are.
type AttachMode int

const (
	// AttachUnrestricted is conventional attachment: the closure
	// follows every edge regardless of the alliance it was issued in.
	// This is the behaviour the paper shows to be devastating in
	// non-monolithic systems (Fig. 16).
	AttachUnrestricted AttachMode = iota + 1
	// AttachATransitive restricts the closure to edges of the
	// alliance the migration-controlling primitive was invoked in
	// (Section 3.4, "attachments are A-transitive").
	AttachATransitive
	// AttachExclusive allows each object at most one attachment
	// partner; additional attach-requests are ignored
	// (first-comes-first-served, Section 3.4).
	AttachExclusive
)

// String returns the paper's name for the mode.
func (m AttachMode) String() string {
	switch m {
	case AttachUnrestricted:
		return "unrestricted"
	case AttachATransitive:
		return "a-transitive"
	case AttachExclusive:
		return "exclusive"
	default:
		return "unknown"
	}
}

// Valid reports whether m names a known mode.
func (m AttachMode) Valid() bool {
	return m >= AttachUnrestricted && m <= AttachExclusive
}

// Edge is one half of a symmetric attachment: the partner object and the
// alliance the attachment was issued in.
type Edge struct {
	To       OID
	Alliance AllianceID
}

// NeighborFunc yields the attachment edges of an object in canonical
// (deterministic) order. The simulator backs it with a central graph;
// the live runtime backs it with per-object adjacency fetched from the
// hosts of the objects involved.
type NeighborFunc func(OID) []Edge

// Closure computes the set of objects kept together with start — the
// working set a migration actually moves. The result always contains
// start, is sorted canonically and depends on the mode:
//
//   - AttachUnrestricted, AttachExclusive: follow every edge.
//   - AttachATransitive: follow only edges labelled with the alliance
//     the move was issued in.
func Closure(mode AttachMode, start OID, al AllianceID, neighbors NeighborFunc) []OID {
	visited := map[OID]bool{start: true}
	queue := []OID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range neighbors(cur) {
			if mode == AttachATransitive && e.Alliance != al {
				continue
			}
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			queue = append(queue, e.To)
		}
	}
	out := make([]OID, 0, len(visited))
	for o := range visited {
		out = append(out, o)
	}
	SortOIDs(out)
	return out
}

// AttachGraph is a centralised attachment graph. The simulator and the
// tests use it directly; the live runtime keeps the same information
// distributed as per-object EdgeSets but funnels every mutation through
// the same admission rule (AdmitAttach).
type AttachGraph struct {
	mode  AttachMode
	edges map[OID]map[OID]map[AllianceID]struct{}
}

// NewAttachGraph returns an empty graph with the given mode. Invalid
// modes are treated as AttachUnrestricted.
func NewAttachGraph(mode AttachMode) *AttachGraph {
	if !mode.Valid() {
		mode = AttachUnrestricted
	}
	return &AttachGraph{
		mode:  mode,
		edges: make(map[OID]map[OID]map[AllianceID]struct{}),
	}
}

// Mode returns the graph's attachment mode.
func (g *AttachGraph) Mode() AttachMode { return g.mode }

// Degree returns the number of distinct attachment partners of o.
func (g *AttachGraph) Degree(o OID) int { return len(g.edges[o]) }

// Attached reports whether a and b are attached in alliance al.
func (g *AttachGraph) Attached(a, b OID, al AllianceID) bool {
	_, ok := g.edges[a][b][al]
	return ok
}

// AdmitAttach applies the mode's admission rule without mutating the
// graph: it reports whether an attach(a, b) would be accepted given the
// current degrees. Self-attachments are never admitted. Under
// AttachExclusive an object may have at most one partner; re-attaching
// the same pair (in any alliance) is admitted.
func (g *AttachGraph) AdmitAttach(a, b OID) bool {
	return admitAttach(g.mode, a, b, g.Degree(a), g.Degree(b),
		len(g.edges[a][b]) > 0)
}

// admitAttach is the pure admission rule shared with the live runtime.
// degA and degB are the numbers of distinct partners of a and b, and
// alreadyPaired reports whether a and b are already attached (in any
// alliance).
func admitAttach(mode AttachMode, a, b OID, degA, degB int, alreadyPaired bool) bool {
	if a == b {
		return false
	}
	if mode != AttachExclusive {
		return true
	}
	if alreadyPaired {
		return true
	}
	return degA == 0 && degB == 0
}

// AdmitAttachRule exposes the admission rule for callers that keep
// adjacency elsewhere (the live runtime).
func AdmitAttachRule(mode AttachMode, a, b OID, degA, degB int, alreadyPaired bool) bool {
	return admitAttach(mode, a, b, degA, degB, alreadyPaired)
}

// Attach records the symmetric attachment of a and b in alliance al.
// It reports whether the edge was added; violations of the mode's
// admission rule are ignored, as the paper specifies ("all additional
// attachments for this object are ignored").
func (g *AttachGraph) Attach(a, b OID, al AllianceID) bool {
	if !g.AdmitAttach(a, b) {
		return false
	}
	g.addHalf(a, b, al)
	g.addHalf(b, a, al)
	return true
}

func (g *AttachGraph) addHalf(from, to OID, al AllianceID) {
	m, ok := g.edges[from]
	if !ok {
		m = make(map[OID]map[AllianceID]struct{})
		g.edges[from] = m
	}
	set, ok := m[to]
	if !ok {
		set = make(map[AllianceID]struct{})
		m[to] = set
	}
	set[al] = struct{}{}
}

// Detach removes the attachment of a and b in alliance al. It reports
// whether such an edge existed.
func (g *AttachGraph) Detach(a, b OID, al AllianceID) bool {
	if !g.Attached(a, b, al) {
		return false
	}
	g.dropHalf(a, b, al)
	g.dropHalf(b, a, al)
	return true
}

func (g *AttachGraph) dropHalf(from, to OID, al AllianceID) {
	set := g.edges[from][to]
	delete(set, al)
	if len(set) == 0 {
		delete(g.edges[from], to)
	}
	if len(g.edges[from]) == 0 {
		delete(g.edges, from)
	}
}

// Neighbors returns the attachment edges of o in canonical order
// (partner OID, then alliance).
func (g *AttachGraph) Neighbors(o OID) []Edge {
	adj := g.edges[o]
	if len(adj) == 0 {
		return nil
	}
	partners := make([]OID, 0, len(adj))
	for p := range adj {
		partners = append(partners, p)
	}
	SortOIDs(partners)
	var out []Edge
	for _, p := range partners {
		als := make([]AllianceID, 0, len(adj[p]))
		for al := range adj[p] {
			als = append(als, al)
		}
		sortAlliances(als)
		for _, al := range als {
			out = append(out, Edge{To: p, Alliance: al})
		}
	}
	return out
}

// Closure computes the working set moved together with start when the
// controlling primitive is issued in alliance al.
func (g *AttachGraph) Closure(start OID, al AllianceID) []OID {
	return Closure(g.mode, start, al, g.Neighbors)
}

// sortAlliances sorts alliance IDs ascending, in place.
func sortAlliances(as []AllianceID) {
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j] < as[j-1]; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}
