// Alliances: a side-by-side demonstration of why attachment
// transitiveness must be restricted in non-monolithic systems
// (Section 3.4 of the paper).
//
// Two applications each attach a front object to two backing objects;
// one backing object is shared. Under conventional (unrestricted)
// attachment the two working sets merge into one component, so either
// application's migration drags everything — including the other
// application's private objects. Under A-transitive attachment each
// alliance's closure stays its own.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"objmig"
)

// Part is a plain object with a name, enough to track who goes where.
type Part struct {
	Name string
}

func newPartType() *objmig.Type[Part] {
	t := objmig.NewType[Part]("part")
	objmig.HandleFunc(t, "Name", func(c *objmig.Ctx, p *Part, _ struct{}) (string, error) {
		return p.Name, nil
	})
	return t
}

// world is the built demo topology:
//
//	appA: frontA - {sharedDB, cacheA}   (alliance A)
//	appB: frontB - {sharedDB, cacheB}   (alliance B)
type world struct {
	nodes     []*objmig.Node
	objs      map[string]objmig.Ref
	allianceA objmig.AllianceID
	allianceB objmig.AllianceID
}

func (w *world) close() {
	for _, n := range w.nodes {
		_ = n.Close()
	}
}

func (w *world) hub() *objmig.Node { return w.nodes[0] }

func buildWorld(ctx context.Context, attach objmig.AttachMode) (*world, error) {
	cluster := objmig.NewLocalCluster()
	w := &world{objs: map[string]objmig.Ref{}}
	for _, id := range []objmig.NodeID{"hub", "site-a", "site-b"} {
		n, err := objmig.NewNode(objmig.Config{
			ID: id, Cluster: cluster,
			Policy: objmig.PolicyConventional, // isolate the attachment effect
			Attach: attach,
		})
		if err != nil {
			return nil, err
		}
		if err := n.RegisterType(newPartType()); err != nil {
			return nil, err
		}
		w.nodes = append(w.nodes, n)
	}
	for _, name := range []string{"frontA", "frontB", "sharedDB", "cacheA", "cacheB"} {
		ref, err := w.hub().Create("part")
		if err != nil {
			return nil, err
		}
		w.objs[name] = ref
	}
	w.allianceA = w.hub().NewAlliance()
	w.allianceB = w.hub().NewAlliance()
	pairs := []struct {
		a, b string
		al   objmig.AllianceID
	}{
		{"frontA", "sharedDB", w.allianceA},
		{"frontA", "cacheA", w.allianceA},
		{"frontB", "sharedDB", w.allianceB},
		{"frontB", "cacheB", w.allianceB},
	}
	for _, p := range pairs {
		if err := w.hub().Attach(ctx, w.objs[p.a], w.objs[p.b], p.al); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func (w *world) printLocations(ctx context.Context) {
	for _, name := range []string{"frontA", "sharedDB", "cacheA", "frontB", "cacheB"} {
		at, err := w.hub().Locate(ctx, w.objs[name])
		if err != nil {
			at = "?"
		}
		fmt.Printf("  %-8s @ %s\n", name, at)
	}
}

func runUnrestricted(ctx context.Context) error {
	w, err := buildWorld(ctx, objmig.AttachUnrestricted)
	if err != nil {
		return err
	}
	defer w.close()

	fmt.Println("=== unrestricted attachment (the conventional danger) ===")
	ws, err := w.hub().WorkingSet(ctx, w.objs["frontA"], objmig.NoAlliance)
	if err != nil {
		return err
	}
	fmt.Printf("closure of frontA spans %d objects (both applications merged!)\n", len(ws))
	// Application A has no idea it is about to move B's cache too.
	if err := w.hub().Migrate(ctx, w.objs["frontA"], "site-a"); err != nil {
		return err
	}
	fmt.Println("after A migrates frontA to site-a:")
	w.printLocations(ctx)
	fmt.Println()
	return nil
}

func runATransitive(ctx context.Context) error {
	w, err := buildWorld(ctx, objmig.AttachATransitive)
	if err != nil {
		return err
	}
	defer w.close()

	fmt.Println("=== A-transitive attachment (the paper's remedy) ===")
	wsA, err := w.hub().WorkingSet(ctx, w.objs["frontA"], w.allianceA)
	if err != nil {
		return err
	}
	fmt.Printf("closure of frontA in alliance A spans %d objects (its own working set)\n", len(wsA))
	// Application A migrates in ITS alliance: sharedDB and cacheA
	// come along; frontB and cacheB stay untouched.
	if err := w.hub().MigrateIn(ctx, w.allianceA, w.objs["frontA"], "site-a"); err != nil {
		return err
	}
	fmt.Println("after A migrates frontA to site-a (alliance-scoped):")
	w.printLocations(ctx)
	// Application B still controls its own set: it pulls the shared
	// database back with ITS working set.
	if err := w.hub().MigrateIn(ctx, w.allianceB, w.objs["frontB"], "site-b"); err != nil {
		return err
	}
	fmt.Println("after B migrates frontB to site-b (alliance-scoped):")
	w.printLocations(ctx)
	fmt.Println()
	return nil
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := runUnrestricted(ctx); err != nil {
		log.Fatal(err)
	}
	if err := runATransitive(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Unrestricted attachment merged both applications' working sets, so one")
	fmt.Println("component's move dragged the other's private objects. A-transitive")
	fmt.Println("attachment kept every alliance's closure its own (Section 3.4).")
}
