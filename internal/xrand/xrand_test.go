package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExpMean(t *testing.T) {
	t.Parallel()
	s := New(1)
	const n = 200000
	const mean = 8.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean) > 0.1 {
		t.Fatalf("Exp(%v) sample mean = %v, want within 0.1", mean, got)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	t.Parallel()
	s := New(2)
	if got := s.Exp(0); got != 0 {
		t.Fatalf("Exp(0) = %v, want 0", got)
	}
	if got := s.Exp(-3); got != 0 {
		t.Fatalf("Exp(-3) = %v, want 0", got)
	}
}

func TestExpCountAtLeastOne(t *testing.T) {
	t.Parallel()
	f := func(seed int64, mean float64) bool {
		s := New(seed)
		m := math.Mod(math.Abs(mean), 20)
		for i := 0; i < 50; i++ {
			if s.ExpCount(m) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpCountMean(t *testing.T) {
	t.Parallel()
	s := New(3)
	const n = 200000
	const mean = 8.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.ExpCount(mean))
	}
	got := sum / n
	// Clamping to >=1 biases the mean slightly upward; allow ~5%.
	if math.Abs(got-mean) > 0.4 {
		t.Fatalf("ExpCount(%v) sample mean = %v, want within 0.4", mean, got)
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Exp(3) != b.Exp(3) {
			t.Fatal("same seed produced different Exp sequences")
		}
		if a.Intn(17) != b.Intn(17) {
			t.Fatal("same seed produced different Intn sequences")
		}
	}
}

func TestForkDeterministicAndConsumptionIndependent(t *testing.T) {
	t.Parallel()
	a, b := New(42), New(42)
	// Consume the parents differently before forking.
	for i := 0; i < 100; i++ {
		a.Float64()
	}
	ca, cb := a.Fork("client-0"), b.Fork("client-0")
	for i := 0; i < 100; i++ {
		if ca.Exp(1) != cb.Exp(1) {
			t.Fatal("Fork not independent of parent consumption state")
		}
	}
}

func TestForkDistinctLabels(t *testing.T) {
	t.Parallel()
	p := New(7)
	a, b := p.Fork("x"), p.Fork("y")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams for distinct labels coincide on %d/100 draws", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	s := New(9)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}
