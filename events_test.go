package objmig

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// recorder collects events thread-safely.
type recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *recorder) observe(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recorder) kinds() []EventKind {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EventKind, len(r.events))
	for i, e := range r.events {
		out[i] = e.Kind
	}
	return out
}

func (r *recorder) count(k EventKind, outcome string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := 0
	for _, e := range r.events {
		if e.Kind == k && (outcome == "" || e.Outcome == outcome) {
			c++
		}
	}
	return c
}

// observedCluster builds a cluster whose every node reports to rec.
func observedCluster(t *testing.T, count int, policy PolicyKind, rec *recorder) []*Node {
	t.Helper()
	cl := NewLocalCluster()
	nodes := make([]*Node, count)
	for i := range nodes {
		n, err := NewNode(Config{
			ID:       NodeID("n" + string(rune('0'+i))),
			Cluster:  cl,
			Policy:   policy,
			Observer: rec.observe,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterType(newCounterType()); err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	})
	return nodes
}

func TestObserverSeesInvocationAndMigration(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	rec := &recorder{}
	nodes := observedCluster(t, 2, PolicyPlacement, rec)
	ref := mustCreate(t, nodes[0])

	if _, err := Call[int, int](ctx, nodes[0], ref, "Add", 1); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Migrate(ctx, ref, "n1"); err != nil {
		t.Fatal(err)
	}
	if rec.count(EventInvoke, "Add") != 1 {
		t.Fatalf("invoke events: %v", rec.kinds())
	}
	if rec.count(EventMigration, "") != 1 {
		t.Fatalf("migration events: %v", rec.kinds())
	}
	if rec.count(EventInstall, "") != 1 {
		t.Fatalf("install events: %v", rec.kinds())
	}
}

func TestObserverSeesContention(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	rec := &recorder{}
	nodes := observedCluster(t, 3, PolicyPlacement, rec)
	ref := mustCreate(t, nodes[0])

	err := nodes[1].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		return nodes[2].Move(ctx, ref, func(ctx context.Context, b2 *Block) error {
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.count(EventMoveDecision, "granted") != 1 {
		t.Fatalf("granted decisions: %v", rec.kinds())
	}
	if rec.count(EventMoveDecision, "denied") != 1 {
		t.Fatalf("denied decisions: %v", rec.kinds())
	}
	if rec.count(EventEnd, "unlocked") != 1 {
		t.Fatalf("unlock events: %v", rec.kinds())
	}
}

func TestObserverSeesFixAndAttach(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	rec := &recorder{}
	nodes := observedCluster(t, 1, PolicyPlacement, rec)
	a := mustCreate(t, nodes[0])
	b := mustCreate(t, nodes[0])
	if err := nodes[0].Fix(ctx, a); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Unfix(ctx, a); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Attach(ctx, a, b, NoAlliance); err != nil {
		t.Fatal(err)
	}
	if rec.count(EventFix, "fixed") != 1 || rec.count(EventFix, "unfixed") != 1 {
		t.Fatalf("fix events: %v", rec.kinds())
	}
	// Two half-edges, one event each.
	if rec.count(EventAttach, "attached") != 2 {
		t.Fatalf("attach events: %v", rec.kinds())
	}
}

func TestEventString(t *testing.T) {
	t.Parallel()
	e := Event{
		Kind: EventMigration, Node: "n0", Target: "n1",
		Objects: []Ref{{}, {}},
	}
	s := e.String()
	for _, want := range []string{"n0", "migration", "-> n1", "2 objects"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Event.String() = %q missing %q", s, want)
		}
	}
	if EventKind(99).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}
