// Package xrand provides seeded, reproducible random-variate streams for
// the simulator and the experiment harness.
//
// Every stream is an independent math/rand generator derived
// deterministically from a master seed and a label, so simulation runs
// are bit-reproducible for a given seed regardless of how many entities
// draw from how many streams and in which interleaving.
package xrand

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Stream is a deterministic source of random variates. A Stream is not
// safe for concurrent use; in the simulator every process owns its own
// Stream (forked from the experiment's master stream).
type Stream struct {
	r  *rand.Rand
	id int64 // lineage identity used by Fork; never mutated
}

// New returns a Stream seeded with the given seed.
func New(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed)), id: seed}
}

// Fork derives a new, statistically independent Stream from s and the
// given label. Forking is deterministic: the same parent seed and label
// always yield the same child stream, independent of how much the parent
// has already been consumed.
func (s *Stream) Fork(label string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	seed := int64(h.Sum64() ^ (uint64(s.id) * 0x9e3779b97f4a7c15))
	return &Stream{r: rand.New(rand.NewSource(seed)), id: seed}
}

// Exp returns an exponentially distributed variate with the given mean.
// A non-positive mean returns 0 (degenerate distribution), which the
// workload model uses to express "immediately".
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.r.ExpFloat64() * mean
}

// ExpCount returns an integer count drawn from an exponential
// distribution with the given mean, rounded to the nearest integer and
// clamped to at least 1. The paper specifies the number of calls N in a
// move-block as exponentially distributed; this is the closest
// integerisation that keeps the mean and guarantees a non-empty block.
func (s *Stream) ExpCount(mean float64) int {
	n := int(math.Floor(s.Exp(mean) + 0.5))
	if n < 1 {
		return 1
	}
	return n
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, like
// math/rand.Intn.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }
