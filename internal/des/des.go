// Package des implements a deterministic, process-oriented
// discrete-event simulation kernel.
//
// Processes are goroutines, but the kernel guarantees that at most one
// goroutine (either the kernel itself or exactly one process) runs at
// any moment: control is handed over explicitly through unbuffered
// channels, so execution is fully deterministic for a given program and
// event schedule. Simultaneous events fire in schedule order (FIFO,
// implemented with a monotonically increasing sequence number).
//
// Simulated time is a dimensionless float64. The paper normalises all
// durations to the mean duration of one remote invocation message, so
// model time deliberately is not a time.Duration.
package des

import (
	"container/heap"
	"fmt"
)

// stopPanic is the sentinel used to unwind a process when the kernel
// shuts down. It is recovered by the process wrapper and never escapes
// the package.
type stopPanic struct{}

// Proc is the handle a simulation process uses to interact with the
// kernel: sleeping, waiting on conditions and reading the clock. A Proc
// must only be used from within the process function it was passed to.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan bool // kernel -> proc; value true means "stop"
	pending bool      // proc has an event in the kernel heap
	ended   bool
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.k.now }

// Kernel returns the kernel the process runs under.
func (p *Proc) Kernel() *Kernel { return p.k }

// event is a scheduled wake-up of a process.
type event struct {
	t   float64
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; construct with NewKernel. A Kernel must be driven from a
// single goroutine; the deterministic handshake protocol is the only
// concurrency control.
type Kernel struct {
	now      float64
	events   eventHeap
	seq      uint64
	yield    chan struct{} // proc -> kernel: "parked or finished"
	live     int           // spawned, not-yet-finished processes
	conds    []*Cond
	stopping bool
	failure  interface{} // process panic, re-raised by the kernel loop
}

// NewKernel returns a fresh kernel at time 0.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() float64 { return k.now }

// Live returns the number of processes that have been spawned and have
// not yet finished.
func (k *Kernel) Live() int { return k.live }

// Spawn creates a new process and schedules its start at the current
// simulated time. It may be called before Run or from inside a running
// process.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan bool)}
	k.live++
	go func() {
		if stop := <-p.resume; stop {
			k.finish(p)
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopPanic); !ok {
					k.failure = fmt.Sprintf("process %q panicked: %v", p.name, r)
				}
			}
			k.finish(p)
		}()
		fn(p)
	}()
	k.schedule(k.now, p)
	return p
}

// finish marks the process ended and returns control to the kernel. It
// runs on the process goroutine as its final act.
func (k *Kernel) finish(p *Proc) {
	p.ended = true
	k.live--
	k.yield <- struct{}{}
}

// schedule enqueues a wake-up for p at time t. A process may have at
// most one pending event; violating this is a kernel-usage bug.
func (k *Kernel) schedule(t float64, p *Proc) {
	if p.pending {
		panic(fmt.Sprintf("des: process %q scheduled twice", p.name))
	}
	p.pending = true
	k.seq++
	heap.Push(&k.events, event{t: t, seq: k.seq, p: p})
}

// park hands control back to the kernel and blocks until the process is
// resumed. If the kernel is shutting down it unwinds the process.
func (p *Proc) park() {
	p.k.yield <- struct{}{}
	if stop := <-p.resume; stop {
		panic(stopPanic{})
	}
}

// Sleep suspends the process for d units of simulated time. Negative
// durations are treated as zero.
func (p *Proc) Sleep(d float64) {
	if p.k.stopping {
		panic(stopPanic{})
	}
	if d < 0 {
		d = 0
	}
	p.k.schedule(p.k.now+d, p)
	p.park()
}

// Yield suspends the process until all events already scheduled for the
// current instant have fired.
func (p *Proc) Yield() { p.Sleep(0) }

// Run executes events until the event queue is empty or the clock would
// exceed until (pass a negative value to run to exhaustion). It returns
// the time of the last executed event. Run re-raises any process panic.
func (k *Kernel) Run(until float64) float64 {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(event)
		if until >= 0 && e.t > until {
			heap.Push(&k.events, e) // the simulation may be resumed later
			k.now = until
			return k.now
		}
		k.now = e.t
		e.p.pending = false
		e.p.resume <- false
		<-k.yield
		if k.failure != nil {
			f := k.failure
			k.failure = nil
			panic(f)
		}
	}
	return k.now
}

// Shutdown unwinds every live process so their goroutines exit. It must
// be called when the kernel is no longer needed; afterwards the kernel
// must not be used again.
func (k *Kernel) Shutdown() {
	k.stopping = true
	for k.live > 0 {
		progressed := false
		for len(k.events) > 0 {
			e := heap.Pop(&k.events).(event)
			if e.p.ended {
				continue
			}
			e.p.pending = false
			e.p.resume <- true
			<-k.yield
			progressed = true
		}
		for _, c := range k.conds {
			waiters := c.waiters
			c.waiters = nil
			for _, w := range waiters {
				if w.ended || w.pending {
					continue
				}
				w.resume <- true
				<-k.yield
				progressed = true
			}
		}
		if !progressed {
			break // no live process is reachable; avoid spinning
		}
	}
	k.conds = nil
}

// Cond is a simulation condition variable: processes Wait on it and are
// woken, in FIFO order at the current instant, by Signal or Broadcast.
type Cond struct {
	k       *Kernel
	waiters []*Proc
}

// NewCond returns a condition variable bound to the kernel.
func (k *Kernel) NewCond() *Cond {
	c := &Cond{k: k}
	k.conds = append(k.conds, c)
	return c
}

// Wait suspends the process until the condition is signalled. As with
// sync.Cond, callers must re-check their predicate in a loop: a
// broadcast wakes every waiter regardless of why it waited.
func (p *Proc) Wait(c *Cond) {
	if p.k.stopping {
		panic(stopPanic{})
	}
	c.waiters = append(c.waiters, p)
	p.park()
}

// Broadcast wakes all current waiters. They run at the current instant,
// in the order they started waiting, after the caller next yields.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		if w.ended {
			continue
		}
		c.k.schedule(c.k.now, w)
	}
	c.waiters = c.waiters[:0]
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	if !w.ended {
		c.k.schedule(c.k.now, w)
	}
}
