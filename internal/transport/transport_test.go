package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// testTransports enumerates both implementations under one test suite.
func testTransports(t *testing.T, run func(t *testing.T, tr Transport)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		t.Parallel()
		run(t, NewNetwork().Transport())
	})
	t.Run("tcp", func(t *testing.T) {
		t.Parallel()
		run(t, TCP{})
	})
}

func TestSendRecv(t *testing.T) {
	t.Parallel()
	testTransports(t, func(t *testing.T, tr Transport) {
		l, err := tr.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := l.Accept()
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			defer c.Close()
			for {
				f, err := c.Recv()
				if err != nil {
					return
				}
				// Echo with a prefix.
				if err := c.Send(append([]byte("echo:"), f...)); err != nil {
					return
				}
			}
		}()

		c, err := tr.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			msg := []byte(fmt.Sprintf("frame-%d", i))
			if err := c.Send(msg); err != nil {
				t.Fatal(err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, append([]byte("echo:"), msg...)) {
				t.Fatalf("frame %d: got %q", i, got)
			}
		}
		c.Close()
		wg.Wait()
	})
}

func TestEmptyAndLargeFrames(t *testing.T) {
	t.Parallel()
	testTransports(t, func(t *testing.T, tr Transport) {
		l, err := tr.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			for {
				f, err := c.Recv()
				if err != nil {
					return
				}
				if err := c.Send(f); err != nil {
					return
				}
			}
		}()
		c, err := tr.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()

		if err := c.Send(nil); err != nil {
			t.Fatal(err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("empty frame echoed as %d bytes", len(got))
		}

		large := bytes.Repeat([]byte{0xAB}, 1<<20)
		if err := c.Send(large); err != nil {
			t.Fatal(err)
		}
		got, err = c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, large) {
			t.Fatal("large frame corrupted")
		}
	})
}

func TestDialUnknownAddress(t *testing.T) {
	t.Parallel()
	if _, err := NewNetwork().Transport().Dial("nowhere"); err == nil {
		t.Fatal("mem dial to unknown address succeeded")
	}
	if _, err := (TCP{}).Dial("127.0.0.1:1"); err == nil {
		t.Fatal("tcp dial to closed port succeeded")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	t.Parallel()
	testTransports(t, func(t *testing.T, tr Transport) {
		l, err := tr.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		accepted := make(chan Conn, 1)
		go func() {
			c, err := l.Accept()
			if err == nil {
				accepted <- c
			}
		}()
		c, err := tr.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		srv := <-accepted
		defer srv.Close()

		done := make(chan error, 1)
		go func() {
			_, err := c.Recv()
			done <- err
		}()
		time.Sleep(10 * time.Millisecond)
		c.Close()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("Recv returned nil after close")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Recv did not unblock on close")
		}
	})
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	t.Parallel()
	testTransports(t, func(t *testing.T, tr Transport) {
		l, err := tr.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := l.Accept()
			done <- err
		}()
		time.Sleep(10 * time.Millisecond)
		l.Close()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("Accept returned nil after close")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Accept did not unblock on close")
		}
	})
}

func TestMemAddressInUse(t *testing.T) {
	t.Parallel()
	tr := NewNetwork().Transport()
	l, err := tr.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("a"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	l.Close()
	// After close the address is free again.
	if _, err := tr.Listen("a"); err != nil {
		t.Fatalf("listen after close: %v", err)
	}
}

func TestMemNetworksIsolated(t *testing.T) {
	t.Parallel()
	n1, n2 := NewNetwork(), NewNetwork()
	if _, err := n1.Transport().Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Transport().Dial("x"); err == nil {
		t.Fatal("networks are not isolated")
	}
}

func TestMemLatency(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	n.SetLatency(50 * time.Millisecond)
	tr := n.Transport()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		f, err := c.Recv()
		if err != nil {
			return
		}
		_ = c.Send(f)
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 90*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~100ms with 50ms latency", d)
	}
}

func TestTCPFrameTooLarge(t *testing.T) {
	t.Parallel()
	tr := TCP{}
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = c.Recv()
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestConcurrentSenders(t *testing.T) {
	t.Parallel()
	testTransports(t, func(t *testing.T, tr Transport) {
		l, err := tr.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		total := 200
		received := make(chan []byte, total)
		go func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			for i := 0; i < total; i++ {
				f, err := c.Recv()
				if err != nil {
					return
				}
				received <- f
			}
		}()
		c, err := tr.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < total/4; i++ {
					if err := c.Send([]byte(fmt.Sprintf("%d-%d", g, i))); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		seen := map[string]bool{}
		for i := 0; i < total; i++ {
			select {
			case f := <-received:
				if seen[string(f)] {
					t.Fatalf("duplicate frame %q", f)
				}
				seen[string(f)] = true
			case <-time.After(5 * time.Second):
				t.Fatalf("only %d/%d frames arrived", i, total)
			}
		}
	})
}
