package objmig

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objmig/internal/core"
	"objmig/internal/jobs"
	"objmig/internal/store"
)

// jobNode builds one placement-enabled node for job tests: fast
// heartbeats so views converge quickly, short migration leases so
// crash recovery resolves within test patience, origin pass off so
// the only migrations are the ones the job under test performs.
func jobNode(t *testing.T, cl *Cluster, id NodeID, capacity int64, obs Observer) *Node {
	t.Helper()
	n, err := NewNode(Config{
		ID: id, Cluster: cl, Capacity: capacity, Observer: obs,
		Migrate: MigrateConfig{SessionTTL: 200 * time.Millisecond, PauseLease: 300 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("node %s: %v", id, err)
	}
	t.Cleanup(func() { _ = n.Close() })
	if err := n.RegisterType(newCounterType()); err != nil {
		t.Fatal(err)
	}
	if err := n.EnablePlacement(PlacementConfig{
		Heartbeat:  20 * time.Millisecond,
		OriginPass: -1,
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

// fullMesh teaches every node the rest of the cluster, so the load
// gossip converges without waiting for organic traffic to reveal
// peers (a LocalCluster routes by ID; the address is informational).
func fullMesh(nodes ...*Node) {
	for _, n := range nodes {
		for _, peer := range nodes {
			if peer.ID() != n.ID() {
				n.AddPeer(peer.ID(), string(peer.ID()))
			}
		}
	}
}

// waitForView blocks until n's placement view holds fresh samples for
// at least peers other nodes — the precondition for any planner run.
func waitForView(t *testing.T, n *Node, peers int) {
	t.Helper()
	d := n.placementDaemonRef()
	if d == nil {
		t.Fatalf("%s: placement not enabled", n.ID())
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := 0
		for _, peer := range d.view.Nodes() {
			if peer != n.ID() {
				got++
			}
		}
		if got >= peers {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: view has %d peers after 10s, want %d", n.ID(), got, peers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitReservationsDrained blocks until every node's admission ledger
// is empty — the "no leaked reservations" invariant after any job run,
// crash included.
func waitReservationsDrained(t *testing.T, nodes ...*Node) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		leaked := ""
		for _, n := range nodes {
			if res := n.resv.Reserved(); res.Objects != 0 || res.Bytes != 0 {
				leaked = fmt.Sprintf("%s holds %d objects / %d bytes", n.ID(), res.Objects, res.Bytes)
			}
		}
		if leaked == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("reservation leaked: %s", leaked)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitUnpaused blocks until no object on n is mid-migration: after a
// coordinator crash the orphaned pauses resolve against their targets
// when the pause lease fires, and only then is the node quiescent.
func waitUnpaused(t *testing.T, n *Node) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		paused := 0
		n.store.Range(func(rec *store.Record) bool {
			rec.Mu.Lock()
			if rec.Status == store.StatusPaused {
				paused++
			}
			rec.Mu.Unlock()
			return true
		})
		if paused == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s still has %d paused objects after 10s", n.ID(), paused)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// hostsOf counts which live nodes host oid right now.
func hostsOf(oid core.OID, nodes []*Node) []NodeID {
	var at []NodeID
	for _, n := range nodes {
		if _, ok := n.store.Hosted(oid); ok {
			at = append(at, n.ID())
		}
	}
	return at
}

// TestDrainJobEmptiesNodeUnderTraffic is the headline e2e: invokers
// hammer every node while a drain job empties one of them. The drained
// node must reach zero hosted objects, every reference must still
// resolve with no update lost, and the directory churn must stay
// within the chase hop budget.
func TestDrainJobEmptiesNodeUnderTraffic(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	cl := NewLocalCluster()
	nodes := []*Node{
		jobNode(t, cl, "a", 32, nil),
		jobNode(t, cl, "b", 32, nil),
		jobNode(t, cl, "c", 32, nil),
		jobNode(t, cl, "d", 32, nil),
	}
	drained := nodes[0]
	fullMesh(nodes...)

	const objects = 16
	refs := make([]Ref, objects)
	var expected [objects]atomic.Int64
	for i := range refs {
		refs[i] = mustCreate(t, drained)
	}
	waitForView(t, drained, 3)

	// Traffic: four workers call through every node, including the one
	// being drained, for the whole run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) + 7))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				obj := r.Intn(objects)
				n := nodes[(w+i)%len(nodes)]
				if _, err := Call[int, int](ctx, n, refs[obj], "Add", 1); err != nil {
					if errors.Is(err, ErrUnreachable) {
						continue // not executed; don't count
					}
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				expected[obj].Add(1)
			}
		}(w)
	}

	// Let the traffic build before draining, so the job runs against a
	// hot cluster rather than an idle one.
	for deadline := time.Now().Add(10 * time.Second); ; {
		var calls int64
		for i := range expected {
			calls += expected[i].Load()
		}
		if calls >= 500 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("traffic never built up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	j, err := drained.NewDrainJob(JobConfig{WaveSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Execute(ctx); err != nil {
		t.Fatalf("drain job: %v (status %+v)", err, j.Status())
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if st := j.Status(); st.State != "done" {
		t.Fatalf("job state %s, want done (%+v)", st.State, st)
	}
	if hosted, _ := drained.store.HostedStats(); hosted != 0 {
		t.Fatalf("drained node still hosts %d objects", hosted)
	}
	if drained.Stats().JobsCompleted != 1 {
		t.Fatalf("JobsCompleted = %d, want 1", drained.Stats().JobsCompleted)
	}
	// Every reference chase-resolves from every node with no update
	// lost, despite the traffic racing the migrations.
	var total int64
	for i, ref := range refs {
		for _, n := range nodes {
			v, err := Call[struct{}, int](ctx, n, ref, "Get", struct{}{})
			if err != nil {
				t.Fatalf("object %d unreachable via %s after drain: %v", i, n.ID(), err)
			}
			if int64(v) != expected[i].Load() {
				t.Fatalf("object %d: value %d, expected %d", i, v, expected[i].Load())
			}
		}
		total += expected[i].Load()
	}
	// The drain moved 16 objects once each; stale hints cost at most a
	// couple of extra hops, so over-budget chases must stay marginal
	// relative to the traffic.
	var over int64
	for _, n := range nodes {
		over += n.Stats().ChasesOverBudget
	}
	if over > total/10+int64(objects) {
		t.Fatalf("ChasesOverBudget = %d across %d calls: directory churn out of bounds", over, total)
	}
	waitReservationsDrained(t, nodes...)
}

// TestChaosJobResumeAfterCoordinatorRestart kills the coordinating
// node mid-wave and resumes the job from its checkpoint on a fresh
// coordinator. The chaos battery's invariants: no object is lost or
// duplicated, no reservation leaks, the resumed job completes, and the
// overloaded donor ends within its capacity.
func TestChaosJobResumeAfterCoordinatorRestart(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	cl := NewLocalCluster()
	// The wave-1 signal: the observer fires when the coordinator
	// announces its second wave, and a helper goroutine kills the
	// coordinator while that wave's migrations are in flight.
	waveSig := make(chan struct{})
	var sigOnce sync.Once
	obs := func(e Event) {
		if e.Kind == EventJob && e.Outcome == "wave" && e.Wave >= 1 {
			sigOnce.Do(func() { close(waveSig) })
		}
	}

	a := jobNode(t, cl, "a", 4, nil) // donor: 12 objects on capacity 4
	b := jobNode(t, cl, "b", 8, nil)
	c := jobNode(t, cl, "c", 8, nil)
	coord := jobNode(t, cl, "coord", 1, obs)
	fullMesh(a, b, c, coord)
	// Ballast pins the coordinator at exactly its capacity: neither a
	// donor (utilisation 1.0 is not over the ratio) nor a receiver
	// (any incoming closure would project past it). It dies with the
	// coordinator and is excluded from the invariants below.
	mustCreate(t, coord)

	const objects = 12
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = mustCreate(t, a)
		if _, err := Call[int, int](ctx, a, refs[i], "Add", i+1); err != nil {
			t.Fatal(err)
		}
	}
	waitForView(t, coord, 3)

	j, err := coord.NewRebalanceJob(ctx, JobConfig{WaveSize: 4, RetryBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Status(); st.Moves < 8 {
		t.Fatalf("rebalance planned %d moves, want >= 8 (donor must shed to capacity)", st.Moves)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = j.Execute(ctx) // dies with the coordinator; the checkpoint is what survives
	}()
	select {
	case <-waveSig:
	case <-ctx.Done():
		t.Fatal("job never reached wave 1")
	}
	_ = coord.Close() // the crash: mid-wave, pauses and sessions in flight
	<-done

	cp := j.Checkpoint()
	if cp.NextWave < 1 {
		t.Fatalf("checkpoint NextWave = %d, want >= 1 (wave 0 completed before the crash)", cp.NextWave)
	}
	if cp.Kind != "rebalance" || cp.WaveSize != 4 || len(cp.Moves) != j.Status().Moves {
		t.Fatalf("checkpoint does not carry the plan: %+v", cp)
	}

	// The cluster heals on its own: orphaned pauses resolve against
	// their targets when the lease fires, orphaned staging sessions
	// expire, and every reservation the dead coordinator claimed is
	// released.
	waitReservationsDrained(t, a, b, c)
	waitUnpaused(t, a)

	// A fresh coordinator resumes from the checkpoint.
	coord2 := jobNode(t, cl, "coord2", 1, nil)
	fullMesh(a, b, c, coord2)
	waitForView(t, coord2, 3)
	j2, err := coord2.ResumeJob(cp, JobConfig{RetryBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Execute(ctx); err != nil {
		t.Fatalf("resumed job: %v (status %+v)", err, j2.Status())
	}
	if st := j2.Status(); st.State != "done" || st.MovesFailed != 0 {
		t.Fatalf("resumed job status %+v, want done with no failures", st)
	}

	// Invariant 1: every object is hosted exactly once across the
	// live nodes — the torn wave neither lost nor duplicated anything.
	live := []*Node{a, b, c, coord2}
	for i, ref := range refs {
		at := hostsOf(ref.OID, live)
		if len(at) != 1 {
			t.Fatalf("object %d hosted at %v, want exactly one node", i, at)
		}
	}
	// Invariant 2: no update was lost — values survive the crash.
	for i, ref := range refs {
		v, err := Call[struct{}, int](ctx, b, ref, "Get", struct{}{})
		if err != nil || v != i+1 {
			t.Fatalf("object %d: value %d, err %v, want %d", i, v, err, i+1)
		}
	}
	// Invariant 3: the donor was actually relieved.
	if hosted := a.store.HostedCount(); hosted > 4 {
		t.Fatalf("donor still hosts %d objects, capacity 4", hosted)
	}
	// Invariant 4: nothing stays reserved once the dust settles.
	waitReservationsDrained(t, live...)
}

// TestJobVetoRetargetUsesLiveView is the regression test for the
// stale-view retry loop: a planned receiver that vetoes at migration
// time must be re-elected against the live view with the refuser
// excluded — not hammered with the full retry budget on the view that
// planned it. The refuser here is a draining node: its gossiped sample
// still advertises plenty of headroom, but its live admission refuses
// everything.
func TestJobVetoRetargetUsesLiveView(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	a := jobNode(t, cl, "a", 8, nil)
	b := jobNode(t, cl, "b", 100, nil) // the planner's obvious pick
	c := jobNode(t, cl, "c", 10, nil)  // the live view's fallback
	fullMesh(a, b, c)

	ref := mustCreate(t, a)
	if _, err := Call[int, int](ctx, a, ref, "Add", 41); err != nil {
		t.Fatal(err)
	}
	waitForView(t, a, 2)

	// b's view sample says "100 slots free"; its live state refuses.
	b.draining.Store(true)
	defer b.draining.Store(false)

	j, err := a.NewDrainJob(JobConfig{WaveRetries: 3, RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pv := j.Preview()
	if len(pv.Moves) != 1 || pv.Moves[0].To != "b" {
		t.Fatalf("plan = %+v, want the lone move aimed at b (the headroom winner)", pv.Moves)
	}
	if err := j.Execute(ctx); err != nil {
		t.Fatalf("drain: %v (status %+v)", err, j.Status())
	}

	if at, err := a.Locate(ctx, ref); err != nil || at != "c" {
		t.Fatalf("object at %v (err %v), want c after the retarget", at, err)
	}
	// Exactly one veto: the executor asked b once, then re-elected. A
	// stale-view retry loop would have burned the whole retry budget
	// against b (3 vetoes) and failed the job.
	if got := b.Stats().PlacementVetoes; got != 1 {
		t.Fatalf("b.PlacementVetoes = %d, want exactly 1 (no stale-view hammering)", got)
	}
	if st := j.Status(); st.State != "done" || st.Retargets != 1 {
		t.Fatalf("status %+v, want done with 1 retarget", st)
	}
	if got := a.Stats().JobRetargets; got != 1 {
		t.Fatalf("JobRetargets = %d, want 1", got)
	}
	if v, err := Call[struct{}, int](ctx, c, ref, "Get", struct{}{}); err != nil || v != 41 {
		t.Fatalf("value after retargeted move: %d, %v", v, err)
	}
}

// TestJobCancelStopsAtWaveBoundary cancels a drain from inside the
// first wave-done event: exactly one wave's moves land, nothing after
// it starts, and the half-drained cluster is fully consistent — every
// object reachable, locations agreed, no reservations held.
func TestJobCancelStopsAtWaveBoundary(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	var jptr atomic.Pointer[Job]
	obs := func(e Event) {
		// Cancelling synchronously inside the wave-done emission beats
		// the executor to the next wave boundary, deterministically.
		if e.Kind == EventJob && e.Outcome == "wave-done" && e.Wave == 0 {
			if j := jptr.Load(); j != nil {
				j.Cancel()
			}
		}
	}
	a := jobNode(t, cl, "a", 16, obs)
	b := jobNode(t, cl, "b", 16, nil)
	c := jobNode(t, cl, "c", 16, nil)
	fullMesh(a, b, c)

	const objects = 8
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = mustCreate(t, a)
		if _, err := Call[int, int](ctx, a, refs[i], "Add", i+1); err != nil {
			t.Fatal(err)
		}
	}
	waitForView(t, a, 2)

	j, err := a.NewDrainJob(JobConfig{WaveSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	jptr.Store(j)
	if err := j.Execute(ctx); err != nil {
		t.Fatalf("cancelled Execute returned %v, want nil", err)
	}

	st := j.Status()
	if st.State != "cancelled" || st.NextWave != 1 || st.MovesDone != 2 {
		t.Fatalf("status %+v, want cancelled after exactly wave 0 (2 moves)", st)
	}
	if a.Stats().JobsCancelled != 1 {
		t.Fatalf("JobsCancelled = %d, want 1", a.Stats().JobsCancelled)
	}
	if hosted := a.store.HostedCount(); hosted != objects-2 {
		t.Fatalf("a hosts %d objects, want %d (one wave drained)", hosted, objects-2)
	}
	// Consistency: everything reachable with the right value, all
	// nodes agreeing where everything is, nothing reserved.
	nodes := []*Node{a, b, c}
	for i, ref := range refs {
		v, err := Call[struct{}, int](ctx, c, ref, "Get", struct{}{})
		if err != nil || v != i+1 {
			t.Fatalf("object %d: value %d, err %v, want %d", i, v, err, i+1)
		}
		var first NodeID
		for k, n := range nodes {
			at, err := n.Locate(ctx, ref)
			if err != nil {
				t.Fatalf("locate %d from %s: %v", i, n.ID(), err)
			}
			if k == 0 {
				first = at
			} else if at != first {
				t.Fatalf("object %d: %s says %v, %s says %v", i, nodes[0].ID(), first, n.ID(), at)
			}
		}
	}
	waitReservationsDrained(t, nodes...)

	// Cancel is terminal: the job cannot be re-run.
	if err := j.Execute(ctx); err == nil {
		t.Fatal("Execute after cancel succeeded")
	}
}

// TestJobPreviewIsPureAndMatchesExecute: a preview takes no pauses and
// charges no reservations, re-planning on an unchanged view reproduces
// it exactly, and executing it lands every closure precisely where the
// preview said it would.
func TestJobPreviewIsPureAndMatchesExecute(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	a := jobNode(t, cl, "a", 16, nil)
	b := jobNode(t, cl, "b", 16, nil)
	c := jobNode(t, cl, "c", 16, nil)
	fullMesh(a, b, c)

	const objects = 6
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = mustCreate(t, a)
	}
	waitForView(t, a, 2)

	j, err := a.NewDrainJob(JobConfig{WaveSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	pv := j.Preview()
	if len(pv.Moves) != objects || len(pv.Unplaced) != 0 {
		t.Fatalf("preview: %d moves, %d unplaced, want %d / 0", len(pv.Moves), len(pv.Unplaced), objects)
	}
	for _, m := range pv.Moves {
		if m.From != "a" || (m.To != "b" && m.To != "c") {
			t.Fatalf("move %+v escapes the cluster", m)
		}
	}
	// Purity: the dry run reserved nothing anywhere and paused
	// nothing — an invoke on a previewed object answers immediately.
	for _, n := range []*Node{a, b, c} {
		if res := n.resv.Reserved(); res.Objects != 0 || res.Bytes != 0 {
			t.Fatalf("preview charged the ledger on %s: %+v", n.ID(), res)
		}
	}
	// The utilisation projection covers the drained node and shows it
	// emptying; receivers only ever gain.
	seenA := false
	for _, d := range pv.Deltas {
		switch d.Node {
		case "a":
			seenA = true
			if d.After >= d.Before || d.After != 0 {
				t.Fatalf("drained node delta %+v, want utilisation projected to 0", d)
			}
		default:
			if d.After < d.Before {
				t.Fatalf("receiver delta %+v lost load in a drain projection", d)
			}
		}
	}
	if !seenA {
		t.Fatal("no delta row for the drained node")
	}

	// Determinism: planning again on the unchanged view reproduces the
	// preview move for move — the preview IS the plan Execute runs.
	j2, err := a.NewDrainJob(JobConfig{WaveSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j2.Preview().Moves, pv.Moves) {
		t.Fatalf("replanned moves differ from preview:\n%+v\nvs\n%+v", j2.Preview().Moves, pv.Moves)
	}
	// Nothing was paused either: an invoke through a previewed object
	// answers immediately. (Probed after the replan — the call itself
	// perturbs the affinity pressure the planners rank by.)
	if _, err := Call[int, int](ctx, a, refs[0], "Add", 1); err != nil {
		t.Fatalf("object unusable after preview: %v", err)
	}

	if err := j.Execute(ctx); err != nil {
		t.Fatalf("execute: %v (status %+v)", err, j.Status())
	}
	if st := j.Status(); st.Retargets != 0 {
		t.Fatalf("unexpected retargets %d: the preview's targets should have admitted", st.Retargets)
	}
	for _, m := range pv.Moves {
		at, err := a.Locate(ctx, Ref{OID: m.Anchor})
		if err != nil || at != m.To {
			t.Fatalf("anchor %s at %v (err %v), preview promised %v", m.Anchor, at, err, m.To)
		}
	}
}

// TestJobsDebugEndpoint drives the whole HTTP surface objmig-admin
// wraps: POST starts a drain, GET reports it greppably through to the
// terminal state, cancel validates its id, and garbage is rejected.
func TestJobsDebugEndpoint(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	a := jobNode(t, cl, "a", 16, nil)
	b := jobNode(t, cl, "b", 16, nil)
	fullMesh(a, b)

	const objects = 4
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = mustCreate(t, a)
	}
	waitForView(t, a, 1)

	srv := httptest.NewServer(a.MetricsHandler())
	defer srv.Close()
	post := func(form url.Values) (int, string) {
		t.Helper()
		resp, err := http.PostForm(srv.URL+"/debug/jobs", form)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := post(url.Values{"action": {"frobnicate"}}); code != http.StatusBadRequest {
		t.Fatalf("bad action: status %d, want 400", code)
	}
	if code, _ := post(url.Values{"action": {"cancel"}, "id": {"999"}}); code != http.StatusNotFound {
		t.Fatalf("cancel unknown id: status %d, want 404", code)
	}

	code, body := post(url.Values{"action": {"drain"}})
	if code != http.StatusOK || !strings.HasPrefix(body, "job ") {
		t.Fatalf("drain start: %d %q", code, body)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/debug/jobs")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		listing := string(b)
		if !strings.Contains(listing, "node a: ") {
			t.Fatalf("listing missing header: %q", listing)
		}
		if strings.Contains(listing, "state=done") {
			if !strings.Contains(listing, "kind=drain") || !strings.Contains(listing, "trace=") {
				t.Fatalf("terminal listing missing fields: %q", listing)
			}
			break
		}
		if strings.Contains(listing, "state=failed") {
			t.Fatalf("endpoint drain failed: %q", listing)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not terminal: %q", listing)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if hosted, _ := a.store.HostedStats(); hosted != 0 {
		t.Fatalf("node still hosts %d objects after endpoint drain", hosted)
	}
	if err := ctx.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeJobValidation: a checkpoint with an unknown kind is
// rejected, and a well-formed one preserves its wave geometry.
func TestResumeJobValidation(t *testing.T) {
	t.Parallel()
	cl := NewLocalCluster()
	a := jobNode(t, cl, "a", 16, nil)
	if _, err := a.ResumeJob(jobs.Checkpoint{Kind: "frobnicate", WaveSize: 4}, JobConfig{}); err == nil {
		t.Fatal("resume accepted an unknown kind")
	}
	j, err := a.ResumeJob(jobs.Checkpoint{Kind: "drain", WaveSize: 7, NextWave: 2}, JobConfig{WaveSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	cp := j.Checkpoint()
	if cp.WaveSize != 7 || cp.NextWave != 2 {
		t.Fatalf("resume rewrote the wave geometry: %+v (a resumed job must keep the checkpoint's WaveSize)", cp)
	}
}

// TestJobCheckpointDuringRetarget is the -race regression for the
// retarget write: Checkpoint and Preview copy the plan's moves under
// the job mutex while executeMove re-points a vetoed move's To field,
// so the write must hold the same mutex. The scenario forces a
// retarget (the planned receiver drains and vetoes) while a second
// goroutine checkpoints in a tight loop for the whole execution.
func TestJobCheckpointDuringRetarget(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	a := jobNode(t, cl, "a", 8, nil)
	b := jobNode(t, cl, "b", 100, nil) // planned receiver, vetoes live
	c := jobNode(t, cl, "c", 10, nil)  // retarget fallback
	fullMesh(a, b, c)

	ref := mustCreate(t, a)
	if _, err := Call[int, int](ctx, a, ref, "Add", 1); err != nil {
		t.Fatal(err)
	}
	waitForView(t, a, 2)
	b.draining.Store(true)
	defer b.draining.Store(false)

	j, err := a.NewDrainJob(JobConfig{WaveRetries: 3, RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var snaps atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				cp := j.Checkpoint()
				pv := j.Preview()
				snaps.Add(int64(len(cp.Moves) + len(pv.Moves)))
			}
		}
	}()
	err = j.Execute(ctx)
	close(stop)
	if err != nil {
		t.Fatalf("drain: %v (status %+v)", err, j.Status())
	}
	if st := j.Status(); st.Retargets != 1 {
		t.Fatalf("status %+v, want exactly 1 retarget (the race under test needs one)", st)
	}
	if snaps.Load() == 0 {
		t.Fatal("checkpoint loop never observed the plan")
	}
}

// TestPinJobVetoDoesNotRetarget: a pin's target is the point of the
// job, so a veto by that target must not re-elect a substitute — the
// move retries the named node, exhausts its budget and fails, leaving
// the closure where it was.
func TestPinJobVetoDoesNotRetarget(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	a := jobNode(t, cl, "a", 16, nil)
	b := jobNode(t, cl, "b", 16, nil) // the pin target, refusing inbound
	c := jobNode(t, cl, "c", 16, nil) // the substitute a retarget would pick
	fullMesh(a, b, c)

	ref := mustCreate(t, a)
	if _, err := Call[int, int](ctx, a, ref, "Add", 7); err != nil {
		t.Fatal(err)
	}
	waitForView(t, a, 2)
	b.draining.Store(true)
	defer b.draining.Store(false)

	j, err := a.NewPinJob(ctx, JobConfig{WaveRetries: 2, RetryBackoff: 5 * time.Millisecond}, "b", []Ref{ref})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Execute(ctx); err == nil {
		t.Fatal("pin onto a refusing target succeeded, want failure")
	}
	st := j.Status()
	if st.State != "failed" || st.MovesFailed != 1 || st.Retargets != 0 {
		t.Fatalf("status %+v, want failed with 1 failed move and 0 retargets", st)
	}
	if at, err := a.Locate(ctx, ref); err != nil || at != "a" {
		t.Fatalf("object at %v (err %v), want still at a — a vetoed pin must not migrate elsewhere", at, err)
	}
}

// TestJobExecuteAfterPrestartCancel: cancelling a job that never ran
// puts it in Cancelled, and a later Execute honours Execute's contract
// — a job ending Cancelled returns nil — without running any moves.
// (Cancelling a job that DID run stays an error on re-Execute; see
// TestJobCancelStopsAtWaveBoundary.)
func TestJobExecuteAfterPrestartCancel(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	a := jobNode(t, cl, "a", 16, nil)
	b := jobNode(t, cl, "b", 16, nil)
	fullMesh(a, b)
	ref := mustCreate(t, a)
	waitForView(t, a, 1)

	j, err := a.NewDrainJob(JobConfig{})
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	if err := j.Execute(ctx); err != nil {
		t.Fatalf("Execute after pre-start cancel: %v, want nil", err)
	}
	if st := j.Status(); st.State != "cancelled" || st.MovesDone != 0 {
		t.Fatalf("status %+v, want cancelled with no moves run", st)
	}
	if at, err := a.Locate(ctx, ref); err != nil || at != "a" {
		t.Fatalf("object at %v (err %v): a cancelled job must not have moved it", at, err)
	}
	if got := a.Stats().JobsCancelled; got != 1 {
		t.Fatalf("JobsCancelled = %d, want 1 (no double count)", got)
	}
}

// TestJobTableRetention: terminal jobs past the retention window are
// evicted as new jobs register, and non-terminal jobs survive the
// pruning no matter how old they are.
func TestJobTableRetention(t *testing.T) {
	t.Parallel()
	cl := NewLocalCluster()
	a := jobNode(t, cl, "a", 16, nil)

	keep, err := a.NewDrainJob(JobConfig{}) // stays Planned: never evicted
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < jobRetention+10; i++ {
		j, err := a.NewDrainJob(JobConfig{})
		if err != nil {
			t.Fatal(err)
		}
		j.Cancel() // immediately terminal
	}
	js := a.Jobs()
	if len(js) > jobRetention {
		t.Fatalf("registry holds %d jobs, want <= %d", len(js), jobRetention)
	}
	if _, ok := a.JobByID(keep.ID()); !ok {
		t.Fatalf("planned job %d was evicted; only terminal jobs may be pruned", keep.ID())
	}
}

// TestPinJobPlansRealBytes: the pin planner's byte-utilisation guard
// must see the anchors' real resident footprint — fetched from the
// hosting node's inventory — not zero. A target whose byte capacity
// the closure exceeds refuses it at planning time.
func TestPinJobPlansRealBytes(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	a := jobNode(t, cl, "a", 16, nil)
	b := jobNode(t, cl, "b", 16, nil)
	// The pin target: plenty of object slots, a 1-byte budget.
	c, err := NewNode(Config{ID: "c", Cluster: cl, Capacity: 16, CapacityBytes: 1,
		Migrate: MigrateConfig{SessionTTL: 200 * time.Millisecond, PauseLease: 300 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := c.RegisterType(newCounterType()); err != nil {
		t.Fatal(err)
	}
	if err := c.EnablePlacement(PlacementConfig{Heartbeat: 20 * time.Millisecond, OriginPass: -1}); err != nil {
		t.Fatal(err)
	}
	fullMesh(a, b, c)

	// Host the anchor on b via a real migration, so b's record carries
	// the snapshot's StateBytes.
	ref := mustCreate(t, a)
	if _, err := Call[int, int](ctx, a, ref, "Add", 42); err != nil {
		t.Fatal(err)
	}
	if err := a.Migrate(ctx, ref, "b"); err != nil {
		t.Fatal(err)
	}
	waitForView(t, a, 2)

	j, err := a.NewPinJob(ctx, JobConfig{}, "c", []Ref{ref})
	if err != nil {
		t.Fatal(err)
	}
	// With the real footprint the projection exceeds c's 1-byte budget
	// and the planner refuses the anchor up front. A Bytes-0 closure
	// would have admitted it, deferring the veto to execution-time
	// admission where it only surfaces as retries and a failed job.
	pv := j.Preview()
	if len(pv.Moves) != 0 {
		t.Fatalf("plan admitted %+v onto a 1-byte target; the byte guard saw Bytes 0", pv.Moves)
	}
	if len(pv.Unplaced) != 1 || pv.Unplaced[0].OID != ref.OID {
		t.Fatalf("unplaced = %+v, want the over-budget anchor", pv.Unplaced)
	}
}
