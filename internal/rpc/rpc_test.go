package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"objmig/internal/core"
	"objmig/internal/transport"
	"objmig/internal/wire"
)

// echoHandler replies with the request payload; payload "fail" returns
// a typed error; "boom" a plain error; "slow" blocks until the context
// dies.
func echoHandler(ctx context.Context, kind wire.Kind, body, dst []byte) ([]byte, error) {
	var req wire.PingReq
	if err := wire.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	switch req.Payload {
	case "fail":
		return nil, wire.Errorf(wire.CodeFixed, "nope")
	case "boom":
		return nil, errors.New("plain failure")
	case "slow":
		<-ctx.Done()
		return nil, ctx.Err()
	default:
		return wire.MarshalAppend(dst, wire.PingResp{Payload: req.Payload})
	}
}

// ping round-trips one payload through the pool.
func ping(pool *Pool, addr, payload string) (string, error) {
	var resp wire.PingResp
	err := pool.Call(context.Background(), addr, wire.KPing, &wire.PingReq{Payload: payload}, &resp)
	return resp.Payload, err
}

// pipe builds a served listener and a pool on a fresh in-memory
// network, returning the address.
func pipe(t *testing.T, h Handler) (*Server, *Pool, string) {
	t.Helper()
	tr := transport.NewNetwork().Transport()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, h)
	pool := NewPool(tr)
	t.Cleanup(func() {
		_ = pool.Close()
		_ = srv.Close()
	})
	return srv, pool, l.Addr()
}

func TestCallRoundTrip(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	res, err := ping(pool, addr, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if res != "hello" {
		t.Fatalf("res = %q", res)
	}
}

func TestTypedErrorCrossesWire(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	_, err := ping(pool, addr, "fail")
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a RemoteError", err)
	}
	if re.Code != wire.CodeFixed || re.Msg != "nope" {
		t.Fatalf("remote error = %+v", re)
	}
}

func TestPlainErrorBecomesInternal(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	_, err := ping(pool, addr, "boom")
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeInternal {
		t.Fatalf("error = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := fmt.Sprintf("msg-%d", i)
			res, err := ping(pool, addr, msg)
			if err != nil {
				errs <- err
				return
			}
			if res != msg {
				errs <- fmt.Errorf("mismatched response %q for %q", res, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestContextCancellation(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := pool.Call(ctx, addr, wire.KPing, &wire.PingReq{Payload: "slow"}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation took far too long")
	}
	// The peer must still work for subsequent calls.
	res, err := ping(pool, addr, "after")
	if err != nil || res != "after" {
		t.Fatalf("call after cancellation: %q, %v", res, err)
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	t.Parallel()
	srv, pool, addr := pipe(t, echoHandler)
	done := make(chan error, 1)
	go func() {
		_, err := ping(pool, addr, "slow")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	_ = srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending call succeeded across server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call not failed by server close")
	}
}

func TestPoolRedialsAfterPeerDeath(t *testing.T) {
	t.Parallel()
	tr := transport.NewNetwork().Transport()
	l, err := tr.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, echoHandler)
	pool := NewPool(tr)
	defer pool.Close()

	if _, err := ping(pool, "svc", "a"); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	// First call after death may fail while the dead peer is evicted.
	_, _ = ping(pool, "svc", "b")

	l2, err := tr.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := Serve(l2, echoHandler)
	defer srv2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := ping(pool, "svc", "c")
		if err == nil && res == "c" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClientOnlyPeerRejectsRequests(t *testing.T) {
	t.Parallel()
	tr := transport.NewNetwork().Transport()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	// The "server" here dials back through the accepted conn.
	conns := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			conns <- c
		}
	}()
	clientConn, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	client := NewPeer(clientConn, nil) // client-only: no handler
	defer client.Close()
	serverSide := NewPeer(<-conns, echoHandler)
	defer serverSide.Close()

	err = serverSide.Call(context.Background(), wire.KPing, &wire.PingReq{Payload: "x"}, nil)
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("err = %v, want CodeBadRequest", err)
	}
}

func TestInvalidKindRejected(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	err := pool.Call(context.Background(), addr, wire.Kind(99), &wire.PingReq{Payload: "x"}, nil)
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("err = %v, want CodeBadRequest", err)
	}
}

func TestPoolCloseRejectsCalls(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	_ = pool.Close()
	if _, err := ping(pool, addr, "x"); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("err = %v, want ErrPeerClosed", err)
	}
}

func TestCallsOverTCP(t *testing.T) {
	t.Parallel()
	tr := transport.TCP{}
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, echoHandler)
	defer srv.Close()
	pool := NewPool(tr)
	defer pool.Close()
	for i := 0; i < 20; i++ {
		msg := fmt.Sprintf("tcp-%d", i)
		res, err := ping(pool, l.Addr(), msg)
		if err != nil || res != msg {
			t.Fatalf("call %d: %q, %v", i, res, err)
		}
	}
}

// TestNilResponseBody: a handler returning (nil, nil) sends an empty
// success payload instead of crashing the serve goroutine; callers
// that discard the response (resp == nil) see plain success.
func TestNilResponseBody(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, func(ctx context.Context, kind wire.Kind, body, dst []byte) ([]byte, error) {
		return nil, nil
	})
	if err := pool.Call(context.Background(), addr, wire.KPing, &wire.PingReq{}, nil); err != nil {
		t.Fatalf("nil-body call failed: %v", err)
	}
	// Asking to decode an empty body is the caller's error, reported
	// cleanly.
	var resp wire.PingResp
	if err := pool.Call(context.Background(), addr, wire.KPing, &wire.PingReq{}, &resp); err == nil {
		t.Fatal("decoding an empty body unexpectedly succeeded")
	}
}

// --- Frame-recycling stress ---

// checksum is the integrity check of the reuse stress test: any
// use-after-recycle corruption of a pooled frame flips payload bytes
// and breaks it.
func checksum(b []byte) uint32 {
	h := fnv.New32a()
	_, _ = h.Write(b)
	return h.Sum32()
}

// payloadFor deterministically fills a payload from a seed, so both
// ends of a call can regenerate the exact expected bytes.
func payloadFor(seed, n int) []byte {
	b := make([]byte, n)
	x := uint32(seed)*2654435761 + 12345
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
	return b
}

// stressHandler verifies the request checksum and answers with a fresh
// deterministic payload (seed+1) plus its checksum. KInvoke exercises
// the fast-path codec, KPing the gob fallback; payload "err" exercises
// the error frame path.
func stressHandler(ctx context.Context, kind wire.Kind, body, dst []byte) ([]byte, error) {
	switch kind {
	case wire.KInvoke:
		var req wire.InvokeReq
		if err := wire.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		if req.Method != fmt.Sprint(checksum(req.Arg)) {
			return nil, wire.Errorf(wire.CodeBadRequest, "request checksum mismatch (%d bytes)", len(req.Arg))
		}
		out := payloadFor(int(req.Obj.Seq)+1, len(req.Arg))
		return wire.MarshalAppend(dst, &wire.InvokeResp{Result: out, At: core.NodeID(fmt.Sprint(checksum(out)))})
	case wire.KPing:
		var req wire.PingReq
		if err := wire.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		if req.Payload == "err" {
			return nil, wire.Errorf(wire.CodeDenied, "requested error")
		}
		return wire.MarshalAppend(dst, wire.PingResp{Payload: req.Payload})
	default:
		return nil, wire.Errorf(wire.CodeBadRequest, "kind %v", kind)
	}
}

// stressCalls hammers one peer with mixed-size checksummed calls.
// Every response is regenerated independently and compared
// byte-for-byte, so a frame recycled while still referenced — by
// either end, in either direction — shows up as a checksum or payload
// mismatch (and usually as a race-detector report first).
func stressCalls(t *testing.T, p *Peer, worker, iters int) {
	t.Helper()
	sizes := []int{0, 7, 100, 600, 5000, 70000, 300000}
	for i := 0; i < iters; i++ {
		seed := worker*1_000_000 + i*2
		switch i % 5 {
		case 4: // gob fallback body
			var resp wire.PingResp
			msg := fmt.Sprintf("gob-%d", seed)
			if i%10 == 9 {
				err := p.Call(context.Background(), wire.KPing, &wire.PingReq{Payload: "err"}, &resp)
				var re *wire.RemoteError
				if !errors.As(err, &re) || re.Code != wire.CodeDenied {
					t.Errorf("worker %d call %d: err = %v, want CodeDenied", worker, i, err)
					return
				}
				continue
			}
			if err := p.Call(context.Background(), wire.KPing, &wire.PingReq{Payload: msg}, &resp); err != nil || resp.Payload != msg {
				t.Errorf("worker %d call %d: %q, %v", worker, i, resp.Payload, err)
				return
			}
		default: // fast-path body, mixed sizes
			n := sizes[(worker+i)%len(sizes)]
			arg := payloadFor(seed, n)
			req := &wire.InvokeReq{
				Obj:    core.OID{Origin: "stress", Seq: uint64(seed)},
				Method: fmt.Sprint(checksum(arg)),
				Arg:    arg,
			}
			var resp wire.InvokeResp
			if err := p.Call(context.Background(), wire.KInvoke, req, &resp); err != nil {
				t.Errorf("worker %d call %d (%d bytes): %v", worker, i, n, err)
				return
			}
			want := payloadFor(seed+1, n)
			if string(resp.At) != fmt.Sprint(checksum(resp.Result)) || !bytes.Equal(resp.Result, want) {
				t.Errorf("worker %d call %d (%d bytes): response corrupted", worker, i, n)
				return
			}
		}
	}
}

// TestFrameReuseStress drives concurrent calls in both directions over
// one connection — every frame drawn from and returned to the shared
// pool — and checks payload integrity end to end. Run with -race, this
// is the buffer-ownership regression test for the zero-copy pipeline:
// a frame recycled early (or written after Put) corrupts a checksummed
// payload or trips the race detector.
func TestFrameReuseStress(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		tr   transport.Transport
	}{
		{"mem", transport.NewNetwork().Transport()},
		{"tcp", transport.TCP{}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			l, err := tc.tr.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			conns := make(chan transport.Conn, 1)
			go func() {
				c, err := l.Accept()
				if err == nil {
					conns <- c
				}
			}()
			dialed, err := tc.tr.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			a := NewPeer(dialed, stressHandler)
			b := NewPeer(<-conns, stressHandler)
			defer a.Close()
			defer b.Close()
			_ = l.Close()

			const workers, iters = 6, 120
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				for _, p := range []*Peer{a, b} {
					wg.Add(1)
					go func(p *Peer, w int) {
						defer wg.Done()
						stressCalls(t, p, w, iters)
					}(p, w)
				}
			}
			wg.Wait()
		})
	}
}
