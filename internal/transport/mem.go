package transport

import (
	"fmt"
	"sync"
	"time"

	"objmig/internal/framebuf"
)

// Network is an in-process fabric of memTransport endpoints. Each test
// or example creates its own Network; there is no global state.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	nextAuto  int
	latency   time.Duration
}

// NewNetwork returns an empty in-memory network.
func NewNetwork() *Network {
	return &Network{listeners: make(map[string]*memListener)}
}

// SetLatency delays every frame delivery by d, simulating a slow
// network. It applies to frames sent after the call.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// Transport returns a Transport view of the network.
func (n *Network) Transport() Transport { return memTransport{n: n} }

type memTransport struct{ n *Network }

var _ Transport = memTransport{}

func (t memTransport) Listen(addr string) (Listener, error) {
	t.n.mu.Lock()
	defer t.n.mu.Unlock()
	if addr == "" {
		t.n.nextAuto++
		addr = fmt.Sprintf("mem-%d", t.n.nextAuto)
	}
	if _, taken := t.n.listeners[addr]; taken {
		return nil, fmt.Errorf("transport: address %q in use", addr)
	}
	l := &memListener{
		n:      t.n,
		addr:   addr,
		accept: make(chan Conn, 16),
		done:   make(chan struct{}),
	}
	t.n.listeners[addr] = l
	return l, nil
}

func (t memTransport) Dial(addr string) (Conn, error) {
	t.n.mu.Lock()
	l, ok := t.n.listeners[addr]
	latency := t.n.latency
	t.n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	a, b := newMemPipe(t.n, latency)
	select {
	case l.accept <- b:
		return a, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

type memListener struct {
	n      *Network
	addr   string
	accept chan Conn
	done   chan struct{}
	once   sync.Once
}

var _ Listener = (*memListener)(nil)

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Addr() string { return l.addr }

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.n.mu.Lock()
		delete(l.n.listeners, l.addr)
		l.n.mu.Unlock()
	})
	return nil
}

// memConn is one end of an in-memory pipe.
type memConn struct {
	n       *Network
	latency time.Duration
	out     chan []byte
	in      chan []byte
	done    chan struct{} // shared between both ends
	once    *sync.Once
}

var _ Conn = (*memConn)(nil)

// newMemPipe builds a connected pair of memConns.
func newMemPipe(n *Network, latency time.Duration) (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &memConn{n: n, latency: latency, out: ab, in: ba, done: done, once: once}
	b := &memConn{n: n, latency: latency, out: ba, in: ab, done: done, once: once}
	return a, b
}

func (c *memConn) Send(frame []byte) error {
	if c.latency > 0 {
		t := time.NewTimer(c.latency)
		select {
		case <-t.C:
		case <-c.done:
			t.Stop()
			return ErrClosed
		}
	}
	// Copy the frame — the caller may reuse its buffer the moment Send
	// returns — into a pooled buffer the receiver recycles after
	// dispatch, closing the reuse loop without per-frame garbage.
	cp := framebuf.Get(len(frame))[:len(frame)]
	copy(cp, frame)
	select {
	case c.out <- cp:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *memConn) Recv() ([]byte, error) {
	select {
	case f := <-c.in:
		return f, nil
	case <-c.done:
		// Drain frames that raced with Close so orderly shutdown
		// doesn't drop a final response.
		select {
		case f := <-c.in:
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *memConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}
