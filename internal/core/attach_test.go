package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func oid(origin string, seq uint64) OID { return OID{Origin: NodeID(origin), Seq: seq} }

func TestAttachDetachBasics(t *testing.T) {
	t.Parallel()
	g := NewAttachGraph(AttachUnrestricted)
	a, b := oid("n", 1), oid("n", 2)
	if !g.Attach(a, b, NoAlliance) {
		t.Fatal("attach rejected")
	}
	if !g.Attached(a, b, NoAlliance) || !g.Attached(b, a, NoAlliance) {
		t.Fatal("attachment not symmetric")
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatalf("degrees = %d, %d, want 1, 1", g.Degree(a), g.Degree(b))
	}
	if !g.Detach(a, b, NoAlliance) {
		t.Fatal("detach failed")
	}
	if g.Attached(a, b, NoAlliance) || g.Degree(a) != 0 || g.Degree(b) != 0 {
		t.Fatal("detach left residue")
	}
	if g.Detach(a, b, NoAlliance) {
		t.Fatal("double detach reported success")
	}
}

func TestSelfAttachRejected(t *testing.T) {
	t.Parallel()
	g := NewAttachGraph(AttachUnrestricted)
	a := oid("n", 1)
	if g.Attach(a, a, NoAlliance) {
		t.Fatal("self-attach accepted")
	}
}

func TestAttachMultipleAlliances(t *testing.T) {
	t.Parallel()
	g := NewAttachGraph(AttachATransitive)
	a, b := oid("n", 1), oid("n", 2)
	if !g.Attach(a, b, 1) || !g.Attach(a, b, 2) {
		t.Fatal("attach in two alliances rejected")
	}
	if g.Degree(a) != 1 {
		t.Fatalf("degree counts partners, not edges: %d", g.Degree(a))
	}
	g.Detach(a, b, 1)
	if !g.Attached(a, b, 2) {
		t.Fatal("detach in alliance 1 removed alliance 2 edge")
	}
}

func TestExclusiveAttachment(t *testing.T) {
	t.Parallel()
	g := NewAttachGraph(AttachExclusive)
	a, b, c := oid("n", 1), oid("n", 2), oid("n", 3)
	if !g.Attach(a, b, NoAlliance) {
		t.Fatal("first attach rejected")
	}
	// First-comes-first-served: b is taken, so c cannot attach to it,
	// and a cannot take a second partner.
	if g.Attach(b, c, NoAlliance) {
		t.Fatal("exclusive mode accepted a second partner for b")
	}
	if g.Attach(a, c, NoAlliance) {
		t.Fatal("exclusive mode accepted a second partner for a")
	}
	// Re-attaching the same pair (e.g. in another alliance) is fine.
	if !g.Attach(a, b, 5) {
		t.Fatal("re-attach of the same pair rejected")
	}
	// After detaching everything, new partners are admitted again.
	g.Detach(a, b, NoAlliance)
	g.Detach(a, b, 5)
	if !g.Attach(b, c, NoAlliance) {
		t.Fatal("attach after full detach rejected")
	}
}

func TestClosureUnrestrictedMergesOverlap(t *testing.T) {
	t.Parallel()
	// Two working sets sharing one member, the paper's Section 2.4
	// scenario: closure of either root contains both sets.
	g := NewAttachGraph(AttachUnrestricted)
	s1a, s1b := oid("n", 1), oid("n", 2)
	s2x, s2y, s2z := oid("n", 10), oid("n", 11), oid("n", 12)
	g.Attach(s1a, s2x, 1)
	g.Attach(s1a, s2y, 1)
	g.Attach(s1b, s2y, 2)
	g.Attach(s1b, s2z, 2)
	got := g.Closure(s1a, 1)
	want := []OID{s1a, s1b, s2x, s2y, s2z}
	SortOIDs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("closure = %v, want %v", got, want)
	}
}

func TestClosureATransitiveRestrictsToAlliance(t *testing.T) {
	t.Parallel()
	g := NewAttachGraph(AttachATransitive)
	s1a, s1b := oid("n", 1), oid("n", 2)
	s2x, s2y, s2z := oid("n", 10), oid("n", 11), oid("n", 12)
	g.Attach(s1a, s2x, 1)
	g.Attach(s1a, s2y, 1)
	g.Attach(s1b, s2y, 2)
	g.Attach(s1b, s2z, 2)
	got := g.Closure(s1a, 1)
	want := []OID{s1a, s2x, s2y}
	SortOIDs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("A-closure = %v, want %v", got, want)
	}
	// A move issued in alliance 2 starting from the shared member
	// stays within alliance 2.
	got = g.Closure(s2y, 2)
	want = []OID{s1b, s2y, s2z}
	SortOIDs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("A-closure from shared member = %v, want %v", got, want)
	}
}

func TestClosureNoAllianceLabel(t *testing.T) {
	t.Parallel()
	g := NewAttachGraph(AttachATransitive)
	a, b, c := oid("n", 1), oid("n", 2), oid("n", 3)
	g.Attach(a, b, NoAlliance)
	g.Attach(b, c, 7)
	got := g.Closure(a, NoAlliance)
	want := []OID{a, b}
	SortOIDs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("closure = %v, want %v", got, want)
	}
}

func TestClosureAlwaysContainsStart(t *testing.T) {
	t.Parallel()
	g := NewAttachGraph(AttachUnrestricted)
	lone := oid("n", 99)
	got := g.Closure(lone, NoAlliance)
	if len(got) != 1 || got[0] != lone {
		t.Fatalf("closure of unattached object = %v", got)
	}
}

func TestClosureExclusivePairsOnly(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		g := NewAttachGraph(AttachExclusive)
		r := rand.New(rand.NewSource(seed))
		objs := make([]OID, 12)
		for i := range objs {
			objs[i] = oid("n", uint64(i))
		}
		for i := 0; i < 40; i++ {
			a, b := objs[r.Intn(len(objs))], objs[r.Intn(len(objs))]
			g.Attach(a, b, AllianceID(r.Intn(3)))
		}
		for _, o := range objs {
			if n := len(g.Closure(o, NoAlliance)); n > 2 {
				t.Logf("closure size %d under exclusive attachment", n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// randomGraph builds a random attachment graph for property tests.
func randomGraph(mode AttachMode, seed int64) (*AttachGraph, []OID) {
	g := NewAttachGraph(mode)
	r := rand.New(rand.NewSource(seed))
	objs := make([]OID, 10)
	for i := range objs {
		objs[i] = oid("n", uint64(i))
	}
	for i := 0; i < 30; i++ {
		a, b := objs[r.Intn(len(objs))], objs[r.Intn(len(objs))]
		g.Attach(a, b, AllianceID(r.Intn(3)))
	}
	return g, objs
}

// TestClosureSubsetProperty: the A-transitive closure is always a subset
// of the unrestricted closure over the same edges.
func TestClosureSubsetProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		g, objs := randomGraph(AttachATransitive, seed)
		for _, o := range objs {
			for al := AllianceID(0); al < 3; al++ {
				restricted := Closure(AttachATransitive, o, al, g.Neighbors)
				full := Closure(AttachUnrestricted, o, al, g.Neighbors)
				set := make(map[OID]bool, len(full))
				for _, m := range full {
					set[m] = true
				}
				for _, m := range restricted {
					if !set[m] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestClosureSymmetryProperty: membership in a closure is symmetric -
// working sets are well-defined groups.
func TestClosureSymmetryProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, aTransitive bool) bool {
		mode := AttachUnrestricted
		if aTransitive {
			mode = AttachATransitive
		}
		g, objs := randomGraph(mode, seed)
		for _, o := range objs {
			for al := AllianceID(0); al < 3; al++ {
				for _, m := range g.Closure(o, al) {
					back := g.Closure(m, al)
					found := false
					for _, x := range back {
						if x == o {
							found = true
							break
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestClosureDeterministic: closures are returned in canonical order and
// are identical across repeated computation.
func TestClosureDeterministic(t *testing.T) {
	t.Parallel()
	g, objs := randomGraph(AttachUnrestricted, 1234)
	for _, o := range objs {
		a := g.Closure(o, NoAlliance)
		b := g.Closure(o, NoAlliance)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("closure not deterministic")
		}
		for i := 1; i < len(a); i++ {
			if !a[i-1].Less(a[i]) {
				t.Fatalf("closure not sorted: %v", a)
			}
		}
	}
}

func TestNeighborsCanonicalOrder(t *testing.T) {
	t.Parallel()
	g := NewAttachGraph(AttachUnrestricted)
	a := oid("n", 1)
	g.Attach(a, oid("n", 3), 2)
	g.Attach(a, oid("n", 2), 1)
	g.Attach(a, oid("n", 3), 1)
	got := g.Neighbors(a)
	want := []Edge{
		{To: oid("n", 2), Alliance: 1},
		{To: oid("n", 3), Alliance: 1},
		{To: oid("n", 3), Alliance: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("neighbors = %v, want %v", got, want)
	}
}

func TestAdmitAttachRule(t *testing.T) {
	t.Parallel()
	a, b := oid("n", 1), oid("n", 2)
	cases := []struct {
		name          string
		mode          AttachMode
		degA, degB    int
		alreadyPaired bool
		want          bool
	}{
		{"unrestricted always", AttachUnrestricted, 5, 5, false, true},
		{"a-transitive always", AttachATransitive, 5, 5, false, true},
		{"exclusive fresh", AttachExclusive, 0, 0, false, true},
		{"exclusive a taken", AttachExclusive, 1, 0, false, false},
		{"exclusive b taken", AttachExclusive, 0, 1, false, false},
		{"exclusive same pair", AttachExclusive, 1, 1, true, true},
	}
	for _, tc := range cases {
		if got := AdmitAttachRule(tc.mode, a, b, tc.degA, tc.degB, tc.alreadyPaired); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
	if AdmitAttachRule(AttachUnrestricted, a, a, 0, 0, false) {
		t.Error("self-attach admitted")
	}
}

func TestAttachModeStringAndValid(t *testing.T) {
	t.Parallel()
	if AttachUnrestricted.String() != "unrestricted" ||
		AttachATransitive.String() != "a-transitive" ||
		AttachExclusive.String() != "exclusive" ||
		AttachMode(0).String() != "unknown" {
		t.Fatal("AttachMode.String mismatch")
	}
	if AttachMode(0).Valid() || !AttachATransitive.Valid() {
		t.Fatal("AttachMode.Valid mismatch")
	}
	// Invalid modes fall back to unrestricted.
	if NewAttachGraph(AttachMode(0)).Mode() != AttachUnrestricted {
		t.Fatal("invalid mode not clamped")
	}
}

func TestSortOIDs(t *testing.T) {
	t.Parallel()
	ids := []OID{oid("b", 1), oid("a", 2), oid("a", 1)}
	SortOIDs(ids)
	want := []OID{oid("a", 1), oid("a", 2), oid("b", 1)}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("sorted = %v, want %v", ids, want)
	}
	if ids[0].String() != "a/1" {
		t.Fatalf("String = %q", ids[0].String())
	}
}
