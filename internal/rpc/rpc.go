// Package rpc multiplexes request/response exchanges over a
// transport.Conn: every in-flight call has an ID, responses are matched
// to pending calls, and inbound requests are dispatched to a handler in
// their own goroutine (invocations may block on object locks and
// migrations, so the read loop must never be held up).
//
// Frame layout:
//
//	[1B direction][8B big-endian call ID][payload]
//
// direction 0 carries a request ([1B kind][body]); direction 1 a
// successful response ([body]); direction 2 a failed response
// (gob-encoded wire.RemoteError).
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"objmig/internal/transport"
	"objmig/internal/wire"
)

const (
	dirRequest = 0
	dirOK      = 1
	dirErr     = 2
)

// ErrPeerClosed is returned by calls whose peer shut down before a
// response arrived. The request may or may not have been processed
// remotely — callers that care about exactly-once effects must treat
// it as ambiguous.
var ErrPeerClosed = errors.New("rpc: peer closed")

// ErrDialFailed marks calls that failed before a connection existed:
// the request was definitely never delivered.
var ErrDialFailed = errors.New("rpc: dial failed")

// ErrSendFailed marks calls whose frame could not be handed to the
// connection: the request was definitely never delivered.
var ErrSendFailed = errors.New("rpc: send failed")

// Handler processes one inbound request and returns the response body.
// Returning a *wire.RemoteError preserves the error code across the
// wire; any other error is wrapped as CodeInternal.
type Handler func(ctx context.Context, kind wire.Kind, body []byte) ([]byte, error)

// Peer manages one connection: concurrent outbound calls and inbound
// request dispatch.
type Peer struct {
	conn    transport.Conn
	handler Handler

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	pending map[uint64]chan callResult
	nextID  uint64
	closed  bool

	wg sync.WaitGroup
}

type callResult struct {
	body []byte
	err  error
}

// NewPeer wraps a connection. handler may be nil for client-only peers
// (inbound requests are then rejected). The peer owns the connection
// and closes it on Close.
func NewPeer(conn transport.Conn, handler Handler) *Peer {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Peer{
		conn:    conn,
		handler: handler,
		ctx:     ctx,
		cancel:  cancel,
		pending: make(map[uint64]chan callResult),
	}
	p.wg.Add(1)
	go p.readLoop()
	return p
}

// Call sends a request and blocks for its response, the context's
// cancellation, or peer shutdown.
func (p *Peer) Call(ctx context.Context, kind wire.Kind, body []byte) ([]byte, error) {
	ch := make(chan callResult, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPeerClosed
	}
	p.nextID++
	id := p.nextID
	p.pending[id] = ch
	p.mu.Unlock()

	frame := make([]byte, 1+8+1+len(body))
	frame[0] = dirRequest
	binary.BigEndian.PutUint64(frame[1:9], id)
	frame[9] = byte(kind)
	copy(frame[10:], body)
	if err := p.conn.Send(frame); err != nil {
		p.forget(id)
		return nil, fmt.Errorf("%w: %v", ErrSendFailed, err)
	}

	select {
	case r := <-ch:
		return r.body, r.err
	case <-ctx.Done():
		p.forget(id)
		return nil, ctx.Err()
	}
}

// forget drops a pending call registration.
func (p *Peer) forget(id uint64) {
	p.mu.Lock()
	delete(p.pending, id)
	p.mu.Unlock()
}

// readLoop receives frames until the connection dies, dispatching
// requests and completing pending calls.
func (p *Peer) readLoop() {
	defer p.wg.Done()
	for {
		frame, err := p.conn.Recv()
		if err != nil {
			p.failAll(err)
			return
		}
		if len(frame) < 9 {
			p.failAll(fmt.Errorf("rpc: short frame (%d bytes)", len(frame)))
			return
		}
		dir := frame[0]
		id := binary.BigEndian.Uint64(frame[1:9])
		payload := frame[9:]
		switch dir {
		case dirRequest:
			if len(payload) < 1 {
				continue
			}
			kind := wire.Kind(payload[0])
			body := payload[1:]
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.serve(id, kind, body)
			}()
		case dirOK, dirErr:
			p.mu.Lock()
			ch, ok := p.pending[id]
			delete(p.pending, id)
			p.mu.Unlock()
			if !ok {
				continue // caller gave up (context cancelled)
			}
			if dir == dirOK {
				ch <- callResult{body: payload}
			} else {
				ch <- callResult{err: decodeError(payload)}
			}
		}
	}
}

// serve runs the handler for one request and sends the response.
func (p *Peer) serve(id uint64, kind wire.Kind, body []byte) {
	var (
		res []byte
		err error
	)
	if p.handler == nil {
		err = wire.Errorf(wire.CodeBadRequest, "peer does not serve requests")
	} else if !kind.Valid() {
		err = wire.Errorf(wire.CodeBadRequest, "unknown request kind %d", kind)
	} else {
		res, err = p.handler(p.ctx, kind, body)
	}
	var frame []byte
	if err != nil {
		var re *wire.RemoteError
		if !errors.As(err, &re) {
			re = wire.Errorf(wire.CodeInternal, "%v", err)
		}
		enc, mErr := wire.Marshal(re)
		if mErr != nil {
			enc, _ = wire.Marshal(wire.Errorf(wire.CodeInternal, "unencodable error"))
		}
		frame = make([]byte, 9+len(enc))
		frame[0] = dirErr
		copy(frame[9:], enc)
	} else {
		frame = make([]byte, 9+len(res))
		frame[0] = dirOK
		copy(frame[9:], res)
	}
	binary.BigEndian.PutUint64(frame[1:9], id)
	// A send failure means the connection is dying; the read loop
	// will fail all pending calls, nothing more to do here.
	_ = p.conn.Send(frame)
}

// decodeError reconstructs the remote error from a dirErr payload.
func decodeError(payload []byte) error {
	var re wire.RemoteError
	if err := wire.Unmarshal(payload, &re); err != nil {
		return fmt.Errorf("rpc: undecodable remote error: %w", err)
	}
	return &re
}

// failAll terminates every pending call with err and marks the peer
// closed.
func (p *Peer) failAll(err error) {
	p.cancel()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for id, ch := range p.pending {
		ch <- callResult{err: fmt.Errorf("%w: %v", ErrPeerClosed, err)}
		delete(p.pending, id)
	}
}

// Closed reports whether the peer has shut down.
func (p *Peer) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Close tears the peer down and waits for its goroutines (read loop and
// in-flight handlers) to finish.
func (p *Peer) Close() error {
	p.cancel()
	err := p.conn.Close()
	p.wg.Wait()
	p.failAll(ErrPeerClosed)
	return err
}

// Server accepts inbound connections and serves them with a handler.
type Server struct {
	l       transport.Listener
	handler Handler

	mu    sync.Mutex
	peers map[*Peer]struct{}
	done  bool

	wg sync.WaitGroup
}

// Serve starts accepting connections on l.
func Serve(l transport.Listener, handler Handler) *Server {
	s := &Server{l: l, handler: handler, peers: make(map[*Peer]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.l.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		p := NewPeer(conn, s.handler)
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			_ = p.Close()
			return
		}
		s.peers[p] = struct{}{}
		s.mu.Unlock()
	}
}

// Close stops accepting and closes every live peer.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return nil
	}
	s.done = true
	peers := make([]*Peer, 0, len(s.peers))
	for p := range s.peers {
		peers = append(peers, p)
	}
	s.peers = nil
	s.mu.Unlock()
	err := s.l.Close()
	for _, p := range peers {
		_ = p.Close()
	}
	s.wg.Wait()
	return err
}

// Pool maintains client connections keyed by address, dialling lazily
// and re-dialling after failures.
type Pool struct {
	tr transport.Transport

	mu    sync.Mutex
	conns map[string]*Peer
	done  bool
}

// NewPool returns an empty pool over the transport.
func NewPool(tr transport.Transport) *Pool {
	return &Pool{tr: tr, conns: make(map[string]*Peer)}
}

// Call sends one request to addr, dialling if needed. Dead peers are
// evicted and re-dialled on the next call.
func (p *Pool) Call(ctx context.Context, addr string, kind wire.Kind, body []byte) ([]byte, error) {
	peer, err := p.get(addr)
	if err != nil {
		return nil, err
	}
	res, err := peer.Call(ctx, kind, body)
	if errors.Is(err, ErrPeerClosed) {
		p.evict(addr, peer)
	}
	return res, err
}

func (p *Pool) get(addr string) (*Peer, error) {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return nil, ErrPeerClosed
	}
	if peer, ok := p.conns[addr]; ok && !peer.Closed() {
		p.mu.Unlock()
		return peer, nil
	}
	p.mu.Unlock()

	conn, err := p.tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrDialFailed, addr, err)
	}
	peer := NewPeer(conn, nil)

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		go func() { _ = peer.Close() }()
		return nil, ErrPeerClosed
	}
	if existing, ok := p.conns[addr]; ok && !existing.Closed() {
		// Lost a dial race; keep the existing peer.
		go func() { _ = peer.Close() }()
		return existing, nil
	}
	p.conns[addr] = peer
	return peer, nil
}

func (p *Pool) evict(addr string, peer *Peer) {
	p.mu.Lock()
	if p.conns[addr] == peer {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
}

// Close closes every pooled connection.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.done = true
	conns := p.conns
	p.conns = map[string]*Peer{}
	p.mu.Unlock()
	for _, peer := range conns {
		_ = peer.Close()
	}
	return nil
}
