package objmig

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"objmig/internal/affinity"
	"objmig/internal/core"
	"objmig/internal/rpc"
	"objmig/internal/store"
	"objmig/internal/telemetry"
	"objmig/internal/wire"
)

// edgesOf fetches the attachment adjacency of an object, chasing its
// location, and reports the host that answered. Each attempt re-derives
// the target from the registry: carrying a stale redirect across
// attempts can point back at ourselves while the registry already
// knows better.
func (n *Node) edgesOf(ctx context.Context, oid core.OID) ([]wire.EdgeRec, NodeID, error) {
	c := n.newChase(oid)
	defer c.end()
	for c.next(ctx) {
		if rec, ok := n.hostedRecord(oid); ok {
			return rec.EdgeList(), n.id, nil
		}
		target := n.store.Hint(oid)
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return nil, "", fmt.Errorf("%w: %s (edges)", ErrNotFound, oid)
		}
		var resp wire.EdgesResp
		c.hop()
		err := n.call(ctx, target, wire.KEdges, &wire.EdgesReq{Obj: oid}, &resp)
		if err == nil {
			n.store.Learn(oid, target)
			return resp.Edges, target, nil
		}
		if to, moved := movedTo(err); moved {
			n.store.Learn(oid, to)
			continue
		}
		if isCode(err, wire.CodeNotFound) && target != oid.Origin {
			n.store.InvalidateAt(oid, target)
			continue
		}
		return nil, "", fromRemote(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	return nil, "", fmt.Errorf("%w: %s (edges)", ErrUnreachable, oid)
}

// closureOf walks the attachment graph from root and returns the
// working set a move in the given alliance drags along, together with
// each member's (believed) host. This is the distributed twin of
// core.Closure: same traversal semantics, remote adjacency.
func (n *Node) closureOf(ctx context.Context, root core.OID, al core.AllianceID) (map[core.OID]NodeID, error) {
	members := make(map[core.OID]NodeID)
	queue := []core.OID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if _, seen := members[cur]; seen {
			continue
		}
		edges, host, err := n.edgesOf(ctx, cur)
		if err != nil {
			return nil, fmt.Errorf("closure of %s: %w", root, err)
		}
		members[cur] = host
		for _, e := range edges {
			if n.attachMode == core.AttachATransitive && e.Alliance != al {
				continue
			}
			if _, seen := members[e.Other]; !seen {
				queue = append(queue, e.Other)
			}
		}
	}
	return members, nil
}

// sortedOIDs returns the member OIDs in canonical order (deterministic
// protocol messages).
func sortedOIDs(members map[core.OID]NodeID) []core.OID {
	out := make([]core.OID, 0, len(members))
	for oid := range members {
		out = append(out, oid)
	}
	core.SortOIDs(out)
	return out
}

// migrateGroup transfers the member objects to target as one batch,
// picking the cheapest transfer shape:
//
//   - A group on a single host whose snapshots fit one chunk budget
//     moves with a one-shot InstallReq — one frame to the target, the
//     pre-streaming message count. This is the common case (autopilot
//     moves of small closures, single objects).
//
//   - Anything bigger streams: a staging session at the target
//     (MigrateBegin), hosts paused concurrently in chunk-bounded
//     sub-batches, each sub-batch forwarded as an InstallChunk the
//     moment it arrives, and one atomic InstallCommit — the target
//     installs the whole group in one shard-aware swap only at
//     commit, so the coordinator never materialises more than about
//     one chunk per host and the "group moves as a unit" invariant is
//     preserved.
//
//   - admit inspects each paused snapshot as it arrives and may veto
//     the migration (transient placement's all-or-nothing working-set
//     rule). Any single veto aborts the whole group before commit.
//
//   - mutate edits each snapshot before it is shipped (placement
//     group locks, refix).
//
//   - anchor names the attachment-closure root the group was derived
//     from (zero for anchorless groups); old hosts and origins may then
//     coalesce the group's location state into one closure record.
//
//   - trace is the migration's TraceID, minted at the decision point
//     (handleMigrate, a move grant, an autopilot election, a placement
//     pass). It rides every wire body of the transfer so each
//     participating node stamps its telemetry spans with it; 0 runs
//     the migration untraced (phase histograms still record).
//
// Every shipped snapshot gets its departure generation bumped here, on
// the coordinator — the one place every snapshot passes through — so
// location reports for this migration outrank every earlier one.
//
// On any failure before the install commit the pauses are rolled
// back, the target's session is discarded, and the system is
// unchanged. Every exit path aborts every host that may hold a pause
// — including veto exits after only some hosts responded.
func (n *Node) migrateGroup(ctx context.Context, members map[core.OID]NodeID, target NodeID, anchor core.OID,
	admit func(*wire.Snapshot) error, mutate func(*wire.Snapshot), trace uint64) ([]core.OID, error) {

	token := n.nextToken()
	ids := sortedOIDs(members)
	start := time.Now()

	// Stamp departure generations on every snapshot that will ship,
	// recording them for the commit and home-update phases. Wrapping
	// mutate covers both transfer shapes' admitMutateBatch calls; the
	// map is written from the per-host pause workers, hence the lock.
	var genMu sync.Mutex
	gens := make(map[core.OID]uint64, len(members))
	userMutate := mutate
	mutate = func(s *wire.Snapshot) {
		s.Gen++
		genMu.Lock()
		gens[s.ID] = s.Gen
		genMu.Unlock()
		if userMutate != nil {
			userMutate(s)
		}
	}

	// Group members by host, hosts in deterministic order.
	byHost := make(map[NodeID][]core.OID)
	for _, oid := range ids {
		h := members[oid]
		byHost[h] = append(byHost[h], oid)
	}
	hosts := make([]NodeID, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })

	// One-shot fast path: a single-host group is paused first; if
	// everything fit the chunk budget there is nothing to stream — one
	// InstallReq moves the group. A failure (or admission veto) aborts
	// the lone host and nothing else exists to clean up.
	var primed *wire.PauseResp
	if len(hosts) == 1 {
		h := hosts[0]
		resp, err := n.pauseBatch(ctx, h, byHost[h], token, target, trace)
		if err == nil {
			err = admitMutateBatch(resp.Snapshots, admit, mutate)
		}
		if err != nil {
			n.sessionAbort(h, byHost[h], token)
			return nil, err
		}
		if len(resp.Pending) == 0 {
			// Same half-lease guard as the streamed commit below: a
			// pause that crawled (busy drain) must not push the install
			// into a race with the sources' lease recovery.
			if lease := n.migrate.PauseLease; lease > 0 && time.Since(start) > lease/2 {
				n.sessionAbort(h, byHost[h], token)
				return nil, wire.Errorf(wire.CodeDenied,
					"migration %d consumed over half the %v pause lease; aborted to stay clear of the sources' lease recovery", token, lease)
			}
			if err := n.installOneShot(ctx, target, resp.Snapshots, token, trace); err != nil {
				// The install is the point of no return: only a definite
				// answer from the target proves it did not happen. An
				// ambiguous transport failure leaves the sources paused
				// for their lease to resolve (see the commit below).
				if definiteFailure(err) || n.migrate.PauseLease <= 0 {
					n.sessionAbort(h, byHost[h], token)
				}
				return nil, err
			}
			return n.finishGroupMigration(ctx, ids, byHost, hosts, target, token, 0, anchor, gens, trace)
		}
		primed = resp // bigger than one chunk: stream it below
	}

	// Streamed path. Open the staging session at the target before
	// pausing anything further: an unreachable target fails the
	// migration with minimal cleanup.
	if err := n.sessionBegin(ctx, target, token, ids, trace); err != nil {
		if primed != nil {
			n.sessionAbort(hosts[0], byHost[hosts[0]], token)
		}
		return nil, err
	}

	// abort rolls the whole transfer back: resume every host that may
	// hold a pause (Unpause is token-checked and idempotent, so hosts
	// or objects that never paused ignore it) and discard the target's
	// staged session. Chunk/commit failures may already have dropped
	// the session; the extra abort is a no-op then.
	abort := func() {
		for _, h := range hosts {
			n.sessionAbort(h, byHost[h], token)
		}
		if _, isHost := byHost[target]; !isHost {
			n.sessionAbort(target, nil, token)
		}
	}

	// Phase 1: pause and stream, hosts in parallel. Each host worker
	// drains its host in chunk-bounded pause sub-batches and forwards
	// every sub-batch to the target as one InstallChunk. The first
	// error cancels the others.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		failMu   sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		failMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		failMu.Unlock()
	}
	var seq atomic.Uint64
	var bytesOut atomic.Int64
	var wg sync.WaitGroup
	for _, h := range hosts {
		wg.Add(1)
		go func(h NodeID) {
			defer wg.Done()
			pending := byHost[h]
			var batch []wire.Snapshot
			if primed != nil && h == hosts[0] {
				// The fast-path probe already paused and admitted the
				// first sub-batch; ship it as the first chunk.
				batch, pending = primed.Snapshots, primed.Pending
			}
			for len(batch) > 0 || len(pending) > 0 {
				if err := sctx.Err(); err != nil {
					fail(err)
					return
				}
				if batch == nil {
					resp, err := n.pauseBatch(sctx, h, pending, token, target, trace)
					if err != nil {
						fail(err)
						return
					}
					if len(resp.Snapshots) == 0 {
						fail(wire.Errorf(wire.CodeInternal, "pause at %s made no progress", h))
						return
					}
					if err := admitMutateBatch(resp.Snapshots, admit, mutate); err != nil {
						fail(err)
						return
					}
					batch, pending = resp.Snapshots, resp.Pending
				}
				b, err := n.sessionChunk(sctx, target, token, seq.Add(1), batch, trace)
				if err != nil {
					fail(err)
					return
				}
				bytesOut.Add(b)
				batch = nil
			}
		}(h)
	}
	wg.Wait()
	if firstErr != nil {
		abort()
		return nil, firstErr
	}

	// Lease guard: committing close to the pause lease's edge could
	// race the sources' lease machinery and duplicate objects. A
	// transfer that burned more than half the lease aborts instead.
	if lease := n.migrate.PauseLease; lease > 0 && time.Since(start) > lease/2 {
		abort()
		return nil, wire.Errorf(wire.CodeDenied,
			"migration %d consumed over half the %v pause lease; aborted to stay clear of the sources' lease recovery", token, lease)
	}

	// Phase 2: atomic install of the staged group at the target. This
	// is the point of no return, so the failure's nature matters: a
	// definite answer from the target (a RemoteError — the request was
	// processed and refused) proves nothing installed, and aborting is
	// safe. An ambiguous transport failure (lost ack, expired context)
	// leaves the outcome unknown — the target may well have installed
	// the group — so the sources are left paused for their leases to
	// resolve against the target: commit finished locally if the
	// install happened, resume if it did not. Blind-aborting here
	// would resume sources whose state may be live at the target — the
	// exact duplication the lease machinery exists to prevent. Only
	// when leases are disabled is the blind abort the lesser evil
	// (nothing else would ever unpause the sources).
	if err := n.sessionCommit(ctx, target, token, trace); err != nil {
		if definiteFailure(err) || n.migrate.PauseLease <= 0 {
			abort()
		}
		return nil, err
	}
	return n.finishGroupMigration(ctx, ids, byHost, hosts, target, token, bytesOut.Load(), anchor, gens, trace)
}

// definiteFailure reports whether err proves the request had no remote
// effect: an authoritative refusal from the remote (the request was
// received, processed and answered), or a delivery failure from before
// the request ever left (dial or send). Everything else — a lost ack,
// an expired context, a connection that died mid-call — is ambiguous:
// the remote may have processed the request.
func definiteFailure(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) ||
		errors.Is(err, rpc.ErrDialFailed) ||
		errors.Is(err, rpc.ErrSendFailed)
}

// memberRaced reports whether a group-migration failure means a
// working-set member moved between the closure walk and its pause: the
// believed host answered with a redirect (the classic stub) or with
// not-found (the stub was already retired once the origin confirmed
// the departure — see ConfirmDeparted). Either way the membership
// snapshot was stale, not the migration wrong; callers re-walk the
// closure and retry.
func memberRaced(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && (re.Code == wire.CodeMoved || re.Code == wire.CodeNotFound)
}

// pauseBatch pauses one chunk-bounded sub-batch of a migration at a
// host (locally or over the wire). The coordinator's pause span covers
// the whole round trip: the request, the host-side pause wait and
// snapshot encode, and the reply carrying the snapshots.
func (n *Node) pauseBatch(ctx context.Context, h NodeID, objs []core.OID, token uint64, target NodeID, trace uint64) (*wire.PauseResp, error) {
	req := &wire.PauseReq{
		Objs: objs, Token: token,
		MaxBytes: int64(n.migrate.ChunkBytes), Lease: n.migrate.PauseLease,
		From: n.id, Target: target, Trace: trace,
	}
	start := time.Now()
	var resp *wire.PauseResp
	if h == n.id {
		var err error
		if resp, err = n.handlePause(ctx, req); err != nil {
			return nil, err
		}
	} else {
		resp = &wire.PauseResp{}
		if err := n.call(ctx, h, wire.KPause, req, resp); err != nil {
			return nil, err
		}
	}
	n.tel.span(trace, telemetry.PhasePause, start, 0, len(resp.Snapshots))
	return resp, nil
}

// admitMutateBatch runs the per-snapshot admission and mutation hooks
// over one pause sub-batch; the first veto wins.
func admitMutateBatch(snaps []wire.Snapshot, admit func(*wire.Snapshot) error, mutate func(*wire.Snapshot)) error {
	for i := range snaps {
		if admit != nil {
			if err := admit(&snaps[i]); err != nil {
				return err
			}
		}
		if mutate != nil {
			mutate(&snaps[i])
		}
	}
	return nil
}

// installOneShot delivers a small group to the target in a single
// InstallReq. The frame counts towards the same transfer gauges as
// streamed chunks, so StreamMaxChunkBytes always reports the
// coordinator's true peak migration-frame size.
func (n *Node) installOneShot(ctx context.Context, target NodeID, snaps []wire.Snapshot, token, trace uint64) error {
	var bytes int64
	for i := range snaps {
		bytes += int64(wire.SnapshotSize(&snaps[i]))
	}
	req := &wire.InstallReq{Snapshots: snaps, Token: token, From: n.id, Trace: trace}
	start := time.Now()
	if target == n.id {
		if _, err := n.handleInstall(req); err != nil {
			return err
		}
	} else {
		var resp wire.InstallResp
		if err := n.call(ctx, target, wire.KInstall, req, &resp); err != nil {
			return err
		}
	}
	n.tel.span(trace, telemetry.PhaseStream, start, bytes, len(snaps))
	n.stats.streamChunksOut.Add(1)
	n.stats.streamBytesOut.Add(bytes)
	maxInt64(&n.stats.streamMaxChunkBytes, bytes)
	return nil
}

// finishGroupMigration is the shared tail of both transfer shapes,
// entered once the group is durably installed at the target: lift the
// coordinator's affinity observations, commit forwarding pointers at
// the old hosts, advise the origins, account and announce. streamed is
// the stream's snapshot byte count (zero for one-shot transfers);
// anchor and gens carry the closure identity and the departure
// generations stamped on the shipped snapshots.
func (n *Node) finishGroupMigration(ctx context.Context, ids []core.OID, byHost map[NodeID][]core.OID,
	hosts []NodeID, target NodeID, token uint64, streamed int64,
	anchor core.OID, gens map[core.OID]uint64, trace uint64) ([]core.OID, error) {

	// The objects are leaving this node: lift the coordinator's
	// affinity observations now (commit drops them) so they can ride
	// the origin advisories as gossip. A same-node transfer keeps its
	// counters.
	var obs []affinity.Obs
	if target != n.id {
		obs = n.aff.Take(ids)
	}

	// Phase 3: commit forwarding pointers at the old hosts. The
	// target's own paused records were replaced by the installation.
	// A host that cannot be reached is retried in the background, and
	// its pause lease resolves the outcome against the target as the
	// backstop — the remaining hosts still get their commit now.
	var commitErr error
	commitStart := time.Now()
	for _, h := range hosts {
		if h == target {
			continue
		}
		req := &wire.CommitReq{Objs: byHost[h], NewHome: target, Token: token, From: n.id,
			Gens: gensFor(gens, byHost[h]), Anchor: anchor, Trace: trace}
		if h == n.id {
			n.commitLocal(req)
			continue
		}
		var resp wire.CommitResp
		if err := n.call(ctx, h, wire.KCommit, req, &resp); err != nil {
			n.retryCommit(h, req)
			if commitErr == nil {
				commitErr = fmt.Errorf("objmig: commit at %s failed (objects are at %s): %w", h, target, err)
			}
		}
	}
	n.tel.span(trace, telemetry.PhaseCommit, commitStart, 0, len(ids))
	if commitErr != nil {
		// The objects are installed at the target; report the partial
		// failure.
		return ids, commitErr
	}

	// Phase 4: advise the origins (asynchronous, batched, best effort).
	n.notifyOrigins(ids, target, obs, anchor, gens, trace)
	n.stats.migrationsOut.Add(1)
	n.stats.objectsMovedOut.Add(int64(len(ids)))
	moved := make([]Ref, len(ids))
	for i, id := range ids {
		moved[i] = Ref{OID: id}
	}
	if streamed > 0 {
		n.emit(Event{Kind: EventMigrateStream, Target: target, Outcome: "streamed",
			Bytes: streamed, Objects: moved})
	}
	n.emit(Event{Kind: EventMigration, Target: target, Objects: moved})
	return ids, nil
}

// sessionBegin opens the streaming session at the target. The begin
// frame carries the coordinator's byte estimate for the group — the
// summed state sizes of the members hosted here. Members living on
// other hosts are not inspected (that would cost a round trip per
// host before anything is even admitted), so the estimate is a floor;
// the target's ledger trues it up against real chunk sizes only in
// the sense that residency replaces the claim at commit.
func (n *Node) sessionBegin(ctx context.Context, target NodeID, token uint64, ids []core.OID, trace uint64) error {
	var bytes int64
	for _, rec := range n.store.GetBatch(ids) {
		if rec != nil && !rec.IsGone() {
			bytes += rec.StateBytes
		}
	}
	req := &wire.MigrateBeginReq{Token: token, From: n.id, Objs: ids, Bytes: bytes, Trace: trace}
	if target == n.id {
		_, err := n.handleMigrateBegin(req)
		return err
	}
	var resp wire.MigrateBeginResp
	return n.call(ctx, target, wire.KMigrateBegin, req, &resp)
}

// sessionChunk forwards one sub-batch of snapshots to the target's
// session and returns the snapshot bytes it carried.
func (n *Node) sessionChunk(ctx context.Context, target NodeID, token, seq uint64, snaps []wire.Snapshot, trace uint64) (int64, error) {
	var bytes int64
	for i := range snaps {
		bytes += int64(wire.SnapshotSize(&snaps[i]))
	}
	req := &wire.InstallChunkReq{Token: token, From: n.id, Seq: seq, Snapshots: snaps, Trace: trace}
	start := time.Now()
	var err error
	if target == n.id {
		_, err = n.handleInstallChunk(req)
	} else {
		var resp wire.InstallChunkResp
		err = n.call(ctx, target, wire.KInstallChunk, req, &resp)
	}
	if err != nil {
		return 0, err
	}
	n.tel.span(trace, telemetry.PhaseStream, start, bytes, len(snaps))
	n.stats.streamChunksOut.Add(1)
	n.stats.streamBytesOut.Add(bytes)
	maxInt64(&n.stats.streamMaxChunkBytes, bytes)
	return bytes, nil
}

// sessionCommit asks the target to install the staged group.
func (n *Node) sessionCommit(ctx context.Context, target NodeID, token, trace uint64) error {
	req := &wire.InstallCommitReq{Token: token, From: n.id, Trace: trace}
	if target == n.id {
		_, err := n.handleInstallCommit(req)
		return err
	}
	var resp wire.InstallCommitResp
	return n.call(ctx, target, wire.KInstallCommit, req, &resp)
}

// retryCommit keeps delivering a commit whose first attempt failed:
// the install is already durable at the target, so the old host must
// eventually learn it. Bounded — after the retries give up, the host's
// pause lease resolves the outcome against the target on its own.
func (n *Node) retryCommit(h NodeID, req *wire.CommitReq) {
	n.spawn(func() {
		for attempt := 0; attempt < 10 && !n.closed.Load(); attempt++ {
			time.Sleep(500 * time.Millisecond)
			actx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			var resp wire.CommitResp
			err := n.call(actx, h, wire.KCommit, req, &resp)
			cancel()
			if err == nil {
				return
			}
		}
	})
}

// sessionAbort rolls one host (or the target's session) back, best
// effort, on a fresh context — the migration's own context may already
// be cancelled.
func (n *Node) sessionAbort(h NodeID, objs []core.OID, token uint64) {
	req := &wire.AbortReq{Objs: objs, Token: token, From: n.id}
	if h == n.id {
		n.abortLocal(req)
		return
	}
	actx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp wire.AbortResp
	_ = n.call(actx, h, wire.KAbort, req, &resp)
}

// notifyOrigins queues home updates for the moved objects towards
// their origin nodes. Remote origins go through the home-update
// batcher, which coalesces advisories across migrations into
// time/size-bounded HomeUpdate RPCs and piggy-backs the coordinator's
// affinity observations as gossip.
//
// A closure-anchored group of two or more objects travels as one
// ClosureLoc per origin instead of per-object entries: the origin
// stores one shared record plus member references, and every member's
// departure generation is subsumed by the group's maximum (they were
// stamped by the same migration).
func (n *Node) notifyOrigins(ids []core.OID, at NodeID, obs []affinity.Obs, anchor core.OID, gens map[core.OID]uint64, trace uint64) {
	byOrigin := make(map[NodeID][]core.OID)
	for _, oid := range ids {
		byOrigin[oid.Origin] = append(byOrigin[oid.Origin], oid)
	}
	var affByOrigin map[NodeID][]wire.AffinityObs
	if len(obs) > 0 {
		affByOrigin = make(map[NodeID][]wire.AffinityObs)
		for _, o := range obs {
			affByOrigin[o.Obj.Origin] = append(affByOrigin[o.Obj.Origin],
				wire.AffinityObs{Obj: o.Obj, From: o.From, Count: o.Count})
		}
	}
	for origin, objs := range byOrigin {
		var maxGen uint64
		for _, oid := range objs {
			if g := gens[oid]; g > maxGen {
				maxGen = g
			}
		}
		asClosure := n.closureRecords() && anchor != (core.OID{}) && len(objs) >= 2
		if origin == n.id {
			// This node is the origin: update the home index directly
			// and fold the lifted observations straight back in — the
			// same warm-affinity knowledge a remote origin would merge
			// from the gossip.
			start := time.Now()
			if asClosure {
				n.store.HomeUpdateClosure(anchor, maxGen, objs, at)
			} else {
				n.store.HomeUpdate(objs, gensFor(gens, objs), at)
			}
			n.tel.span(trace, telemetry.PhaseDirUpdate, start, 0, len(objs))
			n.mergeAffinityGossip(affByOrigin[origin])
			continue
		}
		if origin == at {
			// Installation already updated the target's tables, but
			// the lifted observations must still travel — the object
			// converging onto its creator is the autopilot's most
			// common outcome, and the new host should start warm. Send
			// a gossip-only batch.
			if aff := affByOrigin[origin]; len(aff) > 0 {
				n.stats.homeUpdatesQueued.Add(1)
				n.homeBatch.enqueue(origin, at, nil, nil, nil, aff, trace)
			}
			continue
		}
		n.stats.homeUpdatesQueued.Add(1)
		if asClosure {
			n.homeBatch.enqueue(origin, at, nil, nil,
				[]wire.ClosureLoc{{Anchor: anchor, Gen: maxGen, Members: objs}}, affByOrigin[origin], trace)
		} else {
			n.homeBatch.enqueue(origin, at, objs, gensFor(gens, objs), nil, affByOrigin[origin], trace)
		}
	}
}

// handlePause pauses and snapshots local objects for a migration.
//
// With a positive MaxBytes the response is size-bounded: objects are
// paused and snapshotted in request order until the cumulative encoded
// size exceeds the budget, and the untouched rest is returned as
// Pending for the coordinator to re-request — one pause sub-batch
// becomes one streamed chunk. At least one object is always processed
// so oversized objects cannot stall the stream. A failure rolls back
// only this call's pauses; earlier sub-batches of the same token stay
// paused and are covered by the coordinator's abort (and, should the
// coordinator be gone, by the pause lease).
func (n *Node) handlePause(ctx context.Context, req *wire.PauseReq) (*wire.PauseResp, error) {
	start := time.Now()
	var done []*store.Record
	rollback := func() {
		for _, rec := range done {
			rec.Unpause(req.Token)
		}
	}
	resp := &wire.PauseResp{}
	var bytes int64
	for i, oid := range req.Objs {
		if req.MaxBytes > 0 && bytes >= req.MaxBytes {
			resp.Pending = req.Objs[i:]
			break
		}
		rec, ok := n.record(oid)
		if !ok {
			rollback()
			return nil, n.whereabouts(oid)
		}
		if err := rec.Pause(ctx, req.Token); err != nil {
			rollback()
			var re *wire.RemoteError
			if errors.As(err, &re) {
				return nil, re
			}
			return nil, wire.Errorf(wire.CodeDenied, "pause %s: %v", oid, err)
		}
		done = append(done, rec)
		t, ok := n.typeByName(rec.TypeName)
		if !ok {
			rollback()
			return nil, wire.Errorf(wire.CodeUnknownType, "type %q not registered at %s", rec.TypeName, n.id)
		}
		snap, err := rec.Snapshot(t.encodeState)
		if err != nil {
			rollback()
			return nil, wire.Errorf(wire.CodeInternal, "snapshot %s: %v", oid, err)
		}
		bytes += int64(wire.SnapshotSize(&snap))
		resp.Snapshots = append(resp.Snapshots, snap)
	}
	if req.Lease > 0 && len(done) > 0 {
		covered := make([]core.OID, len(done))
		for i, rec := range done {
			covered[i] = rec.ID
		}
		n.armPauseLease(sessionKey{from: req.From, token: req.Token}, req.Target, covered, req.Lease)
	}
	n.tel.span(req.Trace, telemetry.PhaseSnapshot, start, bytes, len(done))
	return resp, nil
}

// handleInstall reinstantiates migrated objects locally, atomically
// (the one-shot transfer shape; see migrateGroup).
func (n *Node) handleInstall(req *wire.InstallReq) (*wire.InstallResp, error) {
	if req.From != "" && n.migrationAborted(sessionKey{from: req.From, token: req.Token}) {
		return nil, wire.Errorf(wire.CodeDenied, "migration %d from %s was aborted", req.Token, req.From)
	}
	ids := make([]core.OID, len(req.Snapshots))
	var bytes int64
	for i := range req.Snapshots {
		ids[i] = req.Snapshots[i].ID
		bytes += int64(wire.SnapshotSize(&req.Snapshots[i]))
	}
	// The placement admission, with this node's authoritative counts: a
	// one-shot install that would blow the capacity is refused before
	// anything decodes. The admitted group is claimed in the
	// reservation ledger for the (short) window until the install below
	// lands, so a concurrent MigrateBegin cannot admit against headroom
	// this install is about to consume; the claim is released once the
	// batch either became residency or failed.
	if _, err := n.admitAndReserve(ids, bytes, req.From, req.Token); err != nil {
		return nil, err
	}
	defer n.releaseReservation(req.From, req.Token)
	start := time.Now()
	if err := n.installBatch(req.Snapshots, req.Token); err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return nil, re
		}
		return nil, wire.Errorf(wire.CodeInternal, "install: %v", err)
	}
	// Members that were paused *here* (the target hosted the group
	// itself) were just replaced; disarm their lease.
	if req.From != "" {
		n.cancelPauseLease(sessionKey{from: req.From, token: req.Token})
	}
	n.tel.span(req.Trace, telemetry.PhaseInstall, start, bytes, len(ids))
	return &wire.InstallResp{}, nil
}

// handleCommit finalises departures of local paused records.
func (n *Node) handleCommit(req *wire.CommitReq) (*wire.CommitResp, error) {
	n.commitLocal(req)
	return &wire.CommitResp{}, nil
}

// commitLocal finalises departures: one shard-grouped batch lookup
// resolves every record (each stripe lock is taken once, not once per
// OID), then each record flips to a forwarding stub. The host's
// affinity observations for the departed objects are lifted and
// forwarded to the objects' origins as gossip — in a multi-host group
// migration the coordinator can only gossip its own counters, so each
// departing host ships its own.
//
// Directory upkeep rides the commit: a closure-anchored group's
// forwarding state coalesces into one shared record, departures of
// objects this node created are retired immediately (the home entry
// written under the record lock is authoritative by construction —
// there is no remote origin to wait for), and the amortised forward
// sweep is advanced.
func (n *Node) commitLocal(req *wire.CommitReq) {
	start := time.Now()
	n.cancelPauseLease(sessionKey{from: req.From, token: req.Token})
	recs := n.store.GetBatch(req.Objs)
	var departed []core.OID
	var maxGen uint64
	for i, rec := range recs {
		if rec == nil {
			continue
		}
		oid := req.Objs[i]
		var gen uint64
		if i < len(req.Gens) {
			gen = req.Gens[i]
		}
		if rec.Depart(req.Token, req.NewHome, func() {
			n.store.Departed(oid, req.NewHome, gen)
		}) {
			departed = append(departed, oid)
			if gen > maxGen {
				maxGen = gen
			}
		}
	}
	if len(departed) == 0 {
		return
	}
	var own, foreign []core.OID
	for _, oid := range departed {
		if oid.Origin == n.id {
			own = append(own, oid)
		} else {
			foreign = append(foreign, oid)
		}
	}
	// Foreign members coalesce into one closure record; objects created
	// here keep their per-object home entries (the origin-side closure
	// attach happens in the coordinator's phase 4, where it survives
	// retirement).
	if n.closureRecords() && req.Anchor != (core.OID{}) && len(foreign) >= 2 {
		n.store.DepartedClosure(req.Anchor, maxGen, foreign, req.NewHome)
	}
	if len(own) > 0 {
		n.store.ConfirmDeparted(own, req.NewHome)
	}
	n.store.MaybeCompact(len(departed))
	n.tel.span(req.Trace, telemetry.PhaseDirUpdate, start, 0, len(departed))
	n.gossipDeparted(departed, req.NewHome)
}

// gensFor aligns the stamped departure generations with an OID list
// (zero for objects that never produced a snapshot).
func gensFor(gens map[core.OID]uint64, ids []core.OID) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = gens[id]
	}
	return out
}

// gossipDeparted lifts this host's observations for objects that just
// departed towards at and routes them to the objects' origins as
// gossip-only advisories (the migration coordinator sends the actual
// home updates). On the coordinator itself this is a no-op: its
// observations were already Taken before the commit phase.
func (n *Node) gossipDeparted(ids []core.OID, at NodeID) {
	obs := n.aff.Take(ids)
	if len(obs) == 0 {
		// Nothing to gossip; still forget the entries (Take skips the
		// deletes when the tracker is disabled).
		n.aff.Drop(ids)
		return
	}
	byOrigin := make(map[NodeID][]wire.AffinityObs)
	for _, o := range obs {
		byOrigin[o.Obj.Origin] = append(byOrigin[o.Obj.Origin],
			wire.AffinityObs{Obj: o.Obj, From: o.From, Count: o.Count})
	}
	for origin, aff := range byOrigin {
		if origin == n.id {
			// This host is the origin: keep the knowledge warm locally.
			n.mergeAffinityGossip(aff)
			continue
		}
		n.stats.homeUpdatesQueued.Add(1)
		n.homeBatch.enqueue(origin, at, nil, nil, nil, aff, 0)
	}
}

// handleAbort rolls back local pauses.
func (n *Node) handleAbort(req *wire.AbortReq) (*wire.AbortResp, error) {
	n.abortLocal(req)
	return &wire.AbortResp{}, nil
}

// abortLocal rolls pauses back with one shard-grouped batch lookup.
// Unpause itself checks status and token, so stubs and strangers are
// naturally ignored. The pause lease is disarmed, a staging session
// the aborting coordinator opened here (this node was the migration
// target) is discarded, and the migration's abort fence goes up so an
// install frame still in flight cannot land afterwards.
func (n *Node) abortLocal(req *wire.AbortReq) {
	key := sessionKey{from: req.From, token: req.Token}
	n.cancelPauseLease(key)
	if req.From != "" {
		n.dropSession(key, "abort")
		n.abortFence(key)
	}
	for _, rec := range n.store.GetBatch(req.Objs) {
		if rec != nil {
			rec.Unpause(req.Token)
		}
	}
}

// Migrate moves an object (with the working set attached in the global
// context) to the target node. It respects fixing and transient-
// placement locks.
func (n *Node) Migrate(ctx context.Context, ref Ref, target NodeID) error {
	return n.MigrateIn(ctx, NoAlliance, ref, target)
}

// MigrateIn is Migrate issued inside an alliance: under A-transitive
// attachment only the alliance's attachments travel.
func (n *Node) MigrateIn(ctx context.Context, al AllianceID, ref Ref, target NodeID) error {
	_, err := n.migrateRequest(ctx, &wire.MigrateReq{Obj: ref.OID, Target: target, Alliance: al})
	return err
}

// MigrateToObject collocates ref with another object: "the target
// either names a node or another object" (Section 2.2).
func (n *Node) MigrateToObject(ctx context.Context, ref, with Ref) error {
	at, err := n.Locate(ctx, with)
	if err != nil {
		return fmt.Errorf("objmig: locate collocation target: %w", err)
	}
	return n.Migrate(ctx, ref, at)
}

// migrateRequest chases the object's host and asks it to execute the
// migrate primitive.
func (n *Node) migrateRequest(ctx context.Context, req *wire.MigrateReq) (*wire.MigrateResp, error) {
	oid := req.Obj
	c := n.newChase(oid)
	defer c.end()
	for c.next(ctx) {
		if _, ok := n.hostedRecord(oid); ok {
			resp, err := n.handleMigrate(ctx, req)
			if to, moved := movedTo(err); moved {
				n.store.Learn(oid, to)
				continue
			}
			return resp, fromRemote(err)
		}
		target := n.store.Hint(oid)
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
		}
		var resp wire.MigrateResp
		c.hop()
		err := n.call(ctx, target, wire.KMigrate, req, &resp)
		if err == nil {
			n.store.Learn(oid, resp.At)
			return &resp, nil
		}
		if to, moved := movedTo(err); moved {
			n.store.Learn(oid, to)
			continue
		}
		if isCode(err, wire.CodeNotFound) && target != oid.Origin {
			n.store.InvalidateAt(oid, target)
			continue
		}
		return nil, fromRemote(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("%w: %s (migrate)", ErrUnreachable, oid)
}

// handleMigrate executes the migrate primitive at the object's host.
func (n *Node) handleMigrate(ctx context.Context, req *wire.MigrateReq) (*wire.MigrateResp, error) {
	rec, ok := n.record(req.Obj)
	if !ok {
		return nil, n.whereabouts(req.Obj)
	}
	rec.Mu.Lock()
	if rec.Status == store.StatusGone {
		to := rec.MovedTo
		rec.Mu.Unlock()
		return nil, &wire.RemoteError{Code: wire.CodeMoved, Msg: req.Obj.String(), To: to}
	}
	if rec.Pol.Fixed && !req.Fix {
		rec.Mu.Unlock()
		return nil, wire.Errorf(wire.CodeFixed, "object %s is fixed at %s", req.Obj, n.id)
	}
	if rec.Pol.Lock.Held {
		owner := rec.Pol.Lock.Owner
		rec.Mu.Unlock()
		return nil, wire.Errorf(wire.CodeDenied, "object %s is placed (locked by %s)", req.Obj, owner)
	}
	rec.Mu.Unlock()

	admit := func(s *wire.Snapshot) error {
		if s.Pol.Lock.Held {
			return wire.Errorf(wire.CodeDenied, "working-set member %s is placed", s.ID)
		}
		if s.Pol.Fixed && !(req.Fix && s.ID == req.Obj) {
			return wire.Errorf(wire.CodeFixed, "working-set member %s is fixed", s.ID)
		}
		return nil
	}
	var mutate func(*wire.Snapshot)
	if req.Fix {
		mutate = func(s *wire.Snapshot) {
			if s.ID == req.Obj {
				s.Pol.Fixed = true
			}
		}
	}
	// A member can migrate between the closure walk and its pause
	// (memberRaced); the walk is re-run against fresh location
	// knowledge, mirroring handleMove's busy-retry loop.
	const (
		raceRetries = 50
		raceBackoff = 2 * time.Millisecond
	)
	// One trace covers the whole primitive, including race retries —
	// the retries are part of the same decision's story.
	trace := n.nextTrace()
	for attempt := 0; ; attempt++ {
		members, err := n.closureOf(ctx, req.Obj, req.Alliance)
		if err != nil {
			return nil, wire.Errorf(wire.CodeInternal, "%v", err)
		}
		moved, err := n.migrateGroup(ctx, members, req.Target, req.Obj, admit, mutate, trace)
		if err == nil {
			return &wire.MigrateResp{At: req.Target, Moved: moved}, nil
		}
		if memberRaced(err) && attempt < raceRetries && ctx.Err() == nil {
			select {
			case <-ctx.Done():
			case <-time.After(raceBackoff):
				continue
			}
		}
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return nil, re
		}
		return nil, wire.Errorf(wire.CodeInternal, "%v", err)
	}
}
