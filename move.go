package objmig

import (
	"context"
	"errors"
	"fmt"
	"time"

	"objmig/internal/core"
	"objmig/internal/store"
	"objmig/internal/wire"
)

// Block is the handle a move-block body receives: whether the move was
// granted, where the object is, and which objects travelled.
type Block struct {
	// Ref is the object the block was opened on.
	Ref Ref
	// Granted reports whether the move brought the object here. When
	// false the block still runs; its calls are forwarded to the
	// object's current location (the paper's "indication").
	Granted bool
	// At is the object's location after the move-request.
	At NodeID
	// Moved lists the working set that travelled with the object.
	Moved []Ref

	alliance AllianceID
	id       core.BlockID
	prevAt   NodeID
}

// Move opens a move-block on ref outside any alliance: it issues the
// move-request, runs body, and closes the block with an end-request.
// The body runs whether or not the move was granted.
func (n *Node) Move(ctx context.Context, ref Ref, body func(ctx context.Context, b *Block) error) error {
	return n.moveBlock(ctx, NoAlliance, ref, body, false)
}

// MoveIn is Move issued inside an alliance: with A-transitive
// attachment, only the alliance's attachments travel.
func (n *Node) MoveIn(ctx context.Context, al AllianceID, ref Ref, body func(ctx context.Context, b *Block) error) error {
	return n.moveBlock(ctx, al, ref, body, false)
}

// Visit is a move combined with a migrate-back: when the block ends,
// the object returns to the node it came from (Section 2.3).
func (n *Node) Visit(ctx context.Context, ref Ref, body func(ctx context.Context, b *Block) error) error {
	return n.moveBlock(ctx, NoAlliance, ref, body, true)
}

func (n *Node) moveBlock(ctx context.Context, al AllianceID, ref Ref,
	body func(ctx context.Context, b *Block) error, visit bool) error {

	block := n.nextBlock()
	out, err := n.moveRequest(ctx, &wire.MoveReq{
		Obj: ref.OID, From: n.id, Block: block, Alliance: al,
	})
	if err != nil {
		return err
	}
	b := &Block{
		Ref:      ref,
		Granted:  out.resp.Outcome != wire.MoveDenied,
		At:       out.resp.At,
		alliance: al,
		id:       block,
		prevAt:   out.prevAt,
	}
	for _, oid := range out.resp.Moved {
		b.Moved = append(b.Moved, Ref{OID: oid})
	}

	bodyErr := body(ctx, b)

	if endErr := n.endBlock(ctx, ref, al, block, out.resp.Moved); endErr != nil && bodyErr == nil {
		bodyErr = endErr
	}
	if visit && b.Granted && b.prevAt != "" && b.prevAt != n.id {
		if migErr := n.MigrateIn(ctx, al, ref, b.prevAt); migErr != nil && bodyErr == nil {
			bodyErr = fmt.Errorf("objmig: visit return: %w", migErr)
		}
	}
	return bodyErr
}

// moveOutcome couples the responder (the object's previous host) with
// its response.
type moveOutcome struct {
	resp   *wire.MoveResp
	prevAt NodeID
}

// moveRequest chases the object's current host and delivers the
// move-request there.
func (n *Node) moveRequest(ctx context.Context, req *wire.MoveReq) (*moveOutcome, error) {
	oid := req.Obj
	c := n.newChase(oid)
	defer c.end()
	for c.next(ctx) {
		if _, ok := n.hostedRecord(oid); ok {
			resp, err := n.handleMove(ctx, req)
			if to, moved := movedTo(err); moved {
				n.store.Learn(oid, to)
				continue
			}
			if err != nil {
				return nil, fromRemote(err)
			}
			return &moveOutcome{resp: resp, prevAt: n.id}, nil
		}
		target := n.store.Hint(oid)
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
		}
		var resp wire.MoveResp
		c.hop()
		err := n.call(ctx, target, wire.KMove, req, &resp)
		if err == nil {
			n.store.Learn(oid, resp.At)
			return &moveOutcome{resp: &resp, prevAt: target}, nil
		}
		if to, moved := movedTo(err); moved {
			n.store.Learn(oid, to)
			continue
		}
		if isCode(err, wire.CodeNotFound) && target != oid.Origin {
			n.store.InvalidateAt(oid, target)
			continue
		}
		return nil, fromRemote(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("%w: %s (move)", ErrUnreachable, oid)
}

// handleMove interprets a move-request at the object's current host —
// the run-time support of paper Fig. 3. Under conventional migration a
// busy working set is retried (the thrash the paper analyses); under
// transient placement it denies immediately.
func (n *Node) handleMove(ctx context.Context, req *wire.MoveReq) (*wire.MoveResp, error) {
	const (
		busyRetries = 50
		busyBackoff = 2 * time.Millisecond
	)
	for attempt := 0; ; attempt++ {
		resp, retry, err := n.tryMove(ctx, req)
		if !retry {
			return resp, err
		}
		if attempt >= busyRetries || ctx.Err() != nil {
			return nil, wire.Errorf(wire.CodeDenied, "working set of %s stayed busy", req.Obj)
		}
		select {
		case <-ctx.Done():
			return nil, wire.Errorf(wire.CodeDenied, "working set of %s stayed busy", req.Obj)
		case <-time.After(busyBackoff):
		}
	}
}

// tryMove performs one move attempt. retry=true means the working set
// was busy under a policy that should chase it (conventional and the
// dynamic strategies).
func (n *Node) tryMove(ctx context.Context, req *wire.MoveReq) (_ *wire.MoveResp, retry bool, _ error) {
	rec, ok := n.record(req.Obj)
	if !ok {
		return nil, false, n.whereabouts(req.Obj)
	}
	coreReq := core.MoveRequest{From: req.From, Block: req.Block}

	rec.Mu.Lock()
	if rec.Status == store.StatusGone {
		to := rec.MovedTo
		rec.Mu.Unlock()
		return nil, false, &wire.RemoteError{Code: wire.CodeMoved, Msg: req.Obj.String(), To: to}
	}
	if rec.Status == store.StatusPaused {
		// Another migration is in flight. Placement denies (the
		// object is spoken for); the chasing policies wait.
		rec.Mu.Unlock()
		if n.policy.Kind() == core.PolicyPlacement {
			return &wire.MoveResp{Outcome: wire.MoveDenied, Reason: core.ReasonLocked, At: n.id}, false, nil
		}
		return nil, true, nil
	}
	dec := n.policy.OnMove(&rec.Pol, n.id, coreReq)
	rec.Mu.Unlock()

	if dec.Action == core.ActionDeny {
		n.stats.movesDenied.Add(1)
		n.emit(Event{Kind: EventMoveDecision, Obj: Ref{OID: req.Obj}, Target: req.From, Outcome: "denied"})
		return &wire.MoveResp{Outcome: wire.MoveDenied, Reason: dec.Reason, At: n.id}, false, nil
	}

	// Granted: collocate the working set at the caller.
	members, err := n.closureOf(ctx, req.Obj, req.Alliance)
	if err != nil {
		n.moveAbort(rec, coreReq)
		return nil, false, wire.Errorf(wire.CodeInternal, "%v", err)
	}
	placement := n.policy.Kind() == core.PolicyPlacement
	admit := func(s *wire.Snapshot) error {
		lockedByOther := s.Pol.Lock.Held &&
			(s.Pol.Lock.Owner != req.From || s.Pol.Lock.Block != req.Block)
		if lockedByOther {
			return wire.Errorf(wire.CodeDenied, "working-set member %s is placed", s.ID)
		}
		if s.Pol.Fixed && s.ID != req.Obj {
			return wire.Errorf(wire.CodeFixed, "working-set member %s is fixed", s.ID)
		}
		return nil
	}
	var mutate func(*wire.Snapshot)
	if placement {
		mutate = func(s *wire.Snapshot) {
			s.Pol.Lock = core.LockState{Held: true, Owner: req.From, Block: req.Block}
		}
	}
	moved, err := n.migrateGroup(ctx, members, req.From, req.Obj, admit, mutate, n.nextTrace())
	if err != nil {
		n.moveAbort(rec, coreReq)
		if isCode(err, wire.CodeDenied) {
			if placement {
				return &wire.MoveResp{Outcome: wire.MoveDenied, Reason: core.ReasonLocked, At: n.id}, false, nil
			}
			return nil, true, nil // busy working set: chase it
		}
		if memberRaced(err) {
			// A member migrated (or its old host forgot it) between the
			// closure walk and its pause. The next attempt re-walks the
			// closure against fresh location knowledge.
			return nil, true, nil
		}
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return nil, false, re
		}
		return nil, false, wire.Errorf(wire.CodeInternal, "%v", err)
	}
	outcome := wire.MoveMigrated
	name := "granted"
	if dec.Action == core.ActionStay {
		outcome = wire.MoveStayed
		name = "stayed"
		n.stats.movesStayed.Add(1)
	} else {
		n.stats.movesGranted.Add(1)
	}
	n.emit(Event{Kind: EventMoveDecision, Obj: Ref{OID: req.Obj}, Target: req.From, Outcome: name})
	return &wire.MoveResp{Outcome: outcome, At: req.From, Moved: moved}, false, nil
}

// moveAbort undoes the policy effects of a granted move whose transfer
// failed.
func (n *Node) moveAbort(rec *store.Record, req core.MoveRequest) {
	rec.Mu.Lock()
	n.policy.Abort(&rec.Pol, req)
	rec.Mu.Unlock()
}

// endBlock closes a move-block. Following the paper, the end-request
// is a local operation for the conventional and placement policies (the
// winner holds the objects locally; the loser's end is a no-op). Only
// the dynamic strategies forward it to the object, since their counters
// must stay consistent (Section 3.3's extra cost).
func (n *Node) endBlock(ctx context.Context, ref Ref, al AllianceID, block core.BlockID, members []core.OID) error {
	req := &wire.EndReq{Obj: ref.OID, From: n.id, Block: block, Alliance: al, Members: members}
	kind := n.policy.Kind()
	dynamic := kind == core.PolicyCompareNodes || kind == core.PolicyCompareReinstantiate
	if !dynamic {
		if _, ok := n.hostedRecord(ref.OID); ok {
			_, err := n.handleEnd(ctx, req)
			return fromRemote(err)
		}
		return nil // the paper's "the end-request is simply ignored"
	}
	// Dynamic policies: chase the object.
	oid := ref.OID
	c := n.newChase(oid)
	defer c.end()
	for c.next(ctx) {
		if _, ok := n.hostedRecord(oid); ok {
			_, err := n.handleEnd(ctx, req)
			if to, moved := movedTo(err); moved {
				n.store.Learn(oid, to)
				continue
			}
			return fromRemote(err)
		}
		target := n.store.Hint(oid)
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return fmt.Errorf("%w: %s", ErrNotFound, oid)
		}
		var resp wire.EndResp
		c.hop()
		err := n.call(ctx, target, wire.KEnd, req, &resp)
		if err == nil {
			return nil
		}
		if to, moved := movedTo(err); moved {
			n.store.Learn(oid, to)
			continue
		}
		if isCode(err, wire.CodeNotFound) && target != oid.Origin {
			n.store.InvalidateAt(oid, target)
			continue
		}
		return fromRemote(err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: %s (end)", ErrUnreachable, oid)
}

// handleEnd processes an end-request at the object's host: release the
// block's group locks and, under comparing-and-reinstantiation, migrate
// towards a clear majority of open move-requests.
func (n *Node) handleEnd(ctx context.Context, req *wire.EndReq) (*wire.EndResp, error) {
	rec, ok := n.record(req.Obj)
	if !ok {
		return nil, n.whereabouts(req.Obj)
	}
	rec.Mu.Lock()
	if rec.Status == store.StatusGone {
		to := rec.MovedTo
		rec.Mu.Unlock()
		return nil, &wire.RemoteError{Code: wire.CodeMoved, Msg: req.Obj.String(), To: to}
	}
	coreEnd := core.EndRequest{From: req.From, Block: req.Block}
	dec := n.policy.OnEnd(&rec.Pol, n.id, coreEnd)
	rec.Mu.Unlock()
	n.stats.endRequests.Add(1)
	endOutcome := "noop"
	if dec.Unlocked {
		endOutcome = "unlocked"
	}
	if dec.Migrate {
		endOutcome = "reinstantiate"
	}
	n.emit(Event{Kind: EventEnd, Obj: Ref{OID: req.Obj}, Target: dec.MigrateTo, Outcome: endOutcome})

	resp := &wire.EndResp{Unlocked: dec.Unlocked, At: n.id}

	// Release the rest of the working set's group locks: exactly the
	// members the move granted (req.Members), not the closure as it
	// looks now — attachments may have changed while the block ran,
	// and recomputing would leak locks on departed members. After a
	// granted placement move the whole set lives on this node.
	if dec.Unlocked {
		for _, oid := range req.Members {
			if oid == req.Obj {
				continue
			}
			if mrec, ok := n.hostedRecord(oid); ok {
				mrec.Mu.Lock()
				n.policy.OnEnd(&mrec.Pol, n.id, coreEnd)
				mrec.Mu.Unlock()
			}
		}
	}

	if dec.Migrate {
		// Reinstantiation: hand the object to the majority. Run in
		// the background; the end-request itself stays local/cheap.
		target := dec.MigrateTo
		obj := req.Obj
		al := req.Alliance
		n.spawn(func() {
			mctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if members, err := n.closureOf(mctx, obj, al); err == nil {
				_, _ = n.migrateGroup(mctx, members, target, obj, nil, nil, n.nextTrace())
			}
		})
		resp.Migrated = true
		resp.At = target
	}
	return resp, nil
}
