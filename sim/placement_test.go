package sim

import (
	"testing"

	"objmig/internal/core"
)

// placementCapacityBase is the heterogeneous-capacity cell under
// test: one small node, most clients pinned to it.
func placementCapacityBase() Config {
	return Config{
		Nodes: 4, Clients: 8, Servers1: 6,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1,
		MeanInterBlock: 10, HotClientShare: 0.7,
		Policy: core.PolicyPlacement,
		Seed:   11, WarmupCalls: 200, BatchSize: 200, MaxCalls: 8000,
	}
}

// TestPlacementCapacityVeto: under skewed traffic the uncapped small
// node piles up beyond the cap, while the veto keeps its peak
// occupancy within capacity and actually fires.
func TestPlacementCapacityVeto(t *testing.T) {
	t.Parallel()
	const cap = 2

	uncapped := placementCapacityBase()
	free, err := Run(uncapped)
	if err != nil {
		t.Fatal(err)
	}
	if free.PlacementVetoes != 0 {
		t.Fatalf("uncapped run reported %d vetoes", free.PlacementVetoes)
	}
	if free.PeakSmallNode <= cap {
		t.Fatalf("skewed traffic never overloaded the small node (peak %d); the veto has nothing to prevent",
			free.PeakSmallNode)
	}

	capped := placementCapacityBase()
	capped.SmallNodeCapacity = cap
	capped.GossipHeartbeat = 5
	held, err := Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	if held.PeakSmallNode > cap {
		t.Fatalf("veto leaked: small-node peak %d exceeds capacity %d", held.PeakSmallNode, cap)
	}
	if held.PlacementVetoes == 0 {
		t.Fatal("capacity held but no veto ever fired")
	}
	if held.Migrations == 0 {
		t.Fatal("the veto froze all migration, not just the overload")
	}
	// Gossip staleness at veto time: with the heartbeat model on, the
	// recorded ages are positive (a veto landing exactly on a broadcast
	// is measure zero) and bounded by one heartbeat period.
	if held.GossipAgeMeanAtVeto <= 0 {
		t.Fatalf("vetoes fired but gossip age mean is %g", held.GossipAgeMeanAtVeto)
	}
	if held.GossipAgeMaxAtVeto < held.GossipAgeMeanAtVeto {
		t.Fatalf("gossip age max %g below mean %g", held.GossipAgeMaxAtVeto, held.GossipAgeMeanAtVeto)
	}
	if held.GossipAgeMaxAtVeto > capped.GossipHeartbeat {
		t.Fatalf("gossip age max %g exceeds the heartbeat period %g",
			held.GossipAgeMaxAtVeto, capped.GossipHeartbeat)
	}
	if free.GossipAgeMeanAtVeto != 0 || free.GossipAgeMaxAtVeto != 0 {
		t.Fatalf("uncapped run reported gossip ages (mean %g, max %g) without vetoes",
			free.GossipAgeMeanAtVeto, free.GossipAgeMaxAtVeto)
	}
}

// TestPlacementCapacityExperiment smoke-runs the extension experiment
// end to end (quick mode, truncated sweep) and checks its occupancy
// invariants across every cell.
func TestPlacementCapacityExperiment(t *testing.T) {
	t.Parallel()
	e := PlacementCapacity()
	e.Xs = []float64{4, 8}
	tab, err := RunExperiment(e, RunOpts{Seed: 7, Quick: true, MaxCalls: 6000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Cells {
		for j, s := range e.Series {
			r := tab.Cells[i][j]
			if s.SmallNodeCap > 0 && r.PeakSmallNode > int64(s.SmallNodeCap) {
				t.Errorf("cell %s x=%v: peak %d exceeds cap %d",
					s.Label, e.Xs[i], r.PeakSmallNode, s.SmallNodeCap)
			}
			if s.SmallNodeCap == 0 && r.PlacementVetoes != 0 {
				t.Errorf("cell %s x=%v: %d vetoes without a cap", s.Label, e.Xs[i], r.PlacementVetoes)
			}
			if r.PlacementVetoes > 0 && r.GossipAgeMeanAtVeto <= 0 {
				t.Errorf("cell %s x=%v: %d vetoes but no gossip age recorded",
					s.Label, e.Xs[i], r.PlacementVetoes)
			}
			if r.GossipAgeMaxAtVeto > e.Base.GossipHeartbeat {
				t.Errorf("cell %s x=%v: gossip age max %g exceeds heartbeat %g",
					s.Label, e.Xs[i], r.GossipAgeMaxAtVeto, e.Base.GossipHeartbeat)
			}
			if r.Calls == 0 {
				t.Errorf("cell %s x=%v: no calls measured", s.Label, e.Xs[i])
			}
		}
	}
	// Sanity: the sedentary baseline never migrates, the placement
	// series do.
	for i := range tab.Cells {
		if tab.Cells[i][0].Migrations != 0 {
			t.Errorf("sedentary cell x=%v migrated", e.Xs[i])
		}
		if tab.Cells[i][1].Migrations == 0 {
			t.Errorf("placement cell x=%v never migrated", e.Xs[i])
		}
	}
}

// TestPlacementShedDrainsOverload: a node seeded past the shed
// threshold drains itself down to it and then goes quiet — no
// oscillation, receivers never shed back.
func TestPlacementShedDrainsOverload(t *testing.T) {
	t.Parallel()
	base := Config{
		Nodes: 4, Clients: 4, Servers1: 10,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1, MeanInterBlock: 10,
		Policy:            core.PolicySedentary,
		SmallNodeCapacity: 12, SmallNodeSeed: 10,
		Seed: 3, WarmupCalls: 200, BatchSize: 200, MaxCalls: 6000,
	}

	// Baseline: without a shedder the sedentary pile stays put forever.
	still, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if still.Sheds != 0 || still.Migrations != 0 {
		t.Fatalf("sedentary baseline moved: %d sheds, %d migrations", still.Sheds, still.Migrations)
	}
	if still.FinalSmallNode != 10 {
		t.Fatalf("baseline final occupancy %d, want the seeded 10", still.FinalSmallNode)
	}

	shed := base
	shed.ShedRatio = 0.5 // threshold 6 of the 12-cap: drain 10 -> 6
	r, err := Run(shed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sheds != 4 || r.ShedObjectsMoved != 4 {
		t.Fatalf("sheds = %d (%d objects), want exactly the 4 that reach the threshold",
			r.Sheds, r.ShedObjectsMoved)
	}
	if r.FinalSmallNode > 6 {
		t.Fatalf("final occupancy %d, want <= the threshold 6", r.FinalSmallNode)
	}
	if r.ShedDrainTime <= 0 {
		t.Fatal("drain time not recorded despite the overloaded start")
	}
	// Zero oscillation: nothing the shedder moved ever needed shedding
	// again — the receiver guard kept every peer below the threshold.
	if r.ShedOscillations != 0 {
		t.Fatalf("%d shed oscillations, want none", r.ShedOscillations)
	}
}

// TestPlacementDrainEmptiesNode: the DrainAt drain job empties node 0
// completely and the draining refusal keeps it empty even while
// skewed placement traffic keeps trying to converge servers back.
func TestPlacementDrainEmptiesNode(t *testing.T) {
	t.Parallel()
	base := Config{
		Nodes: 4, Clients: 8, Servers1: 10,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1, MeanInterBlock: 10,
		Policy:         core.PolicySedentary,
		HotClientShare: 0.5, SmallNodeSeed: 6,
		Seed: 5, WarmupCalls: 200, BatchSize: 200, MaxCalls: 8000,
	}

	// Baseline: without a drain the sedentary pile stays put forever.
	still, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if still.FinalSmallNode != 6 || still.Migrations != 0 {
		t.Fatalf("baseline moved: final %d, %d migrations", still.FinalSmallNode, still.Migrations)
	}
	if still.DrainMoves != 0 || still.DrainVetoes != 0 || still.DrainDoneTime != 0 {
		t.Fatalf("baseline reported drain activity: %d moves, %d vetoes, done at %g",
			still.DrainMoves, still.DrainVetoes, still.DrainDoneTime)
	}

	// Sedentary drain: exactly the six seeded objects leave, nothing
	// else ever moves, and the node ends the run empty.
	drained := base
	drained.DrainAt = 40
	r, err := Run(drained)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalSmallNode != 0 {
		t.Fatalf("drained node still holds %d objects", r.FinalSmallNode)
	}
	if r.DrainMoves != 6 || r.DrainObjectsMoved != 6 {
		t.Fatalf("drain moved %d batches / %d objects, want exactly the seeded 6",
			r.DrainMoves, r.DrainObjectsMoved)
	}
	if r.Migrations != r.DrainMoves {
		t.Fatalf("sedentary cell migrated %d times beyond the %d drain moves", r.Migrations, r.DrainMoves)
	}
	if r.DrainDoneTime <= drained.DrainAt {
		t.Fatalf("drain done at %g, before its own start %g", r.DrainDoneTime, drained.DrainAt)
	}

	// Placement drain: half the clients live on node 0 and keep asking
	// for servers there, so the drain must both empty the node and hold
	// it empty — every post-drain convergence attempt is refused.
	pl := drained
	pl.Policy = core.PolicyPlacement
	held, err := Run(pl)
	if err != nil {
		t.Fatal(err)
	}
	if held.FinalSmallNode != 0 {
		t.Fatalf("placement traffic refilled the drained node to %d", held.FinalSmallNode)
	}
	if held.DrainDoneTime <= pl.DrainAt {
		t.Fatalf("placement drain never finished (done at %g)", held.DrainDoneTime)
	}
	if held.DrainVetoes == 0 {
		t.Fatal("no inbound transfer was ever refused; the drain held by luck, not by the refusal")
	}
	if held.Migrations <= held.DrainMoves {
		t.Fatalf("no client-driven migration beside the drain (%d total, %d drain)",
			held.Migrations, held.DrainMoves)
	}
}

// TestPlacementDrainExperiment smoke-runs the drain extension end to
// end (quick mode, truncated sweep) and checks the occupancy story of
// every cell.
func TestPlacementDrainExperiment(t *testing.T) {
	t.Parallel()
	e := Drain()
	e.Xs = []float64{5, 20}
	tab, err := RunExperiment(e, RunOpts{Seed: 17, Quick: true, MaxCalls: 6000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Cells {
		noDrain, sedDrain, plDrain := tab.Cells[i][0], tab.Cells[i][1], tab.Cells[i][2]
		if noDrain.DrainMoves != 0 || noDrain.FinalSmallNode != int64(e.Base.SmallNodeSeed) {
			t.Errorf("x=%v: drain-off cell: %d drain moves, final %d (want the seeded %d)",
				e.Xs[i], noDrain.DrainMoves, noDrain.FinalSmallNode, e.Base.SmallNodeSeed)
		}
		if sedDrain.FinalSmallNode != 0 || sedDrain.DrainObjectsMoved != int64(e.Base.SmallNodeSeed) {
			t.Errorf("x=%v: sedentary drain: final %d, %d objects moved",
				e.Xs[i], sedDrain.FinalSmallNode, sedDrain.DrainObjectsMoved)
		}
		if sedDrain.DrainDoneTime <= 0 {
			t.Errorf("x=%v: sedentary drain never finished", e.Xs[i])
		}
		if plDrain.FinalSmallNode != 0 {
			t.Errorf("x=%v: placement drain left %d objects behind", e.Xs[i], plDrain.FinalSmallNode)
		}
		if plDrain.DrainVetoes == 0 {
			t.Errorf("x=%v: placement drain never refused an inbound transfer", e.Xs[i])
		}
		if plDrain.Calls == 0 {
			t.Errorf("x=%v: placement drain cell measured no calls", e.Xs[i])
		}
	}
}

// TestPlacementShedExperiment smoke-runs the shed extension end to end
// (quick mode, truncated sweep) and checks the occupancy story of
// every cell.
func TestPlacementShedExperiment(t *testing.T) {
	t.Parallel()
	e := Shed()
	e.Xs = []float64{5, 20}
	tab, err := RunExperiment(e, RunOpts{Seed: 13, Quick: true, MaxCalls: 6000})
	if err != nil {
		t.Fatal(err)
	}
	threshold := int64(float64(e.Series[1].SmallNodeCap) * e.Series[1].ShedRatio)
	for i := range tab.Cells {
		noShed, sedShed, plShed := tab.Cells[i][0], tab.Cells[i][1], tab.Cells[i][2]
		if noShed.Sheds != 0 {
			t.Errorf("x=%v: shedder-off cell shed %d times", e.Xs[i], noShed.Sheds)
		}
		if sedShed.Sheds == 0 || sedShed.FinalSmallNode > threshold {
			t.Errorf("x=%v: sedentary shedder: %d sheds, final %d (threshold %d)",
				e.Xs[i], sedShed.Sheds, sedShed.FinalSmallNode, threshold)
		}
		if sedShed.ShedOscillations != 0 {
			t.Errorf("x=%v: sedentary shedder oscillated %d times", e.Xs[i], sedShed.ShedOscillations)
		}
		if sedShed.ShedDrainTime <= 0 {
			t.Errorf("x=%v: sedentary shedder never drained", e.Xs[i])
		}
		if plShed.Sheds == 0 {
			t.Errorf("x=%v: placement shedder never shed", e.Xs[i])
		}
		if cap := int64(e.Series[2].SmallNodeCap); plShed.PeakSmallNode > cap {
			t.Errorf("x=%v: placement peak %d exceeds cap %d", e.Xs[i], plShed.PeakSmallNode, cap)
		}
	}
}

// TestPlacementHealthVetoWindow: during the sick window every inbound
// transfer to node 0 is refused (HealthVetoes), so its resident count
// cannot grow; once the window closes, admission reopens and skewed
// traffic converges servers back onto the node.
func TestPlacementHealthVetoWindow(t *testing.T) {
	t.Parallel()
	base := Config{
		Nodes: 4, Clients: 8, Servers1: 10,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1, MeanInterBlock: 10,
		Policy:         core.PolicyPlacement,
		HotClientShare: 0.5,
		Seed:           7, WarmupCalls: 200, BatchSize: 200, MaxCalls: 8000,
	}
	// Round-robin seeding puts 2 of the 10 servers on node 0.
	const initial = 2

	// Healthy baseline: no veto ever fires, and the hot clients pull
	// servers onto node 0 past its seeded count — the convergence the
	// sick window must block.
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.HealthVetoes != 0 {
		t.Fatalf("healthy run reported %d health vetoes", healthy.HealthVetoes)
	}
	if healthy.PeakSmallNode <= initial {
		t.Fatalf("skewed traffic never converged on node 0 (peak %d); the veto has nothing to prevent",
			healthy.PeakSmallNode)
	}

	// Sick for the whole run: inbound admission never opens, so node 0
	// can only lose residents — its peak stays at the seeded count.
	sickAll := base
	sickAll.SickAt, sickAll.SickFor = 0, 1e12
	walled, err := Run(sickAll)
	if err != nil {
		t.Fatal(err)
	}
	if walled.HealthVetoes == 0 {
		t.Fatal("no inbound transfer was ever refused; the sick node held by luck, not by the veto")
	}
	if walled.PeakSmallNode != initial {
		t.Fatalf("sick node's residency peaked at %d, want the seeded %d (inbound must be walled off)",
			walled.PeakSmallNode, initial)
	}

	// A bounded window: the veto fires while the window is open, and
	// after recovery the reopened admission lets traffic converge
	// servers back past the seeded count.
	windowed := base
	windowed.SickAt, windowed.SickFor = 40, 200
	recovered, err := Run(windowed)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.HealthVetoes == 0 {
		t.Fatal("windowed sickness never refused a transfer")
	}
	if recovered.PeakSmallNode <= initial {
		t.Fatalf("node 0 never readmitted after recovery (peak %d)", recovered.PeakSmallNode)
	}
}

// TestPlacementSickExperiment smoke-runs the sick-node extension end
// to end (quick mode, truncated sweep) and checks the admission story
// of every cell.
func TestPlacementSickExperiment(t *testing.T) {
	t.Parallel()
	e := Sick()
	e.Xs = []float64{5, 20}
	tab, err := RunExperiment(e, RunOpts{Seed: 23, Quick: true, MaxCalls: 6000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Cells {
		healthy, sick := tab.Cells[i][0], tab.Cells[i][1]
		if healthy.HealthVetoes != 0 {
			t.Errorf("x=%v: healthy cell reported %d health vetoes", e.Xs[i], healthy.HealthVetoes)
		}
		if sick.HealthVetoes == 0 {
			t.Errorf("x=%v: sick cell never refused a transfer", e.Xs[i])
		}
		if sick.Calls == 0 {
			t.Errorf("x=%v: sick cell measured no calls", e.Xs[i])
		}
	}
}
