// Package store owns a node's object table and its location knowledge
// behind one lock-striped shard design: object records, the home index
// for objects the node created, the forwarding pointers for objects
// that migrated away, and the hint cache for foreign objects all live
// in the shard selected by the object's ID.
//
// The paper's live runtime decides migration at the object's current
// host, so every invoke, locate, move and forward-chase funnels through
// these tables. Striping them by OID hash gives the runtime per-object
// concurrency on the hot path — a lookup touches exactly one shard —
// while table-wide operations (close, stats, sweeps) iterate the shards
// one at a time instead of stopping the world.
//
// Arriving migration groups install through InstallBatch: a
// check-then-commit under the involved shards' locks that swaps every
// record in (or none), which is what lets the streamed migration path
// stage chunks freely and still install the whole group as a unit at
// commit. Installable is its advisory twin for early conflict checks
// while chunks are staged.
//
// The location scheme follows the paper's system model ([ChC91],
// [JLH+88]) — a name-service lookup at the object's origin plus forward
// addressing at former hosts — with three scale amendments:
//
//  1. Closure records. When an attachment closure migrates as a unit,
//     the directory stores one ClosureRec (anchor → node) and each
//     member holds only a pointer to it, so a 64-member closure costs
//     one location entry plus 64 map references instead of 64
//     independent entries, and a single Learn refreshes every member.
//  2. Self-home is implicit. A hosted record IS the home knowledge for
//     an object created here; the home index only holds entries for
//     objects that left. Home entries and forwards carry a departure
//     generation so delayed reports can never roll the index backwards.
//  3. Retirement. Forwarding state is dropped eagerly once the origin's
//     home index is confirmed authoritative (ConfirmDeparted), and any
//     survivors age out under a TTL (CompactForwards), so a node that
//     hosted a million transient objects does not keep a million dead
//     stubs. The hint cache is capped per shard.
package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"objmig/internal/core"
	"objmig/internal/wire"
)

// ShardCount is the number of lock stripes. A power of two so shard
// selection is a mask, sized well above typical core counts so that
// concurrent hot-path lookups rarely collide on a stripe.
const ShardCount = 32

// DefaultHintCacheCap bounds the foreign-object hint cache across all
// shards. 64Ki entries keep a hint-only node's location footprint at a
// few MiB no matter how many foreign objects churn past it.
const DefaultHintCacheCap = 65536

// DefaultForwardTTL is how long an unconfirmed forwarding pointer (and
// its Gone stub) survives before CompactForwards may reap it. Long
// enough that any chaser holding a hint from before the departure has
// retried through the origin; short enough that transient hosting
// leaves no permanent residue.
const DefaultForwardTTL = 10 * time.Minute

// ErrClosed is returned by mutating operations after Close.
var ErrClosed = errors.New("store: closed")

// compactEvery is the number of recorded departures between amortised
// CompactForwards sweeps (triggered via MaybeCompact).
const compactEvery = 4096

// homeEntry is one home-index record: where an object created here was
// last reported to live, with the departure generation that reported
// it. Generation 0 is the pre-generation legacy value and always loses
// ties to nothing (any report with gen >= stored gen wins).
type homeEntry struct {
	at  core.NodeID
	gen uint64
}

// fwdEntry is one forwarding pointer: the next hop for an object that
// was hosted here and left, the generation of that departure, and the
// departure time for TTL aging.
type fwdEntry struct {
	to    core.NodeID
	gen   uint64
	stamp time.Time
}

// shard is one stripe: a slice of the object table plus the location
// maps for the OIDs that hash here. The table lock and the location
// lock are separate so a record may update location state while its own
// mutex is held (forward-pointer commit) without inverting against
// table scans that take the table lock first. Lock order:
// tabMu → Record.Mu → locMu → ClosureRec.mu; the closure index lock
// (Store.closMu) is taken before locMu, never after.
type shard struct {
	tabMu sync.RWMutex
	objs  map[core.OID]*Record

	locMu sync.Mutex
	// home maps objects created by this node to their last reported
	// location. Only objects that left have entries: a hosted record is
	// its own home knowledge (see Home).
	home map[core.OID]homeEntry
	// forwards maps objects that were hosted here and left to their
	// next hop.
	forwards map[core.OID]fwdEntry
	// cache holds location hints for foreign objects, capped at the
	// store's per-shard budget.
	cache map[core.OID]core.NodeID
	// members maps closure members to their shared location record.
	// A member reference shadows home/forwards/cache for that OID.
	members map[core.OID]*ClosureRec
}

// Store is a node-local sharded object-and-location table. It is safe
// for concurrent use.
type Store struct {
	self   core.NodeID
	closed atomic.Bool
	shards [ShardCount]shard

	// cacheCap is the per-shard hint-cache bound (<0 = unbounded).
	cacheCap atomic.Int64
	// fwdTTL is the forward/stub age-out in nanoseconds (<=0 disables
	// TTL compaction).
	fwdTTL atomic.Int64
	// retired counts stubs deleted by retirement (confirm + TTL).
	retired atomic.Int64
	// sinceSweep counts departures since the last amortised sweep.
	sinceSweep atomic.Int64

	// closMu guards the anchor → closure-record index.
	closMu   sync.Mutex
	closures map[core.OID]*ClosureRec
}

// New returns an empty Store for the given node.
func New(self core.NodeID) *Store {
	s := &Store{self: self, closures: make(map[core.OID]*ClosureRec)}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.objs = make(map[core.OID]*Record)
		sh.home = make(map[core.OID]homeEntry)
		sh.forwards = make(map[core.OID]fwdEntry)
		sh.cache = make(map[core.OID]core.NodeID)
		sh.members = make(map[core.OID]*ClosureRec)
	}
	s.SetHintCacheCap(DefaultHintCacheCap)
	s.SetForwardTTL(DefaultForwardTTL)
	return s
}

// SetHintCacheCap sets the total hint-cache bound (split evenly across
// shards, minimum one entry per shard). Negative means unbounded.
func (s *Store) SetHintCacheCap(total int) {
	if total < 0 {
		s.cacheCap.Store(-1)
		return
	}
	per := total / ShardCount
	if per < 1 {
		per = 1
	}
	s.cacheCap.Store(int64(per))
}

// SetForwardTTL sets the forward/stub age-out. Non-positive disables
// TTL compaction (retirement then happens only via ConfirmDeparted).
func (s *Store) SetForwardTTL(ttl time.Duration) {
	s.fwdTTL.Store(int64(ttl))
}

// Self returns the owning node's identity.
func (s *Store) Self() core.NodeID { return s.self }

// ShardIndex maps an OID to its stripe (the shared core.HashOID,
// masked; exported for distribution tests).
func ShardIndex(id core.OID) int {
	return int(core.HashOID(id) & (ShardCount - 1))
}

func (s *Store) shardOf(id core.OID) *shard { return &s.shards[ShardIndex(id)] }

// --- Object table ---

// Add inserts a freshly created record. No home-index entry is written:
// the hosted record itself is the home knowledge (entries exist only
// for objects that left). It fails after Close.
func (s *Store) Add(rec *Record) error {
	sh := s.shardOf(rec.ID)
	sh.tabMu.Lock()
	if s.closed.Load() {
		sh.tabMu.Unlock()
		return ErrClosed
	}
	sh.objs[rec.ID] = rec
	sh.tabMu.Unlock()
	return nil
}

// Get looks a record up, forwarding stubs included.
func (s *Store) Get(id core.OID) (*Record, bool) {
	sh := s.shardOf(id)
	sh.tabMu.RLock()
	rec, ok := sh.objs[id]
	sh.tabMu.RUnlock()
	return rec, ok
}

// Hosted returns the record only when the object actually lives here
// (active or paused). Forwarding stubs are excluded: client fast paths
// must fall through to the hint chain instead of spinning on their own
// stale stub.
func (s *Store) Hosted(id core.OID) (*Record, bool) {
	rec, ok := s.Get(id)
	if !ok || rec.IsGone() {
		return nil, false
	}
	return rec, true
}

// Lookup is the hot-path combination of Hosted and Hint: it resolves
// the record if the object lives here, and otherwise the best location
// hint — touching only the object's own shard.
func (s *Store) Lookup(id core.OID) (*Record, core.NodeID) {
	if rec, ok := s.Hosted(id); ok {
		return rec, s.self
	}
	return nil, s.Hint(id)
}

// GetBatch resolves many records at once, grouping the lookups by
// shard so each involved stripe lock is taken exactly once — the batch
// counterpart of Get for large commit/abort sets, where a per-OID walk
// would pay one lock round trip per object. The result aligns with
// ids; missing objects yield nil entries.
func (s *Store) GetBatch(ids []core.OID) []*Record {
	out := make([]*Record, len(ids))
	if len(ids) == 0 {
		return out
	}
	// Bucket the positions per shard first, so each stripe lock is
	// held only for its own objects' lookups.
	var perShard [ShardCount][]int
	for i, id := range ids {
		sh := ShardIndex(id)
		perShard[sh] = append(perShard[sh], i)
	}
	for sh := range perShard {
		idxs := perShard[sh]
		if len(idxs) == 0 {
			continue
		}
		st := &s.shards[sh]
		st.tabMu.RLock()
		for _, i := range idxs {
			out[i] = st.objs[ids[i]]
		}
		st.tabMu.RUnlock()
	}
	return out
}

// Range calls fn for every record until fn returns false. Each shard's
// table is snapshotted under its own read lock; fn runs without any
// shard lock held, so it may take record locks freely.
func (s *Store) Range(fn func(*Record) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.tabMu.RLock()
		recs := make([]*Record, 0, len(sh.objs))
		for _, rec := range sh.objs {
			recs = append(recs, rec)
		}
		sh.tabMu.RUnlock()
		for _, rec := range recs {
			if !fn(rec) {
				return
			}
		}
	}
}

// HostedCount returns the number of live (non-forwarding) records.
func (s *Store) HostedCount() int {
	n := 0
	s.Range(func(rec *Record) bool {
		if !rec.IsGone() {
			n++
		}
		return true
	})
	return n
}

// HostedStats returns the live record count together with the
// approximate resident state bytes (the sum of Record.StateBytes) in
// one shard walk — the node's load-gossip sample source.
func (s *Store) HostedStats() (count, bytes int64) {
	s.Range(func(rec *Record) bool {
		if !rec.IsGone() {
			count++
			bytes += rec.StateBytes
		}
		return true
	})
	return count, bytes
}

// InstallBatch registers arriving records as part of migration token.
// The batch is all-or-nothing: either every record is installed (and
// its location state updated to "here") or none is.
//
// An existing record may only be replaced if it is a forwarding stub
// (the object is coming back) or was paused by this very migration (a
// same-node reinstall). Replacing a record paused by a *different*
// migration would orphan that migration's pause and duplicate the
// object. The check-then-commit runs with every involved shard's table
// lock held (acquired in ascending stripe order, so concurrent
// installs cannot deadlock) and every replaced record's lock held
// across the swap, which closes that race without any store-wide lock.
func (s *Store) InstallBatch(recs []*Record, token uint64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	// Lock the involved stripes in ascending order.
	var involved [ShardCount]bool
	for _, rec := range recs {
		involved[ShardIndex(rec.ID)] = true
	}
	for i := range s.shards {
		if involved[i] {
			s.shards[i].tabMu.Lock()
		}
	}
	unlockShards := func() {
		for i := range s.shards {
			if involved[i] {
				s.shards[i].tabMu.Unlock()
			}
		}
	}

	// Check phase: verify every replaced record is replaceable, and
	// hold its lock so its status cannot change before the commit.
	olds := make([]*Record, len(recs))
	var locked []*Record
	unlockRecs := func() {
		for _, o := range locked {
			o.Mu.Unlock()
		}
	}
	for i, rec := range recs {
		old, exists := s.shardOf(rec.ID).objs[rec.ID]
		if !exists {
			continue
		}
		old.Mu.Lock()
		locked = append(locked, old)
		replaceable := old.Status == StatusGone ||
			(old.Status == StatusPaused && old.Token == token)
		if !replaceable {
			unlockRecs()
			unlockShards()
			return wire.Errorf(wire.CodeDenied,
				"object %s is live at %s (concurrent migration)", rec.ID, s.self)
		}
		olds[i] = old
	}
	// Commit phase: swap the records in and turn the replaced ones
	// into wake-up markers pointing here.
	for i, rec := range recs {
		s.shardOf(rec.ID).objs[rec.ID] = rec
		if old := olds[i]; old != nil {
			old.becomeStubLocked(s.self)
		}
	}
	unlockRecs()
	unlockShards()
	for _, rec := range recs {
		s.Arrived(rec.ID)
	}
	return nil
}

// Installable is the advisory twin of InstallBatch's replaceability
// check, used while a streaming migration stages chunks: it reports
// whether installing id as part of migration token would currently be
// admissible. A live local record that is neither a forwarding stub nor
// paused by this very token dooms the session, and catching that at
// staging time aborts the stream early instead of at commit. Advisory
// only — the state can change before commit, and InstallBatch re-checks
// authoritatively under the shard locks.
func (s *Store) Installable(id core.OID, token uint64) error {
	sh := s.shardOf(id)
	sh.tabMu.RLock()
	old, exists := sh.objs[id]
	sh.tabMu.RUnlock()
	if !exists {
		return nil
	}
	old.Mu.Lock()
	defer old.Mu.Unlock()
	if old.Status == StatusGone || (old.Status == StatusPaused && old.Token == token) {
		return nil
	}
	return wire.Errorf(wire.CodeDenied,
		"object %s is live at %s (concurrent migration)", id, s.self)
}

// Close marks the store closed: no record may be added afterwards.
// Lookups keep working so in-flight chases fail gracefully. The barrier
// walks the stripes one at a time — no stop-the-world lock — and
// guarantees that once Close returns, every Add either completed or
// will observe the closed flag.
func (s *Store) Close() {
	s.closed.Store(true)
	for i := range s.shards {
		s.shards[i].tabMu.Lock()
		s.shards[i].tabMu.Unlock() //nolint:staticcheck // empty section is the barrier
	}
}

// --- Location tables ---

// Created records that this node created the object. The explicit
// self-entry serves callers (the registry facade) that track location
// without hosting records; the node runtime relies on the hosted
// record instead and never needs it.
func (s *Store) Created(id core.OID) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	sh.home[id] = homeEntry{at: s.self}
}

// Arrived records that the object is now hosted here: any forwarding
// pointer, closure-member reference and stale hint is dropped. For an
// object created here the home entry is dropped too when the record is
// actually hosted (the record is the home knowledge); when no record
// exists (registry usage) an explicit self-entry is written instead.
func (s *Store) Arrived(id core.OID) {
	_, hosted := s.Hosted(id)
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	delete(sh.forwards, id)
	delete(sh.cache, id)
	sh.detachMemberLocked(id)
	if id.Origin == s.self {
		if hosted {
			delete(sh.home, id)
		} else {
			sh.home[id] = homeEntry{at: s.self}
		}
	}
}

// Departed records that the object left this node towards to, at the
// given departure generation. At the origin the home entry alone names
// the next hop — no forwarding pointer (and hence, after stub
// retirement, no residue) is kept. At a foreign host a forwarding
// pointer is written, stamped for TTL aging. A stale generation (an
// out-of-order commit replay) never rolls a fresher entry back.
//
// Departed may run under Record.Mu (the Depart commit hook), so it must
// not touch the object table.
func (s *Store) Departed(id core.OID, to core.NodeID, gen uint64) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	sh.detachMemberLocked(id)
	delete(sh.cache, id)
	if id.Origin == s.self {
		if h, ok := sh.home[id]; !ok || gen >= h.gen {
			sh.home[id] = homeEntry{at: to, gen: gen}
		}
		return
	}
	if f, ok := sh.forwards[id]; !ok || gen >= f.gen {
		sh.forwards[id] = fwdEntry{to: to, gen: gen, stamp: time.Now()}
	}
}

// HomeUpdate records a (possibly delayed) report that objects created
// here now live at the given node. Reports about foreign objects are
// ignored. gens, when non-nil, aligns with ids and carries each
// object's departure generation: a report older than the stored entry
// (or than the member's closure record) is dropped, so batches arriving
// out of order cannot point the index backwards. Each object's shard is
// locked individually — a large batch never stalls unrelated lookups.
func (s *Store) HomeUpdate(ids []core.OID, gens []uint64, at core.NodeID) {
	for i, id := range ids {
		if id.Origin != s.self {
			continue
		}
		var gen uint64
		if i < len(gens) {
			gen = gens[i]
		}
		sh := s.shardOf(id)
		sh.locMu.Lock()
		if clos, ok := sh.members[id]; ok {
			if gen < clos.generation() {
				sh.locMu.Unlock()
				continue
			}
			sh.detachMemberLocked(id)
		}
		if h, ok := sh.home[id]; ok && gen < h.gen {
			sh.locMu.Unlock()
			continue
		}
		sh.home[id] = homeEntry{at: at, gen: gen}
		sh.locMu.Unlock()
	}
}

// Home returns this node's knowledge of where an object created here
// lives: the hosted record itself when the object is (back) here, else
// the home-index entry, else the member's closure record.
func (s *Store) Home(id core.OID) (core.NodeID, bool) {
	if _, ok := s.Hosted(id); ok {
		return s.self, true
	}
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	if h, ok := sh.home[id]; ok {
		return h.at, true
	}
	if id.Origin == s.self {
		if clos, ok := sh.members[id]; ok {
			return clos.location(), true
		}
	}
	return "", false
}

// Forward returns the forward-addressing next hop for an object that
// left: the forwarding pointer, a closure-member reference, or — for an
// object created here — the home entry when it points elsewhere (the
// origin keeps no separate forwards; its home index IS the forward).
func (s *Store) Forward(id core.OID) (core.NodeID, bool) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	if f, ok := sh.forwards[id]; ok {
		return f.to, true
	}
	if clos, ok := sh.members[id]; ok {
		if at := clos.location(); at != "" && at != s.self {
			return at, true
		}
	}
	if id.Origin == s.self {
		if h, ok := sh.home[id]; ok && h.at != "" && h.at != s.self {
			return h.at, true
		}
	}
	return "", false
}

// Learn records fresher location knowledge for an object that is not
// local. When a forwarding pointer exists it is updated in place — this
// is the classic forward-addressing chain shortening: once we hear
// where the object really is, our pointer skips the intermediate hops.
// A closure member is detached and given its own entry: a Learn is
// hearsay about ONE object, and mutating the shared record would drag
// every other member along — wrong whenever a member left the closure
// individually (a fresher closure-level update recaptures the member).
func (s *Store) Learn(id core.OID, at core.NodeID) {
	if at == "" || at == s.self {
		return
	}
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	if f, ok := sh.forwards[id]; ok {
		f.to = at
		sh.forwards[id] = f
		if id.Origin == s.self {
			if h, hok := sh.home[id]; !hok || f.gen >= h.gen {
				sh.home[id] = homeEntry{at: at, gen: f.gen}
			}
		}
		return
	}
	if clos, ok := sh.members[id]; ok {
		if clos.location() == at {
			return // nothing new: the shared record already agrees
		}
		gen := clos.generation()
		sh.detachMemberLocked(id)
		if id.Origin == s.self {
			// The origin's membership came from its own home index;
			// carry the generation so a fresher closure update can
			// still recapture the member.
			sh.home[id] = homeEntry{at: at, gen: gen}
		} else {
			// An old host's member stands in for a forwarding pointer;
			// restore one so redirects keep being served (retirement
			// and the TTL sweep apply as usual).
			sh.forwards[id] = fwdEntry{to: at, gen: gen, stamp: time.Now()}
		}
		return
	}
	if id.Origin == s.self {
		if h, ok := sh.home[id]; ok && h.at != s.self {
			h.at = at
			sh.home[id] = h
			return
		}
	}
	s.cacheInsertLocked(sh, id, at)
}

// cacheInsertLocked writes a hint-cache entry under the shard's
// location lock, evicting an arbitrary victim when the per-shard cap is
// reached. Random replacement keeps the insert O(1) with no recency
// bookkeeping on the lookup path; under churn the cache is a bloom-ish
// accelerator, not a source of truth, so eviction quality costs at most
// one extra chase hop.
func (s *Store) cacheInsertLocked(sh *shard, id core.OID, at core.NodeID) {
	if _, exists := sh.cache[id]; !exists {
		if cap := s.cacheCap.Load(); cap >= 0 && int64(len(sh.cache)) >= cap {
			for victim := range sh.cache {
				delete(sh.cache, victim)
				break
			}
		}
	}
	sh.cache[id] = at
}

// Hint suggests where to try first for an object that is not local:
// the freshest of forwarding pointer, closure record, home index and
// cache, falling back to the object's origin node.
func (s *Store) Hint(id core.OID) core.NodeID {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	if f, ok := sh.forwards[id]; ok {
		return f.to
	}
	if clos, ok := sh.members[id]; ok {
		if at := clos.location(); at != "" {
			return at
		}
	}
	if id.Origin == s.self {
		if h, ok := sh.home[id]; ok {
			return h.at
		}
	}
	if at, ok := sh.cache[id]; ok {
		return at
	}
	return id.Origin
}

// Invalidate drops a cached hint that turned out to be wrong.
func (s *Store) Invalidate(id core.OID) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	delete(sh.cache, id)
}

// InvalidateAt discredits location knowledge for id that still points
// at `at` — a node that just authoritatively denied knowing the
// object. Unlike Invalidate it also covers forwarding pointers and
// closure-member references, but only when the entry still names the
// refuted node: a concurrent update may already have moved the
// knowledge on, and that fresh state must survive the stale chaser's
// complaint.
//
// Discredited forwards and foreign member references are re-pointed at
// the object's origin rather than deleted: the entry still has
// redirect duty — Forward serves it to third-party chasers (the pause
// path of a group migration relies on old hosts answering with a next
// hop, not a dead end) — and the origin is always a correct next hop.
// Deleting would also livelock the local chase itself when the stale
// entry is an orphan nothing retires (a chain-shortened forward whose
// ack can no longer match, or one written from hearsay by Learn):
// Hint would keep serving the refuted node forever.
//
// The origin's own knowledge (home entries, self-origin member refs)
// is never touched here: an origin with neither record nor location
// entry answers not-found definitively, so erasing its last knowledge
// on a chaser's say-so would turn a stale hint into a hard failure.
// Stale origin entries heal through generation-ordered home updates
// while chases ride their deadline.
func (s *Store) InvalidateAt(id core.OID, at core.NodeID) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	if cached, ok := sh.cache[id]; ok && cached == at {
		delete(sh.cache, id)
	}
	if f, ok := sh.forwards[id]; ok && f.to == at {
		if at == id.Origin || id.Origin == s.self {
			// The origin itself denied (the object is truly unknown),
			// or the home index is the authority here anyway.
			delete(sh.forwards, id)
		} else {
			f.to = id.Origin
			sh.forwards[id] = f
		}
	}
	if clos, ok := sh.members[id]; ok && clos.location() == at && id.Origin != s.self {
		gen := clos.generation()
		sh.detachMemberLocked(id)
		if at != id.Origin {
			sh.forwards[id] = fwdEntry{to: id.Origin, gen: gen, stamp: time.Now()}
		}
	}
}

// LocStats aggregates location-table sizes across the shards (for
// diagnostics, tests and the node status line).
type LocStats struct {
	Home        int   // home-index entries (origin objects that left)
	Forwards    int   // forwarding pointers at former hosts
	Cache       int   // foreign-object hint-cache entries
	Closures    int   // shared closure location records
	ClosureRefs int   // member references into closure records
	Retired     int64 // stubs deleted by retirement since start
}

// Entries is the total number of per-object location entries plus
// shared closure records — the quantity closure-level records are
// meant to shrink.
func (ls LocStats) Entries() int {
	return ls.Home + ls.Forwards + ls.Cache + ls.Closures
}

// LocStats reports location-table sizes, summed shard by shard.
func (s *Store) LocStats() LocStats {
	var ls LocStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.locMu.Lock()
		ls.Home += len(sh.home)
		ls.Forwards += len(sh.forwards)
		ls.Cache += len(sh.cache)
		ls.ClosureRefs += len(sh.members)
		sh.locMu.Unlock()
	}
	s.closMu.Lock()
	ls.Closures = len(s.closures)
	s.closMu.Unlock()
	ls.Retired = s.retired.Load()
	return ls
}

// Debug renders everything the location tables know about one object
// (diagnostics only). home and fwd are the resolved Home/Forward views
// — at the origin a departure is carried by the home entry alone, and
// closure members resolve through their shared record.
func (s *Store) Debug(id core.OID) string {
	h, hok := s.Home(id)
	f, fok := s.Forward(id)
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	c, cok := sh.cache[id]
	m := ""
	if clos, mok := sh.members[id]; mok {
		m = fmt.Sprintf(" member(%s@%s#%d)", clos.anchor, clos.location(), clos.generation())
	}
	return fmt.Sprintf("self=%s home=%q(%v) fwd=%q(%v) cache=%q(%v)%s",
		s.self, h, hok, f, fok, c, cok, m)
}
