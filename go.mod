module objmig

go 1.22
