package store

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"sync"
	"testing"
	"time"

	"objmig/internal/core"
	"objmig/internal/wire"
)

type testState struct{ Value int }

func testRecord() *Record {
	return NewRecord(core.OID{Origin: "n", Seq: 1}, "counter", &testState{})
}

func gobEncodeState(inst interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(inst); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func isCode(err error, code wire.ErrCode) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && re.Code == code
}

func TestRecordAcquireRelease(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	ctx := context.Background()
	if err := rec.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// A second acquirer must wait until release.
	done := make(chan error, 1)
	go func() {
		done <- rec.Acquire(ctx)
	}()
	select {
	case <-done:
		t.Fatal("second acquire did not wait")
	case <-time.After(20 * time.Millisecond):
	}
	rec.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second acquire never woke")
	}
	rec.Release()
}

func TestRecordAcquireRespectsContext(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	if err := rec.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := rec.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	rec.Release()
}

func TestRecordPauseSemantics(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	ctx := context.Background()
	if err := rec.Pause(ctx, 7); err != nil {
		t.Fatal(err)
	}
	// Pause never waits on pause: a concurrent migration fails fast.
	if err := rec.Pause(ctx, 8); !isCode(err, wire.CodeDenied) {
		t.Fatalf("double pause: %v, want denied", err)
	}
	// Unpause with the wrong token is ignored.
	rec.Unpause(99)
	if err := rec.Pause(ctx, 9); !isCode(err, wire.CodeDenied) {
		t.Fatal("wrong-token unpause released the pause")
	}
	rec.Unpause(7)
	if err := rec.Pause(ctx, 10); err != nil {
		t.Fatalf("pause after unpause: %v", err)
	}
}

func TestRecordPauseWaitsForActiveInvocation(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	ctx := context.Background()
	if err := rec.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rec.Pause(ctx, 1) }()
	select {
	case <-done:
		t.Fatal("pause did not wait for the busy invocation")
	case <-time.After(20 * time.Millisecond):
	}
	rec.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRecordDepartReleasesWaiters(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	ctx := context.Background()
	if err := rec.Pause(ctx, 3); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- rec.Acquire(ctx)
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if !rec.Depart(3, "elsewhere", nil) {
		t.Fatal("depart failed")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		var re *wire.RemoteError
		if !errors.As(err, &re) || re.Code != wire.CodeMoved || re.To != "elsewhere" {
			t.Fatalf("waiter got %v, want moved-to-elsewhere", err)
		}
	}
	if !rec.IsGone() {
		t.Fatal("record not gone after depart")
	}
}

func TestRecordDepartTokenMismatch(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	if rec.Depart(5, "x", nil) {
		t.Fatal("depart succeeded without a pause")
	}
	if err := rec.Pause(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if rec.Depart(6, "x", nil) {
		t.Fatal("depart succeeded with the wrong token")
	}
	if !rec.Depart(5, "x", nil) {
		t.Fatal("depart failed with the right token")
	}
}

func TestRecordEdgeBookkeeping(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	o1 := core.OID{Origin: "n", Seq: 2}
	o2 := core.OID{Origin: "n", Seq: 3}
	rec.AddEdge(o1, 1)
	rec.AddEdge(o1, 2)
	rec.AddEdge(o2, 1)
	if rec.Degree() != 2 {
		t.Fatalf("degree = %d, want 2 partners", rec.Degree())
	}
	if !rec.PairedWith(o1) || rec.PairedWith(core.OID{Origin: "n", Seq: 9}) {
		t.Fatal("PairedWith mismatch")
	}
	edges := rec.EdgeList()
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	// Canonical order: (o1,1), (o1,2), (o2,1).
	if edges[0].Alliance != 1 || edges[1].Alliance != 2 || edges[2].Other != o2 {
		t.Fatalf("edge order = %v", edges)
	}
	if !rec.DelEdge(o1, 1) || rec.DelEdge(o1, 1) {
		t.Fatal("DelEdge idempotence broken")
	}
	if rec.Degree() != 2 {
		t.Fatalf("degree after partial del = %d", rec.Degree())
	}
	rec.DelEdge(o1, 2)
	if rec.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", rec.Degree())
	}
}

func TestSnapshotCarriesPolicyState(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	rec.Pol.Fixed = true
	rec.Pol.Lock = core.LockState{Held: true, Owner: "w", Block: 9}
	rec.AddEdge(core.OID{Origin: "n", Seq: 2}, 4)
	snap, err := rec.Snapshot(gobEncodeState)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Pol.Fixed || !snap.Pol.Lock.Held || snap.Pol.Lock.Owner != "w" {
		t.Fatalf("policy state lost: %+v", snap.Pol)
	}
	if len(snap.Edges) != 1 || snap.Edges[0].Alliance != 4 {
		t.Fatalf("edges lost: %v", snap.Edges)
	}
	if snap.Type != "counter" {
		t.Fatalf("type = %q", snap.Type)
	}
}
