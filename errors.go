package objmig

import (
	"errors"
	"fmt"

	"objmig/internal/wire"
)

// Sentinel errors of the public API. Remote failures are translated to
// these, so callers can test with errors.Is regardless of which node
// produced the failure.
var (
	// ErrNotFound: no node on the lookup path knows the object.
	ErrNotFound = errors.New("objmig: object not found")
	// ErrFixed: the object is fixed and cannot migrate.
	ErrFixed = errors.New("objmig: object is fixed")
	// ErrDenied is the paper's "indication": a move-request lost
	// against a transient-placement lock, a dynamic policy kept the
	// object where it is, or the requested working set was busy. The
	// block's calls simply proceed to the object's current location.
	ErrDenied = errors.New("objmig: move denied")
	// ErrUnknownType: the receiving node has no registration for the
	// object's type and cannot host or create it.
	ErrUnknownType = errors.New("objmig: unknown object type")
	// ErrUnknownMethod: the object's type has no such method.
	ErrUnknownMethod = errors.New("objmig: unknown method")
	// ErrExclusive: the attachment violated the exclusive-attachment
	// rule and was ignored.
	ErrExclusive = errors.New("objmig: exclusive attachment refused")
	// ErrClosed: the node has been shut down.
	ErrClosed = errors.New("objmig: node closed")
	// ErrUnreachable: the object kept moving (or the location data
	// kept misleading us) for more than the retry budget.
	ErrUnreachable = errors.New("objmig: object unreachable")
)

// fromRemote translates a wire-level error into the public sentinels,
// wrapping to preserve the remote message.
func fromRemote(err error) error {
	if err == nil {
		return nil
	}
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	switch re.Code {
	case wire.CodeNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, re.Msg)
	case wire.CodeFixed:
		return fmt.Errorf("%w: %s", ErrFixed, re.Msg)
	case wire.CodeDenied:
		return fmt.Errorf("%w: %s", ErrDenied, re.Msg)
	case wire.CodeUnknownType:
		return fmt.Errorf("%w: %s", ErrUnknownType, re.Msg)
	case wire.CodeUnknownMethod:
		return fmt.Errorf("%w: %s", ErrUnknownMethod, re.Msg)
	case wire.CodeExclusive:
		return fmt.Errorf("%w: %s", ErrExclusive, re.Msg)
	case wire.CodeUnavailable:
		return fmt.Errorf("%w: %s", ErrClosed, re.Msg)
	default:
		return re
	}
}

// movedTo extracts the forwarding target from a CodeMoved error.
func movedTo(err error) (NodeID, bool) {
	var re *wire.RemoteError
	if errors.As(err, &re) && re.Code == wire.CodeMoved {
		return re.To, true
	}
	return "", false
}
