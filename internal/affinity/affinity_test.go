package affinity

import (
	"fmt"
	"sync"
	"testing"

	"objmig/internal/core"
)

func oid(origin string, seq uint64) core.OID {
	return core.OID{Origin: core.NodeID(origin), Seq: seq}
}

func enabled(self core.NodeID) *Tracker {
	t := New(self)
	t.SetEnabled(true)
	return t
}

func TestDisabledTrackerRecordsNothing(t *testing.T) {
	t.Parallel()
	tr := New("n0")
	tr.Record(oid("n0", 1), "n1")
	if got := tr.Hot(0); len(got) != 0 {
		t.Fatalf("disabled tracker recorded: %+v", got)
	}
	if obs := tr.Take([]core.OID{oid("n0", 1)}); obs != nil {
		t.Fatalf("disabled Take = %+v", obs)
	}
}

func TestRecordAndLoad(t *testing.T) {
	t.Parallel()
	tr := enabled("n0")
	o := oid("n0", 1)
	for i := 0; i < 5; i++ {
		tr.Record(o, "n1")
	}
	for i := 0; i < 3; i++ {
		tr.Record(o, "n2")
	}
	for i := 0; i < 2; i++ {
		tr.RecordLocal(o)
	}
	tr.Record(o, "") // unattributable: ignored

	l := tr.Load(o)
	if l.Local != 2 || l.Total != 10 {
		t.Fatalf("load = %+v", l)
	}
	if len(l.Callers) != 2 || l.Callers[0] != (CallerLoad{Node: "n1", Count: 5}) ||
		l.Callers[1] != (CallerLoad{Node: "n2", Count: 3}) {
		t.Fatalf("callers = %+v", l.Callers)
	}
}

func TestCallerOrderingIsDeterministic(t *testing.T) {
	t.Parallel()
	tr := enabled("n0")
	o := oid("n0", 1)
	// Equal counts: ties must break by node ID.
	tr.Record(o, "zz")
	tr.Record(o, "aa")
	tr.Record(o, "mm")
	l := tr.Load(o)
	if len(l.Callers) != 3 || l.Callers[0].Node != "aa" || l.Callers[1].Node != "mm" || l.Callers[2].Node != "zz" {
		t.Fatalf("tie order = %+v", l.Callers)
	}
}

// TestDecayHalvesAndForgets: each Decay halves every counter (integer
// division), and an object whose pressure bottoms out is dropped.
func TestDecayHalvesAndForgets(t *testing.T) {
	t.Parallel()
	tr := enabled("n0")
	o := oid("n0", 1)
	for i := 0; i < 8; i++ {
		tr.Record(o, "n1")
	}
	for i := 0; i < 3; i++ {
		tr.RecordLocal(o)
	}

	tr.Decay()
	l := tr.Load(o)
	if l.Local != 1 || len(l.Callers) != 1 || l.Callers[0].Count != 4 {
		t.Fatalf("after one decay: %+v", l)
	}
	tr.Decay() // local 0, caller 2
	tr.Decay() // caller 1
	l = tr.Load(o)
	if l.Local != 0 || l.Total != 1 {
		t.Fatalf("after three decays: %+v", l)
	}
	tr.Decay() // everything zero: entry dropped
	if got := tr.Hot(0); len(got) != 0 {
		t.Fatalf("object survived full decay: %+v", got)
	}
}

func TestHotFiltersAndSorts(t *testing.T) {
	t.Parallel()
	tr := enabled("n0")
	hot, warm, cold := oid("n0", 1), oid("n0", 2), oid("n0", 3)
	for i := 0; i < 10; i++ {
		tr.Record(hot, "n1")
	}
	for i := 0; i < 5; i++ {
		tr.Record(warm, "n2")
	}
	tr.Record(cold, "n1")

	got := tr.Hot(5)
	if len(got) != 2 {
		t.Fatalf("Hot(5) = %+v", got)
	}
	seen := map[core.OID]int64{}
	for _, l := range got {
		seen[l.Obj] = l.Total
	}
	if seen[hot] != 10 || seen[warm] != 5 {
		t.Fatalf("Hot totals = %v", seen)
	}
}

// TestTakeRemovesAndReports: Take returns the observations (local
// serves attributed to the tracker's own node) and forgets the object.
func TestTakeRemovesAndReports(t *testing.T) {
	t.Parallel()
	tr := enabled("n0")
	o := oid("n0", 1)
	tr.Record(o, "n1")
	tr.Record(o, "n1")
	tr.RecordLocal(o)

	obs := tr.Take([]core.OID{o, oid("n0", 99)})
	if len(obs) != 2 {
		t.Fatalf("obs = %+v", obs)
	}
	if obs[0] != (Obs{Obj: o, From: "n0", Count: 1}) || obs[1] != (Obs{Obj: o, From: "n1", Count: 2}) {
		t.Fatalf("obs = %+v", obs)
	}
	if l := tr.Load(o); l.Total != 0 {
		t.Fatalf("object survived Take: %+v", l)
	}
}

// TestMergeFoldsGossip: merged observations accumulate, and ones about
// this node's own callers count as local serves.
func TestMergeFoldsGossip(t *testing.T) {
	t.Parallel()
	tr := enabled("n1")
	o := oid("n0", 1)
	tr.Record(o, "n2")
	tr.Merge([]Obs{
		{Obj: o, From: "n2", Count: 4},
		{Obj: o, From: "n1", Count: 3}, // about ourselves: local
		{Obj: o, From: "", Count: 9},   // unattributable: ignored
		{Obj: o, From: "n3", Count: 0}, // empty: ignored
	})
	l := tr.Load(o)
	if l.Local != 3 || l.Total != 8 || len(l.Callers) != 1 || l.Callers[0].Count != 5 {
		t.Fatalf("after merge: %+v", l)
	}
}

func TestDropForgets(t *testing.T) {
	t.Parallel()
	tr := enabled("n0")
	o := oid("n0", 1)
	tr.Record(o, "n1")
	tr.Drop([]core.OID{o})
	if l := tr.Load(o); l.Total != 0 {
		t.Fatalf("object survived Drop: %+v", l)
	}
}

// TestConcurrentRecording hammers Record/Hot/Decay/Take from many
// goroutines; run under -race this is the tracker's thread-safety
// proof. Counts cannot be asserted exactly (decay races fold
// increments) so the test checks only for sanity and survival.
func TestConcurrentRecording(t *testing.T) {
	t.Parallel()
	tr := enabled("n0")
	const (
		workers = 8
		objects = 64
		ops     = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			from := core.NodeID(fmt.Sprintf("n%d", w%4))
			for i := 0; i < ops; i++ {
				o := oid("n0", uint64(i%objects))
				tr.Record(o, from)
				switch i % 500 {
				case 99:
					tr.Decay()
				case 199:
					_ = tr.Hot(1)
				case 299:
					_ = tr.Take([]core.OID{o})
				case 399:
					tr.Merge([]Obs{{Obj: o, From: "n9", Count: 2}})
				}
			}
		}(w)
	}
	wg.Wait()
	for _, l := range tr.Hot(0) {
		if l.Total < 0 || l.Local < 0 {
			t.Fatalf("negative counters: %+v", l)
		}
	}
}

// TestRecordZeroAllocSteadyState guards the hot-path contract: once an
// object and caller are known, Record must not allocate.
func TestRecordZeroAllocSteadyState(t *testing.T) {
	tr := enabled("n0")
	o := oid("n0", 1)
	tr.Record(o, "n1") // warm: object + caller installed
	tr.RecordLocal(o)
	if n := testing.AllocsPerRun(1000, func() {
		tr.Record(o, "n1")
		tr.RecordLocal(o)
	}); n != 0 {
		t.Fatalf("steady-state Record allocates %.1f times per run", n)
	}
}
