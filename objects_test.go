package objmig

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"objmig/internal/core"
	"objmig/internal/wire"
)

func testRecord() *objRecord {
	return newObjRecord(core.OID{Origin: "n", Seq: 1}, "counter", &counterState{})
}

func TestRecordAcquireRelease(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	ctx := context.Background()
	if err := rec.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// A second acquirer must wait until release.
	done := make(chan error, 1)
	go func() {
		done <- rec.acquire(ctx)
	}()
	select {
	case <-done:
		t.Fatal("second acquire did not wait")
	case <-time.After(20 * time.Millisecond):
	}
	rec.release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second acquire never woke")
	}
	rec.release()
}

func TestRecordAcquireRespectsContext(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	if err := rec.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := rec.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	rec.release()
}

func TestRecordPauseSemantics(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	ctx := context.Background()
	if err := rec.pause(ctx, 7); err != nil {
		t.Fatal(err)
	}
	// Pause never waits on pause: a concurrent migration fails fast.
	if err := rec.pause(ctx, 8); !isCode(err, wire.CodeDenied) {
		t.Fatalf("double pause: %v, want denied", err)
	}
	// Unpause with the wrong token is ignored.
	rec.unpause(99)
	if err := rec.pause(ctx, 9); !isCode(err, wire.CodeDenied) {
		t.Fatal("wrong-token unpause released the pause")
	}
	rec.unpause(7)
	if err := rec.pause(ctx, 10); err != nil {
		t.Fatalf("pause after unpause: %v", err)
	}
}

func TestRecordPauseWaitsForActiveInvocation(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	ctx := context.Background()
	if err := rec.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rec.pause(ctx, 1) }()
	select {
	case <-done:
		t.Fatal("pause did not wait for the busy invocation")
	case <-time.After(20 * time.Millisecond):
	}
	rec.release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRecordDepartReleasesWaiters(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	ctx := context.Background()
	if err := rec.pause(ctx, 3); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- rec.acquire(ctx)
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if !rec.depart(3, "elsewhere", nil) {
		t.Fatal("depart failed")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		var re *wire.RemoteError
		if !errors.As(err, &re) || re.Code != wire.CodeMoved || re.To != "elsewhere" {
			t.Fatalf("waiter got %v, want moved-to-elsewhere", err)
		}
	}
	if !rec.isGone() {
		t.Fatal("record not gone after depart")
	}
}

func TestRecordDepartTokenMismatch(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	if rec.depart(5, "x", nil) {
		t.Fatal("depart succeeded without a pause")
	}
	if err := rec.pause(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if rec.depart(6, "x", nil) {
		t.Fatal("depart succeeded with the wrong token")
	}
	if !rec.depart(5, "x", nil) {
		t.Fatal("depart failed with the right token")
	}
}

func TestRecordEdgeBookkeeping(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	o1 := core.OID{Origin: "n", Seq: 2}
	o2 := core.OID{Origin: "n", Seq: 3}
	rec.addEdge(o1, 1)
	rec.addEdge(o1, 2)
	rec.addEdge(o2, 1)
	if rec.degree() != 2 {
		t.Fatalf("degree = %d, want 2 partners", rec.degree())
	}
	if !rec.pairedWith(o1) || rec.pairedWith(core.OID{Origin: "n", Seq: 9}) {
		t.Fatal("pairedWith mismatch")
	}
	edges := rec.edgeList()
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	// Canonical order: (o1,1), (o1,2), (o2,1).
	if edges[0].Alliance != 1 || edges[1].Alliance != 2 || edges[2].Other != o2 {
		t.Fatalf("edge order = %v", edges)
	}
	if !rec.delEdge(o1, 1) || rec.delEdge(o1, 1) {
		t.Fatal("delEdge idempotence broken")
	}
	if rec.degree() != 2 {
		t.Fatalf("degree after partial del = %d", rec.degree())
	}
	rec.delEdge(o1, 2)
	if rec.degree() != 1 {
		t.Fatalf("degree = %d, want 1", rec.degree())
	}
}

func TestSnapshotCarriesPolicyState(t *testing.T) {
	t.Parallel()
	rec := testRecord()
	rec.pol.Fixed = true
	rec.pol.Lock = core.LockState{Held: true, Owner: "w", Block: 9}
	rec.addEdge(core.OID{Origin: "n", Seq: 2}, 4)
	snap, err := rec.snapshot(newCounterType())
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Pol.Fixed || !snap.Pol.Lock.Held || snap.Pol.Lock.Owner != "w" {
		t.Fatalf("policy state lost: %+v", snap.Pol)
	}
	if len(snap.Edges) != 1 || snap.Edges[0].Alliance != 4 {
		t.Fatalf("edges lost: %v", snap.Edges)
	}
	if snap.Type != "counter" {
		t.Fatalf("type = %q", snap.Type)
	}
}

// TestMigrationAbortRollsBack: when the admission check vetoes a group
// migration, every member must be unpaused and usable.
func TestMigrationAbortRollsBack(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicyPlacement, Attach: AttachUnrestricted})
	a := mustCreate(t, nodes[0])
	b := mustCreate(t, nodes[0])
	if err := nodes[0].Attach(ctx, a, b, NoAlliance); err != nil {
		t.Fatal(err)
	}
	// Fix a member: the admission check must veto moving the group
	// and roll the pauses back.
	if err := nodes[0].Fix(ctx, b); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Migrate(ctx, a, "n1"); !errors.Is(err, ErrFixed) {
		t.Fatalf("migrate with fixed member: %v", err)
	}
	// Everything still works and nothing moved.
	if at := whereIs(t, ctx, nodes[0], a); at != "n0" {
		t.Fatalf("a at %v after aborted migration", at)
	}
	if v, err := Call[int, int](ctx, nodes[1], a, "Add", 1); err != nil || v != 1 {
		t.Fatalf("a unusable after abort: %d, %v", v, err)
	}
	if v, err := Call[int, int](ctx, nodes[1], b, "Add", 1); err != nil || v != 1 {
		t.Fatalf("b unusable after abort: %d, %v", v, err)
	}
	// After unfixing, the same migration succeeds.
	if err := nodes[0].Unfix(ctx, b); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Migrate(ctx, a, "n1"); err != nil {
		t.Fatal(err)
	}
	if at := whereIs(t, ctx, nodes[0], b); at != "n1" {
		t.Fatalf("b at %v after retry", at)
	}
}

// TestConcurrentGroupMigrationsOverlap: two concurrent migrations of
// overlapping working sets must not corrupt state — one wins, the other
// fails cleanly or retries, and afterwards the working set is intact on
// a single node.
func TestConcurrentGroupMigrationsOverlap(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Policy: PolicyConventional, Attach: AttachUnrestricted})
	a := mustCreate(t, nodes[0])
	b := mustCreate(t, nodes[0])
	if err := nodes[0].Attach(ctx, a, b, NoAlliance); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		var wg sync.WaitGroup
		for _, tgt := range []NodeID{"n1", "n2"} {
			wg.Add(1)
			go func(tgt NodeID) {
				defer wg.Done()
				// Conflicts may surface as denied/unreachable; they
				// must never corrupt.
				_ = nodes[0].Migrate(ctx, a, tgt)
			}(tgt)
		}
		wg.Wait()
		atA, err := nodes[0].Locate(ctx, a)
		if err != nil {
			t.Fatalf("round %d: locate a: %v", round, err)
		}
		atB, err := nodes[0].Locate(ctx, b)
		if err != nil {
			t.Fatalf("round %d: locate b: %v", round, err)
		}
		if atA != atB {
			t.Fatalf("round %d: working set split: a@%s b@%s", round, atA, atB)
		}
		if v, err := Call[int, int](ctx, nodes[1], a, "Add", 1); err != nil || v != round+1 {
			t.Fatalf("round %d: a = %d, %v", round, v, err)
		}
	}
}

// TestMigrateToCurrentHost: migrating to where the object already lives
// is a clean no-op.
func TestMigrateToCurrentHost(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{})
	ref := mustCreate(t, nodes[0])
	if _, err := Call[int, int](ctx, nodes[0], ref, "Add", 3); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Migrate(ctx, ref, "n0"); err != nil {
		t.Fatalf("self-migrate: %v", err)
	}
	if v, err := Call[struct{}, int](ctx, nodes[1], ref, "Get", struct{}{}); err != nil || v != 3 {
		t.Fatalf("state after self-migrate: %d, %v", v, err)
	}
}
