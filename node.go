package objmig

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"objmig/internal/affinity"
	"objmig/internal/core"
	"objmig/internal/placement"
	"objmig/internal/rpc"
	"objmig/internal/store"
	"objmig/internal/telemetry"
	"objmig/internal/transport"
	"objmig/internal/wire"
)

// Cluster is the communication fabric nodes attach to. Create one
// in-memory cluster per test or example, or a TCP cluster for real
// deployments.
type Cluster struct {
	tr  transport.Transport
	mem *transport.Network
}

// NewLocalCluster returns an in-process fabric. Nodes on it are
// addressed by their NodeID; no explicit peer addresses are needed.
func NewLocalCluster() *Cluster {
	n := transport.NewNetwork()
	return &Cluster{tr: n.Transport(), mem: n}
}

// SetLatency injects a per-frame delivery delay on a local cluster
// (no-op on TCP clusters), for observing migration behaviour on a
// realistic network.
func (c *Cluster) SetLatency(d time.Duration) {
	if c.mem != nil {
		c.mem.SetLatency(d)
	}
}

// NewTCPCluster returns a TCP fabric. Nodes must be given listen
// addresses and an address book (Config.Peers / Node.AddPeer).
func NewTCPCluster() *Cluster {
	return &Cluster{tr: transport.TCP{}}
}

// Config configures a node.
type Config struct {
	// ID is the node's identity. Required, unique per cluster.
	ID NodeID
	// Cluster is the fabric to attach to. Required.
	Cluster *Cluster
	// ListenAddr is where the node listens. Defaults to the NodeID on
	// local clusters and 127.0.0.1:0 on TCP clusters.
	ListenAddr string
	// Policy is the node's move-policy. Defaults to the paper's
	// recommendation, transient placement.
	Policy PolicyKind
	// Attach is the attachment-transitivity regime. Defaults to the
	// paper's recommendation, A-transitive attachment.
	Attach AttachMode
	// Peers maps node IDs to dial addresses (needed on TCP clusters;
	// local clusters address peers by ID automatically).
	Peers map[NodeID]string
	// CallRetries is the attempt half of the redirect-chasing budget:
	// a chase may always make this many attempts, deadline or not.
	// Defaults to 32. A chase normally terminates within a handful of
	// hops; see ChaseDeadline for what happens when migrations churn
	// faster than the chase can follow.
	CallRetries int
	// ChaseDeadline is the wall-clock half of the redirect-chasing
	// budget: once CallRetries attempts are spent, a chase keeps
	// retrying (with a gently growing backoff) until the deadline
	// passes, so a chase racing heavy migration ping-pong waits the
	// churn out instead of reporting ErrUnreachable while the object
	// is merely in flight. Defaults to 2s; negative disables the
	// extension (the attempt budget alone bounds the chase). The
	// call's context still cancels a chase at any time.
	ChaseDeadline time.Duration
	// Migrate tunes the streaming group-migration transfer (chunk
	// size, staging-session TTL, pause lease). The zero value selects
	// the documented defaults; see MigrateConfig.
	Migrate MigrateConfig
	// Directory tunes the location directory (hint-cache cap, forward
	// TTL, chase-hop budget, closure records). The zero value selects
	// the documented defaults; see DirectoryConfig.
	Directory DirectoryConfig
	// Capacity is the node's advertised object capacity, gossiped with
	// its load samples and enforced by the placement admission veto: a
	// migration that would push the hosted-object count past
	// Capacity×OverloadRatio is refused while placement is enabled.
	// 0 means uncapped. Explicit application primitives are subject to
	// the veto too — back-pressure is only useful if it holds.
	Capacity int64
	// CapacityBytes is the node's advertised resident-byte capacity,
	// the byte twin of Capacity: admission and scoring weigh a
	// candidate by the *worse* of its object-count and byte
	// utilisation, so one 1 GiB object no longer costs the same as one
	// 1 KiB object. 0 means uncapped in the byte dimension.
	CapacityBytes int64
	// Observer, when non-nil, receives runtime events (invocations,
	// move decisions, migrations, ...) synchronously. Observers must
	// be fast and must not call back into the node.
	Observer Observer
	// ObserverBuffer switches event delivery to a bounded asynchronous
	// queue of this many events, drained by one background goroutine:
	// the hot path never blocks on a slow observer. When the queue is
	// full the event is dropped and Stats.EventsDropped counts it —
	// backpressure by shedding, never by stalling. 0 (the default)
	// keeps the synchronous delivery.
	ObserverBuffer int
}

// Node hosts distributed objects and executes the migration policies at
// the current location of each object (paper Fig. 3).
//
// The node itself holds no object-table lock: records and location
// state live in the lock-striped internal/store, so hot-path lookups
// contend only on the addressed object's shard. The remaining node
// state is either immutable after construction, atomic (ID counters,
// the closed flag), or configuration guarded by cfgMu (registered
// types, the peer address book).
type Node struct {
	id            NodeID
	policy        core.MovePolicy
	attachMode    core.AttachMode
	retries       int
	chaseDeadline time.Duration
	migrate       MigrateConfig
	dir           DirectoryConfig
	observer      Observer
	events        *eventSink // non-nil when Config.ObserverBuffer > 0

	server *rpc.Server
	pool   *rpc.Pool
	store  *store.Store

	sessMu   sync.Mutex
	sessions map[sessionKey]*migSession
	tombs    map[sessionKey]time.Time // abort fences; see abortFence
	leaseMu  sync.Mutex
	leases   map[sessionKey]*pauseLease

	aff       *affinity.Tracker
	homeBatch *homeBatcher
	// apMu guards the optimiser daemons (autopilot, placement, health)
	// and the affinity tracker's user count — the first two daemons
	// feed on the tracker, so it stays enabled while either runs.
	apMu     sync.Mutex
	ap       *autopilot
	pl       *placementDaemon
	hl       *healthDaemon
	affUsers int

	// healthState is the health engine's current verdict (HealthState
	// numeric), stamped into every outgoing load sample so peers learn
	// it over the existing gossip. Stays 0 while health is disabled.
	healthState atomic.Uint32
	// lastDump holds the most recent automatic flight-recorder dump
	// (serialised JSON), frozen at the moment of an upward health
	// transition.
	lastDump atomic.Pointer[[]byte]

	capacity int64
	capBytes int64
	// resv is the admission reservation ledger: claims made at
	// MigrateBegin/Install admission, released on commit, abort or
	// session expiry. Always non-nil; it only accumulates claims while
	// placement is enabled on a capped node.
	resv     *placement.Ledger
	loadSeq  atomic.Uint64                 // load-sample ordering (see wire.NodeLoad.Seq)
	lastLoad atomic.Pointer[wire.NodeLoad] // latest self-sample, for piggybacks

	cfgMu sync.RWMutex
	types map[string]objectType
	peers map[NodeID]string

	// jobMu guards the migration-job registry (see jobs.go); jobSeq
	// mints job IDs. draining is set while a drain job executes here:
	// inbound migrations are refused at admission so the node empties
	// instead of refilling (see admitAndReserve).
	jobMu    sync.Mutex
	jobTable map[uint64]*Job
	jobSeq   atomic.Uint64
	draining atomic.Bool

	seq       atomic.Uint64 // object IDs minted here
	block     atomic.Uint64 // move-block IDs
	token     atomic.Uint64 // migration tokens (low half; see nextToken)
	traceSeq  atomic.Uint64 // migration TraceIDs (low half; see nextTrace)
	tokenBase uint64        // node-identity half of migration tokens
	allSeq    atomic.Uint32 // alliance IDs
	closed    atomic.Bool

	stats nodeStats
	tel   *nodeTelemetry

	bg sync.WaitGroup // background work: home updates, reinstantiation
}

// NewNode creates and starts a node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("objmig: Config.ID is required")
	}
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("objmig: Config.Cluster is required")
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyPlacement
	}
	if !cfg.Policy.Valid() {
		return nil, fmt.Errorf("objmig: invalid policy %d", cfg.Policy)
	}
	if cfg.Attach == 0 {
		cfg.Attach = AttachATransitive
	}
	if !cfg.Attach.Valid() {
		return nil, fmt.Errorf("objmig: invalid attach mode %d", cfg.Attach)
	}
	if cfg.CallRetries <= 0 {
		cfg.CallRetries = 32
	}
	if cfg.ChaseDeadline == 0 {
		cfg.ChaseDeadline = 2 * time.Second
	}
	listen := cfg.ListenAddr
	if listen == "" {
		if cfg.Cluster.mem != nil {
			listen = string(cfg.ID)
		} else {
			listen = "127.0.0.1:0"
		}
	}
	l, err := cfg.Cluster.tr.Listen(listen)
	if err != nil {
		return nil, fmt.Errorf("objmig: listen: %w", err)
	}
	n := &Node{
		id:            cfg.ID,
		policy:        core.PolicyFor(cfg.Policy),
		attachMode:    cfg.Attach,
		retries:       cfg.CallRetries,
		chaseDeadline: cfg.ChaseDeadline,
		migrate:       cfg.Migrate.withDefaults(),
		dir:           cfg.Directory.withDefaults(),
		capacity:      cfg.Capacity,
		capBytes:      cfg.CapacityBytes,
		resv:          placement.NewLedger(),
		observer:      cfg.Observer,
		pool:          rpc.NewPool(cfg.Cluster.tr),
		store:         store.New(cfg.ID),
		aff:           affinity.New(cfg.ID),
		types:         make(map[string]objectType),
		peers:         make(map[NodeID]string),
		sessions:      make(map[sessionKey]*migSession),
		tombs:         make(map[sessionKey]time.Time),
		leases:        make(map[sessionKey]*pauseLease),
		jobTable:      make(map[uint64]*Job),
		tel:           newNodeTelemetry(),
	}
	if cfg.Observer != nil && cfg.ObserverBuffer > 0 {
		n.events = newEventSink(cfg.Observer, cfg.ObserverBuffer)
	}
	for id, addr := range cfg.Peers {
		n.peers[id] = addr
	}
	n.store.SetHintCacheCap(n.dir.HintCacheCap)
	n.store.SetForwardTTL(n.dir.ForwardTTL)
	h := fnv.New32a()
	_, _ = h.Write([]byte(n.id))
	n.tokenBase = uint64(h.Sum32()) << 32
	n.homeBatch = newHomeBatcher(n)
	n.server = rpc.Serve(l, n.handle)
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.id }

// Addr returns the node's listen address (give it to peers on TCP
// clusters).
func (n *Node) Addr() string { return n.server.Addr() }

// Policy returns the node's move-policy kind.
func (n *Node) Policy() PolicyKind { return n.policy.Kind() }

// AttachPolicy returns the node's attachment regime.
func (n *Node) AttachPolicy() AttachMode { return n.attachMode }

// AddPeer teaches the node how to reach another node.
func (n *Node) AddPeer(id NodeID, addr string) {
	n.cfgMu.Lock()
	defer n.cfgMu.Unlock()
	n.peers[id] = addr
}

// addrOf resolves a node ID to a dial address. On local clusters the
// ID is the address.
func (n *Node) addrOf(id NodeID) string {
	n.cfgMu.RLock()
	defer n.cfgMu.RUnlock()
	if addr, ok := n.peers[id]; ok {
		return addr
	}
	return string(id)
}

// RegisterType makes the node able to host objects of the type. All
// nodes that may receive migrating instances must register the type.
func (n *Node) RegisterType(t interface{ Name() string }) error {
	ot, ok := t.(objectType)
	if !ok {
		return fmt.Errorf("objmig: %T is not an object type (use NewType)", t)
	}
	n.cfgMu.Lock()
	defer n.cfgMu.Unlock()
	if _, dup := n.types[ot.Name()]; dup {
		return fmt.Errorf("objmig: type %q registered twice", ot.Name())
	}
	n.types[ot.Name()] = ot
	return nil
}

// typeByName looks a registered type up.
func (n *Node) typeByName(name string) (objectType, bool) {
	n.cfgMu.RLock()
	defer n.cfgMu.RUnlock()
	t, ok := n.types[name]
	return t, ok
}

// Create instantiates a fresh object of the named type on this node and
// returns its reference.
func (n *Node) Create(typeName string) (Ref, error) {
	t, ok := n.typeByName(typeName)
	if !ok {
		return Ref{}, fmt.Errorf("%w: %q", ErrUnknownType, typeName)
	}
	id := core.OID{Origin: n.id, Seq: n.seq.Add(1)}
	rec := store.NewRecord(id, t.Name(), t.newInstance())
	if err := n.store.Add(rec); err != nil {
		if errors.Is(err, store.ErrClosed) {
			return Ref{}, ErrClosed
		}
		return Ref{}, err
	}
	return Ref{OID: id}, nil
}

// NewAlliance mints a cluster-unique alliance identifier: the high 32
// bits identify the creating node, the low 32 bits count locally.
func (n *Node) NewAlliance() AllianceID {
	h := fnv.New32a()
	_, _ = h.Write([]byte(n.id))
	return AllianceID(uint64(h.Sum32())<<32 | uint64(n.allSeq.Add(1)))
}

// nextBlock mints a node-unique move-block ID.
func (n *Node) nextBlock() core.BlockID {
	return core.BlockID(n.block.Add(1))
}

// nextToken mints a migration token that is unique across the cluster,
// not just per coordinator: the high 32 bits identify this node (same
// scheme as NewAlliance), the low 32 bits count locally. Pause,
// commit, abort and install all match records by bare token value, so
// two coordinators concurrently migrating overlapping sets must never
// mint the same number — a straggling abort from one would otherwise
// unpause objects the other had just paused under the colliding token,
// resuming a source whose snapshot is mid-install and duplicating the
// object. Residual risk, as with NewAlliance: two node IDs may hash to
// the same 32 bits, in which case the colliding pair additionally
// needs aligned counters and an overlapping migration on a shared host
// to misfire; deployments naming thousands of nodes should derive IDs
// that hash distinctly (or carry the coordinator ID in the record, the
// full fix).
func (n *Node) nextToken() uint64 {
	return n.tokenBase | (n.token.Add(1) & 0xFFFFFFFF)
}

// record looks up a hosted object.
func (n *Node) record(id core.OID) (*store.Record, bool) {
	return n.store.Get(id)
}

// Close shuts the node down: stops the autopilot, flushes batched home
// updates, stops serving, closes client connections and waits for
// background work. The autopilot goes first — its in-flight scan is
// cancelled — and the home-update flush runs while the RPC pool is
// still open so final advisories can leave.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	n.DisableAutopilot()
	n.DisablePlacement()
	n.DisableHealth()
	n.homeBatch.close()
	n.store.Close()
	err := n.server.Close()
	_ = n.pool.Close()
	n.closeSessions()
	n.closePauseLeases()
	n.bg.Wait()
	// The sink goes last: background work above may still emit, and a
	// drained queue means observers see every event that made it in.
	if n.events != nil {
		n.events.close()
	}
	return err
}

// call performs one RPC to another node. Marshalling happens inside
// the rpc layer — the request is encoded exactly once, straight into a
// pooled frame — and the raw wire error is preserved for movedTo
// inspection by callers.
func (n *Node) call(ctx context.Context, to NodeID, kind wire.Kind, req, resp interface{}) error {
	return n.pool.Call(ctx, n.addrOf(to), kind, req, resp)
}

// handle is the node's rpc.Handler: it dispatches inbound requests and
// appends the encoded response to dst (the pooled response frame, with
// its header already reserved).
func (n *Node) handle(ctx context.Context, kind wire.Kind, body, dst []byte) ([]byte, error) {
	if n.closed.Load() {
		return nil, wire.Errorf(wire.CodeUnavailable, "node %s closed", n.id)
	}
	switch kind {
	case wire.KPing:
		var req wire.PingReq
		if err := wire.Unmarshal(body, &req); err != nil {
			return nil, wire.Errorf(wire.CodeBadRequest, "%v", err)
		}
		return wire.MarshalAppend(dst, wire.PingResp{Payload: req.Payload})
	case wire.KInvoke:
		return handleTyped(body, dst, func(req *wire.InvokeReq) (*wire.InvokeResp, error) {
			return n.handleInvoke(ctx, req)
		})
	case wire.KLocate:
		return handleTyped(body, dst, func(req *wire.LocateReq) (*wire.LocateResp, error) {
			return n.handleLocate(req)
		})
	case wire.KMove:
		return handleTyped(body, dst, func(req *wire.MoveReq) (*wire.MoveResp, error) {
			return n.handleMove(ctx, req)
		})
	case wire.KEnd:
		return handleTyped(body, dst, func(req *wire.EndReq) (*wire.EndResp, error) {
			return n.handleEnd(ctx, req)
		})
	case wire.KMigrate:
		return handleTyped(body, dst, func(req *wire.MigrateReq) (*wire.MigrateResp, error) {
			return n.handleMigrate(ctx, req)
		})
	case wire.KPause:
		return handleTyped(body, dst, func(req *wire.PauseReq) (*wire.PauseResp, error) {
			return n.handlePause(ctx, req)
		})
	case wire.KInstall:
		return handleTyped(body, dst, func(req *wire.InstallReq) (*wire.InstallResp, error) {
			return n.handleInstall(req)
		})
	case wire.KMigrateBegin:
		return handleTyped(body, dst, func(req *wire.MigrateBeginReq) (*wire.MigrateBeginResp, error) {
			return n.handleMigrateBegin(req)
		})
	case wire.KInstallChunk:
		return handleTyped(body, dst, func(req *wire.InstallChunkReq) (*wire.InstallChunkResp, error) {
			return n.handleInstallChunk(req)
		})
	case wire.KInstallCommit:
		return handleTyped(body, dst, func(req *wire.InstallCommitReq) (*wire.InstallCommitResp, error) {
			return n.handleInstallCommit(req)
		})
	case wire.KCommit:
		return handleTyped(body, dst, func(req *wire.CommitReq) (*wire.CommitResp, error) {
			return n.handleCommit(req)
		})
	case wire.KAbort:
		return handleTyped(body, dst, func(req *wire.AbortReq) (*wire.AbortResp, error) {
			return n.handleAbort(req)
		})
	case wire.KHomeUpdate:
		return handleTyped(body, dst, func(req *wire.HomeUpdate) (*wire.HomeUpdateResp, error) {
			start := time.Now()
			n.store.HomeUpdate(req.Objs, req.Gens, req.At)
			objects := len(req.Objs)
			for _, cl := range req.Closures {
				n.store.HomeUpdateClosure(cl.Anchor, cl.Gen, cl.Members, req.At)
				objects += len(cl.Members)
			}
			n.tel.span(req.Trace, telemetry.PhaseDirUpdate, start, 0, objects)
			n.mergeAffinityGossip(req.Aff)
			n.observeLoad(req.Load)
			// The response piggybacks this node's own sample back to
			// the sender — the cheap half of the load gossip.
			return &wire.HomeUpdateResp{Load: n.cachedLoadSample()}, nil
		})
	case wire.KLoadGossip:
		return handleTyped(body, dst, func(req *wire.LoadGossipReq) (*wire.LoadGossipResp, error) {
			return n.handleLoadGossip(req)
		})
	case wire.KInventory:
		return handleTyped(body, dst, func(req *wire.InventoryReq) (*wire.InventoryResp, error) {
			return n.handleInventory(req)
		})
	case wire.KEdgeAdd:
		return handleTyped(body, dst, func(req *wire.EdgeAddReq) (*wire.EdgeAddResp, error) {
			return n.handleEdgeAdd(ctx, req)
		})
	case wire.KEdgeDel:
		return handleTyped(body, dst, func(req *wire.EdgeDelReq) (*wire.EdgeDelResp, error) {
			return n.handleEdgeDel(ctx, req)
		})
	case wire.KEdges:
		return handleTyped(body, dst, func(req *wire.EdgesReq) (*wire.EdgesResp, error) {
			return n.handleEdges(req)
		})
	case wire.KFix:
		return handleTyped(body, dst, func(req *wire.FixReq) (*wire.FixResp, error) {
			return n.handleFix(req)
		})
	default:
		return nil, wire.Errorf(wire.CodeBadRequest, "unhandled kind %v", kind)
	}
}

// handleTyped decodes the request, runs the handler and appends the
// encoded response to dst. The request body is fully copied by
// Unmarshal, so the caller may recycle its frame once this returns.
func handleTyped[Req, Resp any](body, dst []byte, fn func(*Req) (*Resp, error)) ([]byte, error) {
	req := new(Req)
	if err := wire.Unmarshal(body, req); err != nil {
		return nil, wire.Errorf(wire.CodeBadRequest, "%v", err)
	}
	resp, err := fn(req)
	if err != nil {
		return nil, err
	}
	return wire.MarshalAppend(dst, resp)
}

// spawn runs fn in a tracked background goroutine (never fire-and-
// forget).
func (n *Node) spawn(fn func()) {
	n.bg.Add(1)
	go func() {
		defer n.bg.Done()
		fn()
	}()
}

// cancelOnStop fires cancel the moment stop closes, until the
// returned release func runs — the pattern every optimiser daemon
// wraps around its per-scan context, so node shutdown never waits out
// a full operation timeout. Use as: defer cancelOnStop(stop, cancel)().
func cancelOnStop(stop <-chan struct{}, cancel context.CancelFunc) (release func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-stop:
			cancel()
		case <-done:
		}
	}()
	return func() { close(done) }
}
