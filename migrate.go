package objmig

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"objmig/internal/affinity"
	"objmig/internal/core"
	"objmig/internal/store"
	"objmig/internal/wire"
)

// edgesOf fetches the attachment adjacency of an object, chasing its
// location, and reports the host that answered. Each attempt re-derives
// the target from the registry: carrying a stale redirect across
// attempts can point back at ourselves while the registry already
// knows better.
func (n *Node) edgesOf(ctx context.Context, oid core.OID) ([]wire.EdgeRec, NodeID, error) {
	for attempt := 0; attempt < n.retries; attempt++ {
		if err := chasePause(ctx, attempt); err != nil {
			return nil, "", err
		}
		if rec, ok := n.hostedRecord(oid); ok {
			return rec.EdgeList(), n.id, nil
		}
		target := n.store.Hint(oid)
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return nil, "", fmt.Errorf("%w: %s (edges)", ErrNotFound, oid)
		}
		var resp wire.EdgesResp
		err := n.call(ctx, target, wire.KEdges, &wire.EdgesReq{Obj: oid}, &resp)
		if err == nil {
			n.store.Learn(oid, target)
			return resp.Edges, target, nil
		}
		if to, moved := movedTo(err); moved {
			n.store.Learn(oid, to)
			continue
		}
		if isCode(err, wire.CodeNotFound) && target != oid.Origin {
			n.store.Invalidate(oid)
			continue
		}
		return nil, "", fromRemote(err)
	}
	return nil, "", fmt.Errorf("%w: %s (edges)", ErrUnreachable, oid)
}

// closureOf walks the attachment graph from root and returns the
// working set a move in the given alliance drags along, together with
// each member's (believed) host. This is the distributed twin of
// core.Closure: same traversal semantics, remote adjacency.
func (n *Node) closureOf(ctx context.Context, root core.OID, al core.AllianceID) (map[core.OID]NodeID, error) {
	members := make(map[core.OID]NodeID)
	queue := []core.OID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if _, seen := members[cur]; seen {
			continue
		}
		edges, host, err := n.edgesOf(ctx, cur)
		if err != nil {
			return nil, fmt.Errorf("closure of %s: %w", root, err)
		}
		members[cur] = host
		for _, e := range edges {
			if n.attachMode == core.AttachATransitive && e.Alliance != al {
				continue
			}
			if _, seen := members[e.Other]; !seen {
				queue = append(queue, e.Other)
			}
		}
	}
	return members, nil
}

// sortedOIDs returns the member OIDs in canonical order (deterministic
// protocol messages).
func sortedOIDs(members map[core.OID]NodeID) []core.OID {
	out := make([]core.OID, 0, len(members))
	for oid := range members {
		out = append(out, oid)
	}
	core.SortOIDs(out)
	return out
}

// migrateGroup transfers the member objects to target as one batch:
// pause everywhere, collect snapshots, admission check, mutate, install
// at the target, commit forwarding pointers, notify origins.
//
//   - admit inspects the paused snapshots and may veto the migration
//     (transient placement's all-or-nothing working-set rule).
//   - mutate edits each snapshot before installation (placement group
//     locks, refix).
//
// On any failure before installation the pauses are rolled back and the
// system is unchanged.
func (n *Node) migrateGroup(ctx context.Context, members map[core.OID]NodeID, target NodeID,
	admit func([]wire.Snapshot) error, mutate func(*wire.Snapshot)) ([]core.OID, error) {

	token := n.nextToken()
	ids := sortedOIDs(members)

	// Group members by host, hosts in deterministic order.
	byHost := make(map[NodeID][]core.OID)
	for _, oid := range ids {
		h := members[oid]
		byHost[h] = append(byHost[h], oid)
	}
	hosts := make([]NodeID, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })

	// Phase 1: pause and snapshot at every host.
	var snapshots []wire.Snapshot
	paused := make(map[NodeID][]core.OID)
	abort := func() {
		for h, objs := range paused {
			if h == n.id {
				n.abortLocal(&wire.AbortReq{Objs: objs, Token: token})
				continue
			}
			actx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			var resp wire.AbortResp
			_ = n.call(actx, h, wire.KAbort, &wire.AbortReq{Objs: objs, Token: token}, &resp)
			cancel()
		}
	}
	for _, h := range hosts {
		req := &wire.PauseReq{Objs: byHost[h], Token: token}
		var resp *wire.PauseResp
		var err error
		if h == n.id {
			resp, err = n.handlePause(ctx, req)
		} else {
			resp = &wire.PauseResp{}
			err = n.call(ctx, h, wire.KPause, req, resp)
		}
		if err != nil {
			abort()
			return nil, err
		}
		paused[h] = byHost[h]
		snapshots = append(snapshots, resp.Snapshots...)
	}

	if admit != nil {
		if err := admit(snapshots); err != nil {
			abort()
			return nil, err
		}
	}
	if mutate != nil {
		for i := range snapshots {
			mutate(&snapshots[i])
		}
	}

	// Phase 2: install at the target.
	ireq := &wire.InstallReq{Snapshots: snapshots, Token: token}
	if target == n.id {
		if _, err := n.handleInstall(ireq); err != nil {
			abort()
			return nil, err
		}
	} else {
		var iresp wire.InstallResp
		if err := n.call(ctx, target, wire.KInstall, ireq, &iresp); err != nil {
			abort()
			return nil, err
		}
	}

	// The objects are leaving this node: lift the coordinator's
	// affinity observations now (commit drops them) so they can ride
	// the origin advisories as gossip. A same-node transfer keeps its
	// counters.
	var obs []affinity.Obs
	if target != n.id {
		obs = n.aff.Take(ids)
	}

	// Phase 3: commit forwarding pointers at the old hosts. The
	// target's own paused records were replaced by the installation.
	for _, h := range hosts {
		if h == target {
			continue
		}
		req := &wire.CommitReq{Objs: byHost[h], NewHome: target, Token: token}
		if h == n.id {
			n.commitLocal(req)
			continue
		}
		var resp wire.CommitResp
		if err := n.call(ctx, h, wire.KCommit, req, &resp); err != nil {
			// The objects are installed at the target; the stale host
			// keeps paused stubs until it learns better. Report the
			// partial failure.
			return ids, fmt.Errorf("objmig: commit at %s failed (objects are at %s): %w", h, target, err)
		}
	}

	// Phase 4: advise the origins (asynchronous, batched, best effort).
	n.notifyOrigins(ids, target, obs)
	n.stats.migrationsOut.Add(1)
	n.stats.objectsMovedOut.Add(int64(len(ids)))
	moved := make([]Ref, len(ids))
	for i, id := range ids {
		moved[i] = Ref{OID: id}
	}
	n.emit(Event{Kind: EventMigration, Target: target, Objects: moved})
	return ids, nil
}

// notifyOrigins queues home updates for the moved objects towards
// their origin nodes. Remote origins go through the home-update
// batcher, which coalesces advisories across migrations into
// time/size-bounded HomeUpdate RPCs and piggy-backs the coordinator's
// affinity observations as gossip.
func (n *Node) notifyOrigins(ids []core.OID, at NodeID, obs []affinity.Obs) {
	byOrigin := make(map[NodeID][]core.OID)
	for _, oid := range ids {
		byOrigin[oid.Origin] = append(byOrigin[oid.Origin], oid)
	}
	var affByOrigin map[NodeID][]wire.AffinityObs
	if len(obs) > 0 {
		affByOrigin = make(map[NodeID][]wire.AffinityObs)
		for _, o := range obs {
			affByOrigin[o.Obj.Origin] = append(affByOrigin[o.Obj.Origin],
				wire.AffinityObs{Obj: o.Obj, From: o.From, Count: o.Count})
		}
	}
	for origin, objs := range byOrigin {
		if origin == n.id {
			// This node is the origin: update the home index directly
			// and fold the lifted observations straight back in — the
			// same warm-affinity knowledge a remote origin would merge
			// from the gossip.
			n.store.HomeUpdate(objs, at)
			n.mergeAffinityGossip(affByOrigin[origin])
			continue
		}
		if origin == at {
			// Installation already updated the target's tables, but
			// the lifted observations must still travel — the object
			// converging onto its creator is the autopilot's most
			// common outcome, and the new host should start warm. Send
			// a gossip-only batch.
			if aff := affByOrigin[origin]; len(aff) > 0 {
				n.stats.homeUpdatesQueued.Add(1)
				n.homeBatch.enqueue(origin, at, nil, aff)
			}
			continue
		}
		n.stats.homeUpdatesQueued.Add(1)
		n.homeBatch.enqueue(origin, at, objs, affByOrigin[origin])
	}
}

// handlePause pauses and snapshots local objects for a migration.
func (n *Node) handlePause(ctx context.Context, req *wire.PauseReq) (*wire.PauseResp, error) {
	var done []*store.Record
	rollback := func() {
		for _, rec := range done {
			rec.Unpause(req.Token)
		}
	}
	resp := &wire.PauseResp{}
	for _, oid := range req.Objs {
		rec, ok := n.record(oid)
		if !ok {
			rollback()
			return nil, n.whereabouts(oid)
		}
		if err := rec.Pause(ctx, req.Token); err != nil {
			rollback()
			var re *wire.RemoteError
			if errors.As(err, &re) {
				return nil, re
			}
			return nil, wire.Errorf(wire.CodeDenied, "pause %s: %v", oid, err)
		}
		done = append(done, rec)
		t, ok := n.typeByName(rec.TypeName)
		if !ok {
			rollback()
			return nil, wire.Errorf(wire.CodeUnknownType, "type %q not registered at %s", rec.TypeName, n.id)
		}
		snap, err := rec.Snapshot(t.encodeState)
		if err != nil {
			rollback()
			return nil, wire.Errorf(wire.CodeInternal, "snapshot %s: %v", oid, err)
		}
		resp.Snapshots = append(resp.Snapshots, snap)
	}
	return resp, nil
}

// handleInstall reinstantiates migrated objects locally, atomically.
func (n *Node) handleInstall(req *wire.InstallReq) (*wire.InstallResp, error) {
	if err := n.installBatch(req.Snapshots, req.Token); err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return nil, re
		}
		return nil, wire.Errorf(wire.CodeInternal, "install: %v", err)
	}
	return &wire.InstallResp{}, nil
}

// handleCommit finalises departures of local paused records.
func (n *Node) handleCommit(req *wire.CommitReq) (*wire.CommitResp, error) {
	n.commitLocal(req)
	return &wire.CommitResp{}, nil
}

// commitLocal finalises departures: one shard-grouped batch lookup
// resolves every record (each stripe lock is taken once, not once per
// OID), then each record flips to a forwarding stub. The host's
// affinity observations for the departed objects are lifted and
// forwarded to the objects' origins as gossip — in a multi-host group
// migration the coordinator can only gossip its own counters, so each
// departing host ships its own.
func (n *Node) commitLocal(req *wire.CommitReq) {
	recs := n.store.GetBatch(req.Objs)
	var departed []core.OID
	for i, rec := range recs {
		if rec == nil {
			continue
		}
		oid := req.Objs[i]
		if rec.Depart(req.Token, req.NewHome, func() {
			n.store.Departed(oid, req.NewHome)
		}) {
			departed = append(departed, oid)
		}
	}
	if len(departed) > 0 {
		n.gossipDeparted(departed, req.NewHome)
	}
}

// gossipDeparted lifts this host's observations for objects that just
// departed towards at and routes them to the objects' origins as
// gossip-only advisories (the migration coordinator sends the actual
// home updates). On the coordinator itself this is a no-op: its
// observations were already Taken before the commit phase.
func (n *Node) gossipDeparted(ids []core.OID, at NodeID) {
	obs := n.aff.Take(ids)
	if len(obs) == 0 {
		// Nothing to gossip; still forget the entries (Take skips the
		// deletes when the tracker is disabled).
		n.aff.Drop(ids)
		return
	}
	byOrigin := make(map[NodeID][]wire.AffinityObs)
	for _, o := range obs {
		byOrigin[o.Obj.Origin] = append(byOrigin[o.Obj.Origin],
			wire.AffinityObs{Obj: o.Obj, From: o.From, Count: o.Count})
	}
	for origin, aff := range byOrigin {
		if origin == n.id {
			// This host is the origin: keep the knowledge warm locally.
			n.mergeAffinityGossip(aff)
			continue
		}
		n.stats.homeUpdatesQueued.Add(1)
		n.homeBatch.enqueue(origin, at, nil, aff)
	}
}

// handleAbort rolls back local pauses.
func (n *Node) handleAbort(req *wire.AbortReq) (*wire.AbortResp, error) {
	n.abortLocal(req)
	return &wire.AbortResp{}, nil
}

// abortLocal rolls pauses back with one shard-grouped batch lookup.
// Unpause itself checks status and token, so stubs and strangers are
// naturally ignored.
func (n *Node) abortLocal(req *wire.AbortReq) {
	for _, rec := range n.store.GetBatch(req.Objs) {
		if rec != nil {
			rec.Unpause(req.Token)
		}
	}
}

// Migrate moves an object (with the working set attached in the global
// context) to the target node. It respects fixing and transient-
// placement locks.
func (n *Node) Migrate(ctx context.Context, ref Ref, target NodeID) error {
	return n.MigrateIn(ctx, NoAlliance, ref, target)
}

// MigrateIn is Migrate issued inside an alliance: under A-transitive
// attachment only the alliance's attachments travel.
func (n *Node) MigrateIn(ctx context.Context, al AllianceID, ref Ref, target NodeID) error {
	_, err := n.migrateRequest(ctx, &wire.MigrateReq{Obj: ref.OID, Target: target, Alliance: al})
	return err
}

// MigrateToObject collocates ref with another object: "the target
// either names a node or another object" (Section 2.2).
func (n *Node) MigrateToObject(ctx context.Context, ref, with Ref) error {
	at, err := n.Locate(ctx, with)
	if err != nil {
		return fmt.Errorf("objmig: locate collocation target: %w", err)
	}
	return n.Migrate(ctx, ref, at)
}

// migrateRequest chases the object's host and asks it to execute the
// migrate primitive.
func (n *Node) migrateRequest(ctx context.Context, req *wire.MigrateReq) (*wire.MigrateResp, error) {
	oid := req.Obj
	for attempt := 0; attempt < n.retries; attempt++ {
		if err := chasePause(ctx, attempt); err != nil {
			return nil, err
		}
		if _, ok := n.hostedRecord(oid); ok {
			resp, err := n.handleMigrate(ctx, req)
			if to, moved := movedTo(err); moved {
				n.store.Learn(oid, to)
				continue
			}
			return resp, fromRemote(err)
		}
		target := n.store.Hint(oid)
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
		}
		var resp wire.MigrateResp
		err := n.call(ctx, target, wire.KMigrate, req, &resp)
		if err == nil {
			n.store.Learn(oid, resp.At)
			return &resp, nil
		}
		if to, moved := movedTo(err); moved {
			n.store.Learn(oid, to)
			continue
		}
		if isCode(err, wire.CodeNotFound) && target != oid.Origin {
			n.store.Invalidate(oid)
			continue
		}
		return nil, fromRemote(err)
	}
	return nil, fmt.Errorf("%w: %s (migrate)", ErrUnreachable, oid)
}

// handleMigrate executes the migrate primitive at the object's host.
func (n *Node) handleMigrate(ctx context.Context, req *wire.MigrateReq) (*wire.MigrateResp, error) {
	rec, ok := n.record(req.Obj)
	if !ok {
		return nil, n.whereabouts(req.Obj)
	}
	rec.Mu.Lock()
	if rec.Status == store.StatusGone {
		to := rec.MovedTo
		rec.Mu.Unlock()
		return nil, &wire.RemoteError{Code: wire.CodeMoved, Msg: req.Obj.String(), To: to}
	}
	if rec.Pol.Fixed && !req.Fix {
		rec.Mu.Unlock()
		return nil, wire.Errorf(wire.CodeFixed, "object %s is fixed at %s", req.Obj, n.id)
	}
	if rec.Pol.Lock.Held {
		owner := rec.Pol.Lock.Owner
		rec.Mu.Unlock()
		return nil, wire.Errorf(wire.CodeDenied, "object %s is placed (locked by %s)", req.Obj, owner)
	}
	rec.Mu.Unlock()

	members, err := n.closureOf(ctx, req.Obj, req.Alliance)
	if err != nil {
		return nil, wire.Errorf(wire.CodeInternal, "%v", err)
	}
	admit := func(snaps []wire.Snapshot) error {
		for _, s := range snaps {
			if s.Pol.Lock.Held {
				return wire.Errorf(wire.CodeDenied, "working-set member %s is placed", s.ID)
			}
			if s.Pol.Fixed && !(req.Fix && s.ID == req.Obj) {
				return wire.Errorf(wire.CodeFixed, "working-set member %s is fixed", s.ID)
			}
		}
		return nil
	}
	var mutate func(*wire.Snapshot)
	if req.Fix {
		mutate = func(s *wire.Snapshot) {
			if s.ID == req.Obj {
				s.Pol.Fixed = true
			}
		}
	}
	moved, err := n.migrateGroup(ctx, members, req.Target, admit, mutate)
	if err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return nil, re
		}
		return nil, wire.Errorf(wire.CodeInternal, "%v", err)
	}
	return &wire.MigrateResp{At: req.Target, Moved: moved}, nil
}
