// Package health is the runtime's judgment layer: a sliding-window
// SLO evaluator that turns the telemetry core's cumulative histograms
// and counters into a per-node health state, and a black-box flight
// recorder that preserves the evidence around a state transition.
//
// The evaluator is deliberately dumb about time: the caller feeds it
// one cumulative Sample per tick and it keeps a preallocated ring of
// the last WindowTicks samples. The windowed value of each signal is
// the difference between the newest and oldest retained sample —
// histogram signals go through HistSnapshot.Delta and report the
// window's p99, counter signals are plain subtraction — so a burst
// that ended a window ago stops counting against the node. Tick is
// allocation-free (CI-enforced by BenchmarkHealthTick); everything is
// value arithmetic over fixed-size arrays.
//
// State transitions are hysteretic: the instantaneous level (the worst
// threshold any signal breaches this tick) must persist for RaiseAfter
// consecutive ticks to raise the state and stay clear for ClearAfter
// consecutive ticks to lower it, so a node flickering around a bound
// does not flap between states.
package health

import "objmig/internal/telemetry"

// State is a node's health classification.
type State uint8

const (
	// Healthy means every signal is inside its warn bound.
	Healthy State = iota
	// Degraded means at least one signal breached its warn bound for
	// RaiseAfter consecutive ticks. Placement discounts degraded
	// nodes; planners stop electing them as receivers.
	Degraded
	// Critical means at least one signal breached its critical bound
	// for RaiseAfter consecutive ticks. Placement vetoes critical
	// nodes outright and rebalance plans drain them first.
	Critical
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	default:
		return "unknown"
	}
}

// Signal names one monitored input. The first NumHists signals are
// windowed-p99 histogram signals (microseconds); the rest are
// per-window counter deltas.
type Signal uint8

const (
	// SigInvokeLocalP99 is the window's p99 local invoke latency (µs).
	SigInvokeLocalP99 Signal = iota
	// SigInvokeRemoteP99 is the window's p99 remote invoke latency (µs).
	SigInvokeRemoteP99
	// SigChaseP99 is the window's p99 location-chase latency (µs).
	SigChaseP99
	// SigMigrationPhaseP99 is the window's p99 over every migration
	// phase duration, all phases merged (µs).
	SigMigrationPhaseP99
	// SigStreamAborts counts streamed migration sessions aborted in
	// the window.
	SigStreamAborts
	// SigPauseExpiries counts pause leases that expired unresolved in
	// the window.
	SigPauseExpiries
	// SigChasesOverBudget counts location chases that exhausted their
	// hop budget in the window.
	SigChasesOverBudget
	// SigEventsDropped counts observer events shed by the async event
	// sink in the window.
	SigEventsDropped

	sigEnd
)

// NumSignals is the number of monitored signals.
const NumSignals = int(sigEnd)

// NumHists is how many of the signals (the first ones) are histogram
// p99 signals; Sample.Hists is indexed by Signal directly.
const NumHists = 4

// NumCounters is how many signals are counter deltas; Sample.Counters
// is indexed by Signal − NumHists.
const NumCounters = NumSignals - NumHists

func (s Signal) String() string {
	switch s {
	case SigInvokeLocalP99:
		return "invoke_local_p99_us"
	case SigInvokeRemoteP99:
		return "invoke_remote_p99_us"
	case SigChaseP99:
		return "chase_p99_us"
	case SigMigrationPhaseP99:
		return "migration_phase_p99_us"
	case SigStreamAborts:
		return "stream_aborts"
	case SigPauseExpiries:
		return "pause_expiries"
	case SigChasesOverBudget:
		return "chases_over_budget"
	case SigEventsDropped:
		return "events_dropped"
	default:
		return "unknown"
	}
}

// Threshold bounds one signal. A zero bound disables that level for
// the signal; a signal whose windowed value is ≥ the bound breaches
// it.
type Threshold struct {
	Warn int64
	Crit int64
}

// Config parameterises an Evaluator.
type Config struct {
	// WindowTicks is how many consecutive samples the ring retains;
	// the evaluation window is (WindowTicks−1) tick intervals.
	// Minimum (and default when ≤ 1) is 2.
	WindowTicks int
	// RaiseAfter is how many consecutive ticks the instantaneous
	// level must exceed the current state before the state rises.
	// Default 1 (raise immediately).
	RaiseAfter int
	// ClearAfter is how many consecutive ticks the instantaneous
	// level must sit below the current state before the state drops.
	// Default 1 (clear immediately).
	ClearAfter int
	// Thresholds holds the per-signal bounds, indexed by Signal.
	Thresholds [NumSignals]Threshold
}

func (c Config) withDefaults() Config {
	if c.WindowTicks <= 1 {
		if c.WindowTicks == 0 {
			c.WindowTicks = 30
		} else {
			c.WindowTicks = 2
		}
	}
	if c.RaiseAfter < 1 {
		c.RaiseAfter = 1
	}
	if c.ClearAfter < 1 {
		c.ClearAfter = 1
	}
	return c
}

// Sample is one tick's cumulative reading: lifetime histogram
// snapshots and lifetime counter values. The evaluator differences
// consecutive window edges itself; callers never pre-subtract.
type Sample struct {
	// At is the sample time (UnixNano); carried into verdicts and
	// dumps, not used in the evaluation arithmetic.
	At int64
	// Hists holds the cumulative histogram snapshots, indexed by the
	// histogram Signals.
	Hists [NumHists]telemetry.HistSnapshot
	// Counters holds the cumulative counter values, indexed by
	// Signal − NumHists.
	Counters [NumCounters]int64
}

// Verdict is one Tick's outcome.
type Verdict struct {
	// State is the node's (hysteresis-filtered) state after the tick.
	State State
	// Prev is the state before the tick; Changed reports State != Prev.
	Prev    State
	Changed bool
	// Level is the instantaneous level this tick's window implied,
	// before hysteresis.
	Level State
	// Worst is the signal that set Level (meaningful when Level >
	// Healthy).
	Worst Signal
	// Values holds every signal's windowed value this tick.
	Values [NumSignals]int64
	// At echoes the sample time.
	At int64
}

// Evaluator turns a stream of cumulative samples into a hysteretic
// health state. Not safe for concurrent use; the health daemon is the
// single caller.
type Evaluator struct {
	cfg  Config
	ring []Sample // preallocated, len == cfg.WindowTicks
	next int
	n    int

	state State
	raise int // consecutive ticks at a level above state
	clear int // consecutive ticks at a level below state
}

// NewEvaluator returns an evaluator with its sample ring preallocated.
func NewEvaluator(cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	return &Evaluator{cfg: cfg, ring: make([]Sample, cfg.WindowTicks)}
}

// State returns the current hysteresis-filtered state.
func (e *Evaluator) State() State { return e.state }

// Tick feeds one cumulative sample and returns the verdict.
// Allocation-free.
func (e *Evaluator) Tick(s Sample) Verdict {
	e.ring[e.next] = s
	e.next = (e.next + 1) % len(e.ring)
	if e.n < len(e.ring) {
		e.n++
	}

	v := Verdict{Prev: e.state, At: s.At}

	// Window edges: the sample just written is the newest; the oldest
	// retained sample is the slot next will overwrite (or slot 0 while
	// the ring is still filling).
	oldest := 0
	if e.n == len(e.ring) {
		oldest = e.next
	}
	if e.n >= 2 {
		old := &e.ring[oldest]
		for i := 0; i < NumHists; i++ {
			v.Values[i] = s.Hists[i].Delta(old.Hists[i]).Quantile(0.99)
		}
		for i := 0; i < NumCounters; i++ {
			if d := s.Counters[i] - old.Counters[i]; d > 0 {
				v.Values[NumHists+i] = d
			}
		}
	}

	// Instantaneous level: the worst bound any signal breaches. The
	// worst signal is the first critical breach, else the first warn
	// breach.
	for i := 0; i < NumSignals; i++ {
		t := e.cfg.Thresholds[i]
		switch {
		case t.Crit > 0 && v.Values[i] >= t.Crit:
			if v.Level < Critical {
				v.Level = Critical
				v.Worst = Signal(i)
			}
		case t.Warn > 0 && v.Values[i] >= t.Warn:
			if v.Level < Degraded {
				v.Level = Degraded
				v.Worst = Signal(i)
			}
		}
	}

	// Hysteresis: a level away from the current state must persist to
	// move it; matching the state resets both streaks.
	switch {
	case v.Level > e.state:
		e.raise++
		e.clear = 0
		if e.raise >= e.cfg.RaiseAfter {
			e.state = v.Level
			e.raise, e.clear = 0, 0
		}
	case v.Level < e.state:
		e.clear++
		e.raise = 0
		if e.clear >= e.cfg.ClearAfter {
			e.state = v.Level
			e.raise, e.clear = 0, 0
		}
	default:
		e.raise, e.clear = 0, 0
	}

	v.State = e.state
	v.Changed = v.State != v.Prev
	return v
}
