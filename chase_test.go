package objmig

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaseBudgetSemantics pins the two halves of the chase budget:
// the attempt count always runs in full, and the deadline extends it.
func TestChaseBudgetSemantics(t *testing.T) {
	t.Parallel()
	ctx := context.Background()

	// Attempts only (deadline disabled): exactly CallRetries attempts.
	n := &Node{retries: 3, chaseDeadline: -1}
	got := 0
	for c := n.newChase(Ref{}.OID); c.next(ctx); {
		got++
	}
	if got != 3 {
		t.Fatalf("attempt-only budget ran %d attempts, want 3", got)
	}

	// Deadline beyond the attempt budget: the chase keeps going until
	// the wall clock runs out.
	n = &Node{retries: 1, chaseDeadline: 80 * time.Millisecond}
	start := time.Now()
	got = 0
	for c := n.newChase(Ref{}.OID); c.next(ctx); {
		got++
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("deadline budget gave up after %v", elapsed)
	}
	if got < 2 {
		t.Fatalf("deadline budget ran only %d attempts", got)
	}

	// A cancelled context stops a chase regardless of budget.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	n = &Node{retries: 100, chaseDeadline: time.Hour}
	got = 0
	for c := n.newChase(Ref{}.OID); c.next(cctx); {
		got++
	}
	if got != 0 {
		t.Fatalf("cancelled chase ran %d attempts", got)
	}
}

// TestChaseSurvivesMigrationPingPong is the regression test for the
// chase-exhaustion flake (ROADMAP, pre-existing since the seed): under
// heavy migration ping-pong a locate/invoke chase could exhaust its
// fixed attempt budget while the object was merely in flight and
// report ErrUnreachable. The attempt budget here is deliberately tiny
// (2), so the old fixed-budget behaviour fails within a few calls;
// the chase deadline must carry every call through the churn.
func TestChaseSurvivesMigrationPingPong(t *testing.T) {
	t.Parallel()
	cl := NewLocalCluster()
	bt := newBenchType()
	mk := func(id NodeID) *Node {
		n, err := NewNode(Config{
			ID: id, Cluster: cl, Policy: PolicyConventional,
			CallRetries: 2, ChaseDeadline: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterType(bt); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	a, _, c := mk("a"), mk("b"), mk("c")
	ref, err := a.Create("bench")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Ping-pong the object between a and b as fast as migrations
	// complete, for the duration of the invoke storm.
	var stop atomic.Bool
	migDone := make(chan struct{})
	go func() {
		defer close(migDone)
		targets := []NodeID{"b", "a"}
		for i := 0; !stop.Load(); i++ {
			if err := a.Migrate(ctx, ref, targets[i%2]); err != nil {
				t.Errorf("ping-pong migrate %d: %v", i, err)
				return
			}
		}
	}()

	deadline := time.Now().Add(500 * time.Millisecond)
	calls := 0
	for time.Now().Before(deadline) {
		if _, err := Call[int, int](ctx, c, ref, "Add", 1); err != nil {
			if errors.Is(err, ErrUnreachable) {
				t.Fatalf("chase exhausted under ping-pong after %d calls: %v", calls, err)
			}
			t.Fatalf("invoke %d: %v", calls, err)
		}
		calls++
	}
	stop.Store(true)
	<-migDone
	if calls == 0 {
		t.Fatal("no invokes completed")
	}
}
