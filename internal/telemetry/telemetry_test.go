package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCounterSumsStripes(t *testing.T) {
	t.Parallel()
	var c Counter
	for i := 0; i < 100; i++ {
		c.Inc()
	}
	c.Add(23)
	if got := c.Value(); got != 123 {
		t.Fatalf("Value = %d, want 123", got)
	}
}

func TestGauge(t *testing.T) {
	t.Parallel()
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("Value = %d, want 40", got)
	}
}

func TestBucketOfRanges(t *testing.T) {
	t.Parallel()
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 26, HistBuckets - 1}, {1 << 40, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every non-saturating bucket's upper bound maps back into it.
	for b := 1; b < HistBuckets-1; b++ {
		if got := bucketOf(BucketUpper(b)); got != b {
			t.Errorf("bucketOf(BucketUpper(%d)) = %d", b, got)
		}
		if got := bucketOf(BucketUpper(b) + 1); got != b+1 {
			t.Errorf("bucketOf(BucketUpper(%d)+1) = %d, want %d", b, got, b+1)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	t.Parallel()
	var h Histogram
	// 90 fast observations, 10 slow ones: p50 lands in the fast
	// bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket 7, upper 127
	}
	for i := 0; i < 10; i++ {
		h.Observe(10_000) // bucket 14, upper 16383
	}
	s := h.Snapshot()
	if s.Total != 100 {
		t.Fatalf("Total = %d, want 100", s.Total)
	}
	if s.Sum != 90*100+10*10_000 {
		t.Fatalf("Sum = %d", s.Sum)
	}
	if got := s.Quantile(0.5); got != 127 {
		t.Fatalf("p50 = %d, want 127", got)
	}
	if got := s.Quantile(0.99); got != 16383 {
		t.Fatalf("p99 = %d, want 16383", got)
	}
	if got := s.Quantile(0); got != 127 {
		t.Fatalf("p0 = %d, want 127", got)
	}
	if mean := s.Mean(); mean != 1090 {
		t.Fatalf("Mean = %v, want 1090", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	t.Parallel()
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c1 := r.Counter("a_total")
	c2 := r.Counter("a_total")
	if c1 != c2 {
		t.Fatal("same name, different counter")
	}
	c1.Add(7)
	r.Gauge("g").Set(3)
	r.Histogram("h_us").Observe(9)
	counters, gauges, hists := r.Snapshot()
	if len(counters) != 1 || counters[0].Name != "a_total" || counters[0].Value != 7 {
		t.Fatalf("counters = %+v", counters)
	}
	if len(gauges) != 1 || gauges[0].Value != 3 {
		t.Fatalf("gauges = %+v", gauges)
	}
	if len(hists) != 1 || hists[0].Snap.Total != 1 {
		t.Fatalf("hists = %+v", hists)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	for _, name := range []string{"zz", "aa", "mm", "bb"} {
		r.Counter(name).Inc()
	}
	counters, _, _ := r.Snapshot()
	for i := 1; i < len(counters); i++ {
		if counters[i-1].Name >= counters[i].Name {
			t.Fatalf("snapshot not sorted: %+v", counters)
		}
	}
}

// TestConcurrentRecording is the -race stress test the satellite asks
// for: counters, gauges, histograms and the trace log hammered from
// many goroutines, with totals checked after the dust settles.
func TestConcurrentRecording(t *testing.T) {
	t.Parallel()
	const (
		workers = 16
		perG    = 2000
	)
	var (
		c  Counter
		g  Gauge
		h  Histogram
		tl = NewTraceLog(128)
		wg sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 1000))
				tl.Record(Span{Trace: uint64(w + 1), Phase: PhaseStream, Start: int64(i), End: int64(i + 1)})
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perG {
		t.Fatalf("counter = %d, want %d", got, workers*perG)
	}
	if s := h.Snapshot(); s.Total != workers*perG {
		t.Fatalf("histogram total = %d, want %d", s.Total, workers*perG)
	}
	if got := tl.Total(); got != workers*perG {
		t.Fatalf("trace log total = %d, want %d", got, workers*perG)
	}
	if got := len(tl.Spans()); got != 128 {
		t.Fatalf("ring holds %d spans, want its capacity 128", got)
	}
}

func TestTraceLogRingOrder(t *testing.T) {
	t.Parallel()
	l := NewTraceLog(4)
	for i := 1; i <= 6; i++ {
		l.Record(Span{Trace: 9, Phase: PhaseStream, Start: int64(i), End: int64(i)})
	}
	spans := l.Spans()
	if len(spans) != 4 {
		t.Fatalf("len = %d", len(spans))
	}
	for i, s := range spans {
		if want := int64(i + 3); s.Start != want {
			t.Fatalf("span %d start = %d, want %d (oldest-first after wrap)", i, s.Start, want)
		}
	}
}

func TestTimelines(t *testing.T) {
	t.Parallel()
	spans := []Span{
		{Trace: 2, Phase: PhaseCommit, Start: 50, End: 60},
		{Trace: 1, Phase: PhasePause, Start: 10, End: 20},
		{Trace: 2, Phase: PhasePause, Start: 30, End: 40},
		{Trace: 0, Phase: PhaseStream, Start: 5, End: 6}, // untraced: dropped
		{Trace: 1, Phase: PhaseStream, Start: 21, End: 25},
	}
	tls := Timelines(spans)
	if len(tls) != 2 {
		t.Fatalf("timelines = %d, want 2", len(tls))
	}
	// Newest first: trace 2 started at 30, trace 1 at 10.
	if tls[0].Trace != 2 || tls[1].Trace != 1 {
		t.Fatalf("order = %d, %d", tls[0].Trace, tls[1].Trace)
	}
	if tls[1].Spans[0].Phase != PhasePause || tls[1].Spans[1].Phase != PhaseStream {
		t.Fatalf("trace 1 spans out of order: %+v", tls[1].Spans)
	}
}

// TestPhaseStringsComplete mirrors the EventKind drift test: every
// declared phase must print a real name.
func TestPhaseStringsComplete(t *testing.T) {
	t.Parallel()
	for p := Phase(1); p < phaseEnd; p++ {
		if p.String() == "unknown" {
			t.Errorf("phase %d has no name", p)
		}
	}
	if Phase(0).String() != "unknown" || phaseEnd.String() != "unknown" {
		t.Error("out-of-range phases must print unknown")
	}
}

// BenchmarkTelemetryRecord is the CI-enforced zero-alloc line: every
// recording path — counter, gauge, histogram (value and since-t0
// forms) and the trace ring — must stay at 0 allocs/op.
func BenchmarkTelemetryRecord(b *testing.B) {
	b.Run("Counter", func(b *testing.B) {
		var c Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("Gauge", func(b *testing.B) {
		var g Gauge
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("Histogram", func(b *testing.B) {
		var h Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i & 0xFFFF))
		}
	})
	b.Run("HistogramSince", func(b *testing.B) {
		var h Histogram
		t0 := time.Now()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveSince(t0)
		}
	})
	b.Run("Span", func(b *testing.B) {
		l := NewTraceLog(DefaultTraceSpans)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Record(Span{Trace: 1, Phase: PhaseStream, Start: int64(i), End: int64(i + 1), Bytes: 512})
		}
	})
}
