package framebuf

import (
	"sync"
	"testing"
)

func TestGetCapacity(t *testing.T) {
	t.Parallel()
	for _, n := range []int{0, 1, 511, 512, 513, 4096, 1 << 20, MaxPooled, MaxPooled + 1} {
		b := Get(n)
		if len(b) != 0 {
			t.Fatalf("Get(%d) len = %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d) cap = %d", n, cap(b))
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	// Not parallel: the pool is global, and the test below wants its
	// own Put to be observable.
	b := Get(1000)
	b = append(b, make([]byte, 1000)...)
	Put(b)
	got := Get(1000)
	if cap(got) < 1000 {
		t.Fatalf("recycled cap = %d", cap(got))
	}
}

func TestPutOddCapacities(t *testing.T) {
	// Buffers whose capacity is not a class size must still satisfy
	// Get's invariant after recycling.
	Put(make([]byte, 0, 777))    // filed under 512
	Put(make([]byte, 0, 100))    // dropped (below the smallest class)
	Put(make([]byte, 0, 64<<20)) // dropped (beyond MaxPooled)
	for i := 0; i < 10; i++ {
		if b := Get(600); cap(b) < 600 {
			t.Fatalf("Get(600) cap = %d after odd Put", cap(b))
		}
	}
}

func TestConcurrentGetPut(t *testing.T) {
	t.Parallel()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sizes := []int{64, 700, 5000, 70000, 1 << 20}
			for i := 0; i < 500; i++ {
				n := sizes[(g+i)%len(sizes)]
				b := Get(n)
				b = b[:n]
				b[0], b[n-1] = byte(g), byte(i)
				if b[0] != byte(g) || b[n-1] != byte(i) {
					t.Errorf("buffer corrupted")
					return
				}
				Put(b)
			}
		}(g)
	}
	wg.Wait()
}
