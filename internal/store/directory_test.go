package store

import (
	"fmt"
	"testing"
	"time"

	"objmig/internal/core"
)

// TestClosureRecordSharing: a closure-level home update must cost one
// shared record (plus member references) instead of per-object home
// entries, resolve on Hint/Home, and refresh all members on one Learn.
func TestClosureRecordSharing(t *testing.T) {
	t.Parallel()
	s := New("n1")
	const members = 64
	anchor := core.OID{Origin: "n1", Seq: 1}
	ids := make([]core.OID, 0, members)
	for i := 0; i < members; i++ {
		ids = append(ids, core.OID{Origin: "n1", Seq: uint64(i + 1)})
	}
	s.HomeUpdateClosure(anchor, 1, ids, "n2")

	ls := s.LocStats()
	if ls.Home != 0 || ls.Closures != 1 || ls.ClosureRefs != members {
		t.Fatalf("LocStats = %+v, want 0 home / 1 closure / %d refs", ls, members)
	}
	// One shared record versus N per-object entries: ≥4× fewer for a
	// 64-member closure (here 1 entry vs 64).
	if got := ls.Entries(); got*4 > members {
		t.Fatalf("closure update cost %d entries for %d members", got, members)
	}
	for _, id := range ids {
		if hint := s.Hint(id); hint != "n2" {
			t.Fatalf("Hint(%s) = %s, want n2", id, hint)
		}
		if at, ok := s.Home(id); !ok || at != "n2" {
			t.Fatalf("Home(%s) = %s, %v", id, at, ok)
		}
	}
	// Learn is hearsay about one object: it detaches that member only,
	// leaving the shared record (and everyone else) untouched.
	s.Learn(ids[17], "n3")
	if hint := s.Hint(ids[17]); hint != "n3" {
		t.Fatalf("after Learn, Hint(%s) = %s, want n3", ids[17], hint)
	}
	if hint := s.Hint(ids[16]); hint != "n2" {
		t.Fatalf("Learn dragged a sibling: Hint(%s) = %s, want n2", ids[16], hint)
	}
	// A single closure-level update refreshes every member at once —
	// including the detached one (its entry carries the old generation).
	s.HomeUpdateClosure(anchor, 2, ids, "n3")
	for _, id := range ids {
		if hint := s.Hint(id); hint != "n3" {
			t.Fatalf("after closure update, Hint(%s) = %s, want n3", id, hint)
		}
	}
	if ls := s.LocStats(); ls.ClosureRefs != members || ls.Home != 0 {
		t.Fatalf("closure update did not recapture members: %+v", ls)
	}
}

// TestClosureGenOrdering: stale reports (older generations) must never
// roll a closure record or a fresher per-object entry backwards, in
// either direction.
func TestClosureGenOrdering(t *testing.T) {
	t.Parallel()
	s := New("n1")
	anchor := core.OID{Origin: "n1", Seq: 1}
	ids := []core.OID{{Origin: "n1", Seq: 1}, {Origin: "n1", Seq: 2}}

	s.HomeUpdateClosure(anchor, 3, ids, "n3")
	s.HomeUpdateClosure(anchor, 2, ids, "n2") // stale: must be ignored
	if hint := s.Hint(ids[0]); hint != "n3" {
		t.Fatalf("stale closure update won: hint = %s", hint)
	}

	// A fresher per-object report detaches the member from the record.
	s.HomeUpdate(ids[:1], []uint64{4}, "n4")
	if hint := s.Hint(ids[0]); hint != "n4" {
		t.Fatalf("fresh per-object update lost: hint = %s", hint)
	}
	if hint := s.Hint(ids[1]); hint != "n3" {
		t.Fatalf("unrelated member moved: hint = %s", hint)
	}
	// ... and a stale per-object report must not detach it.
	s.HomeUpdate(ids[1:], []uint64{1}, "n9")
	if hint := s.Hint(ids[1]); hint != "n3" {
		t.Fatalf("stale per-object update won: hint = %s", hint)
	}
	// A fresher closure update recaptures the individually-updated one.
	s.HomeUpdateClosure(anchor, 5, ids, "n5")
	for _, id := range ids {
		if hint := s.Hint(id); hint != "n5" {
			t.Fatalf("closure recapture failed: hint(%s) = %s", id, hint)
		}
	}
	if ls := s.LocStats(); ls.Home != 0 || ls.ClosureRefs != 2 {
		t.Fatalf("LocStats = %+v, want all members attached", ls)
	}
}

// TestClosureShrinksWithoutDraggingStrays: the same anchor migrating
// again with a smaller member set must not drag the left-behind
// members along. The second report mints a fresh record; strays keep
// referencing the superseded one, whose location stays put. (This is
// the officeflow shape: {folder, report} travels to the editor, then
// {folder, memo} travels on to the archiver — report stays put.)
func TestClosureShrinksWithoutDraggingStrays(t *testing.T) {
	t.Parallel()
	s := New("n1")
	anchor := core.OID{Origin: "n1", Seq: 1}
	folder := core.OID{Origin: "n1", Seq: 1}
	report := core.OID{Origin: "n1", Seq: 2}
	memo := core.OID{Origin: "n1", Seq: 3}

	s.HomeUpdateClosure(anchor, 1, []core.OID{folder, report}, "n2")
	s.HomeUpdateClosure(anchor, 2, []core.OID{folder, memo}, "n3")

	if hint := s.Hint(folder); hint != "n3" {
		t.Fatalf("anchor did not follow its own migration: hint = %s", hint)
	}
	if hint := s.Hint(memo); hint != "n3" {
		t.Fatalf("travelling member lost: hint = %s", hint)
	}
	if hint := s.Hint(report); hint != "n2" {
		t.Fatalf("stray member was dragged along: Hint(report) = %s, want n2", hint)
	}
	if at, ok := s.Home(report); !ok || at != "n2" {
		t.Fatalf("Home(report) = %s, %v, want n2", at, ok)
	}
}

// TestConfirmDepartedRetiresState: once the origin acknowledged a home
// update, the old host drops the forwarding pointer, the member
// reference and the Gone stub.
func TestConfirmDepartedRetiresState(t *testing.T) {
	t.Parallel()
	s := New("n2") // foreign host for n1-origin objects
	id := core.OID{Origin: "n1", Seq: 7}
	rec := NewRecord(id, "t", &testState{})
	if err := s.Add(rec); err != nil {
		t.Fatal(err)
	}
	if err := rec.Pause(t.Context(), 1); err != nil {
		t.Fatal(err)
	}
	rec.Depart(1, "n3", func() { s.Departed(id, "n3", 1) })
	if _, ok := s.Get(id); !ok {
		t.Fatal("stub should persist until confirmed")
	}
	if _, ok := s.Forward(id); !ok {
		t.Fatal("forward should exist before confirm")
	}
	s.ConfirmDeparted([]core.OID{id}, "n3")
	if _, ok := s.Get(id); ok {
		t.Fatal("stub survived confirmation")
	}
	if _, ok := s.Forward(id); ok {
		t.Fatal("forward survived confirmation")
	}
	if ls := s.LocStats(); ls.Retired != 1 {
		t.Fatalf("Retired = %d, want 1", ls.Retired)
	}
	// Chasers still resolve: the origin fallback remains.
	if hint := s.Hint(id); hint != "n1" {
		t.Fatalf("hint after retirement = %s, want origin", hint)
	}
}

// TestCompactForwardsTTL: unconfirmed forwards (and their stubs) age
// out under the TTL; fresh ones survive.
func TestCompactForwardsTTL(t *testing.T) {
	t.Parallel()
	s := New("n2")
	old := core.OID{Origin: "n1", Seq: 1}
	fresh := core.OID{Origin: "n1", Seq: 2}
	for _, id := range []core.OID{old, fresh} {
		rec := NewRecord(id, "t", &testState{})
		if err := s.Add(rec); err != nil {
			t.Fatal(err)
		}
		if err := rec.Pause(t.Context(), 1); err != nil {
			t.Fatal(err)
		}
		rec.Depart(1, "n3", func() { s.Departed(id, "n3", 1) })
	}
	// Age the first entry artificially.
	sh := s.shardOf(old)
	sh.locMu.Lock()
	f := sh.forwards[old]
	f.stamp = time.Now().Add(-time.Hour)
	sh.forwards[old] = f
	sh.locMu.Unlock()

	s.SetForwardTTL(time.Minute)
	if removed := s.CompactForwards(); removed != 1 {
		t.Fatalf("CompactForwards removed %d, want 1", removed)
	}
	if _, ok := s.Forward(old); ok {
		t.Fatal("expired forward survived")
	}
	if _, ok := s.Get(old); ok {
		t.Fatal("expired stub survived")
	}
	if to, ok := s.Forward(fresh); !ok || to != "n3" {
		t.Fatal("fresh forward was reaped")
	}
	// Disabled TTL compacts nothing.
	s.SetForwardTTL(-1)
	if removed := s.CompactForwards(); removed != 0 {
		t.Fatalf("disabled TTL still removed %d", removed)
	}
}

// TestHintCacheCap: the foreign-hint cache must stay bounded no matter
// how many distinct foreign objects are learned.
func TestHintCacheCap(t *testing.T) {
	t.Parallel()
	s := New("n1")
	const cap = 256
	s.SetHintCacheCap(cap)
	for i := 0; i < cap*20; i++ {
		id := core.OID{Origin: "n9", Seq: uint64(i + 1)}
		s.Learn(id, core.NodeID(fmt.Sprintf("n%d", i%7+2)))
	}
	if ls := s.LocStats(); ls.Cache > cap {
		t.Fatalf("cache grew to %d entries, cap is %d", ls.Cache, cap)
	}
	// Re-learning an already-cached object must not evict.
	s.SetHintCacheCap(ShardCount) // one entry per shard
	id := core.OID{Origin: "n9", Seq: 1 << 40}
	s.Learn(id, "n2")
	s.Learn(id, "n3")
	if hint := s.Hint(id); hint != "n3" {
		t.Fatalf("re-learn lost the entry: hint = %s", hint)
	}
}

// TestDepartedClosureCoalesces: an old host collapsing a group
// departure holds one closure record instead of N forwards, members of
// any origin included, and retires it wholesale on confirmation.
func TestDepartedClosureCoalesces(t *testing.T) {
	t.Parallel()
	s := New("n2")
	anchor := core.OID{Origin: "n1", Seq: 1}
	ids := []core.OID{
		{Origin: "n1", Seq: 1},
		{Origin: "n1", Seq: 2},
		{Origin: "n3", Seq: 9}, // foreign member coalesces too
	}
	for _, id := range ids {
		s.Departed(id, "n4", 1) // per-object forwards first (commit order)
	}
	s.DepartedClosure(anchor, 1, ids, "n4")
	ls := s.LocStats()
	if ls.Forwards != 0 || ls.Closures != 1 || ls.ClosureRefs != len(ids) {
		t.Fatalf("LocStats = %+v, want coalesced closure", ls)
	}
	for _, id := range ids {
		if to, ok := s.Forward(id); !ok || to != "n4" {
			t.Fatalf("Forward(%s) = %s, %v", id, to, ok)
		}
	}
	s.ConfirmDeparted(ids, "n4")
	ls = s.LocStats()
	if ls.ClosureRefs != 0 {
		t.Fatalf("refs survived confirmation: %+v", ls)
	}
	s.CompactForwards() // reaps the zero-ref record (needs a TTL)
	if ls = s.LocStats(); ls.Closures != 0 {
		t.Fatalf("zero-ref closure not reaped: %+v", ls)
	}
}
