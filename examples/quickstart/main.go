// Quickstart: host an object, invoke it remotely, migrate it, and use a
// move-block — the five-minute tour of the objmig public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"objmig"
)

// GreeterState is the object's state: any gob-encodable struct. The
// exported fields are what travels when the object migrates.
type GreeterState struct {
	Greetings int
}

// newGreeterType declares the object type and its methods. Arguments
// and results are ordinary Go values (gob-encoded on the wire).
func newGreeterType() *objmig.Type[GreeterState] {
	t := objmig.NewType[GreeterState]("greeter")
	objmig.HandleFunc(t, "Greet", func(c *objmig.Ctx, s *GreeterState, name string) (string, error) {
		s.Greetings++
		return fmt.Sprintf("hello %s from %s (greeting #%d)", name, c.Node().ID(), s.Greetings), nil
	})
	return t
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A local cluster is an in-process fabric: perfect for tests and
	// examples. Swap in NewTCPCluster for real deployments.
	cluster := objmig.NewLocalCluster()

	mkNode := func(id objmig.NodeID) *objmig.Node {
		n, err := objmig.NewNode(objmig.Config{
			ID:      id,
			Cluster: cluster,
			// Transient placement is the paper's recommended policy
			// for systems whose components don't coordinate.
			Policy: objmig.PolicyPlacement,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := n.RegisterType(newGreeterType()); err != nil {
			log.Fatal(err)
		}
		return n
	}
	alpha, beta := mkNode("alpha"), mkNode("beta")
	defer func() { _ = alpha.Close(); _ = beta.Close() }()

	// Create an object on alpha. The Ref works from any node.
	greeter, err := alpha.Create("greeter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("created", greeter)

	// Invoke it locally and remotely: same call, the runtime traps
	// and forwards as needed.
	msg, err := objmig.Call[string, string](ctx, alpha, greeter, "Greet", "local caller")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(msg)
	msg, err = objmig.Call[string, string](ctx, beta, greeter, "Greet", "remote caller")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(msg)

	// Migrate the object to beta; state and identity are preserved.
	if err := alpha.Migrate(ctx, greeter, "beta"); err != nil {
		log.Fatal(err)
	}
	msg, err = objmig.Call[string, string](ctx, alpha, greeter, "Greet", "after migration")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(msg)

	// A move-block: "bring the object to me for this stretch of
	// work". Under placement the first block wins and locks the
	// object; a conflicting block simply runs with remote calls.
	err = alpha.Move(ctx, greeter, func(ctx context.Context, b *objmig.Block) error {
		fmt.Printf("move-block granted=%v, object now at %s\n", b.Granted, b.At)
		for i := 0; i < 3; i++ {
			msg, err := objmig.Call[string, string](ctx, alpha, greeter, "Greet", "block caller")
			if err != nil {
				return err
			}
			fmt.Println(" ", msg)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("done; alpha served", alpha.Stats().InvocationsServed, "invocations,",
		"beta served", beta.Stats().InvocationsServed)
}
