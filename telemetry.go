package objmig

// Node-side telemetry: the glue between the runtime's hot paths and
// internal/telemetry, plus the HTTP export surface.
//
// Recording is designed to cost what a counter bump costs: the handles
// in nodeTelemetry are resolved once at node construction, the
// histograms and counters behind them are lock-free and allocation-
// free, and the migration trace ring holds fixed-size spans in a
// preallocated buffer. Everything readable — the Prometheus text
// scrape, the expvar JSON, the migration timelines — pays its costs at
// read time instead.
//
// MetricsHandler returns the surface; objmig-node mounts it with
// -metrics-addr. Endpoints:
//
//	/metrics           Prometheus text: every Stats counter, the
//	                   registry's counters/gauges/histograms (as
//	                   summaries with p50/p99), frame-pool
//	                   effectiveness, dropped observer events, and the
//	                   placement view's per-peer staleness.
//	/debug/vars        expvar JSON (process defaults plus this node's
//	                   Stats snapshot under "objmig").
//	/debug/pprof/...   the standard pprof handlers.
//	/debug/migrations  recent migration timelines, newest first: one
//	                   block per TraceID with its phase spans.
//	/debug/jobs        the migration job table: GET lists every job's
//	                   progress (one greppable line per job); POST
//	                   starts a drain or rebalance (action=drain|
//	                   rebalance) or cancels one (action=cancel&id=N).
//	                   objmig-admin is the CLI front end.
//	/debug/cluster     the cluster as this node sees it: one line per
//	                   peer with gossiped health state, utilisation and
//	                   view staleness, aggregated from the placement
//	                   view — no extra collection RPC. objmig-admin top
//	                   wraps it.
//	/debug/flightrec   the black-box flight recorder: POST freezes the
//	                   ring and returns the dump as JSON; GET returns
//	                   the last automatic dump (the one frozen by a
//	                   health transition), 404 if none fired yet.

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"objmig/internal/framebuf"
	"objmig/internal/health"
	"objmig/internal/telemetry"
)

// nodeTelemetry bundles one node's metric handles and its migration
// trace ring. All handles are resolved once, at construction, so the
// recording paths never touch the registry's maps.
type nodeTelemetry struct {
	reg    *telemetry.Registry
	traces *telemetry.TraceLog

	// Hot-path latency histograms (µs).
	invokeLocal  *telemetry.Histogram // local method execution
	invokeRemote *telemetry.Histogram // remote invoke round trip, per hop
	chaseLat     *telemetry.Histogram // whole location chase, local ops excluded
	homeFlushLat *telemetry.Histogram // home-update batch queue-to-delivery

	// phase[p-1] is the duration histogram of migration phase p — fed
	// on every migration, traced or not.
	phase [telemetry.NumPhases]*telemetry.Histogram

	// Placement decision instrumentation.
	placementScores *telemetry.Counter // engine scoring runs
	viewAgeMax      *telemetry.Gauge   // worst fresh peer-sample age, µs
	reservedBytes   *telemetry.Gauge   // bytes claimed in the admission ledger

	// nodeHealth mirrors the health engine's verdict (0 healthy,
	// 1 degraded, 2 critical) as a scrapeable gauge. Stays 0 while the
	// engine is disabled.
	nodeHealth *telemetry.Gauge

	// flightRec is the black-box flight recorder, non-nil only while
	// the health engine runs with a recorder. Events, traced migration
	// spans and health ticks are mirrored into it allocation-free; the
	// ring is frozen and serialised on a health transition or an
	// explicit dump request.
	flightRec atomic.Pointer[health.Recorder]
}

func newNodeTelemetry() *nodeTelemetry {
	reg := telemetry.NewRegistry()
	t := &nodeTelemetry{
		reg:             reg,
		traces:          telemetry.NewTraceLog(telemetry.DefaultTraceSpans),
		invokeLocal:     reg.Histogram("objmig_invoke_local_us"),
		invokeRemote:    reg.Histogram("objmig_invoke_remote_us"),
		chaseLat:        reg.Histogram("objmig_chase_us"),
		homeFlushLat:    reg.Histogram("objmig_homeupdate_flush_us"),
		placementScores: reg.Counter("objmig_placement_scores_total"),
		viewAgeMax:      reg.Gauge("objmig_placement_view_age_max_us"),
		reservedBytes:   reg.Gauge("objmig_placement_reserved_bytes"),
		nodeHealth:      reg.Gauge("objmig_node_health"),
	}
	// The generated per-phase names, for anyone grepping a scrape:
	// objmig_migration_phase_pause_us, objmig_migration_phase_snapshot_us,
	// objmig_migration_phase_stream_us, objmig_migration_phase_stage_us,
	// objmig_migration_phase_install_us, objmig_migration_phase_commit_us,
	// objmig_migration_phase_dir_update_us.
	for p := telemetry.Phase(1); int(p) <= telemetry.NumPhases; p++ {
		name := "objmig_migration_phase_" + strings.ReplaceAll(p.String(), "-", "_") + "_us"
		t.phase[p-1] = reg.Histogram(name)
	}
	return t
}

// span records one migration phase execution: its duration always
// feeds the phase histogram, and when the migration is traced
// (trace != 0) a fixed-size span lands in the ring for timeline
// reconstruction. Allocation-free on both paths.
func (t *nodeTelemetry) span(trace uint64, phase telemetry.Phase, start time.Time, bytes int64, objects int) {
	end := time.Now()
	t.phase[phase-1].Observe(end.Sub(start).Microseconds())
	if trace == 0 {
		return
	}
	t.traces.Record(telemetry.Span{
		Trace: trace, Phase: phase,
		Start: start.UnixNano(), End: end.UnixNano(),
		Bytes: bytes, Objects: int32(objects),
	})
	if r := t.flightRec.Load(); r != nil {
		r.Record(health.Entry{
			At: end.UnixNano(), Kind: health.EntrySpan,
			Label: phase.String(), Trace: trace,
			Values: [4]int64{start.UnixNano(), end.Sub(start).Microseconds(), bytes, int64(objects)},
		})
	}
}

// nextTrace mints a cluster-unique migration TraceID: the high 32 bits
// identify this node (the same FNV scheme as nextToken), the low 32
// count locally. Minted once per migration decision — explicit
// primitives, move grants, autopilot elections, placement passes — and
// carried by every wire body of the resulting transfer.
func (n *Node) nextTrace() uint64 {
	return n.tokenBase | (n.traceSeq.Add(1) & 0xFFFFFFFF)
}

// Timelines returns the migration timelines reconstructible from this
// node's own span ring, newest first. Cross-node timelines are built
// by merging several nodes' TraceSpans (as the e2e tests and the
// /debug/migrations endpoint of each participant do).
func (n *Node) Timelines() []telemetry.Timeline {
	return telemetry.Timelines(n.tel.traces.Spans())
}

// TraceSpans copies this node's recorded migration spans, oldest
// first — raw material for cross-node timeline merges.
func (n *Node) TraceSpans() []telemetry.Span {
	return n.tel.traces.Spans()
}

// MetricsHandler returns the node's observability surface (see the
// package comment above for the endpoint list). Mount it on any HTTP
// server; objmig-node serves it when started with -metrics-addr.
func (n *Node) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", n.serveMetrics)
	mux.HandleFunc("/debug/vars", n.serveVars)
	mux.HandleFunc("/debug/migrations", n.serveMigrations)
	mux.HandleFunc("/debug/jobs", n.serveJobs)
	mux.HandleFunc("/debug/cluster", n.serveCluster)
	mux.HandleFunc("/debug/flightrec", n.serveFlightrec)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveMetrics renders the Prometheus text exposition: the reflected
// Stats snapshot, the registry, the frame pool and the placement view.
func (n *Node) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	node := string(n.id)

	// Every Stats field becomes one gauge line, named by convention:
	// InvocationsServed → objmig_invocations_served.
	s := n.Stats()
	v := reflect.ValueOf(s)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		fmt.Fprintf(w, "objmig_%s{node=%q} %d\n", promName(t.Field(i).Name), node, v.Field(i).Int())
	}

	counters, gauges, hists := n.tel.reg.Snapshot()
	for _, c := range counters {
		fmt.Fprintf(w, "%s{node=%q} %d\n", c.Name, node, c.Value)
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "%s{node=%q} %d\n", g.Name, node, g.Value)
	}
	for _, h := range hists {
		fmt.Fprintf(w, "# TYPE %s summary\n", h.Name)
		fmt.Fprintf(w, "%s{node=%q,quantile=\"0.5\"} %d\n", h.Name, node, h.Snap.Quantile(0.5))
		fmt.Fprintf(w, "%s{node=%q,quantile=\"0.99\"} %d\n", h.Name, node, h.Snap.Quantile(0.99))
		fmt.Fprintf(w, "%s_sum{node=%q} %d\n", h.Name, node, h.Snap.Sum)
		fmt.Fprintf(w, "%s_count{node=%q} %d\n", h.Name, node, h.Snap.Total)
		// The same distribution as a real Prometheus histogram:
		// cumulative buckets under <name>_bucket, so rate() and
		// histogram_quantile() work against the scrape. The summary
		// lines above stay for anyone already grepping them.
		fmt.Fprintf(w, "# TYPE %s_bucket histogram\n", h.Name)
		var cum int64
		for b, c := range h.Snap.Counts {
			cum += c
			fmt.Fprintf(w, "%s_bucket{node=%q,le=\"%d\"} %d\n", h.Name, node, telemetry.BucketUpper(b), cum)
		}
		fmt.Fprintf(w, "%s_bucket{node=%q,le=\"+Inf\"} %d\n", h.Name, node, h.Snap.Total)
	}

	hits, misses := framebuf.Stats()
	fmt.Fprintf(w, "objmig_framebuf_pool_hits_total{node=%q} %d\n", node, hits)
	fmt.Fprintf(w, "objmig_framebuf_pool_misses_total{node=%q} %d\n", node, misses)
	fmt.Fprintf(w, "objmig_trace_spans_total{node=%q} %d\n", node, n.tel.traces.Total())

	// Gossip staleness, per peer: how old this node's view of each
	// fresh peer sample is. Stale (TTL-pruned) peers disappear.
	if d := n.placementDaemonRef(); d != nil {
		ages, _ := d.view.Ages(n.id)
		for _, pa := range ages {
			fmt.Fprintf(w, "objmig_placement_view_age_us{node=%q,peer=%q} %d\n",
				node, string(pa.Node), pa.Age.Microseconds())
		}
	}
}

// promName converts a Stats field name to its metric suffix:
// StreamMaxChunkBytes → stream_max_chunk_bytes, ChaseP50Hops →
// chase_p50_hops.
func promName(field string) string {
	var b strings.Builder
	for i, r := range field {
		if r >= 'A' && r <= 'Z' {
			if i > 0 && (field[i-1] < 'A' || field[i-1] > 'Z') {
				b.WriteByte('_')
			}
			b.WriteByte(byte(r) + ('a' - 'A'))
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// serveJobs is the migration job table's HTTP face. GET renders one
// greppable line per job; POST with action=drain or action=rebalance
// plans and starts a job (executed on a tracked node goroutine, so it
// survives the request), and action=cancel&id=N requests a wave-
// boundary cancellation. objmig-admin wraps this endpoint.
func (n *Node) serveJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		n.serveJobAction(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	sts := n.Jobs()
	fmt.Fprintf(w, "node %s: %d jobs\n", n.id, len(sts))
	for _, st := range sts {
		fmt.Fprintf(w, "job %d kind=%s state=%s waves=%d/%d moves=%d/%d skipped=%d failed=%d retargets=%d objects=%d bytes=%d unplaced=%d trace=%016x",
			st.ID, st.Kind, st.State, st.NextWave, st.Waves,
			st.MovesDone, st.Moves, st.MovesSkipped, st.MovesFailed,
			st.Retargets, st.ObjectsMoved, st.BytesMoved, st.Unplaced, st.Trace)
		if st.Err != "" {
			fmt.Fprintf(w, " err=%q", st.Err)
		}
		fmt.Fprintln(w)
	}
}

// serveJobAction handles the POST verbs of /debug/jobs.
func (n *Node) serveJobAction(w http.ResponseWriter, r *http.Request) {
	switch r.FormValue("action") {
	case "drain":
		j, err := n.NewDrainJob(JobConfig{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		n.spawn(func() { _ = j.Execute(context.Background()) })
		fmt.Fprintf(w, "job %d started kind=%s moves=%d\n", j.ID(), j.Kind(), j.Status().Moves)
	case "rebalance":
		j, err := n.NewRebalanceJob(r.Context(), JobConfig{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		n.spawn(func() { _ = j.Execute(context.Background()) })
		fmt.Fprintf(w, "job %d started kind=%s moves=%d\n", j.ID(), j.Kind(), j.Status().Moves)
	case "cancel":
		id, err := strconv.ParseUint(r.FormValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "cancel needs a numeric id", http.StatusBadRequest)
			return
		}
		j, ok := n.JobByID(id)
		if !ok {
			http.Error(w, fmt.Sprintf("no job %d", id), http.StatusNotFound)
			return
		}
		j.Cancel()
		fmt.Fprintf(w, "job %d cancel requested\n", id)
	default:
		http.Error(w, "action must be drain, rebalance or cancel", http.StatusBadRequest)
	}
}

// serveVars renders expvar-compatible JSON: the process-level expvar
// defaults (cmdline, memstats) plus this node's Stats under "objmig".
func (n *Node) serveVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value.String())
	})
	b, err := json.Marshal(n.Stats())
	if err != nil {
		b = []byte("{}")
	}
	fmt.Fprintf(w, "%q: %s\n}\n", "objmig", b)
}

// serveMigrations lists the node's recent migration timelines, newest
// first: one block per TraceID with its locally recorded phase spans.
// A cross-node view is the union of each participant's listing for the
// same TraceID.
func (n *Node) serveMigrations(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	tls := n.Timelines()
	fmt.Fprintf(w, "node %s: %d traced migrations in window (%d spans recorded total)\n",
		n.id, len(tls), n.tel.traces.Total())
	if ev := n.tel.traces.Evicted(); ev > 0 {
		fmt.Fprintf(w, "WARNING: ring evicted %d spans — the oldest timelines below are truncated\n", ev)
	}
	fmt.Fprintln(w)
	for _, tl := range tls {
		var bytes int64
		for _, sp := range tl.Spans {
			bytes += sp.Bytes
		}
		fmt.Fprintf(w, "trace %016x  %d spans  %d bytes\n", tl.Trace, len(tl.Spans), bytes)
		for _, sp := range tl.Spans {
			fmt.Fprintf(w, "  %s\n", sp)
		}
		fmt.Fprintln(w)
	}
}
