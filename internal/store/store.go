// Package store owns a node's object table and its location knowledge
// behind one lock-striped shard design: object records, the home index
// for objects the node created, the forwarding pointers for objects
// that migrated away, and the hint cache for foreign objects all live
// in the shard selected by the object's ID.
//
// The paper's live runtime decides migration at the object's current
// host, so every invoke, locate, move and forward-chase funnels through
// these tables. Striping them by OID hash gives the runtime per-object
// concurrency on the hot path — a lookup touches exactly one shard —
// while table-wide operations (close, stats, sweeps) iterate the shards
// one at a time instead of stopping the world.
//
// Arriving migration groups install through InstallBatch: a
// check-then-commit under the involved shards' locks that swaps every
// record in (or none), which is what lets the streamed migration path
// stage chunks freely and still install the whole group as a unit at
// commit. Installable is its advisory twin for early conflict checks
// while chunks are staged.
//
// The location scheme itself is unchanged from the paper's system model
// ([ChC91], [JLH+88]): a name-service lookup at the object's origin
// plus forward addressing at former hosts.
package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"objmig/internal/core"
	"objmig/internal/wire"
)

// ShardCount is the number of lock stripes. A power of two so shard
// selection is a mask, sized well above typical core counts so that
// concurrent hot-path lookups rarely collide on a stripe.
const ShardCount = 32

// ErrClosed is returned by mutating operations after Close.
var ErrClosed = errors.New("store: closed")

// shard is one stripe: a slice of the object table plus the location
// maps for the OIDs that hash here. The table lock and the location
// lock are separate so a record may update location state while its own
// mutex is held (forward-pointer commit) without inverting against
// table scans that take the table lock first. Lock order:
// tabMu → Record.Mu → locMu.
type shard struct {
	tabMu sync.RWMutex
	objs  map[core.OID]*Record

	locMu sync.Mutex
	// home maps objects created by this node to their last reported
	// location (authoritative, lazily updated).
	home map[core.OID]core.NodeID
	// forwards maps objects that were hosted here and left to their
	// next hop.
	forwards map[core.OID]core.NodeID
	// cache holds location hints for foreign objects.
	cache map[core.OID]core.NodeID
}

// Store is a node-local sharded object-and-location table. It is safe
// for concurrent use.
type Store struct {
	self   core.NodeID
	closed atomic.Bool
	shards [ShardCount]shard
}

// New returns an empty Store for the given node.
func New(self core.NodeID) *Store {
	s := &Store{self: self}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.objs = make(map[core.OID]*Record)
		sh.home = make(map[core.OID]core.NodeID)
		sh.forwards = make(map[core.OID]core.NodeID)
		sh.cache = make(map[core.OID]core.NodeID)
	}
	return s
}

// Self returns the owning node's identity.
func (s *Store) Self() core.NodeID { return s.self }

// ShardIndex maps an OID to its stripe (the shared core.HashOID,
// masked; exported for distribution tests).
func ShardIndex(id core.OID) int {
	return int(core.HashOID(id) & (ShardCount - 1))
}

func (s *Store) shardOf(id core.OID) *shard { return &s.shards[ShardIndex(id)] }

// --- Object table ---

// Add inserts a freshly created record and claims its home-index entry,
// atomically within the record's shard. It fails after Close.
func (s *Store) Add(rec *Record) error {
	sh := s.shardOf(rec.ID)
	sh.tabMu.Lock()
	if s.closed.Load() {
		sh.tabMu.Unlock()
		return ErrClosed
	}
	sh.objs[rec.ID] = rec
	sh.tabMu.Unlock()
	sh.locMu.Lock()
	sh.home[rec.ID] = s.self
	sh.locMu.Unlock()
	return nil
}

// Get looks a record up, forwarding stubs included.
func (s *Store) Get(id core.OID) (*Record, bool) {
	sh := s.shardOf(id)
	sh.tabMu.RLock()
	rec, ok := sh.objs[id]
	sh.tabMu.RUnlock()
	return rec, ok
}

// Hosted returns the record only when the object actually lives here
// (active or paused). Forwarding stubs are excluded: client fast paths
// must fall through to the hint chain instead of spinning on their own
// stale stub.
func (s *Store) Hosted(id core.OID) (*Record, bool) {
	rec, ok := s.Get(id)
	if !ok || rec.IsGone() {
		return nil, false
	}
	return rec, true
}

// Lookup is the hot-path combination of Hosted and Hint: it resolves
// the record if the object lives here, and otherwise the best location
// hint — touching only the object's own shard.
func (s *Store) Lookup(id core.OID) (*Record, core.NodeID) {
	if rec, ok := s.Hosted(id); ok {
		return rec, s.self
	}
	return nil, s.Hint(id)
}

// GetBatch resolves many records at once, grouping the lookups by
// shard so each involved stripe lock is taken exactly once — the batch
// counterpart of Get for large commit/abort sets, where a per-OID walk
// would pay one lock round trip per object. The result aligns with
// ids; missing objects yield nil entries.
func (s *Store) GetBatch(ids []core.OID) []*Record {
	out := make([]*Record, len(ids))
	if len(ids) == 0 {
		return out
	}
	// Bucket the positions per shard first, so each stripe lock is
	// held only for its own objects' lookups.
	var perShard [ShardCount][]int
	for i, id := range ids {
		sh := ShardIndex(id)
		perShard[sh] = append(perShard[sh], i)
	}
	for sh := range perShard {
		idxs := perShard[sh]
		if len(idxs) == 0 {
			continue
		}
		st := &s.shards[sh]
		st.tabMu.RLock()
		for _, i := range idxs {
			out[i] = st.objs[ids[i]]
		}
		st.tabMu.RUnlock()
	}
	return out
}

// Range calls fn for every record until fn returns false. Each shard's
// table is snapshotted under its own read lock; fn runs without any
// shard lock held, so it may take record locks freely.
func (s *Store) Range(fn func(*Record) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.tabMu.RLock()
		recs := make([]*Record, 0, len(sh.objs))
		for _, rec := range sh.objs {
			recs = append(recs, rec)
		}
		sh.tabMu.RUnlock()
		for _, rec := range recs {
			if !fn(rec) {
				return
			}
		}
	}
}

// HostedCount returns the number of live (non-forwarding) records.
func (s *Store) HostedCount() int {
	n := 0
	s.Range(func(rec *Record) bool {
		if !rec.IsGone() {
			n++
		}
		return true
	})
	return n
}

// HostedStats returns the live record count together with the
// approximate resident state bytes (the sum of Record.StateBytes) in
// one shard walk — the node's load-gossip sample source.
func (s *Store) HostedStats() (count, bytes int64) {
	s.Range(func(rec *Record) bool {
		if !rec.IsGone() {
			count++
			bytes += rec.StateBytes
		}
		return true
	})
	return count, bytes
}

// InstallBatch registers arriving records as part of migration token.
// The batch is all-or-nothing: either every record is installed (and
// its location state updated to "here") or none is.
//
// An existing record may only be replaced if it is a forwarding stub
// (the object is coming back) or was paused by this very migration (a
// same-node reinstall). Replacing a record paused by a *different*
// migration would orphan that migration's pause and duplicate the
// object. The check-then-commit runs with every involved shard's table
// lock held (acquired in ascending stripe order, so concurrent
// installs cannot deadlock) and every replaced record's lock held
// across the swap, which closes that race without any store-wide lock.
func (s *Store) InstallBatch(recs []*Record, token uint64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	// Lock the involved stripes in ascending order.
	var involved [ShardCount]bool
	for _, rec := range recs {
		involved[ShardIndex(rec.ID)] = true
	}
	for i := range s.shards {
		if involved[i] {
			s.shards[i].tabMu.Lock()
		}
	}
	unlockShards := func() {
		for i := range s.shards {
			if involved[i] {
				s.shards[i].tabMu.Unlock()
			}
		}
	}

	// Check phase: verify every replaced record is replaceable, and
	// hold its lock so its status cannot change before the commit.
	olds := make([]*Record, len(recs))
	var locked []*Record
	unlockRecs := func() {
		for _, o := range locked {
			o.Mu.Unlock()
		}
	}
	for i, rec := range recs {
		old, exists := s.shardOf(rec.ID).objs[rec.ID]
		if !exists {
			continue
		}
		old.Mu.Lock()
		locked = append(locked, old)
		replaceable := old.Status == StatusGone ||
			(old.Status == StatusPaused && old.Token == token)
		if !replaceable {
			unlockRecs()
			unlockShards()
			return wire.Errorf(wire.CodeDenied,
				"object %s is live at %s (concurrent migration)", rec.ID, s.self)
		}
		olds[i] = old
	}
	// Commit phase: swap the records in and turn the replaced ones
	// into wake-up markers pointing here.
	for i, rec := range recs {
		s.shardOf(rec.ID).objs[rec.ID] = rec
		if old := olds[i]; old != nil {
			old.becomeStubLocked(s.self)
		}
	}
	unlockRecs()
	unlockShards()
	for _, rec := range recs {
		s.Arrived(rec.ID)
	}
	return nil
}

// Installable is the advisory twin of InstallBatch's replaceability
// check, used while a streaming migration stages chunks: it reports
// whether installing id as part of migration token would currently be
// admissible. A live local record that is neither a forwarding stub nor
// paused by this very token dooms the session, and catching that at
// staging time aborts the stream early instead of at commit. Advisory
// only — the state can change before commit, and InstallBatch re-checks
// authoritatively under the shard locks.
func (s *Store) Installable(id core.OID, token uint64) error {
	sh := s.shardOf(id)
	sh.tabMu.RLock()
	old, exists := sh.objs[id]
	sh.tabMu.RUnlock()
	if !exists {
		return nil
	}
	old.Mu.Lock()
	defer old.Mu.Unlock()
	if old.Status == StatusGone || (old.Status == StatusPaused && old.Token == token) {
		return nil
	}
	return wire.Errorf(wire.CodeDenied,
		"object %s is live at %s (concurrent migration)", id, s.self)
}

// Close marks the store closed: no record may be added afterwards.
// Lookups keep working so in-flight chases fail gracefully. The barrier
// walks the stripes one at a time — no stop-the-world lock — and
// guarantees that once Close returns, every Add either completed or
// will observe the closed flag.
func (s *Store) Close() {
	s.closed.Store(true)
	for i := range s.shards {
		s.shards[i].tabMu.Lock()
		s.shards[i].tabMu.Unlock() //nolint:staticcheck // empty section is the barrier
	}
}

// --- Location tables ---

// Created records that this node created the object and hosts it.
func (s *Store) Created(id core.OID) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	sh.home[id] = s.self
}

// Arrived records that the object is now hosted here: any forwarding
// pointer and stale hint is dropped, and the home index is updated when
// this node is the origin.
func (s *Store) Arrived(id core.OID) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	delete(sh.forwards, id)
	delete(sh.cache, id)
	if id.Origin == s.self {
		sh.home[id] = s.self
	}
}

// Departed records that the object left this node towards to: a
// forwarding pointer replaces the local entry.
func (s *Store) Departed(id core.OID, to core.NodeID) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	sh.forwards[id] = to
	if id.Origin == s.self {
		sh.home[id] = to
	}
}

// HomeUpdate records a (possibly delayed) report that objects created
// here now live at the given node. Reports about foreign objects are
// ignored. Each object's shard is locked individually — a large batch
// never stalls unrelated lookups.
func (s *Store) HomeUpdate(ids []core.OID, at core.NodeID) {
	for _, id := range ids {
		if id.Origin != s.self {
			continue
		}
		sh := s.shardOf(id)
		sh.locMu.Lock()
		sh.home[id] = at
		sh.locMu.Unlock()
	}
}

// Home returns the home-index entry for an object created here.
func (s *Store) Home(id core.OID) (core.NodeID, bool) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	at, ok := sh.home[id]
	return at, ok
}

// Forward returns the forwarding pointer, if any.
func (s *Store) Forward(id core.OID) (core.NodeID, bool) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	to, ok := sh.forwards[id]
	return to, ok
}

// Learn records fresher location knowledge for an object that is not
// local. When a forwarding pointer exists it is updated in place — this
// is the classic forward-addressing chain shortening: once we hear
// where the object really is, our pointer skips the intermediate hops.
func (s *Store) Learn(id core.OID, at core.NodeID) {
	if at == "" || at == s.self {
		return
	}
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	if _, ok := sh.forwards[id]; ok {
		sh.forwards[id] = at
		if id.Origin == s.self {
			sh.home[id] = at
		}
		return
	}
	sh.cache[id] = at
}

// Hint suggests where to try first for an object that is not local:
// the freshest of forwarding pointer, home index, cache, falling back
// to the object's origin node.
func (s *Store) Hint(id core.OID) core.NodeID {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	if to, ok := sh.forwards[id]; ok {
		return to
	}
	if id.Origin == s.self {
		if at, ok := sh.home[id]; ok {
			return at
		}
	}
	if at, ok := sh.cache[id]; ok {
		return at
	}
	return id.Origin
}

// Invalidate drops a cached hint that turned out to be wrong.
func (s *Store) Invalidate(id core.OID) {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	delete(sh.cache, id)
}

// LocStats reports location-table sizes (for diagnostics and tests),
// summed shard by shard.
func (s *Store) LocStats() (home, forwards, cache int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.locMu.Lock()
		home += len(sh.home)
		forwards += len(sh.forwards)
		cache += len(sh.cache)
		sh.locMu.Unlock()
	}
	return home, forwards, cache
}

// Debug renders everything the location tables know about one object
// (diagnostics only).
func (s *Store) Debug(id core.OID) string {
	sh := s.shardOf(id)
	sh.locMu.Lock()
	defer sh.locMu.Unlock()
	h, hok := sh.home[id]
	f, fok := sh.forwards[id]
	c, cok := sh.cache[id]
	return fmt.Sprintf("self=%s home=%q(%v) fwd=%q(%v) cache=%q(%v)",
		s.self, h, hok, f, fok, c, cok)
}
