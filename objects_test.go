package objmig

import (
	"errors"
	"sync"
	"testing"
)

// TestMigrationAbortRollsBack: when the admission check vetoes a group
// migration, every member must be unpaused and usable.
func TestMigrationAbortRollsBack(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicyPlacement, Attach: AttachUnrestricted})
	a := mustCreate(t, nodes[0])
	b := mustCreate(t, nodes[0])
	if err := nodes[0].Attach(ctx, a, b, NoAlliance); err != nil {
		t.Fatal(err)
	}
	// Fix a member: the admission check must veto moving the group
	// and roll the pauses back.
	if err := nodes[0].Fix(ctx, b); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Migrate(ctx, a, "n1"); !errors.Is(err, ErrFixed) {
		t.Fatalf("migrate with fixed member: %v", err)
	}
	// Everything still works and nothing moved.
	if at := whereIs(t, ctx, nodes[0], a); at != "n0" {
		t.Fatalf("a at %v after aborted migration", at)
	}
	if v, err := Call[int, int](ctx, nodes[1], a, "Add", 1); err != nil || v != 1 {
		t.Fatalf("a unusable after abort: %d, %v", v, err)
	}
	if v, err := Call[int, int](ctx, nodes[1], b, "Add", 1); err != nil || v != 1 {
		t.Fatalf("b unusable after abort: %d, %v", v, err)
	}
	// After unfixing, the same migration succeeds.
	if err := nodes[0].Unfix(ctx, b); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Migrate(ctx, a, "n1"); err != nil {
		t.Fatal(err)
	}
	if at := whereIs(t, ctx, nodes[0], b); at != "n1" {
		t.Fatalf("b at %v after retry", at)
	}
}

// TestConcurrentGroupMigrationsOverlap: two concurrent migrations of
// overlapping working sets must not corrupt state — one wins, the other
// fails cleanly or retries, and afterwards the working set is intact on
// a single node.
func TestConcurrentGroupMigrationsOverlap(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Policy: PolicyConventional, Attach: AttachUnrestricted})
	a := mustCreate(t, nodes[0])
	b := mustCreate(t, nodes[0])
	if err := nodes[0].Attach(ctx, a, b, NoAlliance); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		var wg sync.WaitGroup
		for _, tgt := range []NodeID{"n1", "n2"} {
			wg.Add(1)
			go func(tgt NodeID) {
				defer wg.Done()
				// Conflicts may surface as denied/unreachable; they
				// must never corrupt.
				_ = nodes[0].Migrate(ctx, a, tgt)
			}(tgt)
		}
		wg.Wait()
		atA, err := nodes[0].Locate(ctx, a)
		if err != nil {
			t.Fatalf("round %d: locate a: %v", round, err)
		}
		atB, err := nodes[0].Locate(ctx, b)
		if err != nil {
			t.Fatalf("round %d: locate b: %v", round, err)
		}
		if atA != atB {
			t.Fatalf("round %d: working set split: a@%s b@%s", round, atA, atB)
		}
		if v, err := Call[int, int](ctx, nodes[1], a, "Add", 1); err != nil || v != round+1 {
			t.Fatalf("round %d: a = %d, %v", round, v, err)
		}
	}
}

// TestMigrateToCurrentHost: migrating to where the object already lives
// is a clean no-op.
func TestMigrateToCurrentHost(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{})
	ref := mustCreate(t, nodes[0])
	if _, err := Call[int, int](ctx, nodes[0], ref, "Add", 3); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Migrate(ctx, ref, "n0"); err != nil {
		t.Fatalf("self-migrate: %v", err)
	}
	if v, err := Call[struct{}, int](ctx, nodes[1], ref, "Get", struct{}{}); err != nil || v != 3 {
		t.Fatalf("state after self-migrate: %d, %v", v, err)
	}
}
