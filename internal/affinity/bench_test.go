package affinity

import (
	"testing"

	"objmig/internal/core"
)

// BenchmarkAffinityRecord measures the steady-state hot-path cost of
// recording one access (object and caller already known). The
// autopilot's contract is ≤100ns and zero allocations per invoke; the
// allocation half is also asserted by TestRecordZeroAllocSteadyState.
func BenchmarkAffinityRecord(b *testing.B) {
	tr := New("n0")
	tr.SetEnabled(true)
	o := core.OID{Origin: "n0", Seq: 42}
	tr.Record(o, "n1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(o, "n1")
	}
}

// BenchmarkAffinityRecordDisabled measures the cost every invoke pays
// on nodes that never enable the autopilot.
func BenchmarkAffinityRecordDisabled(b *testing.B) {
	tr := New("n0")
	o := core.OID{Origin: "n0", Seq: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(o, "n1")
	}
}

// BenchmarkAffinityRecordParallel measures contended recording on one
// hot object from many goroutines (the autopilot's target workload).
func BenchmarkAffinityRecordParallel(b *testing.B) {
	tr := New("n0")
	tr.SetEnabled(true)
	o := core.OID{Origin: "n0", Seq: 42}
	tr.Record(o, "n1")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(o, "n1")
		}
	})
}
