package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPolicyKindString(t *testing.T) {
	t.Parallel()
	cases := map[PolicyKind]string{
		PolicySedentary:            "sedentary",
		PolicyConventional:         "conventional",
		PolicyPlacement:            "placement",
		PolicyCompareNodes:         "compare-nodes",
		PolicyCompareReinstantiate: "compare-reinstantiate",
		PolicyKind(0):              "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("PolicyKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestPolicyForPanicsOnInvalid(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("PolicyFor(0) did not panic")
		}
	}()
	PolicyFor(PolicyKind(0))
}

func TestSedentaryNeverMigrates(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicySedentary)
	var st ObjState
	d := p.OnMove(&st, "n1", MoveRequest{From: "n2", Block: 1})
	if d.Action != ActionDeny || d.Reason != ReasonPolicy {
		t.Fatalf("remote move: %+v, want deny/policy", d)
	}
	d = p.OnMove(&st, "n1", MoveRequest{From: "n1", Block: 2})
	if d.Action != ActionStay {
		t.Fatalf("local move: %+v, want stay", d)
	}
	if e := p.OnEnd(&st, "n1", EndRequest{From: "n2", Block: 1}); e != (EndDecision{}) {
		t.Fatalf("end: %+v, want zero decision", e)
	}
}

func TestConventionalAlwaysMigrates(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyConventional)
	var st ObjState
	if d := p.OnMove(&st, "n1", MoveRequest{From: "n2", Block: 1}); d.Action != ActionMigrate {
		t.Fatalf("remote move: %+v, want migrate", d)
	}
	if d := p.OnMove(&st, "n2", MoveRequest{From: "n2", Block: 2}); d.Action != ActionStay {
		t.Fatalf("local move: %+v, want stay", d)
	}
	// A second, conflicting move still migrates: this is the thrash
	// the paper demonstrates.
	if d := p.OnMove(&st, "n2", MoveRequest{From: "n3", Block: 3}); d.Action != ActionMigrate {
		t.Fatalf("conflicting move: %+v, want migrate", d)
	}
}

func TestConventionalRespectsFixed(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyConventional)
	st := ObjState{Fixed: true}
	if d := p.OnMove(&st, "n1", MoveRequest{From: "n2", Block: 1}); d.Action != ActionDeny || d.Reason != ReasonFixed {
		t.Fatalf("move on fixed: %+v, want deny/fixed", d)
	}
}

func TestPlacementFirstMoverWinsAndLocks(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyPlacement)
	var st ObjState
	d := p.OnMove(&st, "n1", MoveRequest{From: "n2", Block: 7})
	if d.Action != ActionMigrate {
		t.Fatalf("first move: %+v, want migrate", d)
	}
	if !st.Lock.Held || st.Lock.Owner != "n2" || st.Lock.Block != 7 {
		t.Fatalf("lock after grant: %+v", st.Lock)
	}
	// Conflicting move from another node is denied.
	if d := p.OnMove(&st, "n2", MoveRequest{From: "n3", Block: 8}); d.Action != ActionDeny || d.Reason != ReasonLocked {
		t.Fatalf("conflicting move: %+v, want deny/locked", d)
	}
	// Conflicting move from the SAME node but a different block is
	// also denied: lock ownership is per block.
	if d := p.OnMove(&st, "n2", MoveRequest{From: "n2", Block: 9}); d.Action != ActionDeny || d.Reason != ReasonLocked {
		t.Fatalf("same-node different-block move: %+v, want deny/locked", d)
	}
	// Re-delivery of the winning move is idempotent.
	if d := p.OnMove(&st, "n2", MoveRequest{From: "n2", Block: 7}); d.Action != ActionStay {
		t.Fatalf("re-delivered winning move: %+v, want stay", d)
	}
}

func TestPlacementEndSemantics(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyPlacement)
	var st ObjState
	p.OnMove(&st, "n1", MoveRequest{From: "n2", Block: 7})
	// End from a non-owner is ignored.
	if e := p.OnEnd(&st, "n2", EndRequest{From: "n3", Block: 8}); e.Unlocked {
		t.Fatalf("non-owner end unlocked: %+v", e)
	}
	if !st.Lock.Held {
		t.Fatal("lock lost after non-owner end")
	}
	// End from the owner with the wrong block is ignored too.
	if e := p.OnEnd(&st, "n2", EndRequest{From: "n2", Block: 99}); e.Unlocked {
		t.Fatalf("wrong-block end unlocked: %+v", e)
	}
	// The owner's end releases the lock.
	e := p.OnEnd(&st, "n2", EndRequest{From: "n2", Block: 7})
	if !e.Unlocked || st.Lock.Held {
		t.Fatalf("owner end: %+v lock=%+v", e, st.Lock)
	}
	// A new contender can now win.
	if d := p.OnMove(&st, "n2", MoveRequest{From: "n3", Block: 10}); d.Action != ActionMigrate {
		t.Fatalf("move after unlock: %+v, want migrate", d)
	}
}

func TestPlacementLocalMoveLocksWithoutTransfer(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyPlacement)
	var st ObjState
	d := p.OnMove(&st, "n2", MoveRequest{From: "n2", Block: 3})
	if d.Action != ActionStay {
		t.Fatalf("local move: %+v, want stay", d)
	}
	if !st.Lock.Held || st.Lock.Owner != "n2" || st.Lock.Block != 3 {
		t.Fatalf("local move must still lock: %+v", st.Lock)
	}
}

func TestPlacementFixedDeniesWithoutLocking(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyPlacement)
	st := ObjState{Fixed: true}
	if d := p.OnMove(&st, "n1", MoveRequest{From: "n2", Block: 1}); d.Action != ActionDeny || d.Reason != ReasonFixed {
		t.Fatalf("move on fixed: %+v", d)
	}
	if st.Lock.Held {
		t.Fatal("fixed deny must not leave a lock behind")
	}
}

func TestPlacementAbortReleasesLock(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyPlacement)
	var st ObjState
	req := MoveRequest{From: "n2", Block: 7}
	p.OnMove(&st, "n1", req)
	p.Abort(&st, req)
	if st.Lock.Held {
		t.Fatalf("lock held after abort: %+v", st.Lock)
	}
	// Abort of a non-winning request must not release someone else's
	// lock.
	p.OnMove(&st, "n1", MoveRequest{From: "n3", Block: 8})
	p.Abort(&st, MoveRequest{From: "n4", Block: 9})
	if !st.Lock.Held || st.Lock.Owner != "n3" {
		t.Fatalf("foreign abort broke the lock: %+v", st.Lock)
	}
}

func TestCompareNodesMajorityRule(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyCompareNodes)
	var st ObjState
	// First move: requester has 1 open move, current host 0 - migrate.
	if d := p.OnMove(&st, "h", MoveRequest{From: "a", Block: 1}); d.Action != ActionMigrate {
		t.Fatalf("first move: %+v, want migrate", d)
	}
	// Object now at "a". A move from "b" ties 1:1 - denied.
	if d := p.OnMove(&st, "a", MoveRequest{From: "b", Block: 2}); d.Action != ActionDeny || d.Reason != ReasonOutvoted {
		t.Fatalf("tying move: %+v, want deny/outvoted", d)
	}
	// A second move from "b" (another block on the same node) makes
	// it 2:1 - migrate. This is the "may lead to a migration at some
	// point later" behaviour the paper describes.
	if d := p.OnMove(&st, "a", MoveRequest{From: "b", Block: 3}); d.Action != ActionMigrate {
		t.Fatalf("majority move: %+v, want migrate", d)
	}
	if got := st.OpenMoves["b"]; got != 2 {
		t.Fatalf("open moves at b = %d, want 2", got)
	}
	// Ends drain the counters and drop empty entries.
	p.OnEnd(&st, "b", EndRequest{From: "b", Block: 2})
	p.OnEnd(&st, "b", EndRequest{From: "b", Block: 3})
	if _, ok := st.OpenMoves["b"]; ok {
		t.Fatalf("drained counter not removed: %+v", st.OpenMoves)
	}
	// An unmatched end is harmless.
	p.OnEnd(&st, "b", EndRequest{From: "zz", Block: 99})
	if c := st.OpenMoves["zz"]; c != 0 {
		t.Fatalf("unmatched end created count %d", c)
	}
}

func TestCompareNodesNeverMigratesOnEnd(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyCompareNodes)
	var st ObjState
	p.OnMove(&st, "h", MoveRequest{From: "a", Block: 1})
	p.OnMove(&st, "a", MoveRequest{From: "b", Block: 2})
	p.OnMove(&st, "a", MoveRequest{From: "b", Block: 3})
	// Object at "b" now; "a" ends its block. Even though counts may
	// favour another node, plain compare-nodes never migrates on end.
	if e := p.OnEnd(&st, "b", EndRequest{From: "a", Block: 1}); e.Migrate {
		t.Fatalf("compare-nodes migrated on end: %+v", e)
	}
}

func TestCompareReinstantiateMigratesOnEnd(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyCompareReinstantiate)
	var st ObjState
	// Two open moves at "b", one at "a"; object at "a".
	p.OnMove(&st, "h", MoveRequest{From: "a", Block: 1}) // a:1, migrate to a
	p.OnMove(&st, "a", MoveRequest{From: "b", Block: 2}) // b:1, deny
	p.OnMove(&st, "a", MoveRequest{From: "b", Block: 3}) // b:2, migrate to b
	// Suppose the driver kept it at "a" anyway (transfer raced); on
	// a's end, b holds the clear majority 2:0 - migrate to b.
	e := p.OnEnd(&st, "a", EndRequest{From: "a", Block: 1})
	if !e.Migrate || e.MigrateTo != "b" {
		t.Fatalf("end decision: %+v, want migrate to b", e)
	}
}

func TestCompareReinstantiateNoMigrationOnTie(t *testing.T) {
	t.Parallel()
	p := PolicyFor(PolicyCompareReinstantiate)
	var st ObjState
	st.incOpen("b")
	st.incOpen("c")
	// b and c tie at 1; no clear majority.
	if e := p.OnEnd(&st, "a", EndRequest{From: "zz", Block: 9}); e.Migrate {
		t.Fatalf("tie migrated: %+v", e)
	}
	// Current host already holds the maximum: no migration.
	st2 := ObjState{}
	st2.incOpen("a")
	st2.incOpen("a")
	st2.incOpen("b")
	if e := p.OnEnd(&st2, "a", EndRequest{From: "zz", Block: 9}); e.Migrate {
		t.Fatalf("current-max migrated: %+v", e)
	}
}

func TestObjStateClone(t *testing.T) {
	t.Parallel()
	st := ObjState{Fixed: true, Lock: LockState{Held: true, Owner: "n", Block: 4}}
	st.incOpen("a")
	c := st.Clone()
	c.incOpen("a")
	if st.OpenMoves["a"] != 1 || c.OpenMoves["a"] != 2 {
		t.Fatalf("clone shares the map: orig=%v clone=%v", st.OpenMoves, c.OpenMoves)
	}
	if c.Lock != st.Lock || c.Fixed != st.Fixed {
		t.Fatal("clone lost scalar state")
	}
}

// TestPolicyDeterminism replays a random request sequence twice against
// every policy and requires identical decisions and final state.
func TestPolicyDeterminism(t *testing.T) {
	t.Parallel()
	kinds := []PolicyKind{
		PolicySedentary, PolicyConventional, PolicyPlacement,
		PolicyCompareNodes, PolicyCompareReinstantiate,
	}
	nodes := []NodeID{"a", "b", "c", "d"}
	run := func(kind PolicyKind, seed int64) ([]string, ObjState) {
		p := PolicyFor(kind)
		r := rand.New(rand.NewSource(seed))
		var st ObjState
		cur := nodes[0]
		var log []string
		for i := 0; i < 300; i++ {
			from := nodes[r.Intn(len(nodes))]
			block := BlockID(r.Intn(10))
			if r.Intn(3) == 0 {
				e := p.OnEnd(&st, cur, EndRequest{From: from, Block: block})
				if e.Migrate {
					cur = e.MigrateTo
				}
				log = append(log, "end")
			} else {
				d := p.OnMove(&st, cur, MoveRequest{From: from, Block: block})
				if d.Action == ActionMigrate {
					cur = from
				}
				log = append(log, d.Action.goString())
			}
		}
		return log, st
	}
	for _, kind := range kinds {
		l1, s1 := run(kind, 42)
		l2, s2 := run(kind, 42)
		if !reflect.DeepEqual(l1, l2) || !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%v: nondeterministic decisions", kind)
		}
	}
}

func (a MoveAction) goString() string {
	switch a {
	case ActionDeny:
		return "deny"
	case ActionStay:
		return "stay"
	case ActionMigrate:
		return "migrate"
	}
	return "?"
}

// TestOpenMovesNeverNegative drives the compare policies with random
// move/end sequences and checks the counter invariants with
// testing/quick.
func TestOpenMovesNeverNegative(t *testing.T) {
	t.Parallel()
	f := func(seed int64, reinst bool) bool {
		kind := PolicyCompareNodes
		if reinst {
			kind = PolicyCompareReinstantiate
		}
		p := PolicyFor(kind)
		r := rand.New(rand.NewSource(seed))
		nodes := []NodeID{"a", "b", "c"}
		var st ObjState
		cur := nodes[0]
		for i := 0; i < 200; i++ {
			from := nodes[r.Intn(len(nodes))]
			block := BlockID(r.Intn(5))
			if r.Intn(2) == 0 {
				d := p.OnMove(&st, cur, MoveRequest{From: from, Block: block})
				if d.Action == ActionMigrate {
					cur = from
				}
			} else {
				e := p.OnEnd(&st, cur, EndRequest{From: from, Block: block})
				if e.Migrate {
					cur = e.MigrateTo
				}
			}
			for n, c := range st.OpenMoves {
				if c <= 0 {
					t.Logf("node %v has count %d", n, c)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementSingleOwnerInvariant checks with testing/quick that the
// placement lock always has exactly zero or one owner and that a grant
// is only given when the lock is free.
func TestPlacementSingleOwnerInvariant(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		p := PolicyFor(PolicyPlacement)
		r := rand.New(rand.NewSource(seed))
		nodes := []NodeID{"a", "b", "c"}
		var st ObjState
		cur := nodes[0]
		granted := map[BlockID]bool{}
		for i := 0; i < 200; i++ {
			from := nodes[r.Intn(len(nodes))]
			block := BlockID(i) // unique per block, like real move-blocks
			if r.Intn(3) != 0 {
				before := st.Lock
				d := p.OnMove(&st, cur, MoveRequest{From: from, Block: block})
				switch d.Action {
				case ActionMigrate, ActionStay:
					if before.Held && before.Block != block {
						return false // granted over a held lock
					}
					granted[block] = true
					if d.Action == ActionMigrate {
						cur = from
					}
				case ActionDeny:
					if st.Lock != before {
						return false // deny must not change the lock
					}
				}
			} else if len(granted) > 0 {
				// End a random granted block from its owner.
				for b := range granted {
					if st.Lock.Held && st.Lock.Block == b {
						p.OnEnd(&st, cur, EndRequest{From: st.Lock.Owner, Block: b})
					}
					delete(granted, b)
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
