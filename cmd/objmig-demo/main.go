// Command objmig-demo reproduces the paper's core phenomenon on the
// live runtime (not the simulator): two autonomous applications share a
// service object and both control migration with move-blocks. Under
// conventional migration they steal the object from each other
// mid-block (Section 2.4); under transient placement the first block
// wins and the loser's calls are simply forwarded (Section 3.2).
//
// The demo runs the same contention workload under both policies on an
// in-process cluster with injected network latency and prints the
// resulting wall-clock times and migration counts.
//
// A third scenario demonstrates the autopilot: a skewed workload whose
// applications never issue a single migration primitive, run once with
// the autopilot off and once with it on. The autopilot observes the
// access affinity and moves the hot objects to their dominant caller,
// collapsing that caller's remote-call volume.
//
// A fourth scenario demonstrates the placement engine: the same skewed
// workload, but the dominant caller is a small node already at its
// object capacity. The affinity-only autopilot piles the hot objects
// onto it anyway; with placement enabled the overload veto keeps every
// one of them off the full node and the engine settles them on the
// runner-up caller instead.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"objmig"
)

// serviceState is the shared service object both applications use.
type serviceState struct {
	Requests int
}

func newServiceType() *objmig.Type[serviceState] {
	t := objmig.NewType[serviceState]("service")
	objmig.HandleFunc(t, "Work", func(c *objmig.Ctx, s *serviceState, _ struct{}) (int, error) {
		s.Requests++
		return s.Requests, nil
	})
	return t
}

// appResult is one application's outcome.
type appResult struct {
	name    string
	elapsed time.Duration
	granted int
	denied  int
	err     error
}

// runApp runs blocks move-blocks of calls calls each against the
// shared service, with a little think time between calls (the paper's
// t_i) so concurrent blocks genuinely overlap.
func runApp(ctx context.Context, name string, n *objmig.Node, svc objmig.Ref, blocks, calls int, think time.Duration) appResult {
	res := appResult{name: name}
	start := time.Now()
	for i := 0; i < blocks; i++ {
		err := n.Move(ctx, svc, func(ctx context.Context, b *objmig.Block) error {
			if b.Granted {
				res.granted++
			} else {
				res.denied++
			}
			for j := 0; j < calls; j++ {
				time.Sleep(think)
				if _, err := objmig.Call[struct{}, int](ctx, n, svc, "Work", struct{}{}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			res.err = err
			break
		}
	}
	res.elapsed = time.Since(start)
	return res
}

// scenario runs the full contention workload under one policy.
func scenario(policy objmig.PolicyKind, latency time.Duration, blocks, calls int, think time.Duration) error {
	cluster := objmig.NewLocalCluster()
	cluster.SetLatency(latency)
	var nodes []*objmig.Node
	for _, id := range []objmig.NodeID{"server", "app-1", "app-2", "app-3"} {
		n, err := objmig.NewNode(objmig.Config{ID: id, Cluster: cluster, Policy: policy})
		if err != nil {
			return err
		}
		defer func() { _ = n.Close() }()
		if err := n.RegisterType(newServiceType()); err != nil {
			return err
		}
		nodes = append(nodes, n)
	}
	svc, err := nodes[0].Create("service")
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	apps := nodes[1:]
	var wg sync.WaitGroup
	results := make([]appResult, len(apps))
	for i, app := range apps {
		wg.Add(1)
		go func(i int, app *objmig.Node) {
			defer wg.Done()
			results[i] = runApp(ctx, string(app.ID()), app, svc, blocks, calls, think)
		}(i, app)
	}
	wg.Wait()

	fmt.Printf("--- policy: %v ---\n", policy)
	var migrations int64
	for _, n := range nodes {
		migrations += n.Stats().MigrationsOut
	}
	var total time.Duration
	for _, r := range results {
		if r.err != nil {
			return fmt.Errorf("%s: %w", r.name, r.err)
		}
		total += r.elapsed
		fmt.Printf("%-6s: %3d blocks (%d granted, %d denied) in %v\n",
			r.name, blocks, r.granted, r.denied, r.elapsed.Round(time.Millisecond))
	}
	fmt.Printf("mean per-block time across apps: %v\n",
		(total / time.Duration(len(apps)*blocks)).Round(time.Microsecond))
	served, err := objmig.Call[struct{}, int](ctx, nodes[0], svc, "Work", struct{}{})
	if err != nil {
		return err
	}
	fmt.Printf("migrations: %d, total requests served: %d\n\n", migrations, served-1)
	return nil
}

// autopilotScenario runs a 90/10 skewed caller workload over a handful
// of service objects — no move-blocks, no explicit migrations — and
// reports where the objects ended up and how many remote calls the
// dominant caller had to make.
func autopilotScenario(latency time.Duration, withAutopilot bool) error {
	cluster := objmig.NewLocalCluster()
	cluster.SetLatency(latency)
	var nodes []*objmig.Node
	for _, id := range []objmig.NodeID{"server", "hot-app", "cold-app"} {
		n, err := objmig.NewNode(objmig.Config{ID: id, Cluster: cluster})
		if err != nil {
			return err
		}
		defer func() { _ = n.Close() }()
		if err := n.RegisterType(newServiceType()); err != nil {
			return err
		}
		if withAutopilot {
			err := n.EnableAutopilot(objmig.AutopilotConfig{
				Interval:   20 * time.Millisecond,
				MinTotal:   12,
				Hysteresis: 1.5,
			})
			if err != nil {
				return err
			}
		}
		nodes = append(nodes, n)
	}
	server, hotApp, coldApp := nodes[0], nodes[1], nodes[2]

	const objects = 4
	refs := make([]objmig.Ref, objects)
	for i := range refs {
		ref, err := server.Create("service")
		if err != nil {
			return err
		}
		refs[i] = ref
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	start := time.Now()
	for round := 0; round < 40; round++ {
		for _, ref := range refs {
			for i := 0; i < 9; i++ {
				if _, err := objmig.Call[struct{}, int](ctx, hotApp, ref, "Work", struct{}{}); err != nil {
					return err
				}
			}
			if _, err := objmig.Call[struct{}, int](ctx, coldApp, ref, "Work", struct{}{}); err != nil {
				return err
			}
		}
	}
	elapsed := time.Since(start)

	atHot := 0
	for _, ref := range refs {
		if at, err := server.Locate(ctx, ref); err == nil && at == hotApp.ID() {
			atHot++
		}
	}
	st := hotApp.Stats()
	var apMigrations int64
	for _, n := range nodes {
		apMigrations += n.Stats().AutopilotMigrations
	}
	fmt.Printf("--- autopilot %-3v: %d/%d objects on hot-app, %d remote calls from hot-app, %d autopilot migrations, %v ---\n",
		withAutopilot, atHot, objects, st.RemoteCallsSent, apMigrations, elapsed.Round(time.Millisecond))
	return nil
}

// placementScenario runs the 90/10 skewed workload against a capped
// hot node: hot-app advertises Capacity 2 and already hosts two
// ballast objects, so it is full before the first migration. Without
// placement the autopilot converges the service objects onto it
// regardless; with placement the overload veto holds (zero objects
// land on hot-app) and the engine settles the objects on the
// runner-up caller.
func placementScenario(latency time.Duration, withPlacement bool) error {
	cluster := objmig.NewLocalCluster()
	cluster.SetLatency(latency)
	var nodes []*objmig.Node
	for _, id := range []objmig.NodeID{"server", "hot-app", "cold-app"} {
		cfg := objmig.Config{ID: id, Cluster: cluster}
		if id == "hot-app" {
			cfg.Capacity = 2 // a small node: full once its ballast is in
		}
		n, err := objmig.NewNode(cfg)
		if err != nil {
			return err
		}
		defer func() { _ = n.Close() }()
		if err := n.RegisterType(newServiceType()); err != nil {
			return err
		}
		err = n.EnableAutopilot(objmig.AutopilotConfig{
			Interval:   20 * time.Millisecond,
			MinTotal:   12,
			Hysteresis: 1.5,
		})
		if err != nil {
			return err
		}
		if withPlacement {
			err := n.EnablePlacement(objmig.PlacementConfig{
				Heartbeat:  50 * time.Millisecond,
				Hysteresis: 1.5,
			})
			if err != nil {
				return err
			}
		}
		nodes = append(nodes, n)
	}
	server, hotApp, coldApp := nodes[0], nodes[1], nodes[2]

	// Ballast: the small node starts exactly at capacity.
	for i := 0; i < 2; i++ {
		if _, err := hotApp.Create("service"); err != nil {
			return err
		}
	}
	const objects = 4
	refs := make([]objmig.Ref, objects)
	for i := range refs {
		ref, err := server.Create("service")
		if err != nil {
			return err
		}
		refs[i] = ref
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for round := 0; round < 40; round++ {
		for _, ref := range refs {
			for i := 0; i < 9; i++ {
				if _, err := objmig.Call[struct{}, int](ctx, hotApp, ref, "Work", struct{}{}); err != nil {
					return err
				}
			}
			if _, err := objmig.Call[struct{}, int](ctx, coldApp, ref, "Work", struct{}{}); err != nil {
				return err
			}
		}
	}
	time.Sleep(300 * time.Millisecond) // let stragglers settle

	where := map[objmig.NodeID]int{}
	for _, ref := range refs {
		if at, err := server.Locate(ctx, ref); err == nil {
			where[at]++
		}
	}
	var vetoes int64
	for _, n := range nodes {
		vetoes += n.Stats().PlacementVetoes
	}
	fmt.Printf("--- placement %-3v: %d/%d objects on the full hot-app (capacity 2), %d on cold-app, %d on server; %d target-side vetoes ---\n",
		withPlacement, where[hotApp.ID()], objects, where[coldApp.ID()], where[server.ID()], vetoes)
	if withPlacement {
		for _, l := range server.LoadView() {
			fmt.Printf("    server's view: %-8s objects=%-3d capacity=%d\n", l.Node, l.Objects, l.Capacity)
		}
	}
	return nil
}

func main() {
	const (
		latency = 2 * time.Millisecond
		blocks  = 15
		calls   = 12
		think   = time.Millisecond
	)
	fmt.Println("objmig-demo: two autonomous apps fight over one shared service object")
	fmt.Printf("network latency %v, %d move-blocks x %d calls per app, %v think time\n\n",
		latency, blocks, calls, think)
	for _, policy := range []objmig.PolicyKind{objmig.PolicyConventional, objmig.PolicyPlacement} {
		if err := scenario(policy, latency, blocks, calls, think); err != nil {
			fmt.Fprintln(os.Stderr, "objmig-demo:", err)
			os.Exit(1)
		}
	}
	fmt.Println("Conventional migration ships the object back and forth (high migration")
	fmt.Println("count); transient placement grants it to one block at a time and forwards")
	fmt.Println("the loser's calls, which is the paper's remedy for non-monolithic systems.")
	fmt.Println()
	fmt.Println("objmig-demo: autopilot — a 90/10 skewed workload with no migration primitives")
	for _, on := range []bool{false, true} {
		if err := autopilotScenario(latency, on); err != nil {
			fmt.Fprintln(os.Stderr, "objmig-demo:", err)
			os.Exit(1)
		}
	}
	fmt.Println("With the autopilot on, nodes observe per-caller access affinity and migrate")
	fmt.Println("hot objects to their dominant caller on their own — the live-runtime twin of")
	fmt.Println("the paper's dynamic compare-the-nodes policies.")
	fmt.Println()
	fmt.Println("objmig-demo: placement — the dominant caller is a small node already at capacity")
	for _, on := range []bool{false, true} {
		if err := placementScenario(latency, on); err != nil {
			fmt.Fprintln(os.Stderr, "objmig-demo:", err)
			os.Exit(1)
		}
	}
	fmt.Println("Affinity alone piles the hot objects onto the full node; the placement engine's")
	fmt.Println("overload veto (gossiped load coordinator-side, authoritative counts target-side)")
	fmt.Println("keeps them off it and settles them on the runner-up caller instead.")
}
