// Package transport abstracts the byte-level links between nodes: a
// frame-oriented connection interface with an in-memory implementation
// (for tests, examples and single-process clusters, with optional
// injected latency) and a TCP implementation for real deployments.
package transport

import "errors"

// ErrClosed is returned by operations on closed connections and
// listeners.
var ErrClosed = errors.New("transport: closed")

// Conn is a reliable, ordered, frame-oriented duplex connection. Send
// and Recv are safe for any number of concurrent senders and one
// concurrent receiver; Close may be called from any goroutine and
// unblocks both.
//
// Buffer ownership follows the pooled-frame pipeline (see
// internal/framebuf and docs/wire-format.md): Send does not retain its
// argument — the caller may reuse or recycle the frame the moment Send
// returns — and Recv's result is owned by the caller, which should
// recycle it (framebuf.Put) once fully consumed. Implementations draw
// their receive-side buffers from the frame pool so steady-state
// traffic allocates no per-frame garbage.
type Conn interface {
	// Send transmits one frame. The frame remains the caller's: the
	// implementation copies or writes it out before returning.
	Send(frame []byte) error
	// Recv blocks for the next frame. The returned slice is owned by
	// the caller.
	Recv() ([]byte, error)
	// Close tears the connection down. It is idempotent.
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Addr returns the address peers dial to reach this listener.
	Addr() string
	// Close stops accepting. It is idempotent.
	Close() error
}

// Transport creates listeners and outbound connections.
type Transport interface {
	// Listen binds to addr. An empty addr lets the transport choose.
	Listen(addr string) (Listener, error)
	// Dial connects to a listener's address.
	Dial(addr string) (Conn, error)
}
