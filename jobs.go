package objmig

// Migration jobs: the control plane over the migration machinery.
//
// Everything below internal/jobs moves one closure at a time; an
// operator runs *operations* — "drain this node for maintenance",
// "rebalance after adding capacity", "pin these closures here". A Job
// is one such operation: a move list computed by a pure planner
// (internal/jobs), previewable as a true dry run, executed in bounded
// concurrent waves through the standard migrateGroup machinery, and
// recoverable — cancel stops at the next wave boundary, and a
// checkpoint taken at any moment resumes from the last completed wave
// even on a different coordinator after a crash.
//
// The division of labour:
//
//   - internal/jobs owns planning: deterministic, veto-respecting
//     move lists over closure inventories and load samples. No RPCs,
//     no locks, no clocks.
//   - This file owns execution: live inventories (the store, the
//     KInventory RPC), the placement daemon's view, closure re-walks
//     before every move, per-move retry with backoff, and the
//     stale-view recovery rule — a vetoed move is never re-admitted
//     on the view that planned it; it is re-elected against the live
//     view with the refuser excluded.
//   - Crash safety is inherited, not reimplemented: an interrupted
//     move resolves through the existing pause leases, session TTLs
//     and the reservation ledger, so a resumed job only needs the
//     wave index — the cluster has already cleaned up the rest.
//
// A drain job additionally marks its node as draining for the length
// of the execution: inbound migrations are refused at admission
// (admitAndReserve), so the optimiser daemons cannot refill the node
// while the job empties it.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"objmig/internal/core"
	"objmig/internal/jobs"
	"objmig/internal/placement"
	"objmig/internal/store"
	"objmig/internal/wire"
)

// Job kinds, also the Checkpoint.Kind values.
const (
	jobKindDrain     = "drain"
	jobKindRebalance = "rebalance"
	jobKindPin       = "pin"
)

// JobConfig tunes a job's execution. The zero value selects the
// documented defaults.
type JobConfig struct {
	// WaveSize is the number of moves executed concurrently per wave.
	// Cancel and resume operate on wave boundaries, so the wave is
	// also the job's unit of recovery. Default 4.
	WaveSize int
	// WaveRetries is the attempt budget per move within its wave:
	// a failed move is retried (vetoed moves after re-election
	// against the live view) up to this many times before it counts
	// as failed. Default 3.
	WaveRetries int
	// RetryBackoff is the base delay between a move's attempts,
	// doubling per retry. Default 50ms.
	RetryBackoff time.Duration
}

// withDefaults fills the zero fields.
func (c JobConfig) withDefaults() JobConfig {
	if c.WaveSize <= 0 {
		c.WaveSize = 4
	}
	if c.WaveRetries <= 0 {
		c.WaveRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	return c
}

// errJobCancelled signals a wave-boundary cancellation internally.
var errJobCancelled = errors.New("objmig: job cancelled")

// jobRetention bounds the job registry: registering a new job evicts
// the oldest terminal jobs beyond this many, so a long-lived node
// running periodic operations (cron drains, the /debug/jobs POST
// surface) does not accumulate finished jobs — and their full move
// lists — without bound. Planned and running jobs are never evicted.
const jobRetention = 64

// Job is one migration operation: planned once, executed at most once,
// ending in exactly one of done, cancelled or failed. Safe for
// concurrent use — Status, Preview, Checkpoint and Cancel may be
// called from any goroutine while Execute runs.
type Job struct {
	node  *Node
	id    uint64
	kind  string
	cfg   JobConfig
	trace uint64 // every move of the job shares this TraceID

	cancelc    chan struct{}
	cancelOnce sync.Once

	mu           sync.Mutex
	state        jobs.State
	started      bool // Execute ran (distinguishes pre-start cancellation)
	plan         jobs.Plan
	nextWave     int // first wave not yet completed
	movesDone    int
	movesSkipped int
	movesFailed  int
	retargets    int
	objectsMoved int64
	bytesMoved   int64
	moveErrs     []error // first few permanent move failures
	err          error   // terminal error (Failed only)
}

// JobStatus is one job's observable progress snapshot.
type JobStatus struct {
	ID       uint64
	Kind     string // drain, rebalance or pin
	State    string // planned, running, done, cancelled or failed
	Waves    int    // total waves in the current plan
	NextWave int    // first wave not yet completed
	Moves    int    // total planned moves
	// MovesDone counts moves that migrated a group; MovesSkipped
	// moves found already satisfied (the closure had already reached
	// its goal — the resume path's common case); MovesFailed moves
	// that exhausted their retries.
	MovesDone    int
	MovesSkipped int
	MovesFailed  int
	// Retargets counts vetoed moves re-pointed at a fresh receiver.
	Retargets    int
	ObjectsMoved int64
	BytesMoved   int64
	Unplaced     int    // anchors the planner could not place
	Trace        uint64 // the job's shared migration TraceID
	Err          string // terminal error, if any
}

// JobPreview is a job's dry run: the projected moves in execution
// order and each sampled node's utilisation before and after the full
// plan. Computing a preview touches nothing — no pauses are taken and
// the reservation ledger is not consulted, let alone charged.
type JobPreview struct {
	Moves    []jobs.Move
	Deltas   []jobs.Delta
	Unplaced []Ref
}

// inventoryLocal summarises this node's hosted objects as planning
// units — each object stands in for the closure the executor walks at
// move time, ranked drainable by the same bytes-per-pressure score the
// shed pass uses.
func (n *Node) inventoryLocal() []jobs.Closure {
	var out []jobs.Closure
	n.store.Range(func(rec *store.Record) bool {
		if rec.IsGone() {
			return true
		}
		out = append(out, jobs.Closure{
			Anchor: rec.ID, Host: n.id, Objects: 1,
			Bytes: rec.StateBytes, Pressure: n.aff.Total(rec.ID),
		})
		return true
	})
	return out
}

// handleInventory serves a planner's inventory fetch: the hosted units
// plus this node's fresh, authoritative load sample.
func (n *Node) handleInventory(req *wire.InventoryReq) (*wire.InventoryResp, error) {
	resp := &wire.InventoryResp{}
	n.store.Range(func(rec *store.Record) bool {
		if rec.IsGone() {
			return true
		}
		resp.Units = append(resp.Units, wire.InventoryUnit{
			Anchor: rec.ID, Bytes: rec.StateBytes, Pressure: n.aff.Total(rec.ID),
		})
		return req.MaxUnits <= 0 || int64(len(resp.Units)) < req.MaxUnits
	})
	s := n.selfSample()
	resp.Load = wire.NodeLoad{
		Node: n.id, Objects: s.Objects, Bytes: s.Bytes,
		Capacity: s.Capacity, CapBytes: s.CapBytes, Seq: n.loadSeq.Add(1),
		Health: uint8(n.healthState.Load()),
	}
	return resp, nil
}

// jobPlacement returns the placement daemon every job needs: planners
// elect receivers from its load view, with its overload ratio as the
// receiver guard.
func (n *Node) jobPlacement(kind string) (*placementDaemon, error) {
	d := n.placementDaemonRef()
	if d == nil {
		return nil, fmt.Errorf("objmig: a %s job needs the placement subsystem running (EnablePlacement)", kind)
	}
	return d, nil
}

// NewDrainJob plans the evacuation of this node: every hosted closure
// is assigned to the fresh-sampled peer with the most headroom, and
// execution marks the node as draining so nothing migrates back in
// while the job runs. The returned job is planned, not started — call
// Preview for the dry run, Execute to run it.
func (n *Node) NewDrainJob(cfg JobConfig) (*Job, error) {
	d, err := n.jobPlacement(jobKindDrain)
	if err != nil {
		return nil, err
	}
	plan := jobs.PlanDrain(n.id, n.inventoryLocal(), d.view.Snapshot(), d.cfg.OverloadRatio)
	return n.registerJob(jobKindDrain, plan, cfg, 0), nil
}

// NewRebalanceJob plans the relief of every overloaded node in this
// node's view: inventories are fetched from each sampled peer (the
// fetch doubles as a view refresh), and donors above the overload
// ratio shed their coldest closures to the least-utilised receivers
// until every node fits. The coordinator itself needs to host nothing
// — any placement-enabled node can run a rebalance.
func (n *Node) NewRebalanceJob(ctx context.Context, cfg JobConfig) (*Job, error) {
	d, err := n.jobPlacement(jobKindRebalance)
	if err != nil {
		return nil, err
	}
	self := n.selfSample()
	samples := []placement.Sample{self}
	closures := n.inventoryLocal()
	for _, peer := range d.view.Nodes() {
		if peer == n.id {
			continue
		}
		var resp wire.InventoryResp
		if err := n.call(ctx, peer, wire.KInventory, &wire.InventoryReq{}, &resp); err != nil {
			// Unreachable peer: keep its (stale) view sample so it can
			// still receive, but it cannot donate what we cannot list.
			if s, _, ok := d.view.Get(peer); ok {
				samples = append(samples, s)
			}
			continue
		}
		n.observeLoad(&resp.Load)
		samples = append(samples, placementSample(&resp.Load))
		for _, u := range resp.Units {
			closures = append(closures, jobs.Closure{
				Anchor: u.Anchor, Host: peer, Objects: 1,
				Bytes: u.Bytes, Pressure: u.Pressure,
			})
		}
	}
	plan := jobs.PlanRebalance(closures, samples, d.cfg.OverloadRatio)
	return n.registerJob(jobKindRebalance, plan, cfg, 0), nil
}

// NewPinJob plans moving the given closures onto target, locating each
// anchor first. The target's projected utilisation is respected like
// any other receiver's: anchors past its capacity are left unplaced.
func (n *Node) NewPinJob(ctx context.Context, cfg JobConfig, target NodeID, anchors []Ref) (*Job, error) {
	d, err := n.jobPlacement(jobKindPin)
	if err != nil {
		return nil, err
	}
	closures := make([]jobs.Closure, 0, len(anchors))
	hosts := make(map[NodeID][]int) // host -> indices into closures
	for _, ref := range anchors {
		host, err := n.Locate(ctx, ref)
		if err != nil {
			return nil, fmt.Errorf("objmig: pin plan: locate %s: %w", ref, err)
		}
		hosts[host] = append(hosts[host], len(closures))
		closures = append(closures, jobs.Closure{Anchor: ref.OID, Host: host, Objects: 1})
	}
	// The planner's byte-utilisation guard is only as good as the
	// closures' footprints: stamp each anchor's resident bytes, read
	// from the store for local anchors and one KInventory fetch per
	// remote host otherwise. An unreachable host degrades that anchor
	// to Bytes 0 — the plan still forms, and execution-time admission
	// has the final say.
	for host, idxs := range hosts {
		bytes := make(map[core.OID]int64)
		if host == n.id {
			for _, c := range n.inventoryLocal() {
				bytes[c.Anchor] = c.Bytes
			}
		} else {
			var resp wire.InventoryResp
			if err := n.call(ctx, host, wire.KInventory, &wire.InventoryReq{}, &resp); err != nil {
				continue
			}
			n.observeLoad(&resp.Load)
			for _, u := range resp.Units {
				bytes[u.Anchor] = u.Bytes
			}
		}
		for _, i := range idxs {
			closures[i].Bytes = bytes[closures[i].Anchor]
		}
	}
	plan := jobs.PlanPin(target, closures, d.view.Snapshot(), d.cfg.OverloadRatio)
	return n.registerJob(jobKindPin, plan, cfg, 0), nil
}

// ResumeJob re-creates a job from a checkpoint — typically on a fresh
// coordinator after the original crashed mid-job. Execution continues
// from the first wave the checkpoint had not completed; moves of the
// interrupted wave whose closures already reached their target are
// detected and skipped, so replaying the wave is idempotent. The
// checkpoint's wave size is kept (wave boundaries must mean what they
// meant when NextWave was recorded); retries and backoff come from cfg.
func (n *Node) ResumeJob(cp jobs.Checkpoint, cfg JobConfig) (*Job, error) {
	switch cp.Kind {
	case jobKindDrain, jobKindRebalance, jobKindPin:
	default:
		return nil, fmt.Errorf("objmig: resume: unknown job kind %q", cp.Kind)
	}
	if _, err := n.jobPlacement(cp.Kind); err != nil {
		return nil, err
	}
	cfg.WaveSize = cp.WaveSize
	plan := jobs.Plan{Moves: append([]jobs.Move(nil), cp.Moves...)}
	j := n.registerJob(cp.Kind, plan, cfg, cp.NextWave)
	n.emit(Event{Kind: EventJob, Outcome: "resume", Wave: cp.NextWave})
	return j, nil
}

// registerJob mints, registers and announces a planned job.
func (n *Node) registerJob(kind string, plan jobs.Plan, cfg JobConfig, nextWave int) *Job {
	j := &Job{
		node: n, id: n.jobSeq.Add(1), kind: kind,
		cfg: cfg.withDefaults(), trace: n.nextTrace(),
		cancelc: make(chan struct{}),
		state:   jobs.Planned, plan: plan, nextWave: nextWave,
	}
	n.jobMu.Lock()
	n.jobTable[j.id] = j
	n.pruneJobsLocked()
	n.jobMu.Unlock()
	n.emit(Event{Kind: EventJob, Outcome: "plan", Objects: oidRefs(anchorsOf(plan.Moves))})
	return j
}

// pruneJobsLocked evicts the oldest terminal jobs past jobRetention.
// Caller holds n.jobMu.
func (n *Node) pruneJobsLocked() {
	if len(n.jobTable) <= jobRetention {
		return
	}
	var term []*Job
	for _, j := range n.jobTable {
		if j.terminal() {
			term = append(term, j)
		}
	}
	sort.Slice(term, func(i, k int) bool { return term[i].id < term[k].id })
	for _, j := range term {
		if len(n.jobTable) <= jobRetention {
			return
		}
		delete(n.jobTable, j.id)
	}
}

// terminal reports whether the job ended (Done, Cancelled or Failed).
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// Jobs lists every job this node has planned, oldest first. Terminal
// jobs past a retention window are evicted as new jobs register, so
// the listing is complete only for recent operations.
func (n *Node) Jobs() []JobStatus {
	n.jobMu.Lock()
	js := make([]*Job, 0, len(n.jobTable))
	for _, j := range n.jobTable {
		js = append(js, j)
	}
	n.jobMu.Unlock()
	sort.Slice(js, func(i, k int) bool { return js[i].id < js[k].id })
	out := make([]JobStatus, len(js))
	for i, j := range js {
		out[i] = j.Status()
	}
	return out
}

// JobByID returns a registered job.
func (n *Node) JobByID(id uint64) (*Job, bool) {
	n.jobMu.Lock()
	defer n.jobMu.Unlock()
	j, ok := n.jobTable[id]
	return j, ok
}

// ID returns the job's node-local identifier.
func (j *Job) ID() uint64 { return j.id }

// Kind returns "drain", "rebalance" or "pin".
func (j *Job) Kind() string { return j.kind }

// Status snapshots the job's progress.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Kind: j.kind, State: j.state.String(),
		Waves:     len(jobs.Waves(j.plan.Moves, j.cfg.WaveSize)),
		NextWave:  j.nextWave,
		Moves:     len(j.plan.Moves),
		MovesDone: j.movesDone, MovesSkipped: j.movesSkipped,
		MovesFailed: j.movesFailed, Retargets: j.retargets,
		ObjectsMoved: j.objectsMoved, BytesMoved: j.bytesMoved,
		Unplaced: len(j.plan.Unplaced), Trace: j.trace,
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// Preview is the job's dry run: the planned moves plus the projected
// per-node utilisation deltas against the current view. Nothing is
// paused, claimed or reserved — preview is pure arithmetic, and when
// the view has not changed it is exactly the plan Execute's first
// waves will run.
func (j *Job) Preview() JobPreview {
	j.mu.Lock()
	moves := append([]jobs.Move(nil), j.plan.Moves...)
	unplaced := append([]core.OID(nil), j.plan.Unplaced...)
	j.mu.Unlock()
	var view []placement.Sample
	if d := j.node.placementDaemonRef(); d != nil {
		view = d.view.Snapshot()
		view = append(view, j.node.selfSample())
	}
	return JobPreview{Moves: moves, Deltas: jobs.ProjectDeltas(moves, view), Unplaced: oidRefs(unplaced)}
}

// Checkpoint snapshots the job's resume point: the full plan and the
// first wave not yet completed. Serializable (encoding/json or gob) —
// persist it wherever the deployment keeps operational state and hand
// it to ResumeJob after a coordinator restart.
func (j *Job) Checkpoint() jobs.Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobs.Checkpoint{
		Kind: j.kind, WaveSize: j.cfg.WaveSize, NextWave: j.nextWave,
		Moves: append([]jobs.Move(nil), j.plan.Moves...),
	}
}

// Cancel requests the job stop at the next wave boundary: the wave in
// flight completes (its pauses resolve normally — cancellation never
// strands a paused object), nothing after it starts, and the job ends
// Cancelled. Cancelling a job that never ran cancels it immediately;
// cancelling a finished job is a no-op.
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancelc) })
	j.mu.Lock()
	immediate := j.state == jobs.Planned
	if immediate {
		j.state = jobs.Cancelled
	}
	j.mu.Unlock()
	if immediate {
		j.node.stats.jobsCancelled.Add(1)
		j.node.emit(Event{Kind: EventJob, Outcome: "cancelled"})
	}
}

// cancelRequested reports whether Cancel has been called.
func (j *Job) cancelRequested() bool {
	select {
	case <-j.cancelc:
		return true
	default:
		return false
	}
}

// Execute runs the job to a terminal state: the planned moves in
// bounded concurrent waves, each move re-walked against the live
// cluster and retried with backoff on transient failure. Drain jobs
// mark the node as draining for the duration and re-plan up to three
// extra passes afterwards, so objects that arrived mid-drain (or were
// in flight when the plan was computed) still leave. Returns nil when
// the job ends Done or Cancelled — including a job cancelled before
// Execute was called, which returns nil without running anything —
// and the terminal error when it Failed. A job executes at most once:
// Execute on a job that already ran returns an error.
func (j *Job) Execute(ctx context.Context) error {
	n := j.node
	j.mu.Lock()
	if j.state != jobs.Planned {
		state, started := j.state, j.started
		j.mu.Unlock()
		if state == jobs.Cancelled && !started {
			// Cancelled before it ever ran: the job is in the terminal
			// state the caller asked for, which Execute's contract
			// treats as success, not failure.
			return nil
		}
		return fmt.Errorf("objmig: job %d is %s, not planned", j.id, state)
	}
	j.state = jobs.Running
	j.started = true
	moves := j.plan.Moves
	first := j.nextWave
	j.mu.Unlock()

	n.stats.jobsStarted.Add(1)
	if j.kind == jobKindDrain {
		n.draining.Store(true)
		defer n.draining.Store(false)
	}

	execErr := j.runWaves(ctx, moves, first, true)

	// Drain sweeps: anything still hosted (late arrivals, closures a
	// raced move left behind) gets re-planned against the live view.
	// These passes run outside the checkpointed plan — a resumed drain
	// re-plans its own sweeps.
	if execErr == nil && j.kind == jobKindDrain {
		for pass := 0; pass < 3 && execErr == nil; pass++ {
			if hosted, _ := n.store.HostedStats(); hosted == 0 {
				break
			}
			d := n.placementDaemonRef()
			if d == nil {
				break
			}
			p := jobs.PlanDrain(n.id, n.inventoryLocal(), d.view.Snapshot(), d.cfg.OverloadRatio)
			if len(p.Moves) == 0 {
				j.mu.Lock()
				j.plan.Unplaced = append(j.plan.Unplaced, p.Unplaced...)
				j.mu.Unlock()
				break
			}
			execErr = j.runWaves(ctx, p.Moves, 0, false)
		}
	}

	// Terminal bookkeeping.
	j.mu.Lock()
	var final jobs.State
	switch {
	case errors.Is(execErr, errJobCancelled):
		final = jobs.Cancelled
	case execErr != nil:
		final = jobs.Failed
		j.err = execErr
	case j.movesFailed > 0:
		final = jobs.Failed
		j.err = fmt.Errorf("objmig: job %d: %d moves failed (first: %w)", j.id, j.movesFailed, j.moveErrs[0])
	case len(j.plan.Unplaced) > 0 && j.kind != jobKindRebalance:
		// A drain or pin that cannot place everything did not do its
		// job; a rebalance that relieved what it could is still useful.
		final = jobs.Failed
		j.err = fmt.Errorf("objmig: job %d: %d anchors unplaced", j.id, len(j.plan.Unplaced))
	default:
		final = jobs.Done
	}
	j.state = final
	retErr := j.err
	j.mu.Unlock()

	switch final {
	case jobs.Done:
		n.stats.jobsCompleted.Add(1)
	case jobs.Cancelled:
		n.stats.jobsCancelled.Add(1)
	case jobs.Failed:
		n.stats.jobsFailed.Add(1)
	}
	n.emit(Event{Kind: EventJob, Outcome: final.String()})
	return retErr
}

// runWaves drives moves wave by wave. track selects whether completed
// waves advance the job's checkpointable nextWave (the planned moves)
// or not (drain sweeps, which a resume re-plans from scratch).
func (j *Job) runWaves(ctx context.Context, moves []jobs.Move, first int, track bool) error {
	n := j.node
	waves := jobs.Waves(moves, j.cfg.WaveSize)
	for w := first; w < len(waves); w++ {
		if j.cancelRequested() {
			return errJobCancelled
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if n.closed.Load() {
			return ErrClosed
		}
		n.emit(Event{Kind: EventJob, Outcome: "wave", Wave: w})

		var (
			wg        sync.WaitGroup
			tallyMu   sync.Mutex
			waveRefs  []Ref
			waveBytes int64
			done      int
			skipped   int
			failed    []error
		)
		for i := range waves[w] {
			m := &waves[w][i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				moved, skip, err := j.executeMove(ctx, m)
				tallyMu.Lock()
				defer tallyMu.Unlock()
				switch {
				case errors.Is(err, errJobCancelled):
					// Abandoned between attempts: neither done nor failed.
				case err != nil:
					failed = append(failed, fmt.Errorf("%s -> %s: %w", m.Anchor, m.To, err))
				case skip:
					skipped++
				default:
					done++
					for _, oid := range moved {
						waveRefs = append(waveRefs, Ref{OID: oid})
					}
					waveBytes += m.Bytes
				}
			}()
		}
		wg.Wait()

		j.mu.Lock()
		j.movesDone += done
		j.movesSkipped += skipped
		j.movesFailed += len(failed)
		j.objectsMoved += int64(len(waveRefs))
		j.bytesMoved += waveBytes
		for _, err := range failed {
			if len(j.moveErrs) < 8 {
				j.moveErrs = append(j.moveErrs, err)
			}
		}
		// A wave only counts as completed when every move settled AND
		// every wave before it did: a checkpoint taken after a
		// crash-torn wave must replay it (the goal checks make the
		// replay idempotent), not skip past the moves the crash
		// swallowed — even when later waves went through cleanly.
		if track && len(failed) == 0 && j.nextWave == w {
			j.nextWave = w + 1
		}
		j.mu.Unlock()

		n.stats.jobWaves.Add(1)
		n.stats.jobMoves.Add(int64(done))
		n.stats.jobObjectsMoved.Add(int64(len(waveRefs)))
		n.emit(Event{Kind: EventJob, Outcome: "wave-done", Wave: w,
			Objects: waveRefs, Bytes: waveBytes})
	}
	return nil
}

// executeMove drives one planned move to a verdict: migrated (moved
// lists the closure), skipped (the closure had already reached the
// move's goal), or failed after the retry budget. Every attempt
// re-walks the live closure — membership is never trusted across
// attempts — and a veto by the target re-elects the receiver against
// the live view with the refuser excluded before the next attempt:
// retrying a full target on the stale view that planned it would
// hammer the veto until the budget ran out. Pin moves are the
// exception: their target is the point, so a vetoed pin is never
// re-pointed — it retries the named target and fails if refused.
func (j *Job) executeMove(ctx context.Context, m *jobs.Move) (moved []core.OID, skipped bool, err error) {
	n := j.node
	exclude := make(map[NodeID]bool)
	var lastErr error
	for attempt := 0; attempt < j.cfg.WaveRetries; attempt++ {
		if attempt > 0 {
			if err := j.backoff(ctx, attempt); err != nil {
				return nil, false, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}

		members, err := n.closureOf(ctx, m.Anchor, NoAlliance)
		if err != nil {
			if isCode(err, wire.CodeNotFound) {
				return nil, true, nil // the anchor ended: nothing to move
			}
			lastErr = err
			continue
		}
		// Goal check — what makes wave replay after a resume
		// idempotent. A pin wants residency at the target; a drain or
		// rebalance wants absence from the source.
		if j.kind == jobKindPin {
			if nodesAllAt(members, m.To) {
				return nil, true, nil
			}
		} else if !nodesAnyAt(members, m.From) {
			return nil, true, nil
		}

		admit := func(s *wire.Snapshot) error {
			if s.Pol.Lock.Held {
				return wire.Errorf(wire.CodeDenied, "job: member %s is placed", s.ID)
			}
			if s.Pol.Fixed {
				return wire.Errorf(wire.CodeFixed, "job: member %s is fixed", s.ID)
			}
			return nil
		}
		ids, err := n.migrateGroup(ctx, members, m.To, m.Anchor, admit, nil, j.trace)
		if err == nil {
			return ids, false, nil
		}
		lastErr = err
		switch {
		case isCode(err, wire.CodeFixed):
			return nil, false, err // a fixed member vetoes the closure for good
		case memberRaced(err):
			// Stale membership: the next attempt re-walks.
		case isCode(err, wire.CodeDenied) && j.kind == jobKindPin:
			// A pin has exactly one legitimate destination — the node
			// the operator named. Electing a substitute would "succeed"
			// by parking the closure somewhere else, so a vetoed pin
			// move just retries and, if the target keeps refusing,
			// exhausts its budget and fails.
		case isCode(err, wire.CodeDenied):
			exclude[m.To] = true
			if to, ok := j.retarget(m, exclude); ok {
				// m points into j.plan.Moves, which Checkpoint and
				// Preview copy under j.mu — the retarget write must
				// hold it too.
				j.mu.Lock()
				j.retargets++
				m.To = to
				j.mu.Unlock()
				n.stats.jobRetargets.Add(1)
				n.emit(Event{Kind: EventJob, Outcome: "retarget",
					Obj: Ref{OID: m.Anchor}, Target: to})
			}
		}
	}
	return nil, false, lastErr
}

// retarget re-elects a vetoed move's receiver against the live view.
func (j *Job) retarget(m *jobs.Move, exclude map[NodeID]bool) (NodeID, bool) {
	d := j.node.placementDaemonRef()
	if d == nil {
		return "", false
	}
	return jobs.Retarget(*m, d.view.Snapshot(), exclude, d.cfg.OverloadRatio)
}

// backoff sleeps the move's doubling retry delay, aborted by the
// call's context or a job cancellation.
func (j *Job) backoff(ctx context.Context, attempt int) error {
	d := j.cfg.RetryBackoff << uint(attempt-1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-j.cancelc:
		return errJobCancelled
	}
}

// nodesAllAt reports whether every member is hosted at node.
func nodesAllAt(members map[core.OID]NodeID, node NodeID) bool {
	for _, host := range members {
		if host != node {
			return false
		}
	}
	return true
}

// nodesAnyAt reports whether any member is hosted at node.
func nodesAnyAt(members map[core.OID]NodeID, node NodeID) bool {
	for _, host := range members {
		if host == node {
			return true
		}
	}
	return false
}

// anchorsOf lists a plan's anchors, in move order.
func anchorsOf(moves []jobs.Move) []core.OID {
	out := make([]core.OID, len(moves))
	for i, m := range moves {
		out[i] = m.Anchor
	}
	return out
}

// oidRefs wraps OIDs as public references.
func oidRefs(oids []core.OID) []Ref {
	if len(oids) == 0 {
		return nil
	}
	out := make([]Ref, len(oids))
	for i, oid := range oids {
		out[i] = Ref{OID: oid}
	}
	return out
}
