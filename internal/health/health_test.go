package health

import (
	"encoding/json"
	"testing"

	"objmig/internal/telemetry"
)

// counterSample builds a cumulative sample with one counter signal set.
func counterSample(at int64, sig Signal, cum int64) Sample {
	var s Sample
	s.At = at
	s.Counters[int(sig)-NumHists] = cum
	return s
}

func TestEvaluatorCounterWindowDelta(t *testing.T) {
	cfg := Config{WindowTicks: 3}
	cfg.Thresholds[SigStreamAborts] = Threshold{Warn: 5, Crit: 50}
	e := NewEvaluator(cfg)

	// Cumulative 0, 10, 10, 10: the burst of 10 falls out of the
	// 2-interval window two ticks after it happened.
	v := e.Tick(counterSample(1, SigStreamAborts, 0))
	if v.Values[SigStreamAborts] != 0 {
		t.Fatalf("first tick window = %d, want 0", v.Values[SigStreamAborts])
	}
	v = e.Tick(counterSample(2, SigStreamAborts, 10))
	if v.Values[SigStreamAborts] != 10 {
		t.Fatalf("burst window = %d, want 10", v.Values[SigStreamAborts])
	}
	if v.State != Degraded || !v.Changed {
		t.Fatalf("state after burst = %v changed=%v, want degraded/changed", v.State, v.Changed)
	}
	v = e.Tick(counterSample(3, SigStreamAborts, 10))
	if v.Values[SigStreamAborts] != 10 { // oldest edge still pre-burst
		t.Fatalf("window one tick later = %d, want 10", v.Values[SigStreamAborts])
	}
	v = e.Tick(counterSample(4, SigStreamAborts, 10))
	if v.Values[SigStreamAborts] != 0 {
		t.Fatalf("window after burst aged out = %d, want 0", v.Values[SigStreamAborts])
	}
	if v.State != Healthy {
		t.Fatalf("state after recovery = %v, want healthy", v.State)
	}
}

func TestEvaluatorHistogramP99(t *testing.T) {
	cfg := Config{WindowTicks: 2}
	cfg.Thresholds[SigInvokeLocalP99] = Threshold{Warn: 1000, Crit: 100000}
	e := NewEvaluator(cfg)

	var h telemetry.Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	var s Sample
	s.Hists[SigInvokeLocalP99] = h.Snapshot()
	e.Tick(s)

	// 100 slow observations dominate the window's p99.
	for i := 0; i < 100; i++ {
		h.Observe(5000)
	}
	s.Hists[SigInvokeLocalP99] = h.Snapshot()
	v := e.Tick(s)
	if got := v.Values[SigInvokeLocalP99]; got < 1000 {
		t.Fatalf("windowed p99 = %d, want >= 1000", got)
	}
	if v.State != Degraded || v.Worst != SigInvokeLocalP99 {
		t.Fatalf("verdict = %+v, want degraded via invoke_local", v)
	}

	// Next window contains no new observations: p99 drops to 0 even
	// though the lifetime histogram still holds the slow tail.
	v = e.Tick(s)
	if got := v.Values[SigInvokeLocalP99]; got != 0 {
		t.Fatalf("idle-window p99 = %d, want 0", got)
	}
	if v.State != Healthy {
		t.Fatalf("state = %v, want healthy", v.State)
	}
}

func TestEvaluatorHysteresis(t *testing.T) {
	cfg := Config{WindowTicks: 8, RaiseAfter: 2, ClearAfter: 3}
	cfg.Thresholds[SigPauseExpiries] = Threshold{Warn: 1, Crit: 100}
	e := NewEvaluator(cfg)

	// One breaching tick must not raise the state (RaiseAfter=2).
	cum := int64(0)
	e.Tick(counterSample(1, SigPauseExpiries, cum))
	cum++
	v := e.Tick(counterSample(2, SigPauseExpiries, cum))
	if v.State != Healthy {
		t.Fatalf("state after 1 breaching tick = %v, want healthy", v.State)
	}
	// Second consecutive breaching tick raises it.
	cum++
	v = e.Tick(counterSample(3, SigPauseExpiries, cum))
	if v.State != Degraded || !v.Changed {
		t.Fatalf("state after 2 breaching ticks = %v changed=%v, want degraded", v.State, v.Changed)
	}

	// The breach stays inside the window for a while: clear streaks
	// must survive only over genuinely clear ticks. Push until the
	// deltas age out, then count clears.
	clears := 0
	for i := int64(4); i < 20; i++ {
		v = e.Tick(counterSample(i, SigPauseExpiries, cum))
		if v.Level == Healthy {
			clears++
		}
		if v.State == Healthy {
			break
		}
	}
	if v.State != Healthy {
		t.Fatalf("never recovered: %+v", v)
	}
	if clears != cfg.ClearAfter {
		t.Fatalf("recovered after %d clear ticks, want %d", clears, cfg.ClearAfter)
	}
}

func TestEvaluatorCriticalDirect(t *testing.T) {
	// A critical breach promotes straight to critical — no mandatory
	// stop at degraded.
	cfg := Config{WindowTicks: 4}
	cfg.Thresholds[SigEventsDropped] = Threshold{Warn: 1, Crit: 10}
	e := NewEvaluator(cfg)
	e.Tick(counterSample(1, SigEventsDropped, 0))
	v := e.Tick(counterSample(2, SigEventsDropped, 500))
	if v.State != Critical {
		t.Fatalf("state = %v, want critical", v.State)
	}
	if v.Worst != SigEventsDropped {
		t.Fatalf("worst = %v, want events_dropped", v.Worst)
	}
}

func TestEvaluatorZeroThresholdDisabled(t *testing.T) {
	e := NewEvaluator(Config{WindowTicks: 2}) // all thresholds zero
	e.Tick(counterSample(1, SigStreamAborts, 0))
	v := e.Tick(counterSample(2, SigStreamAborts, 1_000_000))
	if v.State != Healthy || v.Level != Healthy {
		t.Fatalf("disabled thresholds still tripped: %+v", v)
	}
}

func TestRecorderRingAndDump(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(Entry{At: int64(i), Kind: EntryEvent, Label: "invoke"})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	if snap[0].At != 2 || snap[3].At != 5 {
		t.Fatalf("snapshot order wrong: first=%d last=%d", snap[0].At, snap[3].At)
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d, want 6", r.Total())
	}

	var v Verdict
	v.State = Degraded
	v.Level = Degraded
	v.Worst = SigChaseP99
	v.Values[SigChaseP99] = 12345
	d := r.Dump("node-a", "transition", v)
	raw := d.JSON()

	var back struct {
		Node    string           `json:"node"`
		Reason  string           `json:"reason"`
		State   string           `json:"state"`
		Worst   string           `json:"worst"`
		Values  map[string]int64 `json:"values"`
		Entries []struct {
			Kind  string `json:"kind"`
			Label string `json:"label"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, raw)
	}
	if back.Node != "node-a" || back.State != "degraded" || back.Worst != "chase_p99_us" {
		t.Fatalf("dump header wrong: %+v", back)
	}
	if back.Values["chase_p99_us"] != 12345 {
		t.Fatalf("dump values wrong: %v", back.Values)
	}
	if len(back.Entries) != 4 || back.Entries[0].Kind != "event" {
		t.Fatalf("dump entries wrong: %+v", back.Entries)
	}
}

func TestSignalStringsComplete(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumSignals; i++ {
		s := Signal(i).String()
		if s == "unknown" {
			t.Fatalf("signal %d has no name", i)
		}
		if seen[s] {
			t.Fatalf("signal name %q duplicated", s)
		}
		seen[s] = true
	}
	if Signal(NumSignals).String() != "unknown" {
		t.Fatalf("out-of-range signal should be unknown")
	}
}

// BenchmarkHealthTick is the CI-enforced zero-alloc line for the
// per-tick evaluation: ring write, histogram deltas, quantiles,
// thresholds and hysteresis all run without allocating.
func BenchmarkHealthTick(b *testing.B) {
	cfg := Config{WindowTicks: 30, RaiseAfter: 2, ClearAfter: 3}
	for i := 0; i < NumSignals; i++ {
		cfg.Thresholds[i] = Threshold{Warn: 1 << 20, Crit: 1 << 24}
	}
	e := NewEvaluator(cfg)

	var h telemetry.Histogram
	for i := 0; i < 4096; i++ {
		h.Observe(int64(i) % 1777)
	}
	var s Sample
	for i := 0; i < NumHists; i++ {
		s.Hists[i] = h.Snapshot()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At = int64(i)
		s.Counters[0] = int64(i)
		e.Tick(s)
	}
}
