package des

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestSleepAdvancesClock(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	var wake []float64
	k.Spawn("a", func(p *Proc) {
		p.Sleep(1.5)
		wake = append(wake, p.Now())
		p.Sleep(2.5)
		wake = append(wake, p.Now())
	})
	end := k.Run(-1)
	k.Shutdown()
	want := []float64{1.5, 4.0}
	if !reflect.DeepEqual(wake, want) {
		t.Fatalf("wake times = %v, want %v", wake, want)
	}
	if end != 4.0 {
		t.Fatalf("end time = %v, want 4", end)
	}
}

func TestEventOrderingAndFIFOTies(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	var order []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("p%d", i)
		k.Spawn(name, func(p *Proc) {
			p.Sleep(1) // all wake at t=1; must run in spawn order
			order = append(order, p.Name())
		})
	}
	k.Run(-1)
	k.Shutdown()
	want := []string{"p0", "p1", "p2", "p3", "p4"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestCondBroadcastWakesAllFIFO(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	c := k.NewCond()
	var order []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		k.Spawn(name, func(p *Proc) {
			p.Wait(c)
			order = append(order, p.Name()+fmt.Sprintf("@%v", p.Now()))
		})
	}
	k.Spawn("broadcaster", func(p *Proc) {
		p.Sleep(3)
		c.Broadcast()
	})
	k.Run(-1)
	k.Shutdown()
	want := []string{"w0@3", "w1@3", "w2@3"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	c := k.NewCond()
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(c)
			woken++
		})
	}
	k.Spawn("signaller", func(p *Proc) {
		p.Sleep(1)
		c.Signal()
	})
	k.Run(-1)
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
	k.Shutdown()
	if k.Live() != 0 {
		t.Fatalf("Live = %d after Shutdown, want 0", k.Live())
	}
}

func TestWaitPredicateLoop(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	c := k.NewCond()
	ready := false
	var observed float64
	k.Spawn("consumer", func(p *Proc) {
		for !ready {
			p.Wait(c)
		}
		observed = p.Now()
	})
	k.Spawn("teaser", func(p *Proc) {
		p.Sleep(1)
		c.Broadcast() // predicate still false; consumer must re-wait
		p.Sleep(1)
		ready = true
		c.Broadcast()
	})
	k.Run(-1)
	k.Shutdown()
	if observed != 2 {
		t.Fatalf("consumer proceeded at t=%v, want 2", observed)
	}
}

func TestRunUntilIsResumable(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	var ticks []float64
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			ticks = append(ticks, p.Now())
		}
	})
	k.Run(25)
	if len(ticks) != 2 {
		t.Fatalf("after Run(25): %d ticks, want 2", len(ticks))
	}
	if now := k.Now(); now != 25 {
		t.Fatalf("Now = %v, want 25", now)
	}
	k.Run(-1)
	k.Shutdown()
	if len(ticks) != 5 {
		t.Fatalf("after full run: %d ticks, want 5", len(ticks))
	}
}

func TestSpawnFromWithinProcess(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	var childTime float64
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(2)
		p.Kernel().Spawn("child", func(c *Proc) {
			c.Sleep(3)
			childTime = c.Now()
		})
	})
	k.Run(-1)
	k.Shutdown()
	if childTime != 5 {
		t.Fatalf("child finished at %v, want 5", childTime)
	}
}

func TestShutdownTerminatesBlockedProcesses(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	c := k.NewCond()
	k.Spawn("sleeper", func(p *Proc) { p.Sleep(1e18) })
	k.Spawn("waiter", func(p *Proc) { p.Wait(c) })
	k.Run(10)
	k.Shutdown()
	if k.Live() != 0 {
		t.Fatalf("Live = %d after Shutdown, want 0", k.Live())
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	k.Spawn("bomb", func(p *Proc) {
		p.Sleep(1)
		panic("boom")
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Run did not propagate process panic")
		}
		k.Shutdown()
	}()
	k.Run(-1)
}

func TestNegativeSleepIsZero(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	var at float64
	k.Spawn("p", func(p *Proc) {
		p.Sleep(-5)
		at = p.Now()
	})
	k.Run(-1)
	k.Shutdown()
	if at != 0 {
		t.Fatalf("woke at %v, want 0", at)
	}
}

// TestDeterminism runs a randomized workload twice with the same seed
// and requires the full event trace to be identical.
func TestDeterminism(t *testing.T) {
	t.Parallel()
	trace := func(seed int64) []string {
		k := NewKernel()
		c := k.NewCond()
		var log []string
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("p%d", i)
			r := rand.New(rand.NewSource(seed + int64(i)))
			k.Spawn(name, func(p *Proc) {
				for j := 0; j < 20; j++ {
					switch r.Intn(3) {
					case 0:
						p.Sleep(r.Float64() * 3)
					case 1:
						c.Broadcast()
						p.Sleep(0.1)
					case 2:
						if r.Intn(2) == 0 {
							p.Wait(c)
						} else {
							p.Sleep(r.Float64())
						}
					}
					log = append(log, fmt.Sprintf("%s@%.9f", p.Name(), p.Now()))
				}
			})
		}
		// A pacemaker guarantees waiters are eventually released.
		k.Spawn("pacemaker", func(p *Proc) {
			for i := 0; i < 500; i++ {
				p.Sleep(0.5)
				c.Broadcast()
			}
		})
		k.Run(-1)
		k.Shutdown()
		return log
	}
	a, b := trace(99), trace(99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different event traces")
	}
}

func TestLiveCount(t *testing.T) {
	t.Parallel()
	k := NewKernel()
	for i := 0; i < 4; i++ {
		k.Spawn("p", func(p *Proc) { p.Sleep(1) })
	}
	if k.Live() != 4 {
		t.Fatalf("Live = %d before run, want 4", k.Live())
	}
	k.Run(-1)
	if k.Live() != 0 {
		t.Fatalf("Live = %d after run, want 0", k.Live())
	}
	k.Shutdown()
}
