package objmig

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objmig/internal/core"
	"objmig/internal/wire"
)

// TestMigrateToClosedNodeAborts: migrating towards a dead node must
// fail cleanly and leave the object fully usable where it was.
func TestMigrateToClosedNodeAborts(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{})
	ref := mustCreate(t, nodes[0])
	if _, err := Call[int, int](ctx, nodes[0], ref, "Add", 5); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Migrate(ctx, ref, "n1"); err == nil {
		t.Fatal("migration to a closed node succeeded")
	}
	// The pause was rolled back: the object answers immediately.
	if v, err := Call[struct{}, int](ctx, nodes[2], ref, "Get", struct{}{}); err != nil || v != 5 {
		t.Fatalf("object unusable after aborted migration: %d, %v", v, err)
	}
	if at := whereIs(t, ctx, nodes[0], ref); at != "n0" {
		t.Fatalf("object at %v, want n0", at)
	}
	// And it can still migrate to a live node.
	if err := nodes[0].Migrate(ctx, ref, "n2"); err != nil {
		t.Fatal(err)
	}
}

// TestInvokeOnClosedHostFails: calls to an object whose host died fail
// with an error instead of hanging.
func TestInvokeOnClosedHostFails(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	nodes := testCluster(t, 2, Config{})
	ref := mustCreate(t, nodes[0])
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Call[int, int](ctx, nodes[1], ref, "Add", 1); err == nil {
		t.Fatal("call to a dead host succeeded")
	}
}

// TestClosedNodeRejectsInbound: a closed node answers inbound requests
// with ErrClosed instead of processing them.
func TestClosedNodeRejectsInbound(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	a, err := NewNode(Config{ID: "a", Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterType(newCounterType()); err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(Config{ID: "b", Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ref, err := a.Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	// Mark a closed but keep its listener half-open long enough for a
	// request to arrive: Close tears the server down, so the call
	// surfaces as a transport failure or ErrClosed — never success.
	_ = a.Close()
	if _, err := Call[int, int](ctx, b, ref, "Add", 1); err == nil {
		t.Fatal("closed node served a request")
	}
}

// TestChaos drives a four-node cluster with concurrent invocations,
// migrations, move-blocks, attachments and fixes, then checks global
// invariants: no lost or duplicated updates, agreeing location views,
// and collocated working sets after a final settling migration.
func TestChaos(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("chaos test is slow")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	nodes := testCluster(t, 4, Config{Policy: PolicyPlacement, Attach: AttachATransitive})

	const (
		objects = 6
		workers = 8
		ops     = 150 // per worker
	)
	refs := make([]Ref, objects)
	var expected [objects]atomic.Int64
	for i := range refs {
		refs[i] = mustCreate(t, nodes[i%len(nodes)])
	}
	al := nodes[0].NewAlliance()

	allowed := func(err error) bool {
		return err == nil ||
			errors.Is(err, ErrDenied) ||
			errors.Is(err, ErrFixed) ||
			errors.Is(err, ErrExclusive) ||
			errors.Is(err, ErrUnreachable)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) + 99))
			n := nodes[w%len(nodes)]
			for i := 0; i < ops; i++ {
				if ctx.Err() != nil {
					return
				}
				obj := r.Intn(objects)
				ref := refs[obj]
				switch r.Intn(10) {
				case 0, 1, 2, 3: // invoke
					if _, err := Call[int, int](ctx, n, ref, "Add", 1); err != nil {
						if errors.Is(err, ErrUnreachable) {
							continue // not executed; don't count
						}
						errs <- fmt.Errorf("worker %d add: %w", w, err)
						return
					}
					expected[obj].Add(1)
				case 4, 5: // migrate
					tgt := nodes[r.Intn(len(nodes))].ID()
					if err := n.Migrate(ctx, ref, tgt); !allowed(err) {
						errs <- fmt.Errorf("worker %d migrate: %w", w, err)
						return
					}
				case 6, 7: // move-block with calls inside
					err := n.MoveIn(ctx, al, ref, func(ctx context.Context, b *Block) error {
						for j := 0; j < 3; j++ {
							if _, err := Call[int, int](ctx, n, ref, "Add", 1); err != nil {
								if errors.Is(err, ErrUnreachable) {
									continue
								}
								return err
							}
							expected[obj].Add(1)
						}
						return nil
					})
					if !allowed(err) {
						errs <- fmt.Errorf("worker %d move: %w", w, err)
						return
					}
				case 8: // fix/unfix pulse
					if err := n.Fix(ctx, ref); !allowed(err) {
						errs <- fmt.Errorf("worker %d fix: %w", w, err)
						return
					}
					if err := n.Unfix(ctx, ref); !allowed(err) {
						errs <- fmt.Errorf("worker %d unfix: %w", w, err)
						return
					}
				case 9: // attach/detach pulse between two objects
					other := refs[(obj+1)%objects]
					if err := n.Attach(ctx, ref, other, al); !allowed(err) {
						errs <- fmt.Errorf("worker %d attach: %w", w, err)
						return
					}
					if err := n.Detach(ctx, ref, other, al); !allowed(err) {
						errs <- fmt.Errorf("worker %d detach: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ctx.Err() != nil {
		t.Fatal("chaos run timed out")
	}

	// Invariant 1: no update was lost or duplicated.
	for i, ref := range refs {
		v, err := Call[struct{}, int](ctx, nodes[0], ref, "Get", struct{}{})
		if err != nil {
			t.Fatalf("final get %d: %v", i, err)
		}
		if int64(v) != expected[i].Load() {
			t.Fatalf("object %d: value %d, expected %d", i, v, expected[i].Load())
		}
	}
	// Invariant 2: every node agrees on every object's location.
	for i, ref := range refs {
		var first NodeID
		for j, n := range nodes {
			at, err := n.Locate(ctx, ref)
			if err != nil {
				t.Fatalf("locate %d from n%d: %v", i, j, err)
			}
			if j == 0 {
				first = at
			} else if at != first {
				t.Fatalf("object %d: n0 says %v, n%d says %v", i, first, j, at)
			}
		}
	}
	// Invariant 3: after a settling migration, every residual working
	// set is collocated.
	for _, ref := range refs {
		if err := nodes[0].MigrateIn(ctx, al, ref, "n0"); !allowed(err) {
			t.Fatalf("settle: %v", err)
		}
	}
	for i, ref := range refs {
		ws, err := nodes[0].WorkingSet(ctx, ref, al)
		if err != nil {
			t.Fatalf("working set %d: %v", i, err)
		}
		var at NodeID
		for k, m := range ws {
			loc, err := nodes[0].Locate(ctx, m)
			if err != nil {
				t.Fatalf("locate member: %v", err)
			}
			if k == 0 {
				at = loc
			} else if loc != at {
				t.Fatalf("object %d working set split: %v vs %v", i, at, loc)
			}
		}
	}
}

// TestChaosCoordinatorCrashReleasesReservation: a coordinator that
// claims admission headroom at MigrateBegin and then dies before
// streaming a single chunk must not leak its claim. The target's
// session-TTL janitor discards the orphaned session and releases the
// reservation with it, so the headroom returns to its pre-claim level
// and later migrations admit again.
func TestChaosCoordinatorCrashReleasesReservation(t *testing.T) {
	t.Parallel()
	cl := NewLocalCluster()
	src, err := NewNode(Config{ID: "src", Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = src.Close() })
	if err := src.RegisterType(newCounterType()); err != nil {
		t.Fatal(err)
	}
	tgt, err := NewNode(Config{
		ID: "tgt", Cluster: cl, Capacity: 4,
		Migrate: MigrateConfig{SessionTTL: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tgt.Close() })
	if err := tgt.EnablePlacement(PlacementConfig{Heartbeat: -1, OriginPass: -1}); err != nil {
		t.Fatal(err)
	}

	oids := make([]core.OID, 5)
	for i := range oids {
		oids[i] = mustCreate(t, src).OID
	}

	// The "coordinator" opens a session claiming 2 objects / 100 bytes
	// of headroom and then crashes: no chunk, no commit, no abort ever
	// arrives.
	resp, err := tgt.handleMigrateBegin(&wire.MigrateBeginReq{
		Token: 77, From: src.ID(), Objs: oids[:2], Bytes: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Reserved || resp.ReservedBytes != 100 {
		t.Fatalf("begin did not reserve: %+v", resp)
	}
	if res := tgt.resv.Reserved(); res.Objects != 2 || res.Bytes != 100 {
		t.Fatalf("reserved = %+v, want 2 objects / 100 bytes", res)
	}
	// While the claim is live it defends the capacity: a 3-object group
	// would make 5 of 4 and is vetoed.
	if _, err := tgt.handleMigrateBegin(&wire.MigrateBeginReq{
		Token: 78, From: src.ID(), Objs: oids[2:], Bytes: 0,
	}); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("pre-expiry admission: %v, want capacity refusal", err)
	}

	// The TTL janitor discards the orphaned session and its claim.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if res := tgt.resv.Reserved(); res.Objects == 0 && res.Bytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reservation still held after session TTL: %+v", tgt.resv.Reserved())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if exp := tgt.Stats().StreamSessionsExpired; exp < 1 {
		t.Fatalf("StreamSessionsExpired = %d, want >= 1", exp)
	}
	// Headroom is back: the 3-object group that was vetoed now admits.
	resp, err = tgt.handleMigrateBegin(&wire.MigrateBeginReq{
		Token: 79, From: src.ID(), Objs: oids[2:], Bytes: 0,
	})
	if err != nil || !resp.Reserved {
		t.Fatalf("post-expiry admission: reserved=%v err=%v", resp != nil && resp.Reserved, err)
	}
}
