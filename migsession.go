package objmig

// Streaming group migration, target side and shared config.
//
// A group migration used to materialise every member's snapshot in one
// InstallReq, doubling a large working set in memory on both the
// coordinator and the target. The streamed path replaces that blob
// with a bounded pipeline:
//
//	coordinator                         target
//	-----------                         ------
//	MigrateBegin(token, members) ─────► open session (TTL janitor armed)
//	InstallChunk(token, snaps…)  ─────► decode + stage (≤ ChunkBytes)
//	InstallChunk(token, snaps…)  ─────► decode + stage
//	…
//	InstallCommit(token)         ─────► InstallBatch: whole group,
//	                                    one shard-aware atomic swap
//
// The target stages decoded records in a session buffer keyed by
// (coordinator, token) and installs the whole group only at commit, so
// the paper's "group moves as a unit" invariant survives chunking: an
// abort or crash anywhere before commit leaves the target exactly as
// it was. Two failure detectors make a dead coordinator harmless:
//
//   - the session TTL discards a staging session that stops receiving
//     traffic, so the target never leaks half-streamed state;
//   - the pause lease (see PauseReq.Lease) fires at source hosts when
//     neither commit nor abort arrives, and resolves the migration's
//     outcome against the target — resuming the objects only once the
//     install provably never happened (see resolveExpiredLease).

import (
	"context"
	"errors"
	"time"

	"objmig/internal/core"
	"objmig/internal/store"
	"objmig/internal/telemetry"
	"objmig/internal/wire"
)

// DefaultChunkBytes is the default size bound of one InstallChunk
// frame's encoded snapshot payload.
const DefaultChunkBytes = 256 << 10

// MigrateConfig tunes the streaming group-migration transfer. The zero
// value selects the documented defaults.
type MigrateConfig struct {
	// ChunkBytes bounds the encoded snapshot bytes per InstallChunk
	// frame (and per PauseResp, via PauseReq.MaxBytes) — the
	// coordinator's peak per-frame buffering. A single snapshot larger
	// than the bound still travels (in a chunk of its own). Default
	// 256 KiB; negative disables the bound (monolithic frames).
	ChunkBytes int
	// SessionTTL is how long the target keeps a staging session that
	// receives no traffic before discarding it (coordinator death).
	// Default 30s; negative disables expiry.
	SessionTTL time.Duration
	// PauseLease is how long a source host keeps objects paused for a
	// migration that neither commits nor aborts before resuming them
	// on its own. It must comfortably exceed the worst-case transfer
	// time: the coordinator refuses to commit once half the lease has
	// elapsed, so a lagging migration aborts instead of racing the
	// auto-resume. Default 30s; negative disables the lease.
	PauseLease time.Duration
}

// withDefaults fills the zero fields.
func (c MigrateConfig) withDefaults() MigrateConfig {
	if c.ChunkBytes == 0 {
		c.ChunkBytes = DefaultChunkBytes
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 30 * time.Second
	}
	if c.PauseLease == 0 {
		c.PauseLease = 30 * time.Second
	}
	return c
}

// sessionKey identifies a staging session. Tokens are only unique per
// coordinator, so the coordinator's identity is part of the key.
type sessionKey struct {
	from  NodeID
	token uint64
}

// migSession is one in-progress streamed transfer at the target:
// decoded records staged chunk by chunk until commit or discard. All
// mutation happens under the node's sessMu; the struct itself has no
// lock.
type migSession struct {
	key     sessionKey
	expect  map[core.OID]bool
	staged  map[core.OID]bool
	recs    []*store.Record
	bytes   int64
	trace   uint64      // the migration's TraceID (0 when untraced)
	touched time.Time   // last traffic; re-checked by the TTL janitor
	timer   *time.Timer // TTL janitor; nil when expiry is disabled
}

// handleMigrateBegin opens a staging session for a streamed group
// migration.
func (n *Node) handleMigrateBegin(req *wire.MigrateBeginReq) (*wire.MigrateBeginResp, error) {
	if len(req.Objs) == 0 {
		return nil, wire.Errorf(wire.CodeBadRequest, "migrate-begin with no members")
	}
	key := sessionKey{from: req.From, token: req.Token}
	if n.migrationAborted(key) {
		return nil, wire.Errorf(wire.CodeDenied, "migration %d from %s was aborted", req.Token, req.From)
	}
	// The placement admission runs before the session opens: a
	// coordinator with a stale load view learns here — with this
	// node's authoritative counts — that the group will not fit, before
	// a single member is paused or a single chunk streamed. When the
	// group is admitted, its (objects, bytes) are claimed in the
	// reservation ledger under the session's own key, so concurrent
	// coordinators cannot collectively overshoot the capacity the veto
	// defends: each admission sees every earlier claim as if it were
	// already resident.
	reserved, err := n.admitAndReserve(req.Objs, req.Bytes, req.From, req.Token)
	if err != nil {
		return nil, err
	}
	s := &migSession{
		key:     key,
		expect:  make(map[core.OID]bool, len(req.Objs)),
		staged:  make(map[core.OID]bool, len(req.Objs)),
		trace:   req.Trace,
		touched: time.Now(),
	}
	for _, oid := range req.Objs {
		s.expect[oid] = true
	}
	n.sessMu.Lock()
	if _, dup := n.sessions[key]; dup {
		n.sessMu.Unlock()
		// Keep the claim: it carries the same (coordinator, token) key
		// as the open session's, so the ledger entry still backs the
		// transfer that is actually in flight.
		return nil, wire.Errorf(wire.CodeDenied, "migration session %d from %s already open", req.Token, req.From)
	}
	if ttl := n.migrate.SessionTTL; ttl > 0 {
		s.timer = time.AfterFunc(ttl, func() { n.expireSession(key) })
	}
	n.sessions[key] = s
	n.sessMu.Unlock()
	n.stats.streamSessionsOpened.Add(1)
	n.emit(Event{Kind: EventMigrateStream, Target: req.From, Outcome: "begin"})
	resp := &wire.MigrateBeginResp{Reserved: reserved}
	if reserved {
		resp.ReservedBytes = req.Bytes
	}
	return resp, nil
}

// handleInstallChunk stages one chunk of snapshots into its session.
// Records are decoded here, at staging time, so an unknown type, a
// corrupt state blob or a conflicting live object fails the stream
// early — the coordinator aborts instead of discovering the problem at
// commit. A failed chunk dooms the whole transfer, so the session is
// discarded on any error.
func (n *Node) handleInstallChunk(req *wire.InstallChunkReq) (*wire.InstallChunkResp, error) {
	key := sessionKey{from: req.From, token: req.Token}
	fail := func(err *wire.RemoteError) (*wire.InstallChunkResp, error) {
		n.dropSession(key, "abort")
		return nil, err
	}
	// Cheap existence check first: a chunk racing its session's expiry
	// or abort should not pay for decoding megabytes it will discard.
	// The authoritative re-check below still runs under the lock.
	n.sessMu.Lock()
	_, open := n.sessions[key]
	n.sessMu.Unlock()
	if !open {
		return nil, wire.Errorf(wire.CodeDenied, "no migration session %d from %s (expired?)", req.Token, req.From)
	}
	// Decode outside the session lock: state blobs can be large. The
	// stage span covers decode and bookkeeping — the target-side cost
	// of one chunk.
	start := time.Now()
	recs := make([]*store.Record, len(req.Snapshots))
	var bytes int64
	for i := range req.Snapshots {
		snap := &req.Snapshots[i]
		rec, err := n.decodeSnapshot(snap)
		if err != nil {
			var re *wire.RemoteError
			if !errors.As(err, &re) {
				re = wire.Errorf(wire.CodeInternal, "stage %s: %v", snap.ID, err)
			}
			return fail(re)
		}
		if err := n.store.Installable(snap.ID, req.Token); err != nil {
			var re *wire.RemoteError
			if !errors.As(err, &re) {
				re = wire.Errorf(wire.CodeDenied, "stage %s: %v", snap.ID, err)
			}
			return fail(re)
		}
		recs[i] = rec
		bytes += int64(wire.SnapshotSize(snap))
	}

	n.sessMu.Lock()
	s, ok := n.sessions[key]
	if !ok {
		n.sessMu.Unlock()
		return nil, wire.Errorf(wire.CodeDenied, "no migration session %d from %s (expired?)", req.Token, req.From)
	}
	for i := range req.Snapshots {
		oid := req.Snapshots[i].ID
		if !s.expect[oid] {
			n.sessMu.Unlock()
			return fail(wire.Errorf(wire.CodeBadRequest, "chunk carries %s, not a member of session %d", oid, req.Token))
		}
		if s.staged[oid] {
			n.sessMu.Unlock()
			return fail(wire.Errorf(wire.CodeBadRequest, "chunk re-stages %s in session %d", oid, req.Token))
		}
		s.staged[oid] = true
	}
	s.recs = append(s.recs, recs...)
	s.bytes += bytes
	s.touched = time.Now()
	if s.timer != nil {
		s.timer.Reset(n.migrate.SessionTTL)
	}
	staged := len(s.recs)
	n.sessMu.Unlock()

	n.tel.span(req.Trace, telemetry.PhaseStage, start, bytes, len(req.Snapshots))
	n.stats.streamChunksIn.Add(1)
	n.stats.streamBytesIn.Add(bytes)
	return &wire.InstallChunkResp{Staged: staged}, nil
}

// handleInstallCommit closes a session: every expected member must be
// staged, and the whole group is installed in one atomic shard-aware
// batch. Whatever the outcome, the session is gone afterwards.
func (n *Node) handleInstallCommit(req *wire.InstallCommitReq) (*wire.InstallCommitResp, error) {
	key := sessionKey{from: req.From, token: req.Token}
	n.sessMu.Lock()
	s, ok := n.sessions[key]
	if ok {
		delete(n.sessions, key)
		if s.timer != nil {
			s.timer.Stop()
		}
	}
	n.sessMu.Unlock()
	if !ok {
		return nil, wire.Errorf(wire.CodeDenied, "no migration session %d from %s (expired?)", req.Token, req.From)
	}
	if missing := len(s.expect) - len(s.staged); missing > 0 {
		return nil, wire.Errorf(wire.CodeBadRequest,
			"commit of session %d from %s with %d of %d members unstaged", req.Token, req.From, missing, len(s.expect))
	}
	start := time.Now()
	// The reservation is released only after InstallBatch: between the
	// install and the release the group is briefly counted twice (as
	// residency and as a claim), which errs on the safe side — hosted
	// plus reserved never undercounts what the node is committed to.
	defer n.releaseReservation(req.From, req.Token)
	if err := n.store.InstallBatch(s.recs, req.Token); err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return nil, re
		}
		return nil, wire.Errorf(wire.CodeInternal, "install: %v", err)
	}
	// Members that were paused *here* (the target hosted some of the
	// group) were just replaced by the installation; their lease must
	// not fire later and there is nothing left for it to resume.
	n.cancelPauseLease(key)
	n.tel.span(s.trace, telemetry.PhaseInstall, start, s.bytes, len(s.recs))
	installed := make([]Ref, len(s.recs))
	for i, rec := range s.recs {
		installed[i] = Ref{OID: rec.ID}
	}
	n.stats.objectsInstalled.Add(int64(len(s.recs)))
	n.emit(Event{Kind: EventInstall, Objects: installed})
	n.emit(Event{Kind: EventMigrateStream, Target: req.From, Outcome: "commit", Bytes: s.bytes})
	return &wire.InstallCommitResp{Installed: len(s.recs)}, nil
}

// expireSession is the TTL janitor: a session that stopped receiving
// traffic is discarded, staged records and all. Fired by the session's
// timer; a commit or abort that won the race removed the session from
// the map first, making this a no-op, and a chunk that refreshed the
// session while the fired timer waited on the lock (Reset cannot stop
// an already-fired AfterFunc) is detected via the activity stamp.
func (n *Node) expireSession(key sessionKey) {
	n.sessMu.Lock()
	if s, ok := n.sessions[key]; ok && s.timer != nil {
		if remain := n.migrate.SessionTTL - time.Since(s.touched); remain > 0 {
			s.timer.Reset(remain) // refreshed concurrently: still live
			n.sessMu.Unlock()
			return
		}
	}
	n.sessMu.Unlock()
	if n.dropSession(key, "expire") {
		n.stats.streamSessionsExpired.Add(1)
	}
}

// dropSession discards a staging session, reporting whether it
// existed. outcome labels the emitted event ("abort" or "expire").
// The session's capacity claim is released whether or not the session
// itself still exists: an abort can race a commit that already removed
// the session but failed its install, leaving only the claim behind.
func (n *Node) dropSession(key sessionKey, outcome string) bool {
	n.releaseReservation(key.from, key.token)
	n.sessMu.Lock()
	s, ok := n.sessions[key]
	if ok {
		delete(n.sessions, key)
		if s.timer != nil {
			s.timer.Stop()
		}
	}
	n.sessMu.Unlock()
	if !ok {
		return false
	}
	if outcome == "abort" {
		n.stats.streamAborts.Add(1)
	}
	n.emit(Event{Kind: EventMigrateStream, Target: key.from, Outcome: outcome, Bytes: s.bytes})
	return true
}

// abortFence plants a tombstone for an aborted migration: installs and
// session-begins for (coordinator, token) are refused afterwards, so a
// frame that was in flight when the abort (or a lease resume) happened
// cannot land late and duplicate objects the sources already resumed.
// Tokens are never reused, so a tombstone can only ever block the one
// migration it names. Old tombstones are pruned lazily.
func (n *Node) abortFence(key sessionKey) {
	ttl := 2 * n.migrate.SessionTTL
	if ttl <= 0 {
		ttl = time.Minute
	}
	now := time.Now()
	n.sessMu.Lock()
	for k, t := range n.tombs {
		if now.Sub(t) > ttl {
			delete(n.tombs, k)
		}
	}
	n.tombs[key] = now
	n.sessMu.Unlock()
}

// migrationAborted reports whether the migration's abort fence is up.
func (n *Node) migrationAborted(key sessionKey) bool {
	n.sessMu.Lock()
	_, ok := n.tombs[key]
	n.sessMu.Unlock()
	return ok
}

// closeSessions discards every staging session (node shutdown).
func (n *Node) closeSessions() {
	n.sessMu.Lock()
	sessions := n.sessions
	n.sessions = make(map[sessionKey]*migSession)
	n.sessMu.Unlock()
	for _, s := range sessions {
		if s.timer != nil {
			s.timer.Stop()
		}
	}
}

// sessionCount reports the number of open staging sessions (tests,
// diagnostics).
func (n *Node) sessionCount() int {
	n.sessMu.Lock()
	defer n.sessMu.Unlock()
	return len(n.sessions)
}

// --- Pause leases (source side) ---

// pauseLease tracks the objects a host paused for one migration
// (keyed, like staging sessions, by coordinator and token — tokens are
// only node-unique) and the timer that resolves their fate if the
// coordinator vanishes.
type pauseLease struct {
	objs    []core.OID
	target  NodeID // migration target; consulted when the lease fires
	lease   time.Duration
	touched time.Time
	timer   *time.Timer
}

// armPauseLease (re)arms a migration's lease: newly paused objects
// join the covered set and the clock restarts — a multi-batch pause
// keeps extending its own deadline, so the lease measures coordinator
// silence, not total migration time.
func (n *Node) armPauseLease(key sessionKey, target NodeID, objs []core.OID, lease time.Duration) {
	n.leaseMu.Lock()
	defer n.leaseMu.Unlock()
	l, ok := n.leases[key]
	if !ok {
		l = &pauseLease{target: target, lease: lease}
		l.timer = time.AfterFunc(lease, func() { n.firePauseLease(key) })
		n.leases[key] = l
	} else {
		l.lease = lease
		l.timer.Reset(lease)
	}
	l.touched = time.Now()
	l.objs = append(l.objs, objs...)
}

// cancelPauseLease disarms a migration's lease (commit or abort
// arrived).
func (n *Node) cancelPauseLease(key sessionKey) {
	n.leaseMu.Lock()
	l, ok := n.leases[key]
	if ok {
		delete(n.leases, key)
		l.timer.Stop()
	}
	n.leaseMu.Unlock()
}

// firePauseLease handles coordinator silence on a migration that
// paused objects here. A timer that raced a concurrent re-arm (Reset
// cannot stop an already-fired AfterFunc) re-checks the last-activity
// stamp and backs off. A genuinely silent migration is resolved, not
// blindly resumed — see resolveExpiredLease.
func (n *Node) firePauseLease(key sessionKey) {
	n.leaseMu.Lock()
	l, ok := n.leases[key]
	if !ok {
		n.leaseMu.Unlock()
		return
	}
	if remain := l.lease - time.Since(l.touched); remain > 0 {
		l.timer.Reset(remain) // re-armed concurrently: not actually silent
		n.leaseMu.Unlock()
		return
	}
	delete(n.leases, key)
	n.leaseMu.Unlock()
	n.resolveExpiredLease(key, l)
}

// resolveExpiredLease decides an abandoned migration's outcome. The
// danger is the window after the target committed the install but
// before our CommitReq arrived: resuming then would leave the object
// live in two places. The install is atomic — all members or none — so
// asking the target about one member answers for the whole group:
//
//   - the target (authoritatively) hosts the member → the install
//     committed; finish our side of the commit (forwarding stubs).
//   - the target denies knowledge, or authoritatively places the
//     member back here → the install never committed; resume.
//   - anything else (unreachable target, a third-party answer) →
//     uncertain; stay paused and re-arm the lease. A stuck-but-paused
//     object is consistent and recoverable, a duplicated one is not.
func (n *Node) resolveExpiredLease(key sessionKey, l *pauseLease) {
	n.stats.pauseLeasesExpired.Add(1)
	outcome := "lease-resumed"
	verdict := n.expiredLeaseVerdict(key, l)
	if verdict == leaseAborted && l.target != "" && l.target != n.id {
		// Fence before resuming: plant the abort tombstone at the
		// target so an install frame still in flight cannot land after
		// the objects come back to life here. If the fence cannot be
		// confirmed, stay paused and retry — consistency over
		// availability.
		if !n.fenceRemote(key, l.target) {
			verdict = leaseUnknown
		}
	}
	switch verdict {
	case leaseCommitted:
		// Run the commit the coordinator never delivered.
		outcome = "lease-committed"
		n.commitLocal(&wire.CommitReq{Objs: l.objs, NewHome: l.target, Token: key.token, From: key.from})
	case leaseAborted:
		for _, rec := range n.store.GetBatch(l.objs) {
			if rec != nil {
				rec.Unpause(key.token)
			}
		}
	case leaseUnknown:
		outcome = "lease-retry"
		n.leaseMu.Lock()
		if _, exists := n.leases[key]; !exists {
			l.touched = time.Now()
			l.timer = time.AfterFunc(l.lease, func() { n.firePauseLease(key) })
			n.leases[key] = l
		}
		n.leaseMu.Unlock()
	}
	refs := make([]Ref, len(l.objs))
	for i, oid := range l.objs {
		refs[i] = Ref{OID: oid}
	}
	n.emit(Event{Kind: EventMigrateStream, Target: l.target, Outcome: outcome, Objects: refs})
}

type leaseVerdict int

const (
	leaseAborted leaseVerdict = iota
	leaseCommitted
	leaseUnknown
)

// expiredLeaseVerdict asks the migration target whether the install
// committed. Locate answers with authoritative knowledge only
// (hosting, forwarding pointers, the origin's home index — never
// cached hearsay), which is what makes the verdict trustworthy.
func (n *Node) expiredLeaseVerdict(key sessionKey, l *pauseLease) leaseVerdict {
	if len(l.objs) == 0 {
		return leaseAborted
	}
	if l.target == "" || l.target == n.id {
		// No target recorded (legacy pause), or the target is this very
		// node: a committed install already replaced our paused records,
		// making Unpause a token-checked no-op. Blind resume is safe.
		return leaseAborted
	}
	probe := l.objs[0]
	actx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp wire.LocateResp
	err := n.call(actx, l.target, wire.KLocate, &wire.LocateReq{Obj: probe}, &resp)
	switch {
	case err == nil && resp.At == l.target:
		return leaseCommitted
	case err == nil && resp.At == n.id:
		return leaseAborted // the target's authoritative view points back here
	case err == nil && probe.Origin != l.target:
		// The target answered with a forward to a third node. For an
		// object it did not create, the only way the target owns a
		// forwarding pointer is having hosted the object: the install
		// committed and the group has since migrated on. (When the
		// target IS the origin, a third-party answer may come from its
		// stale home index instead — that case stays unknown below.)
		return leaseCommitted
	case isCode(err, wire.CodeNotFound):
		return leaseAborted // target never installed (nor ever forwarded) it
	default:
		return leaseUnknown
	}
}

// fenceRemote plants the abort tombstone for (key) at the target via a
// best-effort AbortReq carrying no objects, reporting whether the
// target acknowledged it.
func (n *Node) fenceRemote(key sessionKey, target NodeID) bool {
	actx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp wire.AbortResp
	err := n.call(actx, target, wire.KAbort, &wire.AbortReq{Token: key.token, From: key.from}, &resp)
	return err == nil
}

// closePauseLeases stops every lease timer (node shutdown).
func (n *Node) closePauseLeases() {
	n.leaseMu.Lock()
	leases := n.leases
	n.leases = make(map[sessionKey]*pauseLease)
	n.leaseMu.Unlock()
	for _, l := range leases {
		l.timer.Stop()
	}
}
