// Package registry keeps a node's view of where objects live: the home
// index for objects it created (authoritative, lazily updated), the
// forwarding pointers for objects that migrated away, and a cache of
// hints for remote objects.
//
// This is the location scheme the paper's system model assumes
// ([ChC91], [JLH+88]): a name-service lookup at the object's origin
// plus forward addressing at former hosts. The simulation normalises
// these costs away (Section 4.1); the live runtime implements them.
//
// Since the sharded-store refactor the three maps live inside
// internal/store, striped by OID hash alongside the object records, so
// a hot-path lookup touches a single shard. This package remains as a
// thin location-only facade over that store: it pins down the location
// semantics (and their tests) independently of the object table.
package registry

import (
	"objmig/internal/core"
	"objmig/internal/store"
)

// Registry is a node-local location table backed by the sharded store.
// It is safe for concurrent use.
type Registry struct {
	s *store.Store
}

// New returns a Registry for the given node.
func New(self core.NodeID) *Registry {
	return &Registry{s: store.New(self)}
}

// Created records that this node created the object and hosts it.
func (r *Registry) Created(id core.OID) { r.s.Created(id) }

// Arrived records that the object is now hosted here: any forwarding
// pointer and stale hint is dropped, and the home index is updated when
// this node is the origin.
func (r *Registry) Arrived(id core.OID) { r.s.Arrived(id) }

// Departed records that the object left this node towards to: a
// forwarding pointer replaces the local entry (at the origin the home
// entry doubles as the forward, so no separate pointer is kept). The
// facade predates departure generations and reports generation zero,
// which yields the original last-writer-wins behaviour.
func (r *Registry) Departed(id core.OID, to core.NodeID) { r.s.Departed(id, to, 0) }

// HomeUpdate records a (possibly delayed) report that objects created
// here now live at the given node. Reports about foreign objects are
// ignored.
func (r *Registry) HomeUpdate(ids []core.OID, at core.NodeID) { r.s.HomeUpdate(ids, nil, at) }

// Home returns the home-index entry for an object created here.
func (r *Registry) Home(id core.OID) (core.NodeID, bool) { return r.s.Home(id) }

// Forward returns the forwarding pointer, if any.
func (r *Registry) Forward(id core.OID) (core.NodeID, bool) { return r.s.Forward(id) }

// Learn records fresher location knowledge for an object that is not
// local. When a forwarding pointer exists it is updated in place — the
// classic forward-addressing chain shortening.
func (r *Registry) Learn(id core.OID, at core.NodeID) { r.s.Learn(id, at) }

// Hint suggests where to try first for an object that is not local:
// the freshest of forwarding pointer, home index, cache, falling back
// to the object's origin node.
func (r *Registry) Hint(id core.OID) core.NodeID { return r.s.Hint(id) }

// Invalidate drops a cached hint that turned out to be wrong.
func (r *Registry) Invalidate(id core.OID) { r.s.Invalidate(id) }

// Stats reports table sizes (for diagnostics and tests).
func (r *Registry) Stats() (home, forwards, cache int) {
	ls := r.s.LocStats()
	return ls.Home, ls.Forwards, ls.Cache
}

// Debug renders everything the registry knows about one object
// (diagnostics only).
func (r *Registry) Debug(id core.OID) string { return r.s.Debug(id) }
