// Package transport abstracts the byte-level links between nodes: a
// frame-oriented connection interface with an in-memory implementation
// (for tests, examples and single-process clusters, with optional
// injected latency) and a TCP implementation for real deployments.
package transport

import "errors"

// ErrClosed is returned by operations on closed connections and
// listeners.
var ErrClosed = errors.New("transport: closed")

// Conn is a reliable, ordered, frame-oriented duplex connection. Send
// and Recv are safe for one concurrent sender and one concurrent
// receiver; Close may be called from any goroutine and unblocks both.
type Conn interface {
	// Send transmits one frame.
	Send(frame []byte) error
	// Recv blocks for the next frame.
	Recv() ([]byte, error)
	// Close tears the connection down. It is idempotent.
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Addr returns the address peers dial to reach this listener.
	Addr() string
	// Close stops accepting. It is idempotent.
	Close() error
}

// Transport creates listeners and outbound connections.
type Transport interface {
	// Listen binds to addr. An empty addr lets the transport choose.
	Listen(addr string) (Listener, error)
	// Dial connects to a listener's address.
	Dial(addr string) (Conn, error)
}
