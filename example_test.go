package objmig_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"objmig"
)

// Account is an example object state: any gob-encodable struct.
type Account struct {
	Balance int
}

func newAccountType() *objmig.Type[Account] {
	t := objmig.NewType[Account]("account")
	objmig.HandleFunc(t, "Deposit", func(c *objmig.Ctx, a *Account, amount int) (int, error) {
		a.Balance += amount
		return a.Balance, nil
	})
	return t
}

// Example shows the minimal lifecycle: host an object, invoke it from
// another node, migrate it, and keep invoking through the same Ref.
func Example() {
	ctx := context.Background()
	cluster := objmig.NewLocalCluster()

	mk := func(id objmig.NodeID) *objmig.Node {
		n, err := objmig.NewNode(objmig.Config{ID: id, Cluster: cluster})
		if err != nil {
			log.Fatal(err)
		}
		if err := n.RegisterType(newAccountType()); err != nil {
			log.Fatal(err)
		}
		return n
	}
	bank, branch := mk("bank"), mk("branch")
	defer func() { _ = bank.Close(); _ = branch.Close() }()

	acct, err := bank.Create("account")
	if err != nil {
		log.Fatal(err)
	}
	balance, err := objmig.Call[int, int](ctx, branch, acct, "Deposit", 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after remote deposit:", balance)

	if err := bank.Migrate(ctx, acct, "branch"); err != nil {
		log.Fatal(err)
	}
	balance, err = objmig.Call[int, int](ctx, bank, acct, "Deposit", 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after migration and deposit:", balance)
	// Output:
	// after remote deposit: 100
	// after migration and deposit: 150
}

// ExampleNode_EnableAutopilot shows affinity-driven self-placement: no
// migration primitive is ever called, yet the object converges onto
// the node that uses it.
func ExampleNode_EnableAutopilot() {
	ctx := context.Background()
	cluster := objmig.NewLocalCluster()
	mk := func(id objmig.NodeID) *objmig.Node {
		n, err := objmig.NewNode(objmig.Config{ID: id, Cluster: cluster})
		if err != nil {
			log.Fatal(err)
		}
		if err := n.RegisterType(newAccountType()); err != nil {
			log.Fatal(err)
		}
		return n
	}
	bank, branch := mk("bank"), mk("branch")
	defer func() { _ = bank.Close(); _ = branch.Close() }()

	acct, err := bank.Create("account")
	if err != nil {
		log.Fatal(err)
	}
	// The autopilot watches per-caller access pressure on the objects
	// this node hosts and migrates them towards dominant callers.
	if err := bank.EnableAutopilot(objmig.AutopilotConfig{
		Interval: 2 * time.Millisecond,
		MinTotal: 8,
	}); err != nil {
		log.Fatal(err)
	}

	// All traffic comes from the branch…
	for i := 0; i < 64; i++ {
		if _, err := objmig.Call[int, int](ctx, branch, acct, "Deposit", 1); err != nil {
			log.Fatal(err)
		}
	}
	// …so the account migrates there on its own.
	deadline := time.Now().Add(10 * time.Second)
	for {
		at, err := bank.Locate(ctx, acct)
		if err == nil && at == "branch" {
			fmt.Println("account converged at:", at)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("autopilot did not converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Output:
	// account converged at: branch
}

// ExampleNode_Move shows a move-block under transient placement: the
// block brings the object here, works on it locally, and releases it
// with the implicit end-request.
func ExampleNode_Move() {
	ctx := context.Background()
	cluster := objmig.NewLocalCluster()
	mk := func(id objmig.NodeID) *objmig.Node {
		n, err := objmig.NewNode(objmig.Config{
			ID: id, Cluster: cluster, Policy: objmig.PolicyPlacement,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := n.RegisterType(newAccountType()); err != nil {
			log.Fatal(err)
		}
		return n
	}
	home, worker := mk("home"), mk("worker")
	defer func() { _ = home.Close(); _ = worker.Close() }()

	acct, err := home.Create("account")
	if err != nil {
		log.Fatal(err)
	}
	err = worker.Move(ctx, acct, func(ctx context.Context, b *objmig.Block) error {
		fmt.Println("granted:", b.Granted, "at:", b.At)
		for i := 0; i < 3; i++ {
			if _, err := objmig.Call[int, int](ctx, worker, acct, "Deposit", 10); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	balance, err := objmig.Call[int, int](ctx, home, acct, "Deposit", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final balance:", balance)
	// Output:
	// granted: true at: worker
	// final balance: 30
}
