package objmig

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"objmig/internal/core"
)

func TestParseRef(t *testing.T) {
	t.Parallel()
	ref := Ref{OID: core.OID{Origin: "node-1", Seq: 42}}
	parsed, err := ParseRef(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != ref {
		t.Fatalf("parsed = %v, want %v", parsed, ref)
	}
	for _, bad := range []string{"", "noslash", "/3", "a/", "a/notanumber", "a/-1"} {
		if _, err := ParseRef(bad); err == nil {
			t.Errorf("ParseRef(%q) accepted", bad)
		}
	}
}

func TestParseRefRoundTripProperty(t *testing.T) {
	t.Parallel()
	f := func(origin string, seq uint64) bool {
		if origin == "" || strings.ContainsRune(origin, 0) {
			return true // skip degenerate origins
		}
		ref := Ref{OID: core.OID{Origin: NodeID(origin), Seq: seq}}
		parsed, err := ParseRef(ref.String())
		return err == nil && parsed == ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRefZero(t *testing.T) {
	t.Parallel()
	var r Ref
	if !r.IsZero() {
		t.Fatal("zero Ref not IsZero")
	}
	r.OID.Seq = 1
	if r.IsZero() {
		t.Fatal("non-zero Ref IsZero")
	}
}

func TestHandleFuncDuplicatePanics(t *testing.T) {
	t.Parallel()
	typ := NewType[counterState]("dup")
	HandleFunc(typ, "M", func(c *Ctx, s *counterState, _ struct{}) (struct{}, error) {
		return struct{}{}, nil
	})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate method registration did not panic")
		}
	}()
	HandleFunc(typ, "M", func(c *Ctx, s *counterState, _ struct{}) (struct{}, error) {
		return struct{}{}, nil
	})
}

func TestTypeStateRoundTrip(t *testing.T) {
	t.Parallel()
	typ := newCounterType()
	inst := &counterState{Value: 7, Tag: "x", Peer: Ref{OID: core.OID{Origin: "n", Seq: 3}}}
	data, err := typ.encodeState(inst)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := typ.decodeState(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := decoded.(*counterState)
	if !ok {
		t.Fatalf("decoded %T", decoded)
	}
	if *got != *inst {
		t.Fatalf("round trip: %+v != %+v", got, inst)
	}
	// Wrong instance type is rejected, not mangled.
	if _, err := typ.encodeState("not a counter"); err == nil {
		t.Fatal("encodeState accepted a foreign instance")
	}
	if _, err := typ.decodeState([]byte("garbage")); err == nil {
		t.Fatal("decodeState accepted garbage")
	}
}

func TestTypeMethodNames(t *testing.T) {
	t.Parallel()
	typ := newCounterType()
	names := typ.methodNames()
	if len(names) == 0 {
		t.Fatal("no method names")
	}
	found := false
	for _, n := range names {
		if n == "Add" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Add missing from %v", names)
	}
}

func TestRegisterTypeRejectsForeignImplementations(t *testing.T) {
	t.Parallel()
	n, err := NewNode(Config{ID: "x", Cluster: NewLocalCluster()})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.RegisterType(fakeType{}); err == nil {
		t.Fatal("foreign type accepted")
	}
}

type fakeType struct{}

func (fakeType) Name() string { return "fake" }

func TestFromRemoteMapping(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicyPlacement})
	ref := mustCreate(t, nodes[0])

	// Drive real remote errors through the public API and check the
	// sentinel mapping.
	if err := nodes[0].Fix(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Migrate(ctx, ref, "n1"); !errors.Is(err, ErrFixed) {
		t.Fatalf("fixed: %v", err)
	}
	if err := nodes[0].Unfix(ctx, ref); err != nil {
		t.Fatal(err)
	}
	err := nodes[0].Move(ctx, ref, func(ctx context.Context, b *Block) error {
		if err := nodes[1].Migrate(ctx, ref, "n1"); !errors.Is(err, ErrDenied) {
			t.Errorf("locked: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNodeStatsCounters(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Policy: PolicyPlacement})
	ref := mustCreate(t, nodes[0])

	if _, err := Call[int, int](ctx, nodes[0], ref, "Add", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Call[int, int](ctx, nodes[1], ref, "Add", 1); err != nil {
		t.Fatal(err)
	}
	s0 := nodes[0].Stats()
	if s0.InvocationsServed != 2 {
		t.Fatalf("served = %d, want 2", s0.InvocationsServed)
	}
	if s0.ObjectsHosted != 1 {
		t.Fatalf("hosted = %d, want 1", s0.ObjectsHosted)
	}
	s1 := nodes[1].Stats()
	if s1.RemoteCallsSent == 0 {
		t.Fatal("n1 sent no remote calls")
	}

	if err := nodes[0].Migrate(ctx, ref, "n1"); err != nil {
		t.Fatal(err)
	}
	s0, s1 = nodes[0].Stats(), nodes[1].Stats()
	if s0.MigrationsOut != 1 || s0.ObjectsMovedOut != 1 {
		t.Fatalf("n0 migrations = %+v", s0)
	}
	if s1.ObjectsInstalled != 1 || s1.ObjectsHosted != 1 {
		t.Fatalf("n1 installs = %+v", s1)
	}
	if s0.ObjectsHosted != 0 {
		t.Fatalf("n0 still hosts %d", s0.ObjectsHosted)
	}

	// Move outcomes are counted at the deciding host.
	err := nodes[0].Move(ctx, ref, func(ctx context.Context, b *Block) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := nodes[1].Stats().MovesGranted; got != 1 {
		t.Fatalf("n1 granted = %d, want 1", got)
	}
}

func TestClusterLatencyVisible(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	cl := NewLocalCluster()
	a, err := NewNode(Config{ID: "a", Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(Config{ID: "b", Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, n := range []*Node{a, b} {
		if err := n.RegisterType(newCounterType()); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := a.Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	// Latency on a TCP cluster is a no-op by contract.
	NewTCPCluster().SetLatency(0)
	cl.SetLatency(0)
	if _, err := Call[int, int](ctx, b, ref, "Add", 1); err != nil {
		t.Fatal(err)
	}
}
