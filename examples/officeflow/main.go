// Officeflow: the paper's motivating scenario (Section 1) on the live
// runtime. An office-automation system is assembled from independently
// developed components — here an *editor* application and an *archiver*
// application — that share service objects: a folder index and the
// documents inside it. Each application attaches the objects it works
// with into its own working set and controls migration with
// move-blocks, without knowing anything about the other application.
//
// The example shows the paper's remedies working together:
//
//   - transient placement keeps the two applications from stealing the
//     folder from each other mid-block, and
//   - alliances (A-transitive attachment) keep each application's
//     migrations from dragging the other's working set around.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"objmig"
)

// Document is a shared document object.
type Document struct {
	Title    string
	Body     []string
	Revision int
}

// Folder is the shared index both applications use.
type Folder struct {
	Titles []string
}

type appendArg struct {
	Line string
}

func newDocumentType() *objmig.Type[Document] {
	t := objmig.NewType[Document]("document")
	objmig.HandleFunc(t, "SetTitle", func(c *objmig.Ctx, d *Document, title string) (struct{}, error) {
		d.Title = title
		return struct{}{}, nil
	})
	objmig.HandleFunc(t, "Append", func(c *objmig.Ctx, d *Document, a appendArg) (int, error) {
		d.Body = append(d.Body, a.Line)
		d.Revision++
		return d.Revision, nil
	})
	objmig.HandleFunc(t, "Render", func(c *objmig.Ctx, d *Document, _ struct{}) (string, error) {
		return fmt.Sprintf("%s (rev %d)\n%s", d.Title, d.Revision, strings.Join(d.Body, "\n")), nil
	})
	return t
}

func newFolderType() *objmig.Type[Folder] {
	t := objmig.NewType[Folder]("folder")
	objmig.HandleFunc(t, "Add", func(c *objmig.Ctx, f *Folder, title string) (int, error) {
		f.Titles = append(f.Titles, title)
		return len(f.Titles), nil
	})
	objmig.HandleFunc(t, "List", func(c *objmig.Ctx, f *Folder, _ struct{}) ([]string, error) {
		out := make([]string, len(f.Titles))
		copy(out, f.Titles)
		return out, nil
	})
	return t
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	cluster := objmig.NewLocalCluster()
	cluster.SetLatency(500 * time.Microsecond)

	mk := func(id objmig.NodeID) *objmig.Node {
		n, err := objmig.NewNode(objmig.Config{
			ID:      id,
			Cluster: cluster,
			Policy:  objmig.PolicyPlacement,
			Attach:  objmig.AttachATransitive,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, typ := range []interface{ Name() string }{newDocumentType(), newFolderType()} {
			if err := n.RegisterType(typ); err != nil {
				log.Fatal(err)
			}
		}
		return n
	}
	// One file server and one workstation per application.
	server, editor, archiver := mk("file-server"), mk("editor-ws"), mk("archiver-ws")
	defer func() { _ = server.Close(); _ = editor.Close(); _ = archiver.Close() }()

	// Shared state lives on the file server initially.
	folder, err := server.Create("folder")
	if err != nil {
		log.Fatal(err)
	}
	report, err := server.Create("document")
	if err != nil {
		log.Fatal(err)
	}
	memo, err := server.Create("document")
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	_, err = objmig.Call[string, struct{}](ctx, server, report, "SetTitle", "Q2 report")
	must(err)
	_, err = objmig.Call[string, struct{}](ctx, server, memo, "SetTitle", "travel memo")
	must(err)

	// Each application declares its own cooperation context: the
	// editor works on the folder plus the report, the archiver on the
	// folder plus the memo. The folder is the overlap — exactly the
	// Section 2.4 situation that breaks unrestricted attachment.
	editorAl := editor.NewAlliance()
	archiverAl := archiver.NewAlliance()
	must(editor.Attach(ctx, folder, report, editorAl))
	must(archiver.Attach(ctx, folder, memo, archiverAl))

	// The editor pulls ITS working set over and edits. Thanks to
	// A-transitivity the memo stays on the file server even though it
	// is attached to the folder (in the archiver's alliance).
	err = editor.MoveIn(ctx, editorAl, folder, func(ctx context.Context, b *objmig.Block) error {
		fmt.Printf("editor block: granted=%v, moved %d objects\n", b.Granted, len(b.Moved))
		if _, err := objmig.Call[string, int](ctx, editor, folder, "Add", "Q2 report"); err != nil {
			return err
		}
		for _, line := range []string{"Revenue grew.", "Costs shrank.", "Morale high."} {
			if _, err := objmig.Call[appendArg, int](ctx, editor, report, "Append", appendArg{Line: line}); err != nil {
				return err
			}
		}

		// While the editor holds its placed working set, the archiver
		// works too — concurrently and obliviously. Its move on the
		// folder is denied (the editor placed it first), so its calls
		// are forwarded; its own memo working set is untouched.
		return archiver.MoveIn(ctx, archiverAl, folder, func(ctx context.Context, b2 *objmig.Block) error {
			fmt.Printf("archiver block: granted=%v (placement protects the editor's block)\n", b2.Granted)
			if _, err := objmig.Call[string, int](ctx, archiver, folder, "Add", "travel memo"); err != nil {
				return err
			}
			_, err := objmig.Call[appendArg, int](ctx, archiver, memo, "Append", appendArg{Line: "archived 2026-06-11"})
			return err
		})
	})
	must(err)

	// After the editor's end-request the archiver can win the folder.
	err = archiver.MoveIn(ctx, archiverAl, folder, func(ctx context.Context, b *objmig.Block) error {
		fmt.Printf("archiver block: granted=%v after the editor finished\n", b.Granted)
		where, err := archiver.Locate(ctx, memo)
		if err != nil {
			return err
		}
		fmt.Printf("memo now at %s (dragged with the archiver's working set)\n", where)
		return nil
	})
	must(err)

	titles, err := objmig.Call[struct{}, []string](ctx, server, folder, "List", struct{}{})
	must(err)
	fmt.Println("folder lists:", strings.Join(titles, ", "))
	rendered, err := objmig.Call[struct{}, string](ctx, archiver, report, "Render", struct{}{})
	must(err)
	fmt.Println("---\n" + rendered)
	fmt.Printf("---\nfile-server stats: %+v\n", server.Stats())
}
