package placement

// The reservation ledger closes admission's check-then-act window.
//
// The overload veto alone is a snapshot predicate: a target reads its
// hosted counts, decides there is headroom, and answers — but the
// objects only land later, at InstallCommit. Two coordinators racing
// the same target can both pass the check before either lands, and the
// node overshoots its capacity even though every individual decision
// was correct. The ledger makes admission a *claim*: MigrateBegin
// atomically checks projected utilisation (hosted + already-reserved +
// incoming, in both the object-count and byte dimensions) and records
// the incoming group's (objects, bytes) under the session key, all
// under one mutex. InstallCommit converts the claim to residency (the
// installed objects now show up in the hosted counts, so the claim is
// simply released — after the install, never before, so the sum of
// hosted and reserved never dips below the truth). An abort or the
// session-TTL janitor releases the claim without installing.
//
// The hosted counts are read through a callback *inside* the ledger's
// critical section: a sample read before the lock could miss a claim
// that was converted to residency in between, and the veto would
// undercount. With the callback, every admission sees each in-flight
// group exactly once — as a reservation before its install, as
// residency after.

import (
	"sync"
	"time"

	"objmig/internal/core"
)

// ClaimKey identifies one reservation: the coordinator and its session
// token — the same pair that keys the target's staging session.
type ClaimKey struct {
	From  core.NodeID
	Token uint64
}

// Claim is the reserved footprint of one in-flight migration.
type Claim struct {
	Objects int64
	Bytes   int64
}

type ledgerEntry struct {
	c  Claim
	at time.Time
}

// Ledger is one node's admission ledger. Safe for concurrent use; the
// zero value is not ready, use NewLedger.
type Ledger struct {
	mu       sync.Mutex
	claims   map[ClaimKey]ledgerEntry
	reserved Claim // running sum over claims
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{claims: make(map[ClaimKey]ledgerEntry)}
}

// Admit atomically runs the overload veto against hosted-plus-reserved
// load and, if the group fits, records the claim. hosted is invoked
// under the ledger lock and must return the node's authoritative local
// sample (objects, bytes, capacities); ratio <= 0 selects the default
// 1. A re-admission under an existing key replaces the old claim (the
// session layer rejects duplicate sessions before admission, so this
// only matters for retried one-shot installs). Reports whether the
// claim was recorded.
func (l *Ledger) Admit(key ClaimKey, c Claim, ratio float64, hosted func() Sample) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, ok := l.claims[key]; ok {
		l.reserved.Objects -= old.c.Objects
		l.reserved.Bytes -= old.c.Bytes
		delete(l.claims, key)
	}
	s := hosted()
	s.Objects += l.reserved.Objects
	s.Bytes += l.reserved.Bytes
	if Overloaded(s, int(c.Objects), c.Bytes, ratio) {
		return false
	}
	l.claims[key] = ledgerEntry{c: c, at: time.Now()}
	l.reserved.Objects += c.Objects
	l.reserved.Bytes += c.Bytes
	return true
}

// Release drops the claim under key (commit after install, abort, or
// TTL expiry alike) and reports whether one existed.
func (l *Ledger) Release(key ClaimKey) (Claim, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.claims[key]
	if !ok {
		return Claim{}, false
	}
	delete(l.claims, key)
	l.reserved.Objects -= e.c.Objects
	l.reserved.Bytes -= e.c.Bytes
	return e.c, true
}

// Reserved returns the current reserved totals (the
// objmig_placement_reserved_bytes gauge's source).
func (l *Ledger) Reserved() Claim {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reserved
}

// ExpireBefore releases every claim stamped before cutoff — the
// backstop behind the session janitor, for claims whose session was
// lost without a dropSession (should not happen; belt and braces).
// Returns the total footprint released.
func (l *Ledger) ExpireBefore(cutoff time.Time) Claim {
	l.mu.Lock()
	defer l.mu.Unlock()
	var freed Claim
	for key, e := range l.claims {
		if e.at.Before(cutoff) {
			delete(l.claims, key)
			l.reserved.Objects -= e.c.Objects
			l.reserved.Bytes -= e.c.Bytes
			freed.Objects += e.c.Objects
			freed.Bytes += e.c.Bytes
		}
	}
	return freed
}

// ShedTarget elects the peer an overloaded host should push a group
// to, or reports (ok=false) that no peer has room. Where Score is
// affinity-first (load only discounts), shedding is headroom-first:
// the elected peer is the one whose projected utilisation after
// receiving the group is lowest, and any peer whose projection would
// reach shedRatio (<= 0 selects 1) is excluded — a shed never pushes
// its target past the target's own shed threshold, which is what
// keeps two shedding nodes from ping-ponging a closure. Affinity
// breaks projection ties (prefer the node that also wants the group),
// then the lexically smaller node, so identical inputs elect
// identically regardless of view iteration order. Peers without a
// fresh sample are skipped: no headroom evidence, no shed. Peers that
// are not healthy (degraded or critical) are vetoed — shedding exists
// to relieve pressure, and a sick receiver would just convert one
// overload into another incident.
func ShedTarget(g Group, v *View, shedRatio float64) (Decision, bool) {
	if shedRatio <= 0 {
		shedRatio = 1
	}
	var dec Decision
	bestUtil, bestAff := 0.0, int64(0)
	for _, s := range v.Snapshot() { // sorted by node: deterministic
		if s.Node == g.Self {
			continue
		}
		if s.Health >= HealthDegraded {
			dec.Vetoed = append(dec.Vetoed, s.Node)
			continue
		}
		util := Utilisation(s, g.Members, g.Bytes)
		if util >= shedRatio {
			dec.Vetoed = append(dec.Vetoed, s.Node)
			continue
		}
		aff := g.PerNode[s.Node]
		if dec.Target == "" || util < bestUtil ||
			(util == bestUtil && aff > bestAff) {
			if dec.Target != "" && dec.Score > dec.RunnerUp {
				dec.RunnerUp = dec.Score
			}
			dec.Target, dec.Score = s.Node, 1-util
			bestUtil, bestAff = util, aff
		} else if score := 1 - util; score > dec.RunnerUp {
			dec.RunnerUp = score
		}
	}
	return dec, dec.Target != ""
}
