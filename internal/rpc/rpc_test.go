package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"objmig/internal/transport"
	"objmig/internal/wire"
)

// echoHandler replies with the request body; kind KPing with payload
// "fail" returns a typed error; "slow" blocks until the context dies.
func echoHandler(ctx context.Context, kind wire.Kind, body []byte) ([]byte, error) {
	switch string(body) {
	case "fail":
		return nil, wire.Errorf(wire.CodeFixed, "nope")
	case "boom":
		return nil, errors.New("plain failure")
	case "slow":
		<-ctx.Done()
		return nil, ctx.Err()
	default:
		return body, nil
	}
}

// pipe builds a served listener and a pool on a fresh in-memory
// network, returning the address.
func pipe(t *testing.T, h Handler) (*Server, *Pool, string) {
	t.Helper()
	tr := transport.NewNetwork().Transport()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, h)
	pool := NewPool(tr)
	t.Cleanup(func() {
		_ = pool.Close()
		_ = srv.Close()
	})
	return srv, pool, l.Addr()
}

func TestCallRoundTrip(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	res, err := pool.Call(context.Background(), addr, wire.KPing, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "hello" {
		t.Fatalf("res = %q", res)
	}
}

func TestTypedErrorCrossesWire(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	_, err := pool.Call(context.Background(), addr, wire.KPing, []byte("fail"))
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a RemoteError", err)
	}
	if re.Code != wire.CodeFixed || re.Msg != "nope" {
		t.Fatalf("remote error = %+v", re)
	}
}

func TestPlainErrorBecomesInternal(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	_, err := pool.Call(context.Background(), addr, wire.KPing, []byte("boom"))
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeInternal {
		t.Fatalf("error = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := fmt.Sprintf("msg-%d", i)
			res, err := pool.Call(context.Background(), addr, wire.KPing, []byte(msg))
			if err != nil {
				errs <- err
				return
			}
			if string(res) != msg {
				errs <- fmt.Errorf("mismatched response %q for %q", res, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestContextCancellation(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := pool.Call(ctx, addr, wire.KPing, []byte("slow"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation took far too long")
	}
	// The peer must still work for subsequent calls.
	res, err := pool.Call(context.Background(), addr, wire.KPing, []byte("after"))
	if err != nil || string(res) != "after" {
		t.Fatalf("call after cancellation: %q, %v", res, err)
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	t.Parallel()
	srv, pool, addr := pipe(t, echoHandler)
	done := make(chan error, 1)
	go func() {
		_, err := pool.Call(context.Background(), addr, wire.KPing, []byte("slow"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	_ = srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending call succeeded across server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call not failed by server close")
	}
}

func TestPoolRedialsAfterPeerDeath(t *testing.T) {
	t.Parallel()
	tr := transport.NewNetwork().Transport()
	l, err := tr.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, echoHandler)
	pool := NewPool(tr)
	defer pool.Close()

	if _, err := pool.Call(context.Background(), "svc", wire.KPing, []byte("a")); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	// First call after death may fail while the dead peer is evicted.
	_, _ = pool.Call(context.Background(), "svc", wire.KPing, []byte("b"))

	l2, err := tr.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := Serve(l2, echoHandler)
	defer srv2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := pool.Call(context.Background(), "svc", wire.KPing, []byte("c"))
		if err == nil && string(res) == "c" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClientOnlyPeerRejectsRequests(t *testing.T) {
	t.Parallel()
	tr := transport.NewNetwork().Transport()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	// The "server" here dials back through the accepted conn.
	conns := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			conns <- c
		}
	}()
	clientConn, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	client := NewPeer(clientConn, nil) // client-only: no handler
	defer client.Close()
	serverSide := NewPeer(<-conns, echoHandler)
	defer serverSide.Close()

	_, err = serverSide.Call(context.Background(), wire.KPing, []byte("x"))
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("err = %v, want CodeBadRequest", err)
	}
}

func TestInvalidKindRejected(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	_, err := pool.Call(context.Background(), addr, wire.Kind(99), []byte("x"))
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("err = %v, want CodeBadRequest", err)
	}
}

func TestPoolCloseRejectsCalls(t *testing.T) {
	t.Parallel()
	_, pool, addr := pipe(t, echoHandler)
	_ = pool.Close()
	if _, err := pool.Call(context.Background(), addr, wire.KPing, nil); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("err = %v, want ErrPeerClosed", err)
	}
}

func TestCallsOverTCP(t *testing.T) {
	t.Parallel()
	tr := transport.TCP{}
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, echoHandler)
	defer srv.Close()
	pool := NewPool(tr)
	defer pool.Close()
	for i := 0; i < 20; i++ {
		msg := fmt.Sprintf("tcp-%d", i)
		res, err := pool.Call(context.Background(), l.Addr(), wire.KPing, []byte(msg))
		if err != nil || string(res) != msg {
			t.Fatalf("call %d: %q, %v", i, res, err)
		}
	}
}
