package core

import (
	"fmt"
	"testing"
)

// BenchmarkPolicyOnMove measures one policy decision — the per-request
// cost a host pays at its object table.
func BenchmarkPolicyOnMove(b *testing.B) {
	for _, kind := range []PolicyKind{
		PolicyConventional, PolicyPlacement, PolicyCompareNodes, PolicyCompareReinstantiate,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			p := PolicyFor(kind)
			var st ObjState
			nodes := []NodeID{"a", "b", "c", "d"}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := MoveRequest{From: nodes[i%len(nodes)], Block: BlockID(i)}
				dec := p.OnMove(&st, "a", req)
				_ = dec
				p.OnEnd(&st, "a", EndRequest{From: req.From, Block: req.Block})
			}
		})
	}
}

// BenchmarkClosure measures working-set computation on rings of
// attached objects (the Fig. 16 shape).
func BenchmarkClosure(b *testing.B) {
	for _, size := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("ring-%d", size), func(b *testing.B) {
			g := NewAttachGraph(AttachUnrestricted)
			objs := make([]OID, size)
			for i := range objs {
				objs[i] = OID{Origin: "n", Seq: uint64(i)}
			}
			for i := range objs {
				g.Attach(objs[i], objs[(i+1)%size], AllianceID(i%3))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := g.Closure(objs[i%size], NoAlliance); len(got) != size {
					b.Fatalf("closure = %d", len(got))
				}
			}
		})
	}
}
