// Package framebuf recycles wire-frame buffers across the rpc layer
// and the transports. Every request and response a node sends or
// receives passes through exactly one of these buffers: the rpc layer
// encodes messages straight into a pooled frame (header first, body
// appended by wire.MarshalAppend) and recycles the frame once the
// transport has taken it; the transports draw receive buffers from the
// same pool, and the rpc read loop recycles them after dispatch. The
// result is that steady-state traffic — including a streamed group
// migration's InstallChunk frames — allocates O(live frames), not
// O(frames sent).
//
// # Ownership rules
//
// Get hands out a buffer owned exclusively by the caller. Put
// transfers ownership back to the pool; the caller must not touch the
// slice (or any alias of it) afterwards. Whoever consumes a frame must
// therefore fully decode it — wire.Unmarshal copies every variable-
// length field out of the input for exactly this reason — or copy what
// it needs before calling Put. Losing a frame (returning without Put)
// is always safe: the garbage collector reclaims it and the pool just
// misses one reuse.
package framebuf

import (
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from 512 B (smaller than any control
// frame worth pooling) to 4 MiB (comfortably above the default
// migration chunk plus one oversized object). Frames beyond the top
// class — monolithic migrations with chunking disabled — are allocated
// fresh and dropped on Put rather than pinning tens of megabytes in
// the pool.
const (
	minShift   = 9
	maxShift   = 22
	numClasses = maxShift - minShift + 1

	// MaxPooled is the largest buffer capacity the pool retains.
	MaxPooled = 1 << maxShift
)

// pools[c] holds buffers with cap >= 1<<(minShift+c). Entries are
// *[]byte — a pointer fits the interface word, so pooling it never
// allocates — and the pointed-to slice headers are themselves recycled
// through headerPool, making a steady-state Get/Put cycle completely
// allocation-free.
var pools [numClasses]sync.Pool

var headerPool = sync.Pool{New: func() interface{} { return new([]byte) }}

// hits counts Gets served from the pool; misses counts Gets that had
// to allocate fresh (a cold pool, or a frame beyond MaxPooled). The
// ratio is the pool's effectiveness, exported by the telemetry scrape.
var hits, misses atomic.Int64

// Stats returns the pool's lifetime hit/miss counts.
func Stats() (h, m int64) { return hits.Load(), misses.Load() }

// classFor returns the smallest class whose buffers hold n bytes, or
// -1 when n exceeds MaxPooled.
func classFor(n int) int {
	size := 1 << minShift
	for c := 0; c < numClasses; c++ {
		if n <= size {
			return c
		}
		size <<= 1
	}
	return -1
}

// Get returns a zero-length buffer with capacity >= n, drawn from the
// pool when a suitable class has one. Append to it (or reslice with
// b[:n]) and hand it back with Put when done.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		misses.Add(1)
		return make([]byte, 0, n)
	}
	if p, _ := pools[c].Get().(*[]byte); p != nil {
		b := *p
		*p = nil
		headerPool.Put(p)
		hits.Add(1)
		return b[:0]
	}
	misses.Add(1)
	return make([]byte, 0, 1<<(minShift+c))
}

// Put recycles a buffer obtained from Get — or any other buffer; the
// pool files it under the largest class its capacity satisfies.
// Buffers smaller than the smallest class or larger than MaxPooled are
// dropped. The caller must not use b (or any alias) after Put.
func Put(b []byte) {
	cp := cap(b)
	if cp < 1<<minShift || cp > MaxPooled {
		return
	}
	// Largest class with size <= cap, so Get's invariant (popped
	// buffers hold at least the class size) is preserved.
	cls := 0
	for size := 1 << (minShift + 1); cls < numClasses-1 && size <= cp; size <<= 1 {
		cls++
	}
	p := headerPool.Get().(*[]byte)
	*p = b[:0]
	pools[cls].Put(p)
}
