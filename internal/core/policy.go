package core

// This file implements the move-policies of the paper: what happens when
// a move-request or an end-request reaches the current host of an
// object. The decision logic runs at the object's current location
// (paper Fig. 3) in both the simulator and the live runtime; this
// package only decides, it never performs the transfer.

// PolicyKind enumerates the move-policies evaluated in the paper.
type PolicyKind int

const (
	// PolicySedentary never migrates: the "without migration"
	// baseline of every figure.
	PolicySedentary PolicyKind = iota + 1
	// PolicyConventional is the classic Emerald-style move: every
	// move-request migrates the object to the caller (Section 2.3).
	PolicyConventional
	// PolicyPlacement is the paper's transient placement
	// (Section 3.2): the first move-block wins and locks the object
	// until its end-request; conflicting moves are denied.
	PolicyPlacement
	// PolicyCompareNodes is the first dynamic extension
	// (Section 3.3/4.3): per-node counters of open move-requests; the
	// object migrates towards a node holding strictly more open
	// requests than its current host. Migration happens only on
	// move-requests.
	PolicyCompareNodes
	// PolicyCompareReinstantiate additionally migrates on
	// end-requests when some other node then holds a clear majority
	// of open move-requests (Section 4.3, "comparing and
	// reinstantiation").
	PolicyCompareReinstantiate
)

// String returns the paper's name for the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicySedentary:
		return "sedentary"
	case PolicyConventional:
		return "conventional"
	case PolicyPlacement:
		return "placement"
	case PolicyCompareNodes:
		return "compare-nodes"
	case PolicyCompareReinstantiate:
		return "compare-reinstantiate"
	default:
		return "unknown"
	}
}

// Valid reports whether k names a known policy.
func (k PolicyKind) Valid() bool {
	return k >= PolicySedentary && k <= PolicyCompareReinstantiate
}

// LockState is the transient-placement lock: while held, the object is
// sedentary and belongs to one move-block. It travels with the object.
type LockState struct {
	Held  bool
	Owner NodeID
	Block BlockID
}

// ObjState is the migration-relevant per-object state. It is carried
// inside the object's host record and is part of the linearised
// representation transferred on migration, so locks, counters and the
// fixed flag survive moves. All fields are exported for gob.
type ObjState struct {
	// Fixed marks the object sedentary (fix()-primitive,
	// Section 2.2). Fixed objects deny every move and migrate.
	Fixed bool
	// Lock is the transient-placement lock (Section 3.2).
	Lock LockState
	// OpenMoves counts, per node, move-requests that have not yet
	// been matched by an end-request. Only the dynamic policies
	// (Section 3.3) maintain it.
	OpenMoves map[NodeID]int
}

// Clone returns a deep copy of the state (the map is copied).
func (st *ObjState) Clone() ObjState {
	c := *st
	if st.OpenMoves != nil {
		c.OpenMoves = make(map[NodeID]int, len(st.OpenMoves))
		for k, v := range st.OpenMoves {
			c.OpenMoves[k] = v
		}
	}
	return c
}

// openMovesAt returns the open-move count for a node (0 if absent).
func (st *ObjState) openMovesAt(n NodeID) int { return st.OpenMoves[n] }

// incOpen increments the open-move counter for node n.
func (st *ObjState) incOpen(n NodeID) {
	if st.OpenMoves == nil {
		st.OpenMoves = make(map[NodeID]int)
	}
	st.OpenMoves[n]++
}

// decOpen decrements the open-move counter for node n, never below zero,
// and removes exhausted entries to keep the transferred state small.
func (st *ObjState) decOpen(n NodeID) {
	c, ok := st.OpenMoves[n]
	if !ok {
		return
	}
	if c <= 1 {
		delete(st.OpenMoves, n)
		return
	}
	st.OpenMoves[n] = c - 1
}

// MoveRequest is a move-primitive arriving at the object's current host.
type MoveRequest struct {
	From  NodeID  // node the issuing move-block runs on
	Block BlockID // identity of the issuing move-block
}

// EndRequest closes a move-block.
type EndRequest struct {
	From  NodeID
	Block BlockID
}

// MoveAction is the host's reaction to a move-request.
type MoveAction int

const (
	// ActionDeny leaves the object where it is; the issuing block's
	// calls proceed to the object's current location ("the further
	// calls at this node are forwarded to the object").
	ActionDeny MoveAction = iota + 1
	// ActionStay means the object is already at the caller's node; no
	// transfer happens, but the move succeeds (and locks, under
	// placement).
	ActionStay
	// ActionMigrate transfers the object (and, with attachments, its
	// closure) to the caller's node.
	ActionMigrate
)

// DenyReason explains an ActionDeny, mainly for diagnostics and tests.
type DenyReason int

const (
	// ReasonNone: the move was not denied.
	ReasonNone DenyReason = iota
	// ReasonPolicy: the policy never migrates (sedentary).
	ReasonPolicy
	// ReasonFixed: the object is fixed.
	ReasonFixed
	// ReasonLocked: a transient-placement lock is held by another
	// block.
	ReasonLocked
	// ReasonOutvoted: a dynamic policy kept the object at a node with
	// at least as many open move-requests.
	ReasonOutvoted
)

// MoveDecision is the outcome of a move-request.
type MoveDecision struct {
	Action MoveAction
	Reason DenyReason // set when Action == ActionDeny
}

// EndDecision is the outcome of an end-request. Under
// comparing-and-reinstantiation an end may itself trigger a migration.
type EndDecision struct {
	Unlocked  bool   // a placement lock was released
	Migrate   bool   // reinstantiation: migrate the object now
	MigrateTo NodeID // target when Migrate is true
}

// MovePolicy decides move- and end-requests against an object's state.
// Implementations are stateless; all mutable state lives in ObjState so
// that it travels with the object.
type MovePolicy interface {
	Kind() PolicyKind
	// OnMove decides a move-request for an object currently at cur.
	// It may mutate st (grab the lock, bump counters). A decision of
	// ActionMigrate means the caller must transfer the object; if the
	// transfer aborts, it must call Abort to undo state changes.
	OnMove(st *ObjState, cur NodeID, req MoveRequest) MoveDecision
	// OnEnd processes an end-request for an object currently at cur.
	OnEnd(st *ObjState, cur NodeID, req EndRequest) EndDecision
	// Abort undoes the state effects of a granted move whose transfer
	// failed (e.g. target unreachable in the live runtime).
	Abort(st *ObjState, req MoveRequest)
}

// PolicyFor returns the singleton implementation for a kind. It panics
// on an invalid kind; use PolicyKind.Valid to validate input first.
func PolicyFor(kind PolicyKind) MovePolicy {
	switch kind {
	case PolicySedentary:
		return sedentaryPolicy{}
	case PolicyConventional:
		return conventionalPolicy{}
	case PolicyPlacement:
		return placementPolicy{}
	case PolicyCompareNodes:
		return comparePolicy{reinstantiate: false}
	case PolicyCompareReinstantiate:
		return comparePolicy{reinstantiate: true}
	default:
		panic("core: invalid policy kind")
	}
}

// sedentaryPolicy never migrates.
type sedentaryPolicy struct{}

var _ MovePolicy = sedentaryPolicy{}

func (sedentaryPolicy) Kind() PolicyKind { return PolicySedentary }

func (sedentaryPolicy) OnMove(st *ObjState, cur NodeID, req MoveRequest) MoveDecision {
	if cur == req.From {
		return MoveDecision{Action: ActionStay}
	}
	return MoveDecision{Action: ActionDeny, Reason: ReasonPolicy}
}

func (sedentaryPolicy) OnEnd(st *ObjState, cur NodeID, req EndRequest) EndDecision {
	return EndDecision{}
}

func (sedentaryPolicy) Abort(st *ObjState, req MoveRequest) {}

// conventionalPolicy always migrates to the caller (unless fixed).
type conventionalPolicy struct{}

var _ MovePolicy = conventionalPolicy{}

func (conventionalPolicy) Kind() PolicyKind { return PolicyConventional }

func (conventionalPolicy) OnMove(st *ObjState, cur NodeID, req MoveRequest) MoveDecision {
	if st.Fixed {
		return MoveDecision{Action: ActionDeny, Reason: ReasonFixed}
	}
	if cur == req.From {
		return MoveDecision{Action: ActionStay}
	}
	return MoveDecision{Action: ActionMigrate}
}

func (conventionalPolicy) OnEnd(st *ObjState, cur NodeID, req EndRequest) EndDecision {
	return EndDecision{}
}

func (conventionalPolicy) Abort(st *ObjState, req MoveRequest) {}

// placementPolicy is transient placement (Section 3.2): first mover
// wins and locks; the lock is released by the owner's end-request;
// conflicting end-requests are ignored.
type placementPolicy struct{}

var _ MovePolicy = placementPolicy{}

func (placementPolicy) Kind() PolicyKind { return PolicyPlacement }

func (placementPolicy) OnMove(st *ObjState, cur NodeID, req MoveRequest) MoveDecision {
	if st.Fixed {
		return MoveDecision{Action: ActionDeny, Reason: ReasonFixed}
	}
	if st.Lock.Held {
		if st.Lock.Owner == req.From && st.Lock.Block == req.Block {
			// Idempotent re-delivery of the winning move.
			return MoveDecision{Action: ActionStay}
		}
		return MoveDecision{Action: ActionDeny, Reason: ReasonLocked}
	}
	// Grab the lock at grant time: a second move arriving while the
	// object is in transit must already see it locked. (The paper
	// locks "as soon as it arrives"; granting atomically at the old
	// host is behaviourally identical and race-free.)
	st.Lock = LockState{Held: true, Owner: req.From, Block: req.Block}
	if cur == req.From {
		return MoveDecision{Action: ActionStay}
	}
	return MoveDecision{Action: ActionMigrate}
}

func (placementPolicy) OnEnd(st *ObjState, cur NodeID, req EndRequest) EndDecision {
	if st.Lock.Held && st.Lock.Owner == req.From && st.Lock.Block == req.Block {
		st.Lock = LockState{}
		return EndDecision{Unlocked: true}
	}
	// "...the end-request is simply ignored, as nothing has to be
	// done."
	return EndDecision{}
}

func (placementPolicy) Abort(st *ObjState, req MoveRequest) {
	if st.Lock.Held && st.Lock.Owner == req.From && st.Lock.Block == req.Block {
		st.Lock = LockState{}
	}
}

// comparePolicy implements the two dynamic strategies of Section 3.3.
// Both maintain per-node counters of open move-requests; the object is
// kept at a node holding a maximal number of open requests.
type comparePolicy struct {
	reinstantiate bool
}

var (
	_ MovePolicy = comparePolicy{}
)

func (p comparePolicy) Kind() PolicyKind {
	if p.reinstantiate {
		return PolicyCompareReinstantiate
	}
	return PolicyCompareNodes
}

func (p comparePolicy) OnMove(st *ObjState, cur NodeID, req MoveRequest) MoveDecision {
	st.incOpen(req.From)
	if st.Fixed {
		return MoveDecision{Action: ActionDeny, Reason: ReasonFixed}
	}
	if cur == req.From {
		return MoveDecision{Action: ActionStay}
	}
	// Migrate only towards a strictly leading node: "it tries to keep
	// objects always at those nodes from where the most move-requests
	// have been issued".
	if st.openMovesAt(req.From) > st.openMovesAt(cur) {
		return MoveDecision{Action: ActionMigrate}
	}
	return MoveDecision{Action: ActionDeny, Reason: ReasonOutvoted}
}

func (p comparePolicy) OnEnd(st *ObjState, cur NodeID, req EndRequest) EndDecision {
	st.decOpen(req.From)
	if !p.reinstantiate || st.Fixed {
		return EndDecision{}
	}
	// Reinstantiation: migrate on end only when some other node holds
	// a clear majority of all open move-requests (strictly more than
	// half) and strictly more than the current host. Iterate
	// deterministically for reproducibility.
	curCount := st.openMovesAt(cur)
	total := 0
	nodes := make([]NodeID, 0, len(st.OpenMoves))
	for n, c := range st.OpenMoves {
		nodes = append(nodes, n)
		total += c
	}
	sortNodeIDs(nodes)
	for _, n := range nodes {
		c := st.OpenMoves[n]
		if n == cur {
			continue
		}
		if 2*c > total && c > curCount {
			return EndDecision{Migrate: true, MigrateTo: n}
		}
	}
	return EndDecision{}
}

func (p comparePolicy) Abort(st *ObjState, req MoveRequest) {
	// The open request stays open (the block is still running); only
	// the transfer failed. Nothing to undo.
}

// sortNodeIDs sorts node IDs lexicographically, in place.
func sortNodeIDs(ns []NodeID) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// PlaceGroup extends a granted placement lock to every member of the
// moved working set: "the system guarantees that attached objects are
// kept together", so a placed block makes its whole working set
// sedentary until the end-request. Conflicting moves then deny on any
// member, which is exactly why conflicting moves "will not lead to the
// migration of ... objects attached to it" (Section 4.4).
func PlaceGroup(members []*ObjState, owner NodeID, block BlockID) {
	for _, st := range members {
		st.Lock = LockState{Held: true, Owner: owner, Block: block}
	}
}

// ReleaseGroup releases every member lock held by the given block. It
// is the group counterpart of the owner's end-request and ignores locks
// held by other blocks.
func ReleaseGroup(members []*ObjState, owner NodeID, block BlockID) {
	for _, st := range members {
		if st.Lock.Held && st.Lock.Owner == owner && st.Lock.Block == block {
			st.Lock = LockState{}
		}
	}
}
