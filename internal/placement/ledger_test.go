package placement

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"objmig/internal/core"
)

// fixedHosted returns a hosted-sample callback for a node with the
// given residency and capacities.
func fixedHosted(objects, bytes, capacity, capBytes int64) func() Sample {
	return func() Sample {
		return Sample{Node: "self", Objects: objects, Bytes: bytes,
			Capacity: capacity, CapBytes: capBytes}
	}
}

// TestLedgerAdmitClaimsHeadroom: sequential admissions consume
// headroom claim by claim; the admission that would overshoot is
// refused even though the hosted counts alone still show room.
func TestLedgerAdmitClaimsHeadroom(t *testing.T) {
	t.Parallel()
	l := NewLedger()
	hosted := fixedHosted(40, 0, 100, 0) // 60 objects of headroom
	for i := 0; i < 3; i++ {
		key := ClaimKey{From: "c", Token: uint64(i)}
		if !l.Admit(key, Claim{Objects: 20}, 1, hosted) {
			t.Fatalf("admission %d refused with headroom remaining", i)
		}
	}
	// 40 hosted + 60 reserved = exactly at capacity; one more object
	// must be refused.
	if l.Admit(ClaimKey{From: "c", Token: 9}, Claim{Objects: 1}, 1, hosted) {
		t.Fatal("admission past capacity succeeded")
	}
	if got := l.Reserved(); got.Objects != 60 {
		t.Fatalf("reserved = %+v, want 60 objects", got)
	}
}

// TestLedgerByteDimension: the byte dimension vetoes independently of
// the object count — a group that fits by count but not by bytes is
// refused, and vice versa.
func TestLedgerByteDimension(t *testing.T) {
	t.Parallel()
	l := NewLedger()
	hosted := fixedHosted(1, 900, 100, 1000)
	if l.Admit(ClaimKey{Token: 1}, Claim{Objects: 1, Bytes: 200}, 1, hosted) {
		t.Fatal("byte overshoot admitted (1 object, 200 bytes into 100 headroom)")
	}
	if !l.Admit(ClaimKey{Token: 2}, Claim{Objects: 50, Bytes: 100}, 1, hosted) {
		t.Fatal("group fitting both dimensions refused")
	}
	// The 100 reserved bytes now count: nothing further fits.
	if l.Admit(ClaimKey{Token: 3}, Claim{Objects: 1, Bytes: 1}, 1, hosted) {
		t.Fatal("admission ignored reserved bytes")
	}
}

// TestLedgerReleaseRestoresHeadroom: a released claim returns its
// footprint, and re-admission under the same key replaces rather than
// accumulates.
func TestLedgerReleaseRestoresHeadroom(t *testing.T) {
	t.Parallel()
	l := NewLedger()
	hosted := fixedHosted(0, 0, 10, 0)
	key := ClaimKey{From: "c", Token: 1}
	if !l.Admit(key, Claim{Objects: 8, Bytes: 80}, 1, hosted) {
		t.Fatal("first admission refused")
	}
	// Same key again: replaces the 8-object claim, not 8+8=16 > 10.
	if !l.Admit(key, Claim{Objects: 8, Bytes: 80}, 1, hosted) {
		t.Fatal("same-key re-admission refused (claim accumulated instead of replaced)")
	}
	c, ok := l.Release(key)
	if !ok || c.Objects != 8 || c.Bytes != 80 {
		t.Fatalf("release = %+v, %v; want the 8/80 claim", c, ok)
	}
	if _, ok := l.Release(key); ok {
		t.Fatal("double release reported a claim")
	}
	if got := l.Reserved(); got.Objects != 0 || got.Bytes != 0 {
		t.Fatalf("reserved after release = %+v, want zero", got)
	}
	if !l.Admit(ClaimKey{Token: 2}, Claim{Objects: 10}, 1, hosted) {
		t.Fatal("headroom not restored after release")
	}
}

// TestLedgerExpireBefore: only claims stamped before the cutoff are
// swept, and the freed footprint is reported.
func TestLedgerExpireBefore(t *testing.T) {
	t.Parallel()
	l := NewLedger()
	hosted := fixedHosted(0, 0, 100, 0)
	if !l.Admit(ClaimKey{Token: 1}, Claim{Objects: 5, Bytes: 50}, 1, hosted) {
		t.Fatal("admission refused")
	}
	if freed := l.ExpireBefore(time.Now().Add(-time.Minute)); freed.Objects != 0 {
		t.Fatalf("fresh claim expired: %+v", freed)
	}
	freed := l.ExpireBefore(time.Now().Add(time.Minute))
	if freed.Objects != 5 || freed.Bytes != 50 {
		t.Fatalf("expiry freed %+v, want 5/50", freed)
	}
	if got := l.Reserved(); got.Objects != 0 || got.Bytes != 0 {
		t.Fatalf("reserved after expiry = %+v, want zero", got)
	}
}

// TestLedgerConcurrentAdmission (-race): K coordinators race one
// near-capacity ledger; the admitted claims never collectively
// overshoot the headroom, whichever interleaving the scheduler picks.
func TestLedgerConcurrentAdmission(t *testing.T) {
	t.Parallel()
	const (
		coordinators = 16
		claimObjects = 30
		claimBytes   = 300
	)
	l := NewLedger()
	// 100 objects / 1000 bytes of headroom: at most 3 of the 16 claims
	// fit in either dimension.
	hosted := fixedHosted(0, 0, 100, 1000)
	var wg sync.WaitGroup
	admitted := make([]bool, coordinators)
	for i := 0; i < coordinators; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := ClaimKey{From: core.NodeID(fmt.Sprintf("c%d", i)), Token: uint64(i)}
			admitted[i] = l.Admit(key, Claim{Objects: claimObjects, Bytes: claimBytes}, 1, hosted)
		}(i)
	}
	wg.Wait()
	var wins int
	for _, ok := range admitted {
		if ok {
			wins++
		}
	}
	if wins != 3 {
		t.Fatalf("%d of %d claims admitted, headroom fits exactly 3", wins, coordinators)
	}
	if got := l.Reserved(); got.Objects != 3*claimObjects || got.Bytes != 3*claimBytes {
		t.Fatalf("reserved = %+v, want exactly the 3 admitted claims", got)
	}
}

// --- ShedTarget ---

// shedView builds a view from samples.
func shedView(samples ...Sample) *View {
	v := NewView(time.Minute)
	for _, s := range samples {
		v.Observe(s)
	}
	return v
}

// TestShedTargetPicksHeadroom: the elected peer is the one with the
// lowest projected utilisation, and peers whose projection reaches the
// shed ratio are vetoed.
func TestShedTargetPicksHeadroom(t *testing.T) {
	t.Parallel()
	g := Group{Self: "self", Members: 5, Bytes: 50}
	v := shedView(
		Sample{Node: "busy", Objects: 80, Capacity: 100, Seq: 1},  // projected 0.85 >= 0.8: vetoed
		Sample{Node: "cosy", Objects: 20, Capacity: 100, Seq: 1},  // projected 0.25
		Sample{Node: "tight", Objects: 60, Capacity: 100, Seq: 1}, // projected 0.65
		Sample{Node: "self", Objects: 95, Capacity: 100, Seq: 1},  // the overloaded host itself
	)
	dec, ok := ShedTarget(g, v, 0.8)
	if !ok || dec.Target != "cosy" {
		t.Fatalf("elected %q (ok=%v), want cosy", dec.Target, ok)
	}
	if len(dec.Vetoed) != 1 || dec.Vetoed[0] != "busy" {
		t.Fatalf("vetoed = %v, want [busy]", dec.Vetoed)
	}
}

// TestShedTargetNeverPushesPastRatio: when every peer's projection
// reaches the shed ratio there is no target — an overloaded cluster
// does not ping-pong groups between equally drowning nodes.
func TestShedTargetNeverPushesPastRatio(t *testing.T) {
	t.Parallel()
	g := Group{Self: "self", Members: 10, Bytes: 0}
	v := shedView(
		Sample{Node: "a", Objects: 75, Capacity: 100, Seq: 1}, // projected 0.85
		Sample{Node: "b", Objects: 90, Capacity: 100, Seq: 1}, // projected 1.0
	)
	if dec, ok := ShedTarget(g, v, 0.8); ok {
		t.Fatalf("elected %q with no peer under the shed ratio", dec.Target)
	} else if len(dec.Vetoed) != 2 {
		t.Fatalf("vetoed = %v, want both peers", dec.Vetoed)
	}
}

// TestShedTargetTieBreaks: equal projections prefer the peer with the
// higher affinity for the group, then the lexically smaller node.
func TestShedTargetTieBreaks(t *testing.T) {
	t.Parallel()
	g := Group{Self: "self", Members: 1,
		PerNode: map[core.NodeID]int64{"z-wanted": 9, "a-cold": 0}}
	v := shedView(
		Sample{Node: "a-cold", Objects: 10, Capacity: 100, Seq: 1},
		Sample{Node: "z-wanted", Objects: 10, Capacity: 100, Seq: 1},
	)
	dec, ok := ShedTarget(g, v, 0.8)
	if !ok || dec.Target != "z-wanted" {
		t.Fatalf("elected %q, want the affine z-wanted", dec.Target)
	}
	// No affinity anywhere: lexical order decides.
	g.PerNode = nil
	dec, ok = ShedTarget(g, v, 0.8)
	if !ok || dec.Target != "a-cold" {
		t.Fatalf("elected %q, want lexically-smaller a-cold", dec.Target)
	}
}

// TestShedTargetByteHeadroom: a byte-capped peer with no byte headroom
// is vetoed even when its object count is nearly empty.
func TestShedTargetByteHeadroom(t *testing.T) {
	t.Parallel()
	g := Group{Self: "self", Members: 1, Bytes: 500}
	v := shedView(
		Sample{Node: "thin", Objects: 1, Bytes: 600, Capacity: 100, CapBytes: 1000, Seq: 1}, // byte projection 1.1
		Sample{Node: "wide", Objects: 50, Bytes: 100, Capacity: 100, CapBytes: 1000, Seq: 1},
	)
	dec, ok := ShedTarget(g, v, 0.8)
	if !ok || dec.Target != "wide" {
		t.Fatalf("elected %q (ok=%v), want wide", dec.Target, ok)
	}
	if len(dec.Vetoed) != 1 || dec.Vetoed[0] != "thin" {
		t.Fatalf("vetoed = %v, want [thin]", dec.Vetoed)
	}
}

// --- Byte-weighted Score properties ---

// TestScoreMonotoneInFreeBytes: lowering a candidate's resident bytes
// (more byte headroom, everything else equal) never lowers its score.
func TestScoreMonotoneInFreeBytes(t *testing.T) {
	t.Parallel()
	g := Group{Self: "self", Members: 2, Bytes: 100, Local: 1,
		PerNode: map[core.NodeID]int64{"cand": 100}}
	opt := Options{Hysteresis: 1, OverloadRatio: 1}
	prev := -1.0
	for bytes := int64(900); bytes >= 0; bytes -= 100 {
		v := shedView(Sample{Node: "cand", Objects: 1, Bytes: bytes,
			Capacity: 100, CapBytes: 1000, Seq: 1})
		dec, ok := Score(g, v, opt)
		if !ok || dec.Target != "cand" {
			t.Fatalf("bytes=%d: elected %q (ok=%v), want cand", bytes, dec.Target, ok)
		}
		if dec.Score < prev {
			t.Fatalf("score fell from %v to %v as free bytes grew", prev, dec.Score)
		}
		prev = dec.Score
	}
}

// TestScoreNeverElectsByteVetoed: however hot its affinity, a
// candidate past its byte capacity is never elected.
func TestScoreNeverElectsByteVetoed(t *testing.T) {
	t.Parallel()
	g := Group{Self: "self", Members: 1, Bytes: 200, Local: 0,
		PerNode: map[core.NodeID]int64{"hot": 1 << 20, "mild": 10}}
	v := shedView(
		Sample{Node: "hot", Objects: 1, Bytes: 900, Capacity: 100, CapBytes: 1000, Seq: 1}, // projected 1.1: vetoed
		Sample{Node: "mild", Objects: 1, Bytes: 0, Capacity: 100, CapBytes: 1000, Seq: 1},
	)
	dec, ok := Score(g, v, Options{Hysteresis: 1})
	if !ok || dec.Target != "mild" {
		t.Fatalf("elected %q (ok=%v), want mild", dec.Target, ok)
	}
	for _, n := range dec.Vetoed {
		if n == dec.Target {
			t.Fatalf("elected a vetoed node %q", n)
		}
	}
	if len(dec.Vetoed) != 1 || dec.Vetoed[0] != "hot" {
		t.Fatalf("vetoed = %v, want [hot]", dec.Vetoed)
	}
}

// TestScoreDeterministicUnderPermutation: the decision must not depend
// on the order samples were observed or the map iteration order of the
// group's per-node affinity. (With the load discount active the exact
// scores also depend on sample ages — live clock readings — so the
// affinities are kept distinct enough that sub-millisecond age jitter
// cannot reorder them.)
func TestScoreDeterministicUnderPermutation(t *testing.T) {
	t.Parallel()
	samples := []Sample{
		{Node: "a", Objects: 10, Bytes: 100, Capacity: 100, CapBytes: 1000, Seq: 1},
		{Node: "b", Objects: 10, Bytes: 100, Capacity: 100, CapBytes: 1000, Seq: 1},
		{Node: "c", Objects: 50, Bytes: 990, Capacity: 100, CapBytes: 1000, Seq: 1}, // byte-vetoed
	}
	g := Group{Self: "self", Members: 3, Bytes: 90, Local: 1,
		PerNode: map[core.NodeID]int64{"a": 50, "b": 40, "c": 1000}}
	opt := Options{Hysteresis: 1}
	perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}, {0, 2, 1}, {1, 0, 2}}
	for _, p := range perms {
		v := NewView(time.Minute)
		for _, i := range p {
			v.Observe(samples[i])
		}
		dec, ok := Score(g, v, opt)
		if !ok || dec.Target != "a" {
			t.Fatalf("permutation %v elected %q (ok=%v), want a every time", p, dec.Target, ok)
		}
		if len(dec.Vetoed) != 1 || dec.Vetoed[0] != "c" {
			t.Fatalf("permutation %v vetoed %v, want [c]", p, dec.Vetoed)
		}
	}
}

// TestScoreLexicalTieBreak: with the load discount disabled (scores
// are pure affinity, no clock dependence) an exact tie nominates the
// lexically smaller node under every observation order — and never
// actually moves, because a tied winner fails strict domination.
func TestScoreLexicalTieBreak(t *testing.T) {
	t.Parallel()
	samples := []Sample{
		{Node: "b", Objects: 10, Bytes: 100, Capacity: 100, CapBytes: 1000, Seq: 1},
		{Node: "a", Objects: 10, Bytes: 100, Capacity: 100, CapBytes: 1000, Seq: 1},
	}
	g := Group{Self: "self", Members: 1, Bytes: 10,
		PerNode: map[core.NodeID]int64{"a": 40, "b": 40}}
	opt := Options{Hysteresis: 1, LoadDiscount: -1}
	for _, p := range [][]int{{0, 1}, {1, 0}} {
		v := NewView(time.Minute)
		for _, i := range p {
			v.Observe(samples[i])
		}
		dec, ok := Score(g, v, opt)
		if ok {
			t.Fatalf("permutation %v moved on an exact tie", p)
		}
		if dec.Target != "a" {
			t.Fatalf("permutation %v nominated %q, want the lexical winner a", p, dec.Target)
		}
	}
}

// TestShedTargetSkipsUnhealthy: shedding never elects a degraded or
// critical peer, even when it has the most headroom.
func TestShedTargetSkipsUnhealthy(t *testing.T) {
	t.Parallel()
	v := NewView(time.Minute)
	v.Observe(Sample{Node: "roomy", Objects: 0, Capacity: 100, Seq: 1, Health: HealthDegraded})
	v.Observe(Sample{Node: "tight", Objects: 60, Capacity: 100, Seq: 1})

	g := Group{Self: "s", Members: 5}
	dec, ok := ShedTarget(g, v, 1)
	if !ok || dec.Target != "tight" {
		t.Fatalf("ShedTarget = %+v, %v; want tight", dec, ok)
	}
	if len(dec.Vetoed) != 1 || dec.Vetoed[0] != "roomy" {
		t.Fatalf("vetoed = %v, want [roomy]", dec.Vetoed)
	}

	// All peers sick: no shed.
	v2 := NewView(time.Minute)
	v2.Observe(Sample{Node: "a", Capacity: 100, Seq: 1, Health: HealthCritical})
	if _, ok := ShedTarget(g, v2, 1); ok {
		t.Fatal("shed elected a critical peer")
	}
}
