package main

import (
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if code := run([]string{"-experiment", "table1"}, &out); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{
		"Fig. 8", "Fig. 12", "Fig. 16",
		"D  (number of nodes)", "exp. mean(1)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table1 output missing %q", want)
		}
	}
}

func TestRunSingleFigureQuick(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	code := run([]string{
		"-experiment", "fig12", "-quick", "-maxcalls", "3000", "-parallel", "4",
	}, &out)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	s := out.String()
	for _, want := range []string{
		"Fig. 12", "without Migration", "Transient Placement",
		"break-even migration vs sedentary", "cells in",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSV(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	code := run([]string{
		"-experiment", "fig8", "-quick", "-maxcalls", "2000", "-csv", "-parallel", "4",
	}, &out)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	s := out.String()
	if !strings.HasPrefix(s, "# Fig. 8") {
		t.Fatalf("CSV header missing:\n%.200s", s)
	}
	if !strings.Contains(s, "x,\"without Migration\"") {
		t.Fatalf("CSV columns missing:\n%.200s", s)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if code := run([]string{"-experiment", "fig99"}, &out); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunBadFlags(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}
