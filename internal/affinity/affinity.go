// Package affinity tracks per-object, per-caller access pressure at a
// node: how often each object hosted here is used, and from where. The
// live runtime's autopilot (see the root package) scans these counters
// to migrate objects towards their heaviest callers — the runtime twin
// of the paper's dynamic compare-the-nodes policies, which in the
// simulator observe open move-requests rather than raw invocations.
//
// The tracker sits on the invoke/serve hot path, so its design is all
// about the cost of Record:
//
//   - Counters are lock-striped by OID hash; a Record takes one shard
//     read-lock to resolve the object's counter block.
//   - Inside a block the local-serve count is a plain atomic and the
//     per-caller counts live in an immutable copy-on-write map of
//     atomics, so the steady state (object known, caller known) is a
//     read-lock, two map reads and one atomic add — no allocation.
//   - A disabled tracker short-circuits on one atomic load, so nodes
//     that never enable the autopilot pay a nanosecond per invoke.
//
// Decay is generational rather than per-entry timers: Decay() halves
// every counter and drops objects whose pressure reached zero, so old
// traffic fades at a rate set by how often the autopilot calls it.
package affinity

import (
	"sort"
	"sync"
	"sync/atomic"

	"objmig/internal/core"
)

// StripeCount is the number of lock stripes (a power of two).
const StripeCount = 64

// Tracker accumulates access-affinity counters for one node. The zero
// value is not usable; call New.
type Tracker struct {
	self    core.NodeID
	enabled atomic.Bool
	stripes [StripeCount]stripe
}

type stripe struct {
	mu   sync.RWMutex
	objs map[core.OID]*counters
}

// callerMap is an immutable snapshot of per-caller counters. Lookups
// run lock-free against the current snapshot; adding a caller installs
// a fresh copy.
type callerMap map[core.NodeID]*atomic.Int64

// counters is one object's counter block.
type counters struct {
	local  atomic.Int64 // serves for callers on this node
	remote atomic.Pointer[callerMap]
	mu     sync.Mutex // serialises copy-on-write caller inserts
}

// New returns a disabled tracker for the given node. Record is a no-op
// until SetEnabled(true).
func New(self core.NodeID) *Tracker {
	t := &Tracker{self: self}
	for i := range t.stripes {
		t.stripes[i].objs = make(map[core.OID]*counters)
	}
	return t
}

// SetEnabled switches recording on or off. Disabling does not clear
// accumulated counters (Reset does).
func (t *Tracker) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether the tracker is recording.
func (t *Tracker) Enabled() bool { return t.enabled.Load() }

// stripeIndex hashes an OID onto a stripe (the shared core.HashOID,
// masked).
func stripeIndex(id core.OID) int {
	return int(core.HashOID(id) & (StripeCount - 1))
}

// Record notes one access to obj issued from the given node. An empty
// caller is unattributable and ignored; the tracker's own node counts
// as a local serve. Steady-state cost is two map reads and an atomic
// add with no allocation.
func (t *Tracker) Record(obj core.OID, from core.NodeID) {
	if !t.enabled.Load() {
		return
	}
	if from == "" {
		return
	}
	st := &t.stripes[stripeIndex(obj)]
	st.mu.RLock()
	c := st.objs[obj]
	st.mu.RUnlock()
	if c == nil {
		c = st.insert(obj)
	}
	if from == t.self {
		c.local.Add(1)
		return
	}
	if m := c.remote.Load(); m != nil {
		if ctr := (*m)[from]; ctr != nil {
			ctr.Add(1)
			return
		}
	}
	c.add(from, 1)
}

// RecordLocal notes one access to obj served for a caller on this node.
func (t *Tracker) RecordLocal(obj core.OID) { t.Record(obj, t.self) }

// insert resolves or creates the counter block for obj.
func (st *stripe) insert(obj core.OID) *counters {
	st.mu.Lock()
	defer st.mu.Unlock()
	if c, ok := st.objs[obj]; ok {
		return c
	}
	c := &counters{}
	st.objs[obj] = c
	return c
}

// add bumps a caller's counter, installing the caller with a
// copy-on-write map update when it is new.
func (c *counters) add(from core.NodeID, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.remote.Load()
	if old != nil {
		if ctr := (*old)[from]; ctr != nil {
			ctr.Add(delta)
			return
		}
	}
	var next callerMap
	if old == nil {
		next = make(callerMap, 1)
	} else {
		next = make(callerMap, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	ctr := &atomic.Int64{}
	ctr.Store(delta)
	next[from] = ctr
	c.remote.Store(&next)
}

// CallerLoad is one remote caller's observed pressure on an object.
type CallerLoad struct {
	Node  core.NodeID // the calling node
	Count int64       // decayed invocation count attributed to it
}

// ObjLoad is the tracker's view of one object: local serves, remote
// callers in descending pressure order, and the total.
type ObjLoad struct {
	Obj     core.OID     // the observed object
	Local   int64        // serves for local callers
	Callers []CallerLoad // remote callers, heaviest first
	Total   int64        // local plus all remote pressure
}

// load snapshots one counter block.
func loadOf(obj core.OID, c *counters) ObjLoad {
	l := ObjLoad{Obj: obj, Local: c.local.Load()}
	l.Total = l.Local
	if m := c.remote.Load(); m != nil {
		l.Callers = make([]CallerLoad, 0, len(*m))
		for node, ctr := range *m {
			v := ctr.Load()
			if v == 0 {
				continue
			}
			l.Callers = append(l.Callers, CallerLoad{Node: node, Count: v})
			l.Total += v
		}
		sort.Slice(l.Callers, func(i, j int) bool {
			if l.Callers[i].Count != l.Callers[j].Count {
				return l.Callers[i].Count > l.Callers[j].Count
			}
			return l.Callers[i].Node < l.Callers[j].Node
		})
	}
	return l
}

// Hot returns every tracked object whose total pressure is at least
// min, callers sorted by descending count (ties broken by node ID for
// determinism). The result is a snapshot; counters keep moving.
func (t *Tracker) Hot(min int64) []ObjLoad {
	var out []ObjLoad
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.RLock()
		for obj, c := range st.objs {
			if l := loadOf(obj, c); l.Total >= min {
				out = append(out, l)
			}
		}
		st.mu.RUnlock()
	}
	return out
}

// CallerNodes returns the distinct remote caller nodes observed
// across all tracked objects, sorted. This is the load-gossip
// heartbeat's peer-discovery query: unlike Hot it builds no
// per-object snapshots — one set accumulation over the stripes.
func (t *Tracker) CallerNodes() []core.NodeID {
	seen := make(map[core.NodeID]bool)
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.RLock()
		for _, c := range st.objs {
			if m := c.remote.Load(); m != nil {
				for node := range *m {
					seen[node] = true
				}
			}
		}
		st.mu.RUnlock()
	}
	out := make([]core.NodeID, 0, len(seen))
	for node := range seen {
		out = append(out, node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Load returns the tracker's view of a single object.
func (t *Tracker) Load(obj core.OID) ObjLoad {
	st := &t.stripes[stripeIndex(obj)]
	st.mu.RLock()
	c := st.objs[obj]
	st.mu.RUnlock()
	if c == nil {
		return ObjLoad{Obj: obj}
	}
	return loadOf(obj, c)
}

// Total returns just the object's total pressure (local plus all
// remote callers), without materialising the per-caller breakdown —
// the allocation-free read the shed planner runs per hosted object.
func (t *Tracker) Total(obj core.OID) int64 {
	st := &t.stripes[stripeIndex(obj)]
	st.mu.RLock()
	c := st.objs[obj]
	st.mu.RUnlock()
	if c == nil {
		return 0
	}
	total := c.local.Load()
	if m := c.remote.Load(); m != nil {
		for _, ctr := range *m {
			total += ctr.Load()
		}
	}
	return total
}

// Decay halves every counter and forgets objects whose total pressure
// reached zero. Calling it at a fixed period gives the counters an
// exponential half-life without any per-entry timestamps. Increments
// racing a decay may be folded into the halving; the counters are a
// heuristic, not an audit log.
func (t *Tracker) Decay() {
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		for obj, c := range st.objs {
			total := c.local.Load() / 2
			c.local.Store(total)
			if m := c.remote.Load(); m != nil {
				for _, ctr := range *m {
					v := ctr.Load() / 2
					ctr.Store(v)
					total += v
				}
			}
			if total == 0 {
				delete(st.objs, obj)
			}
		}
		st.mu.Unlock()
	}
}

// Obs is one transferable (object, caller, count) observation — the
// gossip currency piggy-backed on home updates when objects migrate.
type Obs struct {
	Obj   core.OID    // the observed object
	From  core.NodeID // the caller the pressure is attributed to
	Count int64       // decayed invocation count at lift time
}

// Take removes the listed objects from the tracker and returns their
// observations (local serves reported under the tracker's own node).
// It is called when objects migrate away: the counters no longer
// describe this node's serves, but they are still valuable gossip.
// A disabled tracker returns nil.
func (t *Tracker) Take(ids []core.OID) []Obs {
	if !t.enabled.Load() {
		return nil
	}
	var out []Obs
	for _, id := range ids {
		st := &t.stripes[stripeIndex(id)]
		st.mu.Lock()
		c := st.objs[id]
		delete(st.objs, id)
		st.mu.Unlock()
		if c == nil {
			continue
		}
		if v := c.local.Load(); v > 0 {
			out = append(out, Obs{Obj: id, From: t.self, Count: v})
		}
		if m := c.remote.Load(); m != nil {
			nodes := make([]core.NodeID, 0, len(*m))
			for node := range *m {
				nodes = append(nodes, node)
			}
			sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
			for _, node := range nodes {
				if v := (*m)[node].Load(); v > 0 {
					out = append(out, Obs{Obj: id, From: node, Count: v})
				}
			}
		}
	}
	return out
}

// Drop forgets the listed objects without reporting them (the object
// departed and its observations travelled some other way).
func (t *Tracker) Drop(ids []core.OID) {
	for _, id := range ids {
		st := &t.stripes[stripeIndex(id)]
		st.mu.Lock()
		delete(st.objs, id)
		st.mu.Unlock()
	}
}

// Merge folds received observations into the tracker (affinity gossip
// from a departing host). Observations about this node's own callers
// count as local serves. A disabled tracker ignores gossip.
func (t *Tracker) Merge(obs []Obs) {
	if !t.enabled.Load() {
		return
	}
	for _, o := range obs {
		if o.Count <= 0 || o.From == "" {
			continue
		}
		st := &t.stripes[stripeIndex(o.Obj)]
		st.mu.RLock()
		c := st.objs[o.Obj]
		st.mu.RUnlock()
		if c == nil {
			c = st.insert(o.Obj)
		}
		if o.From == t.self {
			c.local.Add(o.Count)
			continue
		}
		c.add(o.From, o.Count)
	}
}

// Reset clears every counter (tests and tooling).
func (t *Tracker) Reset() {
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		st.objs = make(map[core.OID]*counters)
		st.mu.Unlock()
	}
}
