package sim

import (
	"testing"

	"objmig/internal/core"
)

// placementCapacityBase is the heterogeneous-capacity cell under
// test: one small node, most clients pinned to it.
func placementCapacityBase() Config {
	return Config{
		Nodes: 4, Clients: 8, Servers1: 6,
		MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1,
		MeanInterBlock: 10, HotClientShare: 0.7,
		Policy: core.PolicyPlacement,
		Seed:   11, WarmupCalls: 200, BatchSize: 200, MaxCalls: 8000,
	}
}

// TestPlacementCapacityVeto: under skewed traffic the uncapped small
// node piles up beyond the cap, while the veto keeps its peak
// occupancy within capacity and actually fires.
func TestPlacementCapacityVeto(t *testing.T) {
	t.Parallel()
	const cap = 2

	uncapped := placementCapacityBase()
	free, err := Run(uncapped)
	if err != nil {
		t.Fatal(err)
	}
	if free.PlacementVetoes != 0 {
		t.Fatalf("uncapped run reported %d vetoes", free.PlacementVetoes)
	}
	if free.PeakSmallNode <= cap {
		t.Fatalf("skewed traffic never overloaded the small node (peak %d); the veto has nothing to prevent",
			free.PeakSmallNode)
	}

	capped := placementCapacityBase()
	capped.SmallNodeCapacity = cap
	capped.GossipHeartbeat = 5
	held, err := Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	if held.PeakSmallNode > cap {
		t.Fatalf("veto leaked: small-node peak %d exceeds capacity %d", held.PeakSmallNode, cap)
	}
	if held.PlacementVetoes == 0 {
		t.Fatal("capacity held but no veto ever fired")
	}
	if held.Migrations == 0 {
		t.Fatal("the veto froze all migration, not just the overload")
	}
	// Gossip staleness at veto time: with the heartbeat model on, the
	// recorded ages are positive (a veto landing exactly on a broadcast
	// is measure zero) and bounded by one heartbeat period.
	if held.GossipAgeMeanAtVeto <= 0 {
		t.Fatalf("vetoes fired but gossip age mean is %g", held.GossipAgeMeanAtVeto)
	}
	if held.GossipAgeMaxAtVeto < held.GossipAgeMeanAtVeto {
		t.Fatalf("gossip age max %g below mean %g", held.GossipAgeMaxAtVeto, held.GossipAgeMeanAtVeto)
	}
	if held.GossipAgeMaxAtVeto > capped.GossipHeartbeat {
		t.Fatalf("gossip age max %g exceeds the heartbeat period %g",
			held.GossipAgeMaxAtVeto, capped.GossipHeartbeat)
	}
	if free.GossipAgeMeanAtVeto != 0 || free.GossipAgeMaxAtVeto != 0 {
		t.Fatalf("uncapped run reported gossip ages (mean %g, max %g) without vetoes",
			free.GossipAgeMeanAtVeto, free.GossipAgeMaxAtVeto)
	}
}

// TestPlacementCapacityExperiment smoke-runs the extension experiment
// end to end (quick mode, truncated sweep) and checks its occupancy
// invariants across every cell.
func TestPlacementCapacityExperiment(t *testing.T) {
	t.Parallel()
	e := PlacementCapacity()
	e.Xs = []float64{4, 8}
	tab, err := RunExperiment(e, RunOpts{Seed: 7, Quick: true, MaxCalls: 6000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Cells {
		for j, s := range e.Series {
			r := tab.Cells[i][j]
			if s.SmallNodeCap > 0 && r.PeakSmallNode > int64(s.SmallNodeCap) {
				t.Errorf("cell %s x=%v: peak %d exceeds cap %d",
					s.Label, e.Xs[i], r.PeakSmallNode, s.SmallNodeCap)
			}
			if s.SmallNodeCap == 0 && r.PlacementVetoes != 0 {
				t.Errorf("cell %s x=%v: %d vetoes without a cap", s.Label, e.Xs[i], r.PlacementVetoes)
			}
			if r.PlacementVetoes > 0 && r.GossipAgeMeanAtVeto <= 0 {
				t.Errorf("cell %s x=%v: %d vetoes but no gossip age recorded",
					s.Label, e.Xs[i], r.PlacementVetoes)
			}
			if r.GossipAgeMaxAtVeto > e.Base.GossipHeartbeat {
				t.Errorf("cell %s x=%v: gossip age max %g exceeds heartbeat %g",
					s.Label, e.Xs[i], r.GossipAgeMaxAtVeto, e.Base.GossipHeartbeat)
			}
			if r.Calls == 0 {
				t.Errorf("cell %s x=%v: no calls measured", s.Label, e.Xs[i])
			}
		}
	}
	// Sanity: the sedentary baseline never migrates, the placement
	// series do.
	for i := range tab.Cells {
		if tab.Cells[i][0].Migrations != 0 {
			t.Errorf("sedentary cell x=%v migrated", e.Xs[i])
		}
		if tab.Cells[i][1].Migrations == 0 {
			t.Errorf("placement cell x=%v never migrated", e.Xs[i])
		}
	}
}
