// Migration tracing: a TraceID minted at each migration decision rides
// the wire bodies, and every node that touches the migration records
// fixed-size Spans into its bounded TraceLog. Merging the logs of the
// participating nodes (the /debug/migrations endpoint for one node,
// tests and operators across nodes) reconstructs the migration's
// timeline: which phase ran when, for how long, and how many bytes and
// objects it carried.

package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Phase names one stage of a migration's life. The coordinator records
// PhasePause, PhaseStream and PhaseCommit; the pausing source records
// PhaseSnapshot; the target records PhaseStage and PhaseInstall; the
// old host and the origin record PhaseDirUpdate.
type Phase uint8

const (
	// PhasePause is the coordinator's pause round trip to one source
	// host: the request, the source-side pause wait and snapshot
	// encode, and the reply carrying the snapshots.
	PhasePause Phase = iota + 1
	// PhaseSnapshot is the source-side component of the pause: waiting
	// for in-flight invocations to drain plus encoding the state.
	PhaseSnapshot
	// PhaseStream is one coordinator transfer to the target: an
	// InstallChunk frame on the streamed path, or the whole one-shot
	// Install. Bytes is the encoded frame size.
	PhaseStream
	// PhaseStage is the target-side decode-and-stage of one chunk.
	PhaseStage
	// PhaseInstall is the target-side commit of the staged (or
	// one-shot) snapshots into the store.
	PhaseInstall
	// PhaseCommit is the coordinator's commit fan-out: every old host
	// deletes its copies and plants forwards.
	PhaseCommit
	// PhaseDirUpdate is a directory write downstream of the commit:
	// the old host's departure bookkeeping, or an origin applying a
	// HomeUpdate.
	PhaseDirUpdate

	// phaseEnd is one past the last phase (sizing arrays, drift tests).
	phaseEnd
)

// NumPhases is the number of declared phases; phase p satisfies
// 1 <= p < 1+NumPhases, so [NumPhases+1]T arrays index directly by
// phase.
const NumPhases = int(phaseEnd) - 1

func (p Phase) String() string {
	switch p {
	case PhasePause:
		return "pause"
	case PhaseSnapshot:
		return "snapshot"
	case PhaseStream:
		return "stream"
	case PhaseStage:
		return "stage"
	case PhaseInstall:
		return "install"
	case PhaseCommit:
		return "commit"
	case PhaseDirUpdate:
		return "dir-update"
	default:
		return "unknown"
	}
}

// Span is one recorded phase execution. The struct is fixed-size — no
// strings, no slices — so recording into the preallocated ring
// allocates nothing.
type Span struct {
	Trace   uint64 // the migration's TraceID
	Phase   Phase  // which stage ran
	Start   int64  // UnixNano at phase start
	End     int64  // UnixNano at phase end
	Bytes   int64  // payload bytes the phase carried (0 when n/a)
	Objects int32  // objects the phase carried (0 when n/a)
}

// Duration returns the span's elapsed time.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// String formats one span for the /debug/migrations listing.
func (s Span) String() string {
	return fmt.Sprintf("%-10s %8.3fms  %7dB  %4d objs  @%s",
		s.Phase, float64(s.End-s.Start)/1e6, s.Bytes, s.Objects,
		time.Unix(0, s.Start).UTC().Format("15:04:05.000000"))
}

// DefaultTraceSpans is the default TraceLog capacity: enough for the
// ~9 spans of a few hundred recent migrations.
const DefaultTraceSpans = 4096

// TraceLog is a bounded ring of spans. Record is allocation-free and
// safe for concurrent use; when the ring is full the oldest span is
// overwritten.
type TraceLog struct {
	mu      sync.Mutex
	spans   []Span
	next    int
	n       int   // live spans, ≤ cap
	total   int64 // spans ever recorded
	evicted int64 // spans overwritten before ever being read
}

// NewTraceLog returns a ring holding up to capacity spans
// (DefaultTraceSpans when capacity <= 0).
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = DefaultTraceSpans
	}
	return &TraceLog{spans: make([]Span, capacity)}
}

// Record appends one span, overwriting the oldest when full.
// Allocation-free.
func (l *TraceLog) Record(s Span) {
	l.mu.Lock()
	if l.n == len(l.spans) {
		l.evicted++
	}
	l.spans[l.next] = s
	l.next = (l.next + 1) % len(l.spans)
	if l.n < len(l.spans) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// Evicted returns the number of spans the ring has overwritten. A
// non-zero value means timelines reconstructed from Spans may be
// missing their oldest phases.
func (l *TraceLog) Evicted() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// Total returns the number of spans ever recorded (including
// overwritten ones).
func (l *TraceLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Spans copies the live spans, oldest first.
func (l *TraceLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.spans)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.spans[(start+i)%len(l.spans)])
	}
	return out
}

// Timeline is every known span of one migration, sorted by start time.
type Timeline struct {
	Trace uint64
	Spans []Span
}

// Start returns the timeline's earliest span start.
func (t Timeline) Start() int64 {
	if len(t.Spans) == 0 {
		return 0
	}
	return t.Spans[0].Start
}

// Timelines groups spans (possibly merged from several nodes' logs) by
// trace, each timeline's spans sorted by start, the timelines
// themselves newest-first. Spans with trace 0 — untraced work — are
// dropped.
func Timelines(spans []Span) []Timeline {
	byTrace := make(map[uint64][]Span)
	for _, s := range spans {
		if s.Trace == 0 {
			continue
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	out := make([]Timeline, 0, len(byTrace))
	for tr, ss := range byTrace {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].Start != ss[j].Start {
				return ss[i].Start < ss[j].Start
			}
			return ss[i].Phase < ss[j].Phase
		})
		out = append(out, Timeline{Trace: tr, Spans: ss})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start() != out[j].Start() {
			return out[i].Start() > out[j].Start()
		}
		return out[i].Trace > out[j].Trace
	})
	return out
}
