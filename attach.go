package objmig

import (
	"context"
	"fmt"

	"objmig/internal/core"
	"objmig/internal/wire"
)

// Attach keeps a and b together from now on: whenever either object
// migrates, the other travels with it (Section 2.2, "the system
// guarantees that attached objects are kept together until they are
// explicitly detached"). The edge is labelled with the alliance so
// A-transitive systems can scope its transitivity; use NoAlliance for a
// context-free attachment.
//
// Attach does not collocate the objects immediately (they meet at the
// next migration of either); call CollocateNow for eager collocation.
func (n *Node) Attach(ctx context.Context, a, b Ref, al AllianceID) error {
	if a == b {
		return fmt.Errorf("objmig: cannot attach %s to itself", a)
	}
	if err := n.edgeAdd(ctx, a.OID, b.OID, al); err != nil {
		return err
	}
	if err := n.edgeAdd(ctx, b.OID, a.OID, al); err != nil {
		// Roll the first half back so the edge is all-or-nothing.
		_ = n.edgeDel(ctx, a.OID, b.OID, al)
		return err
	}
	return nil
}

// Detach removes the attachment of a and b in the given alliance.
func (n *Node) Detach(ctx context.Context, a, b Ref, al AllianceID) error {
	err1 := n.edgeDel(ctx, a.OID, b.OID, al)
	err2 := n.edgeDel(ctx, b.OID, a.OID, al)
	if err1 != nil {
		return err1
	}
	return err2
}

// CollocateNow migrates b's working set to wherever a currently lives.
// Use it after Attach when the working set should be assembled eagerly.
func (n *Node) CollocateNow(ctx context.Context, a, b Ref) error {
	return n.MigrateToObject(ctx, b, a)
}

// Attached reports whether a and b are attached in the given alliance.
func (n *Node) Attached(ctx context.Context, a, b Ref, al AllianceID) (bool, error) {
	edges, _, err := n.edgesOf(ctx, a.OID)
	if err != nil {
		return false, err
	}
	for _, e := range edges {
		if e.Other == b.OID && e.Alliance == al {
			return true, nil
		}
	}
	return false, nil
}

// WorkingSet returns the objects that would migrate together with ref
// for a primitive issued in the given alliance — the closure of
// Section 3.4.
func (n *Node) WorkingSet(ctx context.Context, ref Ref, al AllianceID) ([]Ref, error) {
	members, err := n.closureOf(ctx, ref.OID, al)
	if err != nil {
		return nil, err
	}
	out := make([]Ref, 0, len(members))
	for _, oid := range sortedOIDs(members) {
		out = append(out, Ref{OID: oid})
	}
	return out, nil
}

// edgeAdd records half an attachment at the host of obj, chasing its
// location.
func (n *Node) edgeAdd(ctx context.Context, obj, other core.OID, al core.AllianceID) error {
	req := &wire.EdgeAddReq{Obj: obj, Other: other, Alliance: al, Mode: n.attachMode}
	return n.edgeRequest(ctx, obj, wire.KEdgeAdd, req)
}

// edgeDel removes half an attachment at the host of obj.
func (n *Node) edgeDel(ctx context.Context, obj, other core.OID, al core.AllianceID) error {
	req := &wire.EdgeDelReq{Obj: obj, Other: other, Alliance: al}
	return n.edgeRequest(ctx, obj, wire.KEdgeDel, req)
}

// edgeRequest chases obj's host and delivers an edge mutation there.
func (n *Node) edgeRequest(ctx context.Context, oid core.OID, kind wire.Kind, req interface{}) error {
	c := n.newChase(oid)
	defer c.end()
	for c.next(ctx) {
		if _, ok := n.hostedRecord(oid); ok {
			var err error
			switch r := req.(type) {
			case *wire.EdgeAddReq:
				_, err = n.handleEdgeAdd(ctx, r)
			case *wire.EdgeDelReq:
				_, err = n.handleEdgeDel(ctx, r)
			}
			if to, moved := movedTo(err); moved {
				n.store.Learn(oid, to)
				continue
			}
			return fromRemote(err)
		}
		target := n.store.Hint(oid)
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return fmt.Errorf("%w: %s", ErrNotFound, oid)
		}
		var resp wire.EdgeAddResp
		c.hop()
		err := n.call(ctx, target, kind, req, &resp)
		if err == nil {
			return nil
		}
		if to, moved := movedTo(err); moved {
			n.store.Learn(oid, to)
			continue
		}
		if isCode(err, wire.CodeNotFound) && target != oid.Origin {
			n.store.InvalidateAt(oid, target)
			continue
		}
		return fromRemote(err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: %s (attach)", ErrUnreachable, oid)
}

// handleEdgeAdd applies the attachment admission rule for the local
// endpoint and records the half-edge. The check and the mutation run
// atomically against the record, waiting out in-flight migrations.
func (n *Node) handleEdgeAdd(ctx context.Context, req *wire.EdgeAddReq) (*wire.EdgeAddResp, error) {
	if req.Obj == req.Other {
		return nil, wire.Errorf(wire.CodeBadRequest, "self-attachment of %s", req.Obj)
	}
	rec, ok := n.record(req.Obj)
	if !ok {
		return nil, n.whereabouts(req.Obj)
	}
	err := rec.EdgeOp(ctx, func() *wire.RemoteError {
		// Each endpoint enforces its own degree constraint; the
		// two-phase Attach gives the exclusive rule both sides.
		if !core.AdmitAttachRule(n.attachMode, req.Obj, req.Other,
			rec.DegreeLocked(), 0, rec.PairedWithLocked(req.Other)) {
			return wire.Errorf(wire.CodeExclusive,
				"%s already has an attachment partner", req.Obj)
		}
		rec.AddEdgeLocked(req.Other, req.Alliance)
		return nil
	})
	if err != nil {
		return nil, err
	}
	n.emit(Event{Kind: EventAttach, Obj: Ref{OID: req.Obj}, Outcome: "attached"})
	return &wire.EdgeAddResp{}, nil
}

// handleEdgeDel removes the half-edge, atomically against the record.
func (n *Node) handleEdgeDel(ctx context.Context, req *wire.EdgeDelReq) (*wire.EdgeDelResp, error) {
	rec, ok := n.record(req.Obj)
	if !ok {
		return nil, n.whereabouts(req.Obj)
	}
	existed := false
	err := rec.EdgeOp(ctx, func() *wire.RemoteError {
		existed = rec.DelEdgeLocked(req.Other, req.Alliance)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &wire.EdgeDelResp{Existed: existed}, nil
}

// handleEdges serves the adjacency of a hosted object.
func (n *Node) handleEdges(req *wire.EdgesReq) (*wire.EdgesResp, error) {
	rec, ok := n.record(req.Obj)
	if !ok || rec.IsGone() {
		return nil, n.whereabouts(req.Obj)
	}
	return &wire.EdgesResp{Edges: rec.EdgeList()}, nil
}
