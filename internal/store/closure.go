package store

import (
	"sync"
	"time"

	"objmig/internal/core"
)

// ClosureRec is a shared location record for an attachment closure that
// migrated as a unit: one (anchor → node, generation) pair that every
// member references instead of carrying its own home or forwarding
// entry. Learn updates the record once and thereby refreshes the
// location of every member; a million-member directory stores one
// record plus member pointers instead of a million independent entries.
//
// The record's mutex is a strict leaf: it is only ever taken last
// (after closMu and/or a shard's locMu), never around any other lock.
type ClosureRec struct {
	anchor core.OID

	mu   sync.Mutex
	at   core.NodeID
	gen  uint64
	refs int
}

func (c *ClosureRec) location() core.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at
}

func (c *ClosureRec) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

func (c *ClosureRec) addRef() {
	c.mu.Lock()
	c.refs++
	c.mu.Unlock()
}

func (c *ClosureRec) dropRef() {
	c.mu.Lock()
	c.refs--
	c.mu.Unlock()
}

func (c *ClosureRec) refCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refs
}

// closureFor resolves the closure record members of this report should
// attach to. It returns nil when the stored record is fresher than gen
// — the caller's update is stale and must not attach members.
//
// A fresher (or laterally different) report MINTS A NEW RECORD instead
// of advancing the stored one in place. The distinction is
// load-bearing: the same anchor can migrate again with a different
// member set (an attachment was detached in between, or a different
// alliance's closure travelled), and members of the earlier trip that
// did not travel this time must keep their old location. They go on
// referencing the superseded record — which keeps its old (at, gen)
// forever — while this report's members are re-attached to the new one
// by the caller. A fully superseded record drops to zero references
// and is reaped by CompactForwards.
func (s *Store) closureFor(anchor core.OID, gen uint64, at core.NodeID) *ClosureRec {
	s.closMu.Lock()
	defer s.closMu.Unlock()
	if cur, ok := s.closures[anchor]; ok {
		curGen := cur.generation()
		if gen < curGen {
			return nil
		}
		if gen == curGen && cur.location() == at {
			return cur // idempotent re-report (a retried batch)
		}
	}
	clos := &ClosureRec{anchor: anchor, at: at, gen: gen}
	s.closures[anchor] = clos
	return clos
}

// attachMemberLocked points id at the shared closure record, displacing
// any per-object entry the report supersedes. Caller holds sh.locMu.
// Entries with a fresher generation win and veto the attach.
func (sh *shard) attachMemberLocked(id core.OID, clos *ClosureRec, gen uint64) {
	if cur, ok := sh.members[id]; ok {
		if cur == clos {
			delete(sh.cache, id)
			return
		}
		if gen < cur.generation() {
			return
		}
		sh.detachMemberLocked(id)
	}
	if f, ok := sh.forwards[id]; ok {
		if f.gen > gen {
			return
		}
		delete(sh.forwards, id)
	}
	if h, ok := sh.home[id]; ok {
		if h.gen > gen {
			return
		}
		delete(sh.home, id)
	}
	delete(sh.cache, id)
	sh.members[id] = clos
	clos.addRef()
}

// detachMemberLocked removes id's closure-member reference, if any.
// Caller holds sh.locMu. Zero-ref records are reaped lazily by
// CompactForwards (reaping here would need closMu, inverting the
// closMu → locMu order).
func (sh *shard) detachMemberLocked(id core.OID) {
	if clos, ok := sh.members[id]; ok {
		delete(sh.members, id)
		clos.dropRef()
	}
}

// HomeUpdateClosure is the closure-level HomeUpdate: objects created
// here that migrated as the given anchor's closure are recorded as
// member references into one shared record instead of per-object home
// entries. Foreign members are ignored (each origin hears about its
// own objects).
func (s *Store) HomeUpdateClosure(anchor core.OID, gen uint64, members []core.OID, at core.NodeID) {
	clos := s.closureFor(anchor, gen, at)
	if clos == nil {
		return // a fresher report already superseded this one
	}
	for _, id := range members {
		if id.Origin != s.self {
			continue
		}
		sh := s.shardOf(id)
		sh.locMu.Lock()
		sh.attachMemberLocked(id, clos, gen)
		sh.locMu.Unlock()
	}
}

// DepartedClosure coalesces a group departure at a former host: every
// member's forwarding pointer (or, at the origin, home entry) collapses
// into one shared closure record. Members of any origin participate —
// this is the old host's forward-addressing state, not the home index.
func (s *Store) DepartedClosure(anchor core.OID, gen uint64, members []core.OID, to core.NodeID) {
	clos := s.closureFor(anchor, gen, to)
	if clos == nil {
		return
	}
	for _, id := range members {
		sh := s.shardOf(id)
		sh.locMu.Lock()
		sh.attachMemberLocked(id, clos, gen)
		sh.locMu.Unlock()
	}
}

// ConfirmDeparted retires forwarding state for objects whose origin has
// confirmed the authoritative home entry (a successful HomeUpdate
// acknowledgement): the forwarding pointer, the closure-member
// reference and the Gone stub are all dropped. Chasers that still hold
// a stale hint fall back to the origin, which now answers
// authoritatively. Returns the number of stubs retired.
func (s *Store) ConfirmDeparted(ids []core.OID, at core.NodeID) int {
	retired := 0
	for _, id := range ids {
		sh := s.shardOf(id)
		sh.locMu.Lock()
		if f, ok := sh.forwards[id]; ok && f.to == at {
			delete(sh.forwards, id)
		}
		if clos, ok := sh.members[id]; ok && clos.location() == at {
			sh.detachMemberLocked(id)
		}
		sh.locMu.Unlock()
		if s.retireStub(id) {
			retired++
		}
	}
	return retired
}

// retireStub deletes id's record when it is a forwarding stub. Safe
// against concurrent reinstalls: InstallBatch holds the shard's table
// lock for its check-then-commit, so the stub is either still Gone
// here (and deleting it just makes a later install a fresh insert) or
// already replaced by a live record (left alone). Callers must hold no
// record or shard lock.
func (s *Store) retireStub(id core.OID) bool {
	sh := s.shardOf(id)
	sh.tabMu.Lock()
	rec, ok := sh.objs[id]
	if !ok {
		sh.tabMu.Unlock()
		return false
	}
	rec.Mu.Lock()
	gone := rec.Status == StatusGone
	rec.Mu.Unlock()
	if gone {
		delete(sh.objs, id)
	}
	sh.tabMu.Unlock()
	if gone {
		s.retired.Add(1)
	}
	return gone
}

// MaybeCompact triggers an amortised CompactForwards sweep after
// roughly compactEvery recorded departures. The node calls it from the
// migration-commit path, which is exactly where forwarding state is
// minted; the sweep itself then runs on the caller's goroutine with no
// locks held on entry.
func (s *Store) MaybeCompact(departed int) {
	if time.Duration(s.fwdTTL.Load()) <= 0 {
		return
	}
	if s.sinceSweep.Add(int64(departed)) < compactEvery {
		return
	}
	s.sinceSweep.Store(0)
	s.CompactForwards()
}

// CompactForwards ages out forwarding pointers older than the
// configured TTL, retires their stubs, and reaps unreferenced closure
// records. Returns the number of forwarding entries removed. A no-op
// when the TTL is disabled.
func (s *Store) CompactForwards() int {
	ttl := time.Duration(s.fwdTTL.Load())
	if ttl <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-ttl)
	removed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		var expired []core.OID
		sh.locMu.Lock()
		for id, f := range sh.forwards {
			if f.stamp.Before(cutoff) {
				expired = append(expired, id)
			}
		}
		for _, id := range expired {
			delete(sh.forwards, id)
		}
		sh.locMu.Unlock()
		for _, id := range expired {
			s.retireStub(id)
		}
		removed += len(expired)
	}
	s.reapClosures()
	return removed
}

// reapClosures drops closure records no member references any more.
func (s *Store) reapClosures() {
	s.closMu.Lock()
	defer s.closMu.Unlock()
	for anchor, clos := range s.closures {
		if clos.refCount() == 0 {
			delete(s.closures, anchor)
		}
	}
}
