package objmig

import "sync/atomic"

// Stats is a snapshot of a node's runtime counters. All counters are
// cumulative since the node started.
type Stats struct {
	// InvocationsServed counts method executions on objects hosted
	// here (local and remote callers alike).
	InvocationsServed int64
	// RemoteCallsSent counts invocation requests this node sent to
	// other nodes (including redirect retries).
	RemoteCallsSent int64
	// MovesGranted / MovesStayed / MovesDenied classify move-requests
	// decided at this node (it hosted the object at decision time).
	MovesGranted int64
	MovesStayed  int64
	MovesDenied  int64
	// EndRequests counts end-requests processed here.
	EndRequests int64
	// MigrationsOut counts transfer batches coordinated by this node;
	// ObjectsMovedOut the objects they carried.
	MigrationsOut   int64
	ObjectsMovedOut int64
	// ObjectsInstalled counts objects that arrived here.
	ObjectsInstalled int64
	// ObjectsHosted is the number of live (non-forwarding) records.
	ObjectsHosted int64
	// AutopilotScans counts autopilot scan ticks; AutopilotMigrations
	// the group migrations it issued, AutopilotObjectsMoved the
	// objects those carried, and AutopilotDeferred the candidates a
	// cooldown, veto or failed transfer pushed back.
	AutopilotScans        int64
	AutopilotMigrations   int64
	AutopilotObjectsMoved int64
	AutopilotDeferred     int64
	// HomeUpdatesQueued counts per-origin advisories handed to the
	// home-update batcher; HomeUpdateBatches the coalesced RPCs it
	// actually sent. Queued/Batches is the coalescing ratio.
	HomeUpdatesQueued int64
	HomeUpdateBatches int64
	// StreamChunksOut / StreamBytesOut count the migration payload
	// frames this node shipped as a coordinator — InstallChunk frames
	// of streamed transfers and one-shot InstallReq frames alike — and
	// the snapshot bytes they carried; StreamMaxChunkBytes is the
	// largest single frame, the coordinator's peak per-frame
	// buffering. With chunking enabled it stays bounded by
	// MigrateConfig.ChunkBytes plus one snapshot.
	StreamChunksOut     int64
	StreamBytesOut      int64
	StreamMaxChunkBytes int64
	// StreamChunksIn / StreamBytesIn count chunks staged here as a
	// migration target; StreamSessionsOpened / StreamSessionsExpired
	// count staging sessions opened and discarded by the TTL janitor
	// (an expiry means a coordinator died or stalled mid-stream).
	StreamChunksIn        int64
	StreamBytesIn         int64
	StreamSessionsOpened  int64
	StreamSessionsExpired int64
	// StreamAborts counts staging sessions this node dropped with an
	// explicit abort (coordinator rollback or admission failure) — a
	// health-engine signal: a rising abort rate inside a window marks
	// migrations going wrong faster than the TTL janitor would show.
	StreamAborts int64
	// PauseLeasesExpired counts pause leases that fired: migrations
	// whose coordinator neither committed nor aborted within the lease,
	// auto-resumed by this host.
	PauseLeasesExpired int64
	// PlacementScans counts placement-engine scans (origin
	// pre-placement passes plus autopilot ticks that elected through
	// the engine); PlacementMigrations the group migrations the engine
	// issued, and PlacementObjectsMoved the objects those carried.
	PlacementScans        int64
	PlacementMigrations   int64
	PlacementObjectsMoved int64
	// PlacementVetoes counts migrations this node refused as a target
	// because admitting them would push it past its capacity — the
	// overload veto's authoritative, target-side half.
	PlacementVetoes int64
	// PlacementReservations counts admissions that claimed (objects,
	// bytes) in the reservation ledger; PlacementSheds counts the group
	// migrations the proactive shedder issued to drain this node below
	// ShedRatio, and PlacementShedBytes the claimed bytes they carried.
	PlacementReservations int64
	PlacementSheds        int64
	PlacementShedBytes    int64
	// LoadGossipSent / LoadGossipReceived count load samples shipped
	// and folded in, heartbeats and HomeUpdate piggybacks alike.
	LoadGossipSent     int64
	LoadGossipReceived int64
	// JobsStarted counts migration jobs this node began executing;
	// JobsCompleted / JobsCancelled / JobsFailed classify how they
	// ended. JobWaves counts executed waves, JobMoves the group
	// migrations job waves drove to completion, JobObjectsMoved the
	// objects those carried, and JobRetargets the vetoed moves that
	// were re-pointed at a new receiver against the live view.
	JobsStarted     int64
	JobsCompleted   int64
	JobsCancelled   int64
	JobsFailed      int64
	JobWaves        int64
	JobMoves        int64
	JobObjectsMoved int64
	JobRetargets    int64
	// HintHits counts location chases resolved by the first remote hop
	// (the directory's hint was right); HintMisses chases that needed
	// more than one hop. Chases answered locally count as neither.
	HintHits   int64
	HintMisses int64
	// ChaseHops is the total remote hops spent chasing; ChaseP50Hops
	// and ChaseP99Hops are percentiles of the per-chase hop count
	// (bucketed, saturating at 8+). ChasesOverBudget counts chases that
	// exceeded DirectoryConfig.ChaseHopBudget — each also emitted an
	// EventChase.
	ChaseHops        int64
	ChaseP50Hops     int
	ChaseP99Hops     int
	ChasesOverBudget int64
	// EventsDropped counts observer events shed by the bounded async
	// sink (Config.ObserverBuffer) because the observer could not keep
	// up. Always 0 with synchronous delivery.
	EventsDropped int64
	// TraceSpansEvicted counts migration trace spans the bounded
	// TraceLog ring overwrote — non-zero means the oldest timelines in
	// /debug/migrations are reconstructed from a truncated record.
	TraceSpansEvicted int64
	// HealthState is the node's current health classification (0
	// healthy, 1 degraded, 2 critical; see HealthConfig). Always 0
	// while the health engine is disabled. HealthTicks counts
	// evaluation ticks; HealthDegraded / HealthCritical count
	// transitions *into* each state; HealthVetoes counts inbound
	// migrations refused because this node was critical; HealthDumps
	// counts flight-recorder dumps (automatic and manual).
	HealthState    int64
	HealthTicks    int64
	HealthDegraded int64
	HealthCritical int64
	HealthVetoes   int64
	HealthDumps    int64
	// Location-directory footprint (see store.LocStats): explicit home
	// entries, forwarding pointers, cached hints, closure records and
	// their member references, plus the forwarding stubs retired so far.
	LocHome         int
	LocForwards     int
	LocCache        int
	LocClosures     int
	LocClosureRefs  int
	ForwardsRetired int64
}

// nodeStats is the internal atomic counterpart of Stats.
type nodeStats struct {
	invocationsServed atomic.Int64
	remoteCallsSent   atomic.Int64
	movesGranted      atomic.Int64
	movesStayed       atomic.Int64
	movesDenied       atomic.Int64
	endRequests       atomic.Int64
	migrationsOut     atomic.Int64
	objectsMovedOut   atomic.Int64
	objectsInstalled  atomic.Int64

	autopilotScans        atomic.Int64
	autopilotMigrations   atomic.Int64
	autopilotObjectsMoved atomic.Int64
	autopilotDeferred     atomic.Int64
	homeUpdatesQueued     atomic.Int64
	homeUpdateBatches     atomic.Int64

	streamChunksOut       atomic.Int64
	streamBytesOut        atomic.Int64
	streamMaxChunkBytes   atomic.Int64
	streamChunksIn        atomic.Int64
	streamBytesIn         atomic.Int64
	streamSessionsOpened  atomic.Int64
	streamSessionsExpired atomic.Int64
	streamAborts          atomic.Int64
	pauseLeasesExpired    atomic.Int64

	placementScans        atomic.Int64
	placementMigrations   atomic.Int64
	placementObjectsMoved atomic.Int64
	placementVetoes       atomic.Int64
	placementReservations atomic.Int64
	placementSheds        atomic.Int64
	placementShedBytes    atomic.Int64
	loadGossipSent        atomic.Int64
	loadGossipReceived    atomic.Int64

	jobsStarted     atomic.Int64
	jobsCompleted   atomic.Int64
	jobsCancelled   atomic.Int64
	jobsFailed      atomic.Int64
	jobWaves        atomic.Int64
	jobMoves        atomic.Int64
	jobObjectsMoved atomic.Int64
	jobRetargets    atomic.Int64

	healthTicks    atomic.Int64
	healthDegraded atomic.Int64
	healthCritical atomic.Int64
	healthVetoes   atomic.Int64
	healthDumps    atomic.Int64

	hintHits         atomic.Int64
	hintMisses       atomic.Int64
	chaseHops        atomic.Int64
	chasesOverBudget atomic.Int64
	// chaseHist buckets per-chase hop counts: index i counts chases of
	// i+1 hops, the last bucket saturating (8+ hops).
	chaseHist [8]atomic.Int64
}

// chasePercentile returns the smallest hop count h such that at least
// frac of all recorded chases used ≤ h hops (from the saturating
// histogram; the top bucket reads as its lower bound).
func (s *nodeStats) chasePercentile(frac float64) int {
	var counts [8]int64
	var total int64
	for i := range s.chaseHist {
		counts[i] = s.chaseHist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	want := int64(frac * float64(total))
	if want < 1 {
		want = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= want {
			return i + 1
		}
	}
	return len(counts)
}

// eventsDropped reads the async event sink's shed counter (0 when
// delivery is synchronous).
func (n *Node) eventsDropped() int64 {
	if n.events == nil {
		return 0
	}
	return n.events.dropped.Load()
}

// maxInt64 raises g to v if v is larger (CAS max for gauge counters).
func maxInt64(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Stats returns a snapshot of the node's counters. The hosted-object
// count walks the store shard by shard — no stop-the-world lock.
func (n *Node) Stats() Stats {
	hosted := int64(n.store.HostedCount())
	loc := n.store.LocStats()
	return Stats{
		InvocationsServed: n.stats.invocationsServed.Load(),
		RemoteCallsSent:   n.stats.remoteCallsSent.Load(),
		MovesGranted:      n.stats.movesGranted.Load(),
		MovesStayed:       n.stats.movesStayed.Load(),
		MovesDenied:       n.stats.movesDenied.Load(),
		EndRequests:       n.stats.endRequests.Load(),
		MigrationsOut:     n.stats.migrationsOut.Load(),
		ObjectsMovedOut:   n.stats.objectsMovedOut.Load(),
		ObjectsInstalled:  n.stats.objectsInstalled.Load(),
		ObjectsHosted:     hosted,

		AutopilotScans:        n.stats.autopilotScans.Load(),
		AutopilotMigrations:   n.stats.autopilotMigrations.Load(),
		AutopilotObjectsMoved: n.stats.autopilotObjectsMoved.Load(),
		AutopilotDeferred:     n.stats.autopilotDeferred.Load(),
		HomeUpdatesQueued:     n.stats.homeUpdatesQueued.Load(),
		HomeUpdateBatches:     n.stats.homeUpdateBatches.Load(),

		StreamChunksOut:       n.stats.streamChunksOut.Load(),
		StreamBytesOut:        n.stats.streamBytesOut.Load(),
		StreamMaxChunkBytes:   n.stats.streamMaxChunkBytes.Load(),
		StreamChunksIn:        n.stats.streamChunksIn.Load(),
		StreamBytesIn:         n.stats.streamBytesIn.Load(),
		StreamSessionsOpened:  n.stats.streamSessionsOpened.Load(),
		StreamSessionsExpired: n.stats.streamSessionsExpired.Load(),
		StreamAborts:          n.stats.streamAborts.Load(),
		PauseLeasesExpired:    n.stats.pauseLeasesExpired.Load(),

		PlacementScans:        n.stats.placementScans.Load(),
		PlacementMigrations:   n.stats.placementMigrations.Load(),
		PlacementObjectsMoved: n.stats.placementObjectsMoved.Load(),
		PlacementVetoes:       n.stats.placementVetoes.Load(),
		PlacementReservations: n.stats.placementReservations.Load(),
		PlacementSheds:        n.stats.placementSheds.Load(),
		PlacementShedBytes:    n.stats.placementShedBytes.Load(),
		LoadGossipSent:        n.stats.loadGossipSent.Load(),
		LoadGossipReceived:    n.stats.loadGossipReceived.Load(),

		JobsStarted:     n.stats.jobsStarted.Load(),
		JobsCompleted:   n.stats.jobsCompleted.Load(),
		JobsCancelled:   n.stats.jobsCancelled.Load(),
		JobsFailed:      n.stats.jobsFailed.Load(),
		JobWaves:        n.stats.jobWaves.Load(),
		JobMoves:        n.stats.jobMoves.Load(),
		JobObjectsMoved: n.stats.jobObjectsMoved.Load(),
		JobRetargets:    n.stats.jobRetargets.Load(),

		HintHits:         n.stats.hintHits.Load(),
		HintMisses:       n.stats.hintMisses.Load(),
		ChaseHops:        n.stats.chaseHops.Load(),
		ChaseP50Hops:     n.stats.chasePercentile(0.50),
		ChaseP99Hops:     n.stats.chasePercentile(0.99),
		ChasesOverBudget: n.stats.chasesOverBudget.Load(),

		EventsDropped:     n.eventsDropped(),
		TraceSpansEvicted: n.tel.traces.Evicted(),

		HealthState:    int64(n.healthState.Load()),
		HealthTicks:    n.stats.healthTicks.Load(),
		HealthDegraded: n.stats.healthDegraded.Load(),
		HealthCritical: n.stats.healthCritical.Load(),
		HealthVetoes:   n.stats.healthVetoes.Load(),
		HealthDumps:    n.stats.healthDumps.Load(),

		LocHome:         loc.Home,
		LocForwards:     loc.Forwards,
		LocCache:        loc.Cache,
		LocClosures:     loc.Closures,
		LocClosureRefs:  loc.ClosureRefs,
		ForwardsRetired: loc.Retired,
	}
}
