package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"objmig/internal/framebuf"
)

// maxFrame bounds a single frame (16 MiB): large enough for any batch
// of object snapshots this system ships, small enough to reject
// corrupted length prefixes before allocating.
const maxFrame = 16 << 20

// TCP is the TCP transport. Frames are length-prefixed (big-endian
// uint32) byte strings.
type TCP struct{}

var _ Transport = TCP{}

// Listen binds a TCP listener. Use "127.0.0.1:0" to let the kernel pick
// a port; Addr reports the bound address.
func (TCP) Listen(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to a TCP listener.
func (TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	l    net.Listener
	once sync.Once
}

var _ Listener = (*tcpListener)(nil)

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

func (t *tcpListener) Close() error {
	var err error
	t.once.Do(func() { err = t.l.Close() })
	return err
}

type tcpConn struct {
	c net.Conn
	r *bufio.Reader

	sendMu sync.Mutex
	w      *bufio.Writer

	once sync.Once
}

var _ Conn = (*tcpConn)(nil)

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{
		c: c,
		r: bufio.NewReaderSize(c, 64<<10),
		w: bufio.NewWriterSize(c, 64<<10),
	}
}

func (t *tcpConn) Send(frame []byte) error {
	if len(frame) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := t.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.w.Write(frame); err != nil {
		return err
	}
	return t.w.Flush()
}

func (t *tcpConn) Recv() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	// Pooled receive buffer; ownership passes to the caller, which
	// recycles it after dispatch (see Conn).
	frame := framebuf.Get(int(n))[:n]
	if _, err := io.ReadFull(t.r, frame); err != nil {
		framebuf.Put(frame)
		return nil, err
	}
	return frame, nil
}

func (t *tcpConn) Close() error {
	var err error
	t.once.Do(func() { err = t.c.Close() })
	return err
}
