package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"objmig/internal/core"
	"objmig/internal/wire"
)

func oid(origin string, seq uint64) core.OID {
	return core.OID{Origin: core.NodeID(origin), Seq: seq}
}

func TestAddGetHosted(t *testing.T) {
	t.Parallel()
	s := New("n1")
	id := oid("n1", 1)
	rec := NewRecord(id, "t", &testState{})
	if err := s.Add(rec); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(id); !ok || got != rec {
		t.Fatal("Get lost the record")
	}
	if got, ok := s.Hosted(id); !ok || got != rec {
		t.Fatal("Hosted lost the record")
	}
	// The hosted record is its own home knowledge.
	if at, ok := s.Home(id); !ok || at != "n1" {
		t.Fatalf("home = %v, %v", at, ok)
	}
	// A departed record is excluded from Hosted but kept by Get.
	if err := rec.Pause(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	rec.Depart(1, "n2", func() { s.Departed(id, "n2", 1) })
	if _, ok := s.Hosted(id); ok {
		t.Fatal("Hosted returned a forwarding stub")
	}
	if _, ok := s.Get(id); !ok {
		t.Fatal("Get dropped the forwarding stub")
	}
	if hint := s.Hint(id); hint != "n2" {
		t.Fatalf("hint after depart = %v", hint)
	}
}

// TestGetBatch: the shard-grouped batch lookup must agree with Get,
// align with its input, and report missing objects as nil.
func TestGetBatch(t *testing.T) {
	t.Parallel()
	s := New("n1")
	const n = 100 // spans many shards
	ids := make([]core.OID, 0, n+2)
	for i := 0; i < n; i++ {
		id := oid("n1", uint64(i+1))
		if err := s.Add(NewRecord(id, "t", &testState{})); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Interleave two objects the store has never seen.
	ids = append(ids, oid("ghost", 1))
	ids = append(ids[:50:50], append([]core.OID{oid("ghost", 2)}, ids[50:]...)...)

	got := s.GetBatch(ids)
	if len(got) != len(ids) {
		t.Fatalf("GetBatch returned %d records for %d ids", len(got), len(ids))
	}
	for i, id := range ids {
		want, _ := s.Get(id)
		if got[i] != want {
			t.Fatalf("GetBatch[%d] (%v) = %v, want %v", i, id, got[i], want)
		}
		if id.Origin == "ghost" && got[i] != nil {
			t.Fatalf("ghost id %v resolved to %v", id, got[i])
		}
	}
	if len(s.GetBatch(nil)) != 0 {
		t.Fatal("GetBatch(nil) not empty")
	}
}

func TestLookupSingleShard(t *testing.T) {
	t.Parallel()
	s := New("n1")
	id := oid("n1", 1)
	rec := NewRecord(id, "t", &testState{})
	if err := s.Add(rec); err != nil {
		t.Fatal(err)
	}
	if got, at := s.Lookup(id); got != rec || at != "n1" {
		t.Fatalf("Lookup hosted = %v, %v", got, at)
	}
	foreign := oid("n9", 7)
	if got, at := s.Lookup(foreign); got != nil || at != "n9" {
		t.Fatalf("Lookup foreign = %v, %v (want origin fallback)", got, at)
	}
	s.Learn(foreign, "n3")
	if _, at := s.Lookup(foreign); at != "n3" {
		t.Fatalf("Lookup ignored learnt hint: %v", at)
	}
}

// TestShardDistribution: OIDs minted the way nodes mint them (one
// origin, sequential counters) must spread across many stripes, or the
// striping buys nothing.
func TestShardDistribution(t *testing.T) {
	t.Parallel()
	const n = 10000
	var hits [ShardCount]int
	for seq := uint64(1); seq <= n; seq++ {
		hits[ShardIndex(oid("node-0", seq))]++
	}
	used := 0
	for _, h := range hits {
		if h > 0 {
			used++
		}
	}
	if used != ShardCount {
		t.Fatalf("only %d/%d shards used", used, ShardCount)
	}
	// No stripe should hold more than 3x its fair share.
	fair := n / ShardCount
	for i, h := range hits {
		if h > 3*fair {
			t.Fatalf("shard %d holds %d of %d (fair share %d)", i, h, n, fair)
		}
	}
}

func TestInstallBatchReplacesOnlyStubsAndOwnPauses(t *testing.T) {
	t.Parallel()
	s := New("n1")
	ctx := context.Background()

	// A live record must veto the whole batch.
	live := NewRecord(oid("n2", 1), "t", &testState{})
	if err := s.Add(live); err != nil {
		t.Fatal(err)
	}
	in := NewRecord(oid("n2", 1), "t", &testState{})
	other := NewRecord(oid("n2", 2), "t", &testState{})
	err := s.InstallBatch([]*Record{other, in}, 7)
	if !isCode(err, wire.CodeDenied) {
		t.Fatalf("install over live record: %v", err)
	}
	if _, ok := s.Get(oid("n2", 2)); ok {
		t.Fatal("vetoed batch left a partial install")
	}

	// Paused by the same token: replaceable; the old record becomes a
	// wake-up stub pointing here.
	if err := live.Pause(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallBatch([]*Record{in, other}, 7); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Hosted(oid("n2", 1)); !ok || got != in {
		t.Fatal("install did not swap the record in")
	}
	if !live.IsGone() {
		t.Fatal("replaced record is not a stub")
	}
	live.Mu.Lock()
	to := live.MovedTo
	live.Mu.Unlock()
	if to != "n1" {
		t.Fatalf("replaced record points at %v, want here", to)
	}
}

// TestStoreParallelStress hammers one store with the full hot-path mix
// — create, invoke (acquire/release), migrate out (pause/depart),
// forward-chase bookkeeping (learn/hint/invalidate) — across many
// goroutines and OIDs. Run under -race this is the sharding's
// correctness gate.
func TestStoreParallelStress(t *testing.T) {
	t.Parallel()
	const (
		workers = 16
		oids    = 256
		rounds  = 200
	)
	s := New("n1")
	ctx := context.Background()
	ids := make([]core.OID, oids)
	for i := range ids {
		ids[i] = oid("n1", uint64(i+1))
		if err := s.Add(NewRecord(ids[i], "t", &testState{})); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := ids[(w*rounds+r*7)%oids]
				switch w % 4 {
				case 0: // invoke
					if rec, ok := s.Hosted(id); ok {
						if err := rec.Acquire(ctx); err == nil {
							rec.Release()
						}
					}
				case 1: // migrate away and reinstall
					token := uint64(w*rounds + r + 1)
					if rec, ok := s.Hosted(id); ok {
						if err := rec.Pause(ctx, token); err == nil {
							rec.Depart(token, "n2", func() { s.Departed(id, "n2", token) })
							back := NewRecord(id, "t", &testState{})
							if err := s.InstallBatch([]*Record{back}, token); err != nil {
								t.Errorf("reinstall %s: %v", id, err)
							}
						}
					}
				case 2: // forward-chase bookkeeping
					s.Learn(id, core.NodeID(fmt.Sprintf("n%d", r%5+2)))
					_ = s.Hint(id)
					s.Invalidate(id)
				case 3: // table-wide ops against the hot path
					_ = s.HostedCount()
					_ = s.LocStats()
				}
			}
		}(w)
	}
	wg.Wait()
	// Every object must still resolve: hosted here or forwarded.
	for _, id := range ids {
		if _, ok := s.Hosted(id); ok {
			continue
		}
		if hint := s.Hint(id); hint == "" {
			t.Fatalf("object %s lost", id)
		}
	}
}

// TestCloseWhileBusy closes the store while creators and readers are
// mid-flight: no Add may land after Close returns, and lookups keep
// answering so in-flight chases fail gracefully instead of panicking.
func TestCloseWhileBusy(t *testing.T) {
	t.Parallel()
	s := New("n1")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var added sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				id := oid(fmt.Sprintf("n1-%d", w), seq)
				if err := s.Add(NewRecord(id, "t", &testState{})); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Add: %v", err)
					}
					return
				}
				added.Store(id, true)
				_, _ = s.Hosted(id)
				_ = s.Hint(id)
			}
		}(w)
	}
	s.Close()
	// The barrier guarantee: an Add started after Close returned must
	// fail, immediately and forever.
	if err := s.Add(NewRecord(oid("late", 1), "t", &testState{})); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Close: %v", err)
	}
	close(stop)
	wg.Wait()
	// Everything that reported success is still findable.
	added.Range(func(k, _ interface{}) bool {
		if _, ok := s.Get(k.(core.OID)); !ok {
			t.Errorf("record %v vanished", k)
		}
		return true
	})
	if _, ok := s.Get(oid("late", 1)); ok {
		t.Fatal("failed Add left a record behind")
	}
}
