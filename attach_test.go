package objmig

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func refIDs(refs []Ref) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.String()
	}
	return out
}

func TestAttachMigratesTogether(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Attach: AttachUnrestricted})
	a := mustCreate(t, nodes[0])
	b := mustCreate(t, nodes[0])

	if err := nodes[0].Attach(ctx, a, b, NoAlliance); err != nil {
		t.Fatal(err)
	}
	ok, err := nodes[2].Attached(ctx, a, b, NoAlliance)
	if err != nil || !ok {
		t.Fatalf("Attached = %v, %v", ok, err)
	}
	if err := nodes[0].Migrate(ctx, a, "n1"); err != nil {
		t.Fatal(err)
	}
	// Both travelled.
	if at := whereIs(t, ctx, nodes[0], a); at != "n1" {
		t.Fatalf("a at %v", at)
	}
	if at := whereIs(t, ctx, nodes[0], b); at != "n1" {
		t.Fatalf("b at %v, want n1 (attached)", at)
	}
	// Detach; now they part ways.
	if err := nodes[1].Detach(ctx, a, b, NoAlliance); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Migrate(ctx, a, "n2"); err != nil {
		t.Fatal(err)
	}
	if at := whereIs(t, ctx, nodes[0], a); at != "n2" {
		t.Fatalf("a at %v", at)
	}
	if at := whereIs(t, ctx, nodes[0], b); at != "n1" {
		t.Fatalf("b at %v, want n1 (detached)", at)
	}
}

func TestAttachTransitiveClosureMoves(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Attach: AttachUnrestricted})
	a := mustCreate(t, nodes[0])
	b := mustCreate(t, nodes[0])
	c := mustCreate(t, nodes[0])
	// Chain a-b-c: attachment is transitive, moving a moves all.
	if err := nodes[0].Attach(ctx, a, b, NoAlliance); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Attach(ctx, b, c, NoAlliance); err != nil {
		t.Fatal(err)
	}
	ws, err := nodes[0].WorkingSet(ctx, a, NoAlliance)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("working set = %v, want 3 members", refIDs(ws))
	}
	if err := nodes[0].Migrate(ctx, a, "n1"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []Ref{a, b, c} {
		if at := whereIs(t, ctx, nodes[0], r); at != "n1" {
			t.Fatalf("%s at %v, want n1", r, at)
		}
	}
}

func TestATransitiveRestrictsMigration(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Attach: AttachATransitive})
	editor := nodes[0].NewAlliance()
	archiver := nodes[0].NewAlliance()

	s1a := mustCreate(t, nodes[0]) // editor's front object
	s1b := mustCreate(t, nodes[0]) // archiver's front object
	shared := mustCreate(t, nodes[0])
	own := mustCreate(t, nodes[0]) // editor-only member

	if err := nodes[0].Attach(ctx, s1a, shared, editor); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Attach(ctx, s1a, own, editor); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Attach(ctx, s1b, shared, archiver); err != nil {
		t.Fatal(err)
	}

	// The editor's working set is scoped to its alliance.
	ws, err := nodes[0].WorkingSet(ctx, s1a, editor)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{s1a.String(), shared.String(), own.String()}
	got := refIDs(ws)
	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w] = true
	}
	if len(got) != 3 || !wantSet[got[0]] || !wantSet[got[1]] || !wantSet[got[2]] {
		t.Fatalf("editor working set = %v, want %v", got, want)
	}

	// Migrating in the editor alliance takes shared but NOT s1b, even
	// though shared is attached to s1b in the archiver alliance.
	if err := nodes[0].MigrateIn(ctx, editor, s1a, "n1"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []Ref{s1a, shared, own} {
		if at := whereIs(t, ctx, nodes[0], r); at != "n1" {
			t.Fatalf("%s at %v, want n1", r, at)
		}
	}
	if at := whereIs(t, ctx, nodes[0], s1b); at != "n0" {
		t.Fatalf("s1b dragged to %v; A-transitivity violated", at)
	}
}

func TestMoveInDragsAllianceWorkingSet(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Policy: PolicyPlacement, Attach: AttachATransitive})
	al := nodes[0].NewAlliance()
	root := mustCreate(t, nodes[0])
	member := mustCreate(t, nodes[0])
	outsider := mustCreate(t, nodes[0])
	if err := nodes[0].Attach(ctx, root, member, al); err != nil {
		t.Fatal(err)
	}
	other := nodes[0].NewAlliance()
	if err := nodes[0].Attach(ctx, root, outsider, other); err != nil {
		t.Fatal(err)
	}

	err := nodes[1].MoveIn(ctx, al, root, func(ctx context.Context, b *Block) error {
		if !b.Granted {
			t.Error("move not granted")
		}
		if len(b.Moved) != 2 {
			t.Errorf("moved %v, want the 2 alliance members", refIDs(b.Moved))
		}
		if at := whereIs(t, ctx, nodes[1], member); at != "n1" {
			t.Errorf("member at %v", at)
		}
		if at := whereIs(t, ctx, nodes[1], outsider); at != "n0" {
			t.Errorf("outsider dragged to %v", at)
		}
		// The whole placed working set is locked: moving the MEMBER
		// from another node is denied while the block runs.
		return nodes[2].MoveIn(ctx, al, member, func(ctx context.Context, b2 *Block) error {
			if b2.Granted {
				t.Error("working-set member was stolen despite the group lock")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the end-request the group locks are released.
	err = nodes[2].MoveIn(ctx, al, member, func(ctx context.Context, b *Block) error {
		if !b.Granted {
			t.Error("move after end not granted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveAttachment(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{Attach: AttachExclusive})
	a := mustCreate(t, nodes[0])
	b := mustCreate(t, nodes[0])
	c := mustCreate(t, nodes[0])

	if err := nodes[0].Attach(ctx, a, b, NoAlliance); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Attach(ctx, a, c, NoAlliance); !errors.Is(err, ErrExclusive) {
		t.Fatalf("second partner for a: %v, want ErrExclusive", err)
	}
	if err := nodes[1].Attach(ctx, c, b, NoAlliance); !errors.Is(err, ErrExclusive) {
		t.Fatalf("second partner for b: %v, want ErrExclusive", err)
	}
	// The failed attach must not leave a half-edge behind: c is free.
	d := mustCreate(t, nodes[0])
	if err := nodes[0].Attach(ctx, c, d, NoAlliance); err != nil {
		t.Fatalf("c should still be free: %v", err)
	}
}

func TestSelfAttachRejected(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 1, Config{})
	a := mustCreate(t, nodes[0])
	if err := nodes[0].Attach(ctx, a, a, NoAlliance); err == nil {
		t.Fatal("self-attach accepted")
	}
}

func TestEdgesSurviveMigration(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{Attach: AttachUnrestricted})
	a := mustCreate(t, nodes[0])
	b := mustCreate(t, nodes[0])
	if err := nodes[0].Attach(ctx, a, b, 7); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Migrate(ctx, a, "n1"); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Migrate(ctx, a, "n2"); err != nil {
		t.Fatal(err)
	}
	ok, err := nodes[0].Attached(ctx, a, b, 7)
	if err != nil || !ok {
		t.Fatalf("edge lost in migration: %v, %v", ok, err)
	}
	ws, err := nodes[2].WorkingSet(ctx, b, NoAlliance)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("working set after migrations = %v", refIDs(ws))
	}
}

func TestCollocateNow(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{})
	a := mustCreate(t, nodes[0])
	b, err := nodes[1].Create("counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Attach(ctx, a, b, NoAlliance); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].CollocateNow(ctx, a, b); err != nil {
		t.Fatal(err)
	}
	if at := whereIs(t, ctx, nodes[0], b); at != "n0" {
		t.Fatalf("b at %v, want n0", at)
	}
}

func TestWorkingSetDeterministic(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 1, Config{Attach: AttachUnrestricted})
	refs := make([]Ref, 5)
	for i := range refs {
		refs[i] = mustCreate(t, nodes[0])
	}
	for i := 1; i < len(refs); i++ {
		if err := nodes[0].Attach(ctx, refs[0], refs[i], NoAlliance); err != nil {
			t.Fatal(err)
		}
	}
	a, err := nodes[0].WorkingSet(ctx, refs[0], NoAlliance)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nodes[0].WorkingSet(ctx, refs[2], NoAlliance)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("working set differs by root: %v vs %v", refIDs(a), refIDs(b))
	}
}
