package main

import (
	"context"
	"testing"
	"time"

	"objmig"
)

func TestParsePolicy(t *testing.T) {
	t.Parallel()
	cases := map[string]objmig.PolicyKind{
		"sedentary":             objmig.PolicySedentary,
		"conventional":          objmig.PolicyConventional,
		"placement":             objmig.PolicyPlacement,
		"compare-nodes":         objmig.PolicyCompareNodes,
		"compare-reinstantiate": objmig.PolicyCompareReinstantiate,
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Error("parsePolicy accepted bogus")
	}
}

func TestParseAutopilotPolicy(t *testing.T) {
	t.Parallel()
	cases := map[string]objmig.PolicyKind{
		"compare-nodes":         objmig.PolicyCompareNodes,
		"compare-reinstantiate": objmig.PolicyCompareReinstantiate,
	}
	for in, want := range cases {
		got, err := parseAutopilotPolicy(in)
		if err != nil || got != want {
			t.Errorf("parseAutopilotPolicy(%q) = %v, %v", in, got, err)
		}
	}
	for _, bad := range []string{"placement", "sedentary", "bogus"} {
		if _, err := parseAutopilotPolicy(bad); err == nil {
			t.Errorf("parseAutopilotPolicy accepted %q", bad)
		}
	}
}

func TestParseAttach(t *testing.T) {
	t.Parallel()
	cases := map[string]objmig.AttachMode{
		"unrestricted": objmig.AttachUnrestricted,
		"a-transitive": objmig.AttachATransitive,
		"exclusive":    objmig.AttachExclusive,
	}
	for in, want := range cases {
		got, err := parseAttach(in)
		if err != nil || got != want {
			t.Errorf("parseAttach(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAttach("bogus"); err == nil {
		t.Error("parseAttach accepted bogus")
	}
}

func TestPeerListFlag(t *testing.T) {
	t.Parallel()
	p := peerList{}
	if err := p.Set("a=127.0.0.1:7001"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("b=127.0.0.1:7002"); err != nil {
		t.Fatal(err)
	}
	if p["a"] != "127.0.0.1:7001" || p["b"] != "127.0.0.1:7002" {
		t.Fatalf("peers = %v", p)
	}
	for _, bad := range []string{"", "noequals", "=addr", "id="} {
		if err := p.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

// TestKVTypeEndToEnd drives the node binary's kv type through a
// two-node TCP cluster, which is exactly what two objmig-node processes
// would do.
func TestKVTypeEndToEnd(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := objmig.NewTCPCluster()
	mk := func(id objmig.NodeID) *objmig.Node {
		n, err := objmig.NewNode(objmig.Config{ID: id, Cluster: cl})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.RegisterType(newKVType()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	a, b := mk("a"), mk("b")
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())

	ref, err := a.Create("kv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := objmig.Call[kvPair, struct{}](ctx, b, ref, "Put", kvPair{Key: "k", Val: "v"}); err != nil {
		t.Fatal(err)
	}
	got, err := objmig.Call[string, string](ctx, b, ref, "Get", "k")
	if err != nil || got != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := b.Migrate(ctx, ref, "b"); err != nil {
		t.Fatal(err)
	}
	where, err := objmig.Call[struct{}, objmig.NodeID](ctx, a, ref, "Where", struct{}{})
	if err != nil || where != "b" {
		t.Fatalf("Where = %v, %v", where, err)
	}
	hits, err := objmig.Call[struct{}, int](ctx, a, ref, "Hits", struct{}{})
	if err != nil || hits != 2 {
		t.Fatalf("Hits = %d, %v", hits, err)
	}
	// References survive the round trip through their string form
	// (what an operator would paste between objmig-node terminals).
	parsed, err := objmig.ParseRef(ref.String())
	if err != nil || parsed != ref {
		t.Fatalf("ParseRef(%q) = %v, %v", ref.String(), parsed, err)
	}
}
