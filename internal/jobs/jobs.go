// Package jobs is the migration control plane's planning core: pure,
// deterministic planners that turn a cluster load view plus closure
// inventories into ordered move lists, and the small state machine the
// runtime's job executor drives through them.
//
// The split mirrors the rest of the codebase: this package owns the
// *what* (which closures move where, in which order, respecting the
// same utilisation veto the placement engine's admission runs) and
// stays free of RPCs, clocks and locks so every plan is table-testable;
// the live runtime (jobs.go in the root package) owns the *how* —
// walking real closures, pausing, streaming, retrying and emitting
// progress. A Plan is therefore a projection, not a promise: the
// executor re-validates every move against the live cluster before
// acting on it.
package jobs

import (
	"sort"

	"objmig/internal/core"
	"objmig/internal/placement"
)

// State is a job's lifecycle position. A job is planned once, runs at
// most once at a time, and ends in exactly one of the three terminal
// states.
type State int

const (
	// Planned: the move list exists; nothing has been touched.
	Planned State = iota + 1
	// Running: the executor is driving waves.
	Running
	// Done: every move completed (or was verifiably already done).
	Done
	// Cancelled: the operator stopped the job at a wave boundary;
	// completed waves stand, nothing else was touched.
	Cancelled
	// Failed: at least one move exhausted its retries, or the plan
	// left anchors unplaced. Completed moves stand.
	Failed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Planned:
		return "planned"
	case Running:
		return "running"
	case Done:
		return "done"
	case Cancelled:
		return "cancelled"
	case Failed:
		return "failed"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state ends the job.
func (s State) Terminal() bool {
	return s == Done || s == Cancelled || s == Failed
}

// Closure is one migratable unit in a planner's input: an attachment
// closure (or a single object standing in for one — the executor walks
// the real closure at move time) hosted on Host.
type Closure struct {
	Anchor  core.OID    // the closure root
	Host    core.NodeID // where it lives in the snapshot
	Objects int         // member count (>= 1)
	Bytes   int64       // approximate resident bytes
	// Pressure is the observed access pressure (the affinity
	// tracker's total); planners drain coldest-biggest first, the
	// same bytes-per-pressure ranking the shed pass uses.
	Pressure int64
}

// Move is one planned group migration: the closure anchored at Anchor
// travels from From to To as a unit.
type Move struct {
	Anchor  core.OID
	From    core.NodeID
	To      core.NodeID
	Objects int
	Bytes   int64
	// Score is the target's headroom score at planning time
	// (1 − projected utilisation after receiving the closure) — the
	// same quantity placement.ShedTarget reports for a shed election.
	Score float64
}

// Plan is a planner's verdict: the ordered move list plus the anchors
// no veto-respecting target could take.
type Plan struct {
	Moves    []Move
	Unplaced []core.OID
}

// Checkpoint is the serializable resume point of a job: the full plan
// and the first wave that has not yet completed. A coordinator that
// crashes mid-wave resumes by re-running from NextWave — moves of the
// interrupted wave whose closures already sit at their target are
// detected and skipped by the executor, so replaying a wave is
// idempotent.
type Checkpoint struct {
	Kind     string // "drain", "rebalance" or "pin"
	WaveSize int
	NextWave int
	Moves    []Move
}

// Waves partitions moves into consecutive waves of at most size moves
// each (size < 1 selects 1). The executor runs one wave concurrently,
// then barriers: cancel and resume both operate on wave boundaries.
func Waves(moves []Move, size int) [][]Move {
	if size < 1 {
		size = 1
	}
	var out [][]Move
	for len(moves) > 0 {
		n := size
		if n > len(moves) {
			n = len(moves)
		}
		out = append(out, moves[:n])
		moves = moves[n:]
	}
	return out
}

// Delta is one node's projected utilisation change under a plan — the
// preview surface's before/after rows.
type Delta struct {
	Node   core.NodeID
	Before float64
	After  float64
}

// ProjectDeltas applies the moves to the view and reports each
// sampled node's utilisation before and after, sorted by node. Pure
// arithmetic: nothing is paused, claimed or reserved.
func ProjectDeltas(moves []Move, view []placement.Sample) []Delta {
	p := newProjection(view)
	before := make(map[core.NodeID]float64, len(p.order))
	for _, node := range p.order {
		before[node] = placement.Utilisation(*p.samples[node], 0, 0)
	}
	for _, m := range moves {
		p.apply(m.From, m.To, m.Objects, m.Bytes)
	}
	out := make([]Delta, 0, len(p.order))
	for _, node := range p.order {
		out = append(out, Delta{
			Node:   node,
			Before: before[node],
			After:  placement.Utilisation(*p.samples[node], 0, 0),
		})
	}
	return out
}

// projection is a mutable copy of the view that planners charge
// assigned moves against, so a plan never collectively overshoots a
// receiver the way N independent elections would.
type projection struct {
	samples map[core.NodeID]*placement.Sample
	order   []core.NodeID // sorted, for deterministic iteration
}

func newProjection(view []placement.Sample) *projection {
	p := &projection{samples: make(map[core.NodeID]*placement.Sample, len(view))}
	for _, s := range view {
		if s.Node == "" {
			continue
		}
		// Last sample wins per node; callers pass deduplicated views.
		if _, ok := p.samples[s.Node]; !ok {
			p.order = append(p.order, s.Node)
		}
		cp := s
		p.samples[s.Node] = &cp
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i] < p.order[j] })
	return p
}

// apply charges a move: the closure's footprint leaves from (if
// sampled) and lands on to (if sampled).
func (p *projection) apply(from, to core.NodeID, objects int, bytes int64) {
	if s, ok := p.samples[from]; ok {
		s.Objects -= int64(objects)
		s.Bytes -= bytes
		if s.Objects < 0 {
			s.Objects = 0
		}
		if s.Bytes < 0 {
			s.Bytes = 0
		}
	}
	if s, ok := p.samples[to]; ok {
		s.Objects += int64(objects)
		s.Bytes += bytes
	}
}

// util is a node's projected utilisation with an incoming closure.
func (p *projection) util(node core.NodeID, objects int, bytes int64) float64 {
	s, ok := p.samples[node]
	if !ok {
		return 0
	}
	return placement.Utilisation(*s, objects, bytes)
}

// elect picks the receiver for one closure: the sampled node (never
// from, never excluded) whose projected utilisation after receiving
// the closure is lowest, with any node whose projection would exceed
// ratio vetoed — the same headroom-first, receiver-guarded election as
// placement.ShedTarget, with the veto boundary matching admission's
// (placement.Overloaded vetoes strictly above the ratio, so a plan
// never refuses a move admission would accept). Ties break towards
// the lexically smaller node (iteration order is sorted and the
// comparison strict), so identical inputs elect identically. Nodes
// without samples are skipped: no headroom evidence, no move. Nodes
// that are not healthy (degraded or critical) are never elected: a
// plan must not route load onto a node the health engine is already
// flagging.
func (p *projection) elect(c Closure, from core.NodeID, exclude map[core.NodeID]bool, ratio float64) (core.NodeID, float64, bool) {
	var best core.NodeID
	bestUtil := 0.0
	for _, node := range p.order {
		if node == from || exclude[node] {
			continue
		}
		if p.samples[node].Health >= placement.HealthDegraded {
			continue
		}
		u := p.util(node, c.Objects, c.Bytes)
		if u > ratio {
			continue
		}
		if best == "" || u < bestUtil {
			best, bestUtil = node, u
		}
	}
	if best == "" {
		return "", 0, false
	}
	return best, 1 - bestUtil, true
}

// coldFirst orders closures biggest-coldest first — bytes per unit of
// pressure descending, anchors ascending on ties — the shed pass's
// ranking, so a drain frees the most capacity for the least disruption
// early.
func coldFirst(closures []Closure) []Closure {
	out := append([]Closure(nil), closures...)
	sort.Slice(out, func(i, j int) bool {
		si := float64(out[i].Bytes+1) / float64(out[i].Pressure+1)
		sj := float64(out[j].Bytes+1) / float64(out[j].Pressure+1)
		if si != sj {
			return si > sj
		}
		return out[i].Anchor.Less(out[j].Anchor)
	})
	return out
}

// PlanDrain empties node from: every closure hosted on it is assigned
// to the sampled peer with the most headroom, charging each assignment
// against the projection so the plan cannot collectively overshoot a
// receiver. ratio (<= 0 selects 1) is the receiver guard: no peer is
// pushed past it. Closures no peer can take are reported
// Unplaced. Deterministic: same inputs, same plan.
func PlanDrain(from core.NodeID, closures []Closure, view []placement.Sample, ratio float64) Plan {
	if ratio <= 0 {
		ratio = 1
	}
	p := newProjection(view)
	var plan Plan
	for _, c := range coldFirst(closures) {
		if c.Host != from {
			continue
		}
		to, score, ok := p.elect(c, from, nil, ratio)
		if !ok {
			plan.Unplaced = append(plan.Unplaced, c.Anchor)
			continue
		}
		p.apply(from, to, c.Objects, c.Bytes)
		plan.Moves = append(plan.Moves, Move{
			Anchor: c.Anchor, From: from, To: to,
			Objects: c.Objects, Bytes: c.Bytes, Score: score,
		})
	}
	return plan
}

// PlanRebalance relieves every node whose utilisation exceeds ratio
// (<= 0 selects 1): donors are processed worst-first and shed their
// coldest closures to the least-utilised receivers until they fit
// under the ratio. Receivers are guarded exactly as in PlanDrain, so
// a rebalance converges instead of ping-ponging load. Closures on a
// donor that no receiver can take are reported Unplaced. Critical
// nodes are drain-priority donors: they join the donor set whatever
// their utilisation, are processed before every merely-overloaded
// donor, and are emptied outright rather than relieved to the ratio —
// a sick node's load belongs elsewhere until it recovers.
func PlanRebalance(closures []Closure, view []placement.Sample, ratio float64) Plan {
	if ratio <= 0 {
		ratio = 1
	}
	p := newProjection(view)

	byHost := make(map[core.NodeID][]Closure)
	for _, c := range closures {
		byHost[c.Host] = append(byHost[c.Host], c)
	}
	critical := func(node core.NodeID) bool {
		return p.samples[node].Health >= placement.HealthCritical
	}
	// Donors: sampled nodes above the ratio plus every critical node,
	// critical first, then worst utilisation first (ties towards the
	// lexically smaller node). Receivers can never be pushed past the
	// ratio, so the donor set is fixed up front.
	var donors []core.NodeID
	for _, node := range p.order {
		if critical(node) || p.util(node, 0, 0) > ratio {
			donors = append(donors, node)
		}
	}
	sort.Slice(donors, func(i, j int) bool {
		if ci, cj := critical(donors[i]), critical(donors[j]); ci != cj {
			return ci
		}
		ui, uj := p.util(donors[i], 0, 0), p.util(donors[j], 0, 0)
		if ui != uj {
			return ui > uj
		}
		return donors[i] < donors[j]
	})

	var plan Plan
	for _, donor := range donors {
		drainAll := critical(donor)
		for _, c := range coldFirst(byHost[donor]) {
			if !drainAll && p.util(donor, 0, 0) <= ratio {
				break // donor fits: relieved
			}
			to, score, ok := p.elect(c, donor, nil, ratio)
			if !ok {
				plan.Unplaced = append(plan.Unplaced, c.Anchor)
				continue
			}
			p.apply(donor, to, c.Objects, c.Bytes)
			plan.Moves = append(plan.Moves, Move{
				Anchor: c.Anchor, From: donor, To: to,
				Objects: c.Objects, Bytes: c.Bytes, Score: score,
			})
		}
	}
	return plan
}

// PlanPin moves every closure not already on target onto it, in
// anchor order, charging the projection as it goes; once the target's
// projected utilisation would exceed ratio (<= 0 selects 1) the
// remaining anchors are reported Unplaced — a pin respects the same
// admission veto every other migration does. A target without a
// sample is taken at face value (no evidence of overload, pure pin).
func PlanPin(target core.NodeID, closures []Closure, view []placement.Sample, ratio float64) Plan {
	if ratio <= 0 {
		ratio = 1
	}
	p := newProjection(view)
	ordered := append([]Closure(nil), closures...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Anchor.Less(ordered[j].Anchor) })

	var plan Plan
	for _, c := range ordered {
		if c.Host == target {
			continue
		}
		_, sampled := p.samples[target]
		u := p.util(target, c.Objects, c.Bytes)
		if sampled && u > ratio {
			plan.Unplaced = append(plan.Unplaced, c.Anchor)
			continue
		}
		p.apply(c.Host, target, c.Objects, c.Bytes)
		plan.Moves = append(plan.Moves, Move{
			Anchor: c.Anchor, From: c.Host, To: target,
			Objects: c.Objects, Bytes: c.Bytes, Score: 1 - u,
		})
	}
	return plan
}

// Retarget re-elects a vetoed move's receiver against a live view,
// excluding the nodes that already refused it. This is the executor's
// recovery path for a stale plan: a target that admitted on planning
// data may veto at migration time, and retrying it against the same
// stale view would hammer a full node — the re-election must run on
// fresh samples with the refuser excluded.
func Retarget(m Move, view []placement.Sample, exclude map[core.NodeID]bool, ratio float64) (core.NodeID, bool) {
	if ratio <= 0 {
		ratio = 1
	}
	p := newProjection(view)
	c := Closure{Anchor: m.Anchor, Host: m.From, Objects: m.Objects, Bytes: m.Bytes}
	to, _, ok := p.elect(c, m.From, exclude, ratio)
	return to, ok
}
