package objmig

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// placementTestCluster builds count nodes on a fresh local cluster
// with per-node capacities (0 = uncapped) and the counter type
// registered.
func placementTestCluster(t *testing.T, count int, caps []int64, obs Observer) []*Node {
	t.Helper()
	cl := NewLocalCluster()
	nodes := make([]*Node, count)
	for i := range nodes {
		cfg := Config{
			ID:       NodeID(fmt.Sprintf("n%d", i)),
			Cluster:  cl,
			Observer: obs,
		}
		if i < len(caps) {
			cfg.Capacity = caps[i]
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if err := n.RegisterType(newCounterType()); err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	})
	return nodes
}

// placementSkewResult is one heterogeneous-capacity run's outcome.
type placementSkewResult struct {
	installedOnSmall int64 // objects migrated onto the capped node
	measuredRemote   int64 // remote calls across the cluster, post-convergence window
	groupedEvent     bool  // an EventPlacement carried the attached pair as one unit
	placementEvents  int64 // EventPlacement "migrate"/"origin" emissions
}

// runPlacementSkew drives the acceptance workload: three nodes, ten
// objects created on n0, n1 capped at its two ballast objects, and a
// 90/10 caller skew — eight objects prefer n2 (uncapped), two prefer
// the capped n1. mode selects which optimiser runs: "off" (none),
// "autopilot" (affinity only — the baseline that overloads n1) or
// "placement" (autopilot election through the engine plus the
// admission veto).
func runPlacementSkew(t *testing.T, mode string) placementSkewResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var res placementSkewResult
	var evMu sync.Mutex
	obs := func(e Event) {
		if e.Kind != EventPlacement {
			return
		}
		if e.Outcome == "migrate" || e.Outcome == "origin" {
			evMu.Lock()
			res.placementEvents++
			evMu.Unlock()
		}
	}
	nodes := placementTestCluster(t, 3, []int64{0, 2, 0}, obs)
	n0, n1, n2 := nodes[0], nodes[1], nodes[2]

	// Ballast: the small node starts exactly at its capacity.
	for i := 0; i < 2; i++ {
		mustCreate(t, n1)
	}

	apCfg := AutopilotConfig{
		Interval:      5 * time.Millisecond,
		MinTotal:      12,
		Hysteresis:    1.3,
		Cooldown:      250 * time.Millisecond,
		BudgetPerTick: 8,
		DecayEvery:    -1,
	}
	plCfg := PlacementConfig{
		Heartbeat:     20 * time.Millisecond,
		Hysteresis:    1.3,
		OriginPass:    50 * time.Millisecond,
		MinTotal:      12,
		BudgetPerPass: 4,
		Cooldown:      250 * time.Millisecond,
	}
	for _, n := range nodes {
		if mode == "autopilot" || mode == "placement" {
			if err := n.EnableAutopilot(apCfg); err != nil {
				t.Fatal(err)
			}
		}
		if mode == "placement" {
			if err := n.EnablePlacement(plCfg); err != nil {
				t.Fatal(err)
			}
		}
	}

	const objects = 10
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = mustCreate(t, n0)
	}
	// Objects 0..7 prefer n2; 8..9 prefer the capped n1. Objects 0 and
	// 1 are attached, so the engine must move them as one closure.
	if err := n0.Attach(ctx, refs[0], refs[1], NoAlliance); err != nil {
		t.Fatal(err)
	}
	prefers := func(i int) (hot, cold *Node) {
		if i >= 8 {
			return n1, n2
		}
		return n2, n1
	}
	round := func() {
		for i, ref := range refs {
			hot, cold := prefers(i)
			for k := 0; k < 9; k++ {
				if _, err := Call[int, int](ctx, hot, ref, "Add", 1); err != nil {
					t.Fatalf("hot call: %v", err)
				}
			}
			if _, err := Call[int, int](ctx, cold, ref, "Add", 1); err != nil {
				t.Fatalf("cold call: %v", err)
			}
		}
	}

	// Phase 1: warm up and (for the optimised runs) let the n2-bound
	// objects converge before measuring.
	for r := 0; r < 25; r++ {
		round()
		time.Sleep(2 * time.Millisecond)
	}
	atN2 := func() int {
		at := 0
		for i := 0; i < 8; i++ {
			if loc, err := n0.Locate(ctx, refs[i]); err == nil && loc == n2.ID() {
				at++
			}
		}
		return at
	}
	if mode != "off" {
		deadline := time.Now().Add(30 * time.Second)
		for atN2() < 7 && time.Now().Before(deadline) {
			round()
			time.Sleep(5 * time.Millisecond)
		}
		if got := atN2(); got < 7 {
			t.Fatalf("mode %s: only %d/8 n2-preferred objects converged onto n2", mode, got)
		}
	}

	// Phase 2: measure the steady state — the same number of rounds in
	// every mode, so the remote-call deltas are comparable.
	var before int64
	for _, n := range nodes {
		before += n.Stats().RemoteCallsSent
	}
	for r := 0; r < 25; r++ {
		round()
		time.Sleep(2 * time.Millisecond)
	}
	for _, n := range nodes {
		res.measuredRemote += n.Stats().RemoteCallsSent
	}
	res.measuredRemote -= before
	res.installedOnSmall = n1.Stats().ObjectsInstalled

	// Group-as-unit: the attached pair must live together, and in
	// placement mode an EventPlacement must have carried both members.
	if mode == "placement" {
		locA, errA := n0.Locate(ctx, refs[0])
		locB, errB := n0.Locate(ctx, refs[1])
		if errA != nil || errB != nil || locA != locB {
			t.Fatalf("attached pair split: %v(%v) vs %v(%v)", locA, errA, locB, errB)
		}
	}
	res.groupedEvent = res.placementEvents > 0
	return res
}

// TestPlacementVetoProtectsOverloadedNode is the subsystem's e2e
// acceptance test. Three nodes, one capped small node already at
// capacity, a 90/10 skewed workload:
//
//   - the affinity-only autopilot baseline migrates objects onto the
//     capped node (the pile-up the ROADMAP describes),
//   - with the placement engine, zero objects land on it — the
//     overload veto holds both coordinator-side and target-side —
//   - and the aggregate remote-call rate still drops at least 2×
//     against the unoptimised baseline, because the engine converges
//     the rest of the working set onto the uncapped hot node.
func TestPlacementVetoProtectsOverloadedNode(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("placement acceptance test is slow")
	}
	off := runPlacementSkew(t, "off")
	baseline := runPlacementSkew(t, "autopilot")
	placed := runPlacementSkew(t, "placement")

	if off.installedOnSmall != 0 {
		t.Fatalf("off run installed %d objects on the small node", off.installedOnSmall)
	}
	if baseline.installedOnSmall == 0 {
		t.Fatal("affinity-only baseline never overloaded the small node; the veto has nothing to prove")
	}
	if placed.installedOnSmall != 0 {
		t.Fatalf("placement run migrated %d objects onto the overloaded node, want 0",
			placed.installedOnSmall)
	}
	if placed.measuredRemote*2 > off.measuredRemote {
		t.Fatalf("steady-state remote calls with placement = %d, baseline = %d; want ≤ half",
			placed.measuredRemote, off.measuredRemote)
	}
	if !placed.groupedEvent {
		t.Fatal("no EventPlacement migration was emitted")
	}
}

// TestPlacementGroupMovesAsUnit pins the group-scored election's
// payload: an attached pair where only one member is hot must travel
// as one closure in a single EventPlacement, to the aggregate-best
// node.
func TestPlacementGroupMovesAsUnit(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	type placementEv struct {
		target  NodeID
		objects []Ref
	}
	var evMu sync.Mutex
	var migrations []placementEv
	obs := func(e Event) {
		if e.Kind == EventPlacement && (e.Outcome == "migrate" || e.Outcome == "origin") {
			evMu.Lock()
			migrations = append(migrations, placementEv{target: e.Target, objects: e.Objects})
			evMu.Unlock()
		}
	}
	nodes := placementTestCluster(t, 3, nil, obs)
	for _, n := range nodes {
		if err := n.EnableAutopilot(AutopilotConfig{
			Interval: 5 * time.Millisecond, MinTotal: 10, Hysteresis: 1.2,
			Cooldown: 200 * time.Millisecond, DecayEvery: -1,
		}); err != nil {
			t.Fatal(err)
		}
		if err := n.EnablePlacement(PlacementConfig{
			Heartbeat: 20 * time.Millisecond, OriginPass: -1, Hysteresis: 1.2, MinTotal: 10,
		}); err != nil {
			t.Fatal(err)
		}
	}
	hot := mustCreate(t, nodes[0])
	quiet := mustCreate(t, nodes[0])
	if err := nodes[0].Attach(ctx, hot, quiet, NoAlliance); err != nil {
		t.Fatal(err)
	}
	// Only the hot member draws calls; the quiet one must ride along.
	for i := 0; i < 60; i++ {
		if _, err := Call[int, int](ctx, nodes[2], hot, "Add", 1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		locHot, err1 := nodes[0].Locate(ctx, hot)
		locQuiet, err2 := nodes[0].Locate(ctx, quiet)
		if err1 == nil && err2 == nil && locHot == "n2" && locQuiet == "n2" {
			evMu.Lock()
			defer evMu.Unlock()
			for _, ev := range migrations {
				if ev.target != "n2" || len(ev.objects) != 2 {
					continue
				}
				seen := map[Ref]bool{}
				for _, r := range ev.objects {
					seen[r] = true
				}
				if seen[hot] && seen[quiet] {
					return // one event, both members: moved as a unit
				}
			}
			t.Fatalf("pair reached n2 but no single EventPlacement carried both members: %+v", migrations)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("attached pair never converged onto the caller: %+v", migrations)
}

// TestPlacementNoOscillation proves hysteresis plus the load veto
// reach a stable assignment under steady skewed load: four objects,
// a capped preferred caller that can take only two — after the
// assignment settles, a further measurement window must see zero
// migrations and unchanged locations. Run under -race in CI.
func TestPlacementNoOscillation(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("oscillation test is slow")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	nodes := placementTestCluster(t, 3, []int64{0, 2, 0}, nil)
	for _, n := range nodes {
		if err := n.EnableAutopilot(AutopilotConfig{
			Interval: 10 * time.Millisecond, MinTotal: 12, Hysteresis: 1.3,
			Cooldown: 150 * time.Millisecond, DecayEvery: 16,
		}); err != nil {
			t.Fatal(err)
		}
		if err := n.EnablePlacement(PlacementConfig{
			Heartbeat: 20 * time.Millisecond, OriginPass: -1, Hysteresis: 1.3,
		}); err != nil {
			t.Fatal(err)
		}
	}
	const objects = 4
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = mustCreate(t, nodes[0])
	}
	// Steady 70/30 skew towards the capped n1 on every object.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var callErr atomic.Value
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ref := range refs {
				for k := 0; k < 7; k++ {
					if _, err := Call[int, int](ctx, nodes[1], ref, "Add", 1); err != nil {
						callErr.Store(err)
						return
					}
				}
				for k := 0; k < 3; k++ {
					if _, err := Call[int, int](ctx, nodes[2], ref, "Add", 1); err != nil {
						callErr.Store(err)
						return
					}
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	totalMigrations := func() int64 {
		var m int64
		for _, n := range nodes {
			m += n.Stats().AutopilotMigrations
		}
		return m
	}
	locations := func() [objects]NodeID {
		var out [objects]NodeID
		for i, ref := range refs {
			out[i], _ = nodes[0].Locate(ctx, ref)
		}
		return out
	}
	// Settle: wait for a full second of quiet (no migrations) within
	// the deadline.
	deadline := time.Now().Add(45 * time.Second)
	quietSince := time.Now()
	last := totalMigrations()
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if cur := totalMigrations(); cur != last {
			last, quietSince = cur, time.Now()
			continue
		}
		if time.Since(quietSince) >= time.Second {
			break
		}
	}
	if time.Since(quietSince) < time.Second {
		t.Fatalf("assignment never settled: %d migrations and counting", last)
	}
	settledLocs := locations()
	settledMigs := totalMigrations()

	// Measurement window: steady load continues, nothing may move.
	time.Sleep(2 * time.Second)
	if err, _ := callErr.Load().(error); err != nil {
		t.Fatalf("workload failed: %v", err)
	}
	if cur := totalMigrations(); cur != settledMigs {
		t.Fatalf("assignment oscillates: %d migrations during the quiet window", cur-settledMigs)
	}
	if cur := locations(); cur != settledLocs {
		t.Fatalf("locations drifted without migrations: %v -> %v", settledLocs, cur)
	}
	// The capped node must not have been pushed past its capacity.
	if hosted := nodes[1].Stats().ObjectsHosted; hosted > 2 {
		t.Fatalf("capped node hosts %d objects, capacity 2", hosted)
	}
	close(stop)
	wg.Wait()
}

// TestOriginPassPreplaces: with placement alone (no autopilot), the
// origin pre-placement pass must move a home object towards the
// caller its accumulated affinity names, announcing it with an
// EventPlacement "origin".
func TestOriginPassPreplaces(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	var originEvents atomic.Int64
	obs := func(e Event) {
		if e.Kind == EventPlacement && e.Outcome == "origin" {
			originEvents.Add(1)
		}
	}
	nodes := placementTestCluster(t, 3, nil, obs)
	for _, n := range nodes {
		if err := n.EnablePlacement(PlacementConfig{
			Heartbeat:  20 * time.Millisecond,
			OriginPass: 30 * time.Millisecond,
			MinTotal:   8,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ref := mustCreate(t, nodes[0])
	for i := 0; i < 30; i++ {
		if _, err := Call[int, int](ctx, nodes[2], ref, "Add", 1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if at, err := nodes[0].Locate(ctx, ref); err == nil && at == "n2" {
			if originEvents.Load() == 0 {
				t.Fatal("object pre-placed but no EventPlacement origin event")
			}
			if nodes[0].Stats().PlacementMigrations == 0 {
				t.Fatal("PlacementMigrations not counted")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("origin pass never pre-placed the object: %+v", nodes[0].Affinity())
}

// TestAdmissionVetoBacksPressure: the target-side veto refuses even
// explicit Migrate primitives while the node is at capacity, and
// admits them again once placement is disabled.
func TestAdmissionVetoBacksPressure(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := placementTestCluster(t, 2, []int64{0, 1}, nil)
	mustCreate(t, nodes[1]) // n1 at capacity
	if err := nodes[1].EnablePlacement(PlacementConfig{Heartbeat: -1, OriginPass: -1}); err != nil {
		t.Fatal(err)
	}
	ref := mustCreate(t, nodes[0])
	err := nodes[0].Migrate(ctx, ref, "n1")
	if !errors.Is(err, ErrDenied) || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("migration to a full node: %v, want capacity denial", err)
	}
	if nodes[1].Stats().PlacementVetoes == 0 {
		t.Fatal("PlacementVetoes not counted")
	}
	if at, _ := nodes[0].Locate(ctx, ref); at != "n0" {
		t.Fatalf("vetoed object moved to %v", at)
	}
	// The veto is placement's: disabling placement lifts it.
	nodes[1].DisablePlacement()
	if err := nodes[0].Migrate(ctx, ref, "n1"); err != nil {
		t.Fatalf("migration after disable: %v", err)
	}
	if at, _ := nodes[0].Locate(ctx, ref); at != "n1" {
		t.Fatalf("object at %v after admitted migration", at)
	}
}

// TestLoadGossipConvergesView: two nodes exchanging traffic must
// converge on each other's load samples via the heartbeat, with the
// LoadGossip counters moving.
func TestLoadGossipConvergesView(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := placementTestCluster(t, 2, []int64{0, 64}, nil)
	for _, n := range nodes {
		if err := n.EnablePlacement(PlacementConfig{
			Heartbeat: 10 * time.Millisecond, OriginPass: -1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ref := mustCreate(t, nodes[0])
	if _, err := Call[int, int](ctx, nodes[1], ref, "Add", 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		byNode := make(map[NodeID]NodeLoad)
		for _, l := range nodes[0].LoadView() {
			byNode[l.Node] = l
		}
		n1, okN1 := byNode["n1"]
		n0, okN0 := byNode["n0"]
		if okN0 && okN1 && n0.Objects == 1 && n1.Capacity == 64 {
			if nodes[0].Stats().LoadGossipSent == 0 || nodes[1].Stats().LoadGossipReceived == 0 {
				t.Fatal("gossip counters did not move")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("views never converged: n0 sees %+v", nodes[0].LoadView())
}

// TestPlacementEnableValidation covers the lifecycle API surface.
func TestPlacementEnableValidation(t *testing.T) {
	t.Parallel()
	nodes := placementTestCluster(t, 1, nil, nil)
	n := nodes[0]
	if err := n.EnablePlacement(PlacementConfig{}); err != nil {
		t.Fatal(err)
	}
	if !n.PlacementEnabled() {
		t.Fatal("placement not reported enabled")
	}
	if err := n.EnablePlacement(PlacementConfig{}); err == nil ||
		!strings.Contains(err.Error(), "already enabled") {
		t.Fatalf("double enable: %v", err)
	}
	// The affinity tracker stays on for the autopilot even after
	// placement goes away, and vice versa.
	if err := n.EnableAutopilot(AutopilotConfig{Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	n.DisablePlacement()
	if !n.aff.Enabled() {
		t.Fatal("tracker disabled while the autopilot still runs")
	}
	n.DisableAutopilot()
	if n.aff.Enabled() {
		t.Fatal("tracker still enabled with both daemons gone")
	}
	n.DisablePlacement() // idempotent
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if n.PlacementEnabled() {
		t.Fatal("placement survived Close")
	}
	if err := n.EnablePlacement(PlacementConfig{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enable after close: %v", err)
	}
}
