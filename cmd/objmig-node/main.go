// Command objmig-node runs a standalone object-hosting node on TCP. It
// registers a small key-value object type ("kv") so multi-process
// clusters can be exercised by hand:
//
//	objmig-node -id a -listen 127.0.0.1:7001 -create 2
//	objmig-node -id b -listen 127.0.0.1:7002 -peer a=127.0.0.1:7001
//
// The node prints the references of any objects it creates; other
// nodes can invoke them with those references (see cmd/objmig-demo for
// a scripted version of this setup).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"objmig"
)

// kvState is the demo object: a string map plus an access counter.
type kvState struct {
	Data map[string]string
	Hits int
}

// kvPair is the Put argument.
type kvPair struct {
	Key, Val string
}

// newKVType builds the demo object type registered by every node.
func newKVType() *objmig.Type[kvState] {
	t := objmig.NewType[kvState]("kv")
	objmig.HandleFunc(t, "Put", func(c *objmig.Ctx, s *kvState, p kvPair) (struct{}, error) {
		if s.Data == nil {
			s.Data = make(map[string]string)
		}
		s.Data[p.Key] = p.Val
		s.Hits++
		return struct{}{}, nil
	})
	objmig.HandleFunc(t, "Get", func(c *objmig.Ctx, s *kvState, key string) (string, error) {
		s.Hits++
		return s.Data[key], nil
	})
	objmig.HandleFunc(t, "Hits", func(c *objmig.Ctx, s *kvState, _ struct{}) (int, error) {
		return s.Hits, nil
	})
	objmig.HandleFunc(t, "Where", func(c *objmig.Ctx, s *kvState, _ struct{}) (objmig.NodeID, error) {
		return c.Node().ID(), nil
	})
	return t
}

// peerList collects repeated -peer id=addr flags.
type peerList map[objmig.NodeID]string

func (p peerList) String() string { return fmt.Sprintf("%v", map[objmig.NodeID]string(p)) }

func (p peerList) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok || id == "" || addr == "" {
		return fmt.Errorf("want id=addr, got %q", v)
	}
	p[objmig.NodeID(id)] = addr
	return nil
}

func parsePolicy(s string) (objmig.PolicyKind, error) {
	switch s {
	case "sedentary":
		return objmig.PolicySedentary, nil
	case "conventional":
		return objmig.PolicyConventional, nil
	case "placement":
		return objmig.PolicyPlacement, nil
	case "compare-nodes":
		return objmig.PolicyCompareNodes, nil
	case "compare-reinstantiate":
		return objmig.PolicyCompareReinstantiate, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

// parseAutopilotPolicy accepts the two dynamic strategies the
// autopilot can score with.
func parseAutopilotPolicy(s string) (objmig.PolicyKind, error) {
	switch s {
	case "compare-nodes":
		return objmig.PolicyCompareNodes, nil
	case "compare-reinstantiate":
		return objmig.PolicyCompareReinstantiate, nil
	default:
		return 0, fmt.Errorf("unknown autopilot policy %q (want compare-nodes or compare-reinstantiate)", s)
	}
}

func parseAttach(s string) (objmig.AttachMode, error) {
	switch s {
	case "unrestricted":
		return objmig.AttachUnrestricted, nil
	case "a-transitive":
		return objmig.AttachATransitive, nil
	case "exclusive":
		return objmig.AttachExclusive, nil
	default:
		return 0, fmt.Errorf("unknown attach mode %q", s)
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	peers := peerList{}
	var (
		id     = flag.String("id", "node", "node identity (unique per cluster)")
		listen = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		policy = flag.String("policy", "placement",
			"move policy: sedentary, conventional, placement, compare-nodes, compare-reinstantiate")
		attach = flag.String("attach", "a-transitive",
			"attachment mode: unrestricted, a-transitive, exclusive")
		create = flag.Int("create", 0, "create this many kv objects at startup")

		autopilot = flag.Bool("autopilot", false,
			"observe access affinity and migrate hosted objects towards their heaviest callers")
		apInterval = flag.Duration("autopilot-interval", 0,
			"autopilot scan period (0 = default 50ms)")
		apPolicy = flag.String("autopilot-policy", "compare-nodes",
			"autopilot scoring rule: compare-nodes, compare-reinstantiate")
		apMin = flag.Int64("autopilot-min", 0,
			"minimum observed accesses before an object is considered (0 = default 16)")
		apHysteresis = flag.Float64("autopilot-hysteresis", 0,
			"leader-vs-rival pressure ratio required to migrate (0 = default 2)")
		apCooldown = flag.Duration("autopilot-cooldown", 0,
			"per-object minimum time between autopilot migrations (0 = default 10x interval)")
		apBudget = flag.Int("autopilot-budget", 0,
			"max group migrations per scan tick (0 = default 4)")
		apDecay = flag.Int("autopilot-decay-every", 0,
			"halve affinity counters every N scans (0 = default 8, negative disables decay)")

		capacity = flag.Int64("capacity", 0,
			"advertised object capacity, enforced by the placement admission veto (0 = uncapped)")
		capacityBytes = flag.Int64("capacity-bytes", 0,
			"advertised resident-byte capacity, enforced alongside -capacity (0 = uncapped)")
		placement = flag.Bool("placement", false,
			"gossip load samples and place objects with the load-aware, group-scored engine")
		plHeartbeat = flag.Duration("placement-heartbeat", 0,
			"load-gossip heartbeat period (0 = default 500ms, negative disables)")
		plOriginPass = flag.Duration("placement-origin-pass", 0,
			"origin pre-placement scan period (0 = default 1s, negative disables)")
		plOverload = flag.Float64("placement-overload-ratio", 0,
			"utilisation above which a node is vetoed as a migration target (0 = default 1)")
		plHysteresis = flag.Float64("placement-hysteresis", 0,
			"winner-vs-rival score ratio required to move a group (0 = default 2)")
		plShedRatio = flag.Float64("placement-shed-ratio", 0,
			"utilisation above which this node proactively sheds cold closures (0 disables; must be below the overload ratio)")
		plShedPass = flag.Duration("placement-shed-pass", 0,
			"shed-pass period (0 = default 1s, negative disables)")

		healthOn = flag.Bool("health", false,
			"run the cluster health engine: windowed SLO evaluation, gossiped state, flight recorder")
		healthTick = flag.Duration("health-tick", 0,
			"health sampling period (0 = default 1s)")
		healthWindow = flag.Duration("health-window", 0,
			"health sliding evaluation window (0 = default 30s)")

		metricsAddr = flag.String("metrics-addr", "",
			"serve /metrics (Prometheus text), /debug/vars, /debug/pprof and /debug/migrations on this address (empty disables)")
	)
	flag.Var(peers, "peer", "peer address as id=addr (repeatable)")
	flag.Parse()

	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "objmig-node:", err)
		return 2
	}
	att, err := parseAttach(*attach)
	if err != nil {
		fmt.Fprintln(os.Stderr, "objmig-node:", err)
		return 2
	}
	appol, err := parseAutopilotPolicy(*apPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "objmig-node:", err)
		return 2
	}
	node, err := objmig.NewNode(objmig.Config{
		ID:            objmig.NodeID(*id),
		Cluster:       objmig.NewTCPCluster(),
		ListenAddr:    *listen,
		Policy:        pol,
		Attach:        att,
		Peers:         peers,
		Capacity:      *capacity,
		CapacityBytes: *capacityBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "objmig-node:", err)
		return 1
	}
	defer func() { _ = node.Close() }()
	if err := node.RegisterType(newKVType()); err != nil {
		fmt.Fprintln(os.Stderr, "objmig-node:", err)
		return 1
	}

	if *autopilot {
		err := node.EnableAutopilot(objmig.AutopilotConfig{
			Interval:      *apInterval,
			Policy:        appol,
			MinTotal:      *apMin,
			Hysteresis:    *apHysteresis,
			Cooldown:      *apCooldown,
			BudgetPerTick: *apBudget,
			DecayEvery:    *apDecay,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "objmig-node:", err)
			return 1
		}
	}

	if *placement {
		err := node.EnablePlacement(objmig.PlacementConfig{
			Heartbeat:     *plHeartbeat,
			OriginPass:    *plOriginPass,
			OverloadRatio: *plOverload,
			Hysteresis:    *plHysteresis,
			ShedRatio:     *plShedRatio,
			ShedPass:      *plShedPass,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "objmig-node:", err)
			return 1
		}
	}

	if *healthOn {
		err := node.EnableHealth(objmig.HealthConfig{
			Tick:   *healthTick,
			Window: *healthWindow,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "objmig-node:", err)
			return 1
		}
	}

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "objmig-node: metrics listen:", err)
			return 1
		}
		srv := &http.Server{Handler: node.MetricsHandler()}
		go func() { _ = srv.Serve(ml) }()
		defer func() { _ = srv.Close() }()
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
	}

	fmt.Printf("node %s listening on %s (policy %v, attach %v, autopilot %v, placement %v, health %v, capacity %d)\n",
		node.ID(), node.Addr(), node.Policy(), node.AttachPolicy(), *autopilot, *placement, *healthOn, *capacity)
	for i := 0; i < *create; i++ {
		ref, err := node.Create("kv")
		if err != nil {
			fmt.Fprintln(os.Stderr, "objmig-node:", err)
			return 1
		}
		fmt.Printf("created kv object %s\n", ref)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if *autopilot || *placement || *healthOn {
		// Periodically report what the optimiser daemons see and do.
		ticker := time.NewTicker(10 * time.Second)
		defer ticker.Stop()
	loop:
		for {
			select {
			case <-sig:
				break loop
			case <-ticker.C:
				st := node.Stats()
				if *autopilot {
					fmt.Printf("autopilot: %d scans, %d migrations (%d objects), %d deferred; tracking %d hot objects\n",
						st.AutopilotScans, st.AutopilotMigrations, st.AutopilotObjectsMoved,
						st.AutopilotDeferred, len(node.Affinity()))
				}
				if *placement {
					fmt.Printf("placement: %d scans, %d migrations (%d objects), %d vetoes, %d reservations, %d sheds (%d bytes); gossip %d out / %d in, view of %d nodes\n",
						st.PlacementScans, st.PlacementMigrations, st.PlacementObjectsMoved,
						st.PlacementVetoes, st.PlacementReservations, st.PlacementSheds,
						st.PlacementShedBytes, st.LoadGossipSent, st.LoadGossipReceived,
						len(node.LoadView()))
				}
				if *healthOn {
					fmt.Printf("health: %s after %d ticks, transitions %d degraded / %d critical, %d inbound vetoes, %d dumps\n",
						node.Health(), st.HealthTicks, st.HealthDegraded,
						st.HealthCritical, st.HealthVetoes, st.HealthDumps)
				}
				fmt.Printf("directory: %d home, %d forwards, %d cached, %d closures (%d members), %d retired; hint hit rate %s, p99 chase %d hops (%d over budget)\n",
					st.LocHome, st.LocForwards, st.LocCache, st.LocClosures,
					st.LocClosureRefs, st.ForwardsRetired,
					hitRate(st.HintHits, st.HintMisses), st.ChaseP99Hops, st.ChasesOverBudget)
			}
		}
	} else {
		<-sig
	}
	st := node.Stats()
	fmt.Printf("shutting down: served %d invocations, granted %d moves, hosted %d objects\n",
		st.InvocationsServed, st.MovesGranted, st.ObjectsHosted)
	if *autopilot {
		fmt.Printf("autopilot total: %d migrations carrying %d objects, %d deferred, %d home-update batches for %d advisories\n",
			st.AutopilotMigrations, st.AutopilotObjectsMoved, st.AutopilotDeferred,
			st.HomeUpdateBatches, st.HomeUpdatesQueued)
	}
	if *placement {
		fmt.Printf("placement total: %d migrations carrying %d objects, %d vetoes, %d load samples out / %d in\n",
			st.PlacementMigrations, st.PlacementObjectsMoved, st.PlacementVetoes,
			st.LoadGossipSent, st.LoadGossipReceived)
	}
	fmt.Printf("directory total: %d home, %d forwards, %d cached, %d closures (%d members), %d retired; hint hit rate %s, p99 chase %d hops (%d over budget)\n",
		st.LocHome, st.LocForwards, st.LocCache, st.LocClosures,
		st.LocClosureRefs, st.ForwardsRetired,
		hitRate(st.HintHits, st.HintMisses), st.ChaseP99Hops, st.ChasesOverBudget)
	return 0
}

// hitRate formats hits/(hits+misses) as a percentage, or "n/a" before
// any chase has completed.
func hitRate(hits, misses int64) string {
	if hits+misses == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
}
