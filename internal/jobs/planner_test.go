package jobs

import (
	"reflect"
	"testing"

	"objmig/internal/core"
	"objmig/internal/placement"
)

func oid(seq uint64) core.OID { return core.OID{Origin: "a", Seq: seq} }

func sample(node core.NodeID, objs, cap int64) placement.Sample {
	return placement.Sample{Node: node, Objects: objs, Capacity: cap}
}

// closure is a 1-object test unit; pressure 0, bytes as given.
func closure(seq uint64, host core.NodeID, bytes int64) Closure {
	return Closure{Anchor: oid(seq), Host: host, Objects: 1, Bytes: bytes}
}

// moveTargets flattens a plan to "anchorSeq->target" pairs for compact
// table expectations.
func moveTargets(p Plan) map[uint64]core.NodeID {
	out := make(map[uint64]core.NodeID, len(p.Moves))
	for _, m := range p.Moves {
		out[m.Anchor.Seq] = m.To
	}
	return out
}

func TestPlanDrainTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name     string
		closures []Closure
		view     []placement.Sample
		ratio    float64
		want     map[uint64]core.NodeID
		unplaced int
	}{
		{
			name: "spread across headroom",
			closures: []Closure{
				closure(1, "a", 0), closure(2, "a", 0), closure(3, "a", 0), closure(4, "a", 0),
			},
			view: []placement.Sample{
				sample("a", 4, 4), sample("b", 0, 4), sample("c", 2, 4),
			},
			ratio: 1,
			// b has the most headroom and takes the first closures;
			// once b's projection matches c's, ties go to b (lexical)
			// until both fill towards the ratio.
			want: map[uint64]core.NodeID{1: "b", 2: "b", 3: "b", 4: "c"},
		},
		{
			name: "receiver guard vetoes full peer",
			closures: []Closure{
				closure(1, "a", 0), closure(2, "a", 0), closure(3, "a", 0),
			},
			view: []placement.Sample{
				sample("a", 3, 4), sample("b", 4, 4), sample("c", 0, 2),
			},
			ratio: 1,
			// b is at capacity: vetoed for every closure. c takes two
			// and is then full itself; the third is unplaced.
			want:     map[uint64]core.NodeID{1: "c", 2: "c"},
			unplaced: 1,
		},
		{
			name: "closures hosted elsewhere are ignored",
			closures: []Closure{
				closure(1, "a", 0), closure(2, "b", 0),
			},
			view:  []placement.Sample{sample("b", 1, 8), sample("c", 0, 8)},
			ratio: 1,
			want:  map[uint64]core.NodeID{1: "c"},
		},
		{
			name:     "no sampled peers: everything unplaced",
			closures: []Closure{closure(1, "a", 0), closure(2, "a", 0)},
			view:     []placement.Sample{sample("a", 2, 2)},
			ratio:    1,
			want:     map[uint64]core.NodeID{},
			unplaced: 2,
		},
		{
			name: "byte dimension vetoes too",
			closures: []Closure{
				{Anchor: oid(1), Host: "a", Objects: 1, Bytes: 900},
			},
			view: []placement.Sample{
				{Node: "b", Objects: 0, Bytes: 200, Capacity: 10, CapBytes: 1000},
				{Node: "c", Objects: 0, Bytes: 0, Capacity: 10, CapBytes: 1000},
			},
			ratio: 1,
			// b's byte projection (1100/1000) crosses the ratio; c fits.
			want: map[uint64]core.NodeID{1: "c"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := PlanDrain("a", tc.closures, tc.view, tc.ratio)
			if targets := moveTargets(got); !reflect.DeepEqual(targets, tc.want) {
				t.Errorf("targets = %v, want %v", targets, tc.want)
			}
			if len(got.Unplaced) != tc.unplaced {
				t.Errorf("unplaced = %d (%v), want %d", len(got.Unplaced), got.Unplaced, tc.unplaced)
			}
			// Determinism: the same inputs must produce the identical
			// move list, order included.
			again := PlanDrain("a", tc.closures, tc.view, tc.ratio)
			if !reflect.DeepEqual(got, again) {
				t.Errorf("plan not deterministic:\n first %+v\nsecond %+v", got, again)
			}
		})
	}
}

func TestPlanDrainColdFirstOrder(t *testing.T) {
	t.Parallel()
	// Hot small closure vs cold big one: the cold-big closure (higher
	// bytes-per-pressure) must be planned first.
	closures := []Closure{
		{Anchor: oid(1), Host: "a", Objects: 1, Bytes: 10, Pressure: 100},
		{Anchor: oid(2), Host: "a", Objects: 1, Bytes: 1000, Pressure: 1},
	}
	view := []placement.Sample{sample("b", 0, 8)}
	p := PlanDrain("a", closures, view, 1)
	if len(p.Moves) != 2 || p.Moves[0].Anchor.Seq != 2 || p.Moves[1].Anchor.Seq != 1 {
		t.Fatalf("want cold-big first, got %+v", p.Moves)
	}
}

func TestPlanRebalanceTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name     string
		closures []Closure
		view     []placement.Sample
		ratio    float64
		want     map[uint64]core.NodeID
		unplaced int
	}{
		{
			name: "worst donor drains first, stops at the ratio",
			closures: []Closure{
				closure(1, "a", 0), closure(2, "a", 0), closure(3, "a", 0),
				closure(4, "a", 0), closure(5, "a", 0), closure(6, "a", 0),
			},
			view: []placement.Sample{
				sample("a", 6, 4), sample("b", 1, 4), sample("c", 0, 4),
			},
			ratio: 1,
			// a is at 6/4: exactly two moves bring it to 4/4 = ratio.
			// c (more headroom) takes the first, then b and c tie at
			// 1 object projected and the lexically smaller b wins.
			want: map[uint64]core.NodeID{1: "c", 2: "b"},
		},
		{
			name: "balanced cluster plans nothing",
			closures: []Closure{
				closure(1, "a", 0), closure(2, "b", 0),
			},
			view:  []placement.Sample{sample("a", 1, 4), sample("b", 1, 4)},
			ratio: 1,
			want:  map[uint64]core.NodeID{},
		},
		{
			name: "no receiver headroom leaves donor moves unplaced",
			closures: []Closure{
				closure(1, "a", 0), closure(2, "a", 0), closure(3, "a", 0),
			},
			view: []placement.Sample{
				sample("a", 3, 2), sample("b", 4, 4),
			},
			ratio: 1,
			// b is full; a cannot shed its overload anywhere. Every
			// closure is tried (a never gets under the ratio) and
			// reported unplaced.
			want:     map[uint64]core.NodeID{},
			unplaced: 3,
		},
		{
			name: "two donors, worst first",
			closures: []Closure{
				closure(1, "a", 0), closure(2, "a", 0), closure(3, "a", 0), closure(4, "a", 0),
				closure(5, "b", 0), closure(6, "b", 0), closure(7, "b", 0),
			},
			view: []placement.Sample{
				sample("a", 4, 2), sample("b", 3, 2), sample("c", 0, 8),
			},
			ratio: 1,
			// a at 2.0 beats b at 1.5; both shed onto c until they fit.
			want: map[uint64]core.NodeID{1: "c", 2: "c", 5: "c"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := PlanRebalance(tc.closures, tc.view, tc.ratio)
			if targets := moveTargets(got); !reflect.DeepEqual(targets, tc.want) {
				t.Errorf("targets = %v, want %v", targets, tc.want)
			}
			if len(got.Unplaced) != tc.unplaced {
				t.Errorf("unplaced = %d (%v), want %d", len(got.Unplaced), got.Unplaced, tc.unplaced)
			}
			again := PlanRebalance(tc.closures, tc.view, tc.ratio)
			if !reflect.DeepEqual(got, again) {
				t.Errorf("plan not deterministic:\n first %+v\nsecond %+v", got, again)
			}
		})
	}
}

func TestPlanPinTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name     string
		target   core.NodeID
		closures []Closure
		view     []placement.Sample
		want     map[uint64]core.NodeID
		unplaced int
	}{
		{
			name:   "pins everything not already there, anchor order",
			target: "b",
			closures: []Closure{
				closure(2, "a", 0), closure(1, "c", 0), closure(3, "b", 0),
			},
			view: []placement.Sample{sample("b", 1, 8)},
			want: map[uint64]core.NodeID{1: "b", 2: "b"},
		},
		{
			name:   "target capacity caps the pin",
			target: "b",
			closures: []Closure{
				closure(1, "a", 0), closure(2, "a", 0), closure(3, "a", 0),
			},
			view: []placement.Sample{sample("b", 2, 4)},
			// 2 hosted + 2 pinned = 4/4 = ratio: the third is refused.
			want:     map[uint64]core.NodeID{1: "b", 2: "b"},
			unplaced: 1,
		},
		{
			name:     "unsampled target pins at face value",
			target:   "z",
			closures: []Closure{closure(1, "a", 0)},
			view:     nil,
			want:     map[uint64]core.NodeID{1: "z"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := PlanPin(tc.target, tc.closures, tc.view, 1)
			if targets := moveTargets(got); !reflect.DeepEqual(targets, tc.want) {
				t.Errorf("targets = %v, want %v", targets, tc.want)
			}
			if len(got.Unplaced) != tc.unplaced {
				t.Errorf("unplaced = %d, want %d", len(got.Unplaced), tc.unplaced)
			}
			again := PlanPin(tc.target, tc.closures, tc.view, 1)
			if !reflect.DeepEqual(got, again) {
				t.Errorf("plan not deterministic")
			}
		})
	}
}

func TestRetargetExcludesRefuserAndUsesFreshView(t *testing.T) {
	t.Parallel()
	m := Move{Anchor: oid(1), From: "a", To: "b", Objects: 1}
	// The live view now shows b full — and even if it didn't, b is
	// excluded as the refuser. c is the only lawful re-election.
	view := []placement.Sample{sample("b", 4, 4), sample("c", 1, 4)}
	to, ok := Retarget(m, view, map[core.NodeID]bool{"b": true}, 1)
	if !ok || to != "c" {
		t.Fatalf("retarget = %q, %v; want c, true", to, ok)
	}
	// Nobody left: the move has no lawful target.
	if to, ok := Retarget(m, view[:1], map[core.NodeID]bool{"b": true}, 1); ok {
		t.Fatalf("retarget with no candidates = %q, want none", to)
	}
}

func TestWaves(t *testing.T) {
	t.Parallel()
	moves := make([]Move, 7)
	w := Waves(moves, 3)
	if len(w) != 3 || len(w[0]) != 3 || len(w[1]) != 3 || len(w[2]) != 1 {
		t.Fatalf("waves = %d (%d,%d,...), want 3,3,1", len(w), len(w[0]), len(w[1]))
	}
	if got := Waves(nil, 3); got != nil {
		t.Fatalf("waves of empty plan = %v, want nil", got)
	}
	if got := Waves(moves, 0); len(got) != 7 {
		t.Fatalf("size<1 should clamp to 1, got %d waves", len(got))
	}
}

func TestProjectDeltas(t *testing.T) {
	t.Parallel()
	view := []placement.Sample{sample("a", 4, 4), sample("b", 0, 4)}
	moves := []Move{{Anchor: oid(1), From: "a", To: "b", Objects: 2}}
	d := ProjectDeltas(moves, view)
	if len(d) != 2 {
		t.Fatalf("deltas = %d, want 2", len(d))
	}
	if d[0].Node != "a" || d[0].Before != 1 || d[0].After != 0.5 {
		t.Fatalf("a delta = %+v, want before 1 after 0.5", d[0])
	}
	if d[1].Node != "b" || d[1].Before != 0 || d[1].After != 0.5 {
		t.Fatalf("b delta = %+v, want before 0 after 0.5", d[1])
	}
}

func TestStateStrings(t *testing.T) {
	t.Parallel()
	want := map[State]string{
		Planned: "planned", Running: "running", Done: "done",
		Cancelled: "cancelled", Failed: "failed",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
	if Planned.Terminal() || Running.Terminal() {
		t.Error("planned/running must not be terminal")
	}
	if !Done.Terminal() || !Cancelled.Terminal() || !Failed.Terminal() {
		t.Error("done/cancelled/failed must be terminal")
	}
}

// BenchmarkJobPlan ranks and places 2048 single-object closures off
// one node across an 8-peer view — the drain planner's cost for a
// large node, budget-enforced by scripts/check-allocs.sh.
func BenchmarkJobPlan(b *testing.B) {
	closures := make([]Closure, 2048)
	for i := range closures {
		closures[i] = Closure{
			Anchor:   core.OID{Origin: "a", Seq: uint64(i + 1)},
			Host:     "a",
			Objects:  1,
			Bytes:    int64(i%7) * 128,
			Pressure: int64(i % 13),
		}
	}
	view := make([]placement.Sample, 8)
	for i := range view {
		view[i] = placement.Sample{
			Node:     core.NodeID([]byte{'b' + byte(i)}),
			Objects:  int64(i * 100),
			Capacity: 4096,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := PlanDrain("a", closures, view, 1)
		if len(p.Moves) != len(closures) {
			b.Fatalf("planned %d of %d", len(p.Moves), len(closures))
		}
	}
}

// TestElectSkipsUnhealthyReceivers: a degraded or critical node is
// never elected as a receiver, even with the most headroom; the move
// lands on the healthy peer or goes Unplaced.
func TestElectSkipsUnhealthyReceivers(t *testing.T) {
	t.Parallel()
	degraded := sample("roomy", 0, 100)
	degraded.Health = placement.HealthDegraded
	view := []placement.Sample{
		degraded,
		sample("a", 0, 10),
		sample("tight", 8, 10),
	}
	plan := PlanDrain("a", []Closure{closure(1, "a", 0)}, view, 1)
	if got := moveTargets(plan); got[1] != "tight" {
		t.Fatalf("elected %v, want tight (degraded roomy skipped)", got)
	}

	// Only unhealthy peers left: unplaced.
	crit := sample("only", 0, 100)
	crit.Health = placement.HealthCritical
	plan = PlanDrain("a", []Closure{closure(1, "a", 0)},
		[]placement.Sample{crit, sample("a", 1, 10)}, 1)
	if len(plan.Moves) != 0 || len(plan.Unplaced) != 1 {
		t.Fatalf("plan = %+v, want 1 unplaced", plan)
	}
}

// TestPlanRebalanceCriticalDonorDrains: a critical node joins the
// donor set below the overload ratio, goes first, and is emptied
// outright instead of relieved to the ratio.
func TestPlanRebalanceCriticalDonorDrains(t *testing.T) {
	t.Parallel()
	sick := sample("sick", 3, 100) // util 0.03: no rebalance cause on its own
	sick.Health = placement.HealthCritical
	view := []placement.Sample{
		sick,
		sample("fat", 12, 10), // util 1.2: ordinary donor
		sample("roomy", 0, 100),
	}
	closures := []Closure{
		closure(1, "sick", 0), closure(2, "sick", 0), closure(3, "sick", 0),
		closure(4, "fat", 0), closure(5, "fat", 0), closure(6, "fat", 0),
	}
	plan := PlanRebalance(closures, view, 1)
	targets := moveTargets(plan)
	for seq := uint64(1); seq <= 3; seq++ {
		if targets[seq] != "roomy" {
			t.Fatalf("critical donor closure %d -> %v, want roomy (plan %+v)", seq, targets[seq], plan)
		}
	}
	// Critical donor's moves precede the overloaded donor's.
	if len(plan.Moves) < 4 || plan.Moves[0].From != "sick" || plan.Moves[1].From != "sick" || plan.Moves[2].From != "sick" {
		t.Fatalf("critical donor not drain-priority: %+v", plan.Moves)
	}
	// The ordinary donor was only relieved to the ratio, not emptied.
	fatMoves := 0
	for _, m := range plan.Moves {
		if m.From == "fat" {
			fatMoves++
			if m.To == "sick" {
				t.Fatalf("rebalance routed load onto the critical node: %+v", m)
			}
		}
	}
	if fatMoves != 2 {
		t.Fatalf("fat shed %d closures, want 2 (12 -> 10 at cap 10)", fatMoves)
	}
}
