// Package wire defines the message vocabulary of the live runtime —
// the request and response bodies exchanged between nodes and the
// error representation that crosses the wire — together with the
// append-style codec that puts them on the wire: a hand-rolled binary
// fast path for the high-frequency bodies and a gob fallback for the
// rest, both encoding directly into the caller's buffer
// (MarshalAppend) so a message becomes exactly one copy in exactly one
// frame.
//
// Objects are linearised for transfer exactly as the paper's system
// model describes (Section 3.1): a snapshot carries the object's state,
// its migration-policy state (locks, counters, the fixed flag) and its
// attachment edges, so policy decisions survive the move.
//
// Group migration moves state as a bounded stream rather than one
// monolithic blob: the coordinator opens a session at the target
// (MigrateBegin), forwards snapshots in size-bounded InstallChunk
// frames, and commits atomically with InstallCommit. See
// docs/protocol.md for the full message catalogue and compatibility
// rules, and docs/wire-format.md for the byte-level layouts and the
// buffer-ownership rules of the zero-copy pipeline.
package wire

import (
	"fmt"
	"time"

	"objmig/internal/core"
)

// Kind discriminates request bodies.
type Kind uint8

// The request kinds, one per protocol exchange. See docs/protocol.md
// for the catalogue; numbers are append-only (new kinds go immediately
// before kMax, existing constants never renumber).
const (
	KInvoke Kind = iota + 1
	KMove
	KEnd
	KMigrate
	KLocate
	KPause
	KInstall
	KCommit
	KAbort
	KHomeUpdate
	KEdgeAdd
	KEdgeDel
	KEdges
	KFix
	KPing
	KMigrateBegin
	KInstallChunk
	KInstallCommit
	KLoadGossip
	KInventory
	kMax
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	names := [...]string{
		KInvoke: "invoke", KMove: "move", KEnd: "end", KMigrate: "migrate",
		KLocate: "locate", KPause: "pause", KInstall: "install",
		KCommit: "commit", KAbort: "abort", KHomeUpdate: "home-update",
		KEdgeAdd: "edge-add", KEdgeDel: "edge-del", KEdges: "edges",
		KFix: "fix", KPing: "ping", KMigrateBegin: "migrate-begin",
		KInstallChunk: "install-chunk", KInstallCommit: "install-commit",
		KLoadGossip: "load-gossip", KInventory: "inventory",
	}
	if k >= 1 && int(k) < len(names) && names[k] != "" {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a known kind.
func (k Kind) Valid() bool { return k >= KInvoke && k < kMax }

// Marshal encodes a message body into a fresh buffer: a hand-rolled
// binary fast path for the high-frequency bodies (invoke, locate,
// home-update, snapshots and the migration control bodies), gob for
// the rest. Prefer MarshalAppend on hot paths — it writes into a
// caller-supplied buffer instead of allocating one per message.
func Marshal(v interface{}) ([]byte, error) {
	return MarshalAppend(nil, v)
}

// MarshalAppend appends the encoding of a message body to dst and
// returns the extended slice, growing it as needed (like append, the
// result may share dst's backing array or be a reallocation — always
// use the returned slice). The message is encoded exactly once, in
// place: fast-path bodies append their fields directly, the gob
// fallback streams into the tail. This is what lets internal/rpc
// reserve a frame header in a pooled buffer and land the body right
// behind it with no intermediate copy.
//
// Ownership: dst remains the caller's. On error the returned slice is
// dst unchanged — no partial body is ever published into a buffer the
// caller will send or recycle.
func MarshalAppend(dst []byte, v interface{}) ([]byte, error) {
	if data, ok := marshalFastAppend(dst, v); ok {
		return data, nil
	}
	return marshalGobAppend(dst, v)
}

// Unmarshal decodes a message body into v (a pointer).
//
// Ownership: Unmarshal copies every variable-length field out of data
// — the decoded value never aliases the input. Callers may therefore
// recycle the frame that carried data (framebuf.Put in the rpc layer)
// the moment Unmarshal returns.
func Unmarshal(data []byte, v interface{}) error {
	if len(data) == 0 {
		return fmt.Errorf("wire: unmarshal %T: empty body", v)
	}
	if data[0] == tagGob {
		return unmarshalGob(data[1:], v)
	}
	return unmarshalFast(data[0], data[1:], v)
}

// ErrCode classifies remote failures so callers can react (retry on
// moved, report fixed, and so on).
type ErrCode int

const (
	// CodeInternal: an unclassified failure inside the remote node.
	CodeInternal ErrCode = iota + 1
	// CodeNotFound: the addressed object is unknown at the target and
	// the target has no forwarding pointer for it.
	CodeNotFound
	// CodeMoved: the object has left; To names the next hop.
	CodeMoved
	// CodeFixed: the object is fixed and cannot migrate.
	CodeFixed
	// CodeDenied: a migration-policy denial (placement lock held,
	// dynamic policy kept the object, working set busy).
	CodeDenied
	// CodeUnknownType: the target node has no registration for the
	// object's type and cannot host it.
	CodeUnknownType
	// CodeUnknownMethod: the object's type has no such method.
	CodeUnknownMethod
	// CodeExclusive: an attachment violated the exclusive-attachment
	// admission rule.
	CodeExclusive
	// CodeBadRequest: malformed or inapplicable request.
	CodeBadRequest
	// CodeUnavailable: the node is shutting down.
	CodeUnavailable
)

// RemoteError is the wire representation of a failure. It is the error
// returned by the RPC layer for application-level failures.
type RemoteError struct {
	Code ErrCode
	Msg  string
	To   core.NodeID // next hop for CodeMoved
}

// Error implements error.
func (e *RemoteError) Error() string {
	if e.Code == CodeMoved {
		return fmt.Sprintf("remote: %s (moved to %s)", e.Msg, e.To)
	}
	return "remote: " + e.Msg
}

// Errorf builds a RemoteError.
func Errorf(code ErrCode, format string, args ...interface{}) *RemoteError {
	return &RemoteError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// EdgeRec is one attachment edge in transferable form.
type EdgeRec struct {
	Other    core.OID
	Alliance core.AllianceID
}

// Snapshot is a linearised object: everything a node needs to
// reinstantiate it.
type Snapshot struct {
	ID    core.OID
	Type  string
	State []byte // gob of the user struct
	Pol   core.ObjState
	Edges []EdgeRec
	// Gen is the object's departure generation (bumped by the
	// coordinator per shipped snapshot); it orders location reports.
	Gen uint64
}

// SnapshotSize estimates the snapshot's encoded fast-path size in
// bytes. Pause budgeting (PauseReq.MaxBytes) and the coordinator's
// chunk accounting both use this estimate, so "bytes per chunk" means
// the same thing on both ends without encoding anything twice.
func SnapshotSize(s *Snapshot) int {
	n := 40 + len(s.ID.Origin) + len(s.Type) + len(s.State) + len(s.Pol.Lock.Owner)
	for _, e := range s.Edges {
		n += 16 + len(e.Other.Origin)
	}
	for k := range s.Pol.OpenMoves {
		n += 16 + len(k)
	}
	return n
}

// --- Request/response bodies ---

// InvokeReq asks the receiving node to execute a method on a hosted
// object. From names the calling node so the host's affinity tracker
// can attribute the access pressure.
type InvokeReq struct {
	Obj    core.OID
	Method string
	Arg    []byte
	From   core.NodeID
}

// InvokeResp returns the encoded result and the node that executed the
// call (a location hint for the caller's cache).
type InvokeResp struct {
	Result []byte
	At     core.NodeID
}

// MoveReq is the move-primitive: the block on node From asks the
// object's host to bring the object (and its working set) to From.
type MoveReq struct {
	Obj      core.OID
	From     core.NodeID
	Block    core.BlockID
	Alliance core.AllianceID
}

// MoveOutcome mirrors core.MoveAction across the wire.
type MoveOutcome int

// The move-request verdicts: denied outright, granted without
// migration (the object stays and the block runs remotely), or
// granted with migration.
const (
	MoveDenied MoveOutcome = iota + 1
	MoveStayed
	MoveMigrated
)

// MoveResp reports the policy's verdict and the object's location after
// the request.
type MoveResp struct {
	Outcome MoveOutcome
	Reason  core.DenyReason
	At      core.NodeID
	// Moved lists the objects that travelled (the working set), so
	// the block can release them on end.
	Moved []core.OID
}

// EndReq closes move-block Block of node From for object Obj. Members
// lists the working set that was granted (and, under placement,
// locked) at move time, so the end releases exactly what the move
// took — even if attachments changed while the block ran.
type EndReq struct {
	Obj      core.OID
	From     core.NodeID
	Block    core.BlockID
	Alliance core.AllianceID
	Members  []core.OID
}

// EndResp reports what the end-request did.
type EndResp struct {
	Unlocked bool
	Migrated bool // reinstantiation moved the object
	At       core.NodeID
}

// MigrateReq is the explicit migrate-primitive: move Obj (and working
// set) to Target, optionally fixing it there (refix).
type MigrateReq struct {
	Obj      core.OID
	Target   core.NodeID
	Alliance core.AllianceID
	Fix      bool
}

// MigrateResp reports the object's location after the migration.
type MigrateResp struct {
	At    core.NodeID
	Moved []core.OID
}

// LocateReq asks a node (normally the object's origin) where the object
// lives.
type LocateReq struct{ Obj core.OID }

// LocateResp answers with the best known location.
type LocateResp struct{ At core.NodeID }

// PauseReq asks a node to pause and snapshot the listed local objects
// as part of group migration Token.
//
// MaxBytes, when positive, bounds the cumulative encoded snapshot size
// of one response: the host pauses and snapshots objects in request
// order and stops once the budget is exceeded, returning the untouched
// rest as PauseResp.Pending (at least one object is always processed,
// so oversized objects still make progress). The coordinator re-issues
// the request with the pending tail until it drains — this is what
// keeps a streamed group migration's per-frame footprint bounded by
// the chunk size rather than the working-set size.
//
// Lease, when positive, arms a pause lease at the host: if neither a
// commit nor an abort for (From, Token) arrives within the lease, the
// host resolves the migration's outcome by asking Target where a
// member lives (the install is atomic, so one member answers for the
// whole group) — departing the objects when the install committed and
// resuming them when it did not. From names the coordinator (leases,
// like staging sessions, are keyed per coordinator because tokens are
// only node-unique); Target names the migration target the lease
// recovery will consult.
type PauseReq struct {
	Objs     []core.OID
	Token    uint64
	MaxBytes int64
	Lease    time.Duration
	From     core.NodeID
	Target   core.NodeID
	// Trace is the migration's TraceID (0 = untraced); the host stamps
	// its pause/snapshot spans with it.
	Trace uint64
}

// PauseResp carries the snapshots of the paused objects. Pending lists
// the requested objects the host did not pause because the response
// hit the PauseReq.MaxBytes budget; the coordinator must re-request
// them (or abort the migration).
type PauseResp struct {
	Snapshots []Snapshot
	Pending   []core.OID
}

// InstallReq delivers snapshots to the target node of a migration in
// one shot. Small groups — one source host, everything within a single
// chunk budget — take this path (one frame instead of a
// begin/chunk/commit session); larger or multi-host groups stream.
// From names the coordinator so the target can disarm the matching
// pause lease when it hosted some of the group itself.
type InstallReq struct {
	Snapshots []Snapshot
	Token     uint64
	From      core.NodeID
	// Trace is the migration's TraceID (0 = untraced).
	Trace uint64
}

// InstallResp acknowledges installation.
type InstallResp struct{}

// MigrateBeginReq opens a streaming migration session at the target:
// snapshots arriving in InstallChunk frames for (From, Token) are
// staged in a session buffer and installed atomically only when the
// coordinator commits. Objs is the full expected member set, so the
// commit can verify that no chunk was lost. A session that sees no
// traffic for the target's configured TTL is discarded (coordinator
// crash mid-stream leaves the target clean).
type MigrateBeginReq struct {
	Token uint64
	From  core.NodeID // the coordinator; sessions are keyed (From, Token)
	Objs  []core.OID
	// Bytes is the coordinator's estimate of the group's snapshot
	// bytes (the sum of the members' last-known state sizes). The
	// target's reservation ledger claims this footprint against its
	// byte capacity at admission, before any chunk is streamed.
	Bytes int64
	// Trace is the migration's TraceID (0 = untraced); the session
	// remembers it so every staged chunk and the final install are
	// stamped without re-sending it per frame.
	Trace uint64
}

// MigrateBeginResp acknowledges the session and reports the admission
// reservation the target's ledger claimed for it.
type MigrateBeginResp struct {
	// Reserved reports whether the target recorded a (bytes, objects)
	// claim for this session — false when the target is uncapped, has
	// no placement daemon, or runs with reservations disabled.
	Reserved bool
	// ReservedBytes is the byte footprint of the claim (0 when
	// Reserved is false).
	ReservedBytes int64
}

// InstallChunkReq delivers one size-bounded slice of a streaming
// migration's snapshots to the target's session buffer. Chunks carry
// disjoint member subsets, so their arrival order does not matter; Seq
// numbers them for diagnostics.
type InstallChunkReq struct {
	Token     uint64
	From      core.NodeID
	Seq       uint64
	Snapshots []Snapshot
	// Trace is the migration's TraceID (0 = untraced), redundant with
	// the session's MigrateBegin — carried so a chunk's stage span can
	// be stamped even before the session is resolved.
	Trace uint64
}

// InstallChunkResp acknowledges a chunk; Staged is the total number of
// objects staged in the session so far.
type InstallChunkResp struct{ Staged int }

// InstallCommitReq closes a streaming migration session: the target
// verifies every expected member was staged and installs the whole
// group in one shard-aware atomic batch.
type InstallCommitReq struct {
	Token uint64
	From  core.NodeID
	// Trace is the migration's TraceID (0 = untraced).
	Trace uint64
}

// InstallCommitResp reports the number of objects installed.
type InstallCommitResp struct{ Installed int }

// CommitReq tells the old hosts that the move is complete: replace the
// paused entries with forwarding pointers to NewHome and release
// waiters. From names the coordinator, disarming the matching pause
// lease.
type CommitReq struct {
	Objs    []core.OID
	NewHome core.NodeID
	Token   uint64
	From    core.NodeID
	// Gens aligns with Objs: each object's departure generation, for
	// generation-ordered forwarding state at the old host.
	Gens []uint64
	// Anchor, when set, names the attachment closure the group migrated
	// as; old hosts may then coalesce the group's forwarding pointers
	// into one closure record.
	Anchor core.OID
	// Trace is the migration's TraceID (0 = untraced); old hosts stamp
	// their directory-update spans with it.
	Trace uint64
}

// CommitResp acknowledges the commit.
type CommitResp struct{}

// AbortReq rolls a pause back (the migration failed elsewhere). At the
// migration target it additionally discards the streaming session
// staged for (From, Token), if one exists.
type AbortReq struct {
	Objs  []core.OID
	Token uint64
	From  core.NodeID
}

// AbortResp acknowledges the rollback.
type AbortResp struct{}

// AffinityObs is one observed (object, caller, count) access-pressure
// sample, gossiped alongside home updates when objects migrate so the
// origin's affinity tracker keeps warm knowledge of who uses what.
type AffinityObs struct {
	Obj   core.OID
	From  core.NodeID
	Count int64
}

// NodeLoad is one node's load/capacity sample — the currency of the
// cluster load-gossip protocol behind the placement engine. Samples
// piggyback on HomeUpdate request/response bodies and travel on the
// low-rate load-gossip heartbeat, so every placement-enabled node
// converges on a decaying view of its peers.
type NodeLoad struct {
	// Node is the sampled node (the sender of a piggybacked sample).
	Node core.NodeID
	// Objects is the node's live (non-forwarding) hosted-object count.
	Objects int64
	// Bytes approximates the resident state bytes of hosted objects
	// (snapshot sizes at install time; locally created objects count
	// zero until they migrate once).
	Bytes int64
	// RateMilli is the node's smoothed invocation-serve rate in
	// milli-invocations per second (an EWMA; see stats.EWMA).
	RateMilli int64
	// Capacity is the node's configured object capacity
	// (Config.Capacity); 0 means uncapped.
	Capacity int64
	// CapBytes is the node's configured resident-byte capacity
	// (Config.CapacityBytes); 0 means uncapped.
	CapBytes int64
	// Seq orders samples from the same node: receivers keep the
	// highest Seq and ignore stragglers.
	Seq uint64
	// Health is the node's gossiped health state (0 healthy,
	// 1 degraded, 2 critical; see the health package). Peers feed it
	// into their placement views so scoring can discount degraded
	// nodes and veto critical ones without a dedicated RPC.
	Health uint8
}

// HomeUpdate tells an origin node where its objects now live. It is
// advisory: lookups fall back to forwarding chains when it is lost.
// Aff piggy-backs the departing host's affinity observations for the
// moved objects (best-effort gossip; may be empty). Load, when
// non-nil, piggy-backs the sender's current load sample for the
// origin's placement view.
type HomeUpdate struct {
	Objs []core.OID
	At   core.NodeID
	Aff  []AffinityObs
	Load *NodeLoad
	// Gens, when non-empty, aligns with Objs and carries each object's
	// departure generation so the origin can drop stale reports.
	Gens []uint64
	// Closures carries closure-level location reports: each entry
	// replaces per-object Objs entries for a whole attachment closure.
	Closures []ClosureLoc
	// Trace is the TraceID of the migration this update reports, when
	// every coalesced entry shares one (0 when untraced or mixed); the
	// origin stamps its directory-update span with it.
	Trace uint64
}

// ClosureLoc is one closure-level location report: the members of the
// anchor's attachment closure now live (as a unit) at the update's At
// node, at the given departure generation.
type ClosureLoc struct {
	Anchor  core.OID
	Gen     uint64
	Members []core.OID
}

// HomeUpdateResp acknowledges the update. Load, when non-nil, carries
// the origin's own load sample back to the sender — the response half
// of the piggybacked load gossip.
type HomeUpdateResp struct {
	Load *NodeLoad
}

// LoadGossipReq is the load-gossip heartbeat: the sender's current
// load sample. The receiver folds it into its placement view.
type LoadGossipReq struct {
	Load NodeLoad
}

// LoadGossipResp answers a heartbeat with the receiver's own sample,
// so one round trip teaches both ends.
type LoadGossipResp struct {
	Load NodeLoad
}

// InventoryReq asks a node for summaries of its hosted migratable
// units — the job planners' remote input (rebalance jobs enumerate
// every donor candidate's inventory before planning). Answered from
// the store alone: no pauses, no closure walks.
type InventoryReq struct {
	// MaxUnits caps the reply (0 = unlimited).
	MaxUnits int64
}

// InventoryUnit summarises one hosted object as a planning unit. The
// executor walks the real attachment closure at move time, so the
// unit's anchor granularity only affects plan accuracy, never
// migration correctness.
type InventoryUnit struct {
	Anchor   core.OID
	Bytes    int64 // approximate resident state bytes
	Pressure int64 // total observed access pressure (affinity)
}

// InventoryResp carries the units plus the answering node's fresh,
// authoritative load sample — an inventory fetch doubles as a view
// refresh for the planner.
type InventoryResp struct {
	Units []InventoryUnit
	Load  NodeLoad
}

// EdgeAddReq adds half an attachment edge at the host of Obj.
type EdgeAddReq struct {
	Obj      core.OID
	Other    core.OID
	Alliance core.AllianceID
	Mode     core.AttachMode
}

// EdgeAddResp acknowledges the half-edge.
type EdgeAddResp struct{}

// EdgeDelReq removes half an attachment edge.
type EdgeDelReq struct {
	Obj      core.OID
	Other    core.OID
	Alliance core.AllianceID
}

// EdgeDelResp reports whether the edge existed.
type EdgeDelResp struct{ Existed bool }

// EdgesReq fetches the attachment adjacency of a hosted object (used by
// the closure walk of group migration).
type EdgesReq struct{ Obj core.OID }

// EdgesResp lists the edges.
type EdgesResp struct{ Edges []EdgeRec }

// FixReq sets or clears the fixed flag of a hosted object, or (with
// Query) reads it without changing it.
type FixReq struct {
	Obj   core.OID
	Fix   bool
	Query bool
}

// FixResp reports the flag after the request.
type FixResp struct{ Fixed bool }

// PingReq checks liveness.
type PingReq struct{ Payload string }

// PingResp echoes the payload.
type PingResp struct{ Payload string }
