// The flight recorder is the black box: a bounded, allocation-free
// ring of recent entries — events, trace spans, periodic load/health
// samples — that keeps recording in the background and only costs a
// serialisation when something goes wrong. A transition to degraded or
// critical (or an operator's explicit dump request) freezes the ring
// into a Dump: a JSON document carrying the trigger reason, the
// offending window's numbers, and the raw entries, so "why was this
// migration slow" is answerable after the evidence would otherwise
// have been overwritten.

package health

import (
	"encoding/json"
	"sync"
	"time"
)

// EntryKind says what one recorder entry is.
type EntryKind uint8

const (
	// EntryEvent is a runtime event (events.go Event), Label holding
	// kind/outcome.
	EntryEvent EntryKind = iota + 1
	// EntrySpan is a migration trace span, Label holding the phase.
	EntrySpan
	// EntryHealth is one health tick's verdict, Label holding the
	// state.
	EntryHealth
	// EntryLoad is a periodic load sample, Label holding the node.
	EntryLoad
)

func (k EntryKind) String() string {
	switch k {
	case EntryEvent:
		return "event"
	case EntrySpan:
		return "span"
	case EntryHealth:
		return "health"
	case EntryLoad:
		return "load"
	default:
		return "unknown"
	}
}

// Entry is one recorded observation. Fixed shape — the strings are
// headers onto memory that already exists (event outcome constants,
// phase names), so recording copies no bytes and allocates nothing.
type Entry struct {
	At     int64     `json:"at"`              // UnixNano
	Kind   EntryKind `json:"-"`               // see KindName
	Label  string    `json:"label"`           // kind-specific tag
	Node   string    `json:"node,omitempty"`  // peer the entry concerns
	Trace  uint64    `json:"trace,omitempty"` // migration TraceID when known
	Values [4]int64  `json:"values"`          // kind-specific numbers
}

// entryJSON is Entry with the kind spelled out for the dump.
type entryJSON struct {
	Entry
	KindName string `json:"kind"`
}

// DefaultRecorderSize is the default ring capacity.
const DefaultRecorderSize = 1024

// Recorder is the bounded entry ring. Record is allocation-free and
// safe for concurrent use; Snapshot and Dump copy under the lock.
type Recorder struct {
	mu      sync.Mutex
	entries []Entry
	next    int
	n       int
	total   int64
}

// NewRecorder returns a ring holding up to capacity entries
// (DefaultRecorderSize when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderSize
	}
	return &Recorder{entries: make([]Entry, capacity)}
}

// Record appends one entry, overwriting the oldest when full.
// Allocation-free.
func (r *Recorder) Record(e Entry) {
	r.mu.Lock()
	r.entries[r.next] = e
	r.next = (r.next + 1) % len(r.entries)
	if r.n < len(r.entries) {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of entries ever recorded.
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot copies the live entries, oldest first.
func (r *Recorder) Snapshot() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.entries)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.entries[(start+i)%len(r.entries)])
	}
	return out
}

// Dump is a frozen recorder ring plus the context that froze it.
type Dump struct {
	Node    string           `json:"node"`
	At      time.Time        `json:"at"`
	Reason  string           `json:"reason"` // "transition" or "manual"
	State   string           `json:"state"`
	Worst   string           `json:"worst,omitempty"` // signal that set the level
	Values  map[string]int64 `json:"values"`          // windowed signal values at the trigger
	Total   int64            `json:"total"`           // entries ever recorded
	Entries []entryJSON      `json:"entries"`
}

// Dump freezes the ring with the given trigger context. The verdict
// supplies the state, worst signal and the offending window's values.
func (r *Recorder) Dump(node, reason string, v Verdict) *Dump {
	vals := make(map[string]int64, NumSignals)
	for i := 0; i < NumSignals; i++ {
		vals[Signal(i).String()] = v.Values[i]
	}
	d := &Dump{
		Node:   node,
		At:     time.Now().UTC(),
		Reason: reason,
		State:  v.State.String(),
		Values: vals,
		Total:  r.Total(),
	}
	if v.Level > Healthy {
		d.Worst = v.Worst.String()
	}
	snap := r.Snapshot()
	d.Entries = make([]entryJSON, len(snap))
	for i, e := range snap {
		d.Entries[i] = entryJSON{Entry: e, KindName: e.Kind.String()}
	}
	return d
}

// JSON serialises the dump, indented for operators.
func (d *Dump) JSON() []byte {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil { // fixed shape; cannot fail
		return []byte(`{"error":"marshal failed"}`)
	}
	return append(b, '\n')
}
