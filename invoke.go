package objmig

import (
	"context"
	"errors"
	"fmt"
	"time"

	"objmig/internal/core"
	"objmig/internal/store"
	"objmig/internal/wire"
)

// InvokeRaw invokes a method with a pre-encoded argument, chasing
// forwarding pointers and location hints until the object is found.
// Typed callers should prefer Call.
func (n *Node) InvokeRaw(ctx context.Context, ref Ref, method string, arg []byte) ([]byte, error) {
	if ref.IsZero() {
		return nil, fmt.Errorf("%w: zero reference", ErrNotFound)
	}
	oid := ref.OID
	c := n.newChase(oid)
	defer c.end()
	for c.next(ctx) {
		// One sharded lookup resolves both the hosted record and, when
		// the object is elsewhere, the best location hint.
		rec, target := n.store.Lookup(oid)
		if rec != nil {
			n.aff.RecordLocal(oid)
			out, err := n.invokeLocal(ctx, rec, method, arg)
			if to, moved := movedTo(err); moved {
				n.store.Learn(oid, to)
				continue
			}
			return out, fromRemote(err)
		}
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
		}
		var resp wire.InvokeResp
		n.stats.remoteCallsSent.Add(1)
		c.hop()
		hopStart := time.Now()
		err := n.call(ctx, target, wire.KInvoke,
			&wire.InvokeReq{Obj: oid, Method: method, Arg: arg, From: n.id}, &resp)
		n.tel.invokeRemote.ObserveSince(hopStart)
		if err == nil {
			n.store.Learn(oid, resp.At)
			return resp.Result, nil
		}
		if to, moved := movedTo(err); moved {
			n.store.Learn(oid, to)
			continue
		}
		if isCode(err, wire.CodeNotFound) && target != oid.Origin {
			// Stale hint: fall back towards the origin.
			n.store.InvalidateAt(oid, target)
			continue
		}
		return nil, fromRemote(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recState := "no-record"
	if rec, ok := n.record(oid); ok {
		rec.Mu.Lock()
		recState = fmt.Sprintf("status=%d movedTo=%s", rec.Status, rec.MovedTo)
		rec.Mu.Unlock()
	}
	return nil, fmt.Errorf("%w: %s (chase budget exhausted; %s; %s)", ErrUnreachable, oid, recState, n.store.Debug(oid))
}

// isCode reports whether err is a RemoteError with the given code.
func isCode(err error, code wire.ErrCode) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && re.Code == code
}

// chase is the adaptive retry budget of one location chase. A chase
// normally terminates within a handful of hops, and the attempt budget
// (Config.CallRetries) covers that common case cheaply. But a fixed
// attempt count alone is a wall-clock budget in disguise — 32 attempts
// at 1 ms apart is ~32 ms — and under heavy migration ping-pong (or on
// a starved single-CPU box) a single transfer can take longer than
// that, so a correct chase could exhaust its budget while the object
// was merely in flight. The deadline (Config.ChaseDeadline) closes
// that hole: a chase keeps retrying until BOTH the attempt budget and
// the deadline are spent, so churn stretches the chase instead of
// failing it, while the deadline still guarantees termination.
type chase struct {
	n        *Node
	oid      core.OID
	attempt  int
	hops     int       // remote calls issued — the directory's cost metric
	start    time.Time // chase begin, for the latency histogram
	deadline time.Time // zero when ChaseDeadline is disabled
}

// newChase starts a chase budget for one logical operation on oid.
func (n *Node) newChase(oid core.OID) *chase {
	c := &chase{n: n, oid: oid, start: time.Now()}
	if d := n.chaseDeadline; d > 0 {
		c.deadline = c.start.Add(d)
	}
	return c
}

// hop records one remote call of the chase. Callers bump it immediately
// before each RPC so end() sees the true network cost.
func (c *chase) hop() { c.hops = c.hops + 1 }

// end folds the finished chase into the node's directory statistics:
// zero hops means the object was local (not a directory event at all),
// one hop means the first hint was right (a hit), more means chasing
// (a miss). Chases longer than DirectoryConfig.ChaseHopBudget also
// count as over-budget and emit an EventChase so operators can spot
// directories gone stale.
func (c *chase) end() {
	n := c.n
	switch {
	case c.hops == 0:
		return
	case c.hops == 1:
		n.stats.hintHits.Add(1)
	default:
		n.stats.hintMisses.Add(1)
	}
	n.tel.chaseLat.ObserveSince(c.start)
	n.stats.chaseHops.Add(int64(c.hops))
	bucket := c.hops
	if bucket > len(n.stats.chaseHist) {
		bucket = len(n.stats.chaseHist)
	}
	n.stats.chaseHist[bucket-1].Add(1)
	if budget := n.dir.ChaseHopBudget; budget > 0 && c.hops > budget {
		n.stats.chasesOverBudget.Add(1)
		n.emit(Event{Kind: EventChase, Obj: Ref{OID: c.oid}, Outcome: "over-budget", Hops: c.hops})
	}
}

// next reports whether another attempt may run, backing off briefly
// between attempts so in-flight transfers can land before the next
// try (long chases stretch the pause — by then the object is clearly
// mid-transfer and tight polling only adds load). It returns false
// when the budget is spent or the context is done; callers
// distinguish the two via ctx.Err().
func (c *chase) next(ctx context.Context) bool {
	if c.attempt == 0 {
		c.attempt++
		return ctx.Err() == nil
	}
	if c.attempt >= c.n.retries && (c.deadline.IsZero() || !time.Now().Before(c.deadline)) {
		return false
	}
	d := time.Millisecond
	switch {
	case c.attempt >= 256:
		d = 8 * time.Millisecond
	case c.attempt >= 64:
		d = 4 * time.Millisecond
	}
	c.attempt++
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// selfHintRetry resolves the "my own tables point at me but I don't
// host it" case: if any record exists (the object just arrived, is
// arriving, or left a stub disagreeing with the registry for an
// instant) the chase should retry; only a never-hosted object is
// genuinely unknown.
func (n *Node) selfHintRetry(oid core.OID) bool {
	_, ok := n.record(oid)
	return ok
}

// invokeLocal executes a method on a hosted object, serialising
// invocations per object and waiting out migrations in progress.
func (n *Node) invokeLocal(ctx context.Context, rec *store.Record, method string, arg []byte) (out []byte, err error) {
	if err := rec.Acquire(ctx); err != nil {
		return nil, err
	}
	defer rec.Release()
	t, ok := n.typeByName(rec.TypeName)
	if !ok {
		return nil, wire.Errorf(wire.CodeUnknownType, "type %q not registered on %s", rec.TypeName, n.id)
	}
	m, ok := t.method(method)
	if !ok {
		return nil, wire.Errorf(wire.CodeUnknownMethod, "%s.%s", rec.TypeName, method)
	}
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("objmig: method %s.%s panicked: %v", rec.TypeName, method, r)
		}
	}()
	n.stats.invocationsServed.Add(1)
	n.emit(Event{Kind: EventInvoke, Obj: Ref{OID: rec.ID}, Outcome: method})
	c := &Ctx{ctx: ctx, node: n, self: Ref{OID: rec.ID}}
	defer n.tel.invokeLocal.ObserveSince(time.Now())
	return m(c, rec.Inst, arg)
}

// handleInvoke serves a remote invocation, attributing the access to
// the calling node in the affinity tracker.
func (n *Node) handleInvoke(ctx context.Context, req *wire.InvokeReq) (*wire.InvokeResp, error) {
	rec, ok := n.record(req.Obj)
	if !ok {
		return nil, n.whereabouts(req.Obj)
	}
	// Attribute pressure only for objects actually served here: a
	// forwarding stub answering misdirected calls must not accumulate
	// phantom counts that would poison a later return of the object.
	if n.aff.Enabled() && !rec.IsGone() {
		n.aff.Record(req.Obj, req.From)
	}
	out, err := n.invokeLocal(ctx, rec, req.Method, req.Arg)
	if err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return nil, re
		}
		return nil, wire.Errorf(wire.CodeInternal, "%v", err)
	}
	return &wire.InvokeResp{Result: out, At: n.id}, nil
}

// whereabouts builds the error for an object this node does not host:
// a redirect when anything points elsewhere, not-found otherwise.
func (n *Node) whereabouts(oid core.OID) *wire.RemoteError {
	if to, ok := n.store.Forward(oid); ok && to != n.id {
		return &wire.RemoteError{Code: wire.CodeMoved, Msg: oid.String(), To: to}
	}
	if oid.Origin == n.id {
		if at, ok := n.store.Home(oid); ok && at != n.id {
			return &wire.RemoteError{Code: wire.CodeMoved, Msg: oid.String(), To: at}
		}
	}
	// Double check: an installation may have landed between the
	// caller's record lookup and the forward lookup above (the record
	// appears before the forwarding pointer is cleared). Answer
	// "moved to me" so the caller simply retries here.
	if _, ok := n.hostedRecord(oid); ok {
		return &wire.RemoteError{Code: wire.CodeMoved, Msg: oid.String(), To: n.id}
	}
	return wire.Errorf(wire.CodeNotFound, "object %s unknown at %s", oid, n.id)
}

// handleLocate serves a location query with authoritative knowledge
// only: hosting, the registry's (chain-shortened) forwarding pointer,
// or the origin's home index. Hearsay (cached hints) is never served —
// stale caches on bystander nodes would let location chases cycle.
func (n *Node) handleLocate(req *wire.LocateReq) (*wire.LocateResp, error) {
	if _, ok := n.hostedRecord(req.Obj); ok {
		return &wire.LocateResp{At: n.id}, nil
	}
	if err := n.whereabouts(req.Obj); err.Code == wire.CodeMoved {
		return &wire.LocateResp{At: err.To}, nil
	}
	return nil, wire.Errorf(wire.CodeNotFound, "object %s unknown at %s", req.Obj, n.id)
}

// Locate resolves the node currently hosting the object by following
// hints and forwarding pointers. Each attempt re-derives its starting
// point from the registry, folding everything learnt back in.
func (n *Node) Locate(ctx context.Context, ref Ref) (NodeID, error) {
	oid := ref.OID
	next := NodeID("")
	c := n.newChase(oid)
	defer c.end()
	for c.next(ctx) {
		rec, hint := n.store.Lookup(oid)
		if rec != nil {
			return n.id, nil
		}
		target := next
		if target == "" || target == n.id {
			target = hint
		}
		next = ""
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return "", fmt.Errorf("%w: %s", ErrNotFound, oid)
		}
		var resp wire.LocateResp
		c.hop()
		err := n.call(ctx, target, wire.KLocate, &wire.LocateReq{Obj: oid}, &resp)
		if err != nil {
			if to, moved := movedTo(err); moved {
				n.store.Learn(oid, to)
				next = to
				continue
			}
			if isCode(err, wire.CodeNotFound) && target != oid.Origin {
				n.store.InvalidateAt(oid, target)
				continue
			}
			return "", fromRemote(err)
		}
		if resp.At == target {
			n.store.Learn(oid, resp.At)
			return resp.At, nil
		}
		n.store.Learn(oid, resp.At)
		next = resp.At
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%w: %s (locate)", ErrUnreachable, oid)
}
