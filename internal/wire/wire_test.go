package wire

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"objmig/internal/core"
)

func TestMarshalRoundTrip(t *testing.T) {
	t.Parallel()
	in := InvokeReq{
		Obj:    core.OID{Origin: "n1", Seq: 42},
		Method: "Get",
		Arg:    []byte{1, 2, 3},
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out InvokeReq
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	t.Parallel()
	f := func(origin string, seq uint64, typ string, state []byte, fixed bool, owner string, block uint64) bool {
		in := Snapshot{
			ID:    core.OID{Origin: core.NodeID(origin), Seq: seq},
			Type:  typ,
			State: state,
			Pol: core.ObjState{
				Fixed: fixed,
				Lock: core.LockState{
					Held:  owner != "",
					Owner: core.NodeID(owner),
					Block: core.BlockID(block),
				},
				OpenMoves: map[core.NodeID]int{"a": 1, "b": 2},
			},
			Edges: []EdgeRec{{Other: core.OID{Origin: "x", Seq: 1}, Alliance: 3}},
		}
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		var out Snapshot
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		// gob encodes nil and empty slices identically; normalise.
		if len(in.State) == 0 {
			in.State, out.State = nil, nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalError(t *testing.T) {
	t.Parallel()
	var out InvokeReq
	if err := Unmarshal([]byte("not gob"), &out); err == nil {
		t.Fatal("garbage decoded successfully")
	}
}

func TestRemoteError(t *testing.T) {
	t.Parallel()
	e := Errorf(CodeFixed, "object %s is fixed", "n1/3")
	if e.Code != CodeFixed {
		t.Fatalf("code = %v", e.Code)
	}
	if e.Error() != "remote: object n1/3 is fixed" {
		t.Fatalf("Error() = %q", e.Error())
	}
	moved := &RemoteError{Code: CodeMoved, Msg: "gone", To: "n7"}
	if moved.Error() != "remote: gone (moved to n7)" {
		t.Fatalf("Error() = %q", moved.Error())
	}
	var re *RemoteError
	if !errors.As(error(moved), &re) || re.To != "n7" {
		t.Fatal("errors.As failed on RemoteError")
	}
}

func TestKindString(t *testing.T) {
	t.Parallel()
	if KInvoke.String() != "invoke" || KCommit.String() != "commit" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatalf("unknown kind: %q", Kind(200).String())
	}
	if Kind(0).Valid() || Kind(200).Valid() || !KPing.Valid() {
		t.Fatal("Kind.Valid mismatch")
	}
}

func TestAllBodiesRoundTrip(t *testing.T) {
	t.Parallel()
	oid := core.OID{Origin: "n1", Seq: 1}
	bodies := []interface{}{
		&InvokeReq{Obj: oid, Method: "m"},
		&InvokeResp{Result: []byte("r"), At: "n2"},
		&MoveReq{Obj: oid, From: "n2", Block: 3, Alliance: 4},
		&MoveResp{Outcome: MoveMigrated, At: "n2", Moved: []core.OID{oid}},
		&EndReq{Obj: oid, From: "n2", Block: 3},
		&EndResp{Unlocked: true, At: "n2"},
		&MigrateReq{Obj: oid, Target: "n3", Fix: true},
		&MigrateResp{At: "n3", Moved: []core.OID{oid}},
		&LocateReq{Obj: oid},
		&LocateResp{At: "n9"},
		&PauseReq{Objs: []core.OID{oid}, Token: 8, MaxBytes: 1 << 20, Lease: 30 * time.Second, From: "n2", Target: "n3"},
		&PauseResp{Snapshots: []Snapshot{{ID: oid, Type: "t"}}, Pending: []core.OID{oid}},
		&InstallReq{Snapshots: []Snapshot{{ID: oid}}, Token: 8},
		&InstallResp{},
		&MigrateBeginReq{Token: 8, From: "n1", Objs: []core.OID{oid}},
		&MigrateBeginResp{},
		&InstallChunkReq{Token: 8, From: "n1", Seq: 1, Snapshots: []Snapshot{{ID: oid, Type: "t"}}},
		&InstallChunkResp{Staged: 1},
		&InstallCommitReq{Token: 8, From: "n1"},
		&InstallCommitResp{Installed: 1},
		&CommitReq{Objs: []core.OID{oid}, NewHome: "n3", Token: 8},
		&CommitResp{},
		&AbortReq{Objs: []core.OID{oid}, Token: 8},
		&AbortResp{},
		&HomeUpdate{Objs: []core.OID{oid}, At: "n3"},
		&HomeUpdateResp{},
		&EdgeAddReq{Obj: oid, Other: core.OID{Origin: "n2", Seq: 2}, Alliance: 1, Mode: core.AttachExclusive},
		&EdgeAddResp{},
		&EdgeDelReq{Obj: oid, Other: core.OID{Origin: "n2", Seq: 2}},
		&EdgeDelResp{Existed: true},
		&EdgesReq{Obj: oid},
		&EdgesResp{Edges: []EdgeRec{{Other: oid, Alliance: 2}}},
		&FixReq{Obj: oid, Fix: true},
		&FixResp{},
		&PingReq{Payload: "hi"},
		&PingResp{Payload: "hi"},
	}
	for _, b := range bodies {
		data, err := Marshal(b)
		if err != nil {
			t.Fatalf("marshal %T: %v", b, err)
		}
		out := reflect.New(reflect.TypeOf(b).Elem()).Interface()
		if err := Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshal %T: %v", b, err)
		}
	}
}
